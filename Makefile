GO ?= go

.PHONY: all build test verify race chaos crash bench experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the CI gate: vet + build + the full test suite under the race
# detector (covering the sched runtime, the fault-injection chaos soak —
# see `make chaos` for the soak alone — and the CheckBatch worker pool).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# chaos runs only the race-enabled fault-injection soak on its fixed seed
# set: the TestChaos protocol x topology x fault-mix sweep, the escrow
# conservation invariant, and the deterministic per-site trigger cases.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestTrigger|TestSeededFaults|TestCompensation' ./internal/sched

# crash runs the durability suite under the race detector: WAL torn-tail
# and rotation cases, every deterministic crash site, recovery idempotence,
# deterministic replay, the crash-chaos conservation soak, and the E11
# crash matrix.
crash:
	$(GO) test -race -count=1 ./internal/wal
	$(GO) test -race -count=1 -run 'TestCrash|TestRecover|TestDeterministicReplay|TestEnableWAL' ./internal/sched
	$(GO) test -race -count=1 -run 'TestE11' ./internal/sim

# race runs only the parallel-path packages under the race detector —
# quicker than verify when iterating on sched or front.
race:
	$(GO) test -race ./internal/sched ./internal/front .

# bench regenerates BENCH_checker.json: the E1/E2/E7 tables, the E10
# chaos-recovery and E11 crash-matrix tables, plus checker and WAL
# microbenchmarks (ns/op, CheckBatch worker scaling, WAL append under each
# group-commit setting, full crash recovery). See DESIGN.md §6.1.
bench:
	$(GO) run ./cmd/compbench -only E1,E2,E7,E10,E11 -json BENCH_checker.json

# experiments regenerates every E1-E11 table on stdout.
experiments:
	$(GO) run ./cmd/compbench

clean:
	$(GO) clean ./...
