GO ?= go

.PHONY: all build test verify race chaos bench experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the CI gate: vet + build + the full test suite under the race
# detector (covering the sched runtime, the fault-injection chaos soak —
# see `make chaos` for the soak alone — and the CheckBatch worker pool).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# chaos runs only the race-enabled fault-injection soak on its fixed seed
# set: the TestChaos protocol x topology x fault-mix sweep, the escrow
# conservation invariant, and the deterministic per-site trigger cases.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestTrigger|TestSeededFaults|TestCompensation' ./internal/sched

# race runs only the parallel-path packages under the race detector —
# quicker than verify when iterating on sched or front.
race:
	$(GO) test -race ./internal/sched ./internal/front .

# bench regenerates BENCH_checker.json: the E1/E2/E7 tables, the E10
# chaos-recovery table, plus checker microbenchmarks (ns/op and
# CheckBatch worker scaling). See DESIGN.md §6.1.
bench:
	$(GO) run ./cmd/compbench -only E1,E2,E7,E10 -json BENCH_checker.json

# experiments regenerates every E1-E10 table on stdout.
experiments:
	$(GO) run ./cmd/compbench

clean:
	$(GO) clean ./...
