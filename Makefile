GO ?= go

.PHONY: all build test verify race chaos crash bench benchsmoke experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the CI gate: vet + build + the full test suite under the race
# detector (covering the sched runtime, the fault-injection chaos soak —
# see `make chaos` for the soak alone — and the CheckBatch worker pool).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# chaos runs only the race-enabled fault-injection soak on its fixed seed
# set: the TestChaos protocol x topology x fault-mix sweep, the escrow
# conservation invariant, and the deterministic per-site trigger cases.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestTrigger|TestSeededFaults|TestCompensation' ./internal/sched

# crash runs the durability suite under the race detector: WAL torn-tail
# and rotation cases, every deterministic crash site, recovery idempotence,
# deterministic replay, the crash-chaos conservation soak, and the E11
# crash matrix.
crash:
	$(GO) test -race -count=1 ./internal/wal
	$(GO) test -race -count=1 -run 'TestCrash|TestRecover|TestDeterministicReplay|TestEnableWAL' ./internal/sched
	$(GO) test -race -count=1 -run 'TestE11' ./internal/sim

# race runs only the parallel-path packages under the race detector —
# quicker than verify when iterating on sched or front.
race:
	$(GO) test -race ./internal/sched ./internal/front .

# bench regenerates BENCH_checker.json: the E1/E2/E7 tables, the E10
# chaos-recovery, E11 crash-matrix and E12 online-certification tables,
# plus checker, incremental-certification and WAL microbenchmarks (ns/op,
# CheckBatch worker scaling, E12 incremental-vs-full per-commit cost, WAL
# append under each group-commit setting, full crash recovery). See
# DESIGN.md §6.1.
bench:
	$(GO) run ./cmd/compbench -only E1,E2,E7,E10,E11,E12 -json BENCH_checker.json

# benchsmoke runs every benchmark for exactly one iteration — a CI smoke
# test that the bench harness still compiles and completes, not a
# measurement.
benchsmoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# experiments regenerates every E1-E12 table on stdout.
experiments:
	$(GO) run ./cmd/compbench

clean:
	$(GO) clean ./...
