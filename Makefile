GO ?= go

.PHONY: all build test verify race chaos crash mvcc soak net distperf certperf bench benchsmoke experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the CI gate: vet + build + the full test suite under the race
# detector (covering the sched runtime, the fault-injection chaos soak —
# see `make chaos` for the soak alone — and the CheckBatch worker pool).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# chaos runs only the race-enabled fault-injection soak on its fixed seed
# set: the TestChaos protocol x topology x fault-mix sweep, the escrow
# conservation invariant, and the deterministic per-site trigger cases.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestTrigger|TestSeededFaults|TestCompensation' ./internal/sched

# crash runs the durability suite under the race detector: WAL torn-tail
# and rotation cases, every deterministic crash site, recovery idempotence,
# deterministic replay, the crash-chaos conservation soak, and the E11
# crash matrix.
crash:
	$(GO) test -race -count=1 ./internal/wal
	$(GO) test -race -count=1 -run 'TestCrash|TestRecover|TestDeterministicReplay|TestEnableWAL' ./internal/sched
	$(GO) test -race -count=1 -run 'TestE11' ./internal/sim

# mvcc runs the multi-version data layer and optimistic-execution suite
# under the race detector: version-chain/clock/claim unit tests in
# internal/data, the sched validation suite (consistent committed prefix,
# read-your-writes, deterministic validation aborts, refresh, escrow
# netting, certified optimistic runs, seeded faults, crash recovery), and
# the E13 throughput gate (mvcc must beat lock-only at 90% reads).
mvcc:
	$(GO) test -race -count=1 ./internal/data
	$(GO) test -race -count=1 -run 'TestMVCC' ./internal/sched
	$(GO) test -count=1 -run 'TestE13' ./internal/sim

# race runs only the parallel-path packages under the race detector —
# quicker than verify when iterating on sched or front.
race:
	$(GO) test -race ./internal/sched ./internal/front .

# soak runs the bounded-memory checkpoint suite: the race-enabled
# checkpoint/recovery/backpressure tests in internal/sched, the MVCC
# compaction safety property in internal/data, and the E14 gate (the
# checkpointed soak's recovery replay must stay bounded by the cadence
# while the unbounded baseline grows with the horizon).
soak:
	$(GO) test -race -count=1 -run 'TestCheckpoint|TestCrashDuringCheckpoint|TestOverload' ./internal/sched
	$(GO) test -race -count=1 -run 'TestCompactConcurrentStableReads|TestCompact' ./internal/data
	$(GO) test -count=1 -run 'TestE14' ./internal/sim

# net runs the distributed-commit suite under the race detector: the
# message layer (framing, both transports, fault-injector determinism,
# RPC deadline/retry), the coordinator/participant 2PC tests (all four
# protocols x both transports, sentinel errors through the RPC layer,
# crash windows + recovery, the duplicate/reorder idempotence seed
# sweep), and the E15 network-chaos atomicity gate.
net:
	$(GO) test -race -count=1 ./internal/comm
	$(GO) test -race -count=1 -run 'TestDist' ./internal/sched
	$(GO) test -race -count=1 -run 'TestE15' ./internal/sim

# distperf runs the group-commit throughput gate: the E16 sustained
# distributed-throughput comparison at 64 concurrent clients on the
# channel transport, asserting the coalesced force path beats per-txn
# fsync (and the WAL force/flush-daemon suite under the race detector).
# Not under -race: the gate measures wall-clock throughput.
distperf:
	$(GO) test -race -count=1 -run 'TestForce|TestAbandon' ./internal/wal
	$(GO) test -count=1 -run 'TestE16' ./internal/sim

# certperf runs the certifier-pipeline gate: the byte-identity property
# suite under the race detector (pipelined/fast-path admission must leave
# the certified system byte-identical to the always-admit engine, plus
# rejection-rebuild and WAL-ordering regressions), and the E17 throughput
# gate (the pipeline must certify at >=2x the serial baseline at 8
# clients on the <=10%-conflict mix, with the fast path actually taken).
# The E17 gate is not under -race: it measures wall-clock throughput.
certperf:
	$(GO) test -race -count=1 -run 'TestCertify|TestPipeline|TestAbsorb' ./internal/sched ./internal/front
	$(GO) test -count=1 -run 'TestE17' ./internal/sim

# bench regenerates BENCH_checker.json: the E1/E2/E7 tables, the E10
# chaos-recovery, E11 crash-matrix, E12 online-certification, E13
# MVCC-vs-lock, E14 bounded-memory checkpoint, E15 network-chaos and E16
# distributed-throughput tables, plus checker, incremental-certification,
# WAL, checkpoint and distributed-commit microbenchmarks (ns/op,
# CheckBatch worker scaling, E12 incremental-vs-full per-commit cost, WAL
# append under each group-commit setting, full crash recovery, E14
# tail/recovery growth across the horizon spread, end-to-end 2PC latency
# per transport, E16 group-commit vs per-txn-fsync throughput at 64
# concurrent clients, E17 certified commit throughput per certifier mode
# with uncertified-baseline cells and the pipeline-vs-serial speedup and
# certification-overhead ratios). See DESIGN.md §7.1.
bench:
	$(GO) run ./cmd/compbench -only E1,E2,E7,E10,E11,E12,E13,E14,E15,E16,E17 -json BENCH_checker.json

# benchsmoke runs every benchmark for exactly one iteration — a CI smoke
# test that the bench harness still compiles and completes, not a
# measurement.
benchsmoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# experiments regenerates every E1-E17 table on stdout.
experiments:
	$(GO) run ./cmd/compbench

clean:
	$(GO) clean ./...
