package compositetx_test

import (
	"bytes"
	"os"
	"strings"
	"testing"

	ctx "compositetx"
)

func TestPublicCheckFigures(t *testing.T) {
	for _, tc := range []struct {
		name    string
		sys     *ctx.System
		correct bool
	}{
		{"figure1", ctx.Figure1System(), true},
		{"figure2", ctx.Figure2System(), true},
		{"figure3", ctx.Figure3System(), false},
		{"figure4", ctx.Figure4System(), true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.sys.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			v, err := ctx.Check(tc.sys, ctx.CheckOptions{KeepFronts: true})
			if err != nil {
				t.Fatal(err)
			}
			if v.Correct != tc.correct {
				t.Fatalf("Correct = %v, want %v: %s", v.Correct, tc.correct, v)
			}
			if v.Trace() == "" {
				t.Fatal("empty trace")
			}
		})
	}
}

func TestPublicBuildAndCheck(t *testing.T) {
	sys := ctx.NewSystem()
	sc := sys.AddSchedule("S")
	sys.AddRoot("T1", "S")
	sys.AddRoot("T2", "S")
	sys.AddLeaf("a", "T1")
	sys.AddLeaf("b", "T2")
	sc.AddConflict("a", "b")
	sc.WeakOut.Add("a", "b")
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	ok, err := ctx.IsCompC(sys)
	if err != nil || !ok {
		t.Fatalf("IsCompC = %v, %v", ok, err)
	}
	if !ctx.IsCC(sys, "S") {
		t.Fatal("schedule should be CC")
	}
	if ctx.IsCC(sys, "missing") {
		t.Fatal("unknown schedule must not be CC")
	}
}

func TestPublicCriteria(t *testing.T) {
	stack := ctx.GenerateStack(ctx.StackParams{Levels: 2, Roots: 2, Fanout: 2, ConflictRate: 0.3, Seed: 4})
	scc, err := ctx.IsSCC(stack.Sys)
	if err != nil {
		t.Fatal(err)
	}
	compC, err := ctx.IsCompC(stack.Sys)
	if err != nil {
		t.Fatal(err)
	}
	if scc != compC {
		t.Fatal("Theorem 2 violated through the public API")
	}
	if _, err := ctx.IsLLSR(stack.Sys); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.IsOPSR(stack.Sys, stack.Seqs); err != nil {
		t.Fatal(err)
	}

	fork := ctx.GenerateFork(ctx.ForkParams{Branches: 2, Roots: 2, Fanout: 2, LeavesPerSub: 2, ConflictRate: 0.3, Seed: 4})
	if _, err := ctx.IsFCC(fork.Sys); err != nil {
		t.Fatal(err)
	}
	join := ctx.GenerateJoin(ctx.JoinParams{Tops: 2, RootsPerTop: 2, Fanout: 2, LeavesPerSub: 2, ConflictRate: 0.3, Seed: 4})
	if _, err := ctx.IsJCC(join.Sys); err != nil {
		t.Fatal(err)
	}
	gen := ctx.GenerateGeneral(ctx.GeneralParams{Depth: 2, SchedsPerLevel: 2, Roots: 2, Fanout: 2, LeafRate: 0.4, ConflictRate: 0.3, Seed: 4})
	if err := gen.Sys.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicRuntime(t *testing.T) {
	rt := ctx.BankTopology().NewRuntime(ctx.Hybrid)
	res, err := rt.Submit("T1", ctx.Invocation{
		Component: "bank",
		Steps: []ctx.Step{
			{Invoke: &ctx.Invocation{Component: "east", Item: "acct", Mode: ctx.ModeIncr,
				Steps: []ctx.Step{{Op: &ctx.Op{Mode: ctx.ModeIncr, Item: "acct", Arg: 5}}}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Root != "T1" {
		t.Fatalf("root = %s", res.Root)
	}
	if got := rt.Store("east").Get("acct"); got != 5 {
		t.Fatalf("acct = %d", got)
	}
	ok, err := ctx.IsCompC(rt.RecordedSystem())
	if err != nil || !ok {
		t.Fatalf("recorded execution: %v, %v", ok, err)
	}
}

func TestPublicJSONRoundTrip(t *testing.T) {
	sys := ctx.Figure3System()
	var buf bytes.Buffer
	if err := sys.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ctx.DecodeSystem(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := ctx.IsCompC(back)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("round-tripped Figure 3 must stay incorrect")
	}
}

func TestModeTables(t *testing.T) {
	if ctx.SemanticTable().ModeConflicts(ctx.ModeIncr, ctx.ModeIncr) {
		t.Fatal("increments commute semantically")
	}
	if !ctx.RWTable().ModeConflicts(ctx.ModeIncr, ctx.ModeIncr) {
		t.Fatal("increments conflict under read/write semantics")
	}
}

func TestPublicClassify(t *testing.T) {
	exec := ctx.GenerateStack(ctx.StackParams{Levels: 2, Roots: 2, Fanout: 2, ConflictRate: 0.3, Seed: 9})
	rep, err := ctx.Classify(exec.Sys, exec.Seqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shape != "stack" {
		t.Fatalf("shape = %s", rep.Shape)
	}
	if rep.Criteria["SCC"] != rep.CompC {
		t.Fatal("Theorem 2 must hold through the public API")
	}
}

func TestPublicDecodeTopology(t *testing.T) {
	f, err := os.Open("testdata/topology_shop.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	topo, err := ctx.DecodeTopology(f)
	if err != nil {
		t.Fatal(err)
	}
	rt := topo.NewRuntime(ctx.ClosedNested)
	rt.Deadlock = ctx.DetectWFG
	progs := ctx.GenPrograms(topo, ctx.WorkloadParams{
		Roots: 10, StepsPerTx: 2, Items: 2, ReadRatio: 0.3, WriteRatio: 0.3, Seed: 1,
	})
	if err := ctx.Run(rt, progs, 4); err != nil {
		t.Fatal(err)
	}
	if ok, err := ctx.IsCompC(rt.RecordedSystem()); err != nil || !ok {
		t.Fatalf("decoded topology run must be Comp-C: %v, %v", ok, err)
	}
}

func TestPublicDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := ctx.Figure2System().DOT(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph composite") {
		t.Fatal("DOT output malformed")
	}
}
