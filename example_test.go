package compositetx_test

import (
	"fmt"

	ctx "compositetx"
)

// Example_check builds the smallest interesting composite execution — two
// top-level transactions delegating conflicting work to a shared storage
// component — and decides composite correctness.
func Example_check() {
	sys := ctx.NewSystem()
	store := sys.AddSchedule("store")
	sys.AddSchedule("app")

	sys.AddRoot("T1", "app")
	sys.AddRoot("T2", "app")
	sys.AddTx("t1", "T1", "store")
	sys.AddTx("t2", "T2", "store")
	sys.AddLeaf("w1", "t1")
	sys.AddLeaf("w2", "t2")

	store.AddConflict("w1", "w2")
	store.WeakOut.Add("w1", "w2") // the store executed T1's write first

	v, err := ctx.Check(sys, ctx.CheckOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(v)
	// Output:
	// Comp-C: correct (order 2, serial witness [T1 T2])
}

// Example_incorrect shows the paper's Figure 3: two roots without any
// common scheduler interfere through transitive dependencies, and the
// reduction cannot isolate them.
func Example_incorrect() {
	v, err := ctx.Check(ctx.Figure3System(), ctx.CheckOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(v.Correct, v.FailedLevel)
	fmt.Println(v.Reason)
	// Output:
	// false 3
	// transactions cannot be isolated: cycle [T1 T2]
}

// Example_runtime runs the prototype composite system: a bank component
// delegating a deposit to a branch, recorded and checked.
func Example_runtime() {
	rt := ctx.BankTopology().NewRuntime(ctx.Hybrid)
	_, err := rt.Submit("T1", ctx.Invocation{
		Component: "bank",
		Steps: []ctx.Step{{Invoke: &ctx.Invocation{
			Component: "east", Item: "acct", Mode: ctx.ModeIncr,
			Steps: []ctx.Step{{Op: &ctx.Op{Mode: ctx.ModeIncr, Item: "acct", Arg: 100}}},
		}}},
	})
	if err != nil {
		panic(err)
	}
	ok, err := ctx.IsCompC(rt.RecordedSystem())
	if err != nil {
		panic(err)
	}
	fmt.Println(rt.Store("east").Get("acct"), ok)
	// Output:
	// 100 true
}

// Example_criteria checks a random stack execution with the special-case
// criterion (Theorem 2: SCC coincides with Comp-C on stacks).
func Example_criteria() {
	exec := ctx.GenerateStack(ctx.StackParams{
		Levels: 3, Roots: 2, Fanout: 2, ConflictRate: 0.3, Seed: 1,
	})
	scc, _ := ctx.IsSCC(exec.Sys)
	compC, _ := ctx.IsCompC(exec.Sys)
	fmt.Println(scc == compC)
	// Output:
	// true
}

// Example_workload drives a generated workload through the runtime on a
// general (diamond) configuration.
func Example_workload() {
	topo := ctx.DiamondTopology()
	rt := topo.NewRuntime(ctx.ClosedNested)
	programs := ctx.GenPrograms(topo, ctx.WorkloadParams{
		Roots: 10, StepsPerTx: 2, Items: 3,
		ReadRatio: 0.3, WriteRatio: 0.3, Seed: 5,
	})
	if err := ctx.Run(rt, programs, 4); err != nil {
		panic(err)
	}
	ok, err := ctx.IsCompC(rt.RecordedSystem())
	if err != nil {
		panic(err)
	}
	fmt.Println(rt.Metrics().Commits, ok)
	// Output:
	// 10 true
}
