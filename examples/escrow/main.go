// Escrow banking: domain-specific semantic modes through the public API.
//
// The paper's model lets every component declare its *own* conflict
// relation — conflicts are semantic, not read/write. This example defines
// escrow banking modes on top of the integer store: deposits commute with
// deposits (the balance only grows), withdrawals conflict with other
// withdrawals (a withdrawal must be sure the funds suffice), audits
// conflict with both. Physically all three are increments/reads
// (Op.Impl); semantically they form a custom commutativity table.
//
// The payoff: under the open-nested protocol a burst of concurrent
// deposits to one account proceeds in parallel, while a classical
// read/write scheduler (global-2pl) serializes every deposit. Both record
// provably correct executions.
package main

import (
	"fmt"
	"sync"
	"time"

	ctx "compositetx"
)

func topology() *ctx.Topology {
	escrow := ctx.EscrowTable()
	return &ctx.Topology{
		Specs: []ctx.ComponentSpec{
			{Name: "bank", Modes: escrow},
			{Name: "branch", HasStore: true, Modes: escrow},
		},
		Children: map[string][]string{"bank": {"branch"}},
		Entries:  []string{"bank"},
	}
}

// txProgram builds a two-step branch transaction: update the balance,
// then — still holding the balance lock — do 200µs of "work" and update
// the operation counter. The sleep sits between the two operations, so
// whichever lock the first step took is held across it: that is where the
// semantic and the read/write scheduler diverge.
func txProgram(mode ctx.Mode, acct string, amount int64) ctx.Invocation {
	return ctx.Invocation{Component: "bank", Steps: []ctx.Step{
		{Invoke: &ctx.Invocation{Component: "branch", Item: acct, Mode: mode,
			Steps: []ctx.Step{
				{Op: &ctx.Op{Mode: mode, Impl: ctx.ModeIncr, Item: acct, Arg: amount}},
				{Sync: func() { time.Sleep(200 * time.Microsecond) },
					Op: &ctx.Op{Mode: mode, Impl: ctx.ModeIncr, Item: acct + "_count", Arg: 1}},
			}}},
	}}
}

func deposit(acct string, amount int64) ctx.Invocation {
	return txProgram(ctx.ModeDeposit, acct, amount)
}

func withdraw(acct string, amount int64) ctx.Invocation {
	return txProgram(ctx.ModeWithdraw, acct, -amount)
}

func run(p ctx.Protocol) {
	rt := topology().NewRuntime(p)
	const deposits, withdrawals = 60, 10
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < deposits+withdrawals; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prog := deposit("acct", 10)
			if i >= deposits {
				prog = withdraw("acct", 5)
			}
			if _, err := rt.Submit(fmt.Sprintf("T%d", i+1), prog); err != nil {
				panic(err)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	balance := rt.Store("branch").Get("acct")
	sys := rt.RecordedSystem()
	verdict := "Comp-C"
	if err := sys.Validate(); err != nil {
		verdict = "MODEL VIOLATION"
	} else if ok, err := ctx.IsCompC(sys); err != nil || !ok {
		verdict = "COMP-C VIOLATION"
	}
	m := rt.Metrics()
	fmt.Printf("%-14s wall=%-8s balance=%-4d aborts=%-3d lock-waits=%-3d %s\n",
		p, elapsed.Round(time.Millisecond), balance, m.Aborts, m.LockWaits, verdict)
}

func main() {
	fmt.Println("escrow banking: 60 concurrent deposits + 10 withdrawals on one account")
	fmt.Println("(expected balance 60*10 - 10*5 = 550; deposits commute under escrow)")
	fmt.Println()
	for _, p := range []ctx.Protocol{ctx.OpenNested, ctx.Hybrid, ctx.ClosedNested, ctx.Global2PL} {
		run(p)
	}
	fmt.Println("\nexpected shape: the semantic protocols finish much faster — deposits")
	fmt.Println("hold compatible locks and run in parallel; global-2pl treats every")
	fmt.Println("deposit as a write and serializes the whole burst.")
}
