// TPC-C-lite: a scaled-down order-entry workload (in the spirit of TPC-C's
// NewOrder/Payment mix) on a composite configuration — the kind of
// TP-monitor application the paper's introduction motivates.
//
// Components:
//
//	frontend  — the entry scheduler (a TP monitor), no data of its own
//	warehouse — stock counters and year-to-date totals
//	district  — per-district order counters and totals
//	customer  — customer balances
//
// NewOrder decrements stock and bumps the district order counter; Payment
// moves money between a customer balance and warehouse/district totals.
// All updates are increments, so under semantic protocols the whole mix
// commutes except where audits interfere — the classical argument for
// semantic concurrency control in order-entry systems.
//
// The run prints per-protocol throughput, verifies the business
// invariants, and checks the recorded execution for composite correctness.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	ctx "compositetx"
)

const (
	items     = 8
	districts = 4
	customers = 8
)

func topology() *ctx.Topology {
	return &ctx.Topology{
		Specs: []ctx.ComponentSpec{
			{Name: "frontend"},
			{Name: "warehouse", HasStore: true},
			{Name: "district", HasStore: true},
			{Name: "customer", HasStore: true},
		},
		Children: map[string][]string{
			"frontend": {"warehouse", "district", "customer"},
		},
		Entries: []string{"frontend"},
	}
}

func incr(comp, item string, by int64) ctx.Step {
	return ctx.Step{Invoke: &ctx.Invocation{
		Component: comp, Item: item, Mode: ctx.ModeIncr,
		Steps: []ctx.Step{{Op: &ctx.Op{Mode: ctx.ModeIncr, Item: item, Arg: by}}},
	}}
}

// newOrder: order `qty` units of an item in a district.
func newOrder(rng *rand.Rand) ctx.Invocation {
	item := fmt.Sprintf("stock_%d", rng.Intn(items)+1)
	dist := fmt.Sprintf("orders_%d", rng.Intn(districts)+1)
	qty := int64(rng.Intn(5) + 1)
	return ctx.Invocation{Component: "frontend", Steps: []ctx.Step{
		incr("warehouse", item, -qty),
		incr("district", dist, 1),
		incr("district", "ytd_orders", 1),
	}}
}

// payment: a customer pays an amount, credited to district and warehouse
// year-to-date totals.
func payment(rng *rand.Rand) ctx.Invocation {
	cust := fmt.Sprintf("bal_%d", rng.Intn(customers)+1)
	dist := fmt.Sprintf("ytd_%d", rng.Intn(districts)+1)
	amount := int64(rng.Intn(50) + 1)
	return ctx.Invocation{Component: "frontend", Steps: []ctx.Step{
		incr("customer", cust, -amount),
		incr("district", dist, amount),
		incr("warehouse", "ytd", amount),
	}}
}

func run(p ctx.Protocol, txs int) {
	rng := rand.New(rand.NewSource(42))
	programs := make([]ctx.Invocation, txs)
	orders := 0
	for i := range programs {
		if rng.Intn(100) < 55 { // 55% NewOrder, 45% Payment — roughly TPC-C
			programs[i] = newOrder(rng)
			orders++
		} else {
			programs[i] = payment(rng)
		}
	}

	rt := topology().NewRuntime(p)
	start := time.Now()
	var wg sync.WaitGroup
	sem := make(chan struct{}, 24)
	for i, prog := range programs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, prog ctx.Invocation) {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := rt.Submit(fmt.Sprintf("T%d", i+1), prog); err != nil {
				panic(err)
			}
		}(i, prog)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Business invariants: money conservation and order counting.
	var custSum, distYTD int64
	for c := 1; c <= customers; c++ {
		custSum += rt.Store("customer").Get(fmt.Sprintf("bal_%d", c))
	}
	for d := 1; d <= districts; d++ {
		distYTD += rt.Store("district").Get(fmt.Sprintf("ytd_%d", d))
	}
	whYTD := rt.Store("warehouse").Get("ytd")
	moneyOK := -custSum == distYTD && distYTD == whYTD
	ordersOK := rt.Store("district").Get("ytd_orders") == int64(orders)

	sys := rt.RecordedSystem()
	verdict := "Comp-C"
	if err := sys.Validate(); err != nil {
		verdict = "MODEL VIOLATION"
	} else if ok, err := ctx.IsCompC(sys); err != nil || !ok {
		verdict = "COMP-C VIOLATION"
	}
	m := rt.Metrics()
	fmt.Printf("%-14s %8.0f tx/s  aborts=%-4d invariants(money=%v, orders=%v)  %s\n",
		p, float64(m.Commits)/elapsed.Seconds(), m.Aborts, moneyOK, ordersOK, verdict)
}

func main() {
	const txs = 300
	fmt.Printf("TPC-C-lite: %d transactions (55%% NewOrder / 45%% Payment), 24 clients\n\n", txs)
	for _, p := range []ctx.Protocol{ctx.Global2PL, ctx.ClosedNested, ctx.OpenNested, ctx.Hybrid} {
		run(p, txs)
	}
}
