// Federated transactions: the paper's §4 observes that fork and join
// configurations model federated transaction management — one global
// transaction manager splitting work across autonomous databases (fork),
// or several autonomous managers funnelling into one shared resource
// (join).
//
// This example generates random federated executions of both shapes and
// shows Theorems 3 and 4 at work: the local criteria (FCC with branch
// orders, JCC with the ghost graph) agree exactly with the general Comp-C
// reduction, so a federation can be checked without any global knowledge
// beyond the ghost dependencies.
package main

import (
	"fmt"

	ctx "compositetx"
)

func main() {
	fmt.Println("fork federation (global manager over autonomous DBs):")
	fmt.Println("  seed  FCC    Comp-C  agree")
	forkAgree := true
	for seed := int64(0); seed < 10; seed++ {
		exec := ctx.GenerateFork(ctx.ForkParams{
			Branches: 3, Roots: 3, Fanout: 2, LeavesPerSub: 2,
			ConflictRate: 0.35, Seed: seed,
		})
		fcc, err := ctx.IsFCC(exec.Sys)
		if err != nil {
			panic(err)
		}
		compC, err := ctx.IsCompC(exec.Sys)
		if err != nil {
			panic(err)
		}
		forkAgree = forkAgree && fcc == compC
		fmt.Printf("  %-4d  %-5v  %-6v  %v\n", seed, fcc, compC, fcc == compC)
	}

	fmt.Println("\njoin federation (autonomous managers over one shared resource):")
	fmt.Println("  seed  JCC    Comp-C  agree")
	joinAgree := true
	for seed := int64(0); seed < 10; seed++ {
		exec := ctx.GenerateJoin(ctx.JoinParams{
			Tops: 3, RootsPerTop: 2, Fanout: 2, LeavesPerSub: 2,
			ConflictRate: 0.3, TopConflictRate: 0.2, Seed: seed,
		})
		jcc, err := ctx.IsJCC(exec.Sys)
		if err != nil {
			panic(err)
		}
		compC, err := ctx.IsCompC(exec.Sys)
		if err != nil {
			panic(err)
		}
		joinAgree = joinAgree && jcc == compC
		fmt.Printf("  %-4d  %-5v  %-6v  %v\n", seed, jcc, compC, jcc == compC)
	}

	fmt.Printf("\nTheorem 3 (FCC ⇔ Comp-C) held on every sample: %v\n", forkAgree)
	fmt.Printf("Theorem 4 (JCC ⇔ Comp-C) held on every sample: %v\n", joinAgree)

	// The ticket-method intuition: a join is only correct when the ghost
	// dependencies through the shared resource do not cycle. Build the
	// minimal counterexample by hand.
	sys := ctx.NewSystem()
	sj := sys.AddSchedule("SJ")
	sys.AddSchedule("U1")
	sys.AddSchedule("U2")
	sys.AddRoot("TA", "U1")
	sys.AddRoot("TB", "U2")
	sys.AddTx("ta1", "TA", "SJ")
	sys.AddTx("ta2", "TA", "SJ")
	sys.AddTx("tb1", "TB", "SJ")
	sys.AddTx("tb2", "TB", "SJ")
	sys.AddLeaf("a1", "ta1")
	sys.AddLeaf("a2", "ta2")
	sys.AddLeaf("b1", "tb1")
	sys.AddLeaf("b2", "tb2")
	sj.AddConflict("a1", "b1")
	sj.WeakOut.Add("a1", "b1") // TA before TB on one record...
	sj.AddConflict("a2", "b2")
	sj.WeakOut.Add("b2", "a2") // ...TB before TA on another: ghost cycle
	if err := sys.Validate(); err != nil {
		panic(err)
	}
	v, err := ctx.Check(sys, ctx.CheckOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nminimal ghost-graph cycle: %s\n", v)
}
