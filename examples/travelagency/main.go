// Travel agency: the paper's motivating scenario — component-based
// applications (TP monitors, CORBA-style services) where each component
// has its own transactional scheduler.
//
// Two travel agencies book trips concurrently. Each agency is its own
// entry component; flights live in an airline component, rooms in a hotel
// component, and both ultimately settle payments through one shared ledger
// — a general configuration where the two agencies share no scheduler and
// interfere only through transitive dependencies (the paper's Figure 3
// shape).
//
// The example runs the same booking workload under two protocols:
//
//   - pure open nesting, which releases ledger locks at subtransaction
//     commit and can interleave the agencies' settlements incorrectly;
//   - the hybrid protocol, which holds locks to root commit at the shared
//     ledger (a join point) and stays correct.
//
// Every recorded execution is put through the Comp-C checker.
package main

import (
	"fmt"
	"sync"

	ctx "compositetx"
)

// booking builds one trip-booking transaction: reserve (increment a
// seat/room counter), then settle by writing the trip total to the shared
// ledger.
func booking(agency, venue, trip string, amount int64) ctx.Invocation {
	return ctx.Invocation{
		Component: agency,
		Steps: []ctx.Step{
			{Invoke: &ctx.Invocation{
				Component: venue, Item: trip, Mode: ctx.ModeIncr,
				Steps: []ctx.Step{
					{Op: &ctx.Op{Mode: ctx.ModeIncr, Item: trip, Arg: 1}},
					{Invoke: &ctx.Invocation{
						Component: "ledger", Item: trip, Mode: ctx.ModeIncr,
						Steps: []ctx.Step{{Op: &ctx.Op{Mode: ctx.ModeIncr, Item: trip, Arg: amount}}},
					}},
				},
			}},
			{Invoke: &ctx.Invocation{
				Component: "ledger", Item: "total:" + trip, Mode: ctx.ModeWrite,
				Steps: []ctx.Step{{Op: &ctx.Op{Mode: ctx.ModeWrite, Item: "total:" + trip, Arg: amount}}},
			}},
		},
	}
}

func run(protocol ctx.Protocol) {
	topo := ctx.DiamondTopology()
	rt := topo.NewRuntime(protocol)

	trips := []string{"zurich", "paris", "rome"}
	var wg sync.WaitGroup
	id := 0
	for round := 0; round < 10; round++ {
		for i, trip := range trips {
			id++
			name := fmt.Sprintf("T%d", id)
			agency, venue := "agencyA", "airline"
			if (round+i)%2 == 1 {
				agency, venue = "agencyB", "hotel"
			}
			prog := booking(agency, venue, trip, int64(100+10*i))
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := rt.Submit(name, prog); err != nil {
					panic(err)
				}
			}()
		}
	}
	wg.Wait()

	m := rt.Metrics()
	sys := rt.RecordedSystem()
	verdict := "Comp-C"
	if err := sys.Validate(); err != nil {
		verdict = "MODEL VIOLATION"
	} else if ok, err := ctx.IsCompC(sys); err != nil || !ok {
		verdict = "COMP-C VIOLATION"
	}
	fmt.Printf("%-13s commits=%-3d aborts=%-3d lock-waits=%-3d ledger[zurich]=%d -> %s\n",
		protocol, m.Commits, m.Aborts, m.LockWaits, rt.Store("ledger").Get("zurich"), verdict)
}

func main() {
	fmt.Println("travel agencies on a general (diamond) configuration:")
	for _, p := range []ctx.Protocol{ctx.Hybrid, ctx.ClosedNested, ctx.Global2PL, ctx.OpenNested} {
		run(p)
	}
	fmt.Println("\n(open-nested may or may not violate on a given run — the interference")
	fmt.Println(" needs a real race; cmd/compbench E8 measures the frequency, and the")
	fmt.Println(" sched tests reproduce it deterministically)")
}
