// Bank runtime: drive the prototype composite system with a concurrent
// banking workload and compare the concurrency-control protocols — the
// practical payoff of the composite theory: semantic protocols exploit
// commutativity (deposits are increments, which commute) and sustain more
// concurrency than a monolithic read/write scheduler, while every
// recorded execution remains provably correct.
package main

import (
	"fmt"
	"time"

	ctx "compositetx"
)

func main() {
	// Sizes are checker-friendly: deciding Comp-C enumerates conflicting
	// operation pairs per hot item, which is quadratic in the number of
	// accesses — cheap for a few hundred transactions, expensive for tens
	// of thousands. Raise roots for pure throughput runs and skip the
	// check (or use cmd/compsim).
	const (
		roots   = 400
		clients = 16
	)
	fmt.Printf("banking workload: %d transactions, %d clients, 6 hot accounts\n\n", roots, clients)
	fmt.Printf("%-14s %10s %8s %11s %8s  %s\n", "protocol", "tx/s", "aborts", "lock waits", "wall", "verdict")

	for _, p := range []ctx.Protocol{ctx.Global2PL, ctx.ClosedNested, ctx.OpenNested, ctx.Hybrid} {
		topo := ctx.BankTopology()
		rt := topo.NewRuntime(p)
		programs := ctx.GenPrograms(topo, ctx.WorkloadParams{
			Roots: roots, StepsPerTx: 4, Items: 6,
			ReadRatio: 0.25, WriteRatio: 0.05, // deposit-heavy: increments dominate
			Seed: 99,
		})
		start := time.Now()
		if err := ctx.Run(rt, programs, clients); err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		m := rt.Metrics()

		sys := rt.RecordedSystem()
		verdict := "Comp-C"
		if err := sys.Validate(); err != nil {
			verdict = "MODEL VIOLATION"
		} else if ok, err := ctx.IsCompC(sys); err != nil || !ok {
			verdict = "COMP-C VIOLATION"
		}
		fmt.Printf("%-14s %10.0f %8d %11d %8s  %s\n",
			p, float64(m.Commits)/elapsed.Seconds(), m.Aborts, m.LockWaits,
			elapsed.Round(time.Millisecond), verdict)
	}

	fmt.Println("\nexpected shape: open-nested and hybrid lead (commuting deposits run")
	fmt.Println("concurrently); global-2pl trails because it must treat every deposit")
	fmt.Println("as a read-modify-write; all verdicts are Comp-C on this single-entry")
	fmt.Println("configuration.")
}
