// Quickstart: build a small composite execution by hand, check it for
// composite correctness (Comp-C), and watch the reduction both succeed and
// fail.
//
// The scenario is the smallest interesting composite system: two top-level
// transactions executed by one top scheduler, each delegating work to a
// shared storage component with its own scheduler. We record two
// executions of the same programs — one where the storage component
// serialized both conflicting accesses the same way (correct) and one
// where the two accesses crossed (incorrect).
package main

import (
	"fmt"

	ctx "compositetx"
)

// buildExecution records one execution. crossed selects whether the
// storage component serialized the second conflict pair against the first.
func buildExecution(crossed bool) *ctx.System {
	sys := ctx.NewSystem()
	sys.AddSchedule("app")            // top scheduler (level 2)
	store := sys.AddSchedule("store") // storage component (level 1)

	// Two root transactions at the app, each with one subtransaction on
	// the store; each subtransaction touches two records.
	sys.AddRoot("T1", "app")
	sys.AddRoot("T2", "app")
	sys.AddTx("t1", "T1", "store")
	sys.AddTx("t2", "T2", "store")
	sys.AddLeaf("w1x", "t1") // T1 writes record x
	sys.AddLeaf("w1y", "t1") // T1 writes record y
	sys.AddLeaf("w2x", "t2") // T2 writes record x
	sys.AddLeaf("w2y", "t2") // T2 writes record y

	// Writes on the same record conflict; the store executed T1's x-write
	// first. The y-writes follow the same direction in the correct run
	// and the opposite one in the crossed run.
	store.AddConflict("w1x", "w2x")
	store.WeakOut.Add("w1x", "w2x")
	store.AddConflict("w1y", "w2y")
	if crossed {
		store.WeakOut.Add("w2y", "w1y")
	} else {
		store.WeakOut.Add("w1y", "w2y")
	}
	return sys
}

func main() {
	for _, crossed := range []bool{false, true} {
		sys := buildExecution(crossed)
		if err := sys.Validate(); err != nil {
			panic(err)
		}
		v, err := ctx.Check(sys, ctx.CheckOptions{KeepFronts: true})
		if err != nil {
			panic(err)
		}
		fmt.Printf("=== crossed=%v ===\n%s\n", crossed, v.Trace())
	}

	// The paper's own worked examples ship with the library:
	for name, sys := range map[string]*ctx.System{
		"figure 3 (incorrect)": ctx.Figure3System(),
		"figure 4 (correct)":   ctx.Figure4System(),
	} {
		ok, err := ctx.IsCompC(sys)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-22s Comp-C = %v\n", name, ok)
	}
}
