package sched

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"compositetx/internal/data"
	"compositetx/internal/front"
	"compositetx/internal/model"
)

// oracleReplay rebuilds the certified history on a fresh always-admit
// engine: every delta the pipeline absorbed — fast path or not — is
// re-admitted in admission order, exactly as rejection recovery replays
// the tail. The returned system is the reference the fast-path certifier
// must match byte-for-byte.
func oracleReplay(t *testing.T, rt *Runtime) *model.System {
	t.Helper()
	c := rt.certifier()
	if c == nil {
		t.Fatal("certification is off")
	}
	c.mu.Lock()
	tail := append([]*front.Delta(nil), c.tail...)
	c.mu.Unlock()
	oracle := front.NewIncremental(front.IncrementalOptions{PropagateInputs: true})
	for i, d := range tail {
		v, err := oracle.Admit(d)
		if err != nil {
			t.Fatalf("oracle admit of tail delta %d: %v", i, err)
		}
		if v != nil {
			t.Fatalf("oracle rejected tail delta %d: %s", i, v.Reason)
		}
	}
	return oracle.System()
}

func encodeSystem(t *testing.T, sys *model.System) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sys.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// TestCertifyPipelineByteIdentity is the pipeline's soundness property:
// over random workloads — conflicting and disjoint, run by concurrent
// clients (so admission interleaves with delta construction, and under
// -race the pipeline's synchronization is exercised for real) — the
// certifier's accumulated system is byte-identical to a fresh
// always-admit oracle engine replaying the same admitted deltas. Run for
// the default (fast-path) pipeline and with the fast path disabled; the
// fast path must fire on the disjoint-leaning mixes.
func TestCertifyPipelineByteIdentity(t *testing.T) {
	sawFast := false
	for _, opts := range []CertifyOptions{{}, {NoFastPath: true}} {
		for seed := int64(1); seed <= 4; seed++ {
			for _, mix := range []struct {
				name        string
				items       int
				read, write float64
			}{
				{"conflicting", 2, 0.2, 0.6},
				{"disjoint-leaning", 64, 0.7, 0.1},
			} {
				topo := DiamondTopology()
				rt := topo.NewRuntime(Hybrid)
				rt.CertOpts = opts
				if err := rt.EnableCertify(); err != nil {
					t.Fatal(err)
				}
				progs := GenPrograms(topo, WorkloadParams{
					Roots: 24, StepsPerTx: 3, Items: mix.items,
					ReadRatio: mix.read, WriteRatio: mix.write, Seed: seed,
				})
				if err := Run(rt, progs, 8); err != nil {
					t.Fatal(err)
				}
				m := rt.Metrics()
				if m.Commits != 24 || m.CertifyRejects != 0 {
					t.Fatalf("%s/seed%d: commits=%d rejects=%d, want 24/0", mix.name, seed, m.Commits, m.CertifyRejects)
				}
				if opts.NoFastPath && m.CertifyFastPath != 0 {
					t.Fatalf("%s/seed%d: fast path fired %d times with NoFastPath set", mix.name, seed, m.CertifyFastPath)
				}
				if m.CertifyFastPath > 0 {
					sawFast = true
				}
				got := encodeSystem(t, rt.CertifiedSystem())
				want := encodeSystem(t, oracleReplay(t, rt))
				if !bytes.Equal(got, want) {
					t.Fatalf("%s/seed%d (fastpath=%v): certified system diverged from always-admit oracle:\ncertified: %s\noracle:    %s",
						mix.name, seed, !opts.NoFastPath, got, want)
				}
				// The certified history and the recorder's committed
				// projection agree on the verdict and the node population.
				rec := rt.RecordedSystem()
				if cs := rt.CertifiedSystem(); cs.NumNodes() != rec.NumNodes() {
					t.Fatalf("%s/seed%d: certifier has %d nodes, recorder %d", mix.name, seed, cs.NumNodes(), rec.NumNodes())
				}
			}
		}
	}
	if !sawFast {
		t.Fatal("sweep never exercised the fast path")
	}
}

// TestCertifyAfterWALTypedError is the EnableCertify/EnableWAL ordering
// regression: enabling certification on a runtime whose WAL is already
// attached must fail with ErrCertifyAfterWAL (the journaled metadata
// record cannot be amended), leaving certification off.
func TestCertifyAfterWALTypedError(t *testing.T) {
	rt := DiamondTopology().NewRuntime(Hybrid)
	if err := rt.EnableWAL(WALConfig{Dir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	err := rt.EnableCertify()
	if !errors.Is(err, ErrCertifyAfterWAL) {
		t.Fatalf("EnableCertify after EnableWAL: got %v, want ErrCertifyAfterWAL", err)
	}
	if rt.Certifying() {
		t.Fatal("failed EnableCertify left certification on")
	}
	// The correct order still works.
	rt2 := DiamondTopology().NewRuntime(Hybrid)
	if err := rt2.EnableCertify(); err != nil {
		t.Fatal(err)
	}
	if err := rt2.EnableWAL(WALConfig{Dir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if !rt2.Certifying() {
		t.Fatal("certify-then-WAL runtime is not certifying")
	}
}

// TestCertifyRejectionRebuild drives a real rejection through the
// pipeline and checks the recovery story: the rebuild counters tick, the
// runtime keeps certifying commits afterwards, and the rebuilt engine is
// still byte-identical to the always-admit oracle over the admitted
// deltas.
func TestCertifyRejectionRebuild(t *testing.T) {
	rt := DiamondTopology().NewRuntime(OpenNested)
	if err := rt.EnableCertify(); err != nil {
		t.Fatal(err)
	}
	errA, errB := submitCrossedWrites(t, rt, "TA", "TB")
	rejects := 0
	for _, err := range []error{errA, errB} {
		if err != nil {
			if !errors.Is(err, ErrCertifyViolation) {
				t.Fatalf("unexpected submit error: %v", err)
			}
			rejects++
		}
	}
	if rejects != 1 {
		t.Fatalf("want exactly one rejection, got %d (A=%v B=%v)", rejects, errA, errB)
	}

	// Life goes on: post-rejection commits are certified and admitted.
	if _, err := rt.Submit("T-after", Invocation{
		Component: "agencyA",
		Steps: []Step{{Invoke: &Invocation{Component: "ledger", Item: "z", Mode: data.ModeWrite,
			Steps: []Step{{Op: &data.Op{Mode: data.ModeWrite, Item: "z", Arg: 1}}}}}},
	}); err != nil {
		t.Fatal(err)
	}

	m := rt.Metrics()
	if m.CertifyRejects != 1 {
		t.Fatalf("certify-rejects = %d, want 1", m.CertifyRejects)
	}
	if m.CertifyRebuildNanos <= 0 {
		t.Fatalf("certify-rebuild-ns = %d, want > 0 after a rejection", m.CertifyRebuildNanos)
	}
	if s := m.String(); !strings.Contains(s, "certify-rebuild-ns=") || !strings.Contains(s, "certify-fastpath=") {
		t.Fatalf("Metrics.String misses the certify counters: %s", s)
	}

	got := encodeSystem(t, rt.CertifiedSystem())
	want := encodeSystem(t, oracleReplay(t, rt))
	if !bytes.Equal(got, want) {
		t.Fatalf("rebuilt certifier diverged from always-admit oracle:\ncertified: %s\noracle:    %s", got, want)
	}
	ok, err := front.IsCompC(rt.RecordedSystem())
	if err != nil || !ok {
		t.Fatalf("committed history after rejection+rebuild must be Comp-C (ok=%v err=%v)", ok, err)
	}
}

// TestCertifySerialBaseline pins the CertifyOptions.Serial escape hatch:
// the pre-pipeline path still certifies correctly (it is the E17
// baseline), rejects violations, and never takes the fast path.
func TestCertifySerialBaseline(t *testing.T) {
	topo := DiamondTopology()
	rt := topo.NewRuntime(Hybrid)
	rt.CertOpts = CertifyOptions{Serial: true}
	if err := rt.EnableCertify(); err != nil {
		t.Fatal(err)
	}
	progs := GenPrograms(topo, WorkloadParams{
		Roots: 16, StepsPerTx: 3, Items: 8,
		ReadRatio: 0.4, WriteRatio: 0.3, Seed: 7,
	})
	if err := Run(rt, progs, 4); err != nil {
		t.Fatal(err)
	}
	m := rt.Metrics()
	if m.Commits != 16 || m.CertifyRejects != 0 {
		t.Fatalf("commits=%d rejects=%d, want 16/0", m.Commits, m.CertifyRejects)
	}
	if m.CertifyFastPath != 0 {
		t.Fatalf("serial baseline took the fast path %d times", m.CertifyFastPath)
	}
	got := encodeSystem(t, rt.CertifiedSystem())
	want := encodeSystem(t, oracleReplay(t, rt))
	if !bytes.Equal(got, want) {
		t.Fatal("serial certifier diverged from always-admit oracle")
	}

	rt2 := DiamondTopology().NewRuntime(OpenNested)
	rt2.CertOpts = CertifyOptions{Serial: true}
	if err := rt2.EnableCertify(); err != nil {
		t.Fatal(err)
	}
	errA, errB := submitCrossedWrites(t, rt2, "TA", "TB")
	rejects := 0
	for _, err := range []error{errA, errB} {
		if err != nil && errors.Is(err, ErrCertifyViolation) {
			rejects++
		}
	}
	if rejects != 1 {
		t.Fatalf("serial baseline: want exactly one rejection, got %d (A=%v B=%v)", rejects, errA, errB)
	}
}

// TestCertifyCheckpointFoldPipeline runs the pipeline across checkpoint
// folds: the fold clears the delta tail and conflict index mid-stream,
// in-flight snapshots are invalidated by the fold generation, and the
// certifier keeps admitting correctly — with the post-fold tail still
// replaying cleanly onto the folded engine's contract (no pair may
// reference a folded node).
func TestCertifyCheckpointFoldPipeline(t *testing.T) {
	topo := DiamondTopology()
	rt := topo.NewRuntime(Hybrid)
	if err := rt.EnableCertify(); err != nil {
		t.Fatal(err)
	}
	rt.EnableCheckpoints(CheckpointConfig{Every: 8})
	progs := GenPrograms(topo, WorkloadParams{
		Roots: 40, StepsPerTx: 3, Items: 4,
		ReadRatio: 0.3, WriteRatio: 0.3, Seed: 3,
	})
	if err := Run(rt, progs, 8); err != nil {
		t.Fatal(err)
	}
	m := rt.Metrics()
	if m.Commits != 40 || m.CertifyRejects != 0 {
		t.Fatalf("commits=%d rejects=%d, want 40/0", m.Commits, m.CertifyRejects)
	}
	if m.CheckpointsTaken == 0 {
		t.Fatal("no checkpoint ran — the fold path was not exercised")
	}
	// After the folds the certifier holds only the live tail; it must
	// still be a valid, Comp-C system.
	cs := rt.CertifiedSystem()
	if err := cs.Validate(); err != nil {
		t.Fatalf("folded certified system malformed: %v", err)
	}
	ok, err := front.IsCompC(cs)
	if err != nil || !ok {
		t.Fatalf("folded certified system must be Comp-C (ok=%v err=%v)", ok, err)
	}
}
