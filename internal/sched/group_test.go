package sched

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// Group commit on a durable cluster: every force point goes through the
// WAL flush daemon, the metrics expose the coalescing counters, and the
// run is still conserved + Comp-C.
func TestDistGroupCommitMetrics(t *testing.T) {
	cfg := distConfig(t, Hybrid, "chan", true)
	cfg.GroupCommit = true
	cl := startCluster(t, cfg)

	progs := transferPrograms(24)
	committed := distRun(t, cl, progs, 8)
	if len(committed) != len(progs) {
		t.Fatalf("%d of %d programs committed", len(committed), len(progs))
	}
	if err := cl.Settle(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	distConserved(t, cl)
	distAudit(t, cl)

	m := cl.Metrics()
	if m.GroupForces == 0 {
		t.Fatalf("group commit enabled but GroupForces=0: %s", m)
	}
	if m.GroupWindows == 0 || m.GroupWindows > m.GroupForces {
		t.Fatalf("GroupWindows=%d inconsistent with GroupForces=%d: %s",
			m.GroupWindows, m.GroupForces, m)
	}
	if m.GroupMaxBatch == 0 {
		t.Fatalf("GroupMaxBatch=0 with %d forces: %s", m.GroupForces, m)
	}
	if s := m.String(); !strings.Contains(s, "group[") {
		t.Fatalf("metrics string missing group commit line: %s", s)
	}
}

// Per-txn fsync mode must not report group-commit activity: the counters
// (and the metrics line) only appear when the coalesced path is in use.
func TestDistPerTxnFsyncNoGroupMetrics(t *testing.T) {
	cl := startCluster(t, distConfig(t, Hybrid, "chan", true))
	for i, prog := range transferPrograms(4) {
		if _, err := cl.Submit(fmt.Sprintf("T%d", i+1), prog); err != nil {
			t.Fatalf("T%d: %v", i+1, err)
		}
	}
	if err := cl.Settle(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	m := cl.Metrics()
	if m.GroupForces != 0 {
		t.Fatalf("GroupForces=%d without GroupCommit: %s", m.GroupForces, m)
	}
	if s := m.String(); strings.Contains(s, "group[") {
		t.Fatalf("metrics string reports group commit without it: %s", s)
	}
}

// Over TCP the cluster metrics additionally surface the transport's
// message-coalescing counters.
func TestDistTCPCoalesceMetrics(t *testing.T) {
	cfg := distConfig(t, Hybrid, "tcp", true)
	cfg.GroupCommit = true
	cl := startCluster(t, cfg)

	progs := transferPrograms(12)
	committed := distRun(t, cl, progs, 4)
	if len(committed) != len(progs) {
		t.Fatalf("%d of %d programs committed", len(committed), len(progs))
	}
	if err := cl.Settle(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	distConserved(t, cl)
	distAudit(t, cl)

	m := cl.Metrics()
	if m.Coal.Messages == 0 || m.Coal.Flushes == 0 {
		t.Fatalf("tcp transport but no coalesce stats: %+v", m.Coal)
	}
	if m.Coal.Flushes > m.Coal.Messages {
		t.Fatalf("flushes=%d > messages=%d", m.Coal.Flushes, m.Coal.Messages)
	}
	if s := m.String(); !strings.Contains(s, "coal[") {
		t.Fatalf("metrics string missing coalesce line: %s", s)
	}
}
