package sched

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"compositetx/internal/wal"
)

// Durability wiring: with a WAL attached (EnableWAL), the runtime journals
// every state mutation *before* performing it — write-ahead applies with
// their undo values, write-ahead compensations, and at root commit the
// whole staged record (nodes, events, commit marker) as one contiguous
// batch. The in-memory stores and recorder stay volatile; the log is the
// single source of truth a crash leaves behind, and Recover (recover.go)
// rebuilds both halves from it.

// WALConfig configures the runtime's write-ahead log.
type WALConfig struct {
	// Dir is the log directory (created if absent). An existing non-empty
	// log is rejected with ErrWALExists: a runtime only ever appends to a
	// log it started, and Recover owns reopening.
	Dir string
	// SyncEvery is the group-commit knob (see wal.Options.SyncEvery):
	// 0/1 fsync every record, N>1 every Nth, negative never.
	SyncEvery int
	// SegmentBytes rotates segment files at this size (0 = 8 MiB).
	SegmentBytes int64
}

// Typed durability errors.
var (
	// ErrCrashed is returned by Submit (and drained lock waits) after a
	// simulated process crash (FaultCrash): the attempt is abandoned
	// without rollback, exactly as a real crash would leave it, and the
	// WAL is the only surviving state.
	ErrCrashed = errors.New("sched: runtime crashed")
	// ErrWALExists rejects EnableWAL on a directory that already holds
	// records; recover it instead of appending to it blind.
	ErrWALExists = errors.New("sched: WAL directory already holds a log")
)

// walMeta is the TypeMeta payload: enough configuration to rebuild the
// runtime at recovery without any state beside the log directory.
type walMeta struct {
	Version  int          `json:"version"`
	Protocol string       `json:"protocol"`
	Topology topologyJSON `json:"topology"`
	// Certify records live-certification mode (EnableCertify before
	// EnableWAL), so Recover rebuilds the certifier over the recovered
	// history.
	Certify bool `json:"certify,omitempty"`
	// Dist marks a distributed coordinator log (2PC decisions instead of
	// commit markers): recover it with RecoverCoordinator, not Recover.
	Dist bool `json:"dist,omitempty"`
}

// EnableWAL attaches a fresh write-ahead log to the runtime: a metadata
// record (protocol + topology) followed by one seed record per existing
// store item, fsynced before the first transaction can touch it. Call
// after seeding stores and before submitting transactions.
func (r *Runtime) EnableWAL(cfg WALConfig) error {
	l, existing, err := wal.Open(cfg.Dir, wal.Options{SyncEvery: cfg.SyncEvery, SegmentBytes: cfg.SegmentBytes})
	if err != nil {
		return err
	}
	if existing > 0 {
		l.Close()
		return fmt.Errorf("%w: %q holds %d records", ErrWALExists, cfg.Dir, existing)
	}
	meta := walMeta{Version: 1, Protocol: r.protocol.String(), Topology: topologyToDoc(r.topo), Certify: r.Certifying()}
	blob, err := json.Marshal(meta)
	if err != nil {
		l.Close()
		return err
	}
	if _, err := l.Append(wal.Record{Type: wal.TypeMeta, Meta: blob}); err != nil {
		l.Close()
		return err
	}
	// Seed baseline: deterministic (sorted) order so identical setups
	// produce identical logs.
	names := make([]string, 0, len(r.comps))
	for n := range r.comps {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := r.comps[n]
		if c.store == nil {
			continue
		}
		snap := c.store.Snapshot()
		items := make([]string, 0, len(snap))
		for it := range snap {
			items = append(items, it)
		}
		sort.Strings(items)
		for _, it := range items {
			if _, err := l.Append(wal.Record{Type: wal.TypeSeed, Comp: n, Item: it, Prev: snap[it]}); err != nil {
				l.Close()
				return err
			}
		}
	}
	if err := l.Sync(); err != nil {
		l.Close()
		return err
	}
	r.wal = l
	return nil
}

// CloseWAL flushes and closes the log (a clean shutdown; the log stays
// recoverable and replayable).
func (r *Runtime) CloseWAL() error {
	if r.wal == nil {
		return nil
	}
	return r.wal.Close()
}

// WALRecords returns the number of records journaled so far (0 without a
// WAL).
func (r *Runtime) WALRecords() uint64 {
	if r.wal == nil {
		return 0
	}
	return r.wal.Records()
}

// journal appends one record when a WAL is attached. An append against a
// crash-abandoned log surfaces as ErrCrashed so the transaction drains
// like every other participant of the crash.
func (r *Runtime) journal(rec wal.Record) (uint64, error) {
	if r.wal == nil {
		return 0, nil
	}
	lsn, err := r.wal.Append(rec)
	if err != nil {
		if errors.Is(err, wal.ErrClosed) {
			return 0, ErrCrashed
		}
		return 0, err
	}
	return lsn, nil
}

// journalBatch appends records contiguously (commit batches).
func (r *Runtime) journalBatch(recs []wal.Record) error {
	if r.wal == nil {
		return nil
	}
	if _, err := r.wal.AppendBatch(recs); err != nil {
		if errors.Is(err, wal.ErrClosed) {
			return ErrCrashed
		}
		return err
	}
	return nil
}

// journalCommit journals a committing attempt's staged record — every
// node declaration and event, terminated by the commit marker — as one
// contiguous batch. A transaction is recovered as committed iff the
// commit marker survives; the batch being contiguous and the log being
// flushed in order means a durable commit marker implies the durable
// presence of everything it covers.
func (r *Runtime) journalCommit(a *attempt) error {
	if r.wal == nil {
		return nil
	}
	txn := string(a.root)
	recs := make([]wal.Record, 0, len(a.stage.nodes)+len(a.stage.events)+1)
	for _, n := range a.stage.nodes {
		recs = append(recs, wal.Record{
			Type: wal.TypeNode, Txn: txn,
			Node: string(n.id), Parent: string(n.parent), Sched: n.sched,
		})
	}
	for _, e := range a.stage.events {
		recs = append(recs, wal.Record{
			Type: wal.TypeEvent, Txn: txn,
			Node: string(e.op), Parent: string(e.parentTx),
			Comp: e.comp, Item: e.item, Mode: string(e.mode), Seq: e.seq,
		})
	}
	recs = append(recs, wal.Record{Type: wal.TypeCommit, Txn: txn})
	return r.journalBatch(recs)
}

// noteWALErr records the first filesystem error hit while staging a
// simulated crash image (wal.Abandon). The crash itself proceeds — a real
// crash gets no error handling either — but the error is retained so
// tests and operators can tell a clean simulation from a broken disk.
func (r *Runtime) noteWALErr(err error) {
	r.walErrMu.Lock()
	if r.walErr == nil {
		r.walErr = err
	}
	r.walErrMu.Unlock()
}

// WALError reports the first filesystem error recorded against the WAL
// (nil in a healthy run).
func (r *Runtime) WALError() error {
	r.walErrMu.Lock()
	defer r.walErrMu.Unlock()
	return r.walErr
}

// crashPanic unwinds the crashing attempt's stack; Submit's deferred
// recover converts it to ErrCrashed. Any other panic value keeps
// propagating.
type crashPanic struct{}

// crashNow simulates a process crash at the current point: the runtime's
// crash flag flips (every other Submit drains via lock-wait and step-loop
// checks), the WAL is abandoned exactly as the OS would leave it (the
// unsynced buffer is lost; torn, when non-nil, remains as a half-written
// record), all lock managers wake their sleepers, and the calling attempt
// unwinds without any rollback — its locks stay abandoned, its applied
// operations stay in the stores, just like a real crash. Never returns.
func (r *Runtime) crashNow(torn *wal.Record) {
	if r.crashed.CompareAndSwap(false, true) {
		r.crashes.Add(1)
		if r.wal != nil {
			if err := r.wal.Abandon(torn); err != nil {
				// A real crash gets no error handling either; record the
				// staging failure so tests surface filesystem problems.
				r.noteWALErr(err)
			}
		}
		r.globalLM.wake()
		for _, c := range r.comps {
			c.lm.wake()
		}
	}
	panic(crashPanic{})
}

// fireCrash checks the crash fault site (comp, txn, step) and, when it
// fires, crashes the runtime. tearing selects the mid-WAL-append variant:
// rec is left half-written at the log tail.
func (r *Runtime) fireCrash(comp, txn, step string, rec *wal.Record) {
	if r.inj == nil || !r.inj.fire(FaultCrash, comp, txn, step) {
		return
	}
	if rec != nil && r.inj.tear() {
		r.crashNow(rec)
	}
	r.crashNow(nil)
}

// topologyToDoc serializes the runtime's topology for the WAL metadata
// record. Mode tables are written as explicit conflict pairs (the custom
// form), which decode to behaviorally identical tables.
func topologyToDoc(t *Topology) topologyJSON {
	var doc topologyJSON
	if t == nil {
		return doc
	}
	for _, s := range t.Specs {
		cj := componentJSON{Name: s.Name, Store: s.HasStore}
		if s.Modes != nil {
			pairs := s.Modes.Pairs()
			conflicts := make([][2]string, len(pairs))
			for i, p := range pairs {
				conflicts[i] = [2]string{string(p[0]), string(p[1])}
			}
			raw, err := json.Marshal(customModesJSON{Conflicts: conflicts})
			if err != nil {
				panic(fmt.Sprintf("sched: encoding modes of %q: %v", s.Name, err))
			}
			cj.Modes = raw
		}
		doc.Components = append(doc.Components, cj)
	}
	doc.Children = t.Children
	doc.Entries = t.Entries
	return doc
}
