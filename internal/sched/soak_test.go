package sched

import (
	"fmt"
	"testing"
	"time"

	"compositetx/internal/front"
)

// TestSoak hammers every protocol × policy × topology combination with
// randomized jittered workloads and client aborts, validating and
// Comp-C-checking every recorded execution. Skipped with -short.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	topos := map[string]func() *Topology{
		"stack3":  func() *Topology { return StackTopology(3) },
		"bank":    BankTopology,
		"diamond": DiamondTopology,
	}
	for tn, mk := range topos {
		for _, p := range realProtocols {
			if p == OpenNested && tn == "diamond" {
				continue // unsound by design on join configurations
			}
			for _, pol := range []DeadlockPolicy{WaitDie, DetectWFG} {
				name := fmt.Sprintf("%s/%s/%s", tn, p, pol)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					for seed := int64(0); seed < 6; seed++ {
						topo := mk()
						rt := topo.NewRuntime(p)
						rt.Deadlock = pol
						progs := GenPrograms(topo, WorkloadParams{
							Roots: 25, StepsPerTx: 3, Items: 3,
							ReadRatio: 0.25, WriteRatio: 0.35, Seed: seed,
						})
						progs = Jitter(progs, 120*time.Microsecond, seed)
						if err := Run(rt, progs, 6); err != nil {
							t.Fatalf("seed %d: %v", seed, err)
						}
						sys := rt.RecordedSystem()
						if err := sys.Validate(); err != nil {
							t.Fatalf("seed %d: %v", seed, err)
						}
						ok, err := front.IsCompC(sys)
						if err != nil || !ok {
							t.Fatalf("seed %d: Comp-C=%v err=%v", seed, ok, err)
						}
					}
				})
			}
		}
	}
}
