package sched

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"compositetx/internal/model"
	"compositetx/internal/wal"
)

// Checkpointing keeps a long-running runtime's memory and recovery time
// flat: at a *cut* — a moment with no mutation half-journaled and no
// commit half-published — the runtime (1) snapshots every store into the
// WAL as a checkpoint batch (TypeCkItem items + self-anchoring
// TypeCheckpoint marker), (2) folds the certifier's fully-committed
// history out of the incremental engine (front.Incremental.Checkpoint)
// and prunes the recorder and the certifier's event index to match, (3)
// compacts the MVCC version chains below the oldest active snapshot
// frontier, and (4) deletes WAL segments wholly older than the
// truncation barrier. Recovery (sched.Recover) then replays only the
// tail since the marker.
//
// The cut is a sync.RWMutex (ckState.gate): every journal-then-mutate
// window — a leaf apply, a compensation, a whole commit publication, and
// the taking of an optimistic snapshot — holds the read side, and the
// checkpoint holds the write side across [store snapshot, certifier
// fold, marker append]. With the gate held exclusively, every journaled
// mutation's effect is either fully in the snapshot (record LSN below
// the marker) or fully after it (LSN above) — never half of each — which
// is exactly the invariant that lets redo skip everything at or below
// the marker. Lock order: gate before Runtime.mu, everywhere.
//
// The truncation barrier protects two things the tail replay still
// needs: the checkpoint batch itself, and the journaled applies of
// attempts that were in flight at the cut (their undo information; the
// checkpoint snapshot contains their un-committed effects, so recovery
// must be able to invert them). The barrier is the minimum of the
// batch's first LSN and every in-flight attempt's first apply LSN.

// ErrOverload rejects a Submit at the admission gate while the runtime
// is above its high memory watermark; the caller should back off and
// retry once the triggered checkpoint has drained the backlog.
var ErrOverload = errors.New("sched: runtime overloaded, admission throttled")

// CheckpointConfig tunes automatic checkpointing and overload
// backpressure. The zero value disables both (manual Checkpoint calls
// still work).
type CheckpointConfig struct {
	// Every takes a checkpoint after every N commits (0 = no cadence).
	Every int
	// HighWater throttles new root admission with ErrOverload — and
	// triggers an early checkpoint — once the certifier/recorder holds
	// this many live forest nodes (0 = no watermark).
	HighWater int
	// LowWater re-opens admission once the live node count falls below
	// it (default HighWater/2).
	LowWater int
	// HeapHighWater, when nonzero, additionally trips the throttle when
	// runtime.MemStats.HeapAlloc exceeds this many bytes. The gauge is
	// sampled at commit points, at most once per 64 commits.
	HeapHighWater uint64
}

// CheckpointStats reports one completed checkpoint.
type CheckpointStats struct {
	LSN             uint64 // LSN of the checkpoint marker (0 without a WAL)
	Roots           int    // committed roots folded out of the certifier
	Nodes           int    // forest nodes pruned (certifier or recorder)
	SegmentsDeleted int    // WAL segments removed by TruncateBefore
	VersionsDropped int    // MVCC versions compacted out of the stores
}

// ckGate is the consistency cut, sharded big-reader style: a reader (a
// journal+apply pair on some attempt's hot path) takes one of gateShards
// cache-line-padded RWMutexes — picked by the attempt's timestamp, so
// concurrent clients land on different lines — and the checkpoint writer
// takes them all. The happens-before structure is exactly a single
// RWMutex's; sharding only removes the reader-reader contention that a
// shared readerCount word costs on the optimistic read path.
type ckGate struct {
	shards [gateShards]paddedRWMutex
}

const gateShards = 16

type paddedRWMutex struct {
	sync.RWMutex
	_ [40]byte // pad the 24-byte RWMutex to a cache line
}

func (g *ckGate) RLock(key uint64)   { g.shards[key%gateShards].RLock() }
func (g *ckGate) RUnlock(key uint64) { g.shards[key%gateShards].RUnlock() }

// Lock acquires every shard in index order (the only writer is the
// checkpoint, serialized by ck.running, so the fixed order is deadlock-
// free against single-shard readers).
func (g *ckGate) Lock() {
	for i := range g.shards {
		g.shards[i].Lock()
	}
}

func (g *ckGate) Unlock() {
	for i := range g.shards {
		g.shards[i].Unlock()
	}
}

// ckState is the runtime's checkpoint machinery; always allocated (New),
// inert until EnableCheckpoints or an explicit Checkpoint call.
type ckState struct {
	gate ckGate // the consistency cut (see package comment above)

	cfg CheckpointConfig

	mu       sync.Mutex
	inflight map[string]uint64     // txn -> first journaled-apply LSN of its live attempt
	snaps    map[*attempt]struct{} // active attempts with a registered snapshot (oldest stamp in attempt.snapLow)

	sinceCk  atomic.Int64 // commits since the last checkpoint
	running  atomic.Bool  // a checkpoint is in progress
	throttle atomic.Bool  // high watermark tripped; Submit rejects with ErrOverload
}

func newCkState() *ckState {
	return &ckState{
		inflight: map[string]uint64{},
		snaps:    map[*attempt]struct{}{},
	}
}

// noteApply registers an attempt's first journaled apply; the truncation
// barrier never passes it while the attempt is live.
func (ck *ckState) noteApply(txn string, lsn uint64) {
	ck.mu.Lock()
	if _, ok := ck.inflight[txn]; !ok {
		ck.inflight[txn] = lsn
	}
	ck.mu.Unlock()
}

// noteSnap registers an optimistic attempt's snapshot stamp (keeping the
// oldest); Store.Compact never drops a version a registered snapshot may
// still need to validate against. Called under gate.RLock, so no
// snapshot can be taken while a checkpoint computes the frontier. Only
// the attempt's first snapshot read touches the shared registry — the
// running minimum lives on the attempt itself (a.snapLow, ordered by the
// gate), keeping the per-read cost off the optimistic hot path.
func (ck *ckState) noteSnap(a *attempt, ts uint64) {
	if a.snapReg {
		if ts < a.snapLow {
			a.snapLow = ts
		}
		return
	}
	a.snapReg, a.snapLow = true, ts
	ck.mu.Lock()
	ck.snaps[a] = struct{}{}
	ck.mu.Unlock()
}

// drop deregisters a finished attempt (committed or fully rolled back).
func (ck *ckState) drop(a *attempt) {
	ck.mu.Lock()
	delete(ck.inflight, string(a.root))
	delete(ck.snaps, a)
	ck.mu.Unlock()
}

// barrier returns the truncation barrier: no WAL record at or above it
// may be deleted. batchFirst is the checkpoint batch's first LSN.
func (ck *ckState) barrier(batchFirst uint64) uint64 {
	b := batchFirst
	ck.mu.Lock()
	for _, lsn := range ck.inflight {
		if lsn < b {
			b = lsn
		}
	}
	ck.mu.Unlock()
	return b
}

// frontier returns the oldest stamp an active snapshot may still
// validate at, or def when no snapshot is registered. Called under
// gate.Lock, so the registry is complete and every registered attempt's
// snapLow is visible.
func (ck *ckState) frontier(def uint64) uint64 {
	f := def
	ck.mu.Lock()
	for a := range ck.snaps {
		if a.snapLow < f {
			f = a.snapLow
		}
	}
	ck.mu.Unlock()
	return f
}

// EnableCheckpoints installs the automatic checkpoint cadence and
// overload watermarks. Call before submitting transactions.
func (r *Runtime) EnableCheckpoints(cfg CheckpointConfig) {
	if cfg.LowWater == 0 {
		cfg.LowWater = cfg.HighWater / 2
	}
	r.ck.cfg = cfg
}

// ckMeta is the TypeCheckpoint marker's Meta payload: the full runtime
// configuration (the TypeMeta record may live in a truncated segment)
// plus the cumulative state a tail replay cannot reconstruct.
type ckMeta struct {
	walMeta
	Seq         uint64         `json:"seq"`       // global clock at the cut
	Committed   int64          `json:"committed"` // cumulative commits at the cut
	Quarantines []ckQuarantine `json:"quarantines,omitempty"`
}

// ckQuarantine serializes a leaked compensation for the marker, so
// pre-checkpoint quarantines survive segment truncation.
type ckQuarantine struct {
	Component string `json:"component"`
	Txn       string `json:"txn"`
	Item      string `json:"item"`
	Mode      string `json:"mode"`
	Impl      string `json:"impl,omitempty"`
	Arg       int64  `json:"arg"`
	Err       string `json:"err"`
}

// liveNodes gauges the engine memory the watermarks police: the
// certifier's accumulated forest when certifying, the recorder's
// otherwise.
func (r *Runtime) liveNodes() int {
	if c := r.certifier(); c != nil {
		return c.liveNodes()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.rec.nodes)
}

// Checkpoint takes one checkpoint now: store snapshots journaled as a
// WAL checkpoint batch, certifier and recorder folded to their live
// tails, MVCC chains compacted at the active-snapshot frontier, and
// segments wholly behind the truncation barrier deleted. Concurrent
// Submits keep running; they only pause for the cut itself. Returns
// (nil, nil) when another checkpoint is already in progress. A crash
// injected at the "checkpoint" fault sites surfaces as ErrCrashed, like
// any other simulated crash.
func (r *Runtime) Checkpoint() (st *CheckpointStats, err error) {
	if !r.ck.running.CompareAndSwap(false, true) {
		return nil, nil
	}
	defer r.ck.running.Store(false)
	// A FaultCrash at a checkpoint site unwinds with crashPanic (there is
	// no Submit above us to convert it).
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(crashPanic); ok {
				st, err = nil, ErrCrashed
				return
			}
			panic(p)
		}
	}()
	if r.crashed.Load() {
		return nil, ErrCrashed
	}
	// Crash site "checkpoint:begin": before anything — recovery sees the
	// previous checkpoint (or none) untouched.
	r.fireCrash("", "checkpoint", "begin", nil)

	st = &CheckpointStats{}
	if err := r.checkpointCut(st); err != nil {
		return nil, err
	}
	// Crash site "checkpoint:end": the marker is durable, truncation has
	// happened — recovery must start from the new checkpoint.
	r.fireCrash("", "checkpoint", "end", nil)

	r.ckTaken.Add(1)
	r.ckNodesPruned.Add(int64(st.Nodes))
	r.ckSegsTruncated.Add(int64(st.SegmentsDeleted))
	r.ckVersionsDropped.Add(int64(st.VersionsDropped))
	r.ck.sinceCk.Store(0)
	r.relieveOverload()
	return st, nil
}

// checkpointCut performs the gated section of a checkpoint. It holds the
// cut (gate.Lock) across store snapshots, the certifier/recorder fold,
// the marker append, and the store compaction, then truncates the log.
func (r *Runtime) checkpointCut(st *CheckpointStats) error {
	r.ck.gate.Lock()
	defer r.ck.gate.Unlock()

	// 1. Journal the store snapshots. With the gate held exclusively no
	// mutation is half-journaled: everything already in the log is fully
	// reflected in these values, everything after the marker is not at
	// all.
	var batchFirst, markerLSN uint64
	if r.wal != nil {
		items := r.checkpointItems()
		meta := ckMeta{
			walMeta: walMeta{
				Version:  1,
				Protocol: r.protocol.String(),
				Topology: topologyToDoc(r.topo),
				Certify:  r.Certifying(),
			},
			Seq:       r.seq.Load(),
			Committed: r.commits.Load(),
		}
		r.qmu.Lock()
		for _, q := range r.quarantined {
			meta.Quarantines = append(meta.Quarantines, ckQuarantine{
				Component: q.Component, Txn: q.Txn,
				Item: q.Op.Item, Mode: string(q.Op.Mode), Impl: string(q.Op.Impl),
				Arg: q.Op.Arg, Err: q.Err.Error(),
			})
		}
		r.qmu.Unlock()
		blob, err := json.Marshal(meta)
		if err != nil {
			return err
		}
		if len(items) > 0 {
			first, err := r.wal.AppendBatch(items)
			if err != nil {
				return r.ckWALErr(err)
			}
			batchFirst = first
		}
		// Crash site "checkpoint:marker": the items are journaled but the
		// marker is not — an incomplete checkpoint recovery must ignore.
		r.fireCrash("", "checkpoint", "marker", nil)
		markerLSN, err = r.wal.AppendCheckpoint(nil, wal.Record{Meta: blob})
		if err != nil {
			return r.ckWALErr(err)
		}
		if batchFirst == 0 {
			batchFirst = markerLSN
		}
		st.LSN = markerLSN
	}

	// 2. Fold the committed history out of the certifier, prune the
	// recorder. Everything accumulated is committed (admits happen at
	// commit), so the whole prefix folds; the engine's later verdicts are
	// unchanged by the multi-level serial-witness argument (see
	// front.Incremental.Checkpoint). The certifier fold runs under the
	// certifier's own mutex, serializing against the admission drainer:
	// it also clears the admitted delta tail and the conflict index —
	// pairs against folded events must never be generated again, that is
	// the engine's fold contract — and bumps the fold generation so any
	// in-flight ticket built against a pre-fold snapshot re-derives its
	// cross-stage pairs at admission.
	if c := r.certifier(); c != nil {
		roots, nodes, err := c.fold()
		if err != nil {
			return fmt.Errorf("sched: checkpoint fold: %w", err)
		}
		st.Roots, st.Nodes = roots, nodes
	}
	r.mu.Lock()
	st.Nodes += len(r.rec.nodes)
	// Truncate instead of dropping: the backing arrays are bounded by the
	// largest window between folds and are immediately refilled, so
	// keeping them spares the recorder a fresh growth ladder per window.
	r.rec.nodes = r.rec.nodes[:0]
	r.rec.events = r.rec.events[:0]
	r.mu.Unlock()

	// 3. Compact the MVCC chains. The frontier is the oldest snapshot an
	// active optimistic attempt may still validate at (snapshots register
	// under the gate's read side, so the registry is complete here); with
	// no snapshot outstanding, everything below the clock is fair game.
	frontier := r.ck.frontier(r.seq.Load() + 1)
	for _, c := range r.comps {
		if c.store != nil {
			st.VersionsDropped += c.store.Compact(frontier)
		}
	}

	// 4. Truncate the log behind the barrier.
	if r.wal != nil {
		n, err := r.wal.TruncateBefore(r.ck.barrier(batchFirst))
		if err != nil {
			return r.ckWALErr(err)
		}
		st.SegmentsDeleted = n
	}
	return nil
}

// checkpointItems snapshots every store as TypeCkItem records, in
// deterministic (component, item) order.
func (r *Runtime) checkpointItems() []wal.Record {
	names := make([]string, 0, len(r.comps))
	for n := range r.comps {
		names = append(names, n)
	}
	sort.Strings(names)
	var items []wal.Record
	for _, n := range names {
		c := r.comps[n]
		if c.store == nil {
			continue
		}
		snap := c.store.Snapshot()
		keys := make([]string, 0, len(snap))
		for it := range snap {
			keys = append(keys, it)
		}
		sort.Strings(keys)
		for _, it := range keys {
			items = append(items, wal.Record{Type: wal.TypeCkItem, Comp: n, Item: it, Prev: snap[it]})
		}
	}
	return items
}

// ckWALErr maps a closed (crash-abandoned) log to ErrCrashed, like every
// other journaling path.
func (r *Runtime) ckWALErr(err error) error {
	if errors.Is(err, wal.ErrClosed) {
		return ErrCrashed
	}
	return err
}

// maybeCheckpoint runs the automatic cadence after a commit: a
// checkpoint every cfg.Every commits, or immediately when a watermark
// trips. Runs on the committing goroutine; concurrent commits skip out
// via the running flag.
func (r *Runtime) maybeCheckpoint() {
	cfg := r.ck.cfg
	if cfg.Every <= 0 && cfg.HighWater <= 0 && cfg.HeapHighWater == 0 {
		return
	}
	n := r.ck.sinceCk.Add(1)
	due := cfg.Every > 0 && n >= int64(cfg.Every)
	if !due && cfg.HighWater > 0 && r.liveNodes() >= cfg.HighWater {
		r.ck.throttle.Store(true)
		due = true
	}
	if !due && cfg.HeapHighWater > 0 && n%64 == 0 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > cfg.HeapHighWater {
			r.ck.throttle.Store(true)
			due = true
		}
	}
	if !due {
		return
	}
	// Checkpoint handles its own crash conversion; an error here is
	// recorded (the cadence retries at the next commit).
	if _, err := r.Checkpoint(); err != nil && !errors.Is(err, ErrCrashed) {
		r.noteWALErr(err)
	}
}

// relieveOverload re-checks the watermark after a checkpoint and lifts
// the admission throttle once the backlog has drained below LowWater.
func (r *Runtime) relieveOverload() {
	if !r.ck.throttle.Load() {
		return
	}
	cfg := r.ck.cfg
	if cfg.HighWater > 0 && r.liveNodes() >= cfg.LowWater {
		return
	}
	r.ck.throttle.Store(false)
}

// admit is Submit's backpressure gate: above the high watermark new
// roots are rejected with ErrOverload until a checkpoint drains the
// backlog below the low watermark.
func (r *Runtime) admitRoot() error {
	if r.ck.throttle.Load() {
		r.overloadThrottles.Add(1)
		return fmt.Errorf("sched: admission of new roots suspended above the high watermark: %w", ErrOverload)
	}
	return nil
}

// Checkpoints returns the number of completed checkpoints.
func (r *Runtime) Checkpoints() int64 { return r.ckTaken.Load() }

// Throttled reports whether the overload gate is currently rejecting new
// roots.
func (r *Runtime) Throttled() bool { return r.ck.throttle.Load() }

// foldable is a debugging/test helper: the roots currently accumulated
// in the certifier (nil when certification is off).
func (r *Runtime) certifiedRoots() []model.NodeID {
	c := r.certifier()
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_ = c.flushAllLocked() // parked stages are accumulated roots too
	return c.inc.System().Roots()
}
