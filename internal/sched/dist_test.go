package sched

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"compositetx/internal/comm"
)

// Distributed runtime suite: coordinator + participants over a message
// transport, presumed-abort 2PC, network fault injection, crash-site
// recovery. Reuses the conservation harness from crash_test.go
// (transferTopo / transferPrograms): every committed program moves money
// between east and west, so east+west must equal the seed no matter
// which attempts aborted, crashed, or were compensated.

const distInitial = int64(10000)

func distConfig(t *testing.T, proto Protocol, transport string, durable bool) DistConfig {
	t.Helper()
	cfg := DistConfig{
		Protocol:  proto,
		Topo:      transferTopo(),
		Transport: transport,

		RPCTimeout: 20 * time.Millisecond,
		RPCRetries: 3,
		LockWait:   120 * time.Millisecond,
		MaxRetries: 30,

		AbandonAfter: 250 * time.Millisecond,
		QueryAfter:   60 * time.Millisecond,
		SweepEvery:   15 * time.Millisecond,

		Seeds: map[string]map[string]int64{"east": {"acct": distInitial}},
	}
	if durable {
		cfg.WALRoot = t.TempDir()
	}
	return cfg
}

func startCluster(t *testing.T, cfg DistConfig) *Cluster {
	t.Helper()
	cl, err := StartCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func distConserved(t *testing.T, cl *Cluster) {
	t.Helper()
	east := cl.StoreSnapshot("east")["acct"]
	west := cl.StoreSnapshot("west")["acct"]
	if east+west != distInitial {
		t.Fatalf("east(%d) + west(%d) = %d, want %d: conservation violated",
			east, west, east+west, distInitial)
	}
}

func distAudit(t *testing.T, cl *Cluster) {
	t.Helper()
	v, err := cl.Audit()
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if !v.Correct {
		t.Fatalf("audit: committed history is not Comp-C: %s", v.Reason)
	}
}

// TestDistCommit runs sequential transfers through every protocol over
// both transports, durable, and re-verifies the committed history.
func TestDistCommit(t *testing.T) {
	protocols := map[string]Protocol{
		"hybrid": Hybrid, "closed-nested": ClosedNested,
		"open-nested": OpenNested, "global-2pl": Global2PL,
	}
	for _, transport := range []string{"chan", "tcp"} {
		for pname, proto := range protocols {
			t.Run(transport+"/"+pname, func(t *testing.T) {
				t.Parallel()
				cl := startCluster(t, distConfig(t, proto, transport, true))
				progs := transferPrograms(10)
				for i, prog := range progs {
					res, err := cl.Submit(fmt.Sprintf("T%d", i+1), prog)
					if err != nil {
						t.Fatalf("T%d: %v", i+1, err)
					}
					if res == nil {
						t.Fatalf("T%d: nil result", i+1)
					}
				}
				if err := cl.Settle(5 * time.Second); err != nil {
					t.Fatal(err)
				}
				distConserved(t, cl)
				distAudit(t, cl)
				if m := cl.Metrics(); m.Commits != int64(len(progs)) {
					t.Fatalf("commits = %d, want %d (%s)", m.Commits, len(progs), m)
				}
			})
		}
	}
}

// TestDistVolatile runs a WAL-less cluster: commits still work, the
// history is still checkable; only crash recovery is off the table.
func TestDistVolatile(t *testing.T) {
	cl := startCluster(t, distConfig(t, Hybrid, "chan", false))
	for i, prog := range transferPrograms(6) {
		if _, err := cl.Submit(fmt.Sprintf("T%d", i+1), prog); err != nil {
			t.Fatalf("T%d: %v", i+1, err)
		}
	}
	if err := cl.Settle(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	distConserved(t, cl)
	distAudit(t, cl)
}

// distRun submits programs on a client pool, tolerating ErrCrashed (the
// expected drain of a crashing run), and returns the committed names.
func distRun(t *testing.T, cl *Cluster, progs []Invocation, clients int) map[string]bool {
	t.Helper()
	var mu sync.Mutex
	committed := map[string]bool{}
	work := make(chan int)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				name := fmt.Sprintf("T%d", i+1)
				_, err := cl.Submit(name, progs[i])
				switch {
				case err == nil:
					mu.Lock()
					committed[name] = true
					mu.Unlock()
				case errors.Is(err, ErrCrashed):
				default:
					t.Errorf("%s: unexpected error: %v", name, err)
				}
			}
		}()
	}
	for i := range progs {
		work <- i
	}
	close(work)
	wg.Wait()
	return committed
}

// TestDistConcurrent hammers one cluster with concurrent conflicting
// transfers (every program touches the same two accounts under an RW
// table), so wait-die sacrifices, retries, and cross-participant lock
// waits all fire.
func TestDistConcurrent(t *testing.T) {
	cl := startCluster(t, distConfig(t, Hybrid, "chan", true))
	progs := transferPrograms(24)
	committed := distRun(t, cl, progs, 4)
	if len(committed) != len(progs) {
		t.Fatalf("%d of %d programs committed", len(committed), len(progs))
	}
	if err := cl.Settle(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	distConserved(t, cl)
	distAudit(t, cl)
}

// TestDistSentinelErrors asserts errors.Is works across the RPC layer
// for every sentinel a distributed client can see (satellite: sentinel
// wrapping with %w end to end).
func TestDistSentinelErrors(t *testing.T) {
	t.Run("overload", func(t *testing.T) {
		cfg := distConfig(t, Hybrid, "chan", false)
		cfg.MaxActive = 1
		cl := startCluster(t, cfg)

		entered := make(chan struct{})
		release := make(chan struct{})
		slow := transferPrograms(1)[0]
		slow.Steps[0].Sync = func() {
			close(entered)
			<-release
		}

		done := make(chan error, 1)
		go func() {
			_, err := cl.Submit("Tslow", slow)
			done <- err
		}()
		<-entered
		_, err := cl.Submit("Tover", transferPrograms(1)[0])
		if !errors.Is(err, ErrOverload) {
			t.Fatalf("err = %v, want ErrOverload", err)
		}
		close(release)
		if err := <-done; err != nil {
			t.Fatalf("slow transaction: %v", err)
		}
	})

	t.Run("participant-down", func(t *testing.T) {
		cfg := distConfig(t, Hybrid, "chan", true)
		cfg.MaxRetries = 2
		cfg.RPCTimeout = 10 * time.Millisecond
		cfg.RPCRetries = 1
		cl := startCluster(t, cfg)
		if err := cl.CrashParticipant("east"); err != nil {
			t.Fatal(err)
		}
		_, err := cl.Submit("T1", transferPrograms(1)[0])
		if !errors.Is(err, ErrTooManyRetries) {
			t.Fatalf("err = %v, want ErrTooManyRetries", err)
		}
		// The last abort cause (an RPC deadline against the dead
		// participant) must stay visible through the %w chain.
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("err = %v, want ErrTimeout in the chain", err)
		}
	})

	t.Run("coordinator-crashed", func(t *testing.T) {
		cl := startCluster(t, distConfig(t, Hybrid, "chan", true))
		cl.CrashCoordinator()
		if _, err := cl.Submit("T1", transferPrograms(1)[0]); !errors.Is(err, ErrCrashed) {
			t.Fatalf("err = %v, want ErrCrashed", err)
		}
	})

	t.Run("client-abort", func(t *testing.T) {
		cl := startCluster(t, distConfig(t, Hybrid, "chan", false))
		prog := transferPrograms(1)[0]
		cause := errors.New("boom")
		prog.Steps = append(prog.Steps, Step{Fail: cause})
		_, err := cl.Submit("T1", prog)
		if !errors.Is(err, ErrClientAbort) || !errors.Is(err, cause) {
			t.Fatalf("err = %v, want ErrClientAbort wrapping the cause", err)
		}
		if err := cl.Settle(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		distConserved(t, cl) // the partial first leg must be compensated
	})
}

// TestDistCoordinatorCrash covers both coordinator crash sites. Pre-
// decision: every participant is prepared, no decision is durable, so
// recovery presumes abort and the termination protocol rolls the
// prepared effects back. Post-decision: the decision is durable but
// undelivered, so recovery must re-deliver it from the log alone.
func TestDistCoordinatorCrash(t *testing.T) {
	for _, tc := range []struct {
		site string
		want bool // the armed transaction's effects must survive
	}{
		{DistCrashCoordPre, false},
		{DistCrashCoordPost, true},
	} {
		t.Run(tc.site, func(t *testing.T) {
			cl := startCluster(t, distConfig(t, Hybrid, "chan", true))
			progs := transferPrograms(8)
			for i := 0; i < 4; i++ {
				if _, err := cl.Submit(fmt.Sprintf("T%d", i+1), progs[i]); err != nil {
					t.Fatalf("T%d: %v", i+1, err)
				}
			}
			cl.SetCrash(DistCrash{Txn: "T5", Site: tc.site})
			if _, err := cl.Submit("T5", progs[4]); !errors.Is(err, ErrCrashed) {
				t.Fatalf("T5: err = %v, want ErrCrashed", err)
			}
			if err := cl.RecoverCoordinator(); err != nil {
				t.Fatal(err)
			}
			// Fresh roots must make progress against the recovered
			// coordinator while T5's in-doubt state drains.
			for i := 5; i < 8; i++ {
				if _, err := cl.Submit(fmt.Sprintf("T%d", i+1), progs[i]); err != nil {
					t.Fatalf("T%d after recovery: %v", i+1, err)
				}
			}
			if err := cl.Settle(5 * time.Second); err != nil {
				t.Fatalf("%v (metrics: %s)", err, cl.Metrics())
			}
			distConserved(t, cl)
			distAudit(t, cl)

			// Atomicity of the armed transaction: T5 moves amt from east
			// to west; both legs or neither.
			amt := int64(4%7 + 1) // transferPrograms amount for index 4
			var want int64
			for i := 0; i < 8; i++ {
				if i == 4 && !tc.want {
					continue
				}
				want += int64(i%7 + 1)
			}
			_ = amt
			if west := cl.StoreSnapshot("west")["acct"]; west != want {
				t.Fatalf("west = %d, want %d: %s decision not applied atomically", west, want, tc.site)
			}
		})
	}
}

// TestDistParticipantCrash covers both participant crash sites.
// part-prepare: east forces its prepare then dies before voting; the
// attempt is presumed aborted, east recovers with the transaction in
// doubt, and the retried attempt supersedes it. part-decide: east
// forces the commit decision then dies before acking; recovery finds
// the transaction durably committed and the re-delivered decision acks.
func TestDistParticipantCrash(t *testing.T) {
	for _, site := range []string{DistCrashPartPrepare, DistCrashPartDecide} {
		t.Run(site, func(t *testing.T) {
			cl := startCluster(t, distConfig(t, Hybrid, "chan", true))
			progs := transferPrograms(8)
			for i := 0; i < 4; i++ {
				if _, err := cl.Submit(fmt.Sprintf("T%d", i+1), progs[i]); err != nil {
					t.Fatalf("T%d: %v", i+1, err)
				}
			}
			cl.SetCrash(DistCrash{Txn: "T5", Site: site, Part: "east"})

			// The submit retries against the dead participant; recover it
			// concurrently so a later attempt can land.
			var recErr error
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				deadline := time.Now().Add(5 * time.Second)
				for {
					if p := cl.participant("east"); p != nil && p.crashed.Load() {
						recErr = cl.RecoverParticipant("east")
						return
					}
					if time.Now().After(deadline) {
						recErr = errors.New("east never crashed")
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
			}()
			if _, err := cl.Submit("T5", progs[4]); err != nil {
				t.Fatalf("T5: %v", err)
			}
			wg.Wait()
			if recErr != nil {
				t.Fatal(recErr)
			}
			for i := 5; i < 8; i++ {
				if _, err := cl.Submit(fmt.Sprintf("T%d", i+1), progs[i]); err != nil {
					t.Fatalf("T%d: %v", i+1, err)
				}
			}
			if err := cl.Settle(5 * time.Second); err != nil {
				t.Fatalf("%v (metrics: %s)", err, cl.Metrics())
			}
			distConserved(t, cl)
			distAudit(t, cl)

			// All eight programs committed: west holds every amount.
			var want int64
			for i := 0; i < 8; i++ {
				want += int64(i%7 + 1)
			}
			if west := cl.StoreSnapshot("west")["acct"]; west != want {
				t.Fatalf("west = %d, want %d after %s recovery", west, want, site)
			}
		})
	}
}

// TestDistNetworkFaults runs the full workload through a hostile
// network — drops, duplicates, delays, reorders, one-way partitions —
// and demands the exact same outcome as a clean run: everything
// commits, money conserved, history Comp-C.
func TestDistNetworkFaults(t *testing.T) {
	plans := map[string]comm.NetFaultPlan{
		"drop-dup":      {Seed: 7, DropProb: 0.05, DupProb: 0.10},
		"delay-reorder": {Seed: 11, DelayProb: 0.20, ReorderProb: 0.15, Delay: time.Millisecond},
		"partition":     {Seed: 13, PartitionProb: 0.01, PartitionWindow: 10 * time.Millisecond},
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := distConfig(t, Hybrid, "chan", true)
			cfg.NetFaults = plan
			cfg.MaxRetries = 60
			cl := startCluster(t, cfg)
			progs := transferPrograms(16)
			committed := distRun(t, cl, progs, 2)
			if len(committed) != len(progs) {
				t.Fatalf("%d of %d programs committed (net: %+v)", len(committed), len(progs), cl.NetStats())
			}
			if err := cl.Settle(10 * time.Second); err != nil {
				t.Fatalf("%v (metrics: %s)", err, cl.Metrics())
			}
			distConserved(t, cl)
			distAudit(t, cl)
			if s := cl.NetStats(); s.Sent == 0 {
				t.Fatal("fault injector saw no traffic")
			}
		})
	}
}

// TestDistIdempotence is the duplicate/reorder property test: a
// sequential client's programs, delivered through a network that
// duplicates and reorders (but never loses) every message class, must
// leave every participant store byte-identical to exactly-once
// delivery, across a seed sweep.
func TestDistIdempotence(t *testing.T) {
	run := func(t *testing.T, plan comm.NetFaultPlan) (map[string]int64, map[string]int64) {
		cfg := distConfig(t, Hybrid, "chan", true)
		cfg.NetFaults = plan
		cfg.MaxRetries = 60
		cl := startCluster(t, cfg)
		for i, prog := range transferPrograms(12) {
			if _, err := cl.Submit(fmt.Sprintf("T%d", i+1), prog); err != nil {
				t.Fatalf("T%d: %v", i+1, err)
			}
		}
		if err := cl.Settle(10 * time.Second); err != nil {
			t.Fatalf("%v (metrics: %s)", err, cl.Metrics())
		}
		distAudit(t, cl)
		return cl.StoreSnapshot("east"), cl.StoreSnapshot("west")
	}

	cleanEast, cleanWest := run(t, comm.NetFaultPlan{})
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			east, west := run(t, comm.NetFaultPlan{
				Seed: seed, DupProb: 0.25, ReorderProb: 0.25, Delay: time.Millisecond,
			})
			if !reflect.DeepEqual(east, cleanEast) || !reflect.DeepEqual(west, cleanWest) {
				t.Fatalf("stores diverged under duplication/reordering:\n east = %v, want %v\n west = %v, want %v",
					east, cleanEast, west, cleanWest)
			}
		})
	}
}

// TestDistDoubleCrash crashes a participant mid-run, recovers it, then
// crashes and recovers the coordinator too — the log-only state on both
// sides must still reconcile to a conserved, Comp-C history.
func TestDistDoubleCrash(t *testing.T) {
	cl := startCluster(t, distConfig(t, Hybrid, "chan", true))
	progs := transferPrograms(10)
	for i := 0; i < 4; i++ {
		if _, err := cl.Submit(fmt.Sprintf("T%d", i+1), progs[i]); err != nil {
			t.Fatalf("T%d: %v", i+1, err)
		}
	}
	cl.SetCrash(DistCrash{Txn: "T5", Site: DistCrashPartDecide, Part: "west"})
	var wg sync.WaitGroup
	wg.Add(1)
	var recErr error
	go func() {
		defer wg.Done()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if p := cl.participant("west"); p != nil && p.crashed.Load() {
				recErr = cl.RecoverParticipant("west")
				return
			}
			if time.Now().After(deadline) {
				recErr = errors.New("west never crashed")
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	if _, err := cl.Submit("T5", progs[4]); err != nil {
		t.Fatalf("T5: %v", err)
	}
	wg.Wait()
	if recErr != nil {
		t.Fatal(recErr)
	}
	cl.CrashCoordinator()
	if err := cl.RecoverCoordinator(); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 10; i++ {
		if _, err := cl.Submit(fmt.Sprintf("T%d", i+1), progs[i]); err != nil {
			t.Fatalf("T%d: %v", i+1, err)
		}
	}
	if err := cl.Settle(5 * time.Second); err != nil {
		t.Fatalf("%v (metrics: %s)", err, cl.Metrics())
	}
	distConserved(t, cl)
	distAudit(t, cl)
}

// TestDistWALGuards checks the durability guard rails: a second cluster
// on the same WAL root is refused, and a coordinator log is refused by
// the single-process Recover.
func TestDistWALGuards(t *testing.T) {
	cfg := distConfig(t, Hybrid, "chan", true)
	cl := startCluster(t, cfg)
	if _, err := cl.Submit("T1", transferPrograms(1)[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := StartCluster(cfg); !errors.Is(err, ErrWALExists) {
		t.Fatalf("second cluster on the same WAL root: err = %v, want ErrWALExists", err)
	}
	cl.Close()
	if _, err := Recover(WALConfig{Dir: coordDir(cfg.WALRoot)}); err == nil {
		t.Fatal("single-process Recover accepted a distributed coordinator log")
	}
}
