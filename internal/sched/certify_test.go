package sched

import (
	"errors"
	"sync"
	"testing"

	"compositetx/internal/data"
	"compositetx/internal/front"
)

// submitCrossedWrites drives the Figure 3 interference of
// TestOpenNestedUnsoundOnDiamond: two roots sharing no component
// scheduler interleave crossed writes on the shared ledger. It returns
// the two Submit errors.
func submitCrossedWrites(t *testing.T, rt *Runtime, rootA, rootB string) (errA, errB error) {
	t.Helper()
	aWroteX := make(chan struct{})
	bWroteY := make(chan struct{})
	var onceX, onceY sync.Once

	write := func(item string) *Invocation {
		return &Invocation{Component: "ledger", Item: item, Mode: data.ModeWrite,
			Steps: []Step{{Op: &data.Op{Mode: data.ModeWrite, Item: item, Arg: 1}}}}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, errA = rt.Submit(rootA, Invocation{
			Component: "agencyA",
			Steps: []Step{
				{Invoke: write("x")},
				{Sync: func() { onceX.Do(func() { close(aWroteX) }); <-bWroteY }, Invoke: write("y")},
			},
		})
	}()
	go func() {
		defer wg.Done()
		_, errB = rt.Submit(rootB, Invocation{
			Component: "agencyB",
			Steps: []Step{
				{Sync: func() { <-aWroteX }, Invoke: write("y")},
				{Sync: func() { onceY.Do(func() { close(bWroteY) }) }, Invoke: write("x")},
			},
		})
	}()
	wg.Wait()
	return errA, errB
}

// TestCertifyRejectsDiamondViolation is the tentpole's headline: the same
// crossed-writes interleaving that TestOpenNestedUnsoundOnDiamond detects
// post-hoc is rejected AT COMMIT TIME under certification — exactly one
// of the two roots fails with a CertifyError carrying the violation
// witness, and the committed history stays Comp-C.
func TestCertifyRejectsDiamondViolation(t *testing.T) {
	rt := DiamondTopology().NewRuntime(OpenNested)
	if err := rt.EnableCertify(); err != nil {
		t.Fatal(err)
	}
	errA, errB := submitCrossedWrites(t, rt, "TA", "TB")

	var rejected []error
	for _, err := range []error{errA, errB} {
		if err != nil {
			rejected = append(rejected, err)
		}
	}
	if len(rejected) != 1 {
		t.Fatalf("want exactly one rejected commit, got errors: A=%v B=%v", errA, errB)
	}
	var cerr *CertifyError
	if !errors.As(rejected[0], &cerr) || !errors.Is(rejected[0], ErrCertifyViolation) {
		t.Fatalf("rejection is not a CertifyError: %v", rejected[0])
	}
	if cerr.Verdict == nil || cerr.Verdict.Correct || cerr.Verdict.Reason == "" {
		t.Fatalf("rejection carries no violation witness: %+v", cerr.Verdict)
	}

	m := rt.Metrics()
	if m.CertifyRejects != 1 {
		t.Fatalf("certify-rejects = %d, want 1", m.CertifyRejects)
	}
	if m.Commits != 1 {
		t.Fatalf("commits = %d, want 1", m.Commits)
	}
	// The rejected transaction was rolled back: the committed history —
	// recorder and certifier views alike — is Comp-C.
	sys := rt.RecordedSystem()
	if err := sys.Validate(); err != nil {
		t.Fatalf("committed history malformed: %v", err)
	}
	ok, err := front.IsCompC(sys)
	if err != nil || !ok {
		t.Fatalf("committed history after rejection must be Comp-C (ok=%v err=%v)", ok, err)
	}
	if cs := rt.CertifiedSystem(); cs == nil || cs.NumNodes() != sys.NumNodes() {
		t.Fatalf("certifier history diverged from recorder (certified=%v)", cs)
	}
}

// TestCertifyAdmitsCorrectWorkloads runs a real concurrent workload under
// a sound protocol with certification on: nothing may be rejected, every
// commit goes through, and the certifier's accumulated system matches the
// recorded one.
func TestCertifyAdmitsCorrectWorkloads(t *testing.T) {
	for _, p := range []Protocol{ClosedNested, Hybrid} {
		t.Run(p.String(), func(t *testing.T) {
			topo := DiamondTopology()
			rt := topo.NewRuntime(p)
			if err := rt.EnableCertify(); err != nil {
				t.Fatal(err)
			}
			progs := GenPrograms(topo, WorkloadParams{
				Roots: 20, StepsPerTx: 3, Items: 4,
				ReadRatio: 0.3, WriteRatio: 0.3, Seed: 11,
			})
			if err := Run(rt, progs, 8); err != nil {
				t.Fatal(err)
			}
			m := rt.Metrics()
			if m.Commits != 20 || m.CertifyRejects != 0 {
				t.Fatalf("commits=%d rejects=%d, want 20/0", m.Commits, m.CertifyRejects)
			}
			sys := rt.RecordedSystem()
			cs := rt.CertifiedSystem()
			if cs.NumNodes() != sys.NumNodes() {
				t.Fatalf("certifier has %d nodes, recorder %d", cs.NumNodes(), sys.NumNodes())
			}
			wantV, wantErr := front.Check(sys, front.Options{})
			gotV, gotErr := front.Check(cs, front.Options{})
			if wantErr != nil || gotErr != nil || !wantV.Correct || !gotV.Correct {
				t.Fatalf("verdicts differ: recorder (%v,%v), certifier (%v,%v)", wantV, wantErr, gotV, gotErr)
			}
		})
	}
}

// TestCertifySurvivesRecover checks the durability story: certify mode is
// journaled in the WAL metadata, Recover rebuilds the certifier over the
// recovered committed history, and the recovered runtime keeps rejecting
// violating interleavings at commit time.
func TestCertifySurvivesRecover(t *testing.T) {
	dir := t.TempDir()
	rt := DiamondTopology().NewRuntime(OpenNested)
	if err := rt.EnableCertify(); err != nil {
		t.Fatal(err)
	}
	if err := rt.EnableWAL(WALConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	// One benign committed transaction forms the pre-crash history.
	if _, err := rt.Submit("T-pre", Invocation{
		Component: "agencyA",
		Steps: []Step{{Invoke: &Invocation{Component: "ledger", Item: "x", Mode: data.ModeWrite,
			Steps: []Step{{Op: &data.Op{Mode: data.ModeWrite, Item: "x", Arg: 5}}}}}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := rt.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rt2 := rec.Runtime
	if !rt2.Certifying() {
		t.Fatal("recovered runtime lost certify mode")
	}
	if cs := rt2.CertifiedSystem(); cs == nil || cs.NumNodes() != rec.System.NumNodes() {
		t.Fatalf("recovered certifier not seeded from recovered history (certified=%v, want %d nodes)",
			cs, rec.System.NumNodes())
	}

	// The recovered certifier still rejects the crossed-writes violation.
	errA, errB := submitCrossedWrites(t, rt2, "TA2", "TB2")
	rejects := 0
	for _, err := range []error{errA, errB} {
		if err != nil {
			if !errors.Is(err, ErrCertifyViolation) {
				t.Fatalf("unexpected submit error: %v", err)
			}
			rejects++
		}
	}
	if rejects != 1 {
		t.Fatalf("want exactly one rejected commit on the recovered runtime, got %d (A=%v B=%v)", rejects, errA, errB)
	}
	sys := rt2.RecordedSystem()
	ok, err := front.IsCompC(sys)
	if err != nil || !ok {
		t.Fatalf("recovered+certified history must be Comp-C (ok=%v err=%v)", ok, err)
	}
}
