package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"compositetx/internal/data"
	"compositetx/internal/front"
)

// mvccTopology is a single component owning a store: the shared-pool
// shape the MVCC tests and benchmarks contend on.
func mvccTopology(modes *data.ModeTable) *Topology {
	return &Topology{
		Specs:   []ComponentSpec{{Name: "C1", HasStore: true, Modes: modes}},
		Entries: []string{"C1"},
	}
}

func stepRead(item string) Step {
	return Step{Op: &data.Op{Mode: data.ModeRead, Item: item}}
}

func stepIncr(item string, d int64) Step {
	return Step{Op: &data.Op{Mode: data.ModeIncr, Item: item, Arg: d}}
}

// TestMVCCSnapshotConsistentPrefix is the consistent-committed-prefix
// property test: concurrent writers transfer value between two items
// (preserving their sum), while optimistic readers snapshot-read both
// items. Every committed reader must observe the invariant sum — a torn
// read across the two items (part of a transfer visible, part not) would
// break it. Run with -race.
func TestMVCCSnapshotConsistentPrefix(t *testing.T) {
	const (
		writers       = 8
		readers       = 4
		txsPerClient  = 40
		initialA      = 1000
		invariantSum  = 1000
		transferDelta = 3
	)
	rt := mvccTopology(data.SemanticTable()).NewRuntime(OpenNested)
	rt.Exec = ExecOptimistic
	rt.Store("C1").Set("a", initialA)

	var wg sync.WaitGroup
	var torn atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txsPerClient; i++ {
				prog := Invocation{Component: "C1", Steps: []Step{
					stepIncr("a", -transferDelta), stepIncr("b", transferDelta),
				}}
				if _, err := rt.Submit(fmt.Sprintf("W%d-%d", w, i), prog); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for c := 0; c < readers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < txsPerClient; i++ {
				prog := Invocation{Component: "C1", Steps: []Step{
					stepRead("a"), stepRead("b"),
				}}
				res, err := rt.Submit(fmt.Sprintf("R%d-%d", c, i), prog)
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Values) != 2 {
					t.Errorf("reader got %d values, want 2", len(res.Values))
					return
				}
				if sum := res.Values[0] + res.Values[1]; sum != invariantSum {
					torn.Add(1)
					t.Errorf("torn snapshot: a=%d b=%d sum=%d, want %d",
						res.Values[0], res.Values[1], sum, invariantSum)
				}
			}
		}(c)
	}
	wg.Wait()
	if torn.Load() > 0 {
		t.Fatalf("%d torn snapshot reads", torn.Load())
	}
	if got := rt.Store("C1").Get("a") + rt.Store("C1").Get("b"); got != invariantSum {
		t.Fatalf("final sum = %d, want %d", got, invariantSum)
	}
	sys := rt.RecordedSystem()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if ok, err := front.IsCompC(sys); err != nil || !ok {
		t.Fatalf("optimistic execution must be Comp-C: %v, %v", ok, err)
	}
	m := rt.Metrics()
	t.Logf("commits=%d validation-aborts=%d lock-waits=%d", m.Commits, m.ValidationAborts, m.LockWaits)
	if m.Commits != int64((writers+readers)*txsPerClient) {
		t.Fatalf("commits = %d, want %d", m.Commits, (writers+readers)*txsPerClient)
	}
}

// TestMVCCReadYourWrites: an optimistic transaction that mutates an item
// and then reads it must see its own uncommitted write (the read bypasses
// the snapshot), and writing an item it previously snapshot-read must not
// invalidate itself at commit.
func TestMVCCReadYourWrites(t *testing.T) {
	rt := mvccTopology(data.SemanticTable()).NewRuntime(OpenNested)
	rt.Exec = ExecOptimistic
	rt.Store("C1").Set("x", 7)

	// read x (snapshot), incr x, read x again (own write), write y, read y.
	prog := Invocation{Component: "C1", Steps: []Step{
		stepRead("x"),
		stepIncr("x", 5),
		stepRead("x"),
		{Op: &data.Op{Mode: data.ModeWrite, Item: "y", Arg: 42}},
		stepRead("y"),
	}}
	res, err := rt.Submit("T1", prog)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{7, 12, 42}
	if len(res.Values) != len(want) {
		t.Fatalf("values = %v, want %v", res.Values, want)
	}
	for i, v := range want {
		if res.Values[i] != v {
			t.Fatalf("values = %v, want %v", res.Values, want)
		}
	}
	if m := rt.Metrics(); m.ValidationAborts != 0 {
		t.Fatalf("self-invalidation: validation-aborts = %d, want 0", m.ValidationAborts)
	}
	if res.Retries != 0 {
		t.Fatalf("retries = %d, want 0", res.Retries)
	}
}

// TestMVCCValidationAbortDeterministic forces, via channel
// synchronization, a conflicting commit into an optimistic reader's
// snapshot window: the reader must abort validation exactly once, retry
// with a fresh snapshot, and commit the post-write value.
func TestMVCCValidationAbortDeterministic(t *testing.T) {
	rt := mvccTopology(data.SemanticTable()).NewRuntime(OpenNested)
	rt.Exec = ExecOptimistic
	// Pin the abort path: commit-time read refresh would rescue the
	// stale read with a re-read instead of a validation abort.
	rt.RefreshRetries = 0

	writerGo := make(chan struct{})
	writerDone := make(chan struct{})
	var once sync.Once

	done := make(chan struct{})
	go func() {
		defer close(done)
		<-writerGo
		if _, err := rt.Submit("T2", Invocation{Component: "C1", Steps: []Step{
			stepIncr("x", 5),
		}}); err != nil {
			t.Error(err)
		}
		close(writerDone)
	}()

	prog := Invocation{Component: "C1", Steps: []Step{
		stepRead("x"),
		{Sync: func() {
			once.Do(func() {
				close(writerGo)
				<-writerDone
			})
		}, Op: &data.Op{Mode: data.ModeRead, Item: "y"}},
	}}
	res, err := rt.Submit("T1", prog)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if res.Retries != 1 {
		t.Fatalf("retries = %d, want exactly 1 (one validation abort)", res.Retries)
	}
	if m := rt.Metrics(); m.ValidationAborts != 1 {
		t.Fatalf("validation-aborts = %d, want 1", m.ValidationAborts)
	}
	// The committed attempt re-read with a fresh snapshot: it must see the
	// writer's increment.
	if len(res.Values) != 2 || res.Values[0] != 5 || res.Values[1] != 0 {
		t.Fatalf("values = %v, want [5 0]", res.Values)
	}
	sys := rt.RecordedSystem()
	if ok, err := front.IsCompC(sys); err != nil || !ok {
		t.Fatalf("execution must be Comp-C: %v, %v", ok, err)
	}
}

// TestMVCCRefreshRescuesStaleRead is the same interleaving as
// TestMVCCValidationAbortDeterministic, but with commit-time read refresh
// left enabled (the default): the stale snapshot read is re-read at a
// fresh stamp and re-sequenced instead of aborting, so the transaction
// commits on its first attempt, sees the writer's increment, and the
// recorded execution is still Comp-C.
func TestMVCCRefreshRescuesStaleRead(t *testing.T) {
	rt := mvccTopology(data.SemanticTable()).NewRuntime(OpenNested)
	rt.Exec = ExecOptimistic

	writerGo := make(chan struct{})
	writerDone := make(chan struct{})
	var once sync.Once

	done := make(chan struct{})
	go func() {
		defer close(done)
		<-writerGo
		if _, err := rt.Submit("T2", Invocation{Component: "C1", Steps: []Step{
			stepIncr("x", 5),
		}}); err != nil {
			t.Error(err)
		}
		close(writerDone)
	}()

	res, err := rt.Submit("T1", Invocation{Component: "C1", Steps: []Step{
		stepRead("x"),
		{Sync: func() {
			once.Do(func() {
				close(writerGo)
				<-writerDone
			})
		}, Op: &data.Op{Mode: data.ModeRead, Item: "y"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if res.Retries != 0 {
		t.Fatalf("retries = %d, want 0 (refresh must rescue the read)", res.Retries)
	}
	m := rt.Metrics()
	if m.ValidationAborts != 0 {
		t.Fatalf("validation-aborts = %d, want 0", m.ValidationAborts)
	}
	if m.ValidationRefreshes == 0 {
		t.Fatal("validation-refreshes = 0, want at least 1")
	}
	// The refreshed read sees the writer's increment without re-executing.
	if len(res.Values) != 2 || res.Values[0] != 5 || res.Values[1] != 0 {
		t.Fatalf("values = %v, want [5 0]", res.Values)
	}
	sys := rt.RecordedSystem()
	if ok, err := front.IsCompC(sys); err != nil || !ok {
		t.Fatalf("execution must be Comp-C: %v, %v", ok, err)
	}
}

// TestMVCCDeterministicSeededFaults: a single-client optimistic run under
// a seeded fault plan is fully deterministic — two identical runs produce
// identical metrics and identical final store state.
func TestMVCCDeterministicSeededFaults(t *testing.T) {
	run := func() (Metrics, map[string]int64) {
		topo := mvccTopology(data.SemanticTable())
		rt := topo.NewRuntime(OpenNested)
		rt.Exec = ExecOptimistic
		rt.SetFaults(FaultPlan{
			Seed: 42, ApplyProb: 0.2, LockFailProb: 0.1, CompensationProb: 0.2,
		})
		progs := GenPrograms(topo, WorkloadParams{
			Roots: 60, StepsPerTx: 4, Items: 3,
			ReadRatio: 0.5, WriteRatio: 0.2, Seed: 9,
		})
		for i, p := range progs {
			// Single client: ignore individual failures (fault plan may
			// exhaust a program), determinism is what is under test.
			rt.Submit(fmt.Sprintf("T%d", i+1), p) //nolint:errcheck
		}
		return rt.Metrics(), rt.Store("C1").Snapshot()
	}
	m1, s1 := run()
	m2, s2 := run()
	if m1 != m2 {
		t.Fatalf("metrics differ across identical seeded runs:\n  %v\n  %v", m1, m2)
	}
	if len(s1) != len(s2) {
		t.Fatalf("store state differs: %v vs %v", s1, s2)
	}
	for k, v := range s1 {
		if s2[k] != v {
			t.Fatalf("store state differs at %q: %d vs %d", k, v, s2[k])
		}
	}
	if m1.InjectedFaults == 0 {
		t.Fatal("fault plan fired no faults; the test is vacuous")
	}
}

// TestMVCCOptimisticCertified: optimistic execution under live
// certification — the certifier must admit every validated commit (no
// rejects) and the recorded execution stays Comp-C.
func TestMVCCOptimisticCertified(t *testing.T) {
	topo := BankTopology()
	rt := topo.NewRuntime(Hybrid)
	rt.Exec = ExecOptimistic
	if err := rt.EnableCertify(); err != nil {
		t.Fatal(err)
	}
	progs := GenPrograms(topo, WorkloadParams{
		Roots: 80, StepsPerTx: 3, Items: 4,
		ReadRatio: 0.5, WriteRatio: 0.1, Seed: 3,
	})
	if err := Run(rt, progs, 8); err != nil {
		t.Fatal(err)
	}
	m := rt.Metrics()
	if m.CertifyRejects != 0 {
		t.Fatalf("certifier rejected %d validated optimistic commits", m.CertifyRejects)
	}
	if m.Commits != 80 {
		t.Fatalf("commits = %d, want 80", m.Commits)
	}
	sys := rt.RecordedSystem()
	if ok, err := front.IsCompC(sys); err != nil || !ok {
		t.Fatalf("certified optimistic execution must be Comp-C: %v, %v", ok, err)
	}
}

// TestMVCCCertifierRejectsUnvalidated disables the optimistic commit gate
// (test-only knob) and forces the interleaving validation would have
// caught: the live certifier must then reject the commit itself — the
// two safety nets are independent.
func TestMVCCCertifierRejectsUnvalidated(t *testing.T) {
	rt := mvccTopology(data.SemanticTable()).NewRuntime(OpenNested)
	rt.Exec = ExecOptimistic
	rt.skipValidation = true
	if err := rt.EnableCertify(); err != nil {
		t.Fatal(err)
	}

	writerGo := make(chan struct{})
	writerDone := make(chan struct{})
	var once sync.Once
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-writerGo
		// T2 writes both items between T1's two snapshot reads: T1's
		// stale y read then closes a conflict cycle (T1 before T2 on x,
		// T2 before T1 on y).
		if _, err := rt.Submit("T2", Invocation{Component: "C1", Steps: []Step{
			stepIncr("x", 5), stepIncr("y", 5),
		}}); err != nil {
			t.Error(err)
		}
		close(writerDone)
	}()

	_, err := rt.Submit("T1", Invocation{Component: "C1", Steps: []Step{
		stepRead("x"),
		{Sync: func() {
			once.Do(func() {
				close(writerGo)
				<-writerDone
			})
		}, Op: &data.Op{Mode: data.ModeRead, Item: "y"}},
	}})
	<-done
	if !errors.Is(err, ErrCertifyViolation) {
		t.Fatalf("Submit = %v, want ErrCertifyViolation", err)
	}
	var cerr *CertifyError
	if !errors.As(err, &cerr) {
		t.Fatalf("error %v does not carry the certify witness", err)
	}
	if m := rt.Metrics(); m.CertifyRejects != 1 {
		t.Fatalf("certify-rejects = %d, want 1", m.CertifyRejects)
	}
	// The surviving record (T2 alone) must still be correct.
	sys := rt.RecordedSystem()
	if ok, err := front.IsCompC(sys); err != nil || !ok {
		t.Fatalf("post-reject record must be Comp-C: %v, %v", ok, err)
	}
}

// TestMVCCEscrowCompensationNetsOut pins the snapshot semantics around a
// rolled-back deposit. Snapshot frontiers (data.Store.StableRead) stop
// below unresolved foreign versions, so the escrow audit never observes
// the uncommitted deposit — its snapshot sits entirely below the
// deposit/compensation pair. At validation both halves of the pair are
// resolved and conflict with the audit mode (the compensation keeps
// ModeDeposit — data.Inverse preserving the semantic mode end-to-end),
// but the pair/undone links net them out: a netted pair invalidates only
// a snapshot it straddles, and this one doesn't. RefreshRetries is pinned
// to zero so any spurious staleness would surface as a validation abort
// instead of being silently rescued by a commit-time re-read.
func TestMVCCEscrowCompensationNetsOut(t *testing.T) {
	rt := mvccTopology(data.EscrowTable()).NewRuntime(OpenNested)
	rt.Exec = ExecOptimistic
	rt.RefreshRetries = 0

	depositApplied := make(chan struct{})
	auditDone := make(chan struct{})
	t2Aborted := make(chan struct{})
	var startOnce, proceedOnce sync.Once

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := rt.Submit("T2", Invocation{Component: "C1", Steps: []Step{
			{Op: &data.Op{Mode: data.ModeDeposit, Impl: data.ModeIncr, Item: "acct", Arg: 10}},
			{Sync: func() {
				close(depositApplied)
				<-auditDone
			}, Fail: errors.New("business rule: deposit rejected")},
		}})
		if !errors.Is(err, ErrClientAbort) {
			t.Errorf("T2 = %v, want ErrClientAbort", err)
		}
		close(t2Aborted)
	}()

	res, err := rt.Submit("T1", Invocation{Component: "C1", Steps: []Step{
		{Sync: func() { startOnce.Do(func() { <-depositApplied }) },
			Op: &data.Op{Mode: data.ModeAudit, Impl: data.ModeRead, Item: "acct"}},
		{Sync: func() {
			proceedOnce.Do(func() {
				close(auditDone)
				<-t2Aborted
			})
		}, Op: &data.Op{Mode: data.ModeAudit, Impl: data.ModeRead, Item: "other"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-done
	m := rt.Metrics()
	if m.ValidationAborts != 0 || m.ValidationRefreshes != 0 {
		t.Fatalf("validation aborts/refreshes = %d/%d, want 0/0 (netted pair below the snapshot must not read as stale)",
			m.ValidationAborts, m.ValidationRefreshes)
	}
	// The audit saw the committed prefix throughout: never the uncommitted
	// deposit, and the final balance it certified (0) is the one that
	// survived the rollback.
	if len(res.Values) != 2 || res.Values[0] != 0 {
		t.Fatalf("audit values = %v, want [0 0]", res.Values)
	}
	sys := rt.RecordedSystem()
	if err := sys.Validate(); err != nil {
		t.Fatalf("model invalid: %v", err)
	}
	if ok, err := front.IsCompC(sys); err != nil || !ok {
		t.Fatalf("record must be Comp-C: %v, %v", ok, err)
	}
}

// TestMVCCEscrowCounterBound: the bounded escrow counter under concurrent
// reserves — the store enforces the bound atomically, failed reserves
// abort cleanly (ErrInsufficient), and exactly the right amount is
// reserved. Reserves share their lock mode (EscrowCounterTable declares
// reserve/reserve commuting), so the concurrency is real.
func TestMVCCEscrowCounterBound(t *testing.T) {
	rt := mvccTopology(data.EscrowCounterTable()).NewRuntime(OpenNested)
	rt.Store("C1").Set("tickets", 100)

	const (
		clients = 30
		amount  = 5
	)
	var wg sync.WaitGroup
	var succeeded, insufficient atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := rt.Submit(fmt.Sprintf("T%d", i+1), Invocation{Component: "C1", Steps: []Step{
				{Op: &data.Op{Mode: data.ModeReserve, Item: "tickets", Arg: amount}},
			}})
			switch {
			case err == nil:
				succeeded.Add(1)
			case errors.Is(err, data.ErrInsufficient):
				insufficient.Add(1)
			default:
				t.Errorf("reserve: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if succeeded.Load() != 20 || insufficient.Load() != 10 {
		t.Fatalf("succeeded=%d insufficient=%d, want 20/10", succeeded.Load(), insufficient.Load())
	}
	if got := rt.Store("C1").Get("tickets"); got != 0 {
		t.Fatalf("tickets = %d, want 0", got)
	}
	// Releases restore capacity; a subsequent reserve succeeds again.
	if _, err := rt.Submit("TR", Invocation{Component: "C1", Steps: []Step{
		{Op: &data.Op{Mode: data.ModeRelease, Item: "tickets", Arg: 7}},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Submit("TS", Invocation{Component: "C1", Steps: []Step{
		{Op: &data.Op{Mode: data.ModeReserve, Item: "tickets", Arg: 6}},
	}}); err != nil {
		t.Fatal(err)
	}
	if got := rt.Store("C1").Get("tickets"); got != 1 {
		t.Fatalf("tickets = %d, want 1", got)
	}
	sys := rt.RecordedSystem()
	if ok, err := front.IsCompC(sys); err != nil || !ok {
		t.Fatalf("escrow-counter execution must be Comp-C: %v, %v", ok, err)
	}
}

// TestMVCCSnapshotReadPerRoot: Invocation.SnapshotRead opts a single root
// into optimistic reads while the runtime stays pessimistic.
func TestMVCCSnapshotReadPerRoot(t *testing.T) {
	rt := mvccTopology(data.SemanticTable()).NewRuntime(OpenNested)
	rt.Store("C1").Set("x", 3)

	res, err := rt.Submit("T1", Invocation{Component: "C1", SnapshotRead: true, Steps: []Step{
		stepRead("x"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || res.Values[0] != 3 {
		t.Fatalf("values = %v, want [3]", res.Values)
	}
	// The snapshot read took no semantic lock: the component's lock
	// manager saw only the (none) pessimistic traffic.
	if m := rt.Metrics(); m.LockWaits != 0 || m.Commits != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestMVCCCrashRecovery: an optimistic workload journaled to a WAL
// crashes mid-run; recovery rebuilds a correct committed prefix and the
// recovered runtime keeps serving optimistic transactions (version
// stamps resume past the journaled high-water mark — the event sequence
// numbers double as stamps).
func TestMVCCCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	topo := mvccTopology(data.SemanticTable())
	rt := topo.NewRuntime(OpenNested)
	rt.Exec = ExecOptimistic
	rt.Store("C1").Set("a", 50)
	if err := rt.EnableWAL(WALConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	rt.SetFaults(FaultPlan{Triggers: []Trigger{{Site: FaultCrash, Txn: "T6", Step: "commit"}}})

	for i := 1; i <= 8; i++ {
		prog := Invocation{Component: "C1", Steps: []Step{
			stepRead("a"), stepIncr("a", 1),
		}}
		_, err := rt.Submit(fmt.Sprintf("T%d", i), prog)
		if i >= 6 {
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("T%d after crash: %v, want ErrCrashed", i, err)
			}
		} else if err != nil {
			t.Fatalf("T%d: %v", i, err)
		}
	}

	rec, err := Recover(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Verdict.Correct {
		t.Fatal("recovered execution must be Comp-C")
	}
	// T1..T5 committed (+1 each), T6 was undone.
	if got := rec.Runtime.Store("C1").Get("a"); got != 55 {
		t.Fatalf("recovered a = %d, want 55", got)
	}
	// The recovered runtime serves optimistic roots: stamps continue past
	// the recovered sequence, snapshots stay consistent.
	rec.Runtime.Exec = ExecOptimistic
	res, err := rec.Runtime.Submit("T9", Invocation{Component: "C1", Steps: []Step{
		stepRead("a"), stepIncr("a", 1),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || res.Values[0] != 55 {
		t.Fatalf("post-recovery read = %v, want [55]", res.Values)
	}
	if got := rec.Runtime.Store("C1").Get("a"); got != 56 {
		t.Fatalf("post-recovery a = %d, want 56", got)
	}
}
