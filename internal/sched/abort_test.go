package sched

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"compositetx/internal/data"
	"compositetx/internal/front"
)

var errBusiness = errors.New("insufficient funds")

// TestClientAbortCompensates: a transaction that fails mid-way is
// compensated exactly and leaves no trace in the recorded execution.
func TestClientAbortCompensates(t *testing.T) {
	for _, p := range realProtocols {
		t.Run(p.String(), func(t *testing.T) {
			rt := BankTopology().NewRuntime(p)
			// Seed a balance.
			if _, err := rt.Submit("T0", Invocation{Component: "bank", Steps: []Step{
				{Invoke: &Invocation{Component: "east", Item: "acct", Mode: data.ModeIncr,
					Steps: []Step{{Op: &data.Op{Mode: data.ModeIncr, Item: "acct", Arg: 100}}}}},
			}}); err != nil {
				t.Fatal(err)
			}
			// A transfer that debits, then aborts before crediting.
			_, err := rt.Submit("T1", Invocation{Component: "bank", Steps: []Step{
				{Invoke: &Invocation{Component: "east", Item: "acct", Mode: data.ModeIncr,
					Steps: []Step{{Op: &data.Op{Mode: data.ModeIncr, Item: "acct", Arg: -40}}}}},
				{Fail: errBusiness},
			}})
			if !errors.Is(err, ErrClientAbort) || !errors.Is(err, errBusiness) {
				t.Fatalf("err = %v, want ErrClientAbort wrapping the business error", err)
			}
			if got := rt.Store("east").Get("acct"); got != 100 {
				t.Fatalf("acct = %d, want 100 (debit compensated)", got)
			}
			m := rt.Metrics()
			if m.Commits != 1 || m.ClientAborts != 1 {
				t.Fatalf("metrics = %+v", m)
			}
			// The recorded execution contains only the committed T0.
			sys := rt.RecordedSystem()
			if sys.Node("T1") != nil {
				t.Fatal("aborted transaction leaked into the record")
			}
			if err := sys.Validate(); err != nil {
				t.Fatal(err)
			}
			if ok, err := front.IsCompC(sys); err != nil || !ok {
				t.Fatalf("record must stay Comp-C: %v, %v", ok, err)
			}
		})
	}
}

// TestClientAbortReleasesLocks: an aborted transaction must not keep
// others waiting.
func TestClientAbortReleasesLocks(t *testing.T) {
	rt := BankTopology().NewRuntime(ClosedNested)
	_, err := rt.Submit("T1", Invocation{Component: "bank", Steps: []Step{
		{Invoke: &Invocation{Component: "east", Item: "x", Mode: data.ModeWrite,
			Steps: []Step{{Op: &data.Op{Mode: data.ModeWrite, Item: "x", Arg: 1}}}}},
		{Fail: errBusiness},
	}})
	if !errors.Is(err, ErrClientAbort) {
		t.Fatal(err)
	}
	// A conflicting transaction must proceed immediately.
	if _, err := rt.Submit("T2", Invocation{Component: "bank", Steps: []Step{
		{Invoke: &Invocation{Component: "east", Item: "x", Mode: data.ModeWrite,
			Steps: []Step{{Op: &data.Op{Mode: data.ModeWrite, Item: "x", Arg: 2}}}}},
	}}); err != nil {
		t.Fatal(err)
	}
	if got := rt.Store("east").Get("x"); got != 2 {
		t.Fatalf("x = %d, want 2", got)
	}
}

// TestClientAbortsUnderConcurrency: a mixed workload where a third of the
// transactions abort client-side keeps every invariant under all
// protocols and both deadlock policies.
func TestClientAbortsUnderConcurrency(t *testing.T) {
	for _, pol := range []DeadlockPolicy{WaitDie, DetectWFG} {
		for _, p := range realProtocols {
			t.Run(fmt.Sprintf("%s/%s", p, pol), func(t *testing.T) {
				rt := BankTopology().NewRuntime(p)
				rt.Deadlock = pol
				const n = 30
				var wg sync.WaitGroup
				for i := 0; i < n; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						steps := []Step{
							{Invoke: &Invocation{Component: "east", Item: "acct", Mode: data.ModeIncr,
								Steps: []Step{{Op: &data.Op{Mode: data.ModeIncr, Item: "acct", Arg: 1}}}}},
						}
						if i%3 == 0 {
							steps = append(steps, Step{Fail: errBusiness})
						}
						_, err := rt.Submit(fmt.Sprintf("T%d", i+1), Invocation{Component: "bank", Steps: steps})
						if i%3 == 0 {
							if !errors.Is(err, ErrClientAbort) {
								t.Errorf("tx %d: err = %v, want client abort", i+1, err)
							}
						} else if err != nil {
							t.Errorf("tx %d: %v", i+1, err)
						}
					}(i)
				}
				wg.Wait()
				// 20 commits of +1 each; 10 aborted and compensated.
				if got := rt.Store("east").Get("acct"); got != 20 {
					t.Fatalf("acct = %d, want 20", got)
				}
				m := rt.Metrics()
				if m.Commits != 20 || m.ClientAborts != 10 {
					t.Fatalf("metrics = %+v", m)
				}
				sys := rt.RecordedSystem()
				if err := sys.Validate(); err != nil {
					t.Fatal(err)
				}
				if ok, err := front.IsCompC(sys); err != nil || !ok {
					t.Fatalf("record must stay Comp-C: %v, %v", ok, err)
				}
			})
		}
	}
}
