package sched

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"compositetx/internal/data"
	"compositetx/internal/front"
)

// chaosMixes is the fixed seed set `make chaos` sweeps: three fault
// cocktails exercising every injection site.
var chaosMixes = []struct {
	name string
	plan FaultPlan
	// opTimeout arms per-attempt deadlines for the mix (0 = none).
	opTimeout time.Duration
}{
	{"apply+lock", FaultPlan{Seed: 11, ApplyProb: 0.05, LockFailProb: 0.03}, 0},
	{"latency+down", FaultPlan{Seed: 13, LockDelayProb: 0.08, LockDelay: 2 * time.Millisecond,
		DownProb: 0.01, DownWindow: 2 * time.Millisecond}, 25 * time.Millisecond},
	{"heavy", FaultPlan{Seed: 17, ApplyProb: 0.06, LockFailProb: 0.03, DownProb: 0.01,
		DownWindow: time.Millisecond, CompensationProb: 0.25}, 0},
}

// TestChaos is the chaos soak: protocol × topology × fault mix, each run
// under randomized jitter and injected faults, asserting that
//
//  1. every transaction eventually commits (recovery is complete),
//  2. every *recorded* execution still passes the Comp-C reduction —
//     the paper's stance: correctness is a property of the recorded
//     history, which injected faults must never corrupt,
//  3. no goroutines leak (deadlines and retries never strand a client).
//
// Run under -race by `make chaos` / `make verify`. Skipped with -short.
func TestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	topos := []struct {
		name string
		mk   func() *Topology
	}{
		{"stack3", func() *Topology { return StackTopology(3) }},
		{"bank", BankTopology},
		{"diamond", DiamondTopology},
	}
	protos := []Protocol{Hybrid, ClosedNested, Global2PL}

	before := runtime.NumGoroutine()
	var totalInjected int64
	for _, mix := range chaosMixes {
		for _, tc := range topos {
			for _, p := range protos {
				name := fmt.Sprintf("%s/%s/%s", mix.name, tc.name, p)
				t.Run(name, func(t *testing.T) {
					topo := tc.mk()
					rt := topo.NewRuntime(p)
					rt.SetFaults(mix.plan)
					rt.OpTimeout = mix.opTimeout
					progs := GenPrograms(topo, WorkloadParams{
						Roots: 40, StepsPerTx: 3, Items: 3,
						ReadRatio: 0.25, WriteRatio: 0.3, Seed: mix.plan.Seed,
					})
					progs = Jitter(progs, 100*time.Microsecond, mix.plan.Seed)
					if err := Run(rt, progs, 6); err != nil {
						t.Fatalf("run did not recover: %v", err)
					}
					m := rt.Metrics()
					if m.Commits != 40 {
						t.Fatalf("commits = %d, want 40", m.Commits)
					}
					totalInjected += m.InjectedFaults
					sys := rt.RecordedSystem()
					if err := sys.Validate(); err != nil {
						t.Fatal(err)
					}
					if ok, err := front.IsCompC(sys); err != nil || !ok {
						t.Fatalf("recorded execution under faults must be Comp-C: %v, %v", ok, err)
					}
				})
			}
		}
	}
	if totalInjected < 500 {
		t.Fatalf("injected %d faults across the sweep, want >= 500 (chaos too tame)", totalInjected)
	}
	// Clients, lock waiters and deadline timers must all be gone.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, g)
	}
}

// TestChaosEscrowConservation: the store-invariant leg of the chaos
// suite. Transfer transactions (east -n, west +n) run under injected
// apply and compensation faults with conflicting increments (RW table),
// so aborted attempts must compensate. Money is conserved exactly:
// final(east)+final(west) equals the initial balance plus the deltas of
// the quarantined (permanently uncompensated) operations — every leak
// is accounted for, none is silent.
func TestChaosEscrowConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	rw := data.RWTable()
	topo := &Topology{
		Specs: []ComponentSpec{
			{Name: "bank", Modes: rw},
			{Name: "east", HasStore: true, Modes: rw},
			{Name: "west", HasStore: true, Modes: rw},
		},
		Children: map[string][]string{"bank": {"east", "west"}},
		Entries:  []string{"bank"},
	}
	for _, p := range []Protocol{Hybrid, ClosedNested, Global2PL} {
		t.Run(p.String(), func(t *testing.T) {
			rt := topo.NewRuntime(p)
			rt.SetFaults(FaultPlan{Seed: 23, ApplyProb: 0.05, CompensationProb: 0.4})
			const initial = 10000
			rt.Store("east").Set("acct", initial)

			leg := func(comp string, amt int64) Step {
				return Step{Invoke: &Invocation{Component: comp, Item: "acct", Mode: data.ModeIncr,
					Steps: []Step{{Op: &data.Op{Mode: data.ModeIncr, Item: "acct", Arg: amt}}}}}
			}
			progs := make([]Invocation, 60)
			for i := range progs {
				amt := int64(i%7 + 1)
				progs[i] = Invocation{Component: "bank", Steps: []Step{leg("east", -amt), leg("west", amt)}}
			}
			if err := Run(rt, Jitter(progs, 80*time.Microsecond, 23), 6); err != nil {
				t.Fatal(err)
			}
			var leaked int64
			for _, q := range rt.Quarantined() {
				leaked += q.Op.Arg
			}
			got := rt.Store("east").Get("acct") + rt.Store("west").Get("acct")
			if got != initial+leaked {
				t.Fatalf("balance = %d, want %d (initial %d + leaked %d): conservation violated",
					got, initial+leaked, initial, leaked)
			}
			sys := rt.RecordedSystem()
			if err := sys.Validate(); err != nil {
				t.Fatal(err)
			}
			if ok, err := front.IsCompC(sys); err != nil || !ok {
				t.Fatalf("recorded execution must be Comp-C: %v, %v", ok, err)
			}
		})
	}
}
