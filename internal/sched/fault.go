package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"compositetx/internal/data"
)

// Fault injection: a deterministic, seeded chaos layer threaded through
// the runtime. Faults fire at five sites — store applies, lock
// acquisitions (delay or outright failure), compensations, and whole
// components going down for a window — selected either by seeded
// probability (chaos soaks) or by an exact (txn, step) trigger
// (reproducible unit tests). The recovery machinery in tx.go (root
// retry, subtransaction-scoped retry, compensation retry + quarantine)
// must keep every *recorded* execution Comp-C no matter what this layer
// does; the chaos suite (chaos_test.go, experiment E10) asserts exactly
// that.

// FaultSite names an injection point in the runtime.
type FaultSite int

const (
	// FaultApply fails a store Apply call (the leaf operation errors
	// after its lock was granted; the attempt rolls back and retries).
	FaultApply FaultSite = iota
	// FaultLockDelay stalls a lock acquisition for FaultPlan.LockDelay
	// before it proceeds — the way stuck components surface as timeouts.
	FaultLockDelay
	// FaultLockFail fails a lock acquisition outright.
	FaultLockFail
	// FaultCompensation fails one compensation attempt during rollback;
	// compensations are retried and quarantined when the budget runs out.
	FaultCompensation
	// FaultDown takes the component "down": it refuses new
	// (sub)transactions until FaultPlan.DownWindow elapses.
	FaultDown
	// FaultCrash kills the whole runtime at the injection point: the
	// current attempt panic-abandons without rollback (locks and all),
	// every other in-flight Submit drains with ErrCrashed, and the WAL —
	// when attached — loses its unsynced buffer like an OS cache would
	// (optionally leaving a torn record, FaultPlan.CrashTear). The only
	// way forward is Recover. Crash sites are the leaf-apply journal
	// point (Trigger.Step = the leaf's node ID, or probabilistic) and the
	// commit path (Trigger.Step "commit" / "post-commit").
	FaultCrash
)

func (s FaultSite) String() string {
	switch s {
	case FaultApply:
		return "apply"
	case FaultLockDelay:
		return "lock-delay"
	case FaultLockFail:
		return "lock-fail"
	case FaultCompensation:
		return "compensation"
	case FaultDown:
		return "down"
	case FaultCrash:
		return "crash"
	default:
		return fmt.Sprintf("FaultSite(%d)", int(s))
	}
}

// Trigger fires a fault at an exact place, for deterministic
// reproduction: all set fields must match (empty string matches
// anything). A trigger fires Times times (0 means once) and is then
// spent.
type Trigger struct {
	Site      FaultSite
	Txn       string // root transaction name ("T1")
	Step      string // node ID of the step ("T1/2/1")
	Component string // component the fault fires at
	Times     int    // how often the trigger fires; 0 = once
}

// FaultPlan configures the injector. Probabilities are per visit of the
// corresponding site; zero disables that site. Triggers fire regardless
// of the probabilities.
type FaultPlan struct {
	Seed int64

	ApplyProb        float64 // per leaf-store Apply
	LockDelayProb    float64 // per lock acquisition
	LockFailProb     float64 // per lock acquisition
	CompensationProb float64 // per compensation attempt
	DownProb         float64 // per (sub)transaction arrival at a component
	CrashProb        float64 // per crash site visit (leaf journal point, commit, post-commit)

	// CrashTear makes a leaf-site crash abandon the WAL mid-append,
	// leaving a torn (half-written) record at the tail — the case
	// recovery must truncate, never replay.
	CrashTear bool

	LockDelay  time.Duration // stall for FaultLockDelay (default 1ms)
	DownWindow time.Duration // outage length for FaultDown (default 1ms)

	// Components restricts probabilistic faults to these components;
	// empty means all components.
	Components []string

	Triggers []Trigger
}

// Typed fault errors. ErrInjected is the base class every injected
// fault wraps; the runtime treats it as recoverable (subtransaction or
// root retry). ErrTimeout is returned when a (sub)transaction exceeds
// its deadline (Invocation.Deadline / Runtime.OpTimeout); the root
// retries with a fresh deadline window unless the client-supplied
// deadline itself has passed.
var (
	ErrInjected      = errors.New("sched: injected fault")
	ErrComponentDown = fmt.Errorf("sched: component unavailable: %w", ErrInjected)
	ErrTimeout       = errors.New("sched: deadline exceeded")
)

// Quarantine reports one operation whose compensation failed
// permanently: its forward effect is still in the store and needs
// out-of-band repair. The runtime keeps running; Runtime.Quarantined
// returns the report.
type Quarantine struct {
	Component string
	Txn       string // root transaction whose rollback leaked
	Op        data.Op
	Err       error
}

// injector is the runtime's fault source. All decisions go through one
// seeded rng under a mutex, so a single-client run with a fixed plan is
// bit-for-bit reproducible.
type injector struct {
	mu        sync.Mutex
	rng       *rand.Rand
	plan      FaultPlan
	allowed   map[string]bool // nil = all components
	remaining []int           // per-trigger remaining fire count
	downUntil map[string]time.Time

	injected atomic.Int64 // total faults fired (metrics)
}

func newInjector(plan FaultPlan) *injector {
	if plan.LockDelay <= 0 {
		plan.LockDelay = time.Millisecond
	}
	if plan.DownWindow <= 0 {
		plan.DownWindow = time.Millisecond
	}
	in := &injector{
		rng:       rand.New(rand.NewSource(plan.Seed)),
		plan:      plan,
		downUntil: make(map[string]time.Time),
	}
	if len(plan.Components) > 0 {
		in.allowed = make(map[string]bool, len(plan.Components))
		for _, c := range plan.Components {
			in.allowed[c] = true
		}
	}
	in.remaining = make([]int, len(plan.Triggers))
	for i, tr := range plan.Triggers {
		in.remaining[i] = tr.Times
		if tr.Times == 0 {
			in.remaining[i] = 1
		}
	}
	return in
}

// fire decides whether the fault at site fires for (comp, txn, step):
// first the exact triggers, then the site's seeded probability.
func (in *injector) fire(site FaultSite, comp, txn, step string) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.triggerLocked(site, comp, txn, step) {
		in.injected.Add(1)
		return true
	}
	var p float64
	switch site {
	case FaultApply:
		p = in.plan.ApplyProb
	case FaultLockDelay:
		p = in.plan.LockDelayProb
	case FaultLockFail:
		p = in.plan.LockFailProb
	case FaultCompensation:
		p = in.plan.CompensationProb
	case FaultDown:
		p = in.plan.DownProb
	case FaultCrash:
		p = in.plan.CrashProb
	}
	if p <= 0 || (in.allowed != nil && !in.allowed[comp]) {
		return false
	}
	if in.rng.Float64() < p {
		in.injected.Add(1)
		return true
	}
	return false
}

// down reports whether comp is unavailable for a new (sub)transaction,
// either because an outage window is still open or because a fresh
// FaultDown fault fires now (opening a window of plan.DownWindow).
func (in *injector) down(comp, txn, step string) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	if until, ok := in.downUntil[comp]; ok {
		if time.Now().Before(until) {
			in.mu.Unlock()
			return true
		}
		delete(in.downUntil, comp)
	}
	in.mu.Unlock()
	if !in.fire(FaultDown, comp, txn, step) {
		return false
	}
	in.mu.Lock()
	in.downUntil[comp] = time.Now().Add(in.plan.DownWindow)
	in.mu.Unlock()
	return true
}

// triggerLocked matches and consumes an exact trigger. Callers hold
// in.mu.
func (in *injector) triggerLocked(site FaultSite, comp, txn, step string) bool {
	for i, tr := range in.plan.Triggers {
		if in.remaining[i] <= 0 || tr.Site != site {
			continue
		}
		if tr.Component != "" && tr.Component != comp {
			continue
		}
		if tr.Txn != "" && tr.Txn != txn {
			continue
		}
		if tr.Step != "" && tr.Step != step {
			continue
		}
		in.remaining[i]--
		return true
	}
	return false
}

// total returns the number of faults fired so far.
func (in *injector) total() int64 {
	if in == nil {
		return 0
	}
	return in.injected.Load()
}

// delay returns the configured lock-acquisition stall.
func (in *injector) delay() time.Duration { return in.plan.LockDelay }

// tear reports whether leaf-site crashes should abandon the WAL
// mid-append (torn tail).
func (in *injector) tear() bool {
	if in == nil {
		return false
	}
	return in.plan.CrashTear
}

// SetFaults installs a fault plan on the runtime: probabilistic and
// trigger-based faults at the five sites of FaultSite. The plan also
// installs an Apply hook (data.Store.SetApplyHook) on every component
// store, so probabilistic FaultApply faults are injected in the data
// layer itself — exactly where a real backend would fail. Call before
// submitting transactions; passing a zero FaultPlan removes injection.
func (r *Runtime) SetFaults(plan FaultPlan) {
	if plan.ApplyProb <= 0 && plan.LockDelayProb <= 0 && plan.LockFailProb <= 0 &&
		plan.CompensationProb <= 0 && plan.DownProb <= 0 && plan.CrashProb <= 0 &&
		len(plan.Triggers) == 0 {
		r.inj = nil
		for _, c := range r.comps {
			if c.store != nil {
				c.store.SetApplyHook(nil)
			}
		}
		return
	}
	in := newInjector(plan)
	r.inj = in
	for name, c := range r.comps {
		if c.store == nil {
			continue
		}
		comp := name
		c.store.SetApplyHook(func(op data.Op) error {
			if in.fire(FaultApply, comp, "", "") {
				return fmt.Errorf("sched: store apply fault at %q: %w", comp, ErrInjected)
			}
			return nil
		})
	}
}

// Quarantined returns the operations whose compensation failed
// permanently (their forward effects leaked into the stores). The slice
// is a copy.
func (r *Runtime) Quarantined() []Quarantine {
	r.qmu.Lock()
	defer r.qmu.Unlock()
	out := make([]Quarantine, len(r.quarantined))
	copy(out, r.quarantined)
	return out
}

func (r *Runtime) quarantine(q Quarantine) {
	r.compFailures.Add(1)
	r.qmu.Lock()
	r.quarantined = append(r.quarantined, q)
	r.qmu.Unlock()
}
