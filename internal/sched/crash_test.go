package sched

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"compositetx/internal/data"
	"compositetx/internal/model"
)

// Crash/recovery suite: every test kills the runtime at a chosen point
// (FaultCrash), recovers from the WAL alone, and asserts the recovered
// state is exactly what durability promises — money conserved, the
// committed projection Comp-C, the log replayable.

// transferTopo is the conservation harness: a bank delegating to two
// branch stores with conflicting increments (RW table), so partial
// transfers must be compensated, not ignored.
func transferTopo() *Topology {
	rw := data.RWTable()
	return &Topology{
		Specs: []ComponentSpec{
			{Name: "bank", Modes: rw},
			{Name: "east", HasStore: true, Modes: rw},
			{Name: "west", HasStore: true, Modes: rw},
		},
		Children: map[string][]string{"bank": {"east", "west"}},
		Entries:  []string{"bank"},
	}
}

func transferPrograms(n int) []Invocation {
	leg := func(comp string, amt int64) Step {
		return Step{Invoke: &Invocation{Component: comp, Item: "acct", Mode: data.ModeIncr,
			Steps: []Step{{Op: &data.Op{Mode: data.ModeIncr, Item: "acct", Arg: amt}}}}}
	}
	progs := make([]Invocation, n)
	for i := range progs {
		amt := int64(i%7 + 1)
		progs[i] = Invocation{Component: "bank", Steps: []Step{leg("east", -amt), leg("west", amt)}}
	}
	return progs
}

// runToCrash submits every program, tolerating ErrCrashed (the expected
// way a crashing run drains), and returns the commit count.
func runToCrash(t *testing.T, rt *Runtime, progs []Invocation, clients int) int {
	t.Helper()
	var commits atomic.Int64
	work := make(chan int)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				_, err := rt.Submit(fmt.Sprintf("T%d", i+1), progs[i])
				switch {
				case err == nil:
					commits.Add(1)
				case errors.Is(err, ErrCrashed):
				default:
					t.Errorf("T%d: unexpected error: %v", i+1, err)
				}
			}
		}()
	}
	for i := range progs {
		work <- i
	}
	close(work)
	wg.Wait()
	return int(commits.Load())
}

func conserved(t *testing.T, rt *Runtime, initial int64) {
	t.Helper()
	var leaked int64
	for _, q := range rt.Quarantined() {
		leaked += q.Op.Arg
	}
	got := rt.Store("east").Get("acct") + rt.Store("west").Get("acct")
	if got != initial+leaked {
		t.Fatalf("balance = %d, want %d (initial %d + leaked %d): conservation violated",
			got, initial+leaked, initial, leaked)
	}
}

// crashSite runs the full crash→recover cycle for one trigger and
// returns the recovery for site-specific assertions.
func crashSite(t *testing.T, trig Trigger, tear bool) *Recovered {
	t.Helper()
	topo := transferTopo()
	rt := topo.NewRuntime(Hybrid)
	const initial = 10000
	rt.Store("east").Set("acct", initial)
	dir := t.TempDir() + "/wal"
	if err := rt.EnableWAL(WALConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	rt.SetFaults(FaultPlan{Triggers: []Trigger{trig}, CrashTear: tear})

	progs := transferPrograms(24)
	runToCrash(t, rt, progs, 4)
	if !rt.Crashed() {
		t.Fatal("trigger never fired — the crash site was not visited")
	}
	// The WAL dir is the only thing a real crash leaves behind; recover
	// from it alone.
	rec, err := Recover(WALConfig{Dir: dir})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if !rec.Verdict.Correct {
		t.Fatal("recovered execution failed the Comp-C check")
	}
	conserved(t, rec.Runtime, initial)
	if got := int(rec.Runtime.Metrics().Commits); got != rec.Stats.Committed {
		t.Fatalf("recovered commit counter %d != stats %d", got, rec.Stats.Committed)
	}
	return rec
}

func TestCrashAtLeafRecovers(t *testing.T) {
	// T5's second leaf apply (the west leg): the east leg is journaled
	// and applied, so the transfer is half-done and recovery must undo it.
	rec := crashSite(t, Trigger{Site: FaultCrash, Txn: "T5", Step: "T5/2/1"}, false)
	if rec.Stats.InFlight < 1 {
		t.Fatalf("stats %+v: the crashed transaction must be in-flight", rec.Stats)
	}
	if rec.Stats.TornBytes != 0 {
		t.Fatalf("no tear requested, got %d torn bytes", rec.Stats.TornBytes)
	}
	// The recovered runtime accepts new work.
	if _, err := rec.Runtime.Submit("Tnew", transferPrograms(1)[0]); err != nil {
		t.Fatalf("recovered runtime rejects new transactions: %v", err)
	}
}

func TestCrashTornRecord(t *testing.T) {
	// Same site, but the crash abandons the WAL mid-append: the apply
	// record is half-written. Recovery must truncate it — never replay it.
	rec := crashSite(t, Trigger{Site: FaultCrash, Txn: "T5", Step: "T5/2/1"}, true)
	if rec.Stats.TornBytes == 0 {
		t.Fatal("CrashTear crash left no torn bytes — the tear was not exercised")
	}
}

func TestCrashAtCommit(t *testing.T) {
	// Before the commit batch: T3 executed fully but must recover as
	// undone (no commit marker is durable).
	rec := crashSite(t, Trigger{Site: FaultCrash, Txn: "T3", Step: "commit"}, false)
	if rec.System.Node("T3") != nil {
		t.Fatal("T3 crashed before its commit record; it must not be in the recovered execution")
	}
	if rec.Stats.Undone == 0 {
		t.Fatalf("stats %+v: commit-site crash must leave work to undo", rec.Stats)
	}
}

func TestCrashPostCommit(t *testing.T) {
	// After the commit batch: the log says committed, the in-memory
	// recorder never heard of it. Recovery must redo T3 into the
	// committed projection.
	rec := crashSite(t, Trigger{Site: FaultCrash, Txn: "T3", Step: "post-commit"}, false)
	if rec.System.Node("T3") == nil {
		t.Fatal("T3's commit record is durable; recovery must redo it")
	}
}

func TestRecoverIsIdempotent(t *testing.T) {
	topo := transferTopo()
	rt := topo.NewRuntime(Hybrid)
	const initial = 5000
	rt.Store("east").Set("acct", initial)
	dir := t.TempDir() + "/wal"
	if err := rt.EnableWAL(WALConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	rt.SetFaults(FaultPlan{Triggers: []Trigger{{Site: FaultCrash, Txn: "T7", Step: "T7/2/1"}}})
	runToCrash(t, rt, transferPrograms(16), 4)

	first, err := Recover(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Runtime.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	// Crash-during-recovery model: recover the already-recovered log
	// again. The journaled undo records (CLRs) mean nothing is undone
	// twice.
	second, err := Recover(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Undone != 0 || second.Stats.InFlight != 0 {
		t.Fatalf("second recovery undid work again: %+v", second.Stats)
	}
	conserved(t, second.Runtime, initial)
	if a, b := normalEncoding(t, first.System), normalEncoding(t, second.System); !bytes.Equal(a, b) {
		t.Fatal("recovering twice produced different executions")
	}
}

// TestDeterministicReplay is the E10-bridge satellite: a chaos run
// journaled to a WAL, cleanly closed, then recovered twice — the live
// recorded system and both recoveries must agree byte-for-byte on the
// normalized encoding (this pins the interner's lexicographic
// tie-breaking across the recovery path).
func TestDeterministicReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	topo := DiamondTopology()
	rt := topo.NewRuntime(Hybrid)
	dir := t.TempDir() + "/wal"
	if err := rt.EnableWAL(WALConfig{Dir: dir, SyncEvery: 8}); err != nil {
		t.Fatal(err)
	}
	rt.SetFaults(FaultPlan{Seed: 11, ApplyProb: 0.05, LockFailProb: 0.03})
	progs := GenPrograms(topo, WorkloadParams{
		Roots: 40, StepsPerTx: 3, Items: 3, ReadRatio: 0.25, WriteRatio: 0.3, Seed: 11,
	})
	progs = Jitter(progs, 100*time.Microsecond, 11)
	if err := Run(rt, progs, 6); err != nil {
		t.Fatal(err)
	}
	if err := rt.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	live := normalEncoding(t, rt.RecordedSystem())

	recA, err := Recover(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := recA.Runtime.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	recB, err := Recover(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	a, b := normalEncoding(t, recA.System), normalEncoding(t, recB.System)
	if !bytes.Equal(a, b) {
		t.Fatal("two recoveries of the same WAL disagree")
	}
	if !bytes.Equal(live, a) {
		t.Fatal("recovered execution differs from the live recorded one")
	}
	if recA.Stats.Committed != 40 {
		t.Fatalf("recovered %d commits, want 40", recA.Stats.Committed)
	}
}

func TestCrashChaosEscrowConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	// Probabilistic crash somewhere in a faulty transfer run, per
	// protocol; wherever it lands, recovery must conserve and verify.
	for _, p := range []Protocol{Hybrid, ClosedNested, Global2PL} {
		for _, tear := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/tear=%v", p, tear), func(t *testing.T) {
				topo := transferTopo()
				rt := topo.NewRuntime(p)
				const initial = 20000
				rt.Store("east").Set("acct", initial)
				dir := t.TempDir() + "/wal"
				if err := rt.EnableWAL(WALConfig{Dir: dir}); err != nil {
					t.Fatal(err)
				}
				rt.SetFaults(FaultPlan{Seed: 31, ApplyProb: 0.04, CrashProb: 0.01, CrashTear: tear})
				runToCrash(t, rt, Jitter(transferPrograms(80), 50*time.Microsecond, 31), 6)
				if !rt.Crashed() {
					t.Skip("seeded run finished before the crash fired")
				}
				rec, err := Recover(WALConfig{Dir: dir})
				if err != nil {
					t.Fatalf("recover: %v", err)
				}
				if !rec.Verdict.Correct {
					t.Fatal("recovered execution failed the Comp-C check")
				}
				conserved(t, rec.Runtime, initial)
			})
		}
	}
}

func TestEnableWALRejectsExistingLog(t *testing.T) {
	topo := transferTopo()
	rt := topo.NewRuntime(Hybrid)
	dir := t.TempDir() + "/wal"
	if err := rt.EnableWAL(WALConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Submit("T1", transferPrograms(1)[0]); err != nil {
		t.Fatal(err)
	}
	if err := rt.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	rt2 := topo.NewRuntime(Hybrid)
	if err := rt2.EnableWAL(WALConfig{Dir: dir}); !errors.Is(err, ErrWALExists) {
		t.Fatalf("EnableWAL on a used directory: %v, want ErrWALExists", err)
	}
}

func normalEncoding(t *testing.T, sys *model.System) []byte {
	t.Helper()
	sys.Normalize()
	var buf bytes.Buffer
	if err := sys.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkRecovery(b *testing.B) {
	for _, roots := range []int{32, 128} {
		b.Run(fmt.Sprintf("roots=%d", roots), func(b *testing.B) {
			topo := transferTopo()
			rt := topo.NewRuntime(Hybrid)
			rt.Store("east").Set("acct", 100000)
			dir := b.TempDir() + "/wal"
			if err := rt.EnableWAL(WALConfig{Dir: dir, SyncEvery: 64}); err != nil {
				b.Fatal(err)
			}
			progs := transferPrograms(roots)
			for i, p := range progs {
				if _, err := rt.Submit(fmt.Sprintf("T%d", i+1), p); err != nil {
					b.Fatal(err)
				}
			}
			if err := rt.CloseWAL(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec, err := Recover(WALConfig{Dir: dir})
				if err != nil {
					b.Fatal(err)
				}
				if err := rec.Runtime.CloseWAL(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
