package sched

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"compositetx/internal/data"
)

// Topology describes a component configuration: the specs, the invocation
// edges, and the entry components clients submit root transactions to.
type Topology struct {
	Specs    []ComponentSpec
	Children map[string][]string
	Entries  []string
}

// NewRuntime builds a runtime for this topology and marks its join
// points: components reachable from more than one client component (or
// from both clients and an entry) hold locks to root commit under the
// Hybrid protocol.
func (t *Topology) NewRuntime(p Protocol) *Runtime {
	r := New(p, t.Specs)
	r.topo = t
	callers := map[string]int{}
	for parent, kids := range t.Children {
		seen := map[string]bool{}
		for _, k := range kids {
			if !seen[k] {
				seen[k] = true
				callers[k]++
			}
		}
		_ = parent
	}
	for _, e := range t.Entries {
		callers[e]++
	}
	for name, n := range callers {
		if c := r.comps[name]; c != nil && n > 1 {
			c.holdToRoot = true
		}
	}
	return r
}

// StackTopology builds a linear chain C1 (entry) -> C2 -> ... -> Cdepth,
// with a store only at the bottom — the multilevel-transaction shape.
func StackTopology(depth int) *Topology {
	if depth < 1 {
		panic("sched: depth must be positive")
	}
	t := &Topology{Children: map[string][]string{}}
	for i := 1; i <= depth; i++ {
		name := fmt.Sprintf("C%d", i)
		t.Specs = append(t.Specs, ComponentSpec{Name: name, HasStore: i == depth})
		if i < depth {
			t.Children[name] = []string{fmt.Sprintf("C%d", i+1)}
		}
	}
	t.Entries = []string{"C1"}
	return t
}

// BankTopology builds the banking example: a bank component delegating to
// two branch components that own the account stores.
func BankTopology() *Topology {
	return &Topology{
		Specs: []ComponentSpec{
			{Name: "bank"},
			{Name: "east", HasStore: true},
			{Name: "west", HasStore: true},
		},
		Children: map[string][]string{"bank": {"east", "west"}},
		Entries:  []string{"bank"},
	}
}

// DiamondTopology builds a general configuration with two independent
// entry components that interfere only through a shared bottom store —
// the transitive-dependency shape of the paper's Figure 3:
//
//	agencyA -> airline -> ledger
//	agencyA -> ledger
//	agencyB -> hotel  -> ledger
//	agencyB -> ledger
func DiamondTopology() *Topology {
	return &Topology{
		Specs: []ComponentSpec{
			{Name: "agencyA"},
			{Name: "agencyB"},
			{Name: "airline", HasStore: true},
			{Name: "hotel", HasStore: true},
			{Name: "ledger", HasStore: true},
		},
		Children: map[string][]string{
			"agencyA": {"airline", "ledger"},
			"agencyB": {"hotel", "ledger"},
			"airline": {"ledger"},
			"hotel":   {"ledger"},
		},
		Entries: []string{"agencyA", "agencyB"},
	}
}

// WorkloadParams configures GenPrograms.
type WorkloadParams struct {
	Roots      int
	StepsPerTx int
	Items      int     // hot-item universe per service
	ReadRatio  float64 // probability a step is a read service
	WriteRatio float64 // probability a step is a write service (rest: increment)
	Seed       int64
}

// GenPrograms generates root-transaction programs over the topology. Each
// step of a root picks a service type (read / write / increment), a hot
// item, and either a local leaf operation or a typed invocation chain down
// the topology. The service type is used consistently down the whole
// subtree, so every component's conflict declaration is sound: operations
// declared commuting at a caller only perform commuting work below.
func GenPrograms(t *Topology, p WorkloadParams) []Invocation {
	if p.Roots < 1 || p.StepsPerTx < 1 || p.Items < 1 {
		panic("sched: WorkloadParams must be positive")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	hasStore := map[string]bool{}
	for _, s := range t.Specs {
		hasStore[s.Name] = s.HasStore
	}

	var steps func(comp string, mode data.Mode, item string) []Step
	steps = func(comp string, mode data.Mode, item string) []Step {
		kids := t.Children[comp]
		var out []Step
		switch {
		case len(kids) == 0:
			// Leaf component: operate on the store.
			out = append(out, Step{Op: &data.Op{Mode: mode, Item: item, Arg: 1}})
		default:
			child := kids[rng.Intn(len(kids))]
			out = append(out, Step{Invoke: &Invocation{
				Component: child,
				Item:      item,
				Mode:      mode,
				Steps:     steps(child, mode, item),
			}})
			if hasStore[comp] && rng.Float64() < 0.5 {
				out = append(out, Step{Op: &data.Op{Mode: mode, Item: item + "_local", Arg: 1}})
			}
		}
		return out
	}

	pick := func() data.Mode {
		switch r := rng.Float64(); {
		case r < p.ReadRatio:
			return data.ModeRead
		case r < p.ReadRatio+p.WriteRatio:
			return data.ModeWrite
		default:
			return data.ModeIncr
		}
	}

	programs := make([]Invocation, p.Roots)
	for i := range programs {
		entry := t.Entries[i%len(t.Entries)]
		var body []Step
		for s := 0; s < p.StepsPerTx; s++ {
			mode := pick()
			item := fmt.Sprintf("x%d", rng.Intn(p.Items)+1)
			kids := t.Children[entry]
			if len(kids) == 0 {
				body = append(body, Step{Op: &data.Op{Mode: mode, Item: item, Arg: 1}})
				continue
			}
			child := kids[rng.Intn(len(kids))]
			body = append(body, Step{Invoke: &Invocation{
				Component: child,
				Item:      item,
				Mode:      mode,
				Steps:     steps(child, mode, item),
			}})
		}
		programs[i] = Invocation{Component: entry, Steps: body}
	}
	return programs
}

// Jitter decorates every step of the programs with a small random delay
// (up to maxDelay), preserving existing Sync hooks. Transactions in this
// runtime execute in microseconds, so without jitter concurrent clients
// rarely interleave within a transaction; experiments that need real
// interleaving (e.g. demonstrating NoCC anomalies) use Jitter to model
// realistic per-step latency.
func Jitter(programs []Invocation, maxDelay time.Duration, seed int64) []Invocation {
	rng := rand.New(rand.NewSource(seed))
	var deco func(inv Invocation) Invocation
	deco = func(inv Invocation) Invocation {
		out := inv
		out.Steps = make([]Step, len(inv.Steps))
		for i, st := range inv.Steps {
			d := time.Duration(rng.Int63n(int64(maxDelay)))
			prev := st.Sync
			st.Sync = func() {
				if prev != nil {
					prev()
				}
				time.Sleep(d)
			}
			if st.Invoke != nil {
				sub := deco(*st.Invoke)
				st.Invoke = &sub
			}
			out.Steps[i] = st
		}
		return out
	}
	out := make([]Invocation, len(programs))
	for i, p := range programs {
		out[i] = deco(p)
	}
	return out
}

// Run submits every program on a pool of client goroutines and waits for
// all commits. Programs are named T1..Tn by index. It returns the first
// submission error, if any.
func Run(rt *Runtime, programs []Invocation, clients int) error {
	if clients < 1 {
		clients = 1
	}
	work := make(chan int)
	errs := make(chan error, len(programs))
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if _, err := rt.Submit(fmt.Sprintf("T%d", i+1), programs[i]); err != nil {
					errs <- err
				}
			}
		}()
	}
	for i := range programs {
		work <- i
	}
	close(work)
	wg.Wait()
	close(errs)
	return <-errs
}
