package sched

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"compositetx/internal/data"
	"compositetx/internal/front"
	"compositetx/internal/model"
)

// Commit-time certification: with EnableCertify, every root commit is
// validated against the Comp-C criterion *before* it is journaled and
// published. The certifier holds a front.Incremental over the committed
// history; at commit it derives the committing transaction's delta — the
// same nodes, conflicts and weak output orders RecordedSystem would
// derive from the staged events — and admits it. A violating interleaving
// is rejected at the commit point with the checker's violation witness,
// instead of being detected post-hoc; the transaction is rolled back like
// a client abort and the committed history stays Comp-C by construction.
//
// Certification is a three-stage pipeline that never touches Runtime.mu:
//
//  1. Out-of-lock delta construction. The committing goroutine orders its
//     stage's node declarations (children-map topological emit), sorts its
//     events, and derives every conflict pair — intra-stage pairs by a
//     seq-ascending sweep, cross-stage pairs by probing the sharded
//     conflict index at an epoch-stamped snapshot. No lock serializes this
//     work across committers.
//  2. Ticketed admission. Tickets enqueue in arrival order and a drainer
//     goroutine (spawned on demand, exits when the queue runs dry) admits
//     them one by one under the certifier's own mutex — the admission
//     order is the certified commit order. Admission first reconciles the
//     pairs added between the ticket's snapshot epoch and now; the
//     committer meanwhile blocks on its per-ticket result channel, so
//     delta construction and WAL work of other commits overlap admission.
//  3. Footprint-disjointness fast path. A stage with zero cross-
//     transaction conflict pairs, no new schedule and no new invocation
//     edge extends the history trivially (an empty delta is trivially
//     Comp-C — it adds only isolated vertices to every constraint
//     relation): instead of engine admission it is parked in the pending
//     set, its events entering only the conflict index. A later
//     conflicting admission flushes the parked stages its pairs
//     reference (front.Incremental.AbsorbNodes, still no admission
//     machinery); a stage that reaches the next checkpoint fold
//     unreferenced is dropped with the fold and never touches the engine
//     at all. Disjoint and read-mostly workloads pay near-zero
//     serialized certification cost.
//
// A rejection poisons the incremental engine (incorrectness is monotone);
// recovery rebuilds a fresh engine by replaying the *admitted delta tail*
// since the last checkpoint fold — no event re-sorting, no re-pairing,
// and no Runtime.mu held, so an O(history) stall per reject became
// O(tail-since-fold).

// ErrCertifyViolation is the sentinel every CertifyError unwraps to.
var ErrCertifyViolation = errors.New("sched: commit rejected by certifier")

// ErrCertifyAfterWAL rejects EnableCertify on a runtime that already has
// a WAL attached: the log's metadata record was journaled without the
// certify flag, so recovering that log would silently come back
// uncertified. Enable certification first, then the WAL.
var ErrCertifyAfterWAL = errors.New("sched: EnableCertify after EnableWAL (journaled metadata would not record certify mode)")

// CertifyError reports a commit rejected by the online certifier,
// carrying the full Comp-C failure verdict as the violation witness.
type CertifyError struct {
	Root    model.NodeID   // rejected root transaction ("" for a seed history)
	Verdict *front.Verdict // failure verdict over history + rejected commit
}

func (e *CertifyError) Error() string {
	if e.Root == "" {
		return fmt.Sprintf("sched: certifier rejected seed history: %s", e.Verdict.Reason)
	}
	return fmt.Sprintf("sched: commit of %s rejected: %s", e.Root, e.Verdict.Reason)
}

func (e *CertifyError) Unwrap() error { return ErrCertifyViolation }

// CertifyOptions tunes the certification pipeline. Set Runtime.CertOpts
// before EnableCertify.
type CertifyOptions struct {
	// Serial restores the pre-pipeline commit path: delta construction and
	// admission run inline under the runtime mutex, with the fast path
	// disabled too — the faithful PR-4 baseline the E17 comparison
	// measures against. Never faster.
	Serial bool
	// NoFastPath disables the footprint-disjointness fast path, forcing
	// every admitted stage through the full engine admission (the
	// always-admit reference the byte-identity property tests compare
	// against).
	NoFastPath bool
}

func certKey(comp, item string) string { return comp + "\x00" + item }

// stampedEvent is one admitted conflict-relevant event, tagged with the
// epoch of the stage that absorbed it.
type stampedEvent struct {
	event
	epoch uint64
}

// modeEvents is one key's admitted events of a single mode, in
// nondecreasing epoch order. Segregating per mode is the index's
// last-conflicting-epoch trick: a probe screens each sublist with ONE
// mode-table check and skips commuting sublists wholesale, so a
// read-mostly or counter-increment key (whose events all commute) costs
// a probing commit nothing no matter how long its history grows.
type modeEvents struct {
	mode data.Mode
	evs  []stampedEvent
}

const certShards = 16

// certShard is one shard of the conflict index. The padding keeps each
// shard's RWMutex on its own cache line, like ckGate's.
type certShard struct {
	mu sync.RWMutex
	m  map[string][]modeEvents
	_  [24]byte
}

// certIndex is the sharded per-(component, item) conflict index. Probes
// run out-of-lock on committing goroutines; appends and resets run only
// under the certifier mutex. Per-mode sublists are append-only in
// nondecreasing epoch order, so an epoch window is a binary-searched
// contiguous range.
type certIndex struct {
	seed   maphash.Seed
	shards [certShards]certShard
}

func newCertIndex() *certIndex {
	ix := &certIndex{seed: maphash.MakeSeed()}
	for i := range ix.shards {
		ix.shards[i].m = map[string][]modeEvents{}
	}
	return ix
}

func (ix *certIndex) shard(key string) *certShard {
	return &ix.shards[maphash.String(ix.seed, key)%certShards]
}

// probe calls fn for every admitted event of key with epoch in (lo, hi]
// whose mode conflicts with mode under the component's table. Commuting
// sublists are skipped after a single table check each.
func (ix *certIndex) probe(key string, lo, hi uint64, mt *data.ModeTable, mode data.Mode, fn func(event)) {
	sh := ix.shard(key)
	sh.mu.RLock()
	for _, me := range sh.m[key] {
		if !mt.ModeConflicts(me.mode, mode) {
			continue
		}
		i := sort.Search(len(me.evs), func(i int) bool { return me.evs[i].epoch > lo })
		for ; i < len(me.evs) && me.evs[i].epoch <= hi; i++ {
			fn(me.evs[i].event)
		}
	}
	sh.mu.RUnlock()
}

// probeFlat is the faithful PR-4 scan the Serial baseline measures
// against: every indexed event under the key is visited and checked
// against the committing event's mode one pair at a time — no per-mode
// sublist screening, no epoch windowing of the scan. Results are
// identical to probe's; the cost is the pre-pipeline per-commit cost.
func (ix *certIndex) probeFlat(key string, lo, hi uint64, mt *data.ModeTable, mode data.Mode, fn func(event)) {
	sh := ix.shard(key)
	sh.mu.RLock()
	for _, me := range sh.m[key] {
		for _, se := range me.evs {
			if mt.ModeConflicts(me.mode, mode) && se.epoch > lo && se.epoch <= hi {
				fn(se.event)
			}
		}
	}
	sh.mu.RUnlock()
}

// addStage appends one absorbed stage's events at the given epoch
// (admission goroutine only; epochs are nondecreasing per key and mode).
// Events are grouped by key so each distinct key costs one shard
// acquisition and one map access instead of one per event.
func (ix *certIndex) addStage(keys []string, evs []event, epoch uint64) {
	for i := range evs {
		first := true
		for j := 0; j < i; j++ {
			if keys[j] == keys[i] {
				first = false
				break
			}
		}
		if !first {
			continue
		}
		sh := ix.shard(keys[i])
		sh.mu.Lock()
		entries := sh.m[keys[i]]
		for j := i; j < len(evs); j++ {
			if keys[j] != keys[i] {
				continue
			}
			e := evs[j]
			found := false
			for k := range entries {
				if entries[k].mode == e.mode {
					entries[k].evs = append(entries[k].evs, stampedEvent{event: e, epoch: epoch})
					found = true
					break
				}
			}
			if !found {
				entries = append(entries, modeEvents{mode: e.mode, evs: []stampedEvent{{event: e, epoch: epoch}}})
			}
		}
		sh.m[keys[i]] = entries
		sh.mu.Unlock()
	}
}

// reset empties the index (checkpoint fold: conflict pairs against folded
// events must never be generated again). Sublists of keys that were
// active this window are truncated in place — their capacity is
// immediately refilled by the next window — while keys idle since the
// previous fold are dropped, so a retired item does not pin its slot
// forever.
func (ix *certIndex) reset() {
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.Lock()
		for k, entries := range sh.m {
			active := false
			for j := range entries {
				if len(entries[j].evs) > 0 {
					entries[j].evs = entries[j].evs[:0]
					active = true
				}
			}
			if !active {
				delete(sh.m, k)
			}
		}
		sh.mu.Unlock()
	}
}

// certifier is the runtime's online Comp-C certifier.
type certifier struct {
	modes map[string]*data.ModeTable // component mode tables (read-only after New)
	opts  CertifyOptions

	// epoch counts absorbed stages; every indexed event carries the epoch
	// of the stage that absorbed it. A builder snapshots it out of lock:
	// events at or below the snapshot are probed during construction,
	// events above it are reconciled at admission. foldGen counts
	// checkpoint folds — a fold invalidates snapshot-probed pairs (their
	// endpoints may be folded out), detected by a generation mismatch.
	epoch   atomic.Uint64
	foldGen atomic.Uint64

	index *certIndex

	// mu guards the engine state below. The admission drainer holds it per
	// ticket batch; CertifiedSystem, the checkpoint fold and the liveNodes
	// gauge take it as readers. Runtime.mu is never acquired inside it.
	mu     sync.Mutex
	inc    *front.Incremental
	scheds map[string]bool // component schedules already declared to the engine
	// tail holds the deltas admitted since the last checkpoint fold, in
	// admission order — the rejection-recovery replay source. The fold is
	// the baseline: it already re-verified everything before it.
	tail []*front.Delta

	// pending parks the stages admitted through the fast path but not yet
	// applied to the engine, keyed by root. A footprint-disjoint stage is
	// Comp-C without the engine's help — it adds only isolated vertices to
	// every constraint relation, and an isolated vertex can neither create
	// nor break a cycle — so its delta is absorbed lazily: only when a
	// later conflicting admission references one of its nodes (the probe
	// index still carries its events, so such a reference always surfaces
	// as a pair whose peer we flush first) or when a reader asks for the
	// whole certified system. A stage that reaches the next checkpoint
	// fold unreferenced is dropped with the fold and never pays engine
	// admission at all — the fold rebuild replays only the live suffix,
	// which never contained it.
	pending     map[model.NodeID]*front.Delta
	pendingNode map[model.NodeID]model.NodeID // any stage node -> its pending root
	pendingN    int                           // nodes across pending (liveNodes gauge)

	// Ticket queue: enqueue appends, the drainer (spawned on demand, gone
	// when idle) processes strictly in arrival order.
	qmu      sync.Mutex
	queue    []*certTicket
	draining bool

	fastPath     atomic.Int64 // stages absorbed via the fast path
	rebuildNanos atomic.Int64 // total wall time spent in rejection rebuilds

	// tickets recycles certTickets across commits. Only the fields the
	// admitted delta does NOT retain are pooled (the footprint slices, the
	// result channel); nodes and pairs end up inside deltas held by the
	// tail and the pending set, so those are freshly allocated per ticket.
	tickets sync.Pool
}

func newCertifier(r *Runtime) *certifier {
	opts := r.CertOpts
	if opts.Serial {
		opts.NoFastPath = true // the PR-4 baseline had no fast path
	}
	c := &certifier{
		modes: make(map[string]*data.ModeTable, len(r.comps)),
		opts:  opts,
		// PropagateInputs mirrors RecordedSystem's Definition 4 item 7
		// propagation, so the certified history matches the recorder.
		inc:         front.NewIncremental(front.IncrementalOptions{PropagateInputs: true}),
		scheds:      map[string]bool{},
		index:       newCertIndex(),
		pending:     map[model.NodeID]*front.Delta{},
		pendingNode: map[model.NodeID]model.NodeID{},
	}
	for name, comp := range r.comps {
		c.modes[name] = comp.modes
	}
	return c
}

// certTicket is one commit's admission request. Everything in it is built
// out of lock on the committing goroutine; admission only reconciles.
type certTicket struct {
	root  model.NodeID
	nodes []front.DeltaNode // topologically ordered node declarations

	// localPairs pairs events within the stage; snapPairs pairs stage
	// events against the index at the snapshot epoch. Each entry is both a
	// conflict and a weak-output pair (directed by seq).
	localPairs []front.DeltaPair
	snapPairs  []front.DeltaPair

	// The stage's footprint for reconciliation and index append: the
	// events in global seq order with their (component, item) keys
	// precomputed alongside.
	evs   []event
	ekeys []string

	// peers lists the counterpart transactions of the probe-derived pairs
	// (over-approximated, deduped against the previous entry only): the
	// admitted nodes this stage's pairs reference. Admission flushes any
	// of them still parked in the pending set before the full Admit.
	peers []model.NodeID

	snapEpoch uint64
	foldGen   uint64

	res chan certResult
}

// notePeer records a pair counterpart for the pre-admission flush.
func (t *certTicket) notePeer(n model.NodeID) {
	if k := len(t.peers); k > 0 && t.peers[k-1] == n {
		return
	}
	t.peers = append(t.peers, n)
}

// getTicket returns a recycled (or fresh) ticket with its pooled fields
// reset; putTicket returns it once the committer has read its result.
func (c *certifier) getTicket() *certTicket {
	if v := c.tickets.Get(); v != nil {
		t := v.(*certTicket)
		t.root = ""
		t.nodes = nil // retained by the admitted delta; never reused
		t.localPairs = nil
		t.snapPairs = nil
		t.evs = t.evs[:0]
		t.ekeys = t.ekeys[:0]
		t.peers = t.peers[:0]
		return t
	}
	return &certTicket{res: make(chan certResult, 1)}
}

func (c *certifier) putTicket(t *certTicket) { c.tickets.Put(t) }

type certResult struct {
	verdict *front.Verdict
	err     error
}

// buildTicket derives the committing stage's delta material exactly as
// RecordedSystem derives the full system: new forest nodes (parents
// first), and — per component, per item — a conflict plus weak-output
// pair for every mode-conflicting event pair with distinct parent
// transactions, directed by global sequence number. It runs on the
// committing goroutine with no runtime lock held; cross-stage pairs come
// from the conflict index at the snapshot epoch, pairs inside the stage
// from a seq-ascending sweep. Schedule declarations are left to admission
// (they depend on admission order).
func (c *certifier) buildTicket(root model.NodeID, stage *stagedRecord) *certTicket {
	t := c.getTicket()
	t.root = root
	t.foldGen = c.foldGen.Load()
	t.snapEpoch = c.epoch.Load()
	ordered := orderDecls(stage.nodes)
	t.nodes = make([]front.DeltaNode, 0, len(ordered))
	for _, n := range ordered {
		t.nodes = append(t.nodes, front.DeltaNode{
			ID: n.id, Parent: n.parent, Sched: model.ScheduleID(n.sched),
		})
	}
	t.evs = append(t.evs, stage.events...)
	// The stage executed sequentially, so its events arrive in seq order
	// already; sort only the exceptional out-of-order record.
	for i := 1; i < len(t.evs); i++ {
		if t.evs[i].seq < t.evs[i-1].seq {
			sort.Slice(t.evs, func(i, j int) bool { return t.evs[i].seq < t.evs[j].seq })
			break
		}
	}
	for i, e := range t.evs {
		key := ""
		for j := i - 1; j >= 0; j-- {
			if t.evs[j].comp == e.comp && t.evs[j].item == e.item {
				key = t.ekeys[j]
				break
			}
		}
		if key == "" {
			key = certKey(e.comp, e.item)
		}
		t.ekeys = append(t.ekeys, key)
	}
	for i, e := range t.evs {
		if c.opts.Serial {
			c.index.probeFlat(t.ekeys[i], 0, t.snapEpoch, c.modes[e.comp], e.mode, func(p event) {
				pairSeq(&t.snapPairs, p, e)
			})
		} else {
			c.index.probe(t.ekeys[i], 0, t.snapEpoch, c.modes[e.comp], e.mode, func(p event) {
				t.notePeer(p.parentTx)
				pairSeq(&t.snapPairs, p, e)
			})
		}
		// Intra-stage sweep: earlier events of the same key pair with e.
		for j := 0; j < i; j++ {
			if t.ekeys[j] == t.ekeys[i] {
				c.pairInto(&t.localPairs, t.evs[j], e)
			}
		}
	}
	return t
}

// pairInto appends the conflict/weak-output pair for two same-item events
// of one component, if they belong to different parent transactions and
// their modes conflict under the component's table.
func (c *certifier) pairInto(dst *[]front.DeltaPair, p, e event) {
	if !c.modes[e.comp].ModeConflicts(p.mode, e.mode) {
		return
	}
	pairSeq(dst, p, e)
}

// pairSeq appends the conflict/weak-output pair for two events already
// known to be mode-conflicting (the index probe screens per sublist), if
// they belong to different parent transactions. The weak output order
// follows the global sequence, exactly as the recorder's assembly sorts
// events by seq before pairing.
func pairSeq(dst *[]front.DeltaPair, p, e event) {
	if p.parentTx == e.parentTx {
		return
	}
	a, b := p, e
	if b.seq < a.seq {
		a, b = b, a
	}
	*dst = append(*dst, front.DeltaPair{Sched: model.ScheduleID(a.comp), A: a.op, B: b.op})
}

// enqueue hands a ticket to the admission queue and guarantees a drainer
// is running. Queue order is the admission order — and so the certified
// commit order.
func (c *certifier) enqueue(t *certTicket) {
	c.qmu.Lock()
	c.queue = append(c.queue, t)
	spawn := !c.draining
	if spawn {
		c.draining = true
	}
	c.qmu.Unlock()
	if spawn {
		go c.drain()
	}
}

// drain is the admission goroutine: it owns the engine for one ticket
// batch at a time (amortizing the certifier mutex across a burst) and
// exits when the queue runs dry, so an idle runtime holds no goroutine.
func (c *certifier) drain() {
	for {
		c.qmu.Lock()
		batch := c.queue
		if len(batch) == 0 {
			c.draining = false
			c.qmu.Unlock()
			return
		}
		c.queue = nil
		c.qmu.Unlock()

		c.mu.Lock()
		for _, t := range batch {
			v, err := c.admitLocked(t)
			t.res <- certResult{verdict: v, err: err}
		}
		c.mu.Unlock()
	}
}

// admitLocked decides one ticket against the admitted history (under
// c.mu). It reconciles the conflict pairs added since the ticket's
// snapshot, assembles the final delta, and either fast-path absorbs it or
// runs the full engine admission. On a violation the stage is discarded,
// the engine rebuilt from the admitted tail, and the failure verdict
// returned. An error reports a malformed stage (certifier state
// unchanged).
func (c *certifier) admitLocked(t *certTicket) (*front.Verdict, error) {
	cur := c.epoch.Load()
	snapPairs, lo := t.snapPairs, t.snapEpoch
	if t.foldGen != c.foldGen.Load() {
		// A checkpoint folded the history after this ticket's snapshot: its
		// snapshot-probed pairs may reference folded nodes. Drop them and
		// re-derive against the post-fold index, which holds exactly the
		// events absorbed since the fold.
		snapPairs, lo = nil, 0
	}
	pairs := snapPairs
	if lo != cur {
		// Stages were absorbed between the snapshot and now: reconcile the
		// window (lo, cur]. When nothing intervened — the common case —
		// the snapshot pairs are already complete and no probe runs.
		for i, e := range t.evs {
			c.index.probe(t.ekeys[i], lo, cur, c.modes[e.comp], e.mode, func(p event) {
				t.notePeer(p.parentTx)
				pairSeq(&pairs, p, e)
			})
		}
	}
	pairs = append(pairs, t.localPairs...)

	d := &front.Delta{Nodes: t.nodes}
	for _, n := range t.nodes {
		s := string(n.Sched)
		if s == "" || c.scheds[s] {
			continue
		}
		dup := false
		for _, sd := range d.Schedules {
			if sd == n.Sched {
				dup = true
				break
			}
		}
		if !dup {
			d.Schedules = append(d.Schedules, n.Sched)
		}
	}
	// Every derived pair is both a declared conflict and a weak-output
	// pair (the engine reads both slices; sharing the backing array is
	// fine, they are never mutated).
	d.Conflicts = pairs
	d.WeakOut = pairs

	if len(pairs) == 0 && len(d.Schedules) == 0 && !c.opts.NoFastPath &&
		c.inc.NodesOnlyEligible(d) {
		// Footprint-disjoint: park the stage for lazy absorption instead of
		// applying it. Its events still enter the conflict index (so a later
		// conflicting stage finds it and flushes it), but the engine — and
		// the next fold's rebuild — never sees it unless referenced.
		c.fastPath.Add(1)
		c.pending[t.root] = d
		for _, n := range t.nodes {
			c.pendingNode[n.ID] = t.root
		}
		c.pendingN += len(t.nodes)
		c.absorbLocked(t, d)
		return nil, nil
	}
	// Full admission references its pair counterparts: any of them still
	// parked must enter the engine first.
	if err := c.flushPeersLocked(t.peers); err != nil {
		return nil, err
	}
	v, err := c.inc.Admit(d)
	if err != nil {
		return nil, err
	}
	if v != nil {
		if rerr := c.rebuildLocked(); rerr != nil {
			return v, rerr
		}
		return v, nil
	}
	c.absorbLocked(t, d)
	return nil, nil
}

// absorbLocked commits an admitted stage into the certifier's history:
// schedules, the delta tail, and the conflict index. The epoch is bumped
// only after every index append, so a builder that snapshots the new
// epoch is guaranteed to see all of the stage's events in its probes.
func (c *certifier) absorbLocked(t *certTicket, d *front.Delta) {
	for _, n := range t.nodes {
		if n.Sched != "" {
			c.scheds[string(n.Sched)] = true
		}
	}
	c.tail = append(c.tail, d)
	ep := c.epoch.Load() + 1
	c.index.addStage(t.ekeys, t.evs, ep)
	c.epoch.Store(ep)
}

// flushPeersLocked applies the pending stages owning the given nodes: a
// conflicting admission is about to reference them, so the engine must
// know them now. Unreferenced pending stages stay parked.
func (c *certifier) flushPeersLocked(peers []model.NodeID) error {
	for _, p := range peers {
		if root, ok := c.pendingNode[p]; ok {
			if err := c.flushOneLocked(root); err != nil {
				return err
			}
		}
	}
	return nil
}

// flushAllLocked applies every pending stage — a whole-system reader
// (CertifiedSystem, the foldable-roots helper) needs the engine complete.
func (c *certifier) flushAllLocked() error {
	for root := range c.pending {
		if err := c.flushOneLocked(root); err != nil {
			return err
		}
	}
	return nil
}

// flushOneLocked unparks one pending stage and absorbs it. Eligibility
// cannot be revoked between parking and flush (the IG only grows, a
// rejection rebuild clears the pending set under this same mutex), so
// the fallback full admission is a belt-and-suspenders path.
func (c *certifier) flushOneLocked(root model.NodeID) error {
	d := c.pending[root]
	delete(c.pending, root)
	for _, n := range d.Nodes {
		delete(c.pendingNode, n.ID)
	}
	c.pendingN -= len(d.Nodes)
	if err := c.inc.AbsorbNodes(d); err != nil {
		if !errors.Is(err, front.ErrNotNodesOnly) {
			return fmt.Errorf("sched: certifier deferred absorb of %s: %w", root, err)
		}
		if _, aerr := c.inc.Admit(d); aerr != nil {
			return fmt.Errorf("sched: certifier deferred absorb of %s: %w", root, aerr)
		}
	}
	return nil
}

// rebuildLocked replaces the poisoned engine with a fresh one replayed
// from the admitted delta tail — the stages admitted since the last
// checkpoint fold (the fold already re-verified everything before it, so
// fold + tail covers the whole admitted history). The stored deltas are
// replayed verbatim: no event re-sorting, no conflict re-pairing, and no
// Runtime.mu held — committers keep building their own deltas while the
// rebuild runs.
func (c *certifier) rebuildLocked() error {
	start := time.Now()
	defer func() { c.rebuildNanos.Add(time.Since(start).Nanoseconds()) }()

	fresh := front.NewIncremental(front.IncrementalOptions{PropagateInputs: true})
	// Schedules declared before the tail window (their declaring stages
	// were folded) must be re-seeded; schedules the tail itself declares
	// must not be (a delta re-declaring one fails validation).
	inTail := map[model.ScheduleID]bool{}
	for _, d := range c.tail {
		for _, s := range d.Schedules {
			inTail[s] = true
		}
	}
	var seed []model.ScheduleID
	for s := range c.scheds {
		if !inTail[model.ScheduleID(s)] {
			seed = append(seed, model.ScheduleID(s))
		}
	}
	if len(seed) > 0 {
		sort.Slice(seed, func(i, j int) bool { return seed[i] < seed[j] })
		if _, err := fresh.Admit(&front.Delta{Schedules: seed}); err != nil {
			return fmt.Errorf("sched: certifier rebuild: %w", err)
		}
	}
	for _, d := range c.tail {
		v, err := fresh.Admit(d)
		if err != nil {
			return fmt.Errorf("sched: certifier rebuild: %w", err)
		}
		if v != nil {
			return fmt.Errorf("sched: certifier rebuild: admitted history re-verification failed: %s", v.Reason)
		}
	}
	c.inc = fresh
	// The tail holds every admitted delta — parked ones included — so the
	// replay above already applied them; nothing is pending anymore.
	clear(c.pending)
	clear(c.pendingNode)
	c.pendingN = 0
	return nil
}

// fold runs the checkpoint fold under the certifier mutex: fold the
// committed roots out of the engine, clear the delta tail (the fold is
// the new rebuild baseline), empty the conflict index, and bump the fold
// generation so in-flight tickets re-derive their snapshot pairs.
func (c *certifier) fold() (roots, nodes int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rs := c.inc.System().Roots()
	if len(rs) > 0 {
		sum, err := c.inc.Checkpoint(rs)
		if err != nil {
			return 0, 0, err
		}
		roots, nodes = sum.Roots, sum.Nodes
	}
	// Pending stages are committed like everything else accumulated, so
	// they fold too — by being dropped. They never entered the engine, so
	// there is nothing to remove; this is where the deferral pays: an
	// unreferenced disjoint stage costs the engine nothing, ever.
	roots += len(c.pending)
	nodes += c.pendingN
	if len(c.pending) > 0 {
		clear(c.pending)
		clear(c.pendingNode)
		c.pendingN = 0
	}
	c.tail = nil
	c.index.reset()
	c.foldGen.Add(1)
	return roots, nodes, nil
}

// liveNodes gauges the certifier's accumulated forest — engine plus
// parked stages (watermark gauge; the backpressure thresholds must see
// deferred memory too).
func (c *certifier) liveNodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inc.LiveNodes() + c.pendingN
}

// orderDecls orders a stage's node declarations parents-first via a
// children-map topological emit (the stage declares leaves and events as
// they execute but a subtransaction only after its subtree completes, so
// children can precede their parent; the delta format requires the
// opposite). One pass indexes children by parent, one preorder walk from
// the stage roots emits them — O(n), sibling order preserved.
// Unresolvable declarations are appended as-is and surface as delta
// validation errors.
func orderDecls(decls []nodeDecl) []nodeDecl {
	if len(decls) <= 1 {
		return decls
	}
	n := len(decls)
	// Child lists as linked siblings over declaration indices (head/tail
	// per node, next per child) — no per-stage maps, sibling order is
	// declaration order. Stages are small, so the parent lookup is a
	// linear scan.
	head := make([]int32, n)
	tail := make([]int32, n)
	next := make([]int32, n)
	for i := range head {
		head[i], tail[i], next[i] = -1, -1, -1
	}
	var roots []int32
	for i, d := range decls {
		p := int32(-1)
		if d.parent != "" {
			for j := 0; j < n; j++ {
				if decls[j].id == d.parent {
					p = int32(j)
					break
				}
			}
		}
		if p < 0 {
			roots = append(roots, int32(i))
			continue
		}
		if head[p] < 0 {
			head[p] = int32(i)
		} else {
			next[tail[p]] = int32(i)
		}
		tail[p] = int32(i)
	}
	out := make([]nodeDecl, 0, n)
	var emit func(i int32)
	emit = func(i int32) {
		out = append(out, decls[i])
		for c := head[i]; c >= 0; c = next[c] {
			emit(c)
		}
	}
	for _, r := range roots {
		emit(r)
	}
	if len(out) != len(decls) {
		emitted := make(map[model.NodeID]bool, len(out))
		for _, d := range out {
			emitted[d.id] = true
		}
		for _, d := range decls {
			if !emitted[d.id] {
				out = append(out, d)
			}
		}
	}
	return out
}

// EnableCertify switches the runtime into live certification mode: every
// subsequent root commit is validated against Comp-C before it is
// journaled and published, and a violating commit is rejected with a
// CertifyError carrying the violation witness. An existing committed
// history is admitted as the seed (after Recover, this rebuilds the
// certifier over the recovered execution). Call before submitting
// transactions. Calling it after EnableWAL returns ErrCertifyAfterWAL:
// the journaled metadata record would not carry the certify flag, so a
// recovery of that log would silently drop certification.
func (r *Runtime) EnableCertify() error {
	if r.wal != nil {
		return ErrCertifyAfterWAL
	}
	return r.enableCertify()
}

// enableCertify is EnableCertify without the WAL-ordering guard. Recover
// calls it after attaching the recovered log, whose metadata already
// records certify mode.
func (r *Runtime) enableCertify() error {
	c := newCertifier(r)
	r.mu.Lock()
	var seed *stagedRecord
	if len(r.rec.nodes) > 0 {
		seed = &stagedRecord{nodes: r.rec.nodes, events: r.rec.events}
	}
	r.mu.Unlock()
	if seed != nil {
		t := c.buildTicket("", seed)
		c.mu.Lock()
		v, err := c.admitLocked(t)
		c.mu.Unlock()
		if err != nil {
			return err
		}
		if v != nil {
			return &CertifyError{Verdict: v}
		}
	}
	r.mu.Lock()
	r.cert = c
	r.mu.Unlock()
	return nil
}

// certifier returns the live certifier (nil = off). The pointer is
// published under Runtime.mu by enableCertify; everything behind it has
// its own synchronization.
func (r *Runtime) certifier() *certifier {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cert
}

// Certifying reports whether live certification is enabled.
func (r *Runtime) Certifying() bool {
	return r.certifier() != nil
}

// CertifiedSystem returns the certifier's accumulated composite system
// (nil when certification is off). It equals RecordedSystem over the
// same commits; callers must not mutate it.
func (r *Runtime) CertifiedSystem() *model.System {
	c := r.certifier()
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Readers see the complete history: unpark everything first. The flush
	// cannot fail for certifier-built stages (see flushOneLocked); if it
	// somehow did, the divergence surfaces in the returned system.
	_ = c.flushAllLocked()
	return c.inc.System()
}

// certify admits a committing attempt's staged record. The delta is built
// on this goroutine against an epoch snapshot of the conflict index, then
// admitted in ticket order by the admission drainer — the global runtime
// mutex is never taken. A nil return admits the commit; a CertifyError
// rejects it.
func (r *Runtime) certify(a *attempt) error {
	c := r.certifier()
	if c == nil {
		return nil
	}
	if c.opts.Serial {
		return r.certifySerial(c, a)
	}
	t := c.buildTicket(a.root, a.stage)
	c.enqueue(t)
	res := <-t.res
	c.putTicket(t)
	if res.err != nil {
		return res.err
	}
	if res.verdict != nil {
		r.certRejects.Add(1)
		return &CertifyError{Root: a.root, Verdict: res.verdict}
	}
	return nil
}

// certifySerial is the pre-pipeline baseline (CertifyOptions.Serial):
// construction and admission both inline under the global runtime mutex,
// exactly the old commit critical section. Kept for the E17 comparison.
func (r *Runtime) certifySerial(c *certifier, a *attempt) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := c.buildTicket(a.root, a.stage)
	c.mu.Lock()
	v, err := c.admitLocked(t)
	c.mu.Unlock()
	c.putTicket(t)
	if err != nil {
		return err
	}
	if v != nil {
		r.certRejects.Add(1)
		return &CertifyError{Root: a.root, Verdict: v}
	}
	return nil
}
