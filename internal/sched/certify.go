package sched

import (
	"errors"
	"fmt"
	"sort"

	"compositetx/internal/front"
	"compositetx/internal/model"
)

// Commit-time certification: with EnableCertify, every root commit is
// validated against the Comp-C criterion *before* it is journaled and
// published. The certifier holds a front.Incremental over the committed
// history; at commit it derives the committing transaction's delta — the
// same nodes, conflicts and weak output orders RecordedSystem would
// derive from the staged events — and admits it. A violating interleaving
// is rejected at the commit point with the checker's violation witness,
// instead of being detected post-hoc; the transaction is rolled back like
// a client abort and the committed history stays Comp-C by construction.

// ErrCertifyViolation is the sentinel every CertifyError unwraps to.
var ErrCertifyViolation = errors.New("sched: commit rejected by certifier")

// CertifyError reports a commit rejected by the online certifier,
// carrying the full Comp-C failure verdict as the violation witness.
type CertifyError struct {
	Root    model.NodeID   // rejected root transaction ("" for a seed history)
	Verdict *front.Verdict // failure verdict over history + rejected commit
}

func (e *CertifyError) Error() string {
	if e.Root == "" {
		return fmt.Sprintf("sched: certifier rejected seed history: %s", e.Verdict.Reason)
	}
	return fmt.Sprintf("sched: commit of %s rejected: %s", e.Root, e.Verdict.Reason)
}

func (e *CertifyError) Unwrap() error { return ErrCertifyViolation }

// certifier is the runtime's online Comp-C certifier. All access is
// serialized under Runtime.mu: admits are part of the commit critical
// section, so the admitted order is the commit order.
type certifier struct {
	inc *front.Incremental

	// scheds tracks the component schedules already declared to the engine.
	scheds map[string]bool
	// index holds the admitted conflict-relevant events per (component,
	// item) — the pairs a committing event must be checked against.
	index map[string][]event

	// The full admitted log. A rejection poisons the incremental engine
	// (incorrectness is monotone), so the certifier rebuilds a clean
	// engine from this log to keep certifying subsequent commits.
	nodes  []nodeDecl
	events []event
}

func newCertifier() *certifier {
	return &certifier{
		// PropagateInputs mirrors RecordedSystem's Definition 4 item 7
		// propagation, so the certified history matches the recorder.
		inc:    front.NewIncremental(front.IncrementalOptions{PropagateInputs: true}),
		scheds: map[string]bool{},
		index:  map[string][]event{},
	}
}

func certKey(comp, item string) string { return comp + "\x00" + item }

// admit decides one staged record against the admitted history. It
// returns (nil, nil) and absorbs the stage when the extended history is
// Comp-C, and the failure verdict when it is not — in which case the
// stage is discarded and the engine is rebuilt over the admitted-only
// history. An error reports a malformed stage (certifier state unchanged).
func (c *certifier) admit(r *Runtime, stage *stagedRecord) (*front.Verdict, error) {
	v, err := c.inc.Admit(c.buildDelta(r, stage))
	if err != nil {
		return nil, err
	}
	if v != nil {
		if rerr := c.rebuild(r); rerr != nil {
			return v, rerr
		}
		return v, nil
	}
	c.absorb(stage)
	return nil, nil
}

// buildDelta derives the committing stage's system delta exactly as
// RecordedSystem derives the full system: new component schedules, the
// stage's forest nodes (parents first), and — per component, per item —
// a conflict plus weak-output pair for every mode-conflicting event pair
// with distinct parent transactions, directed by global sequence number.
// Pairs against already-admitted events come from the index; pairs inside
// the stage from a seq-ascending sweep.
func (c *certifier) buildDelta(r *Runtime, stage *stagedRecord) *front.Delta {
	d := &front.Delta{}
	declared := map[string]bool{}
	for _, n := range stage.nodes {
		if n.sched != "" && !c.scheds[n.sched] && !declared[n.sched] {
			declared[n.sched] = true
			d.Schedules = append(d.Schedules, model.ScheduleID(n.sched))
		}
	}
	for _, n := range orderDecls(stage.nodes) {
		d.Nodes = append(d.Nodes, front.DeltaNode{
			ID: n.id, Parent: n.parent, Sched: model.ScheduleID(n.sched),
		})
	}

	evs := append([]event(nil), stage.events...)
	sort.Slice(evs, func(i, j int) bool { return evs[i].seq < evs[j].seq })
	local := map[string][]event{}
	for _, e := range evs {
		key := certKey(e.comp, e.item)
		for _, p := range c.index[key] {
			c.pairInto(d, r, p, e)
		}
		for _, p := range local[key] {
			c.pairInto(d, r, p, e)
		}
		local[key] = append(local[key], e)
	}
	return d
}

// pairInto appends the conflict and weak-output pair for two same-item
// events of one component, if they belong to different parent
// transactions and their modes conflict under the component's table. The
// weak output order follows the global sequence, exactly as the
// recorder's assembly sorts events by seq before pairing.
func (c *certifier) pairInto(d *front.Delta, r *Runtime, p, e event) {
	if p.parentTx == e.parentTx {
		return
	}
	a, b := p, e
	if b.seq < a.seq {
		a, b = b, a
	}
	if !r.comps[a.comp].modes.ModeConflicts(a.mode, b.mode) {
		return
	}
	dp := front.DeltaPair{Sched: model.ScheduleID(a.comp), A: a.op, B: b.op}
	d.Conflicts = append(d.Conflicts, dp)
	d.WeakOut = append(d.WeakOut, dp)
}

// absorb commits an admitted stage into the certifier's history.
func (c *certifier) absorb(stage *stagedRecord) {
	for _, n := range stage.nodes {
		if n.sched != "" {
			c.scheds[n.sched] = true
		}
	}
	c.nodes = append(c.nodes, stage.nodes...)
	for _, e := range stage.events {
		key := certKey(e.comp, e.item)
		c.index[key] = append(c.index[key], e)
	}
	c.events = append(c.events, stage.events...)
}

// rebuild replaces the poisoned engine with a fresh one seeded from the
// admitted log (one big stage — its intra-stage sweep derives exactly the
// pairs the per-commit admits derived). The admitted history was Comp-C
// at every admit, so re-admitting it succeeds; anything else is a bug
// surfaced as an error.
func (c *certifier) rebuild(r *Runtime) error {
	fresh := newCertifier()
	if len(c.nodes) > 0 {
		seed := &stagedRecord{nodes: c.nodes, events: c.events}
		v, err := fresh.admit(r, seed)
		if err != nil {
			return fmt.Errorf("sched: certifier rebuild: %w", err)
		}
		if v != nil {
			return fmt.Errorf("sched: certifier rebuild: admitted history re-verification failed: %s", v.Reason)
		}
	}
	*c = *fresh
	return nil
}

// orderDecls orders a stage's node declarations parents-first. The stage
// declares leaves and events as they execute but a subtransaction only
// after its subtree completes, so children can precede their parent;
// the delta format requires the opposite. Unresolvable declarations are
// appended as-is and surface as delta validation errors.
func orderDecls(decls []nodeDecl) []nodeDecl {
	out := make([]nodeDecl, 0, len(decls))
	emitted := make(map[model.NodeID]bool, len(decls))
	pending := append([]nodeDecl(nil), decls...)
	for len(pending) > 0 {
		progress := false
		next := pending[:0]
		for _, dcl := range pending {
			if dcl.parent == "" || emitted[dcl.parent] {
				out = append(out, dcl)
				emitted[dcl.id] = true
				progress = true
			} else {
				next = append(next, dcl)
			}
		}
		if !progress {
			return append(out, next...)
		}
		pending = next
	}
	return out
}

// EnableCertify switches the runtime into live certification mode: every
// subsequent root commit is validated against Comp-C before it is
// journaled and published, and a violating commit is rejected with a
// CertifyError carrying the violation witness. An existing committed
// history is admitted as the seed (after Recover, this rebuilds the
// certifier over the recovered execution). Call before submitting
// transactions — and before EnableWAL, so the log records the mode.
func (r *Runtime) EnableCertify() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := newCertifier()
	if len(r.rec.nodes) > 0 {
		seed := &stagedRecord{nodes: r.rec.nodes, events: r.rec.events}
		v, err := c.admit(r, seed)
		if err != nil {
			return err
		}
		if v != nil {
			return &CertifyError{Verdict: v}
		}
	}
	r.cert = c
	return nil
}

// Certifying reports whether live certification is enabled.
func (r *Runtime) Certifying() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cert != nil
}

// CertifiedSystem returns the certifier's accumulated composite system
// (nil when certification is off). It equals RecordedSystem over the
// same commits; callers must not mutate it.
func (r *Runtime) CertifiedSystem() *model.System {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cert == nil {
		return nil
	}
	return r.cert.inc.System()
}

// certify admits a committing attempt's staged record, serialized under
// the runtime mutex so the admitted order is the commit order. A nil
// return admits the commit; a CertifyError rejects it.
func (r *Runtime) certify(a *attempt) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cert == nil {
		return nil
	}
	v, err := r.cert.admit(r, a.stage)
	if err != nil {
		return err
	}
	if v != nil {
		r.certRejects.Add(1)
		return &CertifyError{Root: a.root, Verdict: v}
	}
	return nil
}
