package sched

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"compositetx/internal/data"
)

// Checkpoint suite: the cut must be invisible to verdicts and final
// state, recovery must restart from the marker and replay only the tail,
// a crash at any checkpoint site must recover to a verified state, and
// the watermarks must actually bound engine memory.

// submitSerial runs progs one at a time (deterministic interleaving).
func submitSerial(t *testing.T, rt *Runtime, progs []Invocation, offset int) {
	t.Helper()
	for i, p := range progs {
		if _, err := rt.Submit(fmt.Sprintf("T%d", offset+i+1), p); err != nil {
			t.Fatalf("T%d: %v", offset+i+1, err)
		}
	}
}

// TestCheckpointRoundTripRecovery: commit, checkpoint, commit more,
// close; recovery must start from the marker, replay only the tail, and
// land on the same state and verdict a full replay would.
func TestCheckpointRoundTripRecovery(t *testing.T) {
	topo := transferTopo()
	rt := topo.NewRuntime(Hybrid)
	const initial = 10000
	rt.Store("east").Set("acct", initial)
	dir := t.TempDir() + "/wal"
	// Tiny segments so the checkpoint's truncation has something to delete.
	if err := rt.EnableWAL(WALConfig{Dir: dir, SegmentBytes: 512}); err != nil {
		t.Fatal(err)
	}
	progs := transferPrograms(30)
	submitSerial(t, rt, progs[:15], 0)

	st, err := rt.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if st.LSN == 0 {
		t.Fatal("checkpoint with a WAL must report a marker LSN")
	}
	if st.SegmentsDeleted == 0 {
		t.Fatal("15 transfers across 512-byte segments left nothing to truncate")
	}
	if st.Nodes == 0 {
		t.Fatal("checkpoint pruned no recorder nodes")
	}
	submitSerial(t, rt, progs[15:], 15)
	liveEast, liveWest := rt.Store("east").Get("acct"), rt.Store("west").Get("acct")
	if err := rt.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(WALConfig{Dir: dir})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if !rec.Verdict.Correct {
		t.Fatal("recovered execution failed the Comp-C check")
	}
	if rec.Stats.CheckpointLSN != st.LSN {
		t.Fatalf("recovery anchored at LSN %d, want the marker %d", rec.Stats.CheckpointLSN, st.LSN)
	}
	if rec.Stats.Skipped == 0 {
		t.Fatal("recovery from a checkpoint must skip the covered prefix")
	}
	if rec.Stats.Committed != 30 {
		t.Fatalf("recovered %d commits, want 30 (marker metadata + tail)", rec.Stats.Committed)
	}
	if got := rec.Runtime.Metrics().Commits; got != 30 {
		t.Fatalf("recovered commit counter = %d, want 30", got)
	}
	// Only the 15 post-checkpoint roots are replayable from the log; the
	// prefix lives in the snapshot.
	if n := len(rec.System.Roots()); n != 15 {
		t.Fatalf("recovered projection holds %d roots, want the 15-root tail", n)
	}
	if e, w := rec.Runtime.Store("east").Get("acct"), rec.Runtime.Store("west").Get("acct"); e != liveEast || w != liveWest {
		t.Fatalf("recovered balances (%d, %d) != live (%d, %d)", e, w, liveEast, liveWest)
	}
	conserved(t, rec.Runtime, initial)
	if _, err := rec.Runtime.Submit("Tnew", transferPrograms(1)[0]); err != nil {
		t.Fatalf("recovered runtime rejects new transactions: %v", err)
	}
}

// TestCheckpointVerdictsUnchanged runs the same certified workload with
// and without a checkpoint cadence: every commit must certify in both,
// and the final stores must agree — the fold is invisible.
func TestCheckpointVerdictsUnchanged(t *testing.T) {
	run := func(every int) map[string]int64 {
		topo := transferTopo()
		rt := topo.NewRuntime(Hybrid)
		rt.Store("east").Set("acct", 5000)
		if err := rt.EnableCertify(); err != nil {
			t.Fatal(err)
		}
		if every > 0 {
			rt.EnableCheckpoints(CheckpointConfig{Every: every})
		}
		submitSerial(t, rt, transferPrograms(24), 0)
		snap := rt.Store("east").Snapshot()
		for k, v := range rt.Store("west").Snapshot() {
			snap["west/"+k] = v
		}
		if every > 0 && rt.Checkpoints() == 0 {
			t.Fatal("cadence never took a checkpoint")
		}
		return snap
	}
	plain, folded := run(0), run(6)
	if !reflect.DeepEqual(plain, folded) {
		t.Fatalf("checkpointing changed the outcome:\nplain  %v\nfolded %v", plain, folded)
	}
}

// TestCrashDuringCheckpoint injects a crash at each checkpoint fault site
// and requires recovery to a verified, conserved state. A crash before
// the new marker is durable (begin, marker) must recover from the
// previous checkpoint; after (end), from the new one.
func TestCrashDuringCheckpoint(t *testing.T) {
	for _, site := range []struct {
		step    string
		advance bool // the crashed checkpoint's marker is durable
	}{
		{"begin", false},
		{"marker", false},
		{"end", true},
	} {
		t.Run(site.step, func(t *testing.T) {
			topo := transferTopo()
			rt := topo.NewRuntime(Hybrid)
			const initial = 8000
			rt.Store("east").Set("acct", initial)
			dir := t.TempDir() + "/wal"
			if err := rt.EnableWAL(WALConfig{Dir: dir, SegmentBytes: 512}); err != nil {
				t.Fatal(err)
			}
			progs := transferPrograms(16)
			submitSerial(t, rt, progs[:10], 0)
			first, err := rt.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			submitSerial(t, rt, progs[10:], 10)

			rt.SetFaults(FaultPlan{Triggers: []Trigger{
				{Site: FaultCrash, Txn: "checkpoint", Step: site.step},
			}})
			if _, err := rt.Checkpoint(); !errors.Is(err, ErrCrashed) {
				t.Fatalf("crashed checkpoint returned %v, want ErrCrashed", err)
			}

			rec, err := Recover(WALConfig{Dir: dir})
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if !rec.Verdict.Correct {
				t.Fatal("recovered execution failed the Comp-C check")
			}
			conserved(t, rec.Runtime, initial)
			if rec.Stats.Committed != 16 {
				t.Fatalf("recovered %d commits, want 16", rec.Stats.Committed)
			}
			if site.advance {
				if rec.Stats.CheckpointLSN <= first.LSN {
					t.Fatalf("marker was durable before the crash; recovery anchored at %d, want past %d",
						rec.Stats.CheckpointLSN, first.LSN)
				}
			} else if rec.Stats.CheckpointLSN != first.LSN {
				t.Fatalf("recovery anchored at %d, want the surviving first marker %d",
					rec.Stats.CheckpointLSN, first.LSN)
			}
		})
	}
}

// TestCheckpointCadenceAndMetrics checks EnableCheckpoints' Every knob
// drives Checkpoint automatically and the metrics counters move.
func TestCheckpointCadenceAndMetrics(t *testing.T) {
	topo := transferTopo()
	rt := topo.NewRuntime(Hybrid)
	rt.Store("east").Set("acct", 4000)
	dir := t.TempDir() + "/wal"
	if err := rt.EnableWAL(WALConfig{Dir: dir, SegmentBytes: 512}); err != nil {
		t.Fatal(err)
	}
	rt.EnableCheckpoints(CheckpointConfig{Every: 4})
	submitSerial(t, rt, transferPrograms(16), 0)
	if got := rt.Checkpoints(); got != 4 {
		t.Fatalf("16 commits at Every=4 took %d checkpoints, want 4", got)
	}
	m := rt.Metrics()
	if m.CheckpointsTaken != 4 || m.NodesPruned == 0 || m.SegmentsTruncated == 0 {
		t.Fatalf("metrics %+v: checkpoint counters did not move", m)
	}
	if err := rt.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	conserved(t, rec.Runtime, 4000)
	if rec.Stats.Committed != 16 {
		t.Fatalf("recovered %d commits, want 16", rec.Stats.Committed)
	}
}

// TestOverloadBackpressure: above the high watermark Submit rejects with
// ErrOverload; the watermark-triggered checkpoint drains the engine and
// re-opens admission.
func TestOverloadBackpressure(t *testing.T) {
	topo := transferTopo()
	rt := topo.NewRuntime(Hybrid)
	rt.Store("east").Set("acct", 2000)
	rt.EnableCheckpoints(CheckpointConfig{HighWater: 8})

	// While throttled, admission fails fast with the typed error.
	rt.ck.throttle.Store(true)
	if _, err := rt.Submit("Tover", transferPrograms(1)[0]); !errors.Is(err, ErrOverload) {
		t.Fatalf("throttled Submit returned %v, want ErrOverload", err)
	}
	if rt.Metrics().OverloadThrottles != 1 {
		t.Fatalf("throttle rejections = %d, want 1", rt.Metrics().OverloadThrottles)
	}
	rt.ck.throttle.Store(false)

	// Organic path: the watermark trips at some commit, a checkpoint
	// drains the recorder, and admission re-opens — serial submission must
	// therefore never observe the throttle.
	submitSerial(t, rt, transferPrograms(40), 0)
	if rt.Throttled() {
		t.Fatal("watermark checkpoint failed to lift the throttle")
	}
	if rt.Checkpoints() == 0 {
		t.Fatal("the high watermark never triggered a checkpoint")
	}
	if n := rt.liveNodes(); n >= 8+6 {
		t.Fatalf("live nodes = %d: the watermark is not bounding engine memory", n)
	}
}

// TestCheckpointConcurrentOptimistic hammers a checkpoint cadence against
// concurrent optimistic snapshot readers and writers (run with -race):
// compaction at the snapshot frontier must never produce a torn read, and
// the final execution must verify.
func TestCheckpointConcurrentOptimistic(t *testing.T) {
	const (
		writers      = 4
		readers      = 4
		txsPerClient = 30
		invariantSum = 900
	)
	rt := mvccTopology(data.SemanticTable()).NewRuntime(OpenNested)
	rt.Exec = ExecOptimistic
	rt.Store("C1").Set("a", invariantSum)
	rt.EnableCheckpoints(CheckpointConfig{Every: 7})

	var wg sync.WaitGroup
	var retried atomic.Int64
	submit := func(name string, prog Invocation) {
		for {
			_, err := rt.Submit(name, prog)
			if err == nil {
				return
			}
			if errors.Is(err, ErrOverload) {
				retried.Add(1)
				continue
			}
			t.Error(err)
			return
		}
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txsPerClient; i++ {
				submit(fmt.Sprintf("W%d-%d", w, i), Invocation{Component: "C1", Steps: []Step{
					stepIncr("a", -2), stepIncr("b", 2),
				}})
			}
		}(w)
	}
	for c := 0; c < readers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < txsPerClient; i++ {
				name := fmt.Sprintf("R%d-%d", c, i)
				for {
					res, err := rt.Submit(name, Invocation{Component: "C1", Steps: []Step{
						stepRead("a"), stepRead("b"),
					}})
					if errors.Is(err, ErrOverload) {
						continue
					}
					if err != nil {
						t.Error(err)
						return
					}
					if sum := res.Values[0] + res.Values[1]; sum != invariantSum {
						t.Errorf("torn snapshot under checkpointing: a=%d b=%d", res.Values[0], res.Values[1])
					}
					break
				}
			}
		}(c)
	}
	wg.Wait()
	if got := rt.Store("C1").Get("a") + rt.Store("C1").Get("b"); got != invariantSum {
		t.Fatalf("final sum = %d, want %d", got, invariantSum)
	}
	if rt.Checkpoints() == 0 {
		t.Fatal("the cadence never fired under load")
	}
	// The recorder holds only the tail since the last checkpoint; it must
	// still be a valid, verifiable execution.
	sys := rt.RecordedSystem()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointBoundsMemory is the structural soak: with a cadence, the
// three unbounded structures — recorder/certifier forest, MVCC version
// chains, WAL segments — must all stay flat while the commit horizon
// grows 10x.
func TestCheckpointBoundsMemory(t *testing.T) {
	horizon := 400
	if testing.Short() {
		horizon = 80
	}
	topo := transferTopo()
	rt := topo.NewRuntime(Hybrid)
	rt.Store("east").Set("acct", int64(horizon)*10)
	if err := rt.EnableCertify(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() + "/wal"
	if err := rt.EnableWAL(WALConfig{Dir: dir, SyncEvery: 16, SegmentBytes: 4096}); err != nil {
		t.Fatal(err)
	}
	rt.EnableCheckpoints(CheckpointConfig{Every: 20})

	var maxNodes, maxVersions int
	for i := 0; i < horizon; i++ {
		if _, err := rt.Submit(fmt.Sprintf("T%d", i+1), transferPrograms(1)[0]); err != nil {
			t.Fatal(err)
		}
		if n := rt.liveNodes(); n > maxNodes {
			maxNodes = n
		}
		if v := rt.Store("east").VersionCount("acct"); v > maxVersions {
			maxVersions = v
		}
	}
	// Bounds scale with the cadence (20 commits × a handful of
	// nodes/versions each), NOT with the horizon.
	if maxNodes > 20*8 {
		t.Fatalf("live nodes peaked at %d over %d commits: engine memory is not bounded", maxNodes, horizon)
	}
	if maxVersions > 20+4 {
		t.Fatalf("version chain peaked at %d over %d commits: compaction is not holding", maxVersions, horizon)
	}
	m := rt.Metrics()
	if m.SegmentsTruncated == 0 || m.VersionsCompacted == 0 {
		t.Fatalf("metrics %+v: truncation/compaction never happened", m)
	}
	if err := rt.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	// Recovery replays only the tail: the scanned record count is bounded
	// by the cadence, not the horizon.
	rec, err := Recover(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Stats.Committed != horizon {
		t.Fatalf("recovered %d commits, want %d", rec.Stats.Committed, horizon)
	}
	if tail := rec.Stats.Records - rec.Stats.Skipped; tail > horizon*8/2 {
		t.Fatalf("recovery replayed %d tail records over a %d-commit horizon: truncation is not bounding the log", tail, horizon)
	}
	conserved(t, rec.Runtime, int64(horizon)*10)
}
