package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"compositetx/internal/comm"
	"compositetx/internal/data"
	"compositetx/internal/wal"
)

// The distributed runtime splits the scheduler into a root Coordinator
// and one Participant per component, communicating over a comm.Network.
// Every root transaction commits through presumed-abort two-phase commit:
// the coordinator drives Apply/Lock traffic during execution, then
// Prepare -> Vote -> Decide -> Ack. Participants force a TypePrepare
// record before voting yes and a TypeDecision record before acking, so a
// prepared transaction survives any single crash; the coordinator force-
// logs only commit decisions (absence of a decision means abort).

// Reply codes carried in Message.Code. Zero (with OK set) is success; the
// coordinator maps the rest back onto the runtime's sentinel errors with
// %w so errors.Is works through the RPC layer.
const (
	dcodeOK       uint8 = iota
	dcodeDie            // wait-die sacrifice at the participant -> ErrDie
	dcodeTimeout        // lock-wait deadline expired -> ErrTimeout
	dcodeCrashed        // participant is crashed -> ErrComponentDown
	dcodeOverload       // admission refused -> ErrOverload
	dcodeStale          // attempt tombstoned (unilateral abort or newer attempt) -> ErrTimeout
	dcodeRetry          // query answer: transaction still voting, ask again
	dcodeFatal          // non-retryable store error; Err carries the text
)

// Distributed crash sites (DistCrash.Site). Participant sites fire after
// the corresponding force, before the message that would reveal it — the
// exact windows presumed-abort 2PC must survive.
const (
	DistCrashCoordPre    = "coord-pre-decision"  // after unanimous yes votes, before the decision is forced
	DistCrashCoordPost   = "coord-post-decision" // after the decision is forced, before any Decide is sent
	DistCrashPartPrepare = "part-prepare"        // after the participant forces TypePrepare, before its vote
	DistCrashPartDecide  = "part-decide"         // after the participant forces TypeDecision, before its ack
)

// DistCrash names one crash to inject into a distributed run: the root
// transaction it fires on, the site, and (for participant sites) the
// component. It fires at most once.
type DistCrash struct {
	Txn  string
	Site string
	Part string
}

// distCrashState is the shared, fire-once crash trigger.
type distCrashState struct {
	mu    sync.Mutex
	armed DistCrash
	set   bool
	fired bool
}

func (c *distCrashState) arm(d DistCrash) {
	c.mu.Lock()
	c.armed, c.set, c.fired = d, true, false
	c.mu.Unlock()
}

func (c *distCrashState) fire(site, part, txn string) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.set || c.fired || c.armed.Site != site || c.armed.Txn != txn {
		return false
	}
	if c.armed.Part != "" && c.armed.Part != part {
		return false
	}
	c.fired = true
	return true
}

// pdedup deduplicates one step's delivery: the first arrival executes and
// records its reply, duplicates (RPC retries reuse the same correlation
// ID; the fault injector clones messages outright) wait on done and
// resend the recorded reply. This is what makes at-least-once delivery
// look exactly-once to the store.
type pdedup struct {
	done  chan struct{}
	reply comm.Message
}

// pundo is one journaled mutation of an attempt, with what Inverse needs.
type pundo struct {
	op  data.Op
	res data.Result
	lsn uint64
}

// ptxn is the participant-side state of one root transaction attempt.
type ptxn struct {
	attempt    uint32
	ts         uint64 // root wait-die timestamp
	steps      map[string]*pdedup
	undo       []pundo
	prepDone   chan struct{} // non-nil once a Prepare is being processed
	vote       comm.Message  // recorded vote, valid after prepDone closes
	decideDone chan struct{} // non-nil once a decision force is in flight
	prepared   bool
	querying   bool
	lastTouch  time.Time
}

// Participant is one component's half of the distributed runtime: its
// semantic lock manager, its store (nil for pure scheduling components),
// its write-ahead log, and the message handlers that make duplicated and
// reordered delivery idempotent.
type Participant struct {
	name     string
	coord    string
	protocol Protocol
	modes    *data.ModeTable
	rwTable  *data.ModeTable
	store    *data.Store // nil for components without stores
	lm       *lockManager
	mux      *comm.Mux
	wal      *wal.Log // nil when volatile or storeless
	group    bool     // coalesce force points through wal.Force
	clock    atomic.Uint64
	crashed  atomic.Bool
	crash    *distCrashState

	abandonAfter time.Duration
	queryAfter   time.Duration
	sweepEvery   time.Duration
	rpcTimeout   time.Duration
	rpcRetries   int

	mu       sync.Mutex
	txns     map[string]*ptxn
	aborted  map[string]uint32 // txn -> highest attempt aborted (tombstones)
	resolved map[string]bool   // txn -> terminally committed

	stop     chan struct{}
	sweeps   sync.WaitGroup
	unilats  atomic.Int64 // unilateral abandon-aborts
	queries  atomic.Int64 // termination-protocol queries sent
	resolves atomic.Int64 // in-doubt transactions resolved by query
}

func newParticipant(name string, spec ComponentSpec, cfg DistConfig, crash *distCrashState) *Participant {
	modes := spec.Modes
	if modes == nil {
		modes = data.SemanticTable()
	}
	p := &Participant{
		name:     name,
		coord:    coordName,
		protocol: cfg.Protocol,
		modes:    modes,
		rwTable:  data.RWTable(),
		lm:       newLockManager(),
		crash:    crash,
		group:    cfg.GroupCommit,

		abandonAfter: cfg.AbandonAfter,
		queryAfter:   cfg.QueryAfter,
		sweepEvery:   cfg.SweepEvery,
		rpcTimeout:   cfg.RPCTimeout,
		rpcRetries:   cfg.RPCRetries,

		txns:     map[string]*ptxn{},
		aborted:  map[string]uint32{},
		resolved: map[string]bool{},
		stop:     make(chan struct{}),
	}
	p.lm.crashed = &p.crashed
	if spec.HasStore {
		p.store = data.NewStore()
	}
	return p
}

// connect registers the participant on the network. Recovery rebuilds the
// store and lock state before connecting, so no message ever observes a
// half-rebuilt participant. p.mux is published before Start so a handler
// replying to an immediately-delivered message (the coordinator may
// already be retrying against a recovering node) never races the
// assignment.
func (p *Participant) connect(ep comm.Endpoint) {
	p.mux = comm.NewMux(ep, p.handle)
	p.mux.Start()
}

// start launches the background sweeper (unilateral aborts of abandoned
// attempts, termination-protocol queries for in-doubt transactions).
func (p *Participant) start() {
	p.sweeps.Add(1)
	go p.sweeper()
}

func (p *Participant) tickClock() uint64 { return p.clock.Add(1) }

func (p *Participant) mergeClock(remote uint64) {
	for {
		cur := p.clock.Load()
		if remote <= cur || p.clock.CompareAndSwap(cur, remote) {
			return
		}
	}
}

// crashNow simulates a participant crash: the log is abandoned (its
// unsynced tail discarded), lock waiters drain with ErrCrashed, and the
// endpoint closes so in-flight messages to this node vanish. Recovery is
// RecoverParticipant's job.
func (p *Participant) crashNow() {
	if !p.crashed.CompareAndSwap(false, true) {
		return
	}
	if p.wal != nil {
		p.wal.Abandon(nil)
	}
	p.lm.wake()
	close(p.stop)
	p.mux.Close()
}

// close shuts the participant down cleanly (tests and cluster teardown).
func (p *Participant) close() {
	if p.crashed.CompareAndSwap(false, true) {
		p.lm.wake()
		close(p.stop)
		p.mux.Close()
		if p.wal != nil {
			p.wal.Close()
		}
	}
	p.sweeps.Wait()
}

// journal appends one record when a WAL is attached.
func (p *Participant) journal(rec wal.Record) (uint64, error) {
	if p.wal == nil {
		return 0, nil
	}
	lsn, err := p.wal.Append(rec)
	if err != nil {
		if errors.Is(err, wal.ErrClosed) {
			return 0, ErrCrashed
		}
		return 0, err
	}
	return lsn, nil
}

// force makes recs durable before returning — the durability points of
// 2PC. In group-commit mode the wait goes through the coalesced Force
// API, so concurrent transactions forcing on this log share one fsync;
// otherwise the caller pays its own append+sync.
func (p *Participant) force(recs []wal.Record) error {
	if p.wal == nil || len(recs) == 0 {
		return nil
	}
	var err error
	if p.group {
		err = <-p.wal.Force(recs)
	} else {
		if _, err = p.wal.AppendBatch(recs); err == nil {
			err = p.wal.Sync()
		}
	}
	if err != nil {
		if errors.Is(err, wal.ErrClosed) {
			return ErrCrashed
		}
		return err
	}
	return nil
}

// handle dispatches one inbound request. The mux runs each delivery on
// its own goroutine, so a handler blocking in a lock wait never prevents
// the conflicting transaction's Decide (which releases the lock) from
// being processed.
func (p *Participant) handle(m comm.Message) {
	if p.crashed.Load() {
		return // a crashed node answers nothing
	}
	p.mergeClock(m.Clock)
	switch m.Kind {
	case comm.KindApply:
		p.handleApply(m)
	case comm.KindLock:
		p.handleLock(m)
	case comm.KindPrepare:
		p.handlePrepare(m)
	case comm.KindDecide:
		p.handleDecide(m)
	case comm.KindAbort:
		p.handleAbort(m)
	}
}

func (p *Participant) reply(req comm.Message, rep comm.Message) {
	rep.Txn, rep.Attempt, rep.Node = req.Txn, req.Attempt, req.Node
	rep.Clock = p.tickClock()
	p.mux.Reply(req, rep)
}

// admit classifies an Apply/Lock delivery: stale (tombstoned attempt or
// terminally resolved transaction), duplicate (the step is known — wait
// and resend), or first delivery (a pdedup slot is registered before the
// participant mutex drops, so every later duplicate finds it).
func (p *Participant) admit(m comm.Message) (tx *ptxn, st *pdedup, first, stale bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.resolved[m.Txn] || m.Attempt <= p.aborted[m.Txn] {
		return nil, nil, false, true
	}
	tx = p.txns[m.Txn]
	if tx != nil && (tx.attempt > m.Attempt || tx.decideDone != nil) {
		// A decision force in flight settles the attempt; nothing may
		// touch it (or upgrade past it) until the outcome lands.
		return nil, nil, false, true
	}
	if tx != nil && tx.attempt < m.Attempt {
		// The coordinator moved on to a newer attempt; its abort of the
		// old one was lost in the network. Abort the old attempt locally —
		// a prepared one durably (the newer attempt proves the coordinator
		// decided against it; presumed abort never commits a superseded
		// attempt), an unprepared one with a plain rollback.
		if tx.prepared {
			if err := p.decideLocked(m.Txn, tx, false); err != nil {
				return nil, nil, false, true
			}
		} else {
			p.rollbackLocked(m.Txn, tx)
		}
		tx = nil
	}
	if tx == nil {
		tx = &ptxn{attempt: m.Attempt, ts: m.TS, steps: map[string]*pdedup{}}
		p.txns[m.Txn] = tx
	}
	tx.lastTouch = time.Now()
	if st = tx.steps[m.Node]; st != nil {
		return tx, st, false, false
	}
	st = &pdedup{done: make(chan struct{})}
	tx.steps[m.Node] = st
	return tx, st, true, false
}

// finish records the reply for duplicates and sends it.
func (p *Participant) finish(req comm.Message, st *pdedup, rep comm.Message) {
	p.mu.Lock()
	st.reply = rep
	if tx := p.txns[req.Txn]; tx != nil {
		tx.lastTouch = time.Now()
	}
	p.mu.Unlock()
	close(st.done)
	p.reply(req, rep)
}

func (p *Participant) handleApply(m comm.Message) {
	tx, st, first, stale := p.admit(m)
	if stale {
		p.reply(m, comm.Message{Kind: comm.KindApplyReply, Code: dcodeStale})
		return
	}
	if !first {
		<-st.done
		p.reply(m, st.reply)
		return
	}
	if p.store == nil {
		p.finish(m, st, comm.Message{Kind: comm.KindApplyReply, Code: dcodeFatal,
			Err: fmt.Sprintf("component %q has no store", p.name)})
		return
	}
	op := data.Op{Mode: data.Mode(m.Mode), Item: m.Item, Arg: m.Arg, Impl: data.Mode(m.Impl)}

	// Locking. Distributed commit is strict at every protocol: locks are
	// held to the decision (2PC's prepared state pins them anyway), so
	// the protocols differ only in the lock space — semantic mode-table
	// locks for the nested protocols, physical read/write locks under
	// Global2PL, nothing under NoCC.
	var table *data.ModeTable
	mode := op.Mode
	switch p.protocol {
	case Global2PL:
		table = p.rwTable
		if mode = op.Physical(); mode != data.ModeRead {
			mode = data.ModeWrite
		}
	case NoCC:
	default:
		table = p.modes
	}
	if table != nil {
		deadline := time.Now().Add(time.Duration(m.Wait))
		if err := p.lm.acquireUntil(table, op.Item, mode, m.Txn, m.TS, WaitDie, nil, deadline); err != nil {
			p.finish(m, st, lockErrReply(comm.KindApplyReply, err))
			return
		}
	}

	// Re-validate under the mutex: the attempt may have been aborted (a
	// sweeper abandon, a coordinator Abort, an attempt upgrade) while the
	// lock wait blocked, and a stale grant must not mutate the store. A
	// grant for a gone transaction is released; one racing a newer attempt
	// of the same root is left in place (same lock owner — it drains at
	// that attempt's decision). The journal + store mutation + undo append
	// happen under p.mu so no abort can interleave with them; an in-flight
	// decision force (decideDone) settles the attempt the same way.
	p.mu.Lock()
	if p.txns[m.Txn] != tx || p.resolved[m.Txn] || tx.decideDone != nil {
		gone := p.txns[m.Txn] == nil
		p.mu.Unlock()
		if gone && table != nil {
			p.lm.release(m.Txn)
		}
		p.finish(m, st, comm.Message{Kind: comm.KindApplyReply, Code: dcodeStale})
		return
	}

	// Write-ahead journal (mutations only), then the store mutation — the
	// same discipline as the single-process leafOp, minus checkpoint
	// gating (participants fold their history at recovery instead).
	var lsn uint64
	var res data.Result
	var err error
	if op.Physical() != data.ModeRead {
		rec := wal.Record{
			Type: wal.TypeApply, Txn: m.Txn, Node: m.Node, Comp: p.name,
			Item: op.Item, Mode: string(op.Mode), Impl: string(op.Impl),
			Arg: op.Arg, Prev: p.store.Get(op.Item),
		}
		if lsn, err = p.journal(rec); err != nil {
			p.mu.Unlock()
			p.finish(m, st, lockErrReply(comm.KindApplyReply, err))
			return
		}
		res, err = p.store.Apply(op)
		if err != nil && lsn != 0 {
			p.journal(wal.Record{Type: wal.TypeApplyFail, Txn: m.Txn, Ref: lsn})
		}
	} else {
		res, err = p.store.Apply(op)
	}
	if err != nil {
		p.mu.Unlock()
		p.finish(m, st, comm.Message{Kind: comm.KindApplyReply, Code: dcodeFatal, Err: err.Error()})
		return
	}
	if op.Physical() != data.ModeRead {
		tx.undo = append(tx.undo, pundo{op: op, res: res, lsn: lsn})
	}
	p.mu.Unlock()
	p.finish(m, st, comm.Message{Kind: comm.KindApplyReply, OK: true, Value: res.Value})
}

// handleLock grants the semantic lock of a subtransaction invocation at
// this (caller) component. No store is involved; the grant itself is the
// recorded event, sequenced by the coordinator on reply receipt.
func (p *Participant) handleLock(m comm.Message) {
	tx, st, first, stale := p.admit(m)
	if stale {
		p.reply(m, comm.Message{Kind: comm.KindLockReply, Code: dcodeStale})
		return
	}
	if !first {
		<-st.done
		p.reply(m, st.reply)
		return
	}
	deadline := time.Now().Add(time.Duration(m.Wait))
	if err := p.lm.acquireUntil(p.modes, m.Item, data.Mode(m.Mode), m.Txn, m.TS, WaitDie, nil, deadline); err != nil {
		p.finish(m, st, lockErrReply(comm.KindLockReply, err))
		return
	}
	// Same stale-grant re-validation as handleApply.
	p.mu.Lock()
	if p.txns[m.Txn] != tx || p.resolved[m.Txn] || tx.decideDone != nil {
		gone := p.txns[m.Txn] == nil
		p.mu.Unlock()
		if gone {
			p.lm.release(m.Txn)
		}
		p.finish(m, st, comm.Message{Kind: comm.KindLockReply, Code: dcodeStale})
		return
	}
	tx.lastTouch = time.Now()
	p.mu.Unlock()
	p.finish(m, st, comm.Message{Kind: comm.KindLockReply, OK: true})
}

func lockErrReply(kind comm.Kind, err error) comm.Message {
	rep := comm.Message{Kind: kind}
	switch {
	case errors.Is(err, ErrDie):
		rep.Code = dcodeDie
	case errors.Is(err, ErrTimeout):
		rep.Code = dcodeTimeout
	case errors.Is(err, ErrCrashed):
		rep.Code = dcodeCrashed
	default:
		rep.Code = dcodeFatal
		rep.Err = err.Error()
	}
	return rep
}

// handlePrepare runs phase one: force the prepare record (with the root's
// wait-die timestamp, for lock re-acquisition at recovery), then vote.
// Read-only participants vote yes without forcing anything — with no
// journaled effects there is nothing a crash could lose.
func (p *Participant) handlePrepare(m comm.Message) {
	p.mu.Lock()
	if p.resolved[m.Txn] || m.Attempt <= p.aborted[m.Txn] {
		p.mu.Unlock()
		p.reply(m, comm.Message{Kind: comm.KindVote, Code: dcodeStale})
		return
	}
	tx := p.txns[m.Txn]
	if tx == nil || tx.attempt != m.Attempt {
		p.mu.Unlock()
		p.reply(m, comm.Message{Kind: comm.KindVote, Code: dcodeStale})
		return
	}
	if tx.prepDone != nil {
		done := tx.prepDone
		p.mu.Unlock()
		<-done
		p.mu.Lock()
		vote := tx.vote
		p.mu.Unlock()
		p.reply(m, vote)
		return
	}
	done := make(chan struct{})
	tx.prepDone = done
	tx.lastTouch = time.Now()
	hasWrites := len(tx.undo) > 0
	p.mu.Unlock()

	vote := comm.Message{Kind: comm.KindVote, OK: true}
	if hasWrites {
		rec := wal.Record{
			Type: wal.TypePrepare, Txn: m.Txn, Node: attemptStr(m.Attempt),
			Comp: p.name, Seq: m.TS,
		}
		if err := p.force([]wal.Record{rec}); err != nil {
			vote = lockErrReply(comm.KindVote, err)
		}
	}
	p.mu.Lock()
	if p.txns[m.Txn] != tx {
		// Aborted while the force was in flight (the coordinator only
		// aborts an attempt it has given up on, so a yes here could never
		// be acted on — but answer stale for defense in depth).
		vote = comm.Message{Kind: comm.KindVote, Code: dcodeStale}
	}
	tx.vote = vote
	tx.prepared = vote.OK
	tx.lastTouch = time.Now()
	p.mu.Unlock()
	close(done)
	if vote.OK && p.crash.fire(DistCrashPartPrepare, p.name, m.Txn) {
		p.crashNow()
		return
	}
	p.reply(m, vote)
}

// handleDecide runs phase two: force the decision record, apply it
// (commit keeps the effects and releases locks; abort compensates in
// reverse with journaled inverses first), then ack. Decides for unknown
// or already-decided transactions ack idempotently.
//
// The force runs outside p.mu: the records are built under the mutex,
// tx.decideDone marks the decision in flight (every other path treats the
// attempt as settled and keeps hands off), and only the post-force state
// transition retakes the mutex. N concurrent decisions on one participant
// therefore share coalesced fsyncs instead of serializing a private fsync
// each behind p.mu.
func (p *Participant) handleDecide(m comm.Message) {
	if p.crashed.Load() {
		return
	}
	p.mu.Lock()
	tx := p.txns[m.Txn]
	if p.resolved[m.Txn] || tx == nil || tx.attempt != m.Attempt {
		p.mu.Unlock()
		p.reply(m, comm.Message{Kind: comm.KindAck, OK: true})
		return
	}
	if tx.decideDone != nil {
		// Duplicate racing the first delivery's force: wait for the
		// outcome, then reclassify from scratch.
		done := tx.decideDone
		p.mu.Unlock()
		<-done
		p.handleDecide(m)
		return
	}
	done := make(chan struct{})
	tx.decideDone = done
	tx.lastTouch = time.Now()
	recs := p.decisionRecordsLocked(m.Txn, tx, m.Commit)
	p.mu.Unlock()

	err := p.force(recs)
	p.mu.Lock()
	if err != nil {
		tx.decideDone = nil // a redelivery may retry the decision
		p.mu.Unlock()
		close(done)
		return // crashed mid-decision; recovery resolves it
	}
	p.applyDecisionLocked(m.Txn, tx, m.Commit)
	p.mu.Unlock()
	close(done)
	if p.crash.fire(DistCrashPartDecide, p.name, m.Txn) {
		p.crashNow()
		return
	}
	p.reply(m, comm.Message{Kind: comm.KindAck, OK: true})
}

// decisionRecordsLocked builds what a decision must force before any of
// its effects execute: the decision record for a commit, the journaled
// compensations followed by the decision record for an abort. Empty when
// the attempt journaled nothing (read-only here) — such a decision needs
// no durability point.
func (p *Participant) decisionRecordsLocked(txn string, tx *ptxn, commit bool) []wal.Record {
	if len(tx.undo) == 0 {
		return nil
	}
	if commit {
		return []wal.Record{{Type: wal.TypeDecision, Txn: txn, Node: attemptStr(tx.attempt), Mode: "commit"}}
	}
	// Abort of a prepared transaction: the compensations and the decision
	// are forced as one batch before any inverse executes — recovery
	// replays applies and compensations in log order, so any crash in
	// between nets out.
	var recs []wal.Record
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		inv, ok := data.Inverse(u.op, u.res)
		if !ok {
			continue
		}
		recs = append(recs, wal.Record{
			Type: wal.TypeComp, Txn: txn, Comp: p.name,
			Item: inv.Item, Mode: string(inv.Mode), Impl: string(inv.Impl),
			Arg: inv.Arg, Ref: u.lsn,
		})
	}
	return append(recs, wal.Record{Type: wal.TypeDecision, Txn: txn, Node: attemptStr(tx.attempt), Mode: "abort"})
}

// applyDecisionLocked finalizes a decided attempt under p.mu once its
// records are durable: commit keeps the effects, abort compensates in
// reverse; locks release, tombstones update.
func (p *Participant) applyDecisionLocked(txn string, tx *ptxn, commit bool) {
	if commit {
		p.resolved[txn] = true
	} else {
		p.undoLocked(tx)
		if tx.attempt > p.aborted[txn] {
			p.aborted[txn] = tx.attempt
		}
	}
	delete(p.txns, txn)
	p.lm.release(txn)
}

// decideLocked applies a decision wholly under p.mu: forced decision
// record, effects, lock release, tombstones. The cold paths (attempt
// upgrades, coordinator aborts of prepared attempts, termination-protocol
// answers) use it; the hot Decide path pipelines through handleDecide.
func (p *Participant) decideLocked(txn string, tx *ptxn, commit bool) error {
	if err := p.force(p.decisionRecordsLocked(txn, tx, commit)); err != nil {
		return err
	}
	p.applyDecisionLocked(txn, tx, commit)
	return nil
}

// handleAbort aborts one unprepared attempt (the coordinator's retry
// path). Idempotent: tombstoned and unknown attempts ack immediately. A
// prepared attempt routed here gets the durable abort decision instead.
func (p *Participant) handleAbort(m comm.Message) {
	p.mu.Lock()
	tx := p.txns[m.Txn]
	if p.resolved[m.Txn] || m.Attempt <= p.aborted[m.Txn] || tx == nil || tx.attempt != m.Attempt {
		if tx == nil && m.Attempt > p.aborted[m.Txn] && !p.resolved[m.Txn] {
			// Tombstone an attempt we never saw: a reordered Apply of it
			// arriving later must not resurrect it.
			p.aborted[m.Txn] = m.Attempt
		}
		p.mu.Unlock()
		p.reply(m, comm.Message{Kind: comm.KindAbortReply, OK: true})
		return
	}
	if tx.decideDone != nil {
		// A decision force is in flight; the coordinator only aborts an
		// attempt it gave up on, so ack idempotently and let the decision
		// land.
		p.mu.Unlock()
		p.reply(m, comm.Message{Kind: comm.KindAbortReply, OK: true})
		return
	}
	if tx.prepared {
		if err := p.decideLocked(m.Txn, tx, false); err != nil {
			p.mu.Unlock()
			return
		}
	} else {
		p.rollbackLocked(m.Txn, tx)
	}
	p.mu.Unlock()
	p.reply(m, comm.Message{Kind: comm.KindAbortReply, OK: true})
}

// rollbackLocked undoes an unprepared attempt under p.mu: journaled
// compensations (non-forced — recovery undoes uncommitted applies on its
// own if they are lost), inverse applies in reverse order, lock release,
// tombstone.
func (p *Participant) rollbackLocked(txn string, tx *ptxn) {
	if len(tx.undo) > 0 {
		var recs []wal.Record
		for i := len(tx.undo) - 1; i >= 0; i-- {
			u := tx.undo[i]
			inv, ok := data.Inverse(u.op, u.res)
			if !ok {
				continue
			}
			recs = append(recs, wal.Record{
				Type: wal.TypeComp, Txn: txn, Comp: p.name,
				Item: inv.Item, Mode: string(inv.Mode), Impl: string(inv.Impl),
				Arg: inv.Arg, Ref: u.lsn,
			})
		}
		recs = append(recs, wal.Record{Type: wal.TypeAbort, Txn: txn})
		if p.wal != nil {
			p.wal.AppendBatch(recs)
		}
	}
	p.undoLocked(tx)
	if tx.attempt > p.aborted[txn] {
		p.aborted[txn] = tx.attempt
	}
	delete(p.txns, txn)
	p.lm.release(txn)
}

func (p *Participant) undoLocked(tx *ptxn) {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		if inv, ok := data.Inverse(u.op, u.res); ok {
			p.store.Apply(inv)
		}
	}
	tx.undo = nil
}

// sweeper is the participant's liveness loop. Unprepared attempts idle
// past AbandonAfter are aborted unilaterally (presumed abort lets a
// participant walk away before it votes); prepared attempts idle past
// QueryAfter run the termination protocol — query the coordinator, which
// answers commit (it has a durable decision), abort (presumed), or retry
// (the vote round is still in flight).
func (p *Participant) sweeper() {
	defer p.sweeps.Done()
	tick := time.NewTicker(p.sweepEvery)
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-tick.C:
		}
		now := time.Now()
		var abandon []string
		type inDoubtQuery struct {
			txn string
			tx  *ptxn
		}
		var query []inDoubtQuery
		p.mu.Lock()
		for txn, tx := range p.txns {
			idle := now.Sub(tx.lastTouch)
			switch {
			case !tx.prepared && tx.prepDone == nil && idle > p.abandonAfter:
				abandon = append(abandon, txn)
			case tx.prepared && !tx.querying && tx.decideDone == nil && idle > p.queryAfter:
				tx.querying = true
				query = append(query, inDoubtQuery{txn, tx})
			}
		}
		for _, txn := range abandon {
			if tx := p.txns[txn]; tx != nil && !tx.prepared && tx.prepDone == nil {
				p.rollbackLocked(txn, tx)
				p.unilats.Add(1)
			}
		}
		p.mu.Unlock()
		for _, q := range query {
			go p.resolveInDoubt(q.txn, q.tx)
		}
	}
}

// resolveInDoubt asks the coordinator for the outcome of one prepared,
// undecided attempt and applies the answer. The query carries the
// attempt and the answer is applied only if p.txns[txn] still holds the
// exact ptxn the query was issued for: a presumed-abort reply computed
// for an earlier attempt (or delayed in the network across a retry
// round) must never abort a later attempt that has since prepared and
// may be committing at the coordinator.
func (p *Participant) resolveInDoubt(txn string, tx *ptxn) {
	p.queries.Add(1)
	rep, err := p.mux.Call(p.coord,
		comm.Message{Kind: comm.KindQuery, Txn: txn, Attempt: tx.attempt, Clock: p.tickClock()},
		p.rpcTimeout, p.rpcRetries)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.txns[txn] != tx || !tx.prepared || tx.decideDone != nil {
		return // the queried attempt is gone, superseded, or deciding; drop the answer
	}
	tx.querying = false
	if err != nil || rep.Code == dcodeRetry {
		tx.lastTouch = time.Now() // back off one QueryAfter window
		return
	}
	if p.decideLocked(txn, tx, rep.Commit) == nil {
		p.resolves.Add(1)
	}
}

// inDoubt counts prepared, undecided transactions (Settle polls it).
func (p *Participant) inDoubt() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, tx := range p.txns {
		if tx.prepared {
			n++
		}
	}
	return n
}

func attemptStr(a uint32) string { return fmt.Sprintf("attempt-%d", a) }
