package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"compositetx/internal/data"
)

func TestLockSharedGrants(t *testing.T) {
	lm := newLockManager()
	sem := data.SemanticTable()
	if err := lm.acquire(sem, "x", data.ModeIncr, "a", 1, WaitDie, nil); err != nil {
		t.Fatal(err)
	}
	// Another increment by a different owner is compatible.
	if err := lm.acquire(sem, "x", data.ModeIncr, "b", 2, WaitDie, nil); err != nil {
		t.Fatal(err)
	}
	// Reads on another item are independent.
	if err := lm.acquire(sem, "y", data.ModeRead, "c", 3, WaitDie, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLockWaitDieYoungerDies(t *testing.T) {
	lm := newLockManager()
	sem := data.SemanticTable()
	if err := lm.acquire(sem, "x", data.ModeWrite, "old", 1, WaitDie, nil); err != nil {
		t.Fatal(err)
	}
	// A younger conflicting request must die, not block.
	err := lm.acquire(sem, "x", data.ModeWrite, "young", 2, WaitDie, nil)
	if !errors.Is(err, ErrDie) {
		t.Fatalf("err = %v, want ErrDie", err)
	}
}

func TestLockWaitDieOlderWaits(t *testing.T) {
	lm := newLockManager()
	sem := data.SemanticTable()
	if err := lm.acquire(sem, "x", data.ModeWrite, "young", 5, WaitDie, nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// Older conflicting request: waits until release, then succeeds.
		done <- lm.acquire(sem, "x", data.ModeWrite, "old", 1, WaitDie, nil)
	}()
	select {
	case err := <-done:
		t.Fatalf("older request returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	lm.release("young")
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("older request failed after release: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("older request not woken by release")
	}
	if got := lm.waitCount(); got != 1 {
		t.Fatalf("waitCount = %d, want 1", got)
	}
}

func TestLockReentrantSameOwner(t *testing.T) {
	lm := newLockManager()
	sem := data.SemanticTable()
	if err := lm.acquire(sem, "x", data.ModeWrite, "a", 1, WaitDie, nil); err != nil {
		t.Fatal(err)
	}
	// Same owner re-acquiring a conflicting mode must not self-deadlock.
	if err := lm.acquire(sem, "x", data.ModeRead, "a", 1, WaitDie, nil); err != nil {
		t.Fatal(err)
	}
	// Same root (equal timestamp), different level owner: also compatible.
	if err := lm.acquire(sem, "x", data.ModeWrite, "a/1", 1, WaitDie, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLockReleaseByOwner(t *testing.T) {
	lm := newLockManager()
	sem := data.SemanticTable()
	_ = lm.acquire(sem, "x", data.ModeWrite, "a", 1, WaitDie, nil)
	_ = lm.acquire(sem, "y", data.ModeWrite, "a", 1, WaitDie, nil)
	_ = lm.acquire(sem, "z", data.ModeWrite, "b", 2, WaitDie, nil)
	if !lm.heldBy("a") || !lm.heldBy("b") {
		t.Fatal("locks missing")
	}
	lm.release("a")
	if lm.heldBy("a") {
		t.Fatal("release(a) left locks behind")
	}
	if !lm.heldBy("b") {
		t.Fatal("release(a) dropped b's lock")
	}
}

// BenchmarkLockManagerDisjoint hammers the manager from parallel
// goroutines on goroutine-private items: no semantic conflicts, so the
// measured cost is pure table contention — the case hash-striped shards
// exist for.
func BenchmarkLockManagerDisjoint(b *testing.B) {
	lm := newLockManager()
	sem := data.SemanticTable()
	var ctr atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		id := ctr.Add(1)
		item := fmt.Sprintf("item-%d", id)
		owner := fmt.Sprintf("tx-%d", id)
		for pb.Next() {
			if err := lm.acquire(sem, item, data.ModeIncr, owner, id, WaitDie, nil); err != nil {
				b.Fatal(err)
			}
			lm.release(owner)
		}
	})
}

// BenchmarkLockManagerSharedPool spreads parallel compatible acquisitions
// over a small shared item pool (increments commute, so nothing ever
// waits): table contention with realistic item reuse.
func BenchmarkLockManagerSharedPool(b *testing.B) {
	lm := newLockManager()
	sem := data.SemanticTable()
	items := make([]string, 32)
	for i := range items {
		items[i] = fmt.Sprintf("acct-%d", i)
	}
	var ctr atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		id := ctr.Add(1)
		owner := fmt.Sprintf("tx-%d", id)
		i := int(id)
		for pb.Next() {
			item := items[i%len(items)]
			i++
			if err := lm.acquire(sem, item, data.ModeIncr, owner, id, WaitDie, nil); err != nil {
				b.Fatal(err)
			}
			lm.release(owner)
		}
	})
}

func TestLockManyConcurrentOwners(t *testing.T) {
	lm := newLockManager()
	rw := data.RWTable()
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(ts uint64) {
			defer wg.Done()
			owner := string(rune('A' + ts))
			for {
				err := lm.acquire(rw, "hot", data.ModeWrite, owner, ts, WaitDie, nil)
				if err == nil {
					break
				}
				if !errors.Is(err, ErrDie) {
					errCh <- err
					return
				}
				time.Sleep(time.Millisecond)
			}
			time.Sleep(100 * time.Microsecond)
			lm.release(string(rune('A' + ts)))
		}(uint64(i + 1))
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}
