package sched

import (
	"errors"
	"sync"
	"testing"
	"time"

	"compositetx/internal/data"
	"compositetx/internal/front"
)

func TestWaitGraphCycleDetection(t *testing.T) {
	g := newWaitGraph()
	if g.setWaits(1, []uint64{2}) {
		t.Fatal("single edge is no cycle")
	}
	if g.setWaits(2, []uint64{3}) {
		t.Fatal("chain is no cycle")
	}
	if !g.setWaits(3, []uint64{1}) {
		t.Fatal("closing edge must be detected as a deadlock")
	}
	// The closing edge was rolled back: 3 can wait for 4 instead.
	if g.setWaits(3, []uint64{4}) {
		t.Fatal("edge to fresh node is no cycle")
	}
	g.clear(2)
	if g.setWaits(3, []uint64{1}) {
		t.Fatal("after clearing 2 the cycle is broken")
	}
}

func TestWaitGraphSelfEdgeIgnored(t *testing.T) {
	g := newWaitGraph()
	// A transaction never waits for itself (shared timestamps are skipped
	// in acquire); setWaits must tolerate it anyway.
	if g.setWaits(1, []uint64{1}) {
		t.Fatal("self edge must be ignored")
	}
}

// TestDetectWFGGrantsYoungOverOld: unlike wait-die, detection lets a
// younger transaction wait for an older one; it only aborts on real
// cycles.
func TestDetectWFGYoungerMayWait(t *testing.T) {
	lm := newLockManager()
	wg := newWaitGraph()
	sem := data.SemanticTable()
	if err := lm.acquire(sem, "x", data.ModeWrite, "old", 1, DetectWFG, wg); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- lm.acquire(sem, "x", data.ModeWrite, "young", 2, DetectWFG, wg)
	}()
	select {
	case err := <-done:
		t.Fatalf("younger request should wait, not return: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	lm.release("old")
	if err := <-done; err != nil {
		t.Fatalf("younger request should be granted after release: %v", err)
	}
}

// TestDetectWFGDeadlockCycle: two transactions crossing two locks — the
// second wait closes the cycle and is sacrificed.
func TestDetectWFGDeadlockCycle(t *testing.T) {
	lm := newLockManager()
	wg := newWaitGraph()
	sem := data.SemanticTable()
	if err := lm.acquire(sem, "x", data.ModeWrite, "t1", 1, DetectWFG, wg); err != nil {
		t.Fatal(err)
	}
	if err := lm.acquire(sem, "y", data.ModeWrite, "t2", 2, DetectWFG, wg); err != nil {
		t.Fatal(err)
	}
	// t1 blocks on y (held by t2).
	firstBlocked := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(firstBlocked)
		done <- lm.acquire(sem, "y", data.ModeWrite, "t1", 1, DetectWFG, wg)
	}()
	<-firstBlocked
	time.Sleep(10 * time.Millisecond) // let t1 register its wait
	// t2 requests x (held by t1): closes the cycle, must die.
	err := lm.acquire(sem, "x", data.ModeWrite, "t2", 2, DetectWFG, wg)
	if !errors.Is(err, ErrDie) {
		t.Fatalf("cycle-closing request: err = %v, want ErrDie", err)
	}
	// t2 rolls back and releases; t1 proceeds.
	wg.clear(2)
	lm.release("t2")
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("t1 should be granted after t2's rollback: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("t1 not woken after t2's rollback")
	}
}

// TestRuntimeDetectWFGWorkloads: the full runtime under detection-based
// deadlock handling stays live and correct across topologies/protocols.
func TestRuntimeDetectWFGWorkloads(t *testing.T) {
	for _, p := range []Protocol{ClosedNested, Global2PL, Hybrid} {
		t.Run(p.String(), func(t *testing.T) {
			topo := DiamondTopology()
			rt := topo.NewRuntime(p)
			rt.Deadlock = DetectWFG
			progs := GenPrograms(topo, WorkloadParams{
				Roots: 40, StepsPerTx: 3, Items: 2,
				ReadRatio: 0.2, WriteRatio: 0.5, Seed: 11,
			})
			progs = Jitter(progs, 100*time.Microsecond, 11)
			if err := Run(rt, progs, 8); err != nil {
				t.Fatal(err)
			}
			if m := rt.Metrics(); m.Commits != 40 {
				t.Fatalf("commits = %d, want 40", m.Commits)
			}
			sys := rt.RecordedSystem()
			if err := sys.Validate(); err != nil {
				t.Fatalf("recorded execution must validate: %v", err)
			}
			ok, err := front.IsCompC(sys)
			if err != nil || !ok {
				t.Fatalf("recorded execution must be Comp-C: %v, %v", ok, err)
			}
		})
	}
}

// TestRuntimeDeadlockScenarioBothPolicies: a genuine crossed-lock deadlock
// scenario resolves under both policies with the expected invariants.
func TestRuntimeDeadlockScenarioBothPolicies(t *testing.T) {
	for _, pol := range []DeadlockPolicy{WaitDie, DetectWFG} {
		t.Run(pol.String(), func(t *testing.T) {
			rt := BankTopology().NewRuntime(ClosedNested)
			rt.Deadlock = pol
			t1AtX := make(chan struct{})
			var once sync.Once

			write := func(item string) *Invocation {
				return &Invocation{Component: "east", Item: item, Mode: data.ModeWrite,
					Steps: []Step{{Op: &data.Op{Mode: data.ModeWrite, Item: item, Arg: 1}}}}
			}
			var wgrp sync.WaitGroup
			wgrp.Add(2)
			go func() {
				defer wgrp.Done()
				_, err := rt.Submit("T1", Invocation{Component: "bank", Steps: []Step{
					{Invoke: write("x")},
					{Sync: func() { once.Do(func() { close(t1AtX) }) }, Invoke: write("y")},
				}})
				if err != nil {
					t.Error(err)
				}
			}()
			go func() {
				defer wgrp.Done()
				<-t1AtX
				_, err := rt.Submit("T2", Invocation{Component: "bank", Steps: []Step{
					{Invoke: write("y")},
					{Invoke: write("x")},
				}})
				if err != nil {
					t.Error(err)
				}
			}()
			wgrp.Wait()
			m := rt.Metrics()
			if m.Commits != 2 {
				t.Fatalf("commits = %d, want 2", m.Commits)
			}
			sys := rt.RecordedSystem()
			if err := sys.Validate(); err != nil {
				t.Fatal(err)
			}
			if ok, err := front.IsCompC(sys); err != nil || !ok {
				t.Fatalf("execution must be Comp-C: %v, %v", ok, err)
			}
		})
	}
}
