package sched

import (
	"sort"

	"compositetx/internal/data"
	"compositetx/internal/model"
)

// The recorder captures the committed execution of a runtime as raw
// events, and assembles them into a model.System for the Comp-C checker.
// Aborted attempts stage their records and are discarded on rollback, so
// the assembled system is the committed projection of the run.

// nodeDecl declares a forest node: a transaction (sched != "") or a leaf.
type nodeDecl struct {
	id     model.NodeID
	parent model.NodeID // "" for roots
	sched  string       // component name for transactions, "" for leaves
}

// event is one granted semantic operation at a component: a leaf access or
// a subtransaction invocation, with the global sequence number that fixes
// the conflict order.
type event struct {
	seq      uint64
	comp     string
	op       model.NodeID
	parentTx model.NodeID
	item     string
	mode     data.Mode
}

// stagedRecord buffers one attempt's declarations and events.
type stagedRecord struct {
	nodes  []nodeDecl
	events []event
}

func newStagedRecord() *stagedRecord {
	// Modest initial capacities: a typical attempt declares a handful of
	// nodes and a dozen-odd events, and the growth ladder from nil is a
	// measurable share of commit-path allocation.
	return &stagedRecord{nodes: make([]nodeDecl, 0, 8), events: make([]event, 0, 16)}
}

func (s *stagedRecord) declareNode(n nodeDecl) { s.nodes = append(s.nodes, n) }
func (s *stagedRecord) addEvent(e event)       { s.events = append(s.events, e) }

// truncate drops the staged declarations and events past the given
// lengths: the record-side of a subtransaction-scoped rollback, so a
// compensated-and-retried subtransaction leaves no trace of its failed
// attempt in the committed projection.
func (s *stagedRecord) truncate(nodes, events int) {
	s.nodes = s.nodes[:nodes]
	s.events = s.events[:events]
}

// recorder accumulates committed attempts.
type recorder struct {
	nodes  []nodeDecl
	events []event
}

func newRecorder() *recorder { return &recorder{} }

func (r *recorder) merge(s *stagedRecord) {
	r.nodes = append(r.nodes, s.nodes...)
	r.events = append(r.events, s.events...)
}

// RecordedSystem assembles the committed execution into a composite-system
// model: one schedule per component that executed at least one
// transaction, conflicts derived from each component's mode table, the
// weak output order over conflicting pairs in global sequence order, and
// input orders propagated per Definition 4 item 7.
func (r *Runtime) RecordedSystem() *model.System {
	r.mu.Lock()
	defer r.mu.Unlock()
	return assembleSystem(r.rec, func(comp string) *data.ModeTable {
		return r.comps[comp].modes
	})
}

// assembleSystem builds the composite-system model from a recorder's raw
// committed events. Shared by the single-process Runtime and the
// distributed Coordinator (whose recorder is fed by participant replies
// and rebuilt from its WAL at recovery) — the checker sees the same
// assembly either way.
func assembleSystem(rec *recorder, modesOf func(string) *data.ModeTable) *model.System {
	sys := model.NewSystem()
	// Schedules: every component that scheduled a transaction.
	used := map[string]bool{}
	for _, n := range rec.nodes {
		if n.sched != "" {
			used[n.sched] = true
		}
	}
	names := make([]string, 0, len(used))
	for n := range used {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sys.AddSchedule(model.ScheduleID(n))
	}

	// Nodes. Declarations may repeat across attempts of different
	// transactions but IDs are unique within the committed projection.
	for _, n := range rec.nodes {
		switch {
		case n.sched != "" && n.parent == "":
			sys.AddRoot(n.id, model.ScheduleID(n.sched))
		case n.sched != "":
			sys.AddTx(n.id, n.parent, model.ScheduleID(n.sched))
		default:
			sys.AddLeaf(n.id, n.parent)
		}
	}

	// Conflicts and weak output orders per component, per item.
	grouped := map[string][]event{}
	for _, e := range rec.events {
		grouped[e.comp] = append(grouped[e.comp], e)
	}
	for _, comp := range names {
		evs := grouped[comp]
		sort.Slice(evs, func(i, j int) bool { return evs[i].seq < evs[j].seq })
		modes := modesOf(comp)
		sc := sys.Schedule(model.ScheduleID(comp))
		byItem := map[string][]event{}
		for _, e := range evs {
			byItem[e.item] = append(byItem[e.item], e)
		}
		for _, same := range byItem {
			for i, a := range same {
				for _, b := range same[i+1:] {
					if a.parentTx == b.parentTx {
						continue
					}
					if modes.ModeConflicts(a.mode, b.mode) {
						sc.AddConflict(a.op, b.op)
						sc.WeakOut.Add(a.op, b.op)
					}
				}
			}
		}
	}

	// Definition 4 item 7: propagate output orders (closed) to callee
	// input orders.
	for _, comp := range names {
		sc := sys.Schedule(model.ScheduleID(comp))
		closed := sc.WeakOut.TransitiveClosure()
		closed.Each(func(a, b model.NodeID) {
			na, nb := sys.Node(a), sys.Node(b)
			if na == nil || nb == nil || na.IsLeaf() || nb.IsLeaf() || na.Sched != nb.Sched {
				return
			}
			sys.Schedule(na.Sched).WeakIn.Add(a, b)
		})
	}

	return sys
}

// Sequences extracts each component's temporal operation sequence from the
// committed events (for OPSR-style analyses of runtime executions).
func (r *Runtime) Sequences() map[model.ScheduleID][]model.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	evs := append([]event(nil), r.rec.events...)
	sort.Slice(evs, func(i, j int) bool { return evs[i].seq < evs[j].seq })
	out := map[model.ScheduleID][]model.NodeID{}
	for _, e := range evs {
		out[model.ScheduleID(e.comp)] = append(out[model.ScheduleID(e.comp)], e.op)
	}
	return out
}
