package sched

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"compositetx/internal/comm"
	"compositetx/internal/data"
	"compositetx/internal/model"
	"compositetx/internal/wal"
)

// coordName is the coordinator's reserved endpoint name.
const coordName = "coord"

// dcomp is the coordinator's view of one component: just enough topology
// to route operations and assemble the recorded system (the component's
// actual store and locks live at its participant).
type dcomp struct {
	name     string
	hasStore bool
	modes    *data.ModeTable
}

// coTxn tracks one durably committed transaction until every participant
// acked its decision (then TypeEnd retires it from re-delivery). attempt
// is the attempt that committed — re-delivered Decides and termination-
// protocol answers are only valid for that attempt.
type coTxn struct {
	attempt uint32
	parts   []string
	pending map[string]bool
	ended   bool
}

// Coordinator is the root scheduler of the distributed runtime. It walks
// transaction programs exactly like the single-process Runtime — but
// every lock grant and store operation is an RPC to the owning
// participant — and commits through presumed-abort 2PC. It is also the
// event-sequence authority: sequence numbers are stamped centrally when
// a grant's reply arrives, which is order-consistent because every
// participant holds its locks to the decision (two conflicting grants
// are always separated by a full decision round-trip through here).
type Coordinator struct {
	protocol Protocol
	topo     *Topology
	comps    map[string]*dcomp
	mux      *comm.Mux
	wal      *wal.Log
	group    bool          // coalesce force points through wal.Force
	clock    atomic.Uint64 // Lamport clock; event-sequence authority
	tsc      atomic.Uint64 // wait-die timestamp source
	crashed  atomic.Bool
	crash    *distCrashState

	rpcTimeout time.Duration
	rpcRetries int
	maxRetries int
	maxActive  int
	lockWait   time.Duration

	mu        sync.Mutex
	rec       *recorder
	inflight  map[string]bool   // txns between first RPC and decision (Query -> retry)
	committed map[string]*coTxn // durable commit decisions
	active    int

	commits    atomic.Int64
	abortRetry atomic.Int64
	redelivers atomic.Int64

	stop chan struct{}
	bg   sync.WaitGroup
}

// dattempt is one attempt of one root transaction at the coordinator.
type dattempt struct {
	txn     string
	root    model.NodeID
	attempt uint32
	ts      uint64
	stage   *stagedRecord
	values  []int64
	touched map[string]bool
	rng     *rand.Rand // backoff jitter, built lazily on first retry
	rngSeed int64
}

func (a *dattempt) jitter(n int) int {
	if a.rng == nil {
		a.rng = rand.New(rand.NewSource(a.rngSeed))
	}
	return a.rng.Intn(n)
}

func newCoordinator(cfg DistConfig, topo *Topology, crash *distCrashState) *Coordinator {
	c := &Coordinator{
		protocol: cfg.Protocol,
		topo:     topo,
		comps:    map[string]*dcomp{},
		crash:    crash,
		group:    cfg.GroupCommit,

		rpcTimeout: cfg.RPCTimeout,
		rpcRetries: cfg.RPCRetries,
		maxRetries: cfg.MaxRetries,
		maxActive:  cfg.MaxActive,
		lockWait:   cfg.LockWait,

		rec:       newRecorder(),
		inflight:  map[string]bool{},
		committed: map[string]*coTxn{},
		stop:      make(chan struct{}),
	}
	for _, spec := range topo.Specs {
		modes := spec.Modes
		if modes == nil {
			modes = data.SemanticTable()
		}
		c.comps[spec.Name] = &dcomp{name: spec.Name, hasStore: spec.HasStore, modes: modes}
	}
	return c
}

// connect registers the coordinator on the network (after any recovery
// rebuild, so queries never observe partial state).
func (c *Coordinator) connect(ep comm.Endpoint) {
	c.mux = comm.NewMux(ep, c.handle)
	c.mux.Start()
}

// start launches the decision re-delivery loop.
func (c *Coordinator) start(every time.Duration) {
	c.bg.Add(1)
	go c.redeliverLoop(every)
}

func (c *Coordinator) tick() uint64 { return c.clock.Add(1) }

func (c *Coordinator) mergeClock(remote uint64) {
	for {
		cur := c.clock.Load()
		if remote <= cur || c.clock.CompareAndSwap(cur, remote) {
			return
		}
	}
}

// crashNow simulates a coordinator crash: log abandoned, endpoint closed
// (participant queries go unanswered until recovery re-registers it).
func (c *Coordinator) crashNow() {
	if !c.crashed.CompareAndSwap(false, true) {
		return
	}
	if c.wal != nil {
		c.wal.Abandon(nil)
	}
	close(c.stop)
	c.mux.Close()
}

func (c *Coordinator) close() {
	if c.crashed.CompareAndSwap(false, true) {
		close(c.stop)
		c.mux.Close()
		if c.wal != nil {
			c.wal.Close()
		}
	}
	c.bg.Wait()
}

// handle answers the termination protocol: a prepared participant asking
// for one attempt's outcome gets commit (a durable decision exists for
// exactly that attempt), retry (the transaction is still executing or
// voting), or the presumed abort. A prepared attempt other than the
// committed one was superseded before the commit — it aborts.
func (c *Coordinator) handle(m comm.Message) {
	if c.crashed.Load() || m.Kind != comm.KindQuery {
		return
	}
	c.mergeClock(m.Clock)
	rep := comm.Message{Kind: comm.KindQueryReply, OK: true, Txn: m.Txn, Attempt: m.Attempt}
	c.mu.Lock()
	if ct, ok := c.committed[m.Txn]; ok {
		rep.Commit = ct.attempt == m.Attempt
	} else if c.inflight[m.Txn] {
		rep.Code = dcodeRetry
	}
	c.mu.Unlock()
	rep.Clock = c.tick()
	c.mux.Reply(m, rep)
}

// call performs one RPC with the coordinator's deadline/retry policy and
// maps transport failures onto the runtime's sentinels.
func (c *Coordinator) call(to string, req comm.Message) (comm.Message, error) {
	if c.crashed.Load() {
		return comm.Message{}, ErrCrashed
	}
	req.Clock = c.tick()
	rep, err := c.mux.Call(to, req, c.rpcTimeout, c.rpcRetries)
	if err != nil {
		if c.crashed.Load() || errors.Is(err, comm.ErrClosed) {
			return comm.Message{}, ErrCrashed
		}
		if errors.Is(err, comm.ErrRPCTimeout) {
			return comm.Message{}, fmt.Errorf("sched: rpc %s to %s: %w: %w", req.Kind, to, ErrTimeout, err)
		}
		return comm.Message{}, fmt.Errorf("sched: rpc %s to %s: %w", req.Kind, to, err)
	}
	c.mergeClock(rep.Clock)
	return rep, nil
}

// replyErr maps a participant's reply code back onto the sentinel errors,
// wrapped with %w so errors.Is(err, ErrDie/ErrTimeout/ErrComponentDown/
// ErrOverload) holds across the RPC boundary.
func replyErr(from string, rep comm.Message) error {
	switch rep.Code {
	case dcodeDie:
		return fmt.Errorf("sched: wait-die sacrifice at %s: %w", from, ErrDie)
	case dcodeTimeout:
		return fmt.Errorf("sched: lock wait expired at %s: %w", from, ErrTimeout)
	case dcodeCrashed:
		return fmt.Errorf("sched: participant %s is crashed: %w", from, ErrComponentDown)
	case dcodeOverload:
		return fmt.Errorf("sched: participant %s refused admission: %w", from, ErrOverload)
	case dcodeStale:
		return fmt.Errorf("sched: participant %s abandoned the attempt: %w", from, ErrTimeout)
	default:
		return fmt.Errorf("sched: participant %s: %s", from, rep.Err)
	}
}

// Submit runs the program as a distributed root transaction: the same
// retry loop as the single-process Runtime (wait-die sacrifices, lock
// timeouts, and down participants retry with the attempt's original
// timestamp), but each failed attempt is aborted at every touched
// participant before the next begins, and a successful walk commits
// through 2PC.
func (c *Coordinator) Submit(name string, root Invocation) (*TxResult, error) {
	if _, ok := c.comps[root.Component]; !ok {
		return nil, fmt.Errorf("sched: unknown component %q", root.Component)
	}
	if c.crashed.Load() {
		return nil, ErrCrashed
	}
	if err := c.admit(); err != nil {
		return nil, err
	}
	defer c.release()

	ts := c.tsc.Add(1)
	rootID := model.NodeID(name)
	retries := 0
	for {
		if c.crashed.Load() {
			return nil, ErrCrashed
		}
		a := &dattempt{
			txn:     name,
			root:    rootID,
			attempt: uint32(retries + 1),
			ts:      ts,
			stage:   newStagedRecord(),
			touched: map[string]bool{},
			rngSeed: int64(ts)*7919 + int64(retries),
		}
		a.stage.declareNode(nodeDecl{id: rootID, sched: root.Component})
		c.setInflight(name, true)
		err := c.exec(a, rootID, root)
		if err == nil {
			err = c.commit2PC(a)
			if err == nil {
				return &TxResult{Root: rootID, Retries: retries, Values: a.values}, nil
			}
		} else {
			c.setInflight(name, false)
			c.abortAttempt(a)
		}
		if errors.Is(err, ErrCrashed) {
			return nil, ErrCrashed
		}
		switch {
		case errors.Is(err, ErrDie), errors.Is(err, ErrTimeout), errors.Is(err, ErrInjected):
			// Retryable: sacrifices, expired lock waits and RPC deadlines
			// (partitions heal, crashed participants recover), abandoned
			// attempts. The transaction keeps its timestamp and ages into
			// priority under wait-die.
		default:
			return nil, err
		}
		retries++
		c.abortRetry.Add(1)
		if retries > c.maxRetries {
			return nil, fmt.Errorf("%w (last abort: %w)", ErrTooManyRetries, err)
		}
		shift := retries
		if shift > 6 {
			shift = 6
		}
		base := 50 << shift
		select {
		case <-c.stop:
			return nil, ErrCrashed
		case <-time.After(time.Duration(base/2+a.jitter(base)) * time.Microsecond):
		}
	}
}

func (c *Coordinator) admit() error {
	if c.maxActive <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.active >= c.maxActive {
		return fmt.Errorf("sched: %d distributed roots in flight: %w", c.active, ErrOverload)
	}
	c.active++
	return nil
}

func (c *Coordinator) release() {
	if c.maxActive <= 0 {
		return
	}
	c.mu.Lock()
	c.active--
	c.mu.Unlock()
}

func (c *Coordinator) setInflight(txn string, v bool) {
	c.mu.Lock()
	if v {
		c.inflight[txn] = true
	} else {
		delete(c.inflight, txn)
	}
	c.mu.Unlock()
}

// exec walks one (sub)transaction's steps, issuing Apply RPCs for leaf
// operations and Lock RPCs plus recursion for invocations.
func (c *Coordinator) exec(a *dattempt, node model.NodeID, inv Invocation) error {
	dc := c.comps[inv.Component]
	if dc == nil {
		return fmt.Errorf("sched: unknown component %q", inv.Component)
	}
	for i, step := range inv.Steps {
		if c.crashed.Load() {
			return ErrCrashed
		}
		childID := model.NodeID(fmt.Sprintf("%s/%d", node, i+1))
		if step.Sync != nil {
			step.Sync()
		}
		if step.Fail != nil {
			return fmt.Errorf("%w: step %s: %w", ErrClientAbort, childID, step.Fail)
		}
		switch {
		case step.Op != nil && step.Invoke != nil:
			return fmt.Errorf("sched: step %s has both Op and Invoke", childID)
		case step.Op != nil:
			if !dc.hasStore {
				return fmt.Errorf("sched: component %q has no store for %s", dc.name, step.Op)
			}
			if err := c.leafOp(a, dc, node, childID, *step.Op); err != nil {
				return err
			}
		case step.Invoke != nil:
			if err := c.invoke(a, dc, node, childID, *step.Invoke); err != nil {
				return err
			}
		default:
			return fmt.Errorf("sched: empty step %s", childID)
		}
	}
	return nil
}

// leafOp sends one store operation to its participant and stamps the
// event when the reply (the grant) arrives.
func (c *Coordinator) leafOp(a *dattempt, dc *dcomp, parent, id model.NodeID, op data.Op) error {
	rep, err := c.call(dc.name, comm.Message{
		Kind: comm.KindApply, Txn: a.txn, Attempt: a.attempt, TS: a.ts,
		Node: string(id), Item: op.Item, Mode: string(op.Mode), Impl: string(op.Impl),
		Arg: op.Arg, Wait: int64(c.lockWait),
	})
	a.touched[dc.name] = true
	if err != nil {
		return fmt.Errorf("sched: apply %s at %s: %w", op, id, err)
	}
	if !rep.OK {
		return fmt.Errorf("sched: apply %s at %s: %w", op, id, replyErr(dc.name, rep))
	}
	seq := c.tick()
	if op.Physical() == data.ModeRead {
		a.values = append(a.values, rep.Value)
	}
	a.stage.declareNode(nodeDecl{id: id, parent: parent})
	a.stage.addEvent(event{seq: seq, comp: dc.name, op: id, parentTx: parent, item: op.Item, mode: op.Mode})
	return nil
}

// invoke grants the semantic lock at the caller's participant (nested
// protocols only; Global2PL and NoCC take no component-level locks) and
// recurses into the child component's steps.
func (c *Coordinator) invoke(a *dattempt, caller *dcomp, parent, id model.NodeID, inv Invocation) error {
	child := c.comps[inv.Component]
	if child == nil {
		return fmt.Errorf("sched: unknown component %q", inv.Component)
	}
	if child == caller {
		return fmt.Errorf("sched: component %q invoking itself (recursion is not allowed)", caller.name)
	}
	semItem := inv.Component + "/" + inv.Item

	var seq uint64
	switch c.protocol {
	case Global2PL, NoCC:
		// No component-level locks; the event is sequenced at completion,
		// where leaf-lock strictness (Global2PL) makes the order
		// consistent with the leaf serialization.
	default:
		rep, err := c.call(caller.name, comm.Message{
			Kind: comm.KindLock, Txn: a.txn, Attempt: a.attempt, TS: a.ts,
			Node: string(id), Item: semItem, Mode: string(inv.Mode), Wait: int64(c.lockWait),
		})
		a.touched[caller.name] = true
		if err != nil {
			return fmt.Errorf("sched: invoke %s at %s: %w", semItem, id, err)
		}
		if !rep.OK {
			return fmt.Errorf("sched: invoke %s at %s: %w", semItem, id, replyErr(caller.name, rep))
		}
		seq = c.tick()
	}

	if err := c.exec(a, id, inv); err != nil {
		return err
	}
	if seq == 0 {
		seq = c.tick()
	}
	a.stage.declareNode(nodeDecl{id: id, parent: parent, sched: inv.Component})
	a.stage.addEvent(event{seq: seq, comp: caller.name, op: id, parentTx: parent, item: semItem, mode: inv.Mode})
	return nil
}

// abortAttempt tears a failed attempt down at every touched participant.
// Best-effort: an unreachable participant's sweeper abandons the attempt
// on its own once it idles past AbandonAfter.
func (c *Coordinator) abortAttempt(a *dattempt) {
	var wg sync.WaitGroup
	for part := range a.touched {
		wg.Add(1)
		go func(part string) {
			defer wg.Done()
			c.call(part, comm.Message{Kind: comm.KindAbort, Txn: a.txn, Attempt: a.attempt})
		}(part)
	}
	wg.Wait()
}

// commit2PC drives presumed-abort two-phase commit for a fully executed
// attempt: collect votes, force the decision (with the staged execution
// record in the same batch), fan the decision out, and retire the
// transaction with a non-forced TypeEnd once every participant acked.
func (c *Coordinator) commit2PC(a *dattempt) error {
	parts := make([]string, 0, len(a.touched))
	for p := range a.touched {
		parts = append(parts, p)
	}
	sort.Strings(parts)

	// Phase one. Votes are collected in parallel; any no-vote or vote
	// timeout turns the decision into the (unlogged, presumed) abort.
	var abortCause error
	if len(parts) > 0 {
		type vres struct {
			part string
			rep  comm.Message
			err  error
		}
		ch := make(chan vres, len(parts))
		for _, part := range parts {
			go func(part string) {
				rep, err := c.call(part, comm.Message{Kind: comm.KindPrepare, Txn: a.txn, Attempt: a.attempt, TS: a.ts})
				ch <- vres{part, rep, err}
			}(part)
		}
		for range parts {
			v := <-ch
			if v.err != nil {
				if errors.Is(v.err, ErrCrashed) {
					abortCause = ErrCrashed
				} else if abortCause == nil {
					abortCause = fmt.Errorf("sched: prepare at %s: %w", v.part, v.err)
				}
			} else if !v.rep.OK && abortCause == nil {
				abortCause = fmt.Errorf("sched: vote no: %w", replyErr(v.part, v.rep))
			}
		}
	}
	if errors.Is(abortCause, ErrCrashed) {
		return ErrCrashed
	}
	if abortCause != nil {
		c.setInflight(a.txn, false)
		c.fanDecide(a.txn, a.attempt, parts, false, nil)
		return abortCause
	}

	// Crash site: unanimous yes votes, decision not yet durable. Every
	// participant is prepared and in doubt; recovery presumes abort.
	if c.crash.fire(DistCrashCoordPre, "", a.txn) {
		c.crashNow()
		return ErrCrashed
	}

	// Force the commit decision. The staged record rides in the same
	// contiguous batch, so a durable decision implies a durable record of
	// what committed; the participant list in the decision's Meta is what
	// recovery re-delivers to.
	partsJSON, _ := json.Marshal(parts)
	recs := make([]wal.Record, 0, len(a.stage.nodes)+len(a.stage.events)+1)
	for _, n := range a.stage.nodes {
		recs = append(recs, wal.Record{
			Type: wal.TypeNode, Txn: a.txn,
			Node: string(n.id), Parent: string(n.parent), Sched: n.sched,
		})
	}
	for _, e := range a.stage.events {
		recs = append(recs, wal.Record{
			Type: wal.TypeEvent, Txn: a.txn,
			Node: string(e.op), Parent: string(e.parentTx),
			Comp: e.comp, Item: e.item, Mode: string(e.mode), Seq: e.seq,
		})
	}
	recs = append(recs, wal.Record{
		Type: wal.TypeDecision, Txn: a.txn, Mode: "commit",
		Node: attemptStr(a.attempt), Seq: a.ts, Meta: partsJSON,
	})
	if err := c.forceBatch(recs); err != nil {
		// A non-crash WAL failure means this transaction can never commit
		// (no durable decision) but every participant is prepared and
		// holding locks. Clear the inflight entry — termination queries
		// must get the presumed abort, not retry-forever — and fan the
		// abort out so the locks drain now. A crash leaves both to
		// recovery, which rebuilds from the log.
		if !errors.Is(err, ErrCrashed) {
			c.setInflight(a.txn, false)
			c.fanDecide(a.txn, a.attempt, parts, false, nil)
		}
		return err
	}

	ct := &coTxn{attempt: a.attempt, parts: parts, pending: map[string]bool{}}
	for _, p := range parts {
		ct.pending[p] = true
	}
	c.mu.Lock()
	c.committed[a.txn] = ct
	delete(c.inflight, a.txn)
	c.rec.merge(a.stage)
	c.mu.Unlock()
	c.commits.Add(1)

	// Crash site: the decision is durable but no participant knows it.
	// Recovery must re-deliver from the log alone.
	if c.crash.fire(DistCrashCoordPost, "", a.txn) {
		c.crashNow()
		return ErrCrashed
	}

	// Phase two. Undelivered decisions stay pending; the re-delivery loop
	// (and participant queries) finish them.
	c.fanDecide(a.txn, a.attempt, parts, true, ct)
	return nil
}

// fanDecide sends the decision to every participant in parallel. For
// commits, acked participants are cleared from ct.pending and a fully
// acked transaction is retired with TypeEnd.
func (c *Coordinator) fanDecide(txn string, attempt uint32, parts []string, commit bool, ct *coTxn) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	acked := map[string]bool{}
	for _, part := range parts {
		wg.Add(1)
		go func(part string) {
			defer wg.Done()
			rep, err := c.call(part, comm.Message{Kind: comm.KindDecide, Txn: txn, Attempt: attempt, Commit: commit})
			if err == nil && rep.OK {
				mu.Lock()
				acked[part] = true
				mu.Unlock()
			}
		}(part)
	}
	wg.Wait()
	if ct == nil {
		return
	}
	c.mu.Lock()
	for part := range acked {
		delete(ct.pending, part)
	}
	done := len(ct.pending) == 0 && !ct.ended
	if done {
		ct.ended = true
	}
	c.mu.Unlock()
	if done {
		c.journal(wal.Record{Type: wal.TypeEnd, Txn: txn})
	}
}

// redeliverLoop re-sends committed decisions that miss acks — the
// recovery path for participant crashes and lost Decides. Presumed-abort
// needs no counterpart for aborts. Outstanding decisions are batched per
// peer: one sender goroutine per participant drains all of that peer's
// missing Decides in a tick, so a round is bounded by the slowest peer,
// not by the number of unended transactions.
func (c *Coordinator) redeliverLoop(every time.Duration) {
	defer c.bg.Done()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		type item struct {
			txn     string
			attempt uint32
		}
		var txns []string
		byPeer := map[string][]item{}
		c.mu.Lock()
		for txn, ct := range c.committed {
			if ct.ended {
				continue
			}
			txns = append(txns, txn)
			for p := range ct.pending {
				byPeer[p] = append(byPeer[p], item{txn, ct.attempt})
			}
		}
		c.mu.Unlock()
		if len(txns) == 0 {
			continue
		}
		c.redelivers.Add(int64(len(txns)))

		type ackKey struct{ txn, part string }
		var ackMu sync.Mutex
		acked := map[ackKey]bool{}
		var wg sync.WaitGroup
		for part, items := range byPeer {
			wg.Add(1)
			go func(part string, items []item) {
				defer wg.Done()
				for _, it := range items {
					rep, err := c.call(part, comm.Message{Kind: comm.KindDecide, Txn: it.txn, Attempt: it.attempt, Commit: true})
					if err == nil && rep.OK {
						ackMu.Lock()
						acked[ackKey{it.txn, part}] = true
						ackMu.Unlock()
					}
				}
			}(part, items)
		}
		wg.Wait()

		var ended []string
		c.mu.Lock()
		for _, txn := range txns {
			ct := c.committed[txn]
			if ct == nil || ct.ended {
				continue
			}
			for part := range ct.pending {
				if acked[ackKey{txn, part}] {
					delete(ct.pending, part)
				}
			}
			if len(ct.pending) == 0 {
				ct.ended = true
				ended = append(ended, txn)
			}
		}
		c.mu.Unlock()
		for _, txn := range ended {
			c.journal(wal.Record{Type: wal.TypeEnd, Txn: txn})
		}
	}
}

// unended counts committed transactions still awaiting acks.
func (c *Coordinator) unended() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ct := range c.committed {
		if !ct.ended {
			n++
		}
	}
	return n
}

func (c *Coordinator) journal(rec wal.Record) (uint64, error) {
	if c.wal == nil {
		return 0, nil
	}
	lsn, err := c.wal.Append(rec)
	if err != nil {
		if errors.Is(err, wal.ErrClosed) {
			return 0, ErrCrashed
		}
		return 0, err
	}
	return lsn, nil
}

// forceBatch makes recs durable before returning. In group-commit mode
// the wait goes through the coalesced Force API: N roots committing
// concurrently share one decision fsync instead of paying one each.
func (c *Coordinator) forceBatch(recs []wal.Record) error {
	if c.wal == nil {
		return nil
	}
	var err error
	if c.group {
		err = <-c.wal.Force(recs)
	} else {
		if _, err = c.wal.AppendBatch(recs); err == nil {
			err = c.wal.Sync()
		}
	}
	if err != nil {
		if errors.Is(err, wal.ErrClosed) {
			return ErrCrashed
		}
		return err
	}
	return nil
}

// RecordedSystem assembles the committed distributed execution for the
// Comp-C checker, through the same assembly as the single-process
// runtime.
func (c *Coordinator) RecordedSystem() *model.System {
	c.mu.Lock()
	defer c.mu.Unlock()
	return assembleSystem(c.rec, func(comp string) *data.ModeTable {
		if dc := c.comps[comp]; dc != nil {
			return dc.modes
		}
		return data.SemanticTable()
	})
}
