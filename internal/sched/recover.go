package sched

import (
	"encoding/json"
	"errors"
	"fmt"

	"compositetx/internal/data"
	"compositetx/internal/front"
	"compositetx/internal/model"
	"compositetx/internal/wal"
)

// Crash recovery: rebuild a runtime — stores AND recorded execution —
// from nothing but a WAL directory, in the classic three passes.
//
// Analysis walks the log once and classifies every transaction (committed
// iff its commit marker is durable, aborted iff marked, in-flight
// otherwise) and every journaled apply (cancelled by TypeApplyFail,
// compensated by TypeComp, leaked by TypeQuarantine). It also locates the
// last *complete* checkpoint — TypeCkItem store snapshot terminated by a
// TypeCheckpoint marker; trailing items without a marker are a crash
// mid-checkpoint and are ignored.
//
// Redo replays, against freshly built stores, the baseline and then the
// tail. Without a checkpoint the baseline is the TypeSeed records and the
// tail is everything; with one, the baseline is the checkpoint's item
// snapshot and redo skips every record at or below the marker — the cut
// (see checkpoint.go) guarantees each journaled mutation's effect is
// either fully inside the snapshot or fully after the marker, never half
// of each.
//
// Undo inverts — in reverse log order — each surviving apply of a
// non-committed transaction that has neither a compensation nor a
// quarantine on record, journaling each inverse (and a final abort marker
// per transaction) before applying it. Applies of transactions in flight
// at the checkpoint survive truncation by construction (the truncation
// barrier never passes an in-flight attempt's first apply), and their
// effects are inside the snapshot, so the inversion is exactly right. The
// journaled inverses make recovery idempotent in the ARIES
// compensation-log-record sense: recovering the recovered log again finds
// every in-flight apply already compensated and has nothing to undo.
// Quarantined compensations are deliberately NOT repaired: the leak
// happened, the recovered runtime re-reports it — from the marker's
// metadata for pre-checkpoint leaks, from surviving TypeQuarantine
// records for the tail.
//
// Finally the committed projection (node/event records of transactions
// committed since the checkpoint) is rebuilt into the recorder and
// re-checked with the Comp-C reduction (front.Check). The pre-checkpoint
// prefix was folded out of the live engine at the cut with verdicts
// provably unchanged, so verifying the tail is verifying everything the
// recovered process can still be asked about.

// ErrRecoveredViolation is returned by Recover when the recovered
// committed execution fails the Comp-C check. The Recovered value is
// still returned alongside it, so callers can inspect the verdict.
var ErrRecoveredViolation = errors.New("sched: recovered execution is not Comp-C")

// RecoveryStats summarizes one recovery pass.
type RecoveryStats struct {
	Segments  int   // WAL segment files scanned
	Records   int   // valid records read
	TornBytes int64 // torn tail truncated (0 on a clean shutdown)

	// CheckpointLSN is the marker recovery started from (0 = no
	// checkpoint, full replay from the seed records).
	CheckpointLSN uint64
	// Skipped counts log records at or below the checkpoint marker —
	// history the snapshot already covers, not replayed.
	Skipped int

	Committed int // cumulative commits (marker metadata + tail markers)
	Aborted   int // transactions the crashed process had rolled back
	InFlight  int // transactions interrupted by the crash (undone here)

	Redone      int // applies + compensations replayed into the stores
	Undone      int // inverse operations applied (and journaled) here
	Quarantined int // leaked compensations re-reported (metadata + log)
}

// Recovered is the result of a WAL recovery.
type Recovered struct {
	Runtime *Runtime       // rebuilt runtime, WAL re-attached, ready for new Submits
	System  *model.System  // recovered committed execution (tail since checkpoint)
	Verdict *front.Verdict // Comp-C verdict over System
	Stats   RecoveryStats
}

// Recover rebuilds a runtime from the write-ahead log in cfg.Dir: torn
// tail truncated, the last durable checkpoint restored as the baseline,
// the committed tail redone, in-flight work undone and journaled,
// quarantines re-reported, and the recovered execution re-verified
// against Comp-C. On a verdict failure the Recovered value is returned
// together with ErrRecoveredViolation.
func Recover(cfg WALConfig) (*Recovered, error) {
	recs, info, err := wal.ReadAll(cfg.Dir)
	if err != nil {
		return nil, err
	}
	ckLSN := info.CheckpointLSN
	lsnOf := func(i int) uint64 { return info.FirstLSN + uint64(i) }

	// Runtime configuration: from the last checkpoint marker when there is
	// one (the segment holding the TypeMeta record may have been truncated
	// away), from the leading metadata record otherwise.
	var meta walMeta
	var ck ckMeta
	if ckLSN > 0 {
		for i := len(recs) - 1; i >= 0; i-- {
			if recs[i].Type == wal.TypeCheckpoint {
				if err := json.Unmarshal(recs[i].Meta, &ck); err != nil {
					return nil, fmt.Errorf("sched: bad checkpoint metadata: %w", err)
				}
				break
			}
		}
		meta = ck.walMeta
	} else {
		if len(recs) == 0 || recs[0].Type != wal.TypeMeta {
			return nil, fmt.Errorf("sched: %q does not start with a WAL metadata record", cfg.Dir)
		}
		if err := json.Unmarshal(recs[0].Meta, &meta); err != nil {
			return nil, fmt.Errorf("sched: bad WAL metadata: %w", err)
		}
	}
	if meta.Dist {
		return nil, fmt.Errorf("sched: %q is a distributed coordinator log; recover it with RecoverCoordinator", cfg.Dir)
	}
	protocol, err := ParseProtocol(meta.Protocol)
	if err != nil {
		return nil, fmt.Errorf("sched: bad WAL metadata: %w", err)
	}
	topo, err := topologyFromDoc(meta.Topology, false)
	if err != nil {
		return nil, fmt.Errorf("sched: bad WAL topology: %w", err)
	}
	rt := topo.NewRuntime(protocol)

	// --- Analysis ---
	type applyRec struct {
		lsn uint64 // absolute LSN
		rec wal.Record
	}
	var (
		applies     []applyRec
		applyByLSN  = map[uint64]wal.Record{}
		cancelled   = map[uint64]bool{}
		compensated = map[uint64]bool{}
		quarantined = map[uint64]bool{}
		committed   = map[string]bool{}
		aborted     = map[string]bool{}
		active      = map[string]bool{} // txns with any journaled mutation
		tailCommits int                 // commit markers above the checkpoint
		maxSeq      = ck.Seq
	)
	for i, rec := range recs {
		lsn := lsnOf(i)
		switch rec.Type {
		case wal.TypeApply:
			applies = append(applies, applyRec{lsn: lsn, rec: rec})
			applyByLSN[lsn] = rec
			active[rec.Txn] = true
		case wal.TypeApplyFail:
			cancelled[rec.Ref] = true
		case wal.TypeComp:
			compensated[rec.Ref] = true
		case wal.TypeQuarantine:
			quarantined[rec.Ref] = true
		case wal.TypeCommit:
			committed[rec.Txn] = true
			if lsn > ckLSN {
				tailCommits++
			}
		case wal.TypeAbort:
			aborted[rec.Txn] = true
		case wal.TypeEvent:
			if rec.Seq > maxSeq {
				maxSeq = rec.Seq
			}
		}
	}
	stats := RecoveryStats{
		Segments:      info.Segments,
		Records:       info.Records,
		TornBytes:     info.TornBytes,
		CheckpointLSN: ckLSN,
	}
	if ckLSN > 0 {
		stats.Skipped = int(ckLSN - info.FirstLSN + 1)
		stats.Committed = int(ck.Committed) + tailCommits
	} else {
		stats.Committed = len(committed)
	}
	for txn := range aborted {
		if !committed[txn] {
			stats.Aborted++
		}
	}

	// Reopen the log for appending before the undo pass, so recovery's
	// own compensations and abort markers are journaled write-ahead like
	// everything else (this also physically truncates the torn tail).
	log, _, err := wal.Open(cfg.Dir, wal.Options{SyncEvery: cfg.SyncEvery, SegmentBytes: cfg.SegmentBytes})
	if err != nil {
		return nil, err
	}
	rt.wal = log

	// --- Redo ---
	storeOf := func(comp string) (*data.Store, error) {
		c := rt.comps[comp]
		if c == nil || c.store == nil {
			return nil, fmt.Errorf("sched: WAL references unknown store component %q", comp)
		}
		return c.store, nil
	}
	// Baseline: seed records, overlaid (in log order, so later checkpoints
	// win) by the item snapshots of every complete checkpoint. Trailing
	// ck-items above the last marker belong to a checkpoint that never
	// completed and are skipped.
	for i, rec := range recs {
		var baseline bool
		switch rec.Type {
		case wal.TypeSeed:
			baseline = true
		case wal.TypeCkItem:
			baseline = lsnOf(i) < ckLSN
		}
		if !baseline {
			continue
		}
		s, err := storeOf(rec.Comp)
		if err != nil {
			log.Close()
			return nil, err
		}
		s.Set(rec.Item, rec.Prev)
	}
	for i, rec := range recs {
		lsn := lsnOf(i)
		if lsn <= ckLSN {
			continue // inside the snapshot already (the cut's invariant)
		}
		switch rec.Type {
		case wal.TypeApply:
			if cancelled[lsn] {
				continue
			}
		case wal.TypeComp:
			if quarantined[rec.Ref] {
				continue // the compensation never took effect; keep the leak
			}
		default:
			continue
		}
		s, err := storeOf(rec.Comp)
		if err != nil {
			log.Close()
			return nil, err
		}
		if _, err := s.Apply(opOf(rec)); err != nil {
			log.Close()
			return nil, fmt.Errorf("sched: redo of %s record %d: %w", rec.Type, lsn, err)
		}
		stats.Redone++
	}

	// --- Undo ---
	// Every surviving apply of a non-committed transaction is inverted,
	// including pre-checkpoint ones: the truncation barrier kept them
	// alive precisely because their effects sit inside the checkpoint
	// snapshot with no durable outcome.
	for i := len(applies) - 1; i >= 0; i-- {
		lsn, rec := applies[i].lsn, applies[i].rec
		if committed[rec.Txn] || cancelled[lsn] || compensated[lsn] || quarantined[lsn] {
			continue
		}
		inv, ok := data.Inverse(opOf(rec), data.Result{Prev: rec.Prev})
		if !ok {
			continue
		}
		if _, err := log.Append(wal.Record{
			Type: wal.TypeComp, Txn: rec.Txn, Comp: rec.Comp,
			Item: inv.Item, Mode: string(inv.Mode), Impl: string(inv.Impl),
			Arg: inv.Arg, Ref: lsn,
		}); err != nil {
			log.Close()
			return nil, err
		}
		s, err := storeOf(rec.Comp)
		if err != nil {
			log.Close()
			return nil, err
		}
		if _, err := s.Apply(inv); err != nil {
			log.Close()
			return nil, fmt.Errorf("sched: undo of apply record %d: %w", lsn, err)
		}
		stats.Undone++
	}
	for txn := range active {
		if committed[txn] || aborted[txn] {
			continue
		}
		stats.InFlight++
		if _, err := log.Append(wal.Record{Type: wal.TypeAbort, Txn: txn}); err != nil {
			log.Close()
			return nil, err
		}
	}
	if err := log.Sync(); err != nil {
		log.Close()
		return nil, err
	}

	// Re-report quarantined compensations: pre-checkpoint leaks from the
	// marker metadata (their records may be truncated), tail leaks from
	// the surviving TypeQuarantine records.
	for _, q := range ck.Quarantines {
		rt.quarantine(Quarantine{
			Component: q.Component, Txn: q.Txn,
			Op:  data.Op{Mode: data.Mode(q.Mode), Item: q.Item, Arg: q.Arg, Impl: data.Mode(q.Impl)},
			Err: errors.New(q.Err),
		})
	}
	for i, rec := range recs {
		if rec.Type != wal.TypeQuarantine || lsnOf(i) <= ckLSN {
			continue
		}
		apl, ok := applyByLSN[rec.Ref]
		if !ok {
			continue
		}
		rt.quarantine(Quarantine{
			Component: apl.Comp, Txn: apl.Txn, Op: opOf(apl),
			Err: errors.New("sched: compensation quarantined before crash (from WAL)"),
		})
	}
	stats.Quarantined = len(rt.quarantined)

	// --- Rebuild the committed projection (tail since the checkpoint) ---
	// The recorder holds only the tail, exactly as the live runtime's did
	// after the cut pruned it; the folded prefix's verdict is sealed.
	for i, rec := range recs {
		if lsnOf(i) <= ckLSN || !committed[rec.Txn] {
			continue
		}
		switch rec.Type {
		case wal.TypeNode:
			rt.rec.nodes = append(rt.rec.nodes, nodeDecl{
				id: model.NodeID(rec.Node), parent: model.NodeID(rec.Parent), sched: rec.Sched,
			})
		case wal.TypeEvent:
			rt.rec.events = append(rt.rec.events, event{
				seq: rec.Seq, comp: rec.Comp,
				op: model.NodeID(rec.Node), parentTx: model.NodeID(rec.Parent),
				item: rec.Item, mode: data.Mode(rec.Mode),
			})
		}
	}
	rt.commits.Store(int64(stats.Committed))
	// Resume the global sequence past both the journaled high-water mark
	// (including the checkpoint's recorded clock) and anything the
	// redo/undo passes allocated (version stamps come off this counter too
	// — rewinding it would hand out duplicate stamps).
	if cur := rt.seq.Load(); maxSeq > cur {
		rt.seq.Store(maxSeq)
	}

	// --- Verify ---
	sys := rt.RecordedSystem()
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("sched: recovered execution is malformed: %w", err)
	}
	verdict, err := front.Check(sys, front.Options{})
	if err != nil {
		return nil, fmt.Errorf("sched: checking recovered execution: %w", err)
	}
	out := &Recovered{Runtime: rt, System: sys, Verdict: verdict, Stats: stats}
	if !verdict.Correct {
		return out, ErrRecoveredViolation
	}
	// Certify mode survives the crash: rebuild the certifier over the
	// recovered committed history, so the recovered runtime keeps
	// rejecting violating commits exactly where the crashed one would.
	// (The unguarded variant: the recovered log's metadata already
	// records certify mode, so the EnableCertify/EnableWAL ordering
	// check does not apply.)
	if meta.Certify {
		if err := rt.enableCertify(); err != nil {
			return out, fmt.Errorf("sched: rebuilding certifier from recovered history: %w", err)
		}
	}
	return out, nil
}

// opOf reconstructs the store operation a WAL record journaled.
func opOf(rec wal.Record) data.Op {
	return data.Op{Mode: data.Mode(rec.Mode), Item: rec.Item, Arg: rec.Arg, Impl: data.Mode(rec.Impl)}
}
