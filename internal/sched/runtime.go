// Package sched is the prototype composite system the paper announces: a
// runtime of transactional components, each with its own scheduler,
// connected in an arbitrary acyclic invocation graph and exercised by
// concurrent client transactions (goroutines).
//
// Each component owns a semantic lock manager (its local scheduler) and
// optionally a data store. A transaction is a tree-shaped program: leaf
// operations execute on the component's store, invocation steps delegate a
// subtransaction to a child component (Definition 4's delegation). Three
// concurrency-control disciplines from the paper's implementation-strategy
// discussion are provided, plus an intentionally broken one:
//
//   - OpenNested — CC scheduling [ABFS97, AFPS99] / open nested
//     transactions [BSW88, Sch96]: each component serializes its own
//     operations with semantic locks; a subtransaction's locks are
//     released when it commits at its component, and the caller retains
//     only its own semantic lock on the operation. Maximum concurrency.
//   - ClosedNested — Moss-style closed nesting [Mos88, GR93]: all locks
//     are inherited upward and held until the root commits.
//   - Global2PL — the monolithic baseline: a single global strict-2PL
//     lock manager over leaf items with read/write modes only; component
//     structure and semantic commutativity are ignored.
//   - NoCC — no concurrency control at all; used to demonstrate that the
//     checker (internal/front) detects the resulting incorrect executions.
//
// Every run records the committed execution and can assemble it into a
// model.System for the Comp-C checker; the integration tests assert that
// the three real protocols only produce correct composite executions.
package sched

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"compositetx/internal/data"
	"compositetx/internal/wal"
)

// Protocol selects the concurrency-control discipline.
type Protocol int

const (
	// OpenNested is semantic locking with early release (CC scheduling).
	OpenNested Protocol = iota
	// ClosedNested holds all locks to root commit.
	ClosedNested
	// Global2PL is flat strict two-phase locking over leaf items.
	Global2PL
	// Hybrid is open nesting with closed-nested (root-held) locks at join
	// points — components invoked by more than one client component. Pure
	// open nesting is unsound in general configurations (transactions
	// sharing no schedule can interfere through a shared component, the
	// paper's Figure 3 situation); holding locks to root commit exactly at
	// the join points restores soundness while keeping early release on
	// single-caller chains.
	Hybrid
	// NoCC applies operations without any isolation.
	NoCC
)

// ParseProtocol inverts Protocol.String — the form protocols take in
// compsim flags and WAL metadata.
func ParseProtocol(s string) (Protocol, error) {
	for _, p := range []Protocol{OpenNested, ClosedNested, Global2PL, Hybrid, NoCC} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown protocol %q", s)
}

func (p Protocol) String() string {
	switch p {
	case OpenNested:
		return "open-nested"
	case ClosedNested:
		return "closed-nested"
	case Global2PL:
		return "global-2pl"
	case Hybrid:
		return "hybrid"
	case NoCC:
		return "nocc"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// ComponentSpec declares one component of the topology.
type ComponentSpec struct {
	Name string
	// Modes is the component's conflict declaration over operation modes;
	// nil means data.SemanticTable.
	Modes *data.ModeTable
	// HasStore gives the component a local data store (components may own
	// data and invoke children at the same time, like the schedules of
	// Figure 1 that have both leaf and transaction operations).
	HasStore bool
}

type component struct {
	name  string
	modes *data.ModeTable
	store *data.Store
	lm    *lockManager

	// holdToRoot marks a join point: under the Hybrid protocol, locks at
	// this component are owned by the root and held to root commit.
	holdToRoot bool
}

// Metrics aggregates runtime counters.
type Metrics struct {
	Commits      int64
	Aborts       int64 // deadlock-policy sacrifices (each followed by a retry)
	ClientAborts int64 // application-initiated aborts (rolled back, not retried)
	LeafOps      int64
	Invokes      int64
	LockWaits    int64

	// Fault/recovery counters (zero unless faults, deadlines, or
	// compensation failures occur).
	Timeouts             int64 // deadline expiries (ErrTimeout), each followed by a fresh-window retry
	InjectedFaults       int64 // faults fired by the injector across all sites
	SubRetries           int64 // subtransaction-scoped local re-runs (OpenNested/Hybrid)
	CompensationFailures int64 // compensations quarantined after the retry budget

	// Durability counters (zero unless a WAL is attached / a crash fired).
	WALRecords int64 // records journaled (including those recovered at open)
	Crashes    int64 // simulated crashes (FaultCrash); at most 1 per runtime

	// CertifyRejects counts commits rejected by the live certifier (zero
	// unless EnableCertify is on and a violation was attempted).
	CertifyRejects int64

	// CertifyFastPath counts certified commits absorbed through the
	// footprint-disjointness fast path (zero cross-transaction conflict
	// pairs: the engine's admission machinery was skipped entirely).
	CertifyFastPath int64

	// CertifyRebuildNanos is the total wall time spent rebuilding the
	// certifier engine after rejections (replaying the admitted delta
	// tail since the last checkpoint fold).
	CertifyRebuildNanos int64

	// ValidationAborts counts optimistic attempts whose snapshot reads
	// were invalidated by conflicting commits (each followed by a retry
	// with a fresh snapshot; zero unless ExecOptimistic/SnapshotRead).
	ValidationAborts int64

	// ValidationRefreshes counts commit-time read refreshes: validation
	// passes that moved the attempt's snapshot reads forward to a newer
	// stamp instead of aborting (see Runtime.RefreshRetries).
	ValidationRefreshes int64

	// Checkpoint/GC counters (zero unless EnableCheckpoints is on or
	// Checkpoint was called explicitly).
	CheckpointsTaken  int64 // completed checkpoint cuts
	NodesPruned       int64 // forest nodes folded out of the certifier engine
	SegmentsTruncated int64 // WAL segments deleted by TruncateBefore
	VersionsCompacted int64 // MVCC versions dropped by Store.Compact at checkpoints
	OverloadThrottles int64 // Submits rejected with ErrOverload at the high watermark
}

// String renders the metrics as one key=value line (compsim's summary
// format). Fault and durability counters appear only when nonzero.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "commits=%d aborts=%d client-aborts=%d leaf-ops=%d invokes=%d lock-waits=%d",
		m.Commits, m.Aborts, m.ClientAborts, m.LeafOps, m.Invokes, m.LockWaits)
	if m.Timeouts+m.InjectedFaults+m.SubRetries+m.CompensationFailures > 0 {
		fmt.Fprintf(&b, " timeouts=%d injected=%d sub-retries=%d comp-failures=%d",
			m.Timeouts, m.InjectedFaults, m.SubRetries, m.CompensationFailures)
	}
	if m.WALRecords+m.Crashes > 0 {
		fmt.Fprintf(&b, " wal-records=%d crashes=%d", m.WALRecords, m.Crashes)
	}
	if m.CertifyRejects+m.CertifyFastPath+m.CertifyRebuildNanos > 0 {
		fmt.Fprintf(&b, " certify-rejects=%d certify-fastpath=%d certify-rebuild-ns=%d",
			m.CertifyRejects, m.CertifyFastPath, m.CertifyRebuildNanos)
	}
	if m.ValidationAborts+m.ValidationRefreshes > 0 {
		fmt.Fprintf(&b, " validation-aborts=%d validation-refreshes=%d",
			m.ValidationAborts, m.ValidationRefreshes)
	}
	if m.CheckpointsTaken+m.OverloadThrottles > 0 {
		fmt.Fprintf(&b, " checkpoints=%d nodes-pruned=%d segments-truncated=%d versions-compacted=%d overload-throttles=%d",
			m.CheckpointsTaken, m.NodesPruned, m.SegmentsTruncated, m.VersionsCompacted, m.OverloadThrottles)
	}
	return b.String()
}

// Runtime is a running composite system.
type Runtime struct {
	protocol Protocol
	comps    map[string]*component
	globalLM *lockManager
	rwTable  *data.ModeTable

	seq atomic.Uint64 // global event sequence (conflict-order recording)
	tsc atomic.Uint64 // root timestamps for wait-die

	commits      atomic.Int64
	aborts       atomic.Int64
	clientAborts atomic.Int64
	leafOps      atomic.Int64
	invokes      atomic.Int64
	timeouts     atomic.Int64
	subRetries   atomic.Int64
	compFailures atomic.Int64

	mu   sync.Mutex
	rec  *recorder
	cert *certifier // live Comp-C certification (nil = off); see EnableCertify

	certRejects  atomic.Int64
	valAborts    atomic.Int64
	valRefreshes atomic.Int64

	// seals orders optimistic commits: each validation pass registers its
	// validation point here before checking any read, and serialize-before
	// claims are granted only against owners whose seal is absent or above
	// the claimant's own validation point (see Runtime.validate).
	sealMu sync.Mutex
	sealM  map[string]uint64

	// skipValidation disables the optimistic commit gate (tests only: it
	// lets an invalidated snapshot read reach the certifier, proving the
	// certifier independently rejects the resulting violation).
	skipValidation bool

	wfg *waitGraph

	inj *injector // fault injection (nil = off); see SetFaults

	qmu         sync.Mutex
	quarantined []Quarantine

	// Durability (nil wal = volatile runtime; see EnableWAL, Recover).
	wal     *wal.Log
	topo    *Topology   // retained for WAL metadata; nil when built via New with bare specs
	crashed atomic.Bool // simulated-crash flag: every Submit drains with ErrCrashed
	crashes atomic.Int64

	walErrMu sync.Mutex
	walErr   error // first filesystem error recorded while staging a simulated crash

	// Checkpointing (see EnableCheckpoints, Checkpoint in checkpoint.go).
	ck                *ckState
	ckTaken           atomic.Int64
	ckNodesPruned     atomic.Int64
	ckSegsTruncated   atomic.Int64
	ckVersionsDropped atomic.Int64
	overloadThrottles atomic.Int64

	// MaxRetries bounds retries per transaction (safety net; wait-die
	// guarantees progress long before this).
	MaxRetries int

	// SubRetries bounds the local re-runs of a faulted subtransaction
	// before the failure propagates to the root (OpenNested and Hybrid
	// only, where the subtransaction's locks are still local).
	SubRetries int

	// OpTimeout, when positive, gives every Submit attempt a deadline of
	// now+OpTimeout: a stuck (sub)transaction aborts with ErrTimeout and
	// the root retries with a fresh window, instead of hanging its client
	// goroutine. Invocation.Deadline sets an absolute per-invocation
	// bound on top of (or instead of) this.
	OpTimeout time.Duration

	// Deadlock selects the deadlock-handling policy of every lock manager
	// (default WaitDie). Set before submitting transactions.
	Deadlock DeadlockPolicy

	// Exec selects pessimistic (default) or optimistic leaf-read
	// execution for every submitted root; Invocation.SnapshotRead opts a
	// single root in. Set before submitting transactions.
	Exec ExecMode

	// RefreshRetries bounds how many times a failing optimistic
	// validation may refresh its snapshot reads to a newer stamp
	// (re-reading values, re-sequencing the read events) before the
	// attempt aborts with ErrValidation and re-executes. 0 disables
	// refreshing: every invalidated read aborts immediately.
	RefreshRetries int

	// CertOpts tunes the certification pipeline (serial baseline,
	// fast-path toggle). Set before EnableCertify; changes afterwards
	// have no effect on the live certifier.
	CertOpts CertifyOptions
}

// New builds a runtime for the given protocol and component topology.
func New(protocol Protocol, specs []ComponentSpec) *Runtime {
	r := &Runtime{
		protocol:       protocol,
		comps:          make(map[string]*component, len(specs)),
		globalLM:       newLockManager(),
		rwTable:        data.RWTable(),
		rec:            newRecorder(),
		wfg:            newWaitGraph(),
		sealM:          make(map[string]uint64),
		ck:             newCkState(),
		MaxRetries:     10000,
		SubRetries:     2,
		RefreshRetries: 6,
	}
	for _, spec := range specs {
		if spec.Name == "" {
			panic("sched: component with empty name")
		}
		if _, dup := r.comps[spec.Name]; dup {
			panic(fmt.Sprintf("sched: duplicate component %q", spec.Name))
		}
		modes := spec.Modes
		if modes == nil {
			modes = data.SemanticTable()
		}
		c := &component{name: spec.Name, modes: modes, lm: newLockManager()}
		c.lm.crashed = &r.crashed
		if spec.HasStore {
			c.store = data.NewStore()
			// Version stamps and event sequence numbers share one clock,
			// so version order and recorded conflict order agree by
			// construction (see Runtime.validate's soundness note).
			c.store.UseClock(&r.seq)
		}
		r.comps[spec.Name] = c
	}
	r.globalLM.crashed = &r.crashed
	// Bare-specs topology, so a WAL can be attached to runtimes built
	// without Topology.NewRuntime (which overwrites this with the full
	// invocation graph).
	r.topo = &Topology{Specs: append([]ComponentSpec(nil), specs...)}
	return r
}

// Store returns a component's store (nil if it has none), for setup and
// assertions.
func (r *Runtime) Store(name string) *data.Store {
	c := r.comps[name]
	if c == nil {
		return nil
	}
	return c.store
}

// Protocol returns the runtime's concurrency-control discipline.
func (r *Runtime) Protocol() Protocol { return r.protocol }

// Crashed reports whether a simulated crash (FaultCrash) has killed the
// runtime; once true, every Submit returns ErrCrashed and the only way
// forward is Recover on the WAL directory.
func (r *Runtime) Crashed() bool { return r.crashed.Load() }

// Metrics returns a snapshot of the runtime counters. The snapshot is
// taken under the runtime mutex, so it is consistent with the committed
// record (a commit counted here is visible to RecordedSystem and its WAL
// batch is journaled).
func (r *Runtime) Metrics() Metrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := Metrics{
		Commits:              r.commits.Load(),
		Aborts:               r.aborts.Load(),
		ClientAborts:         r.clientAborts.Load(),
		LeafOps:              r.leafOps.Load(),
		Invokes:              r.invokes.Load(),
		Timeouts:             r.timeouts.Load(),
		InjectedFaults:       r.inj.total(),
		SubRetries:           r.subRetries.Load(),
		CompensationFailures: r.compFailures.Load(),
		Crashes:              r.crashes.Load(),
		CertifyRejects:       r.certRejects.Load(),
		ValidationAborts:     r.valAborts.Load(),
		ValidationRefreshes:  r.valRefreshes.Load(),
		CheckpointsTaken:     r.ckTaken.Load(),
		NodesPruned:          r.ckNodesPruned.Load(),
		SegmentsTruncated:    r.ckSegsTruncated.Load(),
		VersionsCompacted:    r.ckVersionsDropped.Load(),
		OverloadThrottles:    r.overloadThrottles.Load(),
	}
	if r.wal != nil {
		m.WALRecords = int64(r.wal.Records())
	}
	if r.cert != nil {
		m.CertifyFastPath = r.cert.fastPath.Load()
		m.CertifyRebuildNanos = r.cert.rebuildNanos.Load()
	}
	m.LockWaits = r.globalLM.waitCount()
	names := make([]string, 0, len(r.comps))
	for n := range r.comps {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m.LockWaits += r.comps[n].lm.waitCount()
	}
	return m
}
