package sched

import (
	"encoding/json"
	"fmt"
	"io"

	"compositetx/internal/data"
)

// topologyJSON is the on-disk topology format used by cmd/compsim:
//
//	{
//	  "components": [
//	    {"name": "bank"},
//	    {"name": "east", "store": true, "modes": "escrow"}
//	  ],
//	  "children": {"bank": ["east"]},
//	  "entries": ["bank"]
//	}
//
// The "modes" field selects a conflict table: "semantic" (default), "rw",
// "escrow", or a custom object {"conflicts": [["read","write"], ...]}.
type topologyJSON struct {
	Components []componentJSON     `json:"components"`
	Children   map[string][]string `json:"children,omitempty"`
	Entries    []string            `json:"entries"`
}

type componentJSON struct {
	Name  string          `json:"name"`
	Store bool            `json:"store,omitempty"`
	Modes json.RawMessage `json:"modes,omitempty"`
}

type customModesJSON struct {
	Conflicts [][2]string `json:"conflicts"`
}

// DecodeTopology reads a topology from its JSON representation.
func DecodeTopology(r io.Reader) (*Topology, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var doc topologyJSON
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("sched: bad topology: %w", err)
	}
	return topologyFromDoc(doc, true)
}

// EncodeTopology writes the topology in the same JSON format
// DecodeTopology reads. Mode tables round-trip as explicit conflict
// pairs (behaviorally identical to the named tables they came from).
func EncodeTopology(w io.Writer, t *Topology) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(topologyToDoc(t))
}

// topologyFromDoc validates and builds a Topology from its document
// form. strict requires entry components (the compsim contract); the WAL
// metadata path relaxes it, since runtimes built from bare specs have no
// entries to persist.
func topologyFromDoc(doc topologyJSON, strict bool) (*Topology, error) {
	if len(doc.Components) == 0 {
		return nil, fmt.Errorf("sched: topology has no components")
	}
	if strict && len(doc.Entries) == 0 {
		return nil, fmt.Errorf("sched: topology has no entries")
	}
	t := &Topology{Children: doc.Children, Entries: doc.Entries}
	if t.Children == nil {
		t.Children = map[string][]string{}
	}
	names := map[string]bool{}
	for _, c := range doc.Components {
		if c.Name == "" {
			return nil, fmt.Errorf("sched: component with empty name")
		}
		if names[c.Name] {
			return nil, fmt.Errorf("sched: duplicate component %q", c.Name)
		}
		names[c.Name] = true
		modes, err := decodeModes(c.Modes)
		if err != nil {
			return nil, fmt.Errorf("sched: component %q: %w", c.Name, err)
		}
		t.Specs = append(t.Specs, ComponentSpec{Name: c.Name, HasStore: c.Store, Modes: modes})
	}
	for parent, kids := range t.Children {
		if !names[parent] {
			return nil, fmt.Errorf("sched: children of unknown component %q", parent)
		}
		for _, k := range kids {
			if !names[k] {
				return nil, fmt.Errorf("sched: %q invokes unknown component %q", parent, k)
			}
			if k == parent {
				return nil, fmt.Errorf("sched: component %q invokes itself", parent)
			}
		}
	}
	for _, e := range t.Entries {
		if !names[e] {
			return nil, fmt.Errorf("sched: unknown entry component %q", e)
		}
	}
	// Reject recursive configurations up front.
	if cyclic(t.Children) {
		return nil, fmt.Errorf("sched: topology is recursive")
	}
	return t, nil
}

func decodeModes(raw json.RawMessage) (*data.ModeTable, error) {
	if len(raw) == 0 {
		return nil, nil // default (semantic)
	}
	var name string
	if err := json.Unmarshal(raw, &name); err == nil {
		switch name {
		case "", "semantic":
			return nil, nil
		case "rw":
			return data.RWTable(), nil
		case "escrow":
			return data.EscrowTable(), nil
		default:
			return nil, fmt.Errorf("unknown mode table %q", name)
		}
	}
	var custom customModesJSON
	if err := json.Unmarshal(raw, &custom); err != nil {
		return nil, fmt.Errorf("bad modes: %w", err)
	}
	t := data.NewModeTable()
	for _, p := range custom.Conflicts {
		t.Declare(data.Mode(p[0]), data.Mode(p[1]))
	}
	return t, nil
}

func cyclic(children map[string][]string) bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var dfs func(n string) bool
	dfs = func(n string) bool {
		color[n] = grey
		for _, m := range children[n] {
			switch color[m] {
			case grey:
				return true
			case white:
				if dfs(m) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for n := range children {
		if color[n] == white {
			if dfs(n) {
				return true
			}
		}
	}
	return false
}
