package sched

import (
	"errors"
	"testing"
	"time"

	"compositetx/internal/data"
	"compositetx/internal/front"
)

// transfer7 is the deterministic single-client program the trigger tests
// inject into: T -> C1 -> C2, one increment of x by 7 at the bottom.
func transfer7() Invocation {
	return Invocation{Component: "C1", Steps: []Step{
		{Invoke: &Invocation{Component: "C2", Item: "x", Mode: data.ModeIncr,
			Steps: []Step{{Op: &data.Op{Mode: data.ModeIncr, Item: "x", Arg: 7}}}}},
	}}
}

func checkCompC(t *testing.T, rt *Runtime) {
	t.Helper()
	sys := rt.RecordedSystem()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if ok, err := front.IsCompC(sys); err != nil || !ok {
		t.Fatalf("recorded execution must be Comp-C: %v, %v", ok, err)
	}
}

// TestTriggerApplyFault: an exact (txn, step) apply fault is recovered by
// a local subtransaction retry — the root itself never aborts — and the
// recorded execution stays Comp-C. Deterministic by construction.
func TestTriggerApplyFault(t *testing.T) {
	rt := StackTopology(2).NewRuntime(OpenNested)
	rt.SetFaults(FaultPlan{Triggers: []Trigger{
		{Site: FaultApply, Txn: "T1", Step: "T1/1/1"},
	}})
	res, err := rt.Submit("T1", transfer7())
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 0 {
		t.Fatalf("root retries = %d, want 0 (fault recovered locally)", res.Retries)
	}
	m := rt.Metrics()
	if m.InjectedFaults != 1 || m.SubRetries != 1 || m.Commits != 1 {
		t.Fatalf("metrics = %+v, want 1 injected fault, 1 sub-retry, 1 commit", m)
	}
	if got := rt.Store("C2").Get("x"); got != 7 {
		t.Fatalf("x = %d, want 7", got)
	}
	checkCompC(t, rt)
}

// TestTriggerLockFail: an injected lock-acquisition failure at the leaf
// recovers the same way.
func TestTriggerLockFail(t *testing.T) {
	rt := StackTopology(2).NewRuntime(Hybrid)
	rt.SetFaults(FaultPlan{Triggers: []Trigger{
		{Site: FaultLockFail, Txn: "T1", Step: "T1/1/1"},
	}})
	if _, err := rt.Submit("T1", transfer7()); err != nil {
		t.Fatal(err)
	}
	m := rt.Metrics()
	if m.InjectedFaults != 1 || m.SubRetries != 1 {
		t.Fatalf("metrics = %+v, want 1 injected fault recovered by 1 sub-retry", m)
	}
	if got := rt.Store("C2").Get("x"); got != 7 {
		t.Fatalf("x = %d, want 7", got)
	}
	checkCompC(t, rt)
}

// TestTriggerLockDelayTimesOut: a delayed lock acquisition blows the
// OpTimeout deadline; the attempt aborts with ErrTimeout (instead of
// hanging the client) and the retry — with a fresh deadline window and
// the trigger spent — commits.
func TestTriggerLockDelayTimesOut(t *testing.T) {
	rt := StackTopology(2).NewRuntime(OpenNested)
	rt.OpTimeout = 5 * time.Millisecond
	rt.SetFaults(FaultPlan{
		LockDelay: 50 * time.Millisecond,
		Triggers:  []Trigger{{Site: FaultLockDelay, Txn: "T1", Step: "T1/1/1"}},
	})
	res, err := rt.Submit("T1", transfer7())
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 1 {
		t.Fatalf("root retries = %d, want 1 (timeout aborts the attempt)", res.Retries)
	}
	m := rt.Metrics()
	if m.Timeouts != 1 || m.InjectedFaults != 1 || m.Commits != 1 {
		t.Fatalf("metrics = %+v, want 1 timeout from 1 injected delay", m)
	}
	checkCompC(t, rt)
}

// TestTriggerCompensationQuarantine: when every compensation attempt of a
// rolled-back operation fails, the operation is quarantined — counted,
// reported, never a panic — and its forward effect remains in the store
// for out-of-band repair.
func TestTriggerCompensationQuarantine(t *testing.T) {
	errBoom := errors.New("boom")
	rt := StackTopology(2).NewRuntime(OpenNested)
	rt.SetFaults(FaultPlan{Triggers: []Trigger{
		{Site: FaultCompensation, Txn: "T1", Times: compensationRetries + 1},
	}})
	prog := transfer7()
	prog.Steps = append(prog.Steps, Step{Fail: errBoom})
	_, err := rt.Submit("T1", prog)
	if !errors.Is(err, ErrClientAbort) || !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want client abort", err)
	}
	m := rt.Metrics()
	if m.CompensationFailures != 1 {
		t.Fatalf("CompensationFailures = %d, want 1", m.CompensationFailures)
	}
	q := rt.Quarantined()
	if len(q) != 1 || q[0].Component != "C2" || q[0].Txn != "T1" || q[0].Op.Arg != 7 {
		t.Fatalf("quarantine = %+v", q)
	}
	if !errors.Is(q[0].Err, ErrInjected) {
		t.Fatalf("quarantine error = %v, want injected", q[0].Err)
	}
	// The forward effect leaked (that is what quarantine means).
	if got := rt.Store("C2").Get("x"); got != 7 {
		t.Fatalf("x = %d, want leaked 7", got)
	}
	// The aborted transaction still leaves no trace in the record.
	if rt.RecordedSystem().Node("T1") != nil {
		t.Fatal("aborted transaction leaked into the record")
	}
}

// TestTriggerComponentDown: a component outage rejects the subtransaction;
// local retries with backoff outlast the window and commit without
// aborting the root transaction.
func TestTriggerComponentDown(t *testing.T) {
	rt := StackTopology(2).NewRuntime(Hybrid)
	rt.SetFaults(FaultPlan{
		DownWindow: 100 * time.Microsecond,
		Triggers:   []Trigger{{Site: FaultDown, Component: "C2", Txn: "T1"}},
	})
	res, err := rt.Submit("T1", transfer7())
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 0 {
		t.Fatalf("root retries = %d, want 0 (outage recovered locally)", res.Retries)
	}
	m := rt.Metrics()
	if m.InjectedFaults != 1 || m.SubRetries < 1 {
		t.Fatalf("metrics = %+v, want 1 down fault and >=1 sub-retry", m)
	}
	if got := rt.Store("C2").Get("x"); got != 7 {
		t.Fatalf("x = %d, want 7", got)
	}
	checkCompC(t, rt)
}

// TestSeededFaultsDeterministic: the same plan, seed, and single-client
// program sequence produce bit-identical fault decisions — metrics,
// store state, and quarantine all match across two fresh runs.
func TestSeededFaultsDeterministic(t *testing.T) {
	run := func() (Metrics, int64, int) {
		rt := StackTopology(3).NewRuntime(OpenNested)
		rt.SetFaults(FaultPlan{Seed: 42, ApplyProb: 0.2, LockFailProb: 0.1, CompensationProb: 0.3})
		progs := GenPrograms(StackTopology(3), WorkloadParams{
			Roots: 30, StepsPerTx: 3, Items: 2,
			ReadRatio: 0.2, WriteRatio: 0.3, Seed: 9,
		})
		if err := Run(rt, progs, 1); err != nil {
			t.Fatal(err)
		}
		return rt.Metrics(), rt.Store("C3").Get("x1"), len(rt.Quarantined())
	}
	m1, v1, q1 := run()
	m2, v2, q2 := run()
	if m1 != m2 || v1 != v2 || q1 != q2 {
		t.Fatalf("seeded runs diverged:\n  %+v x1=%d quarantined=%d\n  %+v x1=%d quarantined=%d",
			m1, v1, q1, m2, v2, q2)
	}
	if m1.InjectedFaults == 0 {
		t.Fatal("plan injected nothing; determinism test is vacuous")
	}
}

// TestCompensationQuarantineWithoutInjection: satellite regression for
// the old `panic("compensation failed")` — a store whose backend fails
// the compensating call (user Apply hook, no fault injection at all)
// must take the quarantine path, not crash the runtime.
func TestCompensationQuarantineWithoutInjection(t *testing.T) {
	errBackend := errors.New("backend down")
	rt := StackTopology(2).NewRuntime(OpenNested)
	rt.Store("C2").SetApplyHook(func(op data.Op) error {
		if op.Arg == -7 { // fails exactly the compensating inverse of +7
			return errBackend
		}
		return nil
	})
	prog := transfer7()
	prog.Steps = append(prog.Steps, Step{Fail: errors.New("abort")})
	_, err := rt.Submit("T1", prog)
	if !errors.Is(err, ErrClientAbort) {
		t.Fatalf("err = %v, want client abort", err)
	}
	m := rt.Metrics()
	if m.CompensationFailures != 1 || m.InjectedFaults != 0 {
		t.Fatalf("metrics = %+v, want 1 compensation failure and 0 injected", m)
	}
	q := rt.Quarantined()
	if len(q) != 1 || !errors.Is(q[0].Err, errBackend) {
		t.Fatalf("quarantine = %+v, want the backend error", q)
	}
}

// TestSubmitNoBackoffAfterBudget: satellite regression — with
// MaxRetries=0 an exhausted transaction returns ErrTooManyRetries
// directly from the failing attempt, without sleeping a backoff first.
func TestSubmitNoBackoffAfterBudget(t *testing.T) {
	rt := StackTopology(2).NewRuntime(ClosedNested)
	rt.MaxRetries = 0
	hold := make(chan struct{})
	oldDone := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		_, err := rt.Submit("Told", Invocation{Component: "C1", Steps: []Step{
			{Invoke: &Invocation{Component: "C2", Item: "x", Mode: data.ModeWrite,
				Steps: []Step{{Op: &data.Op{Mode: data.ModeWrite, Item: "x", Arg: 1}}}}},
			{Sync: func() { close(started); <-hold },
				Invoke: &Invocation{Component: "C2", Item: "y", Mode: data.ModeWrite,
					Steps: []Step{{Op: &data.Op{Mode: data.ModeWrite, Item: "y", Arg: 1}}}}},
		}})
		oldDone <- err
	}()
	<-started
	// The younger transaction conflicts on x, dies under wait-die, and
	// has no retry budget: it must return at once.
	begin := time.Now()
	_, err := rt.Submit("Tyoung", Invocation{Component: "C1", Steps: []Step{
		{Invoke: &Invocation{Component: "C2", Item: "x", Mode: data.ModeWrite,
			Steps: []Step{{Op: &data.Op{Mode: data.ModeWrite, Item: "x", Arg: 2}}}}},
	}})
	elapsed := time.Since(begin)
	if !errors.Is(err, ErrTooManyRetries) {
		t.Fatalf("err = %v, want ErrTooManyRetries", err)
	}
	if elapsed > time.Second {
		t.Fatalf("budget-exhausted Submit took %v; it must not sleep", elapsed)
	}
	if m := rt.Metrics(); m.Aborts != 1 {
		t.Fatalf("Aborts = %d, want exactly 1 (single sacrificed attempt)", m.Aborts)
	}
	close(hold)
	if err := <-oldDone; err != nil {
		t.Fatal(err)
	}
}

// TestMetricsExactCounters: satellite — every counter is exact on a
// deterministic single-client sequence covering commits, client aborts,
// injected faults, and timeouts.
func TestMetricsExactCounters(t *testing.T) {
	rt := StackTopology(2).NewRuntime(OpenNested)
	rt.SetFaults(FaultPlan{Triggers: []Trigger{
		{Site: FaultApply, Txn: "T2", Step: "T2/1/1"},
	}})

	// T1: one invocation, two leaf ops, committed.
	if _, err := rt.Submit("T1", Invocation{Component: "C1", Steps: []Step{
		{Invoke: &Invocation{Component: "C2", Item: "x", Mode: data.ModeIncr, Steps: []Step{
			{Op: &data.Op{Mode: data.ModeIncr, Item: "x", Arg: 3}},
			{Op: &data.Op{Mode: data.ModeRead, Item: "x"}},
		}}},
	}}); err != nil {
		t.Fatal(err)
	}
	// T2: its leaf op faults once (1 injected, 1 sub-retry, then the
	// re-run's leaf op applies), committed.
	if _, err := rt.Submit("T2", transfer7()); err != nil {
		t.Fatal(err)
	}
	// T3: applies one leaf op, then a client abort (compensated).
	if _, err := rt.Submit("T3", Invocation{Component: "C1", Steps: []Step{
		{Invoke: &Invocation{Component: "C2", Item: "x", Mode: data.ModeIncr,
			Steps: []Step{{Op: &data.Op{Mode: data.ModeIncr, Item: "x", Arg: 1}}}}},
		{Fail: errors.New("no")},
	}}); !errors.Is(err, ErrClientAbort) {
		t.Fatalf("T3 err = %v", err)
	}
	// T4: a deadline already in the past times out before any work.
	if _, err := rt.Submit("T4", Invocation{Component: "C1",
		Deadline: time.Now().Add(-time.Millisecond),
		Steps: []Step{
			{Invoke: &Invocation{Component: "C2", Item: "x", Mode: data.ModeIncr,
				Steps: []Step{{Op: &data.Op{Mode: data.ModeIncr, Item: "x", Arg: 1}}}}},
		}}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("T4 err = %v, want ErrTimeout", err)
	}

	want := Metrics{
		Commits:        2, // T1, T2
		Aborts:         0, // single client: no wait-die sacrifices
		ClientAborts:   1, // T3
		LeafOps:        4, // T1: 2; T2: 1 (its fault fired before the apply); T3: 1
		Invokes:        3, // T1, T2, T3 (T2's sub-retry re-runs exec, not invoke; T4 timed out first)
		LockWaits:      0,
		Timeouts:       1, // T4
		InjectedFaults: 1, // T2's trigger
		SubRetries:     1, // T2's local recovery
	}
	if got := rt.Metrics(); got != want {
		t.Fatalf("metrics = %+v, want %+v", got, want)
	}
	checkCompC(t, rt)
}
