package sched

import (
	"fmt"
	"sync"
	"testing"

	"compositetx/internal/data"
	"compositetx/internal/front"
	"compositetx/internal/model"
)

// escrowTopology is a bank whose branches use escrow semantics: the
// custom modes deposit/withdraw/audit with EscrowTable conflicts, all
// physically implemented on the integer store via Op.Impl.
func escrowTopology() *Topology {
	escrow := data.EscrowTable()
	return &Topology{
		Specs: []ComponentSpec{
			{Name: "bank", Modes: escrow},
			{Name: "branch", HasStore: true, Modes: escrow},
		},
		Children: map[string][]string{"bank": {"branch"}},
		Entries:  []string{"bank"},
	}
}

func deposit(acct string, amount int64) Invocation {
	return Invocation{Component: "branch", Item: acct, Mode: data.ModeDeposit,
		Steps: []Step{{Op: &data.Op{Mode: data.ModeDeposit, Impl: data.ModeIncr, Item: acct, Arg: amount}}}}
}

func withdraw(acct string, amount int64) Invocation {
	return Invocation{Component: "branch", Item: acct, Mode: data.ModeWithdraw,
		Steps: []Step{{Op: &data.Op{Mode: data.ModeWithdraw, Impl: data.ModeIncr, Item: acct, Arg: -amount}}}}
}

func audit(acct string) Invocation {
	return Invocation{Component: "branch", Item: acct, Mode: data.ModeAudit,
		Steps: []Step{{Op: &data.Op{Mode: data.ModeAudit, Impl: data.ModeRead, Item: acct}}}}
}

// TestEscrowModesConcurrent: concurrent deposits and withdrawals under
// escrow semantics preserve the balance invariant and record a Comp-C
// execution; deposits never conflict with each other.
func TestEscrowModesConcurrent(t *testing.T) {
	for _, p := range []Protocol{OpenNested, Hybrid, ClosedNested, Global2PL} {
		t.Run(p.String(), func(t *testing.T) {
			rt := escrowTopology().NewRuntime(p)
			const n = 30
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					var prog Invocation
					switch i % 3 {
					case 0, 1:
						prog = Invocation{Component: "bank", Steps: []Step{
							{Invoke: ptr(deposit("acct", 10))}}}
					default:
						prog = Invocation{Component: "bank", Steps: []Step{
							{Invoke: ptr(withdraw("acct", 3))}}}
					}
					if _, err := rt.Submit(fmt.Sprintf("T%d", i+1), prog); err != nil {
						t.Error(err)
					}
				}(i)
			}
			wg.Wait()
			// 20 deposits of 10, 10 withdrawals of 3.
			if got := rt.Store("branch").Get("acct"); got != 20*10-10*3 {
				t.Fatalf("acct = %d, want %d", got, 20*10-10*3)
			}
			sys := rt.RecordedSystem()
			if err := sys.Validate(); err != nil {
				t.Fatalf("[%s] %v", p, err)
			}
			if ok, err := front.IsCompC(sys); err != nil || !ok {
				t.Fatalf("[%s] escrow execution must be Comp-C: %v, %v", p, ok, err)
			}
			// Deposits never conflict with each other: every recorded
			// conflict involves at least one withdrawal transaction
			// (roots T3, T6, ... in the submission pattern above).
			isWithdrawal := func(op string) bool {
				var id int
				if _, err := fmt.Sscanf(op, "T%d/", &id); err != nil {
					t.Fatalf("unexpected op id %q", op)
				}
				return id%3 == 0
			}
			for _, sc := range sys.Schedules() {
				sc.Conflicts.Each(func(a, b model.NodeID) {
					if !isWithdrawal(string(a)) && !isWithdrawal(string(b)) {
						t.Errorf("[%s] deposits recorded as conflicting: (%s,%s)", p, a, b)
					}
				})
			}
		})
	}
}

// TestEscrowAuditSeesConsistentBalance: an audit serializes against all
// balance changes, so the value it reads equals some prefix of the
// committed deposits/withdrawals — under ClosedNested, exactly the final
// balance when run after the updates.
func TestEscrowAuditSeesConsistentBalance(t *testing.T) {
	rt := escrowTopology().NewRuntime(ClosedNested)
	for i := 0; i < 5; i++ {
		if _, err := rt.Submit(fmt.Sprintf("D%d", i+1), Invocation{
			Component: "bank", Steps: []Step{{Invoke: ptr(deposit("acct", 7))}}}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := rt.Submit("A", Invocation{Component: "bank", Steps: []Step{{Invoke: ptr(audit("acct"))}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || res.Values[0] != 35 {
		t.Fatalf("audit read %v, want [35]", res.Values)
	}
	sys := rt.RecordedSystem()
	if ok, err := front.IsCompC(sys); err != nil || !ok {
		t.Fatalf("audited execution must be Comp-C: %v, %v", ok, err)
	}
	// The audit conflicts with every deposit at the branch.
	branch := sys.Schedule("branch")
	if branch.Conflicts.Len() == 0 {
		t.Fatal("audit/deposit conflicts must be recorded")
	}
}

func ptr(i Invocation) *Invocation { return &i }
