package sched

import (
	"errors"
	"fmt"
	"time"

	"compositetx/internal/data"
	"compositetx/internal/model"
)

// ExecMode selects how a runtime executes leaf reads: pessimistically
// (semantic locks, the default) or optimistically (MVCC snapshot reads
// validated at commit).
type ExecMode int

const (
	// ExecPessimistic takes semantic locks for every leaf operation.
	ExecPessimistic ExecMode = iota
	// ExecOptimistic serves leaf reads from a per-store committed
	// snapshot without taking semantic locks and without ever blocking on
	// (or being blocked by) writers. At commit, before certification and
	// before anything becomes durable, the scheduler validates every
	// snapshot read against the versions committed since the snapshot,
	// using the component's ModeTable — an intervening commit that
	// commutes with the read (per the table) does not invalidate it. A
	// failed validation aborts with ErrValidation and flows into the
	// normal retry ladder. Mutations still lock pessimistically, so
	// write/write conflicts keep their wait-die behavior.
	ExecOptimistic
)

func (m ExecMode) String() string {
	switch m {
	case ExecPessimistic:
		return "pessimistic"
	case ExecOptimistic:
		return "optimistic"
	default:
		return fmt.Sprintf("ExecMode(%d)", int(m))
	}
}

// ErrValidation aborts an optimistic attempt whose snapshot reads were
// invalidated by conflicting commits; the transaction is rolled back and
// retried with a fresh snapshot (Metrics.ValidationAborts counts these).
var ErrValidation = errors.New("sched: optimistic validation failed")

// readRec is one snapshot read an optimistic attempt must validate at
// commit: where it read, what it read, at which snapshot stamp, and under
// which conflict table. valIdx and eventIdx locate the read's result in
// the attempt's value list and its recorded event in the staged record,
// so a commit-time refresh (refreshReads) can move the read forward
// without re-executing the program.
type readRec struct {
	store    *data.Store
	table    *data.ModeTable
	comp     string
	item     string
	mode     data.Mode
	ts       uint64
	valIdx   int
	eventIdx int
}

// snapKey identifies one snapshot frontier the attempt holds: component
// plus item. Snapshots are per-item (data.Store.StableRead), taken lazily
// at each item's first read and reused by repeated reads of the same item
// — validation then enforces repeatable reads: if the item changed
// conflictingly in between, the earlier read's stamp fails and a refresh
// realigns every read of the item to one fresh frontier.
func snapKey(comp, item string) string { return comp + "\x00" + item }

// wroteItem reports whether the attempt already mutated item at comp — in
// which case a snapshot read would miss the attempt's own uncommitted
// write, and the read must go through the locked path instead (the lock
// is already held by this attempt, so it cannot block).
func (a *attempt) wroteItem(comp string, item string) bool {
	_, ok := a.wset[comp+"\x00"+item]
	return ok
}

func (a *attempt) markWrite(comp string, item string) {
	if a.wset == nil {
		a.wset = make(map[string]struct{}, 4)
	}
	a.wset[comp+"\x00"+item] = struct{}{}
}

// snapshotRead serves one optimistic leaf read from the component store's
// committed prefix at the attempt's snapshot stamp: no semantic lock, no
// store write lock, no blocking on concurrent writers. The read is
// recorded as a normal leaf event (sequenced after the snapshot stamp, so
// recorded conflict order agrees with the values seen once validation
// passes) and remembered for validate-at-commit.
func (r *Runtime) snapshotRead(a *attempt, comp *component, parent, id model.NodeID, op data.Op) error {
	var val int64
	ts, ok := a.snaps[snapKey(comp.name, op.Item)]
	if ok {
		val = comp.store.ReadAt(op.Item, ts)
	} else {
		// Take the snapshot and register it with the checkpoint state as
		// one unit: a concurrent checkpoint cut computes its compaction
		// frontier from registered snapshots, so the stamp must be visible
		// before Compact can run, or the versions this read depends on
		// could be pruned out from under it.
		r.ck.gate.RLock(a.ts)
		val, ts = comp.store.StableRead(op.Item, string(a.root))
		r.ck.noteSnap(a, ts)
		r.ck.gate.RUnlock(a.ts)
		if a.snaps == nil {
			a.snaps = make(map[string]uint64, 4)
		}
		a.snaps[snapKey(comp.name, op.Item)] = ts
	}
	r.leafOps.Add(1)
	a.reads = append(a.reads, readRec{
		store: comp.store, table: comp.modes,
		comp: comp.name, item: op.Item, mode: op.Mode, ts: ts,
		valIdx: len(a.values), eventIdx: len(a.stage.events),
	})
	a.values = append(a.values, val)
	seq := r.seq.Add(1)
	a.stage.declareNode(nodeDecl{id: id, parent: parent})
	a.stage.addEvent(event{seq: seq, comp: comp.name, op: id, parentTx: parent, item: op.Item, mode: op.Mode})
	return nil
}

// setSeal publishes a validation pass's validation point for the root,
// monotonically (a later pass only raises it). Claims made by other
// validators compare their own validation point against this seal.
func (r *Runtime) setSeal(root string, vpoint uint64) {
	r.sealMu.Lock()
	if vpoint > r.sealM[root] {
		r.sealM[root] = vpoint
	}
	r.sealMu.Unlock()
}

func (r *Runtime) sealOf(root string) (uint64, bool) {
	r.sealMu.Lock()
	s, ok := r.sealM[root]
	r.sealMu.Unlock()
	return s, ok
}

func (r *Runtime) clearSeal(root string) {
	r.sealMu.Lock()
	delete(r.sealM, root)
	r.sealMu.Unlock()
}

// Dirty-wait budgets: how long a validating attempt waits for an
// in-flight conflicting writer to resolve before giving up. Waiting out a
// writer's remaining steps is far cheaper than re-executing the whole
// attempt (the wait is event-driven, so a parked validator burns no CPU).
// A *pure reader* — an attempt with no installs of its own — always waits
// generously: nobody can be waiting on it, so it can never be part of a
// wait cycle. A mixed read/write attempt waits generously only when its
// root ID orders strictly before the blocking writer's (wait-die: every
// long-wait edge points up the ID order, so a cycle of long waiters would
// need strictly increasing IDs around a loop — impossible); against a
// smaller-ID writer it keeps a budget sized to cover an ordinary
// writer's commit tail — only a genuine wait cycle (two
// validators parked on each other's installs, which only the ID order
// bounds) burns it fully and falls into a validation abort.
//
// Budgets are per blocking writer and span the whole validate call, not
// one pass: a refresh loop must not re-arm the clock for the same parked
// writer, and waiting a new writer out is progress, not a retry.
const (
	readerDirtyWait = 100 * time.Millisecond
	mixedDirtyWait  = 2 * time.Millisecond
)

// validate is the optimistic commit gate: every snapshot read must still
// be clean and current —
//
//   - no resolved version conflicting with the read's mode (under the
//     component's table) may have been installed after the snapshot stamp
//     (rolled-back operations net out against their linked compensations
//     and don't count unless the pair straddles the snapshot), and
//   - no conflicting version may still be tagged by another root's
//     unresolved attempt (versions are installed eagerly at apply time,
//     so without this rule a snapshot could expose an uncommitted
//     effect — and its owner could conflict with this reader again after
//     the reader commits, a root-level serializability cycle no
//     post-snapshot check can see).
//
// See data.Store.CheckRead for the full verdict rules. A dirty read is
// not aborted immediately: the offending writer resolves within its own
// commit latency, so validation briefly waits and re-checks — most dirty
// snapshots turn out valid (the writer finished without conflicting
// again) and commit without the cost of a re-execution.
//
// The attempt's own installs are excluded: a transaction that reads an
// item and then writes it does not invalidate itself, and its own
// in-flight tags do not make its snapshot dirty.
//
// Soundness note: version stamps, event sequence numbers and retirement
// stamps are all allocated from one global counter (Store.UseClock), and
// each validation pass pins a *validation point* — a stamp allocated
// after every read event of the attempt. A pass succeeds only if each
// read saw exactly the conflicting versions below the validation point
// and each of their writers retired before it (data.Store.CheckRead).
// Then every conflicting writer falls entirely on one side of this
// attempt: a seen writer retired before the point, so all its operations
// carry smaller stamps than the point — each is either inside the
// corresponding read's snapshot (recorded before the read, matching the
// value seen) or between snapshot and point, which the pass rejects as
// stale; an unseen writer's operations all carry stamps above the point,
// hence above every read event (recorded after, matching the read not
// seeing them) — a writer with any operation below the point either
// retired below it (seen case) or is caught by the retired-after-point
// rule. Because every verdict is a comparison of immutable stamps, a
// writer resolving mid-pass cannot invalidate an already-checked read:
// what a later scan could newly observe is, by construction, above the
// validation point.
//
// The exception to "unseen writers sit entirely above the point" is a
// *serialize-before claim*: a pass may pass over an unresolved
// conflicting version installed after the read's recorded event,
// asserting this attempt serializes before that writer. Claims are made
// sound by seal order. Define seal(T) as the validation point of T's
// passing pass (for a root with no snapshot reads: its retirement
// stamp). Every pass registers its validation point as the root's
// tentative seal *before* checking anything (setSeal; the final seal is
// the largest), and a claim against W is granted only if W's registered
// seal is absent or above the claimant's validation point — absent means
// W has not begun validating, so W's eventual seal is allocated later
// and is necessarily larger; a root with no reads never registers, and
// its retirement stamp is allocated after any check that still observed
// its versions unresolved (Store.Retire stamps inside the store lock the
// check read under). Then every edge of the committed conflict graph
// strictly increases seal: a seen effect's writer retired (hence sealed)
// below the seeing pass's point; a claimed-past writer seals above the
// claimant's point; and conflicting installs are serialized by semantic
// locks that release only after retirement, so an install-ordered
// successor seals above its predecessor's retirement. A cycle would need
// seal(T) < seal(T) — impossible. The claim race two concurrent
// validators could otherwise exploit (each claiming past the other's
// install) resolves by seal order: only the pass with the smaller
// validation point may claim past the other.
func (r *Runtime) validate(a *attempt) error {
	if len(a.reads) == 0 || r.skipValidation {
		return nil
	}
	var mine map[*data.Store]map[uint64]bool
	for _, u := range a.undo {
		if u.res.TS == 0 {
			continue
		}
		if mine == nil {
			mine = make(map[*data.Store]map[uint64]bool, 2)
		}
		m := mine[u.store]
		if m == nil {
			m = make(map[uint64]bool, 4)
			mine[u.store] = m
		}
		m[u.res.TS] = true
	}
	self := string(a.root)
	var deadline time.Time
	lastBlocker := ""
	for pass := 0; ; pass++ {
		vpoint := r.seq.Add(1)
		r.setSeal(self, vpoint)
		bad := r.checkReads(a, mine, self, vpoint, &deadline, &lastBlocker)
		if bad == nil {
			return nil
		}
		if pass >= r.RefreshRetries {
			return fmt.Errorf("sched: snapshot read of %s/%s (mode %s) at stamp %d invalidated by a conflicting or in-flight writer: %w",
				bad.comp, bad.item, bad.mode, bad.ts, ErrValidation)
		}
		r.refreshReads(a)
		r.valRefreshes.Add(1)
	}
}

// checkReads verifies every snapshot read at its current stamp against
// the pass's validation point, waiting out dirty (in-flight) writers up
// to dirtyWait across the whole pass. Returns the first read that stays
// invalid, or nil.
func (r *Runtime) checkReads(a *attempt, mine map[*data.Store]map[uint64]bool, self string, vpoint uint64, deadline *time.Time, lastBlocker *string) *readRec {
	pure := len(a.undo) == 0
	claim := func(owner string) bool {
		s, ok := r.sealOf(owner)
		return !ok || s > vpoint
	}
	for i := range a.reads {
		rd := &a.reads[i]
		readSeq := a.stage.events[rd.eventIdx].seq
		for {
			v, blocker := rd.store.CheckRead(rd.item, rd.ts, vpoint, readSeq, rd.mode, rd.table, mine[rd.store], self, claim)
			if v == data.ReadValid {
				break
			}
			if v == data.ReadDirty {
				if deadline.IsZero() || blocker != *lastBlocker {
					// Each distinct blocking writer gets its own wait
					// window, oriented wait-die (see budget comment).
					budget := mixedDirtyWait
					if pure || self < blocker {
						budget = readerDirtyWait
					}
					*deadline = time.Now().Add(budget)
					*lastBlocker = blocker
				}
				if remain := time.Until(*deadline); remain > 0 {
					// Park until some attempt resolves (or the budget
					// runs out). Re-check after obtaining the channel so
					// a resolution between the check above and the wait
					// is not lost.
					ch := rd.store.ResolveWait()
					if v2, _ := rd.store.CheckRead(rd.item, rd.ts, vpoint, readSeq, rd.mode, rd.table, mine[rd.store], self, claim); v2 != data.ReadDirty {
						continue
					}
					t := time.NewTimer(remain)
					select {
					case <-ch:
					case <-t.C:
					}
					t.Stop()
					continue
				}
			}
			return rd
		}
	}
	return nil
}

// refreshReads moves every snapshot read forward to its item's current
// stable frontier: the values are re-read at the new stamps and the
// reads' recorded events are re-sequenced, in program order, from the
// shared clock — so the recorded conflict order still matches what the
// refreshed reads saw. Reads have no side effects and no later program
// step depends on a read value mid-flight (programs are static operation
// lists), so this re-serializes the attempt's reads at commit time for
// the cost of a few chain lookups instead of a full re-execution. The
// TicToc-style timestamp extension: only when refreshing keeps failing
// (RefreshRetries passes, e.g. a writer parked on a hot item) does the
// attempt pay the full validation abort.
func (r *Runtime) refreshReads(a *attempt) {
	self := string(a.root)
	fresh := make(map[string]uint64, len(a.snaps))
	for i := range a.reads {
		rd := &a.reads[i]
		key := snapKey(rd.comp, rd.item)
		ts, ok := fresh[key]
		if ok {
			a.values[rd.valIdx] = rd.store.ReadAt(rd.item, ts)
		} else {
			var val int64
			val, ts = rd.store.StableRead(rd.item, self)
			fresh[key] = ts
			a.values[rd.valIdx] = val
		}
		rd.ts = ts
		a.stage.events[rd.eventIdx].seq = r.seq.Add(1)
	}
	for k, ts := range fresh {
		a.snaps[k] = ts
	}
}
