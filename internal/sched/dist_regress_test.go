package sched

import (
	"errors"
	"testing"
	"time"

	"compositetx/internal/comm"
	"compositetx/internal/data"
)

// Regression suite for review findings against the distributed runtime:
// participant recovery must replay applies and compensations in log
// order, the termination protocol must resolve per attempt, and decision
// re-delivery must carry the committing attempt.

// TestDistRecoverLogOrderReplay pins the participant recovery replay
// order. ModeWrite compensations write back Prev and do not commute with
// later applies: after Apply(x=5, T1), Comp(x=seed, T1 aborted),
// Apply(x=7, T2 committed), a recovery that replays all applies first
// and all compensations second rebuilds x=seed instead of x=7.
func TestDistRecoverLogOrderReplay(t *testing.T) {
	cfg := distConfig(t, Hybrid, "chan", true)
	cl := startCluster(t, cfg)

	write := func(arg int64, fail bool) Invocation {
		steps := []Step{{Invoke: &Invocation{Component: "east", Item: "acct", Mode: data.ModeWrite,
			Steps: []Step{{Op: &data.Op{Mode: data.ModeWrite, Item: "acct", Arg: arg}}}}}}
		if fail {
			steps = append(steps, Step{Fail: errors.New("client abort")})
		}
		return Invocation{Component: "bank", Steps: steps}
	}

	// T1 writes and aborts client-side: its apply and its compensation
	// (write back the seed) are journaled. T2 then writes and commits.
	if _, err := cl.Submit("T1", write(5, true)); !errors.Is(err, ErrClientAbort) {
		t.Fatalf("T1: got %v, want ErrClientAbort", err)
	}
	if _, err := cl.Submit("T2", write(7, false)); err != nil {
		t.Fatalf("T2: %v", err)
	}
	if got := cl.StoreSnapshot("east")["acct"]; got != 7 {
		t.Fatalf("pre-crash east acct = %d, want 7", got)
	}

	if err := cl.CrashParticipant("east"); err != nil {
		t.Fatal(err)
	}
	if err := cl.RecoverParticipant("east"); err != nil {
		t.Fatal(err)
	}
	if got := cl.StoreSnapshot("east")["acct"]; got != 7 {
		t.Fatalf("recovered east acct = %d, want 7 (compensations replayed out of log order)", got)
	}
}

// TestDistQueryPerAttempt pins the coordinator's termination-protocol
// answer to the queried attempt: a durable commit decision answers
// commit only for the attempt that committed; a prepared-but-superseded
// earlier attempt gets the presumed abort, an in-flight transaction gets
// retry, an unknown one the presumed abort.
func TestDistQueryPerAttempt(t *testing.T) {
	net := comm.NewChanNetwork()
	t.Cleanup(func() { net.Close() })

	cfg := distConfig(t, Hybrid, "chan", false).normalized()
	c := newCoordinator(cfg, transferTopo(), &distCrashState{})
	ep, err := net.Endpoint(coordName)
	if err != nil {
		t.Fatal(err)
	}
	c.connect(ep)
	t.Cleanup(c.close)
	c.mu.Lock()
	c.committed["Tc"] = &coTxn{attempt: 2, parts: []string{"east"}, pending: map[string]bool{}, ended: true}
	c.inflight["Tf"] = true
	c.mu.Unlock()

	pep, err := net.Endpoint("probe")
	if err != nil {
		t.Fatal(err)
	}
	mux := comm.NewMux(pep, func(comm.Message) {})
	mux.Start()
	t.Cleanup(func() { mux.Close() })
	query := func(txn string, attempt uint32) comm.Message {
		t.Helper()
		rep, err := mux.Call(coordName, comm.Message{Kind: comm.KindQuery, Txn: txn, Attempt: attempt},
			cfg.RPCTimeout, cfg.RPCRetries)
		if err != nil {
			t.Fatalf("query %s attempt %d: %v", txn, attempt, err)
		}
		return rep
	}

	if rep := query("Tc", 2); !rep.Commit || rep.Code != dcodeOK {
		t.Fatalf("committed attempt: got commit=%v code=%d, want commit", rep.Commit, rep.Code)
	}
	if rep := query("Tc", 1); rep.Commit || rep.Code != dcodeOK {
		t.Fatalf("superseded attempt: got commit=%v code=%d, want presumed abort", rep.Commit, rep.Code)
	}
	if rep := query("Tf", 1); rep.Code != dcodeRetry {
		t.Fatalf("in-flight: got code=%d, want dcodeRetry", rep.Code)
	}
	if rep := query("Tu", 1); rep.Commit || rep.Code != dcodeOK {
		t.Fatalf("unknown: got commit=%v code=%d, want presumed abort", rep.Commit, rep.Code)
	}
}

// TestDistGroupCommitCrashBetweenFlushAndSend pins the coalesced force
// path's crash window: with group commit on, a participant's force is a
// shared group flush, and the armed crash lands after that flush
// completes but before the dependent protocol send (the Vote after the
// prepare force, the Ack after the decision force). The flushed records
// must be durable — recovery rebuilds the in-doubt or decided state from
// them — and the never-sent message must be recovered by retry,
// re-delivery, or the termination protocol, never by a false ack.
func TestDistGroupCommitCrashBetweenFlushAndSend(t *testing.T) {
	t.Run("decision-flush-before-ack", func(t *testing.T) {
		cfg := distConfig(t, Hybrid, "chan", true)
		cfg.GroupCommit = true
		cl := startCluster(t, cfg)

		cl.SetCrash(DistCrash{Txn: "T1", Site: DistCrashPartDecide, Part: "east"})
		// The coordinator's decision is durable and west acks, so Submit
		// succeeds; east group-flushed its TypeDecision record and crashed
		// before the Ack went out.
		if _, err := cl.Submit("T1", transferPrograms(1)[0]); err != nil {
			t.Fatalf("T1: %v", err)
		}
		if err := cl.RecoverParticipant("east"); err != nil {
			t.Fatal(err)
		}
		if err := cl.Settle(5 * time.Second); err != nil {
			t.Fatalf("settle after recovery: %v", err)
		}
		distConserved(t, cl)
		distAudit(t, cl)
		if east := cl.StoreSnapshot("east")["acct"]; east == distInitial {
			t.Fatalf("east acct = %d (unchanged): the group-flushed decision was lost", east)
		}
		if m := cl.Metrics(); m.GroupForces == 0 {
			t.Fatalf("cell ran without the coalesced force path: %s", m)
		}
	})

	t.Run("prepare-flush-before-vote", func(t *testing.T) {
		cfg := distConfig(t, Hybrid, "chan", true)
		cfg.GroupCommit = true
		cl := startCluster(t, cfg)

		cl.SetCrash(DistCrash{Txn: "T1", Site: DistCrashPartPrepare, Part: "east"})
		// east group-flushes its TypePrepare record then crashes before the
		// yes-vote; the coordinator times out the vote and presumes abort.
		// A watcher recovers east so a retried attempt can commit.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					for _, name := range cl.CrashedParticipants() {
						_ = cl.RecoverParticipant(name)
					}
				}
			}
		}()
		if _, err := cl.Submit("T1", transferPrograms(1)[0]); err != nil {
			t.Fatalf("T1: %v", err)
		}
		if err := cl.Settle(5 * time.Second); err != nil {
			t.Fatalf("settle: %v", err)
		}
		distConserved(t, cl)
		distAudit(t, cl)
		// Exactly one attempt committed: the crashed attempt's in-doubt
		// prepare must have resolved to abort, not a second commit.
		if east := cl.StoreSnapshot("east")["acct"]; east == distInitial {
			t.Fatalf("east acct = %d (unchanged): retried attempt never committed", east)
		}
		if m := cl.Metrics(); m.Commits != 1 {
			t.Fatalf("commits = %d, want exactly 1: %s", m.Commits, m)
		}
	})
}

// TestDistRedeliveryCarriesAttempt pins decision re-delivery after a
// coordinator crash: the re-delivered Decide must name the attempt that
// committed, or prepared participants ack idempotently without ever
// committing. The participant sweeper is parked (SweepEvery = 1h) so the
// termination-protocol query path cannot mask a broken re-delivery path.
func TestDistRedeliveryCarriesAttempt(t *testing.T) {
	cfg := distConfig(t, Hybrid, "chan", true)
	cfg.SweepEvery = time.Hour
	cfg.QueryAfter = 40 * time.Millisecond // re-delivery tick
	cl := startCluster(t, cfg)

	cl.SetCrash(DistCrash{Txn: "T1", Site: DistCrashCoordPost})
	prog := transferPrograms(1)[0]
	if _, err := cl.Submit("T1", prog); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Submit: got %v, want ErrCrashed", err)
	}
	// The decision is durable but undelivered: both legs sit prepared.
	if got := cl.participant("east").inDoubt() + cl.participant("west").inDoubt(); got == 0 {
		t.Fatal("no prepared participant transactions before recovery")
	}

	if err := cl.RecoverCoordinator(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Settle(5 * time.Second); err != nil {
		t.Fatalf("re-delivery did not land the decision: %v", err)
	}
	distConserved(t, cl)
	distAudit(t, cl)
	m := cl.Metrics()
	if m.Resolved != 0 {
		t.Fatalf("resolved = %d, want 0 (query path was supposed to be parked)", m.Resolved)
	}
	if m.Redelivers == 0 {
		t.Fatal("redelivers = 0, want at least one re-delivery round")
	}
	// The transfer must have actually committed at both participants.
	if east := cl.StoreSnapshot("east")["acct"]; east == distInitial {
		t.Fatalf("east acct = %d (unchanged): the commit never landed", east)
	}
}
