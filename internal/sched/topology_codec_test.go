package sched

import (
	"strings"
	"testing"

	"compositetx/internal/data"
	"compositetx/internal/front"
)

const sampleTopology = `{
  "components": [
    {"name": "shop"},
    {"name": "inventory", "store": true},
    {"name": "billing", "store": true, "modes": "escrow"},
    {"name": "audit", "store": true, "modes": "rw"}
  ],
  "children": {
    "shop": ["inventory", "billing"],
    "billing": ["audit"]
  },
  "entries": ["shop"]
}`

func TestDecodeTopology(t *testing.T) {
	topo, err := DecodeTopology(strings.NewReader(sampleTopology))
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Specs) != 4 || len(topo.Entries) != 1 {
		t.Fatalf("specs=%d entries=%d", len(topo.Specs), len(topo.Entries))
	}
	// The decoded topology drives a runtime end to end.
	rt := topo.NewRuntime(Hybrid)
	progs := GenPrograms(topo, WorkloadParams{
		Roots: 20, StepsPerTx: 3, Items: 3, ReadRatio: 0.3, WriteRatio: 0.3, Seed: 3,
	})
	if err := Run(rt, progs, 6); err != nil {
		t.Fatal(err)
	}
	sys := rt.RecordedSystem()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if ok, err := front.IsCompC(sys); err != nil || !ok {
		t.Fatalf("decoded topology execution must be Comp-C: %v, %v", ok, err)
	}
}

func TestDecodeTopologyModeTables(t *testing.T) {
	topo, err := DecodeTopology(strings.NewReader(sampleTopology))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ComponentSpec{}
	for _, s := range topo.Specs {
		byName[s.Name] = s
	}
	if byName["inventory"].Modes != nil {
		t.Error("default modes must be nil (semantic)")
	}
	if !byName["billing"].Modes.ModeConflicts(data.ModeWithdraw, data.ModeWithdraw) {
		t.Error("billing should use the escrow table")
	}
	if !byName["audit"].Modes.ModeConflicts(data.ModeIncr, data.ModeIncr) {
		t.Error("audit should use the rw table")
	}
}

func TestDecodeTopologyCustomModes(t *testing.T) {
	in := `{
	  "components": [{"name": "a", "store": true,
	    "modes": {"conflicts": [["book","book"], ["book","cancel"]]}}],
	  "entries": ["a"]
	}`
	topo, err := DecodeTopology(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	m := topo.Specs[0].Modes
	if !m.ModeConflicts("book", "cancel") || !m.ModeConflicts("book", "book") {
		t.Fatal("custom conflicts lost")
	}
	if m.ModeConflicts("cancel", "cancel") {
		t.Fatal("undeclared pair must commute")
	}
}

func TestDecodeTopologyRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":             `{}`,
		"no entries":        `{"components":[{"name":"a"}]}`,
		"empty name":        `{"components":[{"name":""}],"entries":[""]}`,
		"dup component":     `{"components":[{"name":"a"},{"name":"a"}],"entries":["a"]}`,
		"unknown entry":     `{"components":[{"name":"a"}],"entries":["b"]}`,
		"unknown child":     `{"components":[{"name":"a"}],"children":{"a":["b"]},"entries":["a"]}`,
		"unknown parent":    `{"components":[{"name":"a"}],"children":{"b":["a"]},"entries":["a"]}`,
		"self invocation":   `{"components":[{"name":"a"}],"children":{"a":["a"]},"entries":["a"]}`,
		"recursive":         `{"components":[{"name":"a"},{"name":"b"}],"children":{"a":["b"],"b":["a"]},"entries":["a"]}`,
		"bad modes":         `{"components":[{"name":"a","modes":"quantum"}],"entries":["a"]}`,
		"malformed modes":   `{"components":[{"name":"a","modes":{"conflicts":"x"}}],"entries":["a"]}`,
		"not json":          `nope`,
		"truncated json":    `{"components":[{"name":"a"`,
		"truncated entries": `{"components":[{"name":"a"}],"entries":["a"`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := DecodeTopology(strings.NewReader(in)); err == nil {
				t.Fatalf("input %q must be rejected", in)
			}
		})
	}
}

// TestEncodeTopologyRoundTrip: encode → decode must reproduce the
// structure, and named mode tables must come back behaviorally identical
// (they are persisted as explicit conflict pairs).
func TestEncodeTopologyRoundTrip(t *testing.T) {
	orig, err := DecodeTopology(strings.NewReader(sampleTopology))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := EncodeTopology(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTopology(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("re-decoding the encoded topology: %v\n%s", err, buf.String())
	}
	if len(back.Specs) != len(orig.Specs) || len(back.Entries) != len(orig.Entries) {
		t.Fatalf("shape lost: %d/%d specs, %d/%d entries",
			len(back.Specs), len(orig.Specs), len(back.Entries), len(orig.Entries))
	}
	for i, o := range orig.Specs {
		b := back.Specs[i]
		if b.Name != o.Name || b.HasStore != o.HasStore {
			t.Fatalf("spec %d: %+v != %+v", i, b, o)
		}
		modes := func(s ComponentSpec) *data.ModeTable {
			if s.Modes != nil {
				return s.Modes
			}
			return data.SemanticTable()
		}
		om, bm := modes(o), modes(b)
		for _, pair := range [][2]data.Mode{
			{data.ModeRead, data.ModeWrite}, {data.ModeRead, data.ModeIncr},
			{data.ModeWrite, data.ModeWrite}, {data.ModeIncr, data.ModeIncr},
			{data.ModeWithdraw, data.ModeWithdraw}, {data.ModeAudit, data.ModeDeposit},
		} {
			if om.ModeConflicts(pair[0], pair[1]) != bm.ModeConflicts(pair[0], pair[1]) {
				t.Fatalf("spec %q: conflict %v lost in the roundtrip", o.Name, pair)
			}
		}
	}
	for parent, kids := range orig.Children {
		if got := back.Children[parent]; len(got) != len(kids) {
			t.Fatalf("children of %q lost: %v != %v", parent, got, kids)
		}
	}
}
