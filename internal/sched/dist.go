package sched

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"compositetx/internal/comm"
	"compositetx/internal/data"
	"compositetx/internal/front"
	"compositetx/internal/model"
	"compositetx/internal/wal"
)

// DistConfig configures a distributed cluster: one coordinator plus one
// participant per component of the topology, wired over a message
// transport.
type DistConfig struct {
	Protocol Protocol
	Topo     *Topology

	// Net supplies the transport. Nil picks by Transport: "tcp" builds a
	// loopback socket network, anything else an in-process channel
	// network.
	Net       comm.Network
	Transport string

	// NetFaults, when enabled, wraps the transport in the seeded fault
	// injector (drop, duplicate, delay, reorder, one-way partition).
	NetFaults comm.NetFaultPlan

	// WALRoot is the durability root: the coordinator logs under
	// <WALRoot>/coord, each store-bearing participant under
	// <WALRoot>/part-<name>. Empty runs the cluster volatile.
	WALRoot   string
	SyncEvery int

	// GroupCommit routes every 2PC force point (coordinator decision,
	// participant prepare/decide) through the WAL's coalescing Force API:
	// concurrent transactions share flush-daemon fsyncs instead of paying
	// one each. Correctness-neutral — each force still completes before
	// its dependent protocol message is sent.
	GroupCommit bool
	// GroupWindow/GroupMaxRecords tune the flush daemon (see wal.Options).
	// Zero defaults to DefaultGroupWindow: the daemon holds each window
	// open briefly so concurrent force points pile into one fsync —
	// worth far more than its added latency whenever fsyncs are the
	// commit bottleneck. Negative is natural batching (flush as soon as
	// idle, no added latency, batching only while a flush is in flight).
	GroupWindow     time.Duration
	GroupMaxRecords int

	// RPC policy: per-attempt deadline and capped-backoff retry budget
	// for every message the coordinator or a participant sends.
	RPCTimeout time.Duration // default 25ms
	RPCRetries int           // default 4

	// LockWait bounds a participant-side lock wait per request (default
	// 150ms); the RPC layer keeps re-sending (same correlation ID, so the
	// wait is never duplicated) while the participant blocks.
	LockWait time.Duration

	// MaxRetries bounds a root's abort-retry rounds (default 40).
	MaxRetries int
	// MaxActive throttles root admission with ErrOverload (0 = off).
	MaxActive int

	// Participant liveness: an unprepared attempt idle past AbandonAfter
	// is aborted unilaterally (default 400ms); a prepared one idle past
	// QueryAfter runs the termination protocol (default 250ms); the
	// sweeper wakes every SweepEvery (default 50ms).
	AbandonAfter time.Duration
	QueryAfter   time.Duration
	SweepEvery   time.Duration

	// Seeds preloads participant stores (component -> item -> value),
	// journaled as TypeSeed when a WAL is attached.
	Seeds map[string]map[string]int64
}

func (cfg DistConfig) normalized() DistConfig {
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 25 * time.Millisecond
	}
	if cfg.RPCRetries <= 0 {
		cfg.RPCRetries = 4
	}
	if cfg.LockWait <= 0 {
		cfg.LockWait = 150 * time.Millisecond
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 40
	}
	if cfg.AbandonAfter <= 0 {
		cfg.AbandonAfter = 400 * time.Millisecond
	}
	if cfg.QueryAfter <= 0 {
		cfg.QueryAfter = 250 * time.Millisecond
	}
	if cfg.SweepEvery <= 0 {
		cfg.SweepEvery = 50 * time.Millisecond
	}
	if cfg.SyncEvery == 0 {
		cfg.SyncEvery = 1
	}
	return cfg
}

// DefaultGroupWindow is the flush-daemon window a GroupCommit cluster
// uses when DistConfig.GroupWindow is zero. One millisecond is small
// against every protocol timeout in the config but long enough that a
// window collects the force points of every transaction concurrently at
// a force point, so fsync cost per commit drops to O(1/batch).
const DefaultGroupWindow = time.Millisecond

// walOptions builds the log options every cluster log opens with.
func (cl *Cluster) walOptions() wal.Options {
	window := cl.cfg.GroupWindow
	if cl.cfg.GroupCommit {
		switch {
		case window == 0:
			window = DefaultGroupWindow
		case window < 0:
			window = 0 // natural batching
		}
	} else {
		window = 0
	}
	return wal.Options{
		SyncEvery:       cl.cfg.SyncEvery,
		GroupWindow:     window,
		GroupMaxRecords: cl.cfg.GroupMaxRecords,
	}
}

// partMeta is the TypeMeta payload of a participant log.
type partMeta struct {
	Version int    `json:"version"`
	Part    string `json:"part"`
}

func coordDir(root string) string      { return filepath.Join(root, "coord") }
func partDir(root, name string) string { return filepath.Join(root, "part-"+name) }
func parseAttempt(node string) uint32 {
	n, _ := strconv.Atoi(strings.TrimPrefix(node, "attempt-"))
	return uint32(n)
}

// DistMetrics is a cluster-wide counter snapshot.
type DistMetrics struct {
	Commits    int64 // transactions durably decided commit
	Retries    int64 // abort-retry rounds across all roots
	Redelivers int64 // decision re-delivery rounds
	Unilateral int64 // participant abandon-aborts of idle unprepared attempts
	Queries    int64 // termination-protocol queries sent by participants
	Resolved   int64 // in-doubt transactions resolved by query
	InDoubt    int64 // currently prepared, undecided (should settle to 0)

	// Group-commit coalescing, summed over every log in the cluster
	// (coordinator + participants): force calls, the flush windows that
	// served them (one fsync each), and the largest single window.
	GroupForces   uint64
	GroupWindows  uint64
	GroupMaxBatch uint64

	Net  comm.NetStats
	Coal comm.CoalesceStats // TCP transport message coalescing
}

func (m DistMetrics) String() string {
	s := fmt.Sprintf("commits=%d retries=%d redelivers=%d unilateral=%d queries=%d resolved=%d in-doubt=%d net[sent=%d drop=%d dup=%d delay=%d reorder=%d part=%d]",
		m.Commits, m.Retries, m.Redelivers, m.Unilateral, m.Queries, m.Resolved, m.InDoubt,
		m.Net.Sent, m.Net.Dropped, m.Net.Duplicated, m.Net.Delayed, m.Net.Reordered, m.Net.Partitions)
	if m.GroupForces > 0 {
		s += fmt.Sprintf(" group[forces=%d windows=%d maxbatch=%d]", m.GroupForces, m.GroupWindows, m.GroupMaxBatch)
	}
	if m.Coal.Messages > 0 {
		s += fmt.Sprintf(" coal[msgs=%d flushes=%d maxbatch=%d]", m.Coal.Messages, m.Coal.Flushes, m.Coal.MaxBatch)
	}
	return s
}

// Cluster is a running distributed composite: the coordinator, one
// participant per component, and the shared transport. Crash and recover
// either side through its methods; Settle waits for the in-doubt set to
// drain; Audit re-verifies the committed history.
type Cluster struct {
	cfg    DistConfig
	topo   *Topology
	base   comm.Network
	faults *comm.FaultNetwork
	net    comm.Network
	crash  *distCrashState

	mu    sync.Mutex
	coord *Coordinator
	parts map[string]*Participant
}

// StartCluster builds and starts a fresh cluster.
func StartCluster(cfg DistConfig) (*Cluster, error) {
	cfg = cfg.normalized()
	if cfg.Topo == nil || len(cfg.Topo.Specs) == 0 {
		return nil, errors.New("sched: distributed cluster needs a topology")
	}
	for _, spec := range cfg.Topo.Specs {
		if spec.Name == coordName {
			return nil, fmt.Errorf("sched: component name %q is reserved for the coordinator", coordName)
		}
	}
	cl := &Cluster{cfg: cfg, topo: cfg.Topo, crash: &distCrashState{}, parts: map[string]*Participant{}}
	cl.base = cfg.Net
	if cl.base == nil {
		if cfg.Transport == "tcp" {
			cl.base = comm.NewTCPNetwork()
		} else {
			cl.base = comm.NewChanNetwork()
		}
	}
	cl.net = cl.base
	if cfg.NetFaults.Enabled() {
		cl.faults = comm.NewFaultNetwork(cl.base, cfg.NetFaults)
		cl.net = cl.faults
	}

	for _, spec := range cfg.Topo.Specs {
		p := newParticipant(spec.Name, spec, cfg, cl.crash)
		if p.store != nil {
			for item, v := range cfg.Seeds[spec.Name] {
				p.store.Set(item, v)
			}
			if cfg.WALRoot != "" {
				if err := cl.enablePartWAL(p); err != nil {
					cl.Close()
					return nil, err
				}
			}
		}
		ep, err := cl.net.Endpoint(spec.Name)
		if err != nil {
			cl.Close()
			return nil, err
		}
		p.connect(ep)
		p.start()
		cl.parts[spec.Name] = p
	}

	coord := newCoordinator(cfg, cfg.Topo, cl.crash)
	if cfg.WALRoot != "" {
		if err := cl.enableCoordWAL(coord); err != nil {
			cl.Close()
			return nil, err
		}
	}
	ep, err := cl.net.Endpoint(coordName)
	if err != nil {
		cl.Close()
		return nil, err
	}
	coord.connect(ep)
	coord.start(cfg.QueryAfter)
	cl.coord = coord
	return cl, nil
}

// enablePartWAL attaches a fresh log to a store-bearing participant:
// metadata plus one seed record per preloaded item, fsynced.
func (cl *Cluster) enablePartWAL(p *Participant) error {
	dir := partDir(cl.cfg.WALRoot, p.name)
	l, existing, err := wal.Open(dir, cl.walOptions())
	if err != nil {
		return err
	}
	if existing != 0 {
		l.Close()
		return fmt.Errorf("sched: participant %s: %w", p.name, ErrWALExists)
	}
	meta, _ := json.Marshal(partMeta{Version: 1, Part: p.name})
	recs := []wal.Record{{Type: wal.TypeMeta, Meta: meta}}
	snap := p.store.Snapshot()
	items := make([]string, 0, len(snap))
	for item := range snap {
		items = append(items, item)
	}
	sort.Strings(items)
	for _, item := range items {
		recs = append(recs, wal.Record{Type: wal.TypeSeed, Comp: p.name, Item: item, Prev: snap[item]})
	}
	if _, err := l.AppendBatch(recs); err != nil {
		l.Close()
		return err
	}
	if err := l.Sync(); err != nil {
		l.Close()
		return err
	}
	p.wal = l
	return nil
}

// enableCoordWAL attaches a fresh decision log to the coordinator.
func (cl *Cluster) enableCoordWAL(c *Coordinator) error {
	dir := coordDir(cl.cfg.WALRoot)
	l, existing, err := wal.Open(dir, cl.walOptions())
	if err != nil {
		return err
	}
	if existing != 0 {
		l.Close()
		return fmt.Errorf("sched: coordinator: %w", ErrWALExists)
	}
	meta, err := json.Marshal(walMeta{
		Version: 1, Protocol: cl.cfg.Protocol.String(),
		Topology: topologyToDoc(cl.topo), Dist: true,
	})
	if err != nil {
		l.Close()
		return err
	}
	if _, err := l.Append(wal.Record{Type: wal.TypeMeta, Meta: meta}); err != nil {
		l.Close()
		return err
	}
	if err := l.Sync(); err != nil {
		l.Close()
		return err
	}
	c.wal = l
	return nil
}

// Submit runs one root transaction through the coordinator.
func (cl *Cluster) Submit(name string, root Invocation) (*TxResult, error) {
	return cl.coordinator().Submit(name, root)
}

func (cl *Cluster) coordinator() *Coordinator {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.coord
}

func (cl *Cluster) participant(name string) *Participant {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.parts[name]
}

// SetCrash arms one crash-site injection (fires at most once).
func (cl *Cluster) SetCrash(d DistCrash) { cl.crash.arm(d) }

// CoordinatorCrashed reports whether the coordinator is currently down.
func (cl *Cluster) CoordinatorCrashed() bool {
	c := cl.coordinator()
	return c == nil || c.crashed.Load()
}

// CrashedParticipants lists the participants currently down, sorted.
// Callers watching for participant crash faults poll this and call
// RecoverParticipant — a dead participant only surfaces to clients as
// RPC timeouts, never as ErrCrashed.
func (cl *Cluster) CrashedParticipants() []string {
	cl.mu.Lock()
	var out []string
	for name, p := range cl.parts {
		if p.crashed.Load() {
			out = append(out, name)
		}
	}
	cl.mu.Unlock()
	sort.Strings(out)
	return out
}

// CrashCoordinator simulates a coordinator crash now.
func (cl *Cluster) CrashCoordinator() { cl.coordinator().crashNow() }

// CrashParticipant simulates a participant crash now.
func (cl *Cluster) CrashParticipant(name string) error {
	p := cl.participant(name)
	if p == nil {
		return fmt.Errorf("sched: unknown participant %q", name)
	}
	p.crashNow()
	return nil
}

// RecoverParticipant rebuilds a crashed participant from its log:
// baseline seeds, redo of every journaled apply and compensation in log
// order, undo (with fresh journaled compensations) of loser
// transactions, and re-registration of in-doubt transactions — prepared
// but undecided — whose locks are re-acquired at their original wait-die
// timestamps and whose outcomes the termination protocol resolves.
func (cl *Cluster) RecoverParticipant(name string) error {
	var spec ComponentSpec
	found := false
	for _, s := range cl.topo.Specs {
		if s.Name == name {
			spec, found = s, true
		}
	}
	if !found {
		return fmt.Errorf("sched: unknown participant %q", name)
	}
	old := cl.participant(name)
	if old != nil && !old.crashed.Load() {
		return fmt.Errorf("sched: participant %q has not crashed", name)
	}

	p := newParticipant(name, spec, cl.cfg, cl.crash)
	if p.store != nil && cl.cfg.WALRoot != "" {
		if err := cl.rebuildParticipant(p); err != nil {
			return err
		}
	}
	ep, err := cl.net.Endpoint(name)
	if err != nil {
		return err
	}
	p.connect(ep)
	p.start()
	cl.mu.Lock()
	cl.parts[name] = p
	cl.mu.Unlock()
	return nil
}

func (cl *Cluster) rebuildParticipant(p *Participant) error {
	dir := partDir(cl.cfg.WALRoot, p.name)
	recs, info, err := wal.ReadAll(dir)
	if err != nil {
		return err
	}

	// Analysis. Prepared state is last-wins per transaction: a decision
	// (or a fresh prepare of a later attempt) supersedes earlier marks.
	type pstate struct {
		attempt uint32
		ts      uint64
	}
	type applyRec struct {
		lsn uint64
		rec wal.Record
	}
	var (
		applies     []applyRec
		seeds       []wal.Record
		cancelled   = map[uint64]bool{}
		compensated = map[uint64]bool{}
		prepared    = map[string]pstate{}
		committed   = map[string]bool{}
		abortedAt   = map[string]uint32{}
	)
	for i, rec := range recs {
		lsn := info.FirstLSN + uint64(i)
		switch rec.Type {
		case wal.TypeSeed:
			seeds = append(seeds, rec)
		case wal.TypeApply:
			applies = append(applies, applyRec{lsn, rec})
		case wal.TypeApplyFail:
			cancelled[rec.Ref] = true
		case wal.TypeComp:
			compensated[rec.Ref] = true
		case wal.TypePrepare:
			prepared[rec.Txn] = pstate{attempt: parseAttempt(rec.Node), ts: rec.Seq}
		case wal.TypeDecision:
			if rec.Mode == "commit" {
				committed[rec.Txn] = true
			} else if at := parseAttempt(rec.Node); at > abortedAt[rec.Txn] {
				abortedAt[rec.Txn] = at
			}
			delete(prepared, rec.Txn)
		}
	}

	// Redo: seeds, then every surviving apply and compensation in a
	// single pass in log order. ModeWrite compensations write back Prev
	// and are non-commutative with later applies of other transactions,
	// so the replay must preserve the logged interleaving exactly —
	// compensated applies then net out, whatever the crash interleaved.
	for _, rec := range seeds {
		p.store.Set(rec.Item, rec.Prev)
	}
	for i, rec := range recs {
		lsn := info.FirstLSN + uint64(i)
		switch rec.Type {
		case wal.TypeApply:
			if cancelled[lsn] {
				continue
			}
		case wal.TypeComp:
		default:
			continue
		}
		if _, err := p.store.Apply(opOf(rec)); err != nil {
			return fmt.Errorf("sched: participant %s redo of %s record %d: %w", p.name, rec.Type, lsn, err)
		}
	}

	// Reopen for appending before the undo pass journals its CLRs.
	log, _, err := wal.Open(dir, cl.walOptions())
	if err != nil {
		return err
	}
	p.wal = log

	// Undo: un-compensated applies of transactions with no durable
	// outcome and no prepare — they can never commit (a commit decision
	// requires this participant's durable prepare), so presumed abort
	// applies. In-doubt transactions keep their effects.
	inDoubtUndo := map[string][]pundo{}
	for i := len(applies) - 1; i >= 0; i-- {
		lsn, rec := applies[i].lsn, applies[i].rec
		if cancelled[lsn] || compensated[lsn] || committed[rec.Txn] {
			continue
		}
		if _, ok := prepared[rec.Txn]; ok {
			// Rebuild the in-doubt transaction's undo log (in log order)
			// so a later abort decision can still compensate it.
			op := opOf(rec)
			undo := inDoubtUndo[rec.Txn]
			inDoubtUndo[rec.Txn] = append([]pundo{{op: op, res: data.Result{Prev: rec.Prev}, lsn: lsn}}, undo...)
			continue
		}
		inv, ok := data.Inverse(opOf(rec), data.Result{Prev: rec.Prev})
		if !ok {
			continue
		}
		if _, err := log.Append(wal.Record{
			Type: wal.TypeComp, Txn: rec.Txn, Comp: p.name,
			Item: inv.Item, Mode: string(inv.Mode), Impl: string(inv.Impl),
			Arg: inv.Arg, Ref: lsn,
		}); err != nil {
			return err
		}
		if _, err := p.store.Apply(inv); err != nil {
			return fmt.Errorf("sched: participant %s undo of record %d: %w", p.name, lsn, err)
		}
	}

	// Register in-doubt transactions: prepared, effects intact, locks
	// re-acquired at the original timestamps, outcome owed by the
	// coordinator (the sweeper's termination protocol collects it).
	for txn, st := range prepared {
		tx := &ptxn{
			attempt:   st.attempt,
			ts:        st.ts,
			steps:     map[string]*pdedup{},
			undo:      inDoubtUndo[txn],
			prepared:  true,
			lastTouch: time.Now(),
		}
		for _, u := range tx.undo {
			table, mode := p.modes, u.op.Mode
			switch p.protocol {
			case Global2PL:
				table, mode = p.rwTable, data.ModeWrite
			case NoCC:
				table = nil
			}
			if table != nil {
				deadline := time.Now().Add(cl.cfg.LockWait)
				if err := p.lm.acquireUntil(table, u.op.Item, mode, txn, st.ts, WaitDie, nil, deadline); err != nil {
					return fmt.Errorf("sched: participant %s re-acquiring %s for in-doubt %s: %w", p.name, u.op.Item, txn, err)
				}
			}
		}
		p.txns[txn] = tx
	}
	for txn := range committed {
		p.resolved[txn] = true
	}
	for txn, at := range abortedAt {
		if at > p.aborted[txn] {
			p.aborted[txn] = at
		}
	}
	return nil
}

// RecoverCoordinator rebuilds a crashed coordinator from its decision
// log: the committed projection (nodes, events) for re-verification, the
// commit set for the termination protocol, and re-delivery of every
// decision without a TypeEnd. Aborts are presumed — anything not durably
// committed answers "abort" to queries. The timestamp source jumps an
// epoch so fresh transactions can never collide with in-doubt locks held
// under pre-crash timestamps.
func (cl *Cluster) RecoverCoordinator() error {
	old := cl.coordinator()
	if old != nil && !old.crashed.Load() {
		return errors.New("sched: coordinator has not crashed")
	}
	if cl.cfg.WALRoot == "" {
		return errors.New("sched: volatile coordinator cannot recover")
	}
	dir := coordDir(cl.cfg.WALRoot)
	recs, _, err := wal.ReadAll(dir)
	if err != nil {
		return err
	}
	if len(recs) == 0 || recs[0].Type != wal.TypeMeta {
		return errors.New("sched: coordinator log has no metadata record")
	}
	var meta walMeta
	if err := json.Unmarshal(recs[0].Meta, &meta); err != nil {
		return fmt.Errorf("sched: coordinator metadata: %w", err)
	}
	if !meta.Dist {
		return errors.New("sched: log is not a distributed coordinator log (use Recover)")
	}
	proto, err := ParseProtocol(meta.Protocol)
	if err != nil {
		return err
	}
	topo, err := topologyFromDoc(meta.Topology, false)
	if err != nil {
		return err
	}
	cfg := cl.cfg
	cfg.Protocol = proto

	c := newCoordinator(cfg, topo, cl.crash)
	var maxSeq, maxTS uint64
	staged := map[string]*stagedRecord{}
	stagedOf := func(txn string) *stagedRecord {
		if staged[txn] == nil {
			staged[txn] = newStagedRecord()
		}
		return staged[txn]
	}
	for _, rec := range recs {
		switch rec.Type {
		case wal.TypeNode:
			stagedOf(rec.Txn).declareNode(nodeDecl{
				id: model.NodeID(rec.Node), parent: model.NodeID(rec.Parent), sched: rec.Sched,
			})
		case wal.TypeEvent:
			stagedOf(rec.Txn).addEvent(event{
				seq: rec.Seq, comp: rec.Comp, op: model.NodeID(rec.Node),
				parentTx: model.NodeID(rec.Parent), item: rec.Item, mode: data.Mode(rec.Mode),
			})
			if rec.Seq > maxSeq {
				maxSeq = rec.Seq
			}
		case wal.TypeDecision:
			if rec.Mode != "commit" {
				continue
			}
			var parts []string
			json.Unmarshal(rec.Meta, &parts)
			ct := &coTxn{attempt: parseAttempt(rec.Node), parts: parts, pending: map[string]bool{}}
			for _, p := range parts {
				ct.pending[p] = true
			}
			c.committed[rec.Txn] = ct
			c.rec.merge(stagedOf(rec.Txn))
			delete(staged, rec.Txn)
			if rec.Seq > maxTS {
				maxTS = rec.Seq
			}
		case wal.TypeEnd:
			if ct := c.committed[rec.Txn]; ct != nil {
				ct.ended = true
				ct.pending = map[string]bool{}
			}
		}
	}
	c.clock.Store(maxSeq)
	c.tsc.Store(maxTS + 1<<32)

	log, _, err := wal.Open(dir, cl.walOptions())
	if err != nil {
		return err
	}
	c.wal = log
	ep, err := cl.net.Endpoint(coordName)
	if err != nil {
		log.Close()
		return err
	}
	c.connect(ep)
	c.start(cl.cfg.QueryAfter)
	cl.mu.Lock()
	cl.coord = c
	cl.mu.Unlock()
	return nil
}

// RecoverCluster rebuilds a whole cluster from its durability root in a
// fresh process — the cross-process analogue of Recover for distributed
// runs. Protocol and topology come from the coordinator log's metadata;
// every store-bearing participant is rebuilt from its own log
// (in-doubt transactions re-registered with their locks); the recovered
// coordinator then re-delivers forced decisions and answers termination
// queries, so a Settle call drains the in-doubt set. cfg needs WALRoot
// plus any transport/RPC policy overrides; Protocol, Topo and Seeds are
// ignored (the logs are authoritative).
func RecoverCluster(cfg DistConfig) (*Cluster, error) {
	cfg = cfg.normalized()
	if cfg.WALRoot == "" {
		return nil, errors.New("sched: RecoverCluster needs a WAL root")
	}
	recs, _, err := wal.ReadAll(coordDir(cfg.WALRoot))
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 || recs[0].Type != wal.TypeMeta {
		return nil, errors.New("sched: coordinator log has no metadata record")
	}
	var meta walMeta
	if err := json.Unmarshal(recs[0].Meta, &meta); err != nil {
		return nil, fmt.Errorf("sched: coordinator metadata: %w", err)
	}
	if !meta.Dist {
		return nil, fmt.Errorf("sched: %q is not a distributed log root (use Recover)", cfg.WALRoot)
	}
	proto, err := ParseProtocol(meta.Protocol)
	if err != nil {
		return nil, err
	}
	topo, err := topologyFromDoc(meta.Topology, false)
	if err != nil {
		return nil, err
	}
	cfg.Protocol, cfg.Topo, cfg.Seeds = proto, topo, nil

	cl := &Cluster{cfg: cfg, topo: topo, crash: &distCrashState{}, parts: map[string]*Participant{}}
	cl.base = cfg.Net
	if cl.base == nil {
		if cfg.Transport == "tcp" {
			cl.base = comm.NewTCPNetwork()
		} else {
			cl.base = comm.NewChanNetwork()
		}
	}
	cl.net = cl.base
	if cfg.NetFaults.Enabled() {
		cl.faults = comm.NewFaultNetwork(cl.base, cfg.NetFaults)
		cl.net = cl.faults
	}
	for _, spec := range topo.Specs {
		if err := cl.RecoverParticipant(spec.Name); err != nil {
			cl.Close()
			return nil, err
		}
	}
	if err := cl.RecoverCoordinator(); err != nil {
		cl.Close()
		return nil, err
	}
	return cl, nil
}

// Settle waits until no transaction is in doubt anywhere: every
// committed decision acked by every participant, every prepared
// participant transaction resolved. The re-delivery loop and the
// termination protocol do the work; Settle just watches.
func (cl *Cluster) Settle(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		pending := cl.coordinator().unended()
		doubt := 0
		cl.mu.Lock()
		parts := make([]*Participant, 0, len(cl.parts))
		for _, p := range cl.parts {
			parts = append(parts, p)
		}
		cl.mu.Unlock()
		for _, p := range parts {
			if !p.crashed.Load() {
				doubt += p.inDoubt()
			}
		}
		if pending == 0 && doubt == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("sched: cluster did not settle: %d unacked decisions, %d in-doubt participant transactions", pending, doubt)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// RecordedSystem assembles the committed execution for the checker.
func (cl *Cluster) RecordedSystem() *model.System { return cl.coordinator().RecordedSystem() }

// Audit re-verifies the committed history against the Comp-C criterion.
func (cl *Cluster) Audit() (*front.Verdict, error) {
	sys := cl.RecordedSystem()
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return front.Check(sys, front.Options{})
}

// StoreSnapshot returns a copy of one participant's store state.
func (cl *Cluster) StoreSnapshot(name string) map[string]int64 {
	p := cl.participant(name)
	if p == nil || p.store == nil {
		return nil
	}
	return p.store.Snapshot()
}

// Metrics snapshots cluster-wide counters.
func (cl *Cluster) Metrics() DistMetrics {
	m := DistMetrics{}
	addGroup := func(l *wal.Log) {
		if l == nil {
			return
		}
		gs := l.GroupStats()
		m.GroupForces += gs.Forces
		m.GroupWindows += gs.Windows
		if gs.MaxBatch > m.GroupMaxBatch {
			m.GroupMaxBatch = gs.MaxBatch
		}
	}
	if c := cl.coordinator(); c != nil {
		m.Commits = c.commits.Load()
		m.Retries = c.abortRetry.Load()
		m.Redelivers = c.redelivers.Load()
		addGroup(c.wal)
	}
	cl.mu.Lock()
	parts := make([]*Participant, 0, len(cl.parts))
	for _, p := range cl.parts {
		parts = append(parts, p)
	}
	cl.mu.Unlock()
	for _, p := range parts {
		m.Unilateral += p.unilats.Load()
		m.Queries += p.queries.Load()
		m.Resolved += p.resolves.Load()
		if !p.crashed.Load() {
			m.InDoubt += int64(p.inDoubt())
		}
		addGroup(p.wal)
	}
	if cl.faults != nil {
		m.Net = cl.faults.Stats()
	}
	if tcp, ok := cl.base.(*comm.TCPNetwork); ok {
		m.Coal = tcp.CoalesceStats()
	}
	return m
}

// NetStats returns the fault injector's traffic counters (zero without
// injection), with the TCP transport's frames-vs-messages coalescing
// counters merged in when the cluster runs over TCP.
func (cl *Cluster) NetStats() comm.NetStats {
	var st comm.NetStats
	if cl.faults != nil {
		st = cl.faults.Stats()
	}
	if tcp, ok := cl.base.(*comm.TCPNetwork); ok {
		st.Coalesce = tcp.CoalesceStats()
	}
	return st
}

// Close shuts the whole cluster down cleanly.
func (cl *Cluster) Close() error {
	cl.mu.Lock()
	coord := cl.coord
	parts := make([]*Participant, 0, len(cl.parts))
	for _, p := range cl.parts {
		parts = append(parts, p)
	}
	cl.mu.Unlock()
	if coord != nil {
		coord.close()
	}
	for _, p := range parts {
		p.close()
	}
	if cl.net != nil {
		return cl.net.Close()
	}
	return nil
}
