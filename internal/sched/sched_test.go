package sched

import (
	"fmt"
	"sync"
	"testing"

	"compositetx/internal/data"
	"compositetx/internal/front"
)

// realProtocols are the disciplines that must only produce correct
// executions.
var realProtocols = []Protocol{OpenNested, ClosedNested, Global2PL, Hybrid}

// checkRecorded validates and Comp-C-checks the runtime's recorded
// execution.
func checkRecorded(t *testing.T, rt *Runtime) {
	t.Helper()
	sys := rt.RecordedSystem()
	if err := sys.Validate(); err != nil {
		t.Fatalf("[%s] recorded execution must validate: %v", rt.Protocol(), err)
	}
	v, err := front.Check(sys, front.Options{})
	if err != nil {
		t.Fatalf("[%s] Check: %v", rt.Protocol(), err)
	}
	if !v.Correct {
		t.Fatalf("[%s] recorded execution must be Comp-C: %s", rt.Protocol(), v)
	}
}

func TestSingleTransactionAllProtocols(t *testing.T) {
	for _, p := range realProtocols {
		t.Run(p.String(), func(t *testing.T) {
			rt := BankTopology().NewRuntime(p)
			res, err := rt.Submit("T1", Invocation{
				Component: "bank",
				Steps: []Step{
					{Invoke: &Invocation{Component: "east", Item: "acct1", Mode: data.ModeIncr,
						Steps: []Step{{Op: &data.Op{Mode: data.ModeIncr, Item: "acct1", Arg: 100}}}}},
					{Invoke: &Invocation{Component: "east", Item: "acct1", Mode: data.ModeRead,
						Steps: []Step{{Op: &data.Op{Mode: data.ModeRead, Item: "acct1"}}}}},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Values) != 1 || res.Values[0] != 100 {
				t.Fatalf("read values = %v, want [100]", res.Values)
			}
			if got := rt.Store("east").Get("acct1"); got != 100 {
				t.Fatalf("acct1 = %d, want 100", got)
			}
			m := rt.Metrics()
			if m.Commits != 1 || m.LeafOps != 2 || m.Invokes != 2 {
				t.Fatalf("metrics = %+v", m)
			}
			checkRecorded(t, rt)
		})
	}
}

func TestConcurrentDepositsAllProtocols(t *testing.T) {
	// 40 concurrent deposits of 1 on each of two accounts; every protocol
	// must preserve the invariant (atomic increments, compensation-safe)
	// and record a Comp-C execution.
	const n = 40
	for _, p := range realProtocols {
		t.Run(p.String(), func(t *testing.T) {
			rt := BankTopology().NewRuntime(p)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					branch := "east"
					if i%2 == 0 {
						branch = "west"
					}
					_, err := rt.Submit(fmt.Sprintf("T%d", i+1), Invocation{
						Component: "bank",
						Steps: []Step{
							{Invoke: &Invocation{Component: branch, Item: "acct", Mode: data.ModeIncr,
								Steps: []Step{{Op: &data.Op{Mode: data.ModeIncr, Item: "acct", Arg: 1}}}}},
							{Invoke: &Invocation{Component: "east", Item: "log", Mode: data.ModeIncr,
								Steps: []Step{{Op: &data.Op{Mode: data.ModeIncr, Item: "log", Arg: 1}}}}},
						},
					})
					if err != nil {
						t.Error(err)
					}
				}(i)
			}
			wg.Wait()
			east := rt.Store("east").Get("acct")
			west := rt.Store("west").Get("acct")
			if east+west != n {
				t.Fatalf("accounts sum = %d, want %d", east+west, n)
			}
			if got := rt.Store("east").Get("log"); got != n {
				t.Fatalf("log = %d, want %d", got, n)
			}
			if m := rt.Metrics(); m.Commits != n {
				t.Fatalf("commits = %d, want %d", m.Commits, n)
			}
			checkRecorded(t, rt)
		})
	}
}

func TestGeneratedWorkloadsAreCompC(t *testing.T) {
	// Random typed workloads over all three topologies: every real
	// protocol must produce Comp-C executions under real concurrency.
	topos := map[string]*Topology{
		"stack":   StackTopology(3),
		"bank":    BankTopology(),
		"diamond": DiamondTopology(),
	}
	for name, topo := range topos {
		for _, p := range realProtocols {
			if p == OpenNested && name == "diamond" {
				continue // unsound there by design; see TestOpenNestedUnsoundOnDiamond
			}
			t.Run(name+"/"+p.String(), func(t *testing.T) {
				rt := topo.NewRuntime(p)
				progs := GenPrograms(topo, WorkloadParams{
					Roots: 30, StepsPerTx: 3, Items: 4,
					ReadRatio: 0.3, WriteRatio: 0.3, Seed: 42,
				})
				if err := Run(rt, progs, 8); err != nil {
					t.Fatal(err)
				}
				if m := rt.Metrics(); m.Commits != 30 {
					t.Fatalf("commits = %d, want 30", m.Commits)
				}
				checkRecorded(t, rt)
			})
		}
	}
}

// TestOpenNestedUnsoundOnDiamond reproduces the paper's Figure 3
// interference with the runtime: two roots that share no component
// scheduler interleave crossed writes on a shared bottom component. Pure
// open nesting releases the bottom locks at subtransaction commit, so the
// crossed orders both persist and the recorded execution is provably not
// Comp-C — the checker catches a real concurrency bug.
func TestOpenNestedUnsoundOnDiamond(t *testing.T) {
	rt := DiamondTopology().NewRuntime(OpenNested)
	// Orchestrated interleaving: TA writes x, then (after TB wrote y) both
	// write the other item.
	aWroteX := make(chan struct{})
	bWroteY := make(chan struct{})
	var onceX, onceY sync.Once

	write := func(item string) *Invocation {
		return &Invocation{Component: "ledger", Item: item, Mode: data.ModeWrite,
			Steps: []Step{{Op: &data.Op{Mode: data.ModeWrite, Item: item, Arg: 1}}}}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := rt.Submit("TA", Invocation{
			Component: "agencyA",
			Steps: []Step{
				{Invoke: write("x")},
				{Sync: func() { onceX.Do(func() { close(aWroteX) }); <-bWroteY }, Invoke: write("y")},
			},
		})
		if err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		_, err := rt.Submit("TB", Invocation{
			Component: "agencyB",
			Steps: []Step{
				{Sync: func() { <-aWroteX }, Invoke: write("y")},
				{Sync: func() { onceY.Do(func() { close(bWroteY) }) }, Invoke: write("x")},
			},
		})
		if err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()

	sys := rt.RecordedSystem()
	validateErr := sys.Validate()
	var compC bool
	if validateErr == nil {
		var err error
		compC, err = front.IsCompC(sys)
		if err != nil {
			t.Fatal(err)
		}
	}
	if validateErr == nil && compC {
		t.Fatal("open nesting on a diamond with crossed writes must yield a detectable violation")
	}
}

// TestHybridSoundOnSameInterleaving: the same orchestrated scenario under
// the Hybrid protocol cannot interleave — the ledger is a join point, so
// TA's write lock on x is held to root commit and TB's crossed write
// blocks. The recorded execution is Comp-C.
func TestHybridSoundOnSameInterleaving(t *testing.T) {
	rt := DiamondTopology().NewRuntime(Hybrid)
	aWroteX := make(chan struct{})
	var onceA sync.Once

	write := func(item string) *Invocation {
		return &Invocation{Component: "ledger", Item: item, Mode: data.ModeWrite,
			Steps: []Step{{Op: &data.Op{Mode: data.ModeWrite, Item: item, Arg: 1}}}}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := rt.Submit("TA", Invocation{
			Component: "agencyA",
			Steps: []Step{
				{Invoke: write("x")},
				{Sync: func() { onceA.Do(func() { close(aWroteX) }) }, Invoke: write("y")},
			},
		}); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		if _, err := rt.Submit("TB", Invocation{
			Component: "agencyB",
			Steps: []Step{
				{Sync: func() { <-aWroteX }, Invoke: write("y")},
				{Invoke: write("x")},
			},
		}); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	checkRecorded(t, rt)
}

// TestNoCCViolationDetected: without concurrency control, a classic lost
// interleaving is recorded and flagged.
func TestNoCCViolationDetected(t *testing.T) {
	rt := BankTopology().NewRuntime(NoCC)
	step1 := make(chan struct{})
	step2 := make(chan struct{})
	var once1, once2 sync.Once
	write := func(item string) *Invocation {
		return &Invocation{Component: "east", Item: item, Mode: data.ModeWrite,
			Steps: []Step{{Op: &data.Op{Mode: data.ModeWrite, Item: item, Arg: 1}}}}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := rt.Submit("T1", Invocation{Component: "bank", Steps: []Step{
			{Invoke: write("x")},
			{Sync: func() { once1.Do(func() { close(step1) }); <-step2 }, Invoke: write("y")},
		}})
		if err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		_, err := rt.Submit("T2", Invocation{Component: "bank", Steps: []Step{
			{Sync: func() { <-step1 }, Invoke: write("y")},
			{Sync: func() { once2.Do(func() { close(step2) }) }, Invoke: write("x")},
		}})
		if err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()

	sys := rt.RecordedSystem()
	if err := sys.Validate(); err == nil {
		ok, err := front.IsCompC(sys)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatal("NoCC crossed writes must be detected as incorrect")
		}
	}
}

// TestAbortCompensation: a younger transaction is sacrificed by wait-die,
// its partial effects are compensated, and it retries to success.
func TestAbortCompensation(t *testing.T) {
	rt := BankTopology().NewRuntime(ClosedNested)
	hold := make(chan struct{})
	t1Locked := make(chan struct{})
	var onceLocked, onceHold sync.Once

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := rt.Submit("T1", Invocation{Component: "bank", Steps: []Step{
			{Invoke: &Invocation{Component: "east", Item: "x", Mode: data.ModeWrite,
				Steps: []Step{{Op: &data.Op{Mode: data.ModeWrite, Item: "x", Arg: 10}}}}},
			{Sync: func() { onceLocked.Do(func() { close(t1Locked) }); <-hold }, Invoke: &Invocation{
				Component: "east", Item: "done", Mode: data.ModeIncr,
				Steps: []Step{{Op: &data.Op{Mode: data.ModeIncr, Item: "done", Arg: 1}}}}},
		}})
		if err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		<-t1Locked
		// T2 is younger (submitted later): writes y (succeeds) then x
		// (conflicts with T1's root-held lock => dies, compensates the y
		// write, retries until T1 commits).
		_, err := rt.Submit("T2", Invocation{Component: "bank", Steps: []Step{
			{Invoke: &Invocation{Component: "east", Item: "y", Mode: data.ModeWrite,
				Steps: []Step{{Op: &data.Op{Mode: data.ModeWrite, Item: "y", Arg: 77}}}}},
			{Sync: func() { onceHold.Do(func() { close(hold) }) },
				Invoke: &Invocation{Component: "east", Item: "x", Mode: data.ModeWrite,
					Steps: []Step{{Op: &data.Op{Mode: data.ModeWrite, Item: "x", Arg: 20}}}}},
		}})
		if err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()

	m := rt.Metrics()
	if m.Aborts < 1 {
		t.Fatalf("expected at least one wait-die sacrifice, metrics = %+v", m)
	}
	if m.Commits != 2 {
		t.Fatalf("commits = %d, want 2", m.Commits)
	}
	if got := rt.Store("east").Get("x"); got != 20 {
		t.Fatalf("x = %d, want 20 (T2 committed last)", got)
	}
	if got := rt.Store("east").Get("y"); got != 77 {
		t.Fatalf("y = %d, want 77", got)
	}
	checkRecorded(t, rt)
}

func TestSubmitUnknownComponent(t *testing.T) {
	rt := BankTopology().NewRuntime(OpenNested)
	if _, err := rt.Submit("T1", Invocation{Component: "nope"}); err == nil {
		t.Fatal("unknown component must error")
	}
}

func TestEmptyAndBadSteps(t *testing.T) {
	rt := BankTopology().NewRuntime(OpenNested)
	if _, err := rt.Submit("T1", Invocation{Component: "bank", Steps: []Step{{}}}); err == nil {
		t.Fatal("empty step must error")
	}
	if _, err := rt.Submit("T2", Invocation{Component: "bank", Steps: []Step{
		{Op: &data.Op{Mode: data.ModeRead, Item: "x"}},
	}}); err == nil {
		t.Fatal("leaf op on a store-less component must error")
	}
}

func TestRecursionRejected(t *testing.T) {
	rt := BankTopology().NewRuntime(OpenNested)
	if _, err := rt.Submit("T1", Invocation{Component: "bank", Steps: []Step{
		{Invoke: &Invocation{Component: "bank", Item: "x", Mode: data.ModeRead}},
	}}); err == nil {
		t.Fatal("self-invocation must error")
	}
}

func TestTopologyJoinPoints(t *testing.T) {
	rt := DiamondTopology().NewRuntime(Hybrid)
	if !rt.comps["ledger"].holdToRoot {
		t.Error("ledger is a join point")
	}
	if rt.comps["airline"].holdToRoot {
		t.Error("airline has a single caller; no hold-to-root")
	}
	stack := StackTopology(3).NewRuntime(Hybrid)
	for name, c := range stack.comps {
		if c.holdToRoot {
			t.Errorf("stack component %s should not be a join point", name)
		}
	}
}

func TestSequencesRecorded(t *testing.T) {
	rt := StackTopology(2).NewRuntime(ClosedNested)
	progs := GenPrograms(StackTopology(2), WorkloadParams{
		Roots: 5, StepsPerTx: 2, Items: 2, ReadRatio: 0.3, WriteRatio: 0.3, Seed: 1,
	})
	if err := Run(rt, progs, 4); err != nil {
		t.Fatal(err)
	}
	seqs := rt.Sequences()
	if len(seqs) == 0 {
		t.Fatal("no sequences recorded")
	}
	total := 0
	for _, s := range seqs {
		total += len(s)
	}
	m := rt.Metrics()
	if int64(total) != m.LeafOps+m.Invokes {
		t.Fatalf("sequence events = %d, want %d", total, m.LeafOps+m.Invokes)
	}
}
