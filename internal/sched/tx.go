package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"compositetx/internal/data"
	"compositetx/internal/model"
)

// Step is one operation of a transaction program: either a leaf operation
// on the current component's store, or the invocation of a subtransaction
// on a child component. Exactly one field must be set.
type Step struct {
	Op     *data.Op
	Invoke *Invocation

	// Sync, if set, runs before the step executes. It is a test and demo
	// seam for forcing specific interleavings (e.g. to reproduce the
	// Figure 3 interference deterministically); it is never recorded.
	Sync func()

	// Fail, if set, aborts the whole transaction at this step with an
	// application error: every operation applied so far is compensated in
	// reverse order, all locks are released, the transaction is NOT
	// retried, and nothing of it appears in the recorded execution.
	Fail error
}

// Invocation is a tree-shaped (sub)transaction program. At the caller it
// appears as one semantic operation (Item, Mode) — the unit the caller's
// scheduler locks and declares conflicts over; its Steps execute at the
// named component.
type Invocation struct {
	Component string    // component executing this (sub)transaction
	Item      string    // semantic lock item at the caller
	Mode      data.Mode // semantic lock mode at the caller
	Steps     []Step
}

// TxResult reports a committed transaction.
type TxResult struct {
	Root    model.NodeID // node ID of the committed root transaction
	Retries int          // wait-die sacrifices before the commit
	Values  []int64      // results of the leaf reads, in program order
}

// ErrTooManyRetries is returned when a transaction exceeds MaxRetries.
var ErrTooManyRetries = errors.New("sched: transaction exceeded retry budget")

// ErrClientAbort wraps an application-initiated abort (Step.Fail): the
// transaction is rolled back (compensated) and not retried.
var ErrClientAbort = errors.New("sched: transaction aborted by client")

// attempt carries the per-attempt execution state: the undo log, the lock
// owners created so far (for release on abort or commit), and the staged
// execution record.
type attempt struct {
	root   model.NodeID
	ts     uint64
	owners []ownerRef
	undo   []undoEntry
	stage  *stagedRecord
	values []int64
	rng    *rand.Rand
}

type ownerRef struct {
	lm    *lockManager
	owner string
}

type undoEntry struct {
	store *data.Store
	op    data.Op
	res   data.Result
}

// Submit runs the program as a root transaction, retrying on wait-die
// sacrifices until it commits. It is safe to call from many goroutines.
func (r *Runtime) Submit(name string, root Invocation) (*TxResult, error) {
	if _, ok := r.comps[root.Component]; !ok {
		return nil, fmt.Errorf("sched: unknown component %q", root.Component)
	}
	ts := r.tsc.Add(1)
	rootID := model.NodeID(name)
	retries := 0
	for {
		a := &attempt{
			root:  rootID,
			ts:    ts,
			stage: newStagedRecord(),
			rng:   rand.New(rand.NewSource(int64(ts)*7919 + int64(retries))),
		}
		a.stage.declareNode(nodeDecl{id: rootID, sched: root.Component})
		err := r.exec(a, rootID, string(rootID), root)
		if err == nil {
			// Root commit: release every lock and publish the record.
			for i := len(a.owners) - 1; i >= 0; i-- {
				a.owners[i].lm.release(a.owners[i].owner)
			}
			r.wfg.clear(a.ts)
			r.mu.Lock()
			r.rec.merge(a.stage)
			r.mu.Unlock()
			r.commits.Add(1)
			return &TxResult{Root: rootID, Retries: retries, Values: a.values}, nil
		}
		if !errors.Is(err, ErrDie) {
			r.rollback(a)
			if errors.Is(err, ErrClientAbort) {
				r.clientAborts.Add(1)
			}
			return nil, err
		}
		r.rollback(a)
		r.aborts.Add(1)
		retries++
		if retries > r.MaxRetries {
			return nil, ErrTooManyRetries
		}
		// Jittered exponential backoff before retrying with the same
		// timestamp (the transaction ages and eventually wins under
		// wait-die). Flat backoff thrashes badly when the conflicting
		// older transaction holds its locks for milliseconds.
		shift := retries
		if shift > 6 {
			shift = 6
		}
		base := (50 << shift) // 50µs .. 3.2ms
		time.Sleep(time.Duration(base/2+a.rng.Intn(base)) * time.Microsecond)
	}
}

// rollback compensates the attempt's applied operations in reverse order
// and releases its locks.
func (r *Runtime) rollback(a *attempt) {
	for i := len(a.undo) - 1; i >= 0; i-- {
		u := a.undo[i]
		if inv, ok := data.Inverse(u.op, u.res); ok {
			// Compensation cannot fail on the integer store.
			if _, err := u.store.Apply(inv); err != nil {
				panic(fmt.Sprintf("sched: compensation failed: %v", err))
			}
		}
	}
	a.undo = a.undo[:0]
	for i := len(a.owners) - 1; i >= 0; i-- {
		a.owners[i].lm.release(a.owners[i].owner)
	}
	a.owners = a.owners[:0]
	r.wfg.clear(a.ts)
}

// exec runs one (sub)transaction at its component. node is the node ID of
// this (sub)transaction; owner is the lock-owner key for locks it takes
// (its own node ID under open nesting, the root attempt under closed
// nesting and global 2PL).
func (r *Runtime) exec(a *attempt, node model.NodeID, owner string, inv Invocation) error {
	comp := r.comps[inv.Component]
	if comp == nil {
		return fmt.Errorf("sched: unknown component %q", inv.Component)
	}
	stepOwner := r.lockOwner(a, comp, owner)

	for i, step := range inv.Steps {
		childID := model.NodeID(fmt.Sprintf("%s/%d", node, i+1))
		if step.Sync != nil {
			step.Sync()
		}
		if step.Fail != nil {
			return fmt.Errorf("%w: step %s: %w", ErrClientAbort, childID, step.Fail)
		}
		switch {
		case step.Op != nil && step.Invoke != nil:
			return fmt.Errorf("sched: step %s has both Op and Invoke", childID)
		case step.Op != nil:
			if comp.store == nil {
				return fmt.Errorf("sched: component %q has no store for %s", comp.name, step.Op)
			}
			if err := r.leafOp(a, comp, node, childID, stepOwner, *step.Op); err != nil {
				return err
			}
		case step.Invoke != nil:
			if err := r.invoke(a, comp, node, childID, stepOwner, *step.Invoke); err != nil {
				return err
			}
		default:
			return fmt.Errorf("sched: empty step %s", childID)
		}
	}
	// Subtransaction commit at this component: under open nesting (and
	// under Hybrid away from join points) its locks are released now; the
	// caller keeps only its own semantic lock on this invocation.
	if (r.protocol == OpenNested || r.protocol == Hybrid) && stepOwner != string(a.root) {
		comp.lm.release(stepOwner)
		a.dropOwner(comp.lm, stepOwner)
	}
	return nil
}

// lockOwner decides the owner key for locks taken while executing an
// instance at comp: the root attempt when locks must survive to root
// commit, the instance itself when early release is allowed.
func (r *Runtime) lockOwner(a *attempt, comp *component, instance string) string {
	switch r.protocol {
	case ClosedNested, Global2PL:
		return string(a.root)
	case Hybrid:
		if comp.holdToRoot {
			return string(a.root)
		}
		return instance
	default:
		return instance
	}
}

// leafOp locks and applies a leaf operation.
func (r *Runtime) leafOp(a *attempt, comp *component, parent model.NodeID, id model.NodeID, owner string, op data.Op) error {
	switch r.protocol {
	case Global2PL:
		// One global lock space over component-qualified items, classical
		// read/write modes only (increments — and any custom mode not
		// physically a read — are read-modify-writes).
		mode := op.Physical()
		if mode != data.ModeRead {
			mode = data.ModeWrite
		}
		if err := r.acquire(a, r.globalLM, r.rwTable, comp.name+"/"+op.Item, mode, string(a.root)); err != nil {
			return err
		}
	case NoCC:
		// No isolation.
	default:
		if err := r.acquire(a, comp.lm, comp.modes, op.Item, op.Mode, owner); err != nil {
			return err
		}
	}
	res, err := comp.store.Apply(op)
	if err != nil {
		return err
	}
	r.leafOps.Add(1)
	a.undo = append(a.undo, undoEntry{store: comp.store, op: op, res: res})
	if op.Physical() == data.ModeRead {
		a.values = append(a.values, res.Value)
	}
	seq := r.seq.Add(1)
	a.stage.declareNode(nodeDecl{id: id, parent: parent})
	a.stage.addEvent(event{seq: seq, comp: comp.name, op: id, parentTx: parent, item: op.Item, mode: op.Mode})
	return nil
}

// invoke locks the semantic operation at the caller and delegates the
// subtransaction to the child component.
func (r *Runtime) invoke(a *attempt, caller *component, parent model.NodeID, id model.NodeID, owner string, inv Invocation) error {
	child := r.comps[inv.Component]
	if child == nil {
		return fmt.Errorf("sched: unknown component %q", inv.Component)
	}
	if child == caller {
		return fmt.Errorf("sched: component %q invoking itself (recursion is not allowed)", caller.name)
	}
	r.invokes.Add(1)

	// The semantic identity of an invocation at the caller is the pair
	// (component, item): operations on the same item name routed to
	// different components touch disjoint data and must not be declared
	// conflicting (nor serialized) at the caller.
	semItem := inv.Component + "/" + inv.Item

	var seq uint64
	switch r.protocol {
	case Global2PL, NoCC:
		// No component-level locks; the event sequence is assigned at
		// completion, where lock strictness (Global2PL) makes the order
		// consistent with the leaf serialization.
	default:
		if err := r.acquire(a, caller.lm, caller.modes, semItem, inv.Mode, owner); err != nil {
			return err
		}
		seq = r.seq.Add(1)
	}

	childOwner := string(id)
	if err := r.exec(a, id, childOwner, inv); err != nil {
		return err
	}
	if seq == 0 {
		seq = r.seq.Add(1)
	}
	a.stage.declareNode(nodeDecl{id: id, parent: parent, sched: inv.Component})
	a.stage.addEvent(event{seq: seq, comp: caller.name, op: id, parentTx: parent, item: semItem, mode: inv.Mode})
	return nil
}

// acquire wraps lockManager.acquire with owner bookkeeping.
func (r *Runtime) acquire(a *attempt, lm *lockManager, table *data.ModeTable, item string, mode data.Mode, owner string) error {
	if err := lm.acquire(table, item, mode, owner, a.ts, r.Deadlock, r.wfg); err != nil {
		return err
	}
	a.addOwner(lm, owner)
	return nil
}

func (a *attempt) addOwner(lm *lockManager, owner string) {
	for _, o := range a.owners {
		if o.lm == lm && o.owner == owner {
			return
		}
	}
	a.owners = append(a.owners, ownerRef{lm: lm, owner: owner})
}

func (a *attempt) dropOwner(lm *lockManager, owner string) {
	for i, o := range a.owners {
		if o.lm == lm && o.owner == owner {
			a.owners = append(a.owners[:i], a.owners[i+1:]...)
			return
		}
	}
}
