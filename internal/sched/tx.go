package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"compositetx/internal/data"
	"compositetx/internal/model"
	"compositetx/internal/wal"
)

// Step is one operation of a transaction program: either a leaf operation
// on the current component's store, or the invocation of a subtransaction
// on a child component. Exactly one field must be set.
type Step struct {
	Op     *data.Op
	Invoke *Invocation

	// Sync, if set, runs before the step executes. It is a test and demo
	// seam for forcing specific interleavings (e.g. to reproduce the
	// Figure 3 interference deterministically); it is never recorded.
	Sync func()

	// Fail, if set, aborts the whole transaction at this step with an
	// application error: every operation applied so far is compensated in
	// reverse order, all locks are released, the transaction is NOT
	// retried, and nothing of it appears in the recorded execution.
	Fail error
}

// Invocation is a tree-shaped (sub)transaction program. At the caller it
// appears as one semantic operation (Item, Mode) — the unit the caller's
// scheduler locks and declares conflicts over; its Steps execute at the
// named component.
type Invocation struct {
	Component string    // component executing this (sub)transaction
	Item      string    // semantic lock item at the caller
	Mode      data.Mode // semantic lock mode at the caller
	Steps     []Step

	// Deadline, when nonzero, bounds this (sub)transaction and its
	// subtree: a step executing (or a lock acquisition waiting) past it
	// aborts with ErrTimeout. It tightens any deadline inherited from
	// the caller or from Runtime.OpTimeout.
	Deadline time.Time

	// SnapshotRead, set on a root invocation, runs this transaction
	// optimistically (MVCC snapshot reads, validate-at-commit) even when
	// the runtime's Exec mode is pessimistic. See ExecOptimistic.
	SnapshotRead bool
}

// TxResult reports a committed transaction.
type TxResult struct {
	Root    model.NodeID // node ID of the committed root transaction
	Retries int          // rollback-retry rounds (wait-die sacrifices and recovered faults) before the commit
	Values  []int64      // results of the leaf reads, in program order
}

// ErrTooManyRetries is returned when a transaction exceeds MaxRetries.
var ErrTooManyRetries = errors.New("sched: transaction exceeded retry budget")

// ErrClientAbort wraps an application-initiated abort (Step.Fail): the
// transaction is rolled back (compensated) and not retried.
var ErrClientAbort = errors.New("sched: transaction aborted by client")

// compensationRetries bounds the re-attempts of one failing compensation
// before the operation is quarantined.
const compensationRetries = 3

// attempt carries the per-attempt execution state: the undo log, the lock
// owners created so far (for release on abort or commit), and the staged
// execution record.
type attempt struct {
	root   model.NodeID
	ts     uint64
	owners []ownerRef
	undo   []undoEntry
	stage  *stagedRecord
	values []int64

	// Backoff jitter source, built lazily on the first retry: seeding a
	// rand.Source is hundreds of words of setup the no-retry fast path
	// never needs.
	rng     *rand.Rand
	rngSeed int64

	// Optimistic execution state (ExecOptimistic / Invocation.SnapshotRead):
	// per-store snapshot stamps, the snapshot reads to validate at commit,
	// and the items this attempt mutated (whose reads must bypass the
	// snapshot to see their own writes).
	optimistic bool
	snaps      map[string]uint64
	reads      []readRec
	wset       map[string]struct{}

	// Checkpoint-frontier registration (ckState.noteSnap): the oldest
	// snapshot stamp this attempt may still validate at. Written only by
	// the attempt's goroutine under ck.gate.RLock and read by the
	// checkpoint under ck.gate.Lock, so the gate orders every access.
	snapReg bool
	snapLow uint64
}

type ownerRef struct {
	lm    *lockManager
	owner string
}

type undoEntry struct {
	store *data.Store
	comp  string
	op    data.Op
	res   data.Result
	lsn   uint64 // WAL position of the TypeApply record (0 = not journaled)
}

// snapshot marks a point in the attempt's logs, so a faulted
// subtransaction can be rolled back and re-run without discarding the
// work of the rest of the transaction.
type snapshot struct {
	undo, owners, nodes, events, values, reads int
}

func (a *attempt) snapshot() snapshot {
	return snapshot{
		undo:   len(a.undo),
		owners: len(a.owners),
		nodes:  len(a.stage.nodes),
		events: len(a.stage.events),
		values: len(a.values),
		reads:  len(a.reads),
	}
}

// Submit runs the program as a root transaction, retrying on wait-die
// sacrifices, recovered injected faults, and deadline expiries until it
// commits. It is safe to call from many goroutines. After a simulated
// crash (FaultCrash) every Submit — in flight or new — returns
// ErrCrashed; the abandoned state is Recover's job.
func (r *Runtime) Submit(name string, root Invocation) (res *TxResult, err error) {
	if _, ok := r.comps[root.Component]; !ok {
		return nil, fmt.Errorf("sched: unknown component %q", root.Component)
	}
	// A crash unwinds the crashing attempt's stack with crashPanic:
	// convert it to ErrCrashed here, deliberately skipping every rollback
	// and lock release on the way out — a crashed process does not get to
	// compensate anything.
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(crashPanic); ok {
				res, err = nil, ErrCrashed
				return
			}
			panic(p)
		}
	}()
	if r.crashed.Load() {
		return nil, ErrCrashed
	}
	// Overload backpressure: above the high watermark, new roots are
	// refused until a checkpoint drains the backlog (EnableCheckpoints).
	if aerr := r.admitRoot(); aerr != nil {
		return nil, aerr
	}
	ts := r.tsc.Add(1)
	rootID := model.NodeID(name)
	retries := 0
	for {
		deadline := root.Deadline
		if r.OpTimeout > 0 {
			if d := time.Now().Add(r.OpTimeout); deadline.IsZero() || d.Before(deadline) {
				deadline = d
			}
		}
		a := &attempt{
			root:       rootID,
			ts:         ts,
			stage:      newStagedRecord(),
			rngSeed:    int64(ts)*7919 + int64(retries),
			optimistic: r.Exec == ExecOptimistic || root.SnapshotRead,
		}
		a.stage.declareNode(nodeDecl{id: rootID, sched: root.Component})
		err := r.exec(a, rootID, string(rootID), root, deadline)
		if err == nil {
			// Optimistic commit gate: validate every snapshot read against
			// the versions committed since its snapshot stamp. Runs before
			// certification and durability — an invalidated attempt rolls
			// back and retries with a fresh snapshot.
			err = r.validate(a)
		}
		if err == nil {
			// Commit-time certification (EnableCertify): the staged record
			// is admitted against the Comp-C criterion before anything of
			// the commit becomes durable. The delta is built on this
			// goroutine against an epoch snapshot of the conflict index,
			// then admitted in ticket order by the certifier's admission
			// drainer — Runtime.mu is never taken. A rejected commit rolls
			// back like a client abort — the violation witness rides the
			// error.
			if cerr := r.certify(a); cerr != nil {
				r.rollback(a)
				r.journal(wal.Record{Type: wal.TypeAbort, Txn: string(rootID)})
				return nil, cerr
			}
			if jerr := r.publishCommit(a, rootID); jerr != nil {
				if errors.Is(jerr, ErrCrashed) {
					return nil, ErrCrashed
				}
				r.rollback(a)
				return nil, jerr
			}
			// Automatic checkpoint cadence (EnableCheckpoints): runs after
			// the publication releases the cut gate.
			r.maybeCheckpoint()
			return &TxResult{Root: rootID, Retries: retries, Values: a.values}, nil
		}
		if errors.Is(err, ErrCrashed) {
			// A crash observed mid-attempt (drained lock wait, closed
			// log, step-loop check): abandon without rollback, exactly
			// like the crashing attempt itself.
			return nil, ErrCrashed
		}
		r.rollback(a)
		switch {
		case errors.Is(err, ErrDie):
			r.aborts.Add(1)
		case errors.Is(err, ErrValidation):
			// Invalidated snapshot reads: retry with a fresh snapshot.
			r.valAborts.Add(1)
		case errors.Is(err, ErrInjected):
			// Recovered fault: retry as a fresh attempt.
		case errors.Is(err, ErrTimeout):
			// A client-supplied deadline is final; an OpTimeout window
			// renews per attempt.
			if !root.Deadline.IsZero() && !time.Now().Before(root.Deadline) {
				r.journal(wal.Record{Type: wal.TypeAbort, Txn: string(rootID)})
				return nil, err
			}
		default:
			if errors.Is(err, ErrClientAbort) {
				r.clientAborts.Add(1)
			}
			r.journal(wal.Record{Type: wal.TypeAbort, Txn: string(rootID)})
			return nil, err
		}
		retries++
		// The budget check precedes the backoff: the final failed attempt
		// returns immediately instead of sleeping first.
		if retries > r.MaxRetries {
			r.journal(wal.Record{Type: wal.TypeAbort, Txn: string(rootID)})
			return nil, fmt.Errorf("%w (last abort: %w)", ErrTooManyRetries, err)
		}
		// Jittered exponential backoff before retrying with the same
		// timestamp (the transaction ages and eventually wins under
		// wait-die). Flat backoff thrashes badly when the conflicting
		// older transaction holds its locks for milliseconds.
		shift := retries
		if shift > 6 {
			shift = 6
		}
		base := (50 << shift) // 50µs .. 3.2ms
		if a.rng == nil {
			a.rng = rand.New(rand.NewSource(a.rngSeed))
		}
		time.Sleep(time.Duration(base/2+a.rng.Intn(base)) * time.Microsecond)
	}
}

// publishCommit makes a validated, certified attempt's commit durable
// and visible: the commit batch is journaled, the root's versions
// retired, its locks released, and the staged record merged into the
// committed projection. The whole publication holds the checkpoint cut's
// read side, so a checkpoint never observes a commit whose batch is
// journaled but whose effects are unpublished (or vice versa), and both
// crash sites fire inside the gated window.
func (r *Runtime) publishCommit(a *attempt, rootID model.NodeID) error {
	r.ck.gate.RLock(a.ts)
	defer r.ck.gate.RUnlock(a.ts)
	// Crash site "commit": fires before the commit batch is
	// journaled, so recovery must undo this transaction.
	r.fireCrash("", string(rootID), "commit", nil)
	if jerr := r.journalCommit(a); jerr != nil {
		return jerr
	}
	// Crash site "post-commit": the commit record is durable but
	// locks are abandoned and the record never merged — recovery
	// must redo this transaction from the log alone.
	r.fireCrash("", string(rootID), "post-commit", nil)
	// Root commit: finalize this root's versions (it will apply
	// nothing further, so snapshot validation may stop treating
	// them as dirty), release every lock, publish the record.
	for _, s := range a.touchedStores() {
		s.Retire(string(rootID))
	}
	r.clearSeal(string(rootID))
	for i := len(a.owners) - 1; i >= 0; i-- {
		a.owners[i].lm.release(a.owners[i].owner)
	}
	r.wfg.clear(a.ts)
	r.mu.Lock()
	r.rec.merge(a.stage)
	r.mu.Unlock()
	r.commits.Add(1)
	r.ck.drop(a)
	return nil
}

// touchedStores returns the distinct stores the attempt mutated (small:
// deduped by pointer).
func (a *attempt) touchedStores() []*data.Store {
	var out []*data.Store
	for _, u := range a.undo {
		dup := false
		for _, s := range out {
			if s == u.store {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, u.store)
		}
	}
	return out
}

// rollback compensates the attempt's applied operations in reverse order,
// retires the attempt's version tags (its installs and their
// compensations net out and none of its events will be recorded — see
// Store.Retire), and releases its locks.
func (r *Runtime) rollback(a *attempt) {
	stores := a.touchedStores()
	r.compensate(a, 0)
	for _, s := range stores {
		s.Retire(string(a.root))
	}
	r.clearSeal(string(a.root))
	for i := len(a.owners) - 1; i >= 0; i-- {
		a.owners[i].lm.release(a.owners[i].owner)
	}
	a.owners = a.owners[:0]
	r.wfg.clear(a.ts)
	// Every journaled apply now has a journaled compensation, so the
	// attempt no longer pins the WAL truncation barrier (and its snapshot
	// no longer pins the compaction frontier).
	r.ck.drop(a)
}

// rollbackTo undoes only the suffix of the attempt after snap: the
// subtransaction-scoped rollback behind local retry. Locks acquired
// during the suffix are released, except root-owned ones (Hybrid join
// points hold to root commit; keeping them is always safe and they are
// released at root commit/abort).
func (r *Runtime) rollbackTo(a *attempt, snap snapshot) {
	r.compensate(a, snap.undo)
	kept := a.owners[:snap.owners]
	for _, o := range a.owners[snap.owners:] {
		if o.owner == string(a.root) {
			kept = append(kept, o)
		} else {
			o.lm.release(o.owner)
		}
	}
	a.owners = kept
	a.stage.truncate(snap.nodes, snap.events)
	a.values = a.values[:snap.values]
	a.reads = a.reads[:snap.reads]
	r.wfg.clear(a.ts)
}

// compensate undoes a.undo[from:] in reverse order. A failing
// compensation (store error or injected FaultCompensation) is retried
// with backoff up to compensationRetries times and then quarantined: the
// runtime keeps running, the counter and Quarantined() report the leak.
// Compensations never panic — a faulted rollback must not take the
// process down with it.
func (r *Runtime) compensate(a *attempt, from int) {
	for i := len(a.undo) - 1; i >= from; i-- {
		u := a.undo[i]
		inv, ok := data.Inverse(u.op, u.res)
		if !ok {
			continue
		}
		// Write-ahead compensation: the inverse is journaled before it
		// executes, so after a crash the log never under-reports undone
		// work (an over-reported compensation that never ran re-runs at
		// recovery — compensations here are idempotent restores/negations
		// over a store rebuilt from the log, so replaying is safe).
		// The journaled compensation and its store effect stay on one side
		// of any checkpoint cut, like the forward apply they invert.
		r.ck.gate.RLock(a.ts)
		if u.lsn != 0 {
			if _, jerr := r.journal(wal.Record{
				Type: wal.TypeComp, Txn: string(a.root), Comp: u.comp,
				Item: inv.Item, Mode: string(inv.Mode), Impl: string(inv.Impl),
				Arg: inv.Arg, Ref: u.lsn,
			}); jerr != nil {
				r.ck.gate.RUnlock(a.ts)
				// The log is gone (crash) or unwritable: the process is
				// effectively dead, recovery owns the remaining undo.
				a.undo = a.undo[:from]
				return
			}
		}
		var err error
		for try := 0; try <= compensationRetries; try++ {
			if try > 0 {
				time.Sleep(time.Duration(try) * 50 * time.Microsecond)
			}
			if r.inj.fire(FaultCompensation, u.comp, string(a.root), "") {
				err = fmt.Errorf("sched: compensation fault at %q: %w", u.comp, ErrInjected)
				continue
			}
			if _, err = u.store.ApplyUndo(inv, string(a.root), u.res.TS); err == nil {
				break
			}
		}
		if err != nil {
			if u.lsn != 0 {
				// Supersede the journaled compensation: it never took
				// effect, recovery must keep the forward effect leaked
				// and re-report the quarantine.
				r.journal(wal.Record{Type: wal.TypeQuarantine, Txn: string(a.root), Ref: u.lsn})
			}
			r.quarantine(Quarantine{Component: u.comp, Txn: string(a.root), Op: u.op, Err: err})
		}
		r.ck.gate.RUnlock(a.ts)
	}
	a.undo = a.undo[:from]
}

// exec runs one (sub)transaction at its component. node is the node ID of
// this (sub)transaction; owner is the lock-owner key for locks it takes
// (its own node ID under open nesting, the root attempt under closed
// nesting and global 2PL). deadline bounds the subtree (zero = none).
func (r *Runtime) exec(a *attempt, node model.NodeID, owner string, inv Invocation, deadline time.Time) error {
	comp := r.comps[inv.Component]
	if comp == nil {
		return fmt.Errorf("sched: unknown component %q", inv.Component)
	}
	if !inv.Deadline.IsZero() && (deadline.IsZero() || inv.Deadline.Before(deadline)) {
		deadline = inv.Deadline
	}
	if r.inj.down(comp.name, string(a.root), string(node)) {
		return fmt.Errorf("sched: %q rejected %s: %w", comp.name, node, ErrComponentDown)
	}
	stepOwner := r.lockOwner(a, comp, owner)

	for i, step := range inv.Steps {
		if r.crashed.Load() {
			return ErrCrashed
		}
		childID := model.NodeID(fmt.Sprintf("%s/%d", node, i+1))
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			r.timeouts.Add(1)
			return fmt.Errorf("sched: %s at step %s: %w", node, childID, ErrTimeout)
		}
		if step.Sync != nil {
			step.Sync()
		}
		if step.Fail != nil {
			return fmt.Errorf("%w: step %s: %w", ErrClientAbort, childID, step.Fail)
		}
		switch {
		case step.Op != nil && step.Invoke != nil:
			return fmt.Errorf("sched: step %s has both Op and Invoke", childID)
		case step.Op != nil:
			if comp.store == nil {
				return fmt.Errorf("sched: component %q has no store for %s", comp.name, step.Op)
			}
			if err := r.leafOp(a, comp, node, childID, stepOwner, *step.Op, deadline); err != nil {
				return err
			}
		case step.Invoke != nil:
			if err := r.invoke(a, comp, node, childID, stepOwner, *step.Invoke, deadline); err != nil {
				return err
			}
		default:
			return fmt.Errorf("sched: empty step %s", childID)
		}
	}
	// Subtransaction commit at this component: under open nesting (and
	// under Hybrid away from join points) its locks are released now; the
	// caller keeps only its own semantic lock on this invocation.
	if (r.protocol == OpenNested || r.protocol == Hybrid) && stepOwner != string(a.root) {
		comp.lm.release(stepOwner)
		a.dropOwner(comp.lm, stepOwner)
	}
	return nil
}

// lockOwner decides the owner key for locks taken while executing an
// instance at comp: the root attempt when locks must survive to root
// commit, the instance itself when early release is allowed.
func (r *Runtime) lockOwner(a *attempt, comp *component, instance string) string {
	switch r.protocol {
	case ClosedNested, Global2PL:
		return string(a.root)
	case Hybrid:
		if comp.holdToRoot {
			return string(a.root)
		}
		return instance
	default:
		return instance
	}
}

// leafOp locks and applies a leaf operation.
func (r *Runtime) leafOp(a *attempt, comp *component, parent model.NodeID, id model.NodeID, owner string, op data.Op, deadline time.Time) error {
	// Trigger-based apply faults fire here, where the (txn, step)
	// context exists; probabilistic ones fire inside the store itself
	// via the Apply hook SetFaults installs.
	if r.inj != nil && r.inj.fire(FaultApply, comp.name, string(a.root), string(id)) {
		return fmt.Errorf("sched: apply fault at %s: %w", id, ErrInjected)
	}
	// Optimistic leaf reads are served from the store's committed snapshot:
	// no semantic lock, no blocking. Reads of items this attempt already
	// mutated fall through to the locked path — the snapshot cannot see the
	// attempt's own writes, and the write lock is already held, so the
	// locked read cannot block either.
	if a.optimistic && op.Physical() == data.ModeRead && !a.wroteItem(comp.name, op.Item) {
		return r.snapshotRead(a, comp, parent, id, op)
	}
	switch r.protocol {
	case Global2PL:
		// One global lock space over component-qualified items, classical
		// read/write modes only (increments — and any custom mode not
		// physically a read — are read-modify-writes).
		mode := op.Physical()
		if mode != data.ModeRead {
			mode = data.ModeWrite
		}
		if err := r.acquire(a, r.globalLM, r.rwTable, comp.name+"/"+op.Item, mode, string(a.root), comp.name, string(id), deadline); err != nil {
			return err
		}
	case NoCC:
		// No isolation.
	default:
		if err := r.acquire(a, comp.lm, comp.modes, op.Item, op.Mode, owner, comp.name, string(id), deadline); err != nil {
			return err
		}
	}
	// Write-ahead journal (mutations only): the apply record — with the
	// before-value recovery needs to invert it — precedes the store
	// mutation. The leaf crash site sits exactly on this boundary, so
	// FaultCrash can strand the log mid-append (CrashTear's torn record)
	// or between journal and apply. Journal and mutation execute under
	// the checkpoint cut's read side as one unit, so a checkpoint's store
	// snapshot reflects exactly the applies journaled below its marker.
	var lsn uint64
	var res data.Result
	var err error
	if op.Physical() != data.ModeRead {
		rec := wal.Record{
			Type: wal.TypeApply, Txn: string(a.root), Node: string(id),
			Comp: comp.name, Item: op.Item, Mode: string(op.Mode), Impl: string(op.Impl),
			Arg: op.Arg, Prev: comp.store.Get(op.Item),
		}
		r.fireCrash(comp.name, string(a.root), string(id), &rec)
		err = func() error {
			r.ck.gate.RLock(a.ts)
			defer r.ck.gate.RUnlock(a.ts)
			var jerr error
			if lsn, jerr = r.journal(rec); jerr != nil {
				return jerr
			}
			if lsn != 0 {
				r.ck.noteApply(string(a.root), lsn)
			}
			res, jerr = comp.store.ApplyAs(op, string(a.root))
			return jerr
		}()
		if err != nil && lsn == 0 {
			return err // journaling failed; nothing to cancel
		}
	} else {
		res, err = comp.store.ApplyAs(op, string(a.root))
	}
	if err != nil {
		if lsn != 0 {
			// The journaled apply never executed: append a cancellation
			// so recovery does not replay it.
			r.journal(wal.Record{Type: wal.TypeApplyFail, Txn: string(a.root), Ref: lsn})
		}
		return fmt.Errorf("sched: apply %s at %s: %w", op, id, err)
	}
	r.leafOps.Add(1)
	a.undo = append(a.undo, undoEntry{store: comp.store, comp: comp.name, op: op, res: res, lsn: lsn})
	if op.Physical() == data.ModeRead {
		a.values = append(a.values, res.Value)
	}
	if a.optimistic && res.TS != 0 {
		a.markWrite(comp.name, op.Item)
	}
	// A mutation's event is sequenced at the stamp of the version it
	// installed (stamps and event sequence numbers share one counter —
	// Store.UseClock), so the recorded conflict order of store events is
	// exactly version order; reads are sequenced here, after they executed.
	seq := res.TS
	if seq == 0 {
		seq = r.seq.Add(1)
	}
	a.stage.declareNode(nodeDecl{id: id, parent: parent})
	a.stage.addEvent(event{seq: seq, comp: comp.name, op: id, parentTx: parent, item: op.Item, mode: op.Mode})
	return nil
}

// invoke locks the semantic operation at the caller and delegates the
// subtransaction to the child component. Under OpenNested and Hybrid a
// subtransaction that fails with a recoverable injected fault is
// compensated and re-run locally (up to Runtime.SubRetries times) while
// the caller keeps its semantic lock — a partial failure does not have
// to abort the whole root.
func (r *Runtime) invoke(a *attempt, caller *component, parent model.NodeID, id model.NodeID, owner string, inv Invocation, deadline time.Time) error {
	child := r.comps[inv.Component]
	if child == nil {
		return fmt.Errorf("sched: unknown component %q", inv.Component)
	}
	if child == caller {
		return fmt.Errorf("sched: component %q invoking itself (recursion is not allowed)", caller.name)
	}
	r.invokes.Add(1)

	// The semantic identity of an invocation at the caller is the pair
	// (component, item): operations on the same item name routed to
	// different components touch disjoint data and must not be declared
	// conflicting (nor serialized) at the caller.
	semItem := inv.Component + "/" + inv.Item

	var seq uint64
	switch r.protocol {
	case Global2PL, NoCC:
		// No component-level locks; the event sequence is assigned at
		// completion, where lock strictness (Global2PL) makes the order
		// consistent with the leaf serialization.
	default:
		if err := r.acquire(a, caller.lm, caller.modes, semItem, inv.Mode, owner, caller.name, string(id), deadline); err != nil {
			return err
		}
		seq = r.seq.Add(1)
	}

	childOwner := string(id)
	localRetry := r.protocol == OpenNested || r.protocol == Hybrid
	for attempt := 0; ; attempt++ {
		snap := a.snapshot()
		err := r.exec(a, id, childOwner, inv, deadline)
		if err == nil {
			break
		}
		// Only injected faults are re-run locally: a wait-die sacrifice
		// must release the whole transaction (progress guarantee) and a
		// deadline expiry would expire again immediately.
		if !localRetry || attempt >= r.SubRetries ||
			!errors.Is(err, ErrInjected) || errors.Is(err, ErrDie) || errors.Is(err, ErrTimeout) {
			return err
		}
		r.rollbackTo(a, snap)
		r.subRetries.Add(1)
		time.Sleep(time.Duration(attempt+1) * 200 * time.Microsecond)
	}
	if seq == 0 {
		seq = r.seq.Add(1)
	}
	a.stage.declareNode(nodeDecl{id: id, parent: parent, sched: inv.Component})
	a.stage.addEvent(event{seq: seq, comp: caller.name, op: id, parentTx: parent, item: semItem, mode: inv.Mode})
	return nil
}

// acquire wraps lockManager.acquireUntil with fault injection, timeout
// accounting, and owner bookkeeping. comp and step give the injector its
// (component, txn, step) context.
func (r *Runtime) acquire(a *attempt, lm *lockManager, table *data.ModeTable, item string, mode data.Mode, owner, comp, step string, deadline time.Time) error {
	if r.inj != nil {
		if r.inj.fire(FaultLockFail, comp, string(a.root), step) {
			return fmt.Errorf("sched: lock fault at %s (%s): %w", step, item, ErrInjected)
		}
		if r.inj.fire(FaultLockDelay, comp, string(a.root), step) {
			d := r.inj.delay()
			if !deadline.IsZero() {
				if until := time.Until(deadline); until < d {
					d = until
				}
			}
			if d > 0 {
				time.Sleep(d)
			}
		}
	}
	if err := lm.acquireUntil(table, item, mode, owner, a.ts, r.Deadlock, r.wfg, deadline); err != nil {
		if errors.Is(err, ErrTimeout) {
			r.timeouts.Add(1)
			return fmt.Errorf("sched: lock wait for %s at %s: %w", item, step, err)
		}
		return err
	}
	a.addOwner(lm, owner)
	return nil
}

func (a *attempt) addOwner(lm *lockManager, owner string) {
	for _, o := range a.owners {
		if o.lm == lm && o.owner == owner {
			return
		}
	}
	a.owners = append(a.owners, ownerRef{lm: lm, owner: owner})
}

func (a *attempt) dropOwner(lm *lockManager, owner string) {
	for i, o := range a.owners {
		if o.lm == lm && o.owner == owner {
			a.owners = append(a.owners[:i], a.owners[i+1:]...)
			return
		}
	}
}
