package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"compositetx/internal/data"
)

// ErrDie is returned by acquire when the wait-die policy sacrifices the
// requesting transaction: it must roll back and retry with its original
// timestamp.
var ErrDie = errors.New("sched: transaction sacrificed by wait-die")

// lockManager is a semantic lock manager: lock modes are operation modes
// and compatibility is the component's commutativity table. Deadlocks are
// prevented with the wait-die policy keyed on root-transaction timestamps;
// a transaction that keeps its timestamp across retries eventually becomes
// the oldest and succeeds.
type lockManager struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items map[string][]lockEntry

	waits int64 // number of times a request had to wait (metrics)

	// crashed, when set by the runtime, is its crash flag: a simulated
	// process crash (FaultCrash) abandons locks without releasing them,
	// so waiters must drain with ErrCrashed instead of blocking on locks
	// nobody will ever release. Nil for standalone managers (tests).
	crashed *atomic.Bool
}

type lockEntry struct {
	mode  data.Mode
	owner string // release key: subtransaction or root-attempt node ID
	ts    uint64 // root transaction timestamp (wait-die)
}

func newLockManager() *lockManager {
	lm := &lockManager{items: make(map[string][]lockEntry)}
	lm.cond = sync.NewCond(&lm.mu)
	return lm
}

// acquire blocks until the lock (item, mode) is granted to owner, or
// returns ErrDie when the deadlock policy decides the requester (root
// timestamp ts) must abort. Entries held by the same root never conflict
// with the request (lock inheritance within a transaction is modelled by
// the shared timestamp).
//
// Under WaitDie the requester dies iff some conflicting holder belongs to
// an older root; wg may be nil. Under DetectWFG the requester registers
// its waits in the runtime-global graph and dies iff that closes a cycle.
func (lm *lockManager) acquire(table *data.ModeTable, item string, mode data.Mode, owner string, ts uint64, pol DeadlockPolicy, wg *waitGraph) error {
	return lm.acquireUntil(table, item, mode, owner, ts, pol, wg, time.Time{})
}

// acquireUntil is acquire with a deadline: a request still waiting when
// the deadline passes returns ErrTimeout instead of blocking forever. A
// zero deadline waits indefinitely. The deadline timer broadcasts on the
// manager's cond so sleeping waiters re-check promptly.
func (lm *lockManager) acquireUntil(table *data.ModeTable, item string, mode data.Mode, owner string, ts uint64, pol DeadlockPolicy, wg *waitGraph, deadline time.Time) error {
	var timer *time.Timer
	if !deadline.IsZero() {
		d := time.Until(deadline)
		if d <= 0 {
			return ErrTimeout
		}
		timer = time.AfterFunc(d, func() {
			lm.mu.Lock()
			lm.cond.Broadcast()
			lm.mu.Unlock()
		})
		defer timer.Stop()
	}
	lm.mu.Lock()
	defer lm.mu.Unlock()
	waited := false
	for {
		if lm.crashed != nil && lm.crashed.Load() {
			return ErrCrashed
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return ErrTimeout
		}
		var holders []uint64
		die := false
		for _, e := range lm.items[item] {
			if e.owner == owner || e.ts == ts {
				continue // same transaction (possibly a different level)
			}
			if table.ModeConflicts(e.mode, mode) {
				if pol == WaitDie && e.ts < ts {
					die = true // a conflicting holder is older
					break
				}
				holders = append(holders, e.ts)
			}
		}
		if die {
			return ErrDie
		}
		if len(holders) == 0 {
			if pol == DetectWFG && wg != nil {
				wg.clear(ts)
			}
			lm.items[item] = append(lm.items[item], lockEntry{mode: mode, owner: owner, ts: ts})
			return nil
		}
		if pol == DetectWFG && wg != nil && wg.setWaits(ts, holders) {
			return ErrDie // this wait would close a deadlock cycle
		}
		if !waited {
			lm.waits++
			waited = true
		}
		lm.cond.Wait()
	}
}

// release drops every lock held by owner and wakes waiters.
func (lm *lockManager) release(owner string) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	changed := false
	for item, entries := range lm.items {
		kept := entries[:0]
		for _, e := range entries {
			if e.owner == owner {
				changed = true
				continue
			}
			kept = append(kept, e)
		}
		if len(kept) == 0 {
			delete(lm.items, item)
		} else {
			lm.items[item] = kept
		}
	}
	if changed {
		lm.cond.Broadcast()
	}
}

// wake broadcasts without changing lock state, so sleeping waiters
// re-check the crash flag.
func (lm *lockManager) wake() {
	lm.mu.Lock()
	lm.cond.Broadcast()
	lm.mu.Unlock()
}

// heldBy reports whether owner holds any lock (tests).
func (lm *lockManager) heldBy(owner string) bool {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, entries := range lm.items {
		for _, e := range entries {
			if e.owner == owner {
				return true
			}
		}
	}
	return false
}

// waitCount returns how many requests had to wait.
func (lm *lockManager) waitCount() int64 {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.waits
}
