package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"compositetx/internal/data"
)

// ErrDie is returned by acquire when the wait-die policy sacrifices the
// requesting transaction: it must roll back and retry with its original
// timestamp.
var ErrDie = errors.New("sched: transaction sacrificed by wait-die")

// lockShardCount is the number of hash stripes per manager. Sixteen keeps
// the fixed footprint tiny (a manager exists per component) while giving
// parallel acquisitions on distinct items independent mutexes.
const lockShardCount = 16

// lockManager is a semantic lock manager: lock modes are operation modes
// and compatibility is the component's commutativity table. Deadlocks are
// prevented with the wait-die policy keyed on root-transaction timestamps;
// a transaction that keeps its timestamp across retries eventually becomes
// the oldest and succeeds.
//
// The item table is hash-striped: every item maps to one of
// lockShardCount shards, each with its own mutex and condition variable,
// so concurrent acquisitions on distinct items contend only on their
// stripe instead of one manager-wide mutex. Item-wise operations
// (acquire) touch one shard; owner-wise operations (release, heldBy)
// sweep all shards — they run once per (sub)transaction, not per lock.
type lockManager struct {
	shards [lockShardCount]lockShard

	// crashed, when set by the runtime, is its crash flag: a simulated
	// process crash (FaultCrash) abandons locks without releasing them,
	// so waiters must drain with ErrCrashed instead of blocking on locks
	// nobody will ever release. Nil for standalone managers (tests).
	crashed *atomic.Bool
}

// lockShard is one stripe of the item table.
type lockShard struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items map[string][]lockEntry
	waits int64 // number of times a request had to wait (metrics)

	// n counts live entries. Owner-wise sweeps (release, heldBy) load it
	// to skip empty shards without taking the mutex: an owner's own
	// entries are always counted from its perspective, because the whole
	// attempt — acquires and the final release — runs on one goroutine.
	n atomic.Int64
}

type lockEntry struct {
	mode  data.Mode
	owner string // release key: subtransaction or root-attempt node ID
	ts    uint64 // root transaction timestamp (wait-die)
}

func newLockManager() *lockManager {
	lm := &lockManager{}
	for i := range lm.shards {
		s := &lm.shards[i]
		s.items = make(map[string][]lockEntry)
		s.cond = sync.NewCond(&s.mu)
	}
	return lm
}

// shardOf maps an item to its stripe (inline FNV-1a; allocation-free).
func (lm *lockManager) shardOf(item string) *lockShard {
	h := uint32(2166136261)
	for i := 0; i < len(item); i++ {
		h ^= uint32(item[i])
		h *= 16777619
	}
	return &lm.shards[h%lockShardCount]
}

// acquire blocks until the lock (item, mode) is granted to owner, or
// returns ErrDie when the deadlock policy decides the requester (root
// timestamp ts) must abort. Entries held by the same root never conflict
// with the request (lock inheritance within a transaction is modelled by
// the shared timestamp).
//
// Under WaitDie the requester dies iff some conflicting holder belongs to
// an older root; wg may be nil. Under DetectWFG the requester registers
// its waits in the runtime-global graph and dies iff that closes a cycle.
func (lm *lockManager) acquire(table *data.ModeTable, item string, mode data.Mode, owner string, ts uint64, pol DeadlockPolicy, wg *waitGraph) error {
	return lm.acquireUntil(table, item, mode, owner, ts, pol, wg, time.Time{})
}

// acquireUntil is acquire with a deadline: a request still waiting when
// the deadline passes returns ErrTimeout instead of blocking forever. A
// zero deadline waits indefinitely. The deadline timer broadcasts on the
// item's shard so sleeping waiters re-check promptly.
func (lm *lockManager) acquireUntil(table *data.ModeTable, item string, mode data.Mode, owner string, ts uint64, pol DeadlockPolicy, wg *waitGraph, deadline time.Time) error {
	sh := lm.shardOf(item)
	var timer *time.Timer
	if !deadline.IsZero() {
		d := time.Until(deadline)
		if d <= 0 {
			return ErrTimeout
		}
		timer = time.AfterFunc(d, func() {
			sh.mu.Lock()
			sh.cond.Broadcast()
			sh.mu.Unlock()
		})
		defer timer.Stop()
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	waited := false
	for {
		if lm.crashed != nil && lm.crashed.Load() {
			return ErrCrashed
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return ErrTimeout
		}
		var holders []uint64
		die := false
		for _, e := range sh.items[item] {
			if e.owner == owner || e.ts == ts {
				continue // same transaction (possibly a different level)
			}
			if table.ModeConflicts(e.mode, mode) {
				if pol == WaitDie && e.ts < ts {
					die = true // a conflicting holder is older
					break
				}
				holders = append(holders, e.ts)
			}
		}
		if die {
			return ErrDie
		}
		if len(holders) == 0 {
			if pol == DetectWFG && wg != nil {
				wg.clear(ts)
			}
			sh.items[item] = append(sh.items[item], lockEntry{mode: mode, owner: owner, ts: ts})
			sh.n.Add(1)
			return nil
		}
		if pol == DetectWFG && wg != nil && wg.setWaits(ts, holders) {
			return ErrDie // this wait would close a deadlock cycle
		}
		if !waited {
			sh.waits++
			waited = true
		}
		sh.cond.Wait()
	}
}

// release drops every lock held by owner and wakes waiters. Owners are
// not tracked per shard, so this sweeps all stripes — one sweep per
// (sub)transaction completion.
func (lm *lockManager) release(owner string) {
	for i := range lm.shards {
		sh := &lm.shards[i]
		if sh.n.Load() == 0 {
			continue
		}
		sh.mu.Lock()
		changed := false
		for item, entries := range sh.items {
			kept := entries[:0]
			for _, e := range entries {
				if e.owner == owner {
					changed = true
					sh.n.Add(-1)
					continue
				}
				kept = append(kept, e)
			}
			if len(kept) == 0 {
				delete(sh.items, item)
			} else {
				sh.items[item] = kept
			}
		}
		if changed {
			sh.cond.Broadcast()
		}
		sh.mu.Unlock()
	}
}

// wake broadcasts on every shard without changing lock state, so sleeping
// waiters re-check the crash flag.
func (lm *lockManager) wake() {
	for i := range lm.shards {
		sh := &lm.shards[i]
		sh.mu.Lock()
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
}

// heldBy reports whether owner holds any lock (tests).
func (lm *lockManager) heldBy(owner string) bool {
	for i := range lm.shards {
		sh := &lm.shards[i]
		if sh.n.Load() == 0 {
			continue
		}
		sh.mu.Lock()
		for _, entries := range sh.items {
			for _, e := range entries {
				if e.owner == owner {
					sh.mu.Unlock()
					return true
				}
			}
		}
		sh.mu.Unlock()
	}
	return false
}

// waitCount returns how many requests had to wait.
func (lm *lockManager) waitCount() int64 {
	var n int64
	for i := range lm.shards {
		sh := &lm.shards[i]
		sh.mu.Lock()
		n += sh.waits
		sh.mu.Unlock()
	}
	return n
}
