package sched

import "sync"

// DeadlockPolicy selects how lock managers handle conflicts that could
// deadlock.
type DeadlockPolicy int

const (
	// WaitDie is timestamp-based deadlock *prevention*: an older
	// transaction waits for a younger one, a younger requester is
	// sacrificed immediately. No deadlock can form; some sacrifices are
	// unnecessary.
	WaitDie DeadlockPolicy = iota
	// DetectWFG is deadlock *detection* on a global waits-for graph:
	// requests wait freely, and the request that closes a waiting cycle
	// is sacrificed. No unnecessary aborts; cycles are caught at the
	// moment they form (the closing edge is always inserted by some
	// acquire call, which checks synchronously).
	DetectWFG
)

func (p DeadlockPolicy) String() string {
	switch p {
	case WaitDie:
		return "wait-die"
	case DetectWFG:
		return "detect-wfg"
	default:
		return "DeadlockPolicy(?)"
	}
}

// waitGraph is the runtime-global waits-for graph over root-transaction
// timestamps (each root has a unique timestamp, kept across retries). It
// spans all lock managers of the runtime.
type waitGraph struct {
	mu    sync.Mutex
	edges map[uint64]map[uint64]struct{}
}

func newWaitGraph() *waitGraph {
	return &waitGraph{edges: make(map[uint64]map[uint64]struct{})}
}

// setWaits replaces from's outgoing edges with the given holders and
// reports whether that closes a cycle through from. On a cycle the edges
// are removed again (the caller will abort).
func (g *waitGraph) setWaits(from uint64, holders []uint64) (deadlock bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	set := make(map[uint64]struct{}, len(holders))
	for _, h := range holders {
		if h != from {
			set[h] = struct{}{}
		}
	}
	g.edges[from] = set
	if g.reachesLocked(from, from) {
		delete(g.edges, from)
		return true
	}
	return false
}

// clear removes from's outgoing edges (granted or aborted).
func (g *waitGraph) clear(from uint64) {
	g.mu.Lock()
	delete(g.edges, from)
	g.mu.Unlock()
}

// reachesLocked reports whether target is reachable from start's
// successors. Callers hold g.mu.
func (g *waitGraph) reachesLocked(start, target uint64) bool {
	seen := map[uint64]struct{}{}
	stack := make([]uint64, 0, len(g.edges[start]))
	for n := range g.edges[start] {
		stack = append(stack, n)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == target {
			return true
		}
		if _, ok := seen[n]; ok {
			continue
		}
		seen[n] = struct{}{}
		for m := range g.edges[n] {
			stack = append(stack, m)
		}
	}
	return false
}
