package comm

import (
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned by Send on a closed endpoint or network.
var ErrClosed = errors.New("comm: endpoint closed")

// ErrUnknownPeer is returned by Send when the destination name has never
// registered an endpoint on the network.
var ErrUnknownPeer = errors.New("comm: unknown peer")

// Network is a named point-to-point message fabric. Endpoint registers
// (or re-registers) a name and returns its mailbox; calling Endpoint
// again with the same name replaces the previous registration — that is
// how a recovered node rejoins after a crash dropped its old endpoint.
type Network interface {
	Endpoint(name string) (Endpoint, error)
	Close() error
}

// Endpoint is one node's attachment to a Network. Send is asynchronous
// and may silently drop, duplicate, delay, or reorder under fault
// injection; a nil error means "handed to the fabric", not "delivered".
// Recv blocks until a message arrives or the endpoint closes (ok=false).
type Endpoint interface {
	Name() string
	Send(to string, m Message) error
	Recv() (Message, bool)
	Close() error
}

// ChanNetwork is the in-process transport: an unbounded FIFO inbox per
// endpoint guarded by a mutex + cond. Unbounded matters — 2PC decision
// fan-out must never block the coordinator on a slow participant, and
// the fault injector's delay goroutines re-inject out of band.
type ChanNetwork struct {
	mu        sync.Mutex
	endpoints map[string]*chanEndpoint
	closed    bool
}

// NewChanNetwork creates an empty in-process network.
func NewChanNetwork() *ChanNetwork {
	return &ChanNetwork{endpoints: make(map[string]*chanEndpoint)}
}

// Endpoint registers name, replacing (and closing) any previous
// endpoint with the same name.
func (n *ChanNetwork) Endpoint(name string) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("comm: network: %w", ErrClosed)
	}
	if old := n.endpoints[name]; old != nil {
		old.closeLocked()
	}
	ep := &chanEndpoint{net: n, name: name}
	ep.cond = sync.NewCond(&ep.mu)
	n.endpoints[name] = ep
	return ep, nil
}

// Close shuts every endpoint; pending Recv calls return ok=false.
func (n *ChanNetwork) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
	for _, ep := range n.endpoints {
		ep.closeLocked()
	}
	return nil
}

func (n *ChanNetwork) deliver(to string, m Message) error {
	n.mu.Lock()
	ep := n.endpoints[to]
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return fmt.Errorf("comm: network: %w", ErrClosed)
	}
	if ep == nil {
		return fmt.Errorf("comm: %w %q", ErrUnknownPeer, to)
	}
	ep.push(m)
	return nil
}

type chanEndpoint struct {
	net  *ChanNetwork
	name string

	mu     sync.Mutex
	cond   *sync.Cond
	inbox  []Message
	closed bool
}

func (e *chanEndpoint) Name() string { return e.name }

func (e *chanEndpoint) Send(to string, m Message) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return fmt.Errorf("comm: %s: %w", e.name, ErrClosed)
	}
	return e.net.deliver(to, m)
}

func (e *chanEndpoint) push(m Message) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return // messages to a crashed node vanish, like the real network
	}
	e.inbox = append(e.inbox, m)
	e.cond.Signal()
}

func (e *chanEndpoint) Recv() (Message, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.inbox) == 0 && !e.closed {
		e.cond.Wait()
	}
	if len(e.inbox) == 0 {
		return Message{}, false
	}
	m := e.inbox[0]
	e.inbox = e.inbox[1:]
	return m, true
}

func (e *chanEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closeMailboxLocked()
	return nil
}

// closeLocked is called with the network mutex held (registration
// replacement and network close); it must not take e.net.mu.
func (e *chanEndpoint) closeLocked() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closeMailboxLocked()
}

func (e *chanEndpoint) closeMailboxLocked() {
	if e.closed {
		return
	}
	e.closed = true
	e.inbox = nil
	e.cond.Broadcast()
}
