package comm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrRPCTimeout is returned by Mux.Call when every attempt's deadline
// expired without a reply. sched wraps it into its own ErrTimeout chain.
var ErrRPCTimeout = errors.New("comm: rpc timed out")

// Handler processes one inbound request. It runs on its own goroutine
// per message, so handlers may block (lock waits, WAL forces) without
// stalling the endpoint's receive loop.
type Handler func(m Message)

// Mux multiplexes request/reply traffic over one Endpoint. Outbound
// Call assigns a correlation ID, retries with the SAME ID on a capped
// exponential backoff until the per-attempt deadline elapses (so
// receivers can dedup retries exactly like fault-injected duplicates),
// and completes when the first reply with that ID arrives. Inbound
// messages whose Kind is a reply resolve a pending call; everything
// else is handed to the Handler.
type Mux struct {
	ep      Endpoint
	handler Handler

	nextID  atomic.Uint64
	started atomic.Bool
	mu      sync.Mutex
	pending map[uint64]chan Message
	closed  bool
	done    chan struct{}
}

// NewMux wraps ep; nothing is delivered until Start. handler may be nil
// when the node only issues calls (a pure client); inbound non-replies
// are then dropped.
func NewMux(ep Endpoint, handler Handler) *Mux {
	return &Mux{
		ep:      ep,
		handler: handler,
		pending: make(map[uint64]chan Message),
		done:    make(chan struct{}),
	}
}

// Start launches the receive loop and returns the mux. Construction and
// start are separate so the owner can publish the mux (store it where
// handlers will read it) before the first message can possibly arrive —
// recovery reconnects an endpoint whose peers are already retrying.
func (x *Mux) Start() *Mux {
	if x.started.CompareAndSwap(false, true) {
		go x.recvLoop()
	}
	return x
}

// Name returns the underlying endpoint's name.
func (x *Mux) Name() string { return x.ep.Name() }

// Close shuts the endpoint down; pending calls fail with ErrRPCTimeout
// at their deadline (the receive loop exits, no more replies arrive).
func (x *Mux) Close() error {
	x.mu.Lock()
	x.closed = true
	x.mu.Unlock()
	err := x.ep.Close()
	if x.started.Load() {
		<-x.done
	}
	return err
}

func (x *Mux) recvLoop() {
	defer close(x.done)
	for {
		m, ok := x.ep.Recv()
		if !ok {
			return
		}
		if m.Kind.IsReply() {
			x.mu.Lock()
			ch := x.pending[m.ID]
			x.mu.Unlock()
			if ch != nil {
				select {
				case ch <- m:
				default: // duplicate reply for an already-resolved call
				}
			}
			continue
		}
		if x.handler != nil {
			go x.handler(m)
		}
	}
}

// Send fires one message with no reply expected (decision re-delivery,
// replies from handlers). The From field is stamped automatically.
func (x *Mux) Send(to string, m Message) error {
	m.From = x.ep.Name()
	return x.ep.Send(to, m)
}

// Reply answers an inbound request: echoes the request ID and sends to
// the request's From address.
func (x *Mux) Reply(req Message, reply Message) error {
	reply.ID = req.ID
	return x.Send(req.From, reply)
}

// Call sends req to `to` and waits for the matching reply. timeout is
// the per-attempt deadline; retries is the number of RE-sends after the
// first attempt (retries=0 → exactly one attempt). Backoff between
// attempts doubles from timeout/4, capped at 2x timeout. All attempts
// carry the
// same correlation ID so the receiver can deduplicate. Returns
// ErrRPCTimeout (wrapped) when every attempt expires.
func (x *Mux) Call(to string, req Message, timeout time.Duration, retries int) (Message, error) {
	if timeout <= 0 {
		timeout = 50 * time.Millisecond
	}
	id := x.nextID.Add(1)
	req.ID = id
	req.From = x.ep.Name()

	ch := make(chan Message, 1)
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return Message{}, fmt.Errorf("comm: mux %s: %w", x.ep.Name(), ErrClosed)
	}
	x.pending[id] = ch
	x.mu.Unlock()
	defer func() {
		x.mu.Lock()
		delete(x.pending, id)
		x.mu.Unlock()
	}()

	timer := time.NewTimer(timeout)
	defer timer.Stop()

	backoff := timeout / 4
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := x.ep.Send(to, req); err != nil {
			// An unreachable or unregistered peer may be mid-restart;
			// remember the error and keep retrying until attempts run out.
			lastErr = err
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(timeout)
		select {
		case reply := <-ch:
			return reply, nil
		case <-timer.C:
		}
		if attempt >= retries {
			err := fmt.Errorf("comm: call %s to %s (%d attempts): %w", req.Kind, to, attempt+1, ErrRPCTimeout)
			if lastErr != nil {
				err = fmt.Errorf("%w (last send error: %v)", err, lastErr)
			}
			return Message{}, err
		}
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > 2*timeout {
				backoff = 2 * timeout
			}
		}
	}
}
