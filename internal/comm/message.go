// Package comm is the message layer under the distributed composite
// runtime (internal/sched's coordinator/participant split): typed
// protocol messages, pluggable point-to-point transports, a seeded
// network fault injector, and a request/reply mux with per-RPC deadlines
// and capped exponential-backoff retry.
//
// Two transports ship. The in-process channel network delivers messages
// through per-endpoint unbounded inboxes and is the substrate the fault
// injector wraps (drop, duplicate, delay, reorder, one-way partition —
// the network-chaos axis of experiment E15). The TCP network moves the
// same messages over loopback sockets with the WAL's framing discipline
// (length prefix + CRC32 over the body), one persistent connection per
// destination, so the protocol exercised in tests is byte-identical to
// what a multi-process deployment would ship.
//
// The layer is deliberately unreliable-by-contract: Send may silently
// lose, duplicate or reorder messages (fault injection does all three on
// purpose). Reliability is the Mux's job — retries with the same request
// ID — and idempotence is the receiver's (the participant dedups by
// (txn, attempt, node) against its WAL state).
package comm

import (
	"encoding/binary"
	"fmt"
)

// Kind names a protocol message. Requests flow coordinator → participant
// (apply, lock, prepare, decide, abort) except Query, which a recovering
// or in-doubt participant sends to the coordinator (the presumed-abort
// termination protocol); every request kind has a matching reply kind.
type Kind uint8

const (
	// KindApply asks the participant to lock and execute one leaf
	// operation of a root transaction (write-ahead journaled).
	KindApply Kind = 1 + iota
	KindApplyReply
	// KindLock asks the caller component's participant for the semantic
	// lock of a subtransaction invocation (the operation the caller's
	// scheduler serializes, Definition 4's delegation).
	KindLock
	KindLockReply
	// KindPrepare starts phase one of 2PC: the participant forces a
	// prepare record and votes.
	KindPrepare
	KindVote
	// KindDecide delivers the coordinator's decision (Commit field); the
	// participant forces a decision record, finalizes, and acks.
	KindDecide
	KindAck
	// KindAbort rolls back an unprepared transaction at the participant
	// (presumed abort: no decision record required before the vote).
	KindAbort
	KindAbortReply
	// KindQuery asks the coordinator for the outcome of an in-doubt
	// (prepared, undecided) transaction. The coordinator answers from its
	// decision log: commit if logged, abort otherwise (presumed abort),
	// or retry while the transaction is still actively voting.
	KindQuery
	KindQueryReply

	kindMax
)

func (k Kind) String() string {
	switch k {
	case KindApply:
		return "apply"
	case KindApplyReply:
		return "apply-reply"
	case KindLock:
		return "lock"
	case KindLockReply:
		return "lock-reply"
	case KindPrepare:
		return "prepare"
	case KindVote:
		return "vote"
	case KindDecide:
		return "decide"
	case KindAck:
		return "ack"
	case KindAbort:
		return "abort"
	case KindAbortReply:
		return "abort-reply"
	case KindQuery:
		return "query"
	case KindQueryReply:
		return "query-reply"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsReply reports whether the kind is a reply the Mux should route to a
// pending call rather than hand to the request handler.
func (k Kind) IsReply() bool {
	switch k {
	case KindApplyReply, KindLockReply, KindVote, KindAck, KindAbortReply, KindQueryReply:
		return true
	}
	return false
}

// Message is one protocol message. Like wal.Record it is a flat union:
// every kind uses the subset of fields it needs and leaves the rest
// zero, keeping the codec branch-free.
type Message struct {
	Kind Kind
	From string // sender endpoint name (reply address)
	ID   uint64 // request correlation ID; replies echo it, retries reuse it

	Txn     string // root transaction
	Attempt uint32 // root retry attempt; participants reject stale attempts
	TS      uint64 // root wait-die timestamp (global deadlock prevention)
	Clock   uint64 // sender's Lamport clock at send

	Node string // forest node ID of the step (apply/lock)
	Item string // store item (apply) or semantic item (lock)
	Mode string // semantic mode
	Impl string // physical implementation mode ("" = Mode itself)
	Arg  int64  // operation argument

	Wait int64 // lock-wait budget in nanoseconds (apply/lock requests)

	Value int64  // reply: leaf read value
	Seq   uint64 // reply: globally unique event stamp

	OK     bool   // vote yes / generic success
	Commit bool   // decide & query-reply: commit (true) or abort (false)
	Code   uint8  // reply error code (sched maps codes to sentinel errors)
	Err    string // reply error detail (human-readable)
}

// Encode serializes the message body (kind byte + fields) onto b.
func Encode(b []byte, m Message) []byte {
	b = append(b, byte(m.Kind))
	b = appendStr(b, m.From)
	b = binary.AppendUvarint(b, m.ID)
	b = appendStr(b, m.Txn)
	b = binary.AppendUvarint(b, uint64(m.Attempt))
	b = binary.AppendUvarint(b, m.TS)
	b = binary.AppendUvarint(b, m.Clock)
	b = appendStr(b, m.Node)
	b = appendStr(b, m.Item)
	b = appendStr(b, m.Mode)
	b = appendStr(b, m.Impl)
	b = binary.AppendVarint(b, m.Arg)
	b = binary.AppendVarint(b, m.Wait)
	b = binary.AppendVarint(b, m.Value)
	b = binary.AppendUvarint(b, m.Seq)
	b = append(b, boolByte(m.OK)|boolByte(m.Commit)<<1)
	b = append(b, m.Code)
	b = appendStr(b, m.Err)
	return b
}

// Decode parses a message body produced by Encode.
func Decode(b []byte) (Message, error) {
	var m Message
	if len(b) == 0 {
		return m, fmt.Errorf("comm: empty message body")
	}
	m.Kind = Kind(b[0])
	if m.Kind == 0 || m.Kind >= kindMax {
		return m, fmt.Errorf("comm: unknown message kind %d", b[0])
	}
	d := decoder{b: b[1:]}
	m.From = d.str()
	m.ID = d.uvarint()
	m.Txn = d.str()
	m.Attempt = uint32(d.uvarint())
	m.TS = d.uvarint()
	m.Clock = d.uvarint()
	m.Node = d.str()
	m.Item = d.str()
	m.Mode = d.str()
	m.Impl = d.str()
	m.Arg = d.varint()
	m.Wait = d.varint()
	m.Value = d.varint()
	m.Seq = d.uvarint()
	flags := d.byte()
	m.OK = flags&1 != 0
	m.Commit = flags&2 != 0
	m.Code = d.byte()
	m.Err = d.str()
	if d.err != nil {
		return m, fmt.Errorf("comm: corrupt %s message: %w", m.Kind, d.err)
	}
	if len(d.b) != 0 {
		return m, fmt.Errorf("comm: %d trailing bytes in %s message", len(d.b), m.Kind)
	}
	return m, nil
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) byte() byte {
	if len(d.b) == 0 {
		if d.err == nil {
			d.err = fmt.Errorf("truncated byte field")
		}
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)) < n {
		d.err = fmt.Errorf("truncated string (want %d bytes, have %d)", n, len(d.b))
		return ""
	}
	out := string(d.b[:n])
	d.b = d.b[n:]
	return out
}

func (d *decoder) uvarint() uint64 {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		if d.err == nil {
			d.err = fmt.Errorf("bad uvarint")
		}
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		if d.err == nil {
			d.err = fmt.Errorf("bad varint")
		}
		return 0
	}
	d.b = d.b[n:]
	return v
}
