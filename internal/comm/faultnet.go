package comm

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// NetFaultPlan configures the seeded network fault injector — the
// seventh fault family alongside sched's FaultCrash. Probabilities are
// per-message and independent; a message can be both delayed and
// duplicated. Partitions are one-way per (from,to) link: a partitioned
// link drops everything in that direction for PartitionWindow, then
// heals (and may re-partition on a later message). Zero value = no
// faults (the wrapper becomes a transparent pass-through).
type NetFaultPlan struct {
	Seed int64 // rng seed; same seed + same traffic order = same faults

	DropProb      float64 // silently lose the message
	DupProb       float64 // deliver twice
	DelayProb     float64 // hold the message for ~Delay before delivery
	ReorderProb   float64 // hold the message until the next one on the link passes it
	PartitionProb float64 // start a one-way partition on this link

	Delay           time.Duration // mean injected delay (jittered 0.5x–1.5x); default 2ms
	PartitionWindow time.Duration // how long a one-way partition lasts; default 20ms
}

// Enabled reports whether the plan injects any fault at all.
func (p NetFaultPlan) Enabled() bool {
	return p.DropProb > 0 || p.DupProb > 0 || p.DelayProb > 0 ||
		p.ReorderProb > 0 || p.PartitionProb > 0
}

// NetStats counts injector decisions, for experiment tables and tests.
type NetStats struct {
	Sent       uint64 // messages offered to the injector
	Dropped    uint64
	Duplicated uint64
	Delayed    uint64
	Reordered  uint64
	Partitions uint64 // one-way partitions started
	PartDrops  uint64 // messages lost to an active partition

	// Coalesce carries the TCP transport's frames-vs-messages counters
	// when the wrapped network runs over TCP (injection happens above the
	// coalescing layer, per message, so fault semantics are unchanged by
	// batching). Zero on the channel transport.
	Coalesce CoalesceStats
}

// FaultNetwork wraps an inner Network and perturbs Send according to a
// NetFaultPlan. All randomness comes from one seeded rng consulted under
// a mutex, so a fixed seed plus a deterministic traffic order replays
// the same fault decisions — the property E15's fixed-seed cells and the
// idempotence sweep rely on.
type FaultNetwork struct {
	inner Network
	plan  NetFaultPlan

	mu      sync.Mutex
	rng     *rand.Rand
	links   map[linkKey]*linkState
	stats   NetStats
	pending sync.WaitGroup // delay/reorder goroutines in flight
	closed  atomic.Bool
}

type linkKey struct{ from, to string }

type linkState struct {
	partedUntil time.Time // one-way partition deadline (zero = healthy)
	held        *Message  // reorder buffer: at most one message held back
}

// NewFaultNetwork wraps inner with plan. Defaults: Delay 2ms,
// PartitionWindow 20ms.
func NewFaultNetwork(inner Network, plan NetFaultPlan) *FaultNetwork {
	if plan.Delay <= 0 {
		plan.Delay = 2 * time.Millisecond
	}
	if plan.PartitionWindow <= 0 {
		plan.PartitionWindow = 20 * time.Millisecond
	}
	return &FaultNetwork{
		inner: inner,
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
		links: make(map[linkKey]*linkState),
	}
}

// Stats returns a snapshot of the injector counters.
func (f *FaultNetwork) Stats() NetStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Endpoint registers name on the inner network and returns a wrapper
// whose Send passes through the injector.
func (f *FaultNetwork) Endpoint(name string) (Endpoint, error) {
	ep, err := f.inner.Endpoint(name)
	if err != nil {
		return nil, err
	}
	return &faultEndpoint{net: f, inner: ep}, nil
}

// Close stops injecting (in-flight delayed messages are flushed
// immediately) and closes the inner network.
func (f *FaultNetwork) Close() error {
	f.closed.Store(true)
	f.pending.Wait()
	return f.inner.Close()
}

type faultEndpoint struct {
	net   *FaultNetwork
	inner Endpoint
}

func (e *faultEndpoint) Name() string          { return e.inner.Name() }
func (e *faultEndpoint) Recv() (Message, bool) { return e.inner.Recv() }
func (e *faultEndpoint) Close() error          { return e.inner.Close() }

func (e *faultEndpoint) Send(to string, m Message) error {
	f := e.net
	if !f.plan.Enabled() || f.closed.Load() {
		return e.inner.Send(to, m)
	}

	key := linkKey{from: e.inner.Name(), to: to}
	now := time.Now()

	f.mu.Lock()
	f.stats.Sent++
	link := f.links[key]
	if link == nil {
		link = &linkState{}
		f.links[key] = link
	}

	// Active one-way partition: the link eats the message.
	if now.Before(link.partedUntil) {
		f.stats.PartDrops++
		f.mu.Unlock()
		return nil
	}
	if f.plan.PartitionProb > 0 && f.rng.Float64() < f.plan.PartitionProb {
		link.partedUntil = now.Add(f.plan.PartitionWindow)
		f.stats.Partitions++
		f.stats.PartDrops++
		f.mu.Unlock()
		return nil
	}

	if f.plan.DropProb > 0 && f.rng.Float64() < f.plan.DropProb {
		f.stats.Dropped++
		f.mu.Unlock()
		return nil
	}

	dup := f.plan.DupProb > 0 && f.rng.Float64() < f.plan.DupProb
	if dup {
		f.stats.Duplicated++
	}

	// Reorder: release any previously held message *after* this one, and
	// possibly hold this one for the next. At most one message per link
	// is ever held, and a flush timer bounds the hold so a held message
	// on a quiet link still arrives.
	var release *Message
	if link.held != nil {
		release = link.held
		link.held = nil
	}
	hold := f.plan.ReorderProb > 0 && f.rng.Float64() < f.plan.ReorderProb
	if hold {
		held := m
		link.held = &held
		f.stats.Reordered++
	}

	delay := time.Duration(0)
	if !hold && f.plan.DelayProb > 0 && f.rng.Float64() < f.plan.DelayProb {
		jitter := 0.5 + f.rng.Float64() // 0.5x .. 1.5x
		delay = time.Duration(float64(f.plan.Delay) * jitter)
		f.stats.Delayed++
	}
	f.mu.Unlock()

	var err error
	if !hold {
		if delay > 0 {
			f.later(delay, e.inner, to, m)
		} else {
			err = e.inner.Send(to, m)
		}
		if dup {
			f.later(f.plan.Delay/4, e.inner, to, m)
		}
	} else {
		// The held message must not be stranded if the link goes quiet.
		f.flushAfter(4*f.plan.Delay, e.inner, key)
		if dup {
			// Duplicate of a held message goes out now: dup + reorder in one.
			err = e.inner.Send(to, m)
		}
	}
	if release != nil {
		if serr := e.inner.Send(to, *release); err == nil {
			err = serr
		}
	}
	return err
}

// later delivers m to `to` after d on a background goroutine.
func (f *FaultNetwork) later(d time.Duration, ep Endpoint, to string, m Message) {
	f.pending.Add(1)
	go func() {
		defer f.pending.Done()
		if !f.closed.Load() {
			time.Sleep(d)
		}
		_ = ep.Send(to, m)
	}()
}

// flushAfter releases the link's held message after d if no later Send
// has released it already.
func (f *FaultNetwork) flushAfter(d time.Duration, ep Endpoint, key linkKey) {
	f.pending.Add(1)
	go func() {
		defer f.pending.Done()
		if !f.closed.Load() {
			time.Sleep(d)
		}
		f.mu.Lock()
		link := f.links[key]
		var m *Message
		if link != nil && link.held != nil {
			m = link.held
			link.held = nil
		}
		f.mu.Unlock()
		if m != nil {
			_ = ep.Send(key.to, *m)
		}
	}()
}
