package comm

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
)

// The coalesced writer must put the exact same bytes on the wire as the
// old one-Write-per-frame path: identical [len][crc][body] frames, just
// packed into fewer syscalls. Byte-identity is what keeps the CRC check
// and mixed old/new readers sound.
func TestFrameCoalescedBytesIdentical(t *testing.T) {
	msgs := []Message{
		{Kind: KindApply, From: "coord", ID: 1, Txn: "T1", Attempt: 1, TS: 42, Node: "T1/1", Item: "acct", Mode: "incr", Arg: -7, Wait: 1000},
		{Kind: KindPrepare, From: "coord", ID: 2, Txn: "T1", Attempt: 1, TS: 42},
		{Kind: KindVote, From: "east", ID: 2, Txn: "T1", OK: true},
		{Kind: KindDecide, From: "coord", ID: 3, Txn: "T1", Attempt: 1, Commit: true},
		{Kind: KindAck, From: "east", ID: 3, Txn: "T1", OK: true},
	}

	// Reference bytes: the single-Write framing, captured off a pipe.
	var ref bytes.Buffer
	a, b := net.Pipe()
	done := make(chan struct{})
	go func() {
		io.Copy(&ref, b)
		close(done)
	}()
	for _, m := range msgs {
		if err := writeFrame(a, Encode(nil, m)); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	<-done

	// Coalesced bytes: every frame through one buffered writer, one flush.
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	for _, m := range msgs {
		if err := writeFrameTo(bw, Encode(nil, m)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(ref.Bytes(), buf.Bytes()) {
		t.Fatalf("coalesced framing diverges from reference: %d vs %d bytes", buf.Len(), ref.Len())
	}

	// And the packed stream round-trips through the CRC-checked reader.
	r := bytes.NewReader(buf.Bytes())
	for i, want := range msgs {
		got, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d round-trip:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := readFrame(r); err != io.EOF {
		t.Fatalf("trailing bytes after %d frames: %v", len(msgs), err)
	}
}

// Concurrent senders over TCP: every message arrives, and the network's
// coalescing counters account for them in fewer flushes than messages.
func TestTCPCoalesceStats(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}

	const senders, per = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := a.Send("b", Message{Kind: KindApply, ID: uint64(s*per + i + 1)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()

	total := senders * per
	seen := map[uint64]bool{}
	for _, m := range deliverAll(t, b, total) {
		if seen[m.ID] {
			t.Fatalf("duplicate delivery of ID %d", m.ID)
		}
		seen[m.ID] = true
	}

	st := n.CoalesceStats()
	if st.Messages != uint64(total) {
		t.Fatalf("coalesce messages=%d, want %d", st.Messages, total)
	}
	if st.Flushes == 0 || st.Flushes > st.Messages {
		t.Fatalf("flushes=%d inconsistent with messages=%d", st.Flushes, st.Messages)
	}
	if st.Flushes >= st.Messages {
		t.Fatalf("no coalescing: %d flushes for %d messages", st.Flushes, st.Messages)
	}
	if st.MaxBatch < 2 {
		t.Fatalf("maxbatch=%d, want >=2", st.MaxBatch)
	}
}
