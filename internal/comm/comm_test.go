package comm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestMessageCodecRoundTrip(t *testing.T) {
	msgs := []Message{
		{},
		{Kind: KindApply, From: "coord", ID: 42, Txn: "T7", Attempt: 3, TS: 99,
			Clock: 1001, Node: "T7.1.2", Item: "acct:17", Mode: "incr", Impl: "w",
			Arg: -250, Wait: int64(5 * time.Millisecond)},
		{Kind: KindApplyReply, ID: 42, Value: -3, Seq: 4097, OK: true},
		{Kind: KindPrepare, Txn: "T1", Attempt: 1, TS: 8},
		{Kind: KindVote, ID: 9, Txn: "T1", OK: true},
		{Kind: KindDecide, Txn: "T1", Commit: true, Clock: 77},
		{Kind: KindAck, ID: 10, Txn: "T1", OK: true},
		{Kind: KindQueryReply, ID: 11, Txn: "T1", Commit: false, Code: 3, Err: "presumed abort"},
		{Kind: KindAbort, Txn: "T2", Attempt: 7, Err: "unicode détail ✓"},
	}
	for i, want := range msgs {
		if want.Kind == 0 {
			want.Kind = KindLock
		}
		b := Encode(nil, want)
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("msg %d: decode: %v", i, err)
		}
		if got != want {
			t.Fatalf("msg %d: round trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestMessageDecodeRejectsCorrupt(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("decode of empty body succeeded")
	}
	if _, err := Decode([]byte{0xEE}); err == nil {
		t.Fatal("decode of unknown kind succeeded")
	}
	b := Encode(nil, Message{Kind: KindApply, Txn: "T1", Item: "x"})
	if _, err := Decode(b[:len(b)-2]); err == nil {
		t.Fatal("decode of truncated body succeeded")
	}
	if _, err := Decode(append(b, 0, 0)); err == nil {
		t.Fatal("decode with trailing bytes succeeded")
	}
}

// deliverAll drains n messages from ep, failing the test on close.
func deliverAll(t *testing.T, ep Endpoint, n int) []Message {
	t.Helper()
	out := make([]Message, 0, n)
	for i := 0; i < n; i++ {
		m, ok := ep.Recv()
		if !ok {
			t.Fatalf("endpoint closed after %d of %d messages", i, n)
		}
		out = append(out, m)
	}
	return out
}

func testNetworkBasics(t *testing.T, n Network) {
	t.Helper()
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.Send("b", Message{Kind: KindApply, ID: uint64(i + 1), Txn: "T1"}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	got := deliverAll(t, b, 10)
	for i, m := range got {
		if m.ID != uint64(i+1) {
			t.Fatalf("message %d: got ID %d, want %d (FIFO violated)", i, m.ID, i+1)
		}
	}
	// Unknown peer errors; send to self works.
	if err := a.Send("nobody", Message{Kind: KindApply}); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("send to unknown peer: got %v, want ErrUnknownPeer", err)
	}
	if err := b.Send("a", Message{Kind: KindVote, ID: 99}); err != nil {
		t.Fatal(err)
	}
	if m := deliverAll(t, a, 1)[0]; m.ID != 99 {
		t.Fatalf("reverse direction: got ID %d, want 99", m.ID)
	}
}

func TestChanNetworkBasics(t *testing.T) {
	n := NewChanNetwork()
	defer n.Close()
	testNetworkBasics(t, n)
}

func TestTCPNetworkBasics(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	testNetworkBasics(t, n)
}

func TestEndpointReplacementForRecovery(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() Network
	}{
		{"chan", func() Network { return NewChanNetwork() }},
		{"tcp", func() Network { return NewTCPNetwork() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.mk()
			defer n.Close()
			a, _ := n.Endpoint("a")
			old, _ := n.Endpoint("b")
			// Crash b: old endpoint closes, then the node rejoins.
			old.Close()
			if _, ok := old.Recv(); ok {
				t.Fatal("recv on closed endpoint returned a message")
			}
			nu, err := n.Endpoint("b")
			if err != nil {
				t.Fatal(err)
			}
			// Sends may fail transiently while the replacement races in
			// (TCP cached conns); retry like the Mux would.
			var sent bool
			for i := 0; i < 50 && !sent; i++ {
				if err := a.Send("b", Message{Kind: KindDecide, Txn: "T1", Commit: true}); err == nil {
					sent = true
				} else {
					time.Sleep(time.Millisecond)
				}
			}
			if !sent {
				t.Fatal("could not reach replaced endpoint")
			}
			m, ok := nu.Recv()
			if !ok || m.Txn != "T1" || !m.Commit {
				t.Fatalf("replacement endpoint got %+v ok=%v", m, ok)
			}
		})
	}
}

func TestTCPFrameCRCPoisonsConnection(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	// Prime a healthy cached connection.
	if err := a.Send("b", Message{Kind: KindApply, ID: 1}); err != nil {
		t.Fatal(err)
	}
	deliverAll(t, b, 1)
	// Corrupt a frame by hand on the cached conn: the reader must drop
	// the connection, and a redial must still get traffic through.
	ae := a.(*tcpEndpoint)
	c := ae.cachedConn("b")
	if c == nil {
		t.Fatal("no cached connection after send")
	}
	if _, err := c.Write([]byte{4, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	// A write into the dead socket can still return nil before the RST
	// comes back (unreliable-transport contract), so keep sending until
	// something arrives on a fresh redial.
	got := make(chan Message, 1)
	go func() {
		if m, ok := b.Recv(); ok {
			got <- m
		}
	}()
	deadline := time.After(5 * time.Second)
	for {
		_ = a.Send("b", Message{Kind: KindApply, ID: 2})
		select {
		case m := <-got:
			if m.ID != 2 {
				t.Fatalf("after poison: got %+v, want ID 2", m)
			}
			return
		case <-deadline:
			t.Fatal("no message delivered after poisoned frame")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func TestFaultNetworkDeterministicSameSeed(t *testing.T) {
	run := func(seed int64) NetStats {
		inner := NewChanNetwork()
		f := NewFaultNetwork(inner, NetFaultPlan{
			Seed: seed, DropProb: 0.2, DupProb: 0.2, DelayProb: 0.2,
			ReorderProb: 0.2, PartitionProb: 0.05,
			Delay: 100 * time.Microsecond, PartitionWindow: time.Millisecond,
		})
		a, _ := f.Endpoint("a")
		if _, err := f.Endpoint("b"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 400; i++ {
			_ = a.Send("b", Message{Kind: KindApply, ID: uint64(i)})
		}
		st := f.Stats()
		f.Close()
		return st
	}
	s1, s2 := run(7), run(7)
	// Partition decisions depend on wall-clock windows, so compare only
	// the purely rng-driven counters.
	if s1.Dropped != s2.Dropped || s1.Sent != s2.Sent {
		t.Fatalf("same seed diverged: %+v vs %+v", s1, s2)
	}
	s3 := run(8)
	if s3.Dropped == s1.Dropped && s3.Duplicated == s1.Duplicated && s3.Reordered == s1.Reordered {
		t.Fatalf("different seeds produced identical fault decisions: %+v", s3)
	}
}

func TestFaultNetworkDropsAndDuplicates(t *testing.T) {
	inner := NewChanNetwork()
	f := NewFaultNetwork(inner, NetFaultPlan{Seed: 3, DropProb: 0.5, Delay: 100 * time.Microsecond})
	defer f.Close()
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	const total = 200
	for i := 0; i < total; i++ {
		_ = a.Send("b", Message{Kind: KindApply, ID: uint64(i)})
	}
	st := f.Stats()
	if st.Dropped == 0 || st.Dropped == total {
		t.Fatalf("drop count %d implausible for p=0.5 over %d", st.Dropped, total)
	}
	got := deliverAll(t, b, total-int(st.Dropped))
	if len(got) != total-int(st.Dropped) {
		t.Fatalf("delivered %d, want %d", len(got), total-int(st.Dropped))
	}

	// Duplicates: every survivor arrives at least once, some twice.
	f2 := NewFaultNetwork(NewChanNetwork(), NetFaultPlan{Seed: 4, DupProb: 0.5, Delay: 100 * time.Microsecond})
	defer f2.Close()
	a2, _ := f2.Endpoint("a")
	b2, _ := f2.Endpoint("b")
	for i := 0; i < total; i++ {
		_ = a2.Send("b", Message{Kind: KindApply, ID: uint64(i)})
	}
	st2 := f2.Stats()
	if st2.Duplicated == 0 {
		t.Fatal("no duplicates at p=0.5")
	}
	seen := make(map[uint64]int)
	for i := 0; i < total+int(st2.Duplicated); i++ {
		m, ok := b2.Recv()
		if !ok {
			t.Fatalf("closed after %d", i)
		}
		seen[m.ID]++
	}
	for i := 0; i < total; i++ {
		if seen[uint64(i)] == 0 {
			t.Fatalf("message %d lost (dup-only plan must not drop)", i)
		}
	}
}

func TestFaultNetworkReorderSwapsNeighbors(t *testing.T) {
	inner := NewChanNetwork()
	f := NewFaultNetwork(inner, NetFaultPlan{Seed: 11, ReorderProb: 0.4, Delay: 200 * time.Microsecond})
	defer f.Close()
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	const total = 100
	for i := 0; i < total; i++ {
		_ = a.Send("b", Message{Kind: KindApply, ID: uint64(i)})
	}
	got := deliverAll(t, b, total)
	inversions, seen := 0, make(map[uint64]bool)
	for i := 1; i < len(got); i++ {
		if got[i].ID < got[i-1].ID {
			inversions++
		}
	}
	for _, m := range got {
		if seen[m.ID] {
			t.Fatalf("reorder-only plan duplicated message %d", m.ID)
		}
		seen[m.ID] = true
	}
	if inversions == 0 {
		t.Fatal("no inversions at reorder p=0.4")
	}
}

func TestFaultNetworkPartitionIsOneWay(t *testing.T) {
	inner := NewChanNetwork()
	f := NewFaultNetwork(inner, NetFaultPlan{
		Seed: 2, PartitionProb: 1.0, PartitionWindow: 50 * time.Millisecond,
	})
	defer f.Close()
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	// First a→b send starts the partition and is eaten.
	_ = a.Send("b", Message{Kind: KindApply, ID: 1})
	_ = a.Send("b", Message{Kind: KindApply, ID: 2})
	st := f.Stats()
	if st.Partitions == 0 || st.PartDrops != 2 {
		t.Fatalf("expected one partition eating both sends, got %+v", st)
	}
	// Reverse direction is its own link — also partitioned on first use
	// at p=1, proving per-link state (not global).
	_ = b.Send("a", Message{Kind: KindVote, ID: 3})
	if got := f.Stats(); got.Partitions != 2 {
		t.Fatalf("reverse link should partition independently, got %+v", got)
	}
}

func TestMuxCallRetriesThroughDrops(t *testing.T) {
	inner := NewChanNetwork()
	f := NewFaultNetwork(inner, NetFaultPlan{Seed: 5, DropProb: 0.45, Delay: 100 * time.Microsecond})
	defer f.Close()
	ce, _ := f.Endpoint("coord")
	pe, _ := f.Endpoint("part")
	var served atomic32
	var pm *Mux
	pm = NewMux(pe, func(m Message) {
		served.add(1)
		_ = pm.Reply(m, Message{Kind: KindApplyReply, OK: true, Value: m.Arg * 2})
	})
	pm.Start()
	defer pm.Close()
	cm := NewMux(ce, nil).Start()
	defer cm.Close()

	for i := 0; i < 30; i++ {
		reply, err := cm.Call("part", Message{Kind: KindApply, Arg: int64(i)}, 10*time.Millisecond, 10)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if reply.Value != int64(i)*2 {
			t.Fatalf("call %d: got %d, want %d", i, reply.Value, i*2)
		}
	}
	if served.load() < 30 {
		t.Fatalf("handler served %d < 30", served.load())
	}
}

func TestMuxCallTimesOutAgainstDeadPeer(t *testing.T) {
	n := NewChanNetwork()
	defer n.Close()
	ce, _ := n.Endpoint("coord")
	cm := NewMux(ce, nil).Start()
	defer cm.Close()
	start := time.Now()
	_, err := cm.Call("ghost", Message{Kind: KindPrepare}, 5*time.Millisecond, 2)
	if !errors.Is(err, ErrRPCTimeout) {
		t.Fatalf("got %v, want ErrRPCTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("3 attempts at 5ms returned after %v", elapsed)
	}
}

func TestMuxRetriesReuseSameID(t *testing.T) {
	n := NewChanNetwork()
	defer n.Close()
	ce, _ := n.Endpoint("coord")
	pe, _ := n.Endpoint("part")

	var mu sync.Mutex
	ids := make(map[uint64]int)
	var pm *Mux
	pm = NewMux(pe, func(m Message) {
		mu.Lock()
		ids[m.ID]++
		nth := ids[m.ID]
		mu.Unlock()
		if nth < 3 {
			return // swallow the first two deliveries to force retries
		}
		_ = pm.Reply(m, Message{Kind: KindVote, OK: true})
	})
	pm.Start()
	defer pm.Close()
	cm := NewMux(ce, nil).Start()
	defer cm.Close()

	if _, err := cm.Call("part", Message{Kind: KindPrepare, Txn: "T1"}, 5*time.Millisecond, 8); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ids) != 1 {
		t.Fatalf("retries used %d distinct IDs, want 1: %v", len(ids), ids)
	}
	for id, count := range ids {
		if count < 3 {
			t.Fatalf("id %d delivered %d times, want >=3", id, count)
		}
	}
}

func TestMuxConcurrentCallsCorrelate(t *testing.T) {
	n := NewChanNetwork()
	defer n.Close()
	ce, _ := n.Endpoint("coord")
	pe, _ := n.Endpoint("part")
	var pm *Mux
	pm = NewMux(pe, func(m Message) {
		// Reply out of order on purpose: odd args sleep first.
		if m.Arg%2 == 1 {
			time.Sleep(time.Millisecond)
		}
		_ = pm.Reply(m, Message{Kind: KindApplyReply, Value: m.Arg + 1000})
	})
	pm.Start()
	defer pm.Close()
	cm := NewMux(ce, nil).Start()
	defer cm.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reply, err := cm.Call("part", Message{Kind: KindApply, Arg: int64(i)}, 100*time.Millisecond, 3)
			if err != nil {
				errs <- err
				return
			}
			if reply.Value != int64(i)+1000 {
				errs <- fmt.Errorf("call %d got reply %d (cross-correlated)", i, reply.Value)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMuxOverTCP(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	ce, _ := n.Endpoint("coord")
	pe, _ := n.Endpoint("part")
	var pm *Mux
	pm = NewMux(pe, func(m Message) {
		_ = pm.Reply(m, Message{Kind: KindVote, OK: true, Txn: m.Txn})
	})
	pm.Start()
	defer pm.Close()
	cm := NewMux(ce, nil).Start()
	defer cm.Close()
	reply, err := cm.Call("part", Message{Kind: KindPrepare, Txn: "T9"}, 200*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.OK || reply.Txn != "T9" {
		t.Fatalf("tcp call reply %+v", reply)
	}
}

// atomic32 is a tiny test counter (avoids importing sync/atomic's
// Int32 just for tests that predate it in style).
type atomic32 struct {
	mu sync.Mutex
	v  int
}

func (a *atomic32) add(n int) { a.mu.Lock(); a.v += n; a.mu.Unlock() }
func (a *atomic32) load() int { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
