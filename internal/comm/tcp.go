package comm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
)

// TCPNetwork is the loopback socket transport. Each Endpoint opens a
// listener on 127.0.0.1:0 and registers its address in the shared
// registry; Send opens (and caches) one persistent connection per
// destination and writes CRC-framed messages, redialing once if a
// cached connection has gone stale. Framing matches the WAL's
// discipline: [len u32][crc32 u32][body], crc over the body, both
// little-endian. A frame that fails the CRC poisons the connection
// (closed and dropped), never the process.
type TCPNetwork struct {
	mu     sync.Mutex
	addrs  map[string]string
	eps    map[string]*tcpEndpoint
	closed bool
}

// NewTCPNetwork creates an empty TCP loopback network.
func NewTCPNetwork() *TCPNetwork {
	return &TCPNetwork{addrs: make(map[string]string), eps: make(map[string]*tcpEndpoint)}
}

// Endpoint starts a listener for name, replacing any prior registration
// (the old listener is closed; peers redial the new address on their
// next send, which is exactly the crash-recovery rejoin path).
func (n *TCPNetwork) Endpoint(name string) (Endpoint, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("comm: tcp listen: %w", err)
	}
	ep := &tcpEndpoint{
		net: n, name: name, ln: ln,
		conns:   make(map[string]net.Conn),
		inConns: make(map[net.Conn]struct{}),
	}
	ep.cond = sync.NewCond(&ep.mu)

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("comm: network: %w", ErrClosed)
	}
	if old := n.eps[name]; old != nil {
		old.shutdown()
	}
	n.addrs[name] = ln.Addr().String()
	n.eps[name] = ep
	n.mu.Unlock()

	go ep.acceptLoop()
	return ep, nil
}

// Close shuts every endpoint and forgets all addresses.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	eps := make([]*tcpEndpoint, 0, len(n.eps))
	for _, ep := range n.eps {
		eps = append(eps, ep)
	}
	n.closed = true
	n.mu.Unlock()
	for _, ep := range eps {
		ep.shutdown()
	}
	return nil
}

func (n *TCPNetwork) addrOf(name string) (string, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return "", fmt.Errorf("comm: network: %w", ErrClosed)
	}
	addr, ok := n.addrs[name]
	if !ok {
		return "", fmt.Errorf("comm: %w %q", ErrUnknownPeer, name)
	}
	return addr, nil
}

type tcpEndpoint struct {
	net  *TCPNetwork
	name string
	ln   net.Listener

	mu      sync.Mutex
	cond    *sync.Cond
	inbox   []Message
	conns   map[string]net.Conn   // outbound, keyed by peer name
	inConns map[net.Conn]struct{} // accepted, closed on shutdown to unblock readers
	closed  bool
	wg      sync.WaitGroup // reader goroutines
}

func (e *tcpEndpoint) Name() string { return e.name }

func (e *tcpEndpoint) acceptLoop() {
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			return
		}
		e.inConns[c] = struct{}{}
		e.wg.Add(1)
		e.mu.Unlock()
		go e.readLoop(c)
	}
}

func (e *tcpEndpoint) readLoop(c net.Conn) {
	defer e.wg.Done()
	defer func() {
		c.Close()
		e.mu.Lock()
		delete(e.inConns, c)
		e.mu.Unlock()
	}()
	for {
		m, err := readFrame(c)
		if err != nil {
			return // EOF, poisoned frame, or connection closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return
		}
		e.inbox = append(e.inbox, m)
		e.cond.Signal()
		e.mu.Unlock()
	}
}

func (e *tcpEndpoint) Send(to string, m Message) error {
	body := Encode(nil, m)
	// First try over a cached connection; on a write error redial once —
	// the peer may have restarted on a new address.
	if c := e.cachedConn(to); c != nil {
		if writeFrame(c, body) == nil {
			return nil
		}
		e.dropConn(to, c)
	}
	addr, err := e.net.addrOf(to)
	if err != nil {
		return err
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("comm: tcp dial %s: %w", to, err)
	}
	if err := writeFrame(c, body); err != nil {
		c.Close()
		return fmt.Errorf("comm: tcp send to %s: %w", to, err)
	}
	e.cacheConn(to, c)
	return nil
}

func (e *tcpEndpoint) cachedConn(to string) net.Conn {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.conns[to]
}

func (e *tcpEndpoint) cacheConn(to string, c net.Conn) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		c.Close()
		return
	}
	if old := e.conns[to]; old != nil {
		old.Close()
	}
	e.conns[to] = c
}

func (e *tcpEndpoint) dropConn(to string, c net.Conn) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.conns[to] == c {
		delete(e.conns, to)
	}
	c.Close()
}

func (e *tcpEndpoint) Recv() (Message, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.inbox) == 0 && !e.closed {
		e.cond.Wait()
	}
	if len(e.inbox) == 0 {
		return Message{}, false
	}
	m := e.inbox[0]
	e.inbox = e.inbox[1:]
	return m, true
}

func (e *tcpEndpoint) Close() error {
	e.shutdown()
	return nil
}

func (e *tcpEndpoint) shutdown() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.inbox = nil
	conns := e.conns
	e.conns = nil
	in := make([]net.Conn, 0, len(e.inConns))
	for c := range e.inConns {
		in = append(in, c)
	}
	e.cond.Broadcast()
	e.mu.Unlock()

	e.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	for _, c := range in {
		c.Close()
	}
	e.wg.Wait()
}

// writeFrame writes [len][crc][body] in one Write call so concurrent
// frames on the same connection never interleave (net.Conn Write is
// goroutine-safe per call).
func writeFrame(c net.Conn, body []byte) error {
	frame := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	copy(frame[8:], body)
	_, err := c.Write(frame)
	return err
}

const maxFrame = 1 << 20 // 1 MiB; protocol messages are tiny

func readFrame(r io.Reader) (Message, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxFrame {
		return Message{}, fmt.Errorf("comm: tcp frame too large (%d bytes)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, err
	}
	if crc32.ChecksumIEEE(body) != sum {
		return Message{}, fmt.Errorf("comm: tcp frame crc mismatch")
	}
	return Decode(body)
}
