package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// TCPNetwork is the loopback socket transport. Each Endpoint opens a
// listener on 127.0.0.1:0 and registers its address in the shared
// registry. Sends are coalesced per destination: a peer's writer
// goroutine drains its outbound queue in batches, packing every queued
// message into one buffered write + single flush (so N messages cost
// O(1) syscalls under load), and redials once if the connection has gone
// stale. Framing is unchanged and per-message: [len u32][crc32 u32][body],
// crc over the body, both little-endian — the same bytes the old
// one-write-per-frame path produced. A frame that fails the CRC poisons
// the connection (closed and dropped), never the process.
type TCPNetwork struct {
	mu     sync.Mutex
	addrs  map[string]string
	eps    map[string]*tcpEndpoint
	closed bool

	coalMsgs    atomic.Uint64
	coalFlushes atomic.Uint64
	coalMax     atomic.Uint64
}

// CoalesceStats counts transport-level message coalescing: how many
// protocol messages were packed into how many flushed socket writes.
// Messages/Flushes is the mean batch size; MaxBatch the best window.
type CoalesceStats struct {
	Messages uint64 // messages written through peer writers
	Flushes  uint64 // buffered-writer flushes (≈ write syscalls)
	MaxBatch uint64 // most messages packed into one flush
}

// CoalesceStats reports cumulative coalescing counters across all
// endpoints of the network (survives endpoint replacement).
func (n *TCPNetwork) CoalesceStats() CoalesceStats {
	return CoalesceStats{
		Messages: n.coalMsgs.Load(),
		Flushes:  n.coalFlushes.Load(),
		MaxBatch: n.coalMax.Load(),
	}
}

func (n *TCPNetwork) noteFlush(batch int) {
	n.coalMsgs.Add(uint64(batch))
	n.coalFlushes.Add(1)
	for {
		cur := n.coalMax.Load()
		if uint64(batch) <= cur || n.coalMax.CompareAndSwap(cur, uint64(batch)) {
			return
		}
	}
}

// NewTCPNetwork creates an empty TCP loopback network.
func NewTCPNetwork() *TCPNetwork {
	return &TCPNetwork{addrs: make(map[string]string), eps: make(map[string]*tcpEndpoint)}
}

// Endpoint starts a listener for name, replacing any prior registration
// (the old listener is closed; peers redial the new address on their
// next send, which is exactly the crash-recovery rejoin path).
func (n *TCPNetwork) Endpoint(name string) (Endpoint, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("comm: tcp listen: %w", err)
	}
	ep := &tcpEndpoint{
		net: n, name: name, ln: ln,
		peers:   make(map[string]*tcpPeer),
		inConns: make(map[net.Conn]struct{}),
	}
	ep.cond = sync.NewCond(&ep.mu)

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("comm: network: %w", ErrClosed)
	}
	if old := n.eps[name]; old != nil {
		old.shutdown()
	}
	n.addrs[name] = ln.Addr().String()
	n.eps[name] = ep
	n.mu.Unlock()

	go ep.acceptLoop()
	return ep, nil
}

// Close shuts every endpoint and forgets all addresses.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	eps := make([]*tcpEndpoint, 0, len(n.eps))
	for _, ep := range n.eps {
		eps = append(eps, ep)
	}
	n.closed = true
	n.mu.Unlock()
	for _, ep := range eps {
		ep.shutdown()
	}
	return nil
}

func (n *TCPNetwork) addrOf(name string) (string, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return "", fmt.Errorf("comm: network: %w", ErrClosed)
	}
	addr, ok := n.addrs[name]
	if !ok {
		return "", fmt.Errorf("comm: %w %q", ErrUnknownPeer, name)
	}
	return addr, nil
}

type tcpEndpoint struct {
	net  *TCPNetwork
	name string
	ln   net.Listener

	mu      sync.Mutex
	cond    *sync.Cond
	inbox   []Message
	peers   map[string]*tcpPeer   // outbound coalescing queues, keyed by peer name
	inConns map[net.Conn]struct{} // accepted, closed on shutdown to unblock readers
	closed  bool
	wg      sync.WaitGroup // reader goroutines
	writers sync.WaitGroup // per-peer writer goroutines
}

func (e *tcpEndpoint) Name() string { return e.name }

func (e *tcpEndpoint) acceptLoop() {
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			return
		}
		e.inConns[c] = struct{}{}
		e.wg.Add(1)
		e.mu.Unlock()
		go e.readLoop(c)
	}
}

func (e *tcpEndpoint) readLoop(c net.Conn) {
	defer e.wg.Done()
	defer func() {
		c.Close()
		e.mu.Lock()
		delete(e.inConns, c)
		e.mu.Unlock()
	}()
	for {
		m, err := readFrame(c)
		if err != nil {
			return // EOF, poisoned frame, or connection closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return
		}
		e.inbox = append(e.inbox, m)
		e.cond.Signal()
		e.mu.Unlock()
	}
}

// Send validates the destination, then enqueues the encoded message on
// the peer's outbound queue. The peer's writer goroutine packs everything
// queued into one buffered write + flush; delivery is asynchronous and —
// like the old path after its Write returned — not guaranteed (the
// transport is unreliable by contract; the RPC layer re-sends).
func (e *tcpEndpoint) Send(to string, m Message) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("comm: endpoint %s: %w", e.name, ErrClosed)
	}
	p := e.peers[to]
	if p == nil {
		// Fail fast for never-registered peers so callers can tell config
		// errors from transient unreachability.
		if _, err := e.net.addrOf(to); err != nil {
			e.mu.Unlock()
			return err
		}
		p = &tcpPeer{ep: e, to: to}
		p.cond = sync.NewCond(&p.mu)
		e.peers[to] = p
		e.writers.Add(1)
		go p.writeLoop()
	}
	e.mu.Unlock()
	p.enqueue(Encode(nil, m))
	return nil
}

// cachedConn exposes the peer's current outbound connection (tests
// poison it to exercise the CRC path).
func (e *tcpEndpoint) cachedConn(to string) net.Conn {
	e.mu.Lock()
	p := e.peers[to]
	e.mu.Unlock()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn
}

// tcpPeer is one destination's outbound coalescing queue plus the writer
// goroutine that drains it.
type tcpPeer struct {
	ep *tcpEndpoint
	to string

	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte
	closed bool
	conn   net.Conn      // written only by the writer; closed by shutdown to unblock it
	bw     *bufio.Writer // wraps conn
}

func (p *tcpPeer) enqueue(body []byte) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return // endpoint shut down; queued traffic vanishes with it
	}
	p.queue = append(p.queue, body)
	p.cond.Signal()
	p.mu.Unlock()
}

func (p *tcpPeer) close() {
	p.mu.Lock()
	p.closed = true
	if p.conn != nil {
		p.conn.Close() // unblock a writer stuck in Write
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// writeLoop drains the queue in batches: whatever accumulated while the
// previous batch was being written goes out as one buffered write +
// single flush. Under load the batch grows with the syscall latency it
// amortizes; when idle a lone message flushes immediately.
func (p *tcpPeer) writeLoop() {
	defer p.ep.writers.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			if p.conn != nil {
				p.conn.Close()
				p.conn, p.bw = nil, nil
			}
			p.mu.Unlock()
			return
		}
		batch := p.queue
		p.queue = nil
		p.mu.Unlock()
		p.writeBatch(batch)
	}
}

// writeBatch packs the batch into one flush. On a write error the
// connection is dropped and the whole batch retried once over a fresh
// dial — the peer may have restarted on a new address; frames are
// self-delimiting, so the receiver discards a torn prefix together with
// the dead connection, and a re-sent frame at worst duplicates (the
// participant layer dedups). A second failure drops the batch: the
// transport is unreliable by contract and the RPC layer re-sends.
func (p *tcpPeer) writeBatch(batch [][]byte) {
	for attempt := 0; attempt < 2; attempt++ {
		c, bw := p.current()
		if c == nil {
			addr, err := p.ep.net.addrOf(p.to)
			if err != nil {
				return
			}
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			if c, bw = p.adopt(nc); c == nil {
				nc.Close()
				return
			}
		}
		ok := true
		for _, body := range batch {
			if err := writeFrameTo(bw, body); err != nil {
				ok = false
				break
			}
		}
		if ok && bw.Flush() == nil {
			p.ep.net.noteFlush(len(batch))
			return
		}
		p.drop(c)
	}
}

func (p *tcpPeer) current() (net.Conn, *bufio.Writer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn, p.bw
}

func (p *tcpPeer) adopt(c net.Conn) (net.Conn, *bufio.Writer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, nil
	}
	p.conn = c
	p.bw = bufio.NewWriterSize(c, 64<<10)
	return p.conn, p.bw
}

func (p *tcpPeer) drop(c net.Conn) {
	c.Close()
	p.mu.Lock()
	if p.conn == c {
		p.conn, p.bw = nil, nil
	}
	p.mu.Unlock()
}

func (e *tcpEndpoint) Recv() (Message, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.inbox) == 0 && !e.closed {
		e.cond.Wait()
	}
	if len(e.inbox) == 0 {
		return Message{}, false
	}
	m := e.inbox[0]
	e.inbox = e.inbox[1:]
	return m, true
}

func (e *tcpEndpoint) Close() error {
	e.shutdown()
	return nil
}

func (e *tcpEndpoint) shutdown() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.inbox = nil
	peers := e.peers
	e.peers = nil
	in := make([]net.Conn, 0, len(e.inConns))
	for c := range e.inConns {
		in = append(in, c)
	}
	e.cond.Broadcast()
	e.mu.Unlock()

	e.ln.Close()
	for _, p := range peers {
		p.close()
	}
	for _, c := range in {
		c.Close()
	}
	e.writers.Wait()
	e.wg.Wait()
}

// writeFrame writes [len][crc][body] in one Write call. The coalescing
// writer uses writeFrameTo instead; this remains the reference encoding
// (and the tests' byte-identity oracle).
func writeFrame(c net.Conn, body []byte) error {
	frame := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	copy(frame[8:], body)
	_, err := c.Write(frame)
	return err
}

// writeFrameTo streams the same [len][crc][body] bytes as writeFrame
// through a buffered writer, so many frames share one flush/syscall.
func writeFrameTo(w io.Writer, body []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

const maxFrame = 1 << 20 // 1 MiB; protocol messages are tiny

func readFrame(r io.Reader) (Message, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxFrame {
		return Message{}, fmt.Errorf("comm: tcp frame too large (%d bytes)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, err
	}
	if crc32.ChecksumIEEE(body) != sum {
		return Message{}, fmt.Errorf("comm: tcp frame crc mismatch")
	}
	return Decode(body)
}
