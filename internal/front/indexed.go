package front

import (
	"fmt"
	"math/bits"

	"compositetx/internal/model"
	"compositetx/internal/order"
)

// This file is the interned-index reduction engine: the hot path of Check.
//
// The string-keyed Level0/Step in front.go remain the readable reference
// implementation of Definitions 15–16 (and the public stepwise API); Check
// runs the reduction below instead, entirely on dense int32-indexed bitset
// relations (order.IndexRelation / order.ClosedRelation over a
// model.Interner). The two paths are decision-equivalent; the property
// tests in indexed_test.go assert verdict equality against checkReference
// on random stack/fork/join workloads, and every failure diagnostic is
// delegated back to the reference Step so incorrectness traces stay
// byte-identical.
//
// Speed comes from three changes:
//
//   - per-System interning: every NodeID becomes an int32 assigned in
//     lexicographic order, so relation rows are bitset words, membership is
//     a bit test, and deterministic iteration is ascending index order;
//   - index-side normalization: schedule orders are transitively closed as
//     dense relations while building the sysIndex, so Check neither clones
//     nor string-normalizes the system;
//   - incremental closure: the observed order of each new front is kept in
//     an order.ClosedRelation, updated per lifted pair, instead of
//     re-running the full SCC closure per level (Definition 10 rule 4).

// sysIndex is the per-Check interned view of a composite system. Building
// it reads but never mutates the system (apart from the cached interner).
type sysIndex struct {
	sys *model.System
	in  *model.Interner
	n   int

	schedIDs []model.ScheduleID // sorted, index = schedule number

	parent  []int32      // parent node index; -1 for roots
	opSched []int32      // schedule number the node is an operation of; -1 for roots
	isLeaf  order.Bitset // leaf operations
	roots   []int32      // root transactions, ascending

	// conf is the global symmetric conflict predicate: (a, b) iff a and b
	// are operations of one common schedule that declares them conflicting
	// (Definition 11 case 1).
	conf *order.IndexRelation

	// Per schedule (index = schedule number). The order relations carry
	// Normalize's semantics on the index side: transitively closed, strong
	// orders folded into the weak ones.
	ops      []order.Bitset         // operation set of the schedule
	txs      [][]int32              // transactions assigned, ascending
	weakOut  []*order.IndexRelation // ≺ (closed, ≪ folded in)
	confOut  []*order.IndexRelation // conflicting pairs directed by ≺
	weakIn   []*order.IndexRelation // → (closed, ⇒ folded in)
	strongIn []*order.IndexRelation // ⇒ (closed)
	intraOut []*order.IndexRelation // union of the txs' closed weak intra orders

	order    int     // N, the highest schedule level
	schedsAt [][]int // schedule numbers per level 1..order, ascending
}

func buildSysIndex(sys *model.System, levels map[model.ScheduleID]int) *sysIndex {
	in := sys.Intern()
	n := in.Len()
	si := &sysIndex{sys: sys, in: in, n: n}

	schedNum := make(map[model.ScheduleID]int)
	for _, sc := range sys.Schedules() {
		schedNum[sc.ID] = len(si.schedIDs)
		si.schedIDs = append(si.schedIDs, sc.ID)
	}
	nS := len(si.schedIDs)

	si.parent = make([]int32, n)
	si.opSched = make([]int32, n)
	si.isLeaf = order.NewBitset(n)
	si.ops = make([]order.Bitset, nS)
	si.txs = make([][]int32, nS)
	for s := range si.ops {
		si.ops[s] = order.NewBitset(n)
	}
	for i := 0; i < n; i++ {
		id := in.ID(int32(i))
		nd := sys.Node(id)
		si.parent[i] = in.Index(nd.Parent) // -1 for roots ("" is not interned)
		if nd.IsLeaf() {
			si.isLeaf.Set(i)
		}
		if nd.IsRoot() {
			si.roots = append(si.roots, int32(i))
		} else if nd.Sched != "" {
			if s, ok := schedNum[nd.Sched]; ok {
				si.txs[s] = append(si.txs[s], int32(i)) // ascending: i ascends
			}
		}
		si.opSched[i] = -1
		if os := sys.OpSchedule(id); os != "" {
			if s, ok := schedNum[os]; ok {
				si.opSched[i] = int32(s)
				si.ops[s].Set(i)
			}
		}
	}
	// Root transactions also belong to their schedule's transaction set.
	for _, r := range si.roots {
		if nd := sys.Node(in.ID(r)); nd.Sched != "" {
			if s, ok := schedNum[nd.Sched]; ok {
				si.txs[s] = append(si.txs[s], r)
			}
		}
	}
	for s := range si.txs {
		sortInt32(si.txs[s])
	}

	idx := func(id model.NodeID) int { return int(in.Index(id)) }
	toIndex := func(r *order.Relation[model.NodeID]) *order.IndexRelation {
		out := order.NewIndexRelation(n)
		r.Each(func(a, b model.NodeID) {
			ia, ib := idx(a), idx(b)
			if ia >= 0 && ib >= 0 {
				out.Add(ia, ib)
			}
		})
		return out
	}

	si.conf = order.NewIndexRelation(n)
	si.weakOut = make([]*order.IndexRelation, nS)
	si.confOut = make([]*order.IndexRelation, nS)
	si.weakIn = make([]*order.IndexRelation, nS)
	si.strongIn = make([]*order.IndexRelation, nS)
	si.intraOut = make([]*order.IndexRelation, nS)
	for s, scID := range si.schedIDs {
		sc := sys.Schedule(scID)

		wo := toIndex(sc.WeakOut)
		wo.Or(toIndex(sc.StrongOut))
		si.weakOut[s] = wo.TransitiveClosure()

		wi := toIndex(sc.WeakIn)
		wi.Or(toIndex(sc.StrongIn))
		si.weakIn[s] = wi.TransitiveClosure()
		si.strongIn[s] = toIndex(sc.StrongIn).TransitiveClosure()

		si.confOut[s] = order.NewIndexRelation(n)
		sc.Conflicts.Each(func(a, b model.NodeID) {
			ia, ib := idx(a), idx(b)
			if ia < 0 || ib < 0 {
				return
			}
			if si.weakOut[s].Has(ia, ib) {
				si.confOut[s].Add(ia, ib)
			}
			if si.weakOut[s].Has(ib, ia) {
				si.confOut[s].Add(ib, ia)
			}
			// Global predicate: only pairs between the schedule's own
			// operations (what Schedule.Conflict answers for the reduction).
			if si.opSched[ia] == int32(s) && si.opSched[ib] == int32(s) {
				si.conf.AddSym(ia, ib)
			}
		})

		intra := order.NewIndexRelation(n)
		for _, t := range si.txs[s] {
			nd := sys.Node(in.ID(t))
			if nd.WeakIntra != nil {
				intra.Or(toIndex(nd.WeakIntra))
			}
			if nd.StrongIntra != nil {
				intra.Or(toIndex(nd.StrongIntra))
			}
		}
		// Distinct transactions have disjoint operation sets, so one
		// closure of the union equals the union of per-transaction
		// closures (Normalize's per-node result).
		si.intraOut[s] = intra.TransitiveClosure()
	}

	for _, l := range levels {
		if l > si.order {
			si.order = l
		}
	}
	si.schedsAt = make([][]int, si.order+1)
	for s, scID := range si.schedIDs {
		l := levels[scID]
		if l >= 1 && l <= si.order {
			si.schedsAt[l] = append(si.schedsAt[l], s) // ascending schedule number
		}
	}
	return si
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// iFront is a computational front on interned indices: the dense
// counterpart of Front.
type iFront struct {
	level    int
	nodes    order.Bitset
	count    int
	obs      *order.ClosedRelation // <o, transitively closed throughout
	con      *order.IndexRelation  // CON, symmetric
	weakIn   *order.IndexRelation
	strongIn *order.IndexRelation
}

// level0 builds the all-leaves front of Definition 15 on indices.
func (si *sysIndex) level0() *iFront {
	f := &iFront{
		level:    0,
		nodes:    si.isLeaf.Clone(),
		con:      order.NewIndexRelation(si.n),
		weakIn:   order.NewIndexRelation(si.n),
		strongIn: order.NewIndexRelation(si.n),
	}
	f.count = f.nodes.Count()
	raw := order.NewIndexRelation(si.n)
	for s := range si.schedIDs {
		m := si.ops[s].Clone()
		m.And(si.isLeaf)
		if !m.Any() {
			continue
		}
		m.Each(func(a int) {
			if row := si.weakOut[s].Row(a); row != nil {
				raw.MutRow(a).OrAnd(row, m) // Definition 10 rule 1
			}
			if row := si.conf.Row(a); row != nil {
				f.con.MutRow(a).OrAnd(row, m) // Definition 11 case 1
			}
		})
	}
	f.obs = order.CloseRelation(raw) // rule 4
	return f
}

// ccCycle returns a witness cycle violating conflict consistency
// (Definition 13) of an indexed front, or nil when the front is CC.
func (si *sysIndex) ccCycle(f *iFront) []int32 {
	u := f.obs.Rel().Clone()
	u.Or(f.weakIn)
	return findCycleIdx(u, f.nodes)
}

// step performs one reduction step (Definition 16) on indices. On failure
// nf is nil and rep carries the same diagnostic the reference Step would
// produce — same failure kind, bad transaction, and witness cycle, found
// by the same lexicographic traversal (findCycleIdx).
func (si *sysIndex) step(f *iFront) (nf *iFront, rep *StepReport) {
	level := f.level + 1
	scheds := si.schedsAt[level]
	rep = &StepReport{Level: level}

	var newTx []int32
	reduced := order.NewBitset(si.n)
	for _, s := range scheds {
		newTx = append(newTx, si.txs[s]...)
		reduced.Or(si.ops[s])
	}
	rep.Reduced = si.reducedIDs(newTx)
	bad := reduced.Clone()
	bad.AndNot(f.nodes)
	bad.Each(func(op int) {
		// Cannot happen in a well-formed system; mirrors the reference Step.
		panic(fmt.Sprintf("front: op %s of %s not in level %d front",
			si.in.ID(int32(op)), si.in.ID(si.parent[op]), f.level))
	})
	group := func(i int) int {
		if reduced.Has(i) {
			return int(si.parent[i])
		}
		return i
	}

	// --- Definition 16 step 1 (interpretation D3): constraint relation E.
	e := order.NewIndexRelation(si.n)
	f.nodes.Each(func(i int) {
		or, cr := f.obs.Row(i), f.con.Row(i)
		if or != nil && cr != nil {
			e.MutRow(i).OrAnd(or, cr) // observed order between conflicting nodes
		}
	})
	e.Or(f.strongIn)
	for _, s := range scheds {
		e.Or(si.confOut[s])  // reduced schedules' conflicting output pairs
		e.Or(si.intraOut[s]) // reduced transactions' weak intra orders
	}

	// Does the rearranged front F** exist? Internal acyclicity per group in
	// ascending (= lexicographic) group order — the reference GroupableBy
	// reports the first bad group in sorted order — then acyclicity of the
	// quotient.
	groups := f.nodes.Clone()
	groups.AndNot(reduced)
	newTxMask := order.NewBitset(si.n)
	for _, t := range newTx {
		groups.Set(int(t))
		newTxMask.Set(int(t))
	}
	badGroup := -1
	groups.Each(func(g int) {
		if badGroup >= 0 {
			return
		}
		if newTxMask.Has(g) {
			if subgraphCyclic(e, si.childOps(int32(g))) {
				badGroup = g
			}
		} else if e.Has(g, g) {
			badGroup = g // cyclic singleton group
		}
	})
	if badGroup >= 0 {
		rep.Failure = FailCalculation
		rep.BadTransaction = si.in.ID(int32(badGroup))
		members := order.NewBitset(si.n)
		if newTxMask.Has(badGroup) {
			for _, op := range si.childOps(int32(badGroup)) {
				members.Set(int(op))
			}
		} else {
			members.Set(badGroup)
		}
		rep.Cycle = si.nodeIDs(findCycleIdx(e, members))
		return nil, rep
	}
	q := order.NewIndexRelation(si.n)
	e.Each(func(i, j int) {
		gi, gj := group(i), group(j)
		if gi != gj {
			q.Add(gi, gj)
		}
	})
	if c := findCycleIdx(q, groups); c != nil {
		rep.Failure = FailIsolation
		rep.Cycle = si.nodeIDs(c)
		return nil, rep
	}

	// --- Definition 16 steps 2–5: build the new front.
	nf = &iFront{
		level:    level,
		con:      order.NewIndexRelation(si.n),
		weakIn:   order.NewIndexRelation(si.n),
		strongIn: order.NewIndexRelation(si.n),
	}
	nf.nodes = f.nodes.Clone()
	nf.nodes.AndNot(reduced)
	for _, t := range newTx {
		nf.nodes.Set(int(t))
	}
	nf.count = nf.nodes.Count()

	obs := order.NewClosedRelation(si.n)
	// (a) Definition 10 rule 2 at each reduced schedule.
	for _, s := range scheds {
		si.confOut[s].Each(func(a, b int) {
			if pa, pb := group(a), group(b); pa != pb {
				obs.Insert(pa, pb)
			}
		})
	}
	// (b) Lift existing observed-order pairs; a pair of operations of one
	// common schedule that declares no conflict is forgotten.
	f.obs.Each(func(a, b int) {
		la, lb := group(a), group(b)
		if la == lb {
			return
		}
		if reduced.Has(a) && reduced.Has(b) {
			if sa := si.opSched[a]; sa >= 0 && sa == si.opSched[b] && !si.conf.Has(a, b) {
				return // forgotten: common schedule, no conflict
			}
		}
		obs.Insert(la, lb)
	})
	// (c) Definition 10 rule 1 for pairs of a new node and a leaf front
	// node of its operation schedule.
	for _, t := range newTx {
		st := si.opSched[t]
		if st < 0 {
			continue // root transaction
		}
		cand := si.ops[st].Clone()
		cand.And(nf.nodes)
		cand.And(si.isLeaf) // new nodes are transactions; rule 1 needs a leaf
		ti := int(t)
		cand.Each(func(o int) {
			if si.weakOut[st].Has(ti, o) {
				obs.Insert(ti, o)
			}
			if si.weakOut[st].Has(o, ti) {
				obs.Insert(o, ti)
			}
		})
	}
	nf.obs = obs // closed incrementally throughout — rule 4 holds already

	// Input orders, step 6: surviving pairs plus the reduced schedules'
	// input orders.
	f.nodes.Each(func(i int) {
		if !nf.nodes.Has(i) {
			return
		}
		if row := f.weakIn.Row(i); row != nil {
			nf.weakIn.MutRow(i).OrAnd(row, nf.nodes)
		}
		if row := f.strongIn.Row(i); row != nil {
			nf.strongIn.MutRow(i).OrAnd(row, nf.nodes)
		}
	})
	for _, s := range scheds {
		nf.weakIn.Or(si.weakIn[s])
		nf.strongIn.Or(si.strongIn[s])
	}

	si.recomputeCon(nf)

	// Definition 16 step 6: the new front must be conflict consistent.
	u := nf.obs.Rel().Clone()
	u.Or(nf.weakIn)
	if c := findCycleIdx(u, nf.nodes); c != nil {
		rep.Failure = FailCC
		rep.Cycle = si.nodeIDs(c)
		return nil, rep
	}
	return nf, rep
}

// recomputeCon rebuilds the generalized conflict relation (Definition 11)
// of a front with word-parallel row operations: same-schedule pairs take
// the schedule's predicate, cross-schedule pairs conflict iff
// observed-ordered in either direction.
func (si *sysIndex) recomputeCon(f *iFront) {
	words := len(f.nodes)
	f.nodes.Each(func(i int) {
		confRow := si.conf.Row(i)
		obsRow := f.obs.Row(i)
		predRow := f.obs.PredRow(i)
		if confRow == nil && obsRow == nil && predRow == nil {
			return
		}
		var same order.Bitset
		if s := si.opSched[i]; s >= 0 {
			same = si.ops[s]
		}
		row := f.con.MutRow(i)
		for w := 0; w < words; w++ {
			v := bword(confRow, w) & f.nodes[w]
			v |= (bword(obsRow, w) | bword(predRow, w)) & f.nodes[w] &^ bword(same, w)
			row[w] |= v
		}
		row.Clear(i) // CON is irreflexive
	})
}

func bword(b order.Bitset, w int) uint64 {
	if b == nil {
		return 0
	}
	return b[w]
}

// childOps returns the operation indices of transaction t, ascending.
func (si *sysIndex) childOps(t int32) []int32 {
	var out []int32
	for i := 0; i < si.n; i++ {
		if si.parent[i] == t {
			out = append(out, int32(i))
		}
	}
	return out
}

// subgraphCyclic reports whether e restricted to members contains a cycle.
func subgraphCyclic(e *order.IndexRelation, members []int32) bool {
	if len(members) == 0 {
		return false
	}
	color := make([]byte, len(members))
	var dfs func(k int) bool
	dfs = func(k int) bool {
		color[k] = 1
		row := e.Row(int(members[k]))
		for k2, m := range members {
			if !row.Has(int(m)) {
				continue
			}
			if color[k2] == 1 {
				return true
			}
			if color[k2] == 0 && dfs(k2) {
				return true
			}
		}
		color[k] = 2
		return false
	}
	for k := range members {
		if color[k] == 0 && dfs(k) {
			return true
		}
	}
	return false
}

// materialize converts an indexed front back to the string-keyed Front of
// the public API, matching the reference path's node registration.
func (si *sysIndex) materialize(f *iFront) *Front {
	out := &Front{
		Level:    f.level,
		nodes:    make(map[model.NodeID]struct{}, f.count),
		Obs:      order.New[model.NodeID](),
		Con:      model.NewPairSet(),
		WeakIn:   order.New[model.NodeID](),
		StrongIn: order.New[model.NodeID](),
	}
	f.nodes.Each(func(i int) {
		id := si.in.ID(int32(i))
		out.nodes[id] = struct{}{}
		out.Obs.AddNode(id)
	})
	f.obs.Each(func(i, j int) { out.Obs.Add(si.in.ID(int32(i)), si.in.ID(int32(j))) })
	f.con.Each(func(i, j int) {
		if i < j {
			out.Con.Add(si.in.ID(int32(i)), si.in.ID(int32(j)))
		}
	})
	f.weakIn.Each(func(i, j int) { out.WeakIn.Add(si.in.ID(int32(i)), si.in.ID(int32(j))) })
	f.strongIn.Each(func(i, j int) { out.StrongIn.Add(si.in.ID(int32(i)), si.in.ID(int32(j))) })
	return out
}

// reduced returns the NodeIDs of newTx for the step report.
func (si *sysIndex) reducedIDs(newTx []int32) []model.NodeID {
	if len(newTx) == 0 {
		return nil
	}
	out := make([]model.NodeID, len(newTx))
	for k, t := range newTx {
		out[k] = si.in.ID(t)
	}
	return out
}

// nodeIDs maps a cycle of indices to NodeIDs (nil stays nil).
func (si *sysIndex) nodeIDs(cycle []int32) []model.NodeID {
	if cycle == nil {
		return nil
	}
	out := make([]model.NodeID, len(cycle))
	for k, i := range cycle {
		out[k] = si.in.ID(i)
	}
	return out
}

// findCycleIdx is Relation.FindCycle on an IndexRelation restricted to the
// nodes of mask. It mirrors the reference implementation exactly — white/
// grey/black DFS, roots and successors visited in ascending index (=
// lexicographic NodeID) order, identical back-edge cycle reconstruction —
// so the witness cycles in failure diagnostics match the string-keyed path
// byte for byte. Returns nil when acyclic over mask.
func findCycleIdx(rel *order.IndexRelation, mask order.Bitset) []int32 {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	words := len(mask)
	n := words * 64
	color := make([]byte, n)
	parent := make([]int32, n)

	var cycle []int32
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = grey
		row := rel.Row(u)
		for w := 0; w < len(row); w++ {
			word := row[w] & mask[w]
			for word != 0 {
				m := w*64 + trailingZeros(word)
				word &= word - 1
				switch color[m] {
				case white:
					parent[m] = int32(u)
					if dfs(m) {
						return true
					}
				case grey:
					// Back edge u -> m: reconstruct the path m ... u.
					cycle = []int32{int32(m)}
					for x := int32(u); x != int32(m); x = parent[x] {
						cycle = append(cycle, x)
					}
					for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
						cycle[i], cycle[j] = cycle[j], cycle[i]
					}
					return true
				}
			}
		}
		color[u] = black
		return false
	}

	found := false
	mask.Each(func(u int) {
		if !found && color[u] == white && dfs(u) {
			found = true
		}
	})
	if !found {
		return nil
	}
	return cycle
}

func trailingZeros(w uint64) int { return bits.TrailingZeros64(w) }
