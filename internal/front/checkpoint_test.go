package front_test

import (
	"fmt"
	"testing"

	"compositetx/internal/front"
	"compositetx/internal/model"
	"compositetx/internal/workload"
)

// futureRefs collects every node ID the remaining stream still references
// (as a parent, a pair endpoint, or an intra-order transaction).
func futureRefs(remaining []*front.Delta) map[model.NodeID]struct{} {
	refs := make(map[model.NodeID]struct{})
	for _, d := range remaining {
		for _, n := range d.Nodes {
			if n.Parent != "" {
				refs[n.Parent] = struct{}{}
			}
		}
		for _, ps := range [][]front.DeltaPair{d.Conflicts, d.WeakOut, d.StrongOut, d.WeakIn, d.StrongIn} {
			for _, p := range ps {
				refs[p.A] = struct{}{}
				refs[p.B] = struct{}{}
			}
		}
		for _, ip := range d.Intra {
			refs[ip.Tx] = struct{}{}
			refs[ip.A] = struct{}{}
			refs[ip.B] = struct{}{}
		}
	}
	return refs
}

// foldableRoots returns the roots of the prefix whose entire subtree is
// never referenced again — the checkpoint contract (the runtime certifier
// guarantees it by pruning its event index at the same cadence; here the
// test computes it by looking ahead).
func foldableRoots(prefix *model.System, remaining []*front.Delta) []model.NodeID {
	refs := futureRefs(remaining)
	var out []model.NodeID
	for _, r := range prefix.Roots() {
		if _, ref := refs[r]; ref {
			continue
		}
		clean := true
		for _, d := range prefix.Descendants(r) {
			if _, ref := refs[d]; ref {
				clean = false
				break
			}
		}
		if clean {
			out = append(out, r)
		}
	}
	return out
}

// replayCheckpointExact streams deltas through an Incremental, folding
// every foldable committed prefix with Checkpoint every `every` deltas,
// while applying the same deltas — and the same prunes — to a parallel
// prefix system. After EVERY delta the engine's Append verdict must be
// byte-identical to CheckReference over the (pruned) prefix: the stream
// straddles each checkpoint boundary, so this is the pruned-engine
// byte-identity property of ISSUE 7. Returns per-outcome counts plus the
// number of folds that actually dropped state.
func replayCheckpointExact(t *testing.T, tag string, deltas []*front.Delta, every int) (correct, failed, folds int) {
	t.Helper()
	inc := front.NewIncremental(front.IncrementalOptions{})
	prefix := model.NewSystem()
	for i, d := range deltas {
		d.Apply(prefix)
		gotV, gotErr := inc.Append(d)
		wantV, wantErr := front.CheckReference(prefix, front.Options{})
		assertVerdictsEqual(t, fmt.Sprintf("%s/prefix%d", tag, i), gotV, gotErr, wantV, wantErr)
		if gotErr == nil && gotV.Correct {
			correct++
		} else {
			failed++
		}
		if (i+1)%every != 0 || inc.Degraded() {
			continue
		}
		targets := foldableRoots(prefix, deltas[i+1:])
		if len(targets) == 0 {
			continue
		}
		sum, err := inc.Checkpoint(targets)
		if err != nil {
			t.Fatalf("%s/prefix%d: checkpoint: %v", tag, i, err)
		}
		if sum.Roots != len(targets) || len(sum.Witness) != len(targets) {
			t.Fatalf("%s/prefix%d: summary folded %d roots, witness %d, want %d",
				tag, i, sum.Roots, len(sum.Witness), len(targets))
		}
		witness := make(map[model.NodeID]struct{}, len(sum.Witness))
		for _, id := range sum.Witness {
			witness[id] = struct{}{}
		}
		for _, id := range targets {
			if _, ok := witness[id]; !ok {
				t.Fatalf("%s/prefix%d: folded root %q missing from witness %v", tag, i, id, sum.Witness)
			}
			prefix.RemoveTree(id)
		}
		if got, want := inc.LiveNodes(), prefix.NumNodes(); got != want {
			t.Fatalf("%s/prefix%d: engine holds %d live nodes after fold, prefix has %d", tag, i, got, want)
		}
		if sum.Nodes > 0 {
			folds++
		}
	}
	return correct, failed, folds
}

// TestCheckpointPrefixExactStack sweeps random stack executions with a
// fold every few root commits, across conflict densities that produce
// both correct and violating continuations on the far side of folds.
func TestCheckpointPrefixExactStack(t *testing.T) {
	correct, failed, folds := 0, 0, 0
	for _, levels := range []int{1, 2, 3} {
		for _, cr := range []float64{0, 0.3, 0.9} {
			for seed := int64(1); seed <= 3; seed++ {
				exec := workload.Stack(workload.StackParams{
					Levels: levels, Roots: 6, Fanout: 2,
					ConflictRate: cr, StrongRate: 0.2, Seed: seed,
				})
				tag := fmt.Sprintf("ckstack/l%d/c%.1f/seed%d", levels, cr, seed)
				c, f, k := replayCheckpointExact(t, tag, front.DecomposeByRoot(exec.Sys), 2)
				correct, failed, folds = correct+c, failed+f, folds+k
			}
		}
	}
	if correct == 0 || failed == 0 || folds == 0 {
		t.Fatalf("sweep must cover both outcomes across real folds: %d correct, %d failed, %d folds", correct, failed, folds)
	}
}

// renameNodes prefixes every node ID in the deltas, giving each epoch a
// disjoint namespace (the runtime's root names are unique the same way).
func renameNodes(deltas []*front.Delta, prefix string) []*front.Delta {
	ren := func(id model.NodeID) model.NodeID {
		if id == "" {
			return id
		}
		return model.NodeID(prefix) + id
	}
	out := make([]*front.Delta, len(deltas))
	for i, d := range deltas {
		nd := &front.Delta{Schedules: d.Schedules}
		for _, n := range d.Nodes {
			nd.Nodes = append(nd.Nodes, front.DeltaNode{ID: ren(n.ID), Parent: ren(n.Parent), Sched: n.Sched})
		}
		renPairs := func(ps []front.DeltaPair) []front.DeltaPair {
			var r []front.DeltaPair
			for _, p := range ps {
				r = append(r, front.DeltaPair{Sched: p.Sched, A: ren(p.A), B: ren(p.B)})
			}
			return r
		}
		nd.Conflicts = renPairs(d.Conflicts)
		nd.WeakOut = renPairs(d.WeakOut)
		nd.StrongOut = renPairs(d.StrongOut)
		nd.WeakIn = renPairs(d.WeakIn)
		nd.StrongIn = renPairs(d.StrongIn)
		for _, ip := range d.Intra {
			nd.Intra = append(nd.Intra, front.DeltaIntra{Tx: ren(ip.Tx), A: ren(ip.A), B: ren(ip.B), Strong: ip.Strong})
		}
		out[i] = nd
	}
	return out
}

// replayEpochsExact streams several executions through ONE engine as
// successive epochs — the runtime's checkpoint cadence: after each epoch
// whose history is still correct, every root is folded away, and the next
// epoch's stream must stay byte-identical to CheckReference over the
// pruned prefix. Epochs get disjoint node namespaces; schedules persist
// across folds (re-declarations are stripped). Returns folds taken.
func replayEpochsExact(t *testing.T, tag string, systems []*model.System) int {
	t.Helper()
	inc := front.NewIncremental(front.IncrementalOptions{})
	prefix := model.NewSystem()
	folds := 0
	for e, sys := range systems {
		deltas := renameNodes(front.DecomposeByRoot(sys), fmt.Sprintf("e%d.", e))
		for i, d := range deltas {
			var kept []model.ScheduleID
			for _, s := range d.Schedules {
				if prefix.Schedule(s) == nil {
					kept = append(kept, s)
				}
			}
			d.Schedules = kept
			d.Apply(prefix)
			gotV, gotErr := inc.Append(d)
			wantV, wantErr := front.CheckReference(prefix, front.Options{})
			assertVerdictsEqual(t, fmt.Sprintf("%s/epoch%d/prefix%d", tag, e, i), gotV, gotErr, wantV, wantErr)
		}
		if inc.Degraded() {
			continue
		}
		roots := prefix.Roots()
		sum, err := inc.Checkpoint(roots)
		if err != nil {
			t.Fatalf("%s/epoch%d: checkpoint: %v", tag, e, err)
		}
		for _, r := range roots {
			prefix.RemoveTree(r)
		}
		if inc.LiveNodes() != 0 {
			t.Fatalf("%s/epoch%d: %d live nodes after a full fold", tag, e, inc.LiveNodes())
		}
		if sum.Nodes > 0 {
			folds++
		}
	}
	return folds
}

// TestCheckpointPrefixExactFork streams fork epochs across full folds.
func TestCheckpointPrefixExactFork(t *testing.T) {
	folds := 0
	for seed := int64(1); seed <= 3; seed++ {
		var systems []*model.System
		for _, cr := range []float64{0.2, 0.5, 0.8} {
			systems = append(systems, workload.Fork(workload.ForkParams{
				Branches: 2, Roots: 3, Fanout: 2, LeavesPerSub: 2,
				ConflictRate: cr, Seed: seed,
			}).Sys)
		}
		folds += replayEpochsExact(t, fmt.Sprintf("ckfork/seed%d", seed), systems)
	}
	if folds == 0 {
		t.Fatal("fork sweep folded nothing; loosen the workload")
	}
}

// TestCheckpointPrefixExactJoin streams join epochs across full folds.
func TestCheckpointPrefixExactJoin(t *testing.T) {
	folds := 0
	for seed := int64(1); seed <= 3; seed++ {
		var systems []*model.System
		for _, tcr := range []float64{0, 0.3, 0.6} {
			systems = append(systems, workload.Join(workload.JoinParams{
				Tops: 2, RootsPerTop: 2, Fanout: 2, LeavesPerSub: 2,
				ConflictRate: tcr / 2, TopConflictRate: tcr, Seed: seed,
			}).Sys)
		}
		folds += replayEpochsExact(t, fmt.Sprintf("ckjoin/seed%d", seed), systems)
	}
	if folds == 0 {
		t.Fatal("join sweep folded nothing; loosen the workload")
	}
}

// TestCheckpointPrefixExactGeneral sweeps general configurations — the
// streams also deepen the invocation graph mid-flight, so folds interleave
// with level-change rebuilds. Folds happen on the finest stream too
// (DecomposeSteps), exercising folds of complete roots while later roots
// are mid-construction.
func TestCheckpointPrefixExactGeneral(t *testing.T) {
	folds := 0
	for _, cr := range []float64{0.2, 0.6} {
		for seed := int64(1); seed <= 4; seed++ {
			exec := workload.General(workload.GeneralParams{
				Depth: 2, SchedsPerLevel: 2, Roots: 4, Fanout: 2,
				LeafRate: 0.4, ConflictRate: cr, Seed: seed,
			})
			tag := fmt.Sprintf("ckgeneral/c%.1f/seed%d", cr, seed)
			_, _, k1 := replayCheckpointExact(t, tag+"/roots", front.DecomposeByRoot(exec.Sys), 2)
			_, _, k2 := replayCheckpointExact(t, tag+"/steps", front.DecomposeSteps(exec.Sys), 5)
			folds += k1 + k2
		}
	}
	if folds == 0 {
		t.Fatal("general sweep folded nothing; loosen the workload")
	}
}

// TestCheckpointAdmitStream runs the certification fast path across
// epoch folds: Admit must return (nil, nil) exactly while the pruned
// prefix stays correct and the reference failure verdict afterwards.
func TestCheckpointAdmitStream(t *testing.T) {
	sawFold, sawFailure := false, false
	for seed := int64(1); seed <= 4; seed++ {
		inc := front.NewIncremental(front.IncrementalOptions{})
		prefix := model.NewSystem()
		for e, cr := range []float64{0.1, 0.4, 0.8} {
			sys := workload.Stack(workload.StackParams{
				Levels: 2, Roots: 4, Fanout: 2, ConflictRate: cr, Seed: seed,
			}).Sys
			deltas := renameNodes(front.DecomposeByRoot(sys), fmt.Sprintf("e%d.", e))
			for i, d := range deltas {
				var kept []model.ScheduleID
				for _, s := range d.Schedules {
					if prefix.Schedule(s) == nil {
						kept = append(kept, s)
					}
				}
				d.Schedules = kept
				d.Apply(prefix)
				gotV, gotErr := inc.Admit(d)
				wantV, wantErr := front.CheckReference(prefix, front.Options{})
				tag := fmt.Sprintf("ckadmit/seed%d/epoch%d/prefix%d", seed, e, i)
				if wantErr == nil && wantV.Correct {
					if gotV != nil || gotErr != nil {
						t.Fatalf("%s: correct prefix: Admit = (%v, %v), want (nil, nil)", tag, gotV, gotErr)
					}
				} else {
					sawFailure = true
					assertVerdictsEqual(t, tag, gotV, gotErr, wantV, wantErr)
				}
			}
			if inc.Degraded() {
				continue
			}
			roots := prefix.Roots()
			if _, err := inc.Checkpoint(roots); err != nil {
				t.Fatalf("seed %d epoch %d: checkpoint: %v", seed, e, err)
			}
			for _, r := range roots {
				prefix.RemoveTree(r)
			}
			sawFold = true
		}
	}
	if !sawFold || !sawFailure {
		t.Fatalf("admit sweep must fold and fail at least once: folds=%v failures=%v", sawFold, sawFailure)
	}
}

// TestCheckpointRejectsFoldedReferences asserts the truncation contract:
// once a root is folded, a delta referencing any of its nodes is rejected
// like a reference to a truncated LSN, and the engine continues
// prefix-exact afterwards.
func TestCheckpointRejectsFoldedReferences(t *testing.T) {
	sys := workload.Stack(workload.StackParams{
		Levels: 2, Roots: 4, Fanout: 2, ConflictRate: 0, Seed: 3,
	}).Sys
	deltas := front.DecomposeByRoot(sys)
	inc := front.NewIncremental(front.IncrementalOptions{})
	prefix := model.NewSystem()
	var folded model.NodeID
	for i, d := range deltas {
		d.Apply(prefix)
		if _, err := inc.Append(d); err != nil {
			t.Fatalf("prefix %d: %v", i, err)
		}
		if i == 1 {
			targets := foldableRoots(prefix, deltas[i+1:])
			if len(targets) == 0 {
				t.Fatal("no foldable roots at the boundary; adjust the workload")
			}
			folded = targets[0]
			sched := prefix.Node(folded).Sched
			if _, err := inc.Checkpoint(targets[:1]); err != nil {
				t.Fatal(err)
			}
			prefix.RemoveTree(folded)
			live := prefix.Roots()
			if len(live) == 0 {
				t.Fatal("fold left no live root to pair against")
			}
			bad := &front.Delta{WeakIn: []front.DeltaPair{{Sched: sched, A: folded, B: live[0]}}}
			if v, err := inc.Append(bad); err == nil {
				t.Fatalf("delta referencing folded root %q accepted (verdict %v)", folded, v)
			}
		}
	}
	gotV, gotErr := front.CheckReference(prefix, front.Options{})
	wantV, wantErr := front.Check(inc.System(), front.Options{})
	assertVerdictsEqual(t, "post-fold-tail", wantV, wantErr, gotV, gotErr)
}

// TestCheckpointErrors pins the refusal cases: degraded engines, unknown
// roots, non-roots, duplicates — each must leave the engine untouched.
func TestCheckpointErrors(t *testing.T) {
	sys := workload.Stack(workload.StackParams{
		Levels: 2, Roots: 2, Fanout: 2, ConflictRate: 0, Seed: 1,
	}).Sys
	inc := front.NewIncremental(front.IncrementalOptions{})
	for _, d := range front.DecomposeByRoot(sys) {
		if _, err := inc.Append(d); err != nil {
			t.Fatal(err)
		}
	}
	roots := inc.System().Roots()
	if _, err := inc.Checkpoint([]model.NodeID{"no-such-root"}); err == nil {
		t.Fatal("checkpoint of unknown root accepted")
	}
	var nonRoot model.NodeID
	for _, id := range inc.System().NodeIDs() {
		if inc.System().Node(id).Parent != "" {
			nonRoot = id
			break
		}
	}
	if _, err := inc.Checkpoint([]model.NodeID{nonRoot}); err == nil {
		t.Fatalf("checkpoint of non-root %q accepted", nonRoot)
	}
	if _, err := inc.Checkpoint([]model.NodeID{roots[0], roots[0]}); err == nil {
		t.Fatal("checkpoint naming a root twice accepted")
	}
	if got, want := inc.LiveNodes(), len(inc.System().NodeIDs()); got != want {
		t.Fatalf("failed checkpoints changed live node count: %d != %d", got, want)
	}
	if inc.Checkpoints() != 0 {
		t.Fatalf("failed checkpoints counted: %d", inc.Checkpoints())
	}

	// A degraded engine refuses to fold (the history is not certified).
	bad := front.NewIncremental(front.IncrementalOptions{})
	for seed := int64(1); ; seed++ {
		if seed > 50 {
			t.Fatal("no violating execution found")
		}
		vsys := workload.Stack(workload.StackParams{
			Levels: 2, Roots: 3, Fanout: 2, ConflictRate: 0.9, Seed: seed,
		}).Sys
		bad = front.NewIncremental(front.IncrementalOptions{})
		for _, d := range front.DecomposeSteps(vsys) {
			if _, err := bad.Append(d); err != nil {
				t.Fatal(err)
			}
		}
		if bad.Degraded() {
			break
		}
	}
	if _, err := bad.Checkpoint(bad.System().Roots()); err == nil {
		t.Fatal("degraded engine accepted a checkpoint")
	}
}

// TestCheckpointBoundarySummary checks the per-level boundary bookkeeping:
// live + dropped at each level must equal the pre-fold front population.
func TestCheckpointBoundarySummary(t *testing.T) {
	sys := workload.Stack(workload.StackParams{
		Levels: 3, Roots: 4, Fanout: 2, ConflictRate: 0.1, Seed: 2,
	}).Sys
	inc := front.NewIncremental(front.IncrementalOptions{})
	prefix := model.NewSystem()
	for _, d := range front.DecomposeByRoot(sys) {
		d.Apply(prefix)
		if _, err := inc.Append(d); err != nil {
			t.Fatal(err)
		}
	}
	if inc.Degraded() {
		t.Skip("seeded execution is incorrect; pick another seed")
	}
	targets := prefix.Roots()[:2]
	before := inc.LiveNodes()
	sum, err := inc.Checkpoint(targets)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Nodes == 0 || before-sum.Nodes != inc.LiveNodes() {
		t.Fatalf("fold dropped %d of %d nodes but %d remain live", sum.Nodes, before, inc.LiveNodes())
	}
	if len(sum.Boundary) == 0 {
		t.Fatal("summary has no per-level boundary state")
	}
	for _, b := range sum.Boundary {
		if b.Live < 0 || b.Dropped < 0 {
			t.Fatalf("level %d: negative boundary counts %+v", b.Level, b)
		}
	}
	if inc.Checkpoints() != 1 {
		t.Fatalf("Checkpoints() = %d, want 1", inc.Checkpoints())
	}
}
