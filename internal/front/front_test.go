package front

import (
	"reflect"
	"testing"

	"compositetx/internal/model"
	"compositetx/internal/order"
)

func mustCheck(t *testing.T, sys *model.System) *Verdict {
	t.Helper()
	if err := sys.Validate(); err != nil {
		t.Fatalf("fixture should validate: %v", err)
	}
	v, err := Check(sys, Options{KeepFronts: true})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return v
}

// flatSystem builds a single-schedule (order 1) system with two
// transactions and the given leaf structure. ops maps leaf -> transaction.
func flatSystem(conflicts [][2]model.NodeID, weakOut [][2]model.NodeID) *model.System {
	s := model.NewSystem()
	sc := s.AddSchedule("S")
	s.AddRoot("T1", "S")
	s.AddRoot("T2", "S")
	s.AddLeaf("a1", "T1")
	s.AddLeaf("a2", "T1")
	s.AddLeaf("b1", "T2")
	s.AddLeaf("b2", "T2")
	for _, c := range conflicts {
		sc.AddConflict(c[0], c[1])
	}
	for _, p := range weakOut {
		sc.WeakOut.Add(p[0], p[1])
	}
	return s
}

func TestLevel0Front(t *testing.T) {
	sys := Figure2System()
	sys.Normalize()
	f := Level0(sys)
	want := []model.NodeID{"o13", "o25", "p1", "p2"}
	if got := f.Nodes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("level 0 nodes = %v, want %v", got, want)
	}
	if !f.Obs.Has("o13", "o25") || !f.Obs.Has("p2", "p1") {
		t.Error("level 0 observed order missing schedule weak output pairs (Def 10 rule 1)")
	}
	if !f.Con.Has("o13", "o25") || !f.Con.Has("p1", "p2") {
		t.Error("level 0 conflicts missing schedule conflict pairs (Def 11 case 1)")
	}
	if f.WeakIn.Len() != 0 {
		t.Error("leaves are transactions of no schedule; level 0 input orders must be empty")
	}
	if !f.IsCC() {
		t.Error("level 0 front should be conflict consistent")
	}
}

func TestFlatSerializable(t *testing.T) {
	// T1: a1, a2; T2: b1, b2. Conflicts a1-b1; order a1 before b1:
	// serializable as T1, T2.
	sys := flatSystem(
		[][2]model.NodeID{{"a1", "b1"}},
		[][2]model.NodeID{{"a1", "b1"}},
	)
	v := mustCheck(t, sys)
	if !v.Correct {
		t.Fatalf("expected correct, got: %s", v)
	}
	if want := []model.NodeID{"T1", "T2"}; !reflect.DeepEqual(v.SerialOrder, want) {
		t.Errorf("serial witness = %v, want %v", v.SerialOrder, want)
	}
}

func TestFlatNonSerializable(t *testing.T) {
	// Classic interleaving: a1 before b1 but b2 before a2, all conflicting:
	// T1 < T2 and T2 < T1.
	sys := flatSystem(
		[][2]model.NodeID{{"a1", "b1"}, {"a2", "b2"}},
		[][2]model.NodeID{{"a1", "b1"}, {"b2", "a2"}},
	)
	v := mustCheck(t, sys)
	if v.Correct {
		t.Fatalf("expected incorrect, got: %s", v)
	}
	if v.FailedLevel != 1 {
		t.Errorf("FailedLevel = %d, want 1", v.FailedLevel)
	}
}

func TestFlatInterleavedButCommuting(t *testing.T) {
	// Same interleaving, but no conflicts at all: every order is correct.
	sys := flatSystem(nil, nil)
	v := mustCheck(t, sys)
	if !v.Correct {
		t.Fatalf("expected correct, got: %s", v)
	}
}

func TestFigure2(t *testing.T) {
	v := mustCheck(t, Figure2System())
	if !v.Correct {
		t.Fatalf("Figure 2 execution should be Comp-C: %s", v)
	}
	if v.Order != 2 {
		t.Errorf("Order = %d, want 2", v.Order)
	}
	// The prose: the roots are incrementally related (T3 before T1 before
	// T2 in our concrete instance).
	if want := []model.NodeID{"T3", "T1", "T2"}; !reflect.DeepEqual(v.SerialOrder, want) {
		t.Errorf("serial witness = %v, want %v", v.SerialOrder, want)
	}
	// The level 1 front must relate the subtransactions cross-schedule.
	f1 := v.Fronts[1]
	if !f1.Obs.Has("t1", "t2") || !f1.Obs.Has("t3", "t1b") {
		t.Errorf("level 1 front observed order incomplete: %v", f1.Obs.Pairs())
	}
	// Cross-schedule observed pairs are generalized conflicts (Def 11.2).
	if !f1.Con.Has("t1", "t2") {
		t.Error("generalized conflict (t1,t2) missing")
	}
}

func TestFigure3Incorrect(t *testing.T) {
	v := mustCheck(t, Figure3System())
	if v.Correct {
		t.Fatalf("Figure 3 execution must not be Comp-C: %s", v)
	}
	if v.Order != 3 {
		t.Errorf("Order = %d, want 3", v.Order)
	}
	// The prose: the level 2 front exists; the failure is the final step.
	if v.FailedLevel != 3 {
		t.Errorf("FailedLevel = %d, want 3", v.FailedLevel)
	}
	last := v.Steps[len(v.Steps)-1]
	if last.Failure != FailIsolation {
		t.Errorf("failure kind = %v, want FailIsolation (no isolated execution for T1)", last.Failure)
	}
	// The level 1 front shows the two conflicts pulled up between
	// transaction pairs originating on different schedules.
	f1 := v.Fronts[1]
	if !f1.Obs.Has("up1", "uq2") || !f1.Obs.Has("up2", "uq1") {
		t.Errorf("level 1 front should contain the two pulled-up orders: %v", f1.Obs.Pairs())
	}
	if !f1.Con.Has("up1", "uq2") || !f1.Con.Has("up2", "uq1") {
		t.Errorf("level 1 front should mark both pairs conflicting: %v", f1.Con.Pairs())
	}
	// The level 2 front orders the mid-level transactions against each
	// other in both directions across the two roots.
	f2 := v.Fronts[2]
	if !f2.Obs.Has("p1", "q2") || !f2.Obs.Has("p2", "q1") {
		t.Errorf("level 2 front observed order incomplete: %v", f2.Obs.Pairs())
	}
	// The witness cycle involves both roots.
	cyc := map[model.NodeID]bool{}
	for _, n := range last.Cycle {
		cyc[n] = true
	}
	if !cyc["T1"] || !cyc["T2"] {
		t.Errorf("witness cycle %v should involve T1 and T2", last.Cycle)
	}
}

func TestFigure4Correct(t *testing.T) {
	v := mustCheck(t, Figure4System())
	if !v.Correct {
		t.Fatalf("Figure 4 execution should be Comp-C: %s", v)
	}
	if v.Order != 3 {
		t.Errorf("Order = %d, want 3", v.Order)
	}
	// Same interference pattern as Figure 3 at level 2...
	f2 := v.Fronts[2]
	if !f2.Obs.Has("p1", "q2") || !f2.Obs.Has("p2", "q1") {
		t.Errorf("level 2 front observed order incomplete: %v", f2.Obs.Pairs())
	}
	// ...but the pairs are between operations of the common schedule STop,
	// which declares no conflict, so they are not generalized conflicts...
	if f2.Con.Has("p1", "q2") || f2.Con.Has("p2", "q1") {
		t.Errorf("level 2 pairs should not be generalized conflicts: %v", f2.Con.Pairs())
	}
	// ...and the orders are forgotten at the final step: the level 3 front
	// has no observed order left.
	f3 := v.Fronts[3]
	if got := f3.Nodes(); !reflect.DeepEqual(got, []model.NodeID{"T1", "T2"}) {
		t.Fatalf("level 3 front = %v, want roots only", got)
	}
	if f3.Obs.Len() != 0 {
		t.Errorf("level 3 front observed order should be empty (forgotten), got %v", f3.Obs.Pairs())
	}
}

func TestFigure3Vs4OnlyDifferInConfiguration(t *testing.T) {
	// The two systems record the *same* leaf-level interference; only the
	// top-level configuration differs (two ignorant top schedules vs one
	// that vouches for commutativity). This is the paper's core point:
	// correctness depends on the configuration, not just the leaves.
	s3, s4 := Figure3System(), Figure4System()
	sd3, sd4 := s3.Schedule("SD"), s4.Schedule("SD")
	if !reflect.DeepEqual(sd3.Conflicts.Pairs(), sd4.Conflicts.Pairs()) {
		t.Error("leaf conflicts differ between Figure 3 and Figure 4 systems")
	}
	if !reflect.DeepEqual(sd3.WeakOut.Pairs(), sd4.WeakOut.Pairs()) {
		t.Error("leaf orders differ between Figure 3 and Figure 4 systems")
	}
}

func TestFigure1General(t *testing.T) {
	v := mustCheck(t, Figure1System())
	if !v.Correct {
		t.Fatalf("Figure 1 execution should be Comp-C: %s", v)
	}
	if v.Order != 3 {
		t.Errorf("Order = %d, want 3", v.Order)
	}
	// T4 must be serialized before T5 (they met at S4).
	pos := map[model.NodeID]int{}
	for i, n := range v.SerialOrder {
		pos[n] = i
	}
	if pos["T4"] > pos["T5"] {
		t.Errorf("serial witness %v should place T4 before T5", v.SerialOrder)
	}
	// T5/T6 interference at S5 is forgotten at S3 (their common schedule
	// declares no conflict), so the witness only needs T4 < T5.
	f3 := v.Fronts[3]
	if f3.Obs.Has("T5", "T6") || f3.Obs.Has("T6", "T5") {
		t.Errorf("T5/T6 order should have been forgotten at S3: %v", f3.Obs.Pairs())
	}
}

// TestUnevenHeightsOneSidedLift exercises interpretation D2: a pair whose
// endpoints are absorbed at different reduction steps must be lifted one
// side at a time.
func TestUnevenHeightsOneSidedLift(t *testing.T) {
	s := model.NewSystem()
	s.AddSchedule("STall")    // level 3
	s.AddSchedule("SMid")     // level 2
	s.AddSchedule("SFlat")    // level 2 (its root is short)
	sd := s.AddSchedule("SD") // level 1, shared

	// Tall root: TT -> tm (SMid) -> td (SD) -> leaf d1.
	s.AddRoot("TT", "STall")
	s.AddTx("tm", "TT", "SMid")
	s.AddTx("td", "tm", "SD")
	s.AddLeaf("d1", "td")

	// Short root: TS -> ts (SD) directly; TS is a transaction of SFlat.
	s.AddRoot("TS", "SFlat")
	s.AddTx("ts", "TS", "SD")
	s.AddLeaf("d2", "ts")

	sd.AddConflict("d1", "d2")
	sd.WeakOut.Add("d1", "d2")

	v := mustCheck(t, s)
	if !v.Correct {
		t.Fatalf("expected correct: %s", v)
	}
	// After step 1: td <o ts. After step 2 (SMid and SFlat): tm <o TS —
	// TS is final while tm still has one level to go.
	f2 := v.Fronts[2]
	if !f2.Obs.Has("tm", "TS") {
		t.Errorf("level 2 front should order tm before TS: %v", f2.Obs.Pairs())
	}
	if want := []model.NodeID{"TT", "TS"}; !reflect.DeepEqual(v.SerialOrder, want) {
		t.Errorf("serial witness = %v, want %v", v.SerialOrder, want)
	}
}

// TestCCFailureViaTransitiveInterference: a root requires data flow
// x1 before x2 (weak intra order), but a third party's conflicts serialize
// x2's effects before x1's through schedules the root never sees. The
// reduction must fail the conflict-consistency check (Definition 16 step 6).
func TestCCFailureViaTransitiveInterference(t *testing.T) {
	s := model.NewSystem()
	stop1 := s.AddSchedule("STop1") // level 3, schedules A
	s.AddSchedule("STop2")          // level 2, schedules C
	sm := s.AddSchedule("SM")       // level 2
	sd1 := s.AddSchedule("SD1")     // level 1
	sd2 := s.AddSchedule("SD2")     // level 1

	s.AddRoot("A", "STop1")
	s.AddTx("x1", "A", "SM")
	s.AddTx("x2", "A", "SM")
	s.Node("A").WeakIntra = order.FromPairs([2]model.NodeID{"x1", "x2"})
	stop1.WeakOut.Add("x1", "x2") // Def 3.2: output respects intra order
	sm.WeakIn.Add("x1", "x2")     // Def 4.7: passed down as input order

	s.AddTx("w1", "x1", "SD1")
	s.AddTx("w2", "x2", "SD2")
	s.AddLeaf("lw1", "w1")
	s.AddLeaf("lw2", "w2")

	s.AddRoot("C", "STop2")
	s.AddTx("c1", "C", "SD1")
	s.AddTx("c2", "C", "SD2")
	s.AddLeaf("lc1", "c1")
	s.AddLeaf("lc2", "c2")

	// C's SD1 work happened before x1's; x2's SD2 work happened before C's.
	sd1.AddConflict("lc1", "lw1")
	sd1.WeakOut.Add("lc1", "lw1")
	sd2.AddConflict("lw2", "lc2")
	sd2.WeakOut.Add("lw2", "lc2")

	v := mustCheck(t, s)
	if v.Correct {
		t.Fatalf("transitive interference against the data flow must be incorrect: %s", v)
	}
	if v.FailedLevel != 2 {
		t.Errorf("FailedLevel = %d, want 2", v.FailedLevel)
	}
	last := v.Steps[len(v.Steps)-1]
	if last.Failure != FailCC {
		t.Errorf("failure kind = %v, want FailCC", last.Failure)
	}
}

// TestWeakVsStrongInputOrder: the same interference is incorrect under a
// strong (temporal) order but correct under a weak one, because only
// strongly ordered pairs are pinned during the rearrangement
// (Definition 16 step 1) while weak orders constrain net effect only.
func TestWeakVsStrongInputOrder(t *testing.T) {
	build := func(strong bool) *model.System {
		s := model.NewSystem()
		s.AddSchedule("STop1")    // level 3: A
		s.AddSchedule("STop2")    // level 3: B
		sx := s.AddSchedule("SX") // level 1: x1, x2 (no conflicts there)
		s.AddSchedule("S2A")      // level 2: ya
		s.AddSchedule("S2B")      // level 2: yb
		sd := s.AddSchedule("SD") // level 1, shared by ya/yb subtrees

		s.AddRoot("A", "STop1")
		s.AddRoot("B", "STop2")
		s.AddTx("x1", "A", "SX")
		s.AddTx("x2", "B", "SX")
		s.AddLeaf("l1", "x1")
		s.AddLeaf("l2", "x2")

		s.AddTx("ya", "A", "S2A")
		s.AddTx("yb", "B", "S2B")
		s.AddTx("za", "ya", "SD")
		s.AddTx("zb", "yb", "SD")
		s.AddLeaf("la", "za")
		s.AddLeaf("lb", "zb")

		// Interference at SD puts B's work before A's.
		sd.AddConflict("la", "lb")
		sd.WeakOut.Add("lb", "la")

		// SX received x1 before x2.
		sx.WeakIn.Add("x1", "x2")
		if strong {
			sx.StrongIn.Add("x1", "x2")
			sx.StrongOut.Add("l1", "l2") // Def 3.3
			sx.WeakOut.Add("l1", "l2")
		}
		return s
	}

	weak := mustCheck(t, build(false))
	if !weak.Correct {
		t.Fatalf("weakly ordered variant should be correct: %s", weak)
	}
	strong := mustCheck(t, build(true))
	if strong.Correct {
		t.Fatalf("strongly ordered variant must be incorrect: %s", strong)
	}
	last := strong.Steps[len(strong.Steps)-1]
	if last.Failure != FailIsolation {
		t.Errorf("failure kind = %v, want FailIsolation", last.Failure)
	}
}

func TestEmptyTransaction(t *testing.T) {
	s := model.NewSystem()
	s.AddSchedule("S")
	s.AddRoot("T1", "S")
	s.AddRoot("T2", "S")
	s.AddLeaf("a", "T1")
	// T2 has no operations at all.
	v := mustCheck(t, s)
	if !v.Correct {
		t.Fatalf("empty transaction should be trivially correct: %s", v)
	}
	if len(v.SerialOrder) != 2 {
		t.Errorf("serial witness %v should include the empty transaction", v.SerialOrder)
	}
}

func TestSingleRootSingleLeaf(t *testing.T) {
	s := model.NewSystem()
	s.AddSchedule("S")
	s.AddRoot("T", "S")
	s.AddLeaf("a", "T")
	v := mustCheck(t, s)
	if !v.Correct || v.Order != 1 {
		t.Fatalf("trivial system: %s (order %d)", v, v.Order)
	}
}

func TestCheckRejectsRecursiveConfiguration(t *testing.T) {
	s := model.NewSystem()
	s.AddSchedule("SA")
	s.AddSchedule("SB")
	s.AddRoot("T", "SA")
	s.AddTx("t1", "T", "SB")
	s.AddTx("t2", "t1", "SA")
	if _, err := Check(s, Options{}); err == nil {
		t.Fatal("Check must reject recursive configurations")
	}
}

func TestVerdictStringAndTrace(t *testing.T) {
	v := mustCheck(t, Figure3System())
	if s := v.String(); s == "" {
		t.Error("empty String")
	}
	tr := v.Trace()
	if tr == "" {
		t.Error("empty Trace")
	}
	ok := mustCheck(t, Figure4System())
	if s := ok.String(); s == "" {
		t.Error("empty String for correct verdict")
	}
	if tr := ok.Trace(); tr == "" {
		t.Error("empty Trace for correct verdict")
	}
}

func TestIsCompC(t *testing.T) {
	ok, err := IsCompC(Figure4System())
	if err != nil || !ok {
		t.Fatalf("IsCompC(fig4) = %v, %v; want true, nil", ok, err)
	}
	ok, err = IsCompC(Figure3System())
	if err != nil || ok {
		t.Fatalf("IsCompC(fig3) = %v, %v; want false, nil", ok, err)
	}
}

func TestCheckDoesNotMutate(t *testing.T) {
	sys := Figure3System()
	before := sys.Schedule("SD").WeakOut.Pairs()
	if _, err := Check(sys, Options{}); err != nil {
		t.Fatal(err)
	}
	after := sys.Schedule("SD").WeakOut.Pairs()
	if !reflect.DeepEqual(before, after) {
		t.Fatal("Check mutated the input system")
	}
}
