package front

import (
	"encoding/json"
	"strings"
	"testing"

	"compositetx/internal/model"
)

// TestStepwiseReduction drives the reduction manually with the exported
// Level0/Step API (advanced use: inspecting each front).
func TestStepwiseReduction(t *testing.T) {
	sys := Figure4System()
	sys.Normalize()
	levels, err := sys.Levels()
	if err != nil {
		t.Fatal(err)
	}
	f := Level0(sys)
	if f.Level != 0 || f.Len() != 4 {
		t.Fatalf("level 0 front: %s", f)
	}
	for f.Level < 3 {
		nf, rep := Step(sys, f, levels)
		if nf == nil {
			t.Fatalf("unexpected failure: %s", rep)
		}
		if rep.Level != f.Level+1 {
			t.Fatalf("report level %d after front level %d", rep.Level, f.Level)
		}
		if rep.Failure != FailNone {
			t.Fatalf("report carries failure on success: %s", rep)
		}
		f = nf
	}
	if !f.IsCC() {
		t.Fatal("final front must be CC")
	}
	w, ok := f.SerialWitness()
	if !ok || len(w) != 2 {
		t.Fatalf("witness = %v, %v", w, ok)
	}
	// A front over two unordered roots is not serial (no strong total
	// order), but it is equivalent to a serial one via the witness.
	if f.IsSerial() {
		t.Fatal("unordered roots do not form a serial front (Def 17)")
	}
}

func TestFrontIsSerial(t *testing.T) {
	sys := model.NewSystem()
	sc := sys.AddSchedule("S")
	sys.AddRoot("T1", "S")
	sys.AddRoot("T2", "S")
	sys.AddLeaf("a", "T1")
	sys.AddLeaf("b", "T2")
	sc.StrongIn.Add("T1", "T2")
	sc.WeakIn.Add("T1", "T2")
	sc.StrongOut.Add("a", "b")
	sc.WeakOut.Add("a", "b")
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	v, err := Check(sys, Options{KeepFronts: true})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Correct {
		t.Fatalf("sequential execution must be correct: %s", v)
	}
	final := v.Fronts[len(v.Fronts)-1]
	if !final.IsSerial() {
		t.Fatal("strongly totally ordered roots form a serial front (Def 17)")
	}
}

func TestVerdictJSON(t *testing.T) {
	v, err := Check(Figure3System(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"correct":false`, `"failedLevel":3`, `"no isolated rearrangement`, `"T1"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("verdict JSON missing %q:\n%s", want, s)
		}
	}
	ok, err := Check(Figure4System(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err = json.Marshal(ok)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"correct":true`) {
		t.Fatalf("verdict JSON: %s", data)
	}
}

func TestFailureKindStrings(t *testing.T) {
	for k, want := range map[FailureKind]string{
		FailNone:        "ok",
		FailCalculation: "no calculation",
		FailIsolation:   "no isolated rearrangement",
		FailCC:          "not conflict consistent",
		FailureKind(99): "FailureKind(99)",
	} {
		if got := k.String(); !strings.Contains(got, want) {
			t.Errorf("FailureKind(%d) = %q, want substring %q", int(k), got, want)
		}
	}
}
