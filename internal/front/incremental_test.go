package front_test

import (
	"fmt"
	"testing"

	"compositetx/internal/front"
	"compositetx/internal/model"
	"compositetx/internal/workload"
)

// replayPrefixExact streams deltas through an Incremental while applying
// the same deltas to a parallel prefix system, asserting after EVERY
// delta that Append's verdict — success or violation witness — is
// identical to CheckReference over the prefix. This is the prefix-exact
// oracle of the incremental engine: every prefix of the stream is itself
// a well-formed execution, and the engine may never disagree with the
// reference reduction on any of them. Returns the per-outcome prefix
// counts for coverage accounting and the engine (for rebuild checks).
func replayPrefixExact(t *testing.T, tag string, deltas []*front.Delta) (correct, failed int, inc *front.Incremental) {
	t.Helper()
	inc = front.NewIncremental(front.IncrementalOptions{})
	prefix := model.NewSystem()
	for i, d := range deltas {
		d.Apply(prefix)
		gotV, gotErr := inc.Append(d)
		wantV, wantErr := front.CheckReference(prefix, front.Options{})
		assertVerdictsEqual(t, fmt.Sprintf("%s/prefix%d", tag, i), gotV, gotErr, wantV, wantErr)
		if gotErr == nil && gotV.Correct {
			correct++
		} else {
			failed++
		}
	}
	return correct, failed, inc
}

// replayBoth runs the prefix-exact oracle over both decompositions of an
// execution: op-by-op (DecomposeSteps, the finest stream) and
// commit-by-commit (DecomposeByRoot, what a live certifier sees).
func replayBoth(t *testing.T, tag string, sys *model.System) (correct, failed int) {
	t.Helper()
	c1, f1, _ := replayPrefixExact(t, tag+"/steps", front.DecomposeSteps(sys))
	c2, f2, _ := replayPrefixExact(t, tag+"/roots", front.DecomposeByRoot(sys))
	return c1 + c2, f1 + f2
}

// TestIncrementalPrefixExactStack sweeps random stack executions across
// depth, width, conflict density and strong-order density, asserting
// prefix-exact agreement with CheckReference on every stream prefix.
func TestIncrementalPrefixExactStack(t *testing.T) {
	correct, failed := 0, 0
	for _, levels := range []int{1, 2, 3} {
		for _, roots := range []int{1, 3} {
			for _, cr := range []float64{0, 0.3, 0.9} {
				for _, sr := range []float64{0, 0.4} {
					for seed := int64(1); seed <= 3; seed++ {
						exec := workload.Stack(workload.StackParams{
							Levels: levels, Roots: roots, Fanout: 2,
							ConflictRate: cr, StrongRate: sr, Seed: seed,
						})
						tag := fmt.Sprintf("stack/l%d/r%d/c%.1f/s%.1f/seed%d", levels, roots, cr, sr, seed)
						c, f := replayBoth(t, tag, exec.Sys)
						correct += c
						failed += f
					}
				}
			}
		}
	}
	if correct == 0 || failed == 0 {
		t.Fatalf("sweep must cover both outcomes: %d correct, %d failed prefixes", correct, failed)
	}
}

// TestIncrementalPrefixExactFork sweeps random fork executions.
func TestIncrementalPrefixExactFork(t *testing.T) {
	for _, branches := range []int{1, 3} {
		for _, cr := range []float64{0.3, 0.8} {
			for seed := int64(1); seed <= 3; seed++ {
				exec := workload.Fork(workload.ForkParams{
					Branches: branches, Roots: 2, Fanout: 2, LeavesPerSub: 2,
					ConflictRate: cr, Seed: seed,
				})
				replayBoth(t, fmt.Sprintf("fork/b%d/c%.1f/seed%d", branches, cr, seed), exec.Sys)
			}
		}
	}
}

// TestIncrementalPrefixExactJoin sweeps random join executions.
func TestIncrementalPrefixExactJoin(t *testing.T) {
	for _, tcr := range []float64{0.2, 0.6} {
		for seed := int64(1); seed <= 3; seed++ {
			exec := workload.Join(workload.JoinParams{
				Tops: 2, RootsPerTop: 2, Fanout: 2, LeavesPerSub: 2,
				ConflictRate: 0.3, TopConflictRate: tcr, Seed: seed,
			})
			replayBoth(t, fmt.Sprintf("join/t%.1f/seed%d", tcr, seed), exec.Sys)
		}
	}
}

// TestIncrementalPrefixExactGeneral sweeps general configurations: mixed
// leaf and transaction operations exercise rule-1 lifting, multi-level
// fronts and — because schedules are invoked gradually — engine rebuilds
// on level-assignment changes.
func TestIncrementalPrefixExactGeneral(t *testing.T) {
	for _, depth := range []int{2, 3} {
		for _, cr := range []float64{0.3, 0.7} {
			for seed := int64(1); seed <= 5; seed++ {
				exec := workload.General(workload.GeneralParams{
					Depth: depth, SchedsPerLevel: 2, Roots: 2, Fanout: 2,
					LeafRate: 0.4, ConflictRate: cr, Seed: seed,
				})
				replayBoth(t, fmt.Sprintf("general/d%d/c%.1f/seed%d", depth, cr, seed), exec.Sys)
			}
		}
	}
}

// TestIncrementalPrefixExactFigures pins the paper's two worked examples.
func TestIncrementalPrefixExactFigures(t *testing.T) {
	replayBoth(t, "figure3", front.Figure3System())
	replayBoth(t, "figure4", front.Figure4System())
}

// TestIncrementalSingleDelta feeds whole systems as one SystemDelta: the
// degenerate stream where the incremental engine must still match the
// batch checker exactly.
func TestIncrementalSingleDelta(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		sys := workload.Stack(workload.StackParams{
			Levels: 3, Roots: 2, Fanout: 2, ConflictRate: 0.4, Seed: seed,
		}).Sys
		replayPrefixExact(t, fmt.Sprintf("whole/seed%d", seed), []*front.Delta{front.SystemDelta(sys)})
	}
}

// TestIncrementalStaysDegraded asserts the monotonicity contract: once a
// prefix is incorrect every later prefix is incorrect too, the engine
// reports Degraded, and its delegated verdicts keep matching the
// reference (covered pair by pair inside replayPrefixExact).
func TestIncrementalStaysDegraded(t *testing.T) {
	sawDegraded := false
	for seed := int64(1); seed <= 6; seed++ {
		sys := workload.Stack(workload.StackParams{
			Levels: 2, Roots: 3, Fanout: 2, ConflictRate: 0.9, Seed: seed,
		}).Sys
		_, failed, inc := replayPrefixExact(t, fmt.Sprintf("degraded/seed%d", seed), front.DecomposeSteps(sys))
		if failed > 0 {
			sawDegraded = true
			if !inc.Degraded() {
				t.Fatalf("seed %d: %d failed prefixes but engine not degraded", seed, failed)
			}
		}
	}
	if !sawDegraded {
		t.Fatal("sweep produced no incorrect execution; raise the conflict rate")
	}
}

// TestIncrementalRebuildsOnLevelChange drives a stream whose invocation
// graph deepens mid-flight: schedule levels change, forcing full engine
// rebuilds, and the verdicts must stay prefix-exact across them.
func TestIncrementalRebuildsOnLevelChange(t *testing.T) {
	sys := workload.General(workload.GeneralParams{
		Depth: 3, SchedsPerLevel: 2, Roots: 2, Fanout: 2,
		LeafRate: 0.5, ConflictRate: 0.3, Seed: 2,
	}).Sys
	_, _, inc := replayPrefixExact(t, "rebuild", front.DecomposeSteps(sys))
	if inc.Rebuilds() < 2 {
		t.Fatalf("deepening stream caused %d rebuilds, want >= 2 (level changes must rebuild)", inc.Rebuilds())
	}
}

// TestIncrementalAdmit checks the certification fast path: Admit returns
// (nil, nil) exactly while the accumulated execution stays correct and
// the reference's full failure verdict from the first violation on.
func TestIncrementalAdmit(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		sys := workload.Stack(workload.StackParams{
			Levels: 2, Roots: 3, Fanout: 2, ConflictRate: 0.7, Seed: seed,
		}).Sys
		inc := front.NewIncremental(front.IncrementalOptions{})
		prefix := model.NewSystem()
		for i, d := range front.DecomposeByRoot(sys) {
			d.Apply(prefix)
			gotV, gotErr := inc.Admit(d)
			wantV, wantErr := front.CheckReference(prefix, front.Options{})
			tag := fmt.Sprintf("admit/seed%d/prefix%d", seed, i)
			if wantErr == nil && wantV.Correct {
				if gotV != nil || gotErr != nil {
					t.Fatalf("%s: correct prefix: Admit = (%v, %v), want (nil, nil)", tag, gotV, gotErr)
				}
				continue
			}
			assertVerdictsEqual(t, tag, gotV, gotErr, wantV, wantErr)
		}
	}
}

// TestIncrementalRejectsBadDeltas asserts all-or-nothing validation: a
// malformed delta is an error, leaves no trace, and the stream continues
// prefix-exact afterwards.
func TestIncrementalRejectsBadDeltas(t *testing.T) {
	sys := workload.Stack(workload.StackParams{
		Levels: 2, Roots: 2, Fanout: 2, ConflictRate: 0.3, Seed: 1,
	}).Sys
	deltas := front.DecomposeSteps(sys)
	inc := front.NewIncremental(front.IncrementalOptions{})
	prefix := model.NewSystem()
	bad := []*front.Delta{
		{Schedules: []model.ScheduleID{""}},
		{Nodes: []front.DeltaNode{{ID: "zz", Parent: "no-such-parent"}}},
		{Nodes: []front.DeltaNode{{ID: "zz2", Parent: "", Sched: "no-such-sched"}}},
		{Conflicts: []front.DeltaPair{{Sched: "no-such-sched", A: "x", B: "y"}}},
	}
	for i, d := range deltas {
		if v, err := inc.Append(bad[i%len(bad)]); err == nil {
			t.Fatalf("prefix %d: malformed delta accepted (verdict %v)", i, v)
		}
		d.Apply(prefix)
		gotV, gotErr := inc.Append(d)
		wantV, wantErr := front.CheckReference(prefix, front.Options{})
		assertVerdictsEqual(t, fmt.Sprintf("badmix/prefix%d", i), gotV, gotErr, wantV, wantErr)
	}
}

// BenchmarkIncrementalAppend measures the amortized per-commit cost of
// certifying a growing execution incrementally (one Admit per root).
func BenchmarkIncrementalAppend(b *testing.B) {
	sys := workload.Stack(workload.StackParams{
		Levels: 3, Roots: 16, Fanout: 2, ConflictRate: 0.05, Seed: 1,
	}).Sys
	deltas := front.DecomposeByRoot(sys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc := front.NewIncremental(front.IncrementalOptions{})
		for _, d := range deltas {
			if _, err := inc.Admit(d); err != nil {
				b.Fatal(err)
			}
		}
	}
}
