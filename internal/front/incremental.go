package front

import (
	"errors"
	"fmt"
	"sort"

	"compositetx/internal/model"
	"compositetx/internal/order"
)

// Incremental is the online Comp-C engine: it accumulates a composite
// execution delta by delta and re-decides correctness after each append
// by recomputing only the rows and levels a delta touches, instead of
// rerunning the whole reduction the way Check does.
//
// Soundness rests on monotonicity: appends only ever ADD nodes and pairs,
// and with a fixed level assignment every derived set of the reduction —
// per-level front membership intervals, observed orders, generalized
// conflicts, constraint relations — only grows. Incorrectness is
// therefore monotone: once any reduction check fails it fails forever,
// so the engine can propagate just the newly derived pairs ("frontier
// propagation" through levels 0..N) and poison itself on the first
// failure. When the delta changes the level assignment (a new schedule,
// or a new invocation edge), the engine rebuilds from the accumulated
// system; that happens at most once per topology edge, not per commit.
//
// Verdicts are identical to Check's (and so to CheckReference's): on
// success the engine materializes the same final front, serial witness
// and step reports; on failure it delegates the verdict to Check over
// the accumulated system, so failure diagnostics — reason, witness
// cycle, failed level — stay byte-identical. The property tests in
// incremental_test.go assert this prefix by prefix.
type Incremental struct {
	opts        IncrementalOptions
	sys         *model.System
	ig          *order.Relation[model.ScheduleID]
	levels      map[model.ScheduleID]int
	eng         *incEngine
	failed      bool
	rebuilds    int
	checkpoints int
}

// IncrementalOptions configures an Incremental.
type IncrementalOptions struct {
	// PropagateInputs mirrors the runtime recorder's Definition 4 item 7:
	// whenever the (closed) weak output order of a schedule relates two
	// of its operations that are transactions of one common callee
	// schedule, the pair is added to the callee's weak input order. The
	// runtime certifier enables this so the accumulated system matches
	// Runtime.RecordedSystem exactly.
	PropagateInputs bool
}

// NewIncremental returns an empty incremental engine.
func NewIncremental(opts IncrementalOptions) *Incremental {
	return &Incremental{
		opts:   opts,
		sys:    model.NewSystem(),
		ig:     order.New[model.ScheduleID](),
		levels: map[model.ScheduleID]int{},
	}
}

// System returns the accumulated composite system. Callers must not
// mutate it; append through deltas instead.
func (inc *Incremental) System() *model.System { return inc.sys }

// Degraded reports whether the engine has observed a violation and is
// delegating verdicts to the full checker (incorrectness is monotone, so
// every later prefix is incorrect too).
func (inc *Incremental) Degraded() bool { return inc.failed }

// Rebuilds counts full engine rebuilds (level-assignment changes).
func (inc *Incremental) Rebuilds() int { return inc.rebuilds }

// Append applies the delta and returns the verdict for the accumulated
// execution, identical to Check over the same system. The delta is
// validated first and rejected all-or-nothing: on error nothing changed.
func (inc *Incremental) Append(d *Delta) (*Verdict, error) {
	return inc.append(d, true)
}

// Admit is Append for certification hot paths: on success it skips
// materializing the success verdict and returns (nil, nil); on a
// violation it returns the full failure verdict.
func (inc *Incremental) Admit(d *Delta) (*Verdict, error) {
	return inc.append(d, false)
}

// ErrNotNodesOnly reports a delta AbsorbNodes cannot take: it carries
// schedules or relation pairs, names an invocation edge the accumulated
// IG has not seen, or the engine is not ready (no admission yet, or
// degraded). The caller should fall back to Admit.
var ErrNotNodesOnly = errors.New("front: delta is not an engine-ready nodes-only extension")

// AbsorbNodes applies a nodes-only delta without running the admission
// machinery: no schedules, no relation pairs, and every invocation edge
// already in the accumulated IG. Such a delta cannot change the level
// assignment and contributes no generating pair to any level queue, so
// Admit of the same delta would validate it, apply it to the system, add
// each node to the engine, and then drain empty queues — absorption
// performs exactly the first three and leaves the engine byte-identical
// to the Admit path (an empty extension is trivially Comp-C: a correct
// history stays correct when a transaction touching nothing conflicting
// is appended). This is the certifier's footprint-disjointness fast path.
//
// Ineligible deltas return ErrNotNodesOnly with nothing changed; a
// structurally invalid delta returns the validation error, like Admit.
func (inc *Incremental) AbsorbNodes(d *Delta) error {
	if !inc.NodesOnlyEligible(d) {
		return ErrNotNodesOnly
	}
	if err := validateDelta(inc.sys, d); err != nil {
		return err
	}
	d.Apply(inc.sys)
	inc.eng.ensureCap(len(inc.eng.ids) + len(d.Nodes))
	for _, n := range d.Nodes {
		inc.eng.addNode(n)
	}
	return nil
}

// NodesOnlyEligible reports whether AbsorbNodes would take d: the engine
// is ready, the delta carries no schedules and no relation pairs, and
// every invocation edge it exercises is already in the accumulated IG (a
// new edge could change the level assignment, which only a full append
// handles). It validates nothing and applies nothing — the certifier
// uses it to park a disjoint stage for lazy absorption: such a stage
// adds only isolated vertices to every constraint relation, so the
// engine does not need it until a later admission references one of its
// nodes.
func (inc *Incremental) NodesOnlyEligible(d *Delta) bool {
	if inc.failed || inc.eng == nil {
		return false
	}
	if len(d.Schedules)+len(d.Conflicts)+len(d.WeakOut)+len(d.StrongOut)+
		len(d.WeakIn)+len(d.StrongIn)+len(d.Intra) != 0 {
		return false
	}
	// A stage exercises very few distinct invocation edges; memoizing the
	// ones already confirmed spares the per-node relation lookups.
	var seen [4][2]model.ScheduleID
	ns := 0
	for _, n := range d.Nodes {
		if n.Sched == "" || n.Parent == "" {
			continue
		}
		// Stage deltas are small: a linear parent scan beats building a map.
		var caller model.ScheduleID
		found := false
		for j := range d.Nodes {
			if d.Nodes[j].ID == n.Parent {
				caller, found = d.Nodes[j].Sched, true
				break
			}
		}
		if !found {
			nd := inc.sys.Node(n.Parent)
			if nd == nil {
				return false // malformed; let full admission report it
			}
			caller = nd.Sched
		}
		if caller == "" {
			continue
		}
		hit := false
		for k := 0; k < ns; k++ {
			if seen[k][0] == caller && seen[k][1] == n.Sched {
				hit = true
				break
			}
		}
		if hit {
			continue
		}
		if !inc.ig.Has(caller, n.Sched) {
			return false
		}
		if ns < len(seen) {
			seen[ns] = [2]model.ScheduleID{caller, n.Sched}
			ns++
		}
	}
	return true
}

func (inc *Incremental) append(d *Delta, full bool) (*Verdict, error) {
	if err := validateDelta(inc.sys, d); err != nil {
		return nil, err
	}
	levels, changed, err := inc.applyIG(d)
	if err != nil {
		return nil, err
	}
	d.Apply(inc.sys)
	if inc.failed {
		return Check(inc.sys, Options{})
	}
	if inc.eng == nil || changed {
		inc.levels = levels
		inc.eng = newIncEngine(inc, levels)
		inc.rebuilds++
		inc.eng.apply(SystemDelta(inc.sys))
	} else {
		inc.eng.apply(d)
	}
	if inc.eng.failed {
		inc.failed = true
		return Check(inc.sys, Options{})
	}
	if !full {
		return nil, nil
	}
	return inc.eng.verdict()
}

// applyIG folds the delta's invocation-graph additions (Definition 8)
// into the accumulated IG, all-or-nothing: a recursive configuration is
// an error and leaves the graph untouched. It returns the level
// assignment and whether it changed (forcing an engine rebuild).
func (inc *Incremental) applyIG(d *Delta) (map[model.ScheduleID]int, bool, error) {
	dn := make(map[model.NodeID]model.ScheduleID, len(d.Nodes))
	for _, n := range d.Nodes {
		dn[n.ID] = n.Sched
	}
	schedOf := func(id model.NodeID) model.ScheduleID {
		if s, ok := dn[id]; ok {
			return s
		}
		if nd := inc.sys.Node(id); nd != nil {
			return nd.Sched
		}
		return ""
	}
	var edges [][2]model.ScheduleID
	for _, n := range d.Nodes {
		if n.Sched == "" || n.Parent == "" {
			continue
		}
		if caller := schedOf(n.Parent); caller != "" && !inc.ig.Has(caller, n.Sched) {
			edges = append(edges, [2]model.ScheduleID{caller, n.Sched})
		}
	}
	if len(d.Schedules) == 0 && len(edges) == 0 {
		return inc.levels, false, nil
	}
	wig := inc.ig.Clone()
	for _, s := range d.Schedules {
		wig.AddNode(s)
	}
	for _, e := range edges {
		wig.Add(e[0], e[1])
	}
	levels, err := igLevels(wig)
	if err != nil {
		return nil, false, err
	}
	inc.ig = wig
	if sameLevels(levels, inc.levels) {
		return levels, false, nil
	}
	return levels, true, nil
}

// igLevels is model.System.Levels on a standalone invocation graph.
func igLevels(ig *order.Relation[model.ScheduleID]) (map[model.ScheduleID]int, error) {
	sorted, ok := ig.TopoSort()
	if !ok {
		return nil, fmt.Errorf("front: invocation graph is cyclic (recursive configuration): %v", ig.FindCycle())
	}
	levels := make(map[model.ScheduleID]int, len(sorted))
	for i := len(sorted) - 1; i >= 0; i-- {
		sc := sorted[i]
		longest := 0
		for _, succ := range ig.Successors(sc) {
			if l := levels[succ]; l > longest {
				longest = l
			}
		}
		levels[sc] = longest + 1
	}
	return levels, nil
}

func sameLevels(a, b map[model.ScheduleID]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// ipair is one pending pair of interned node indices.
type ipair struct{ a, b int32 }

// incLevel is the accumulated reduction state of one front level.
type incLevel struct {
	nodes    order.Bitset
	obs      *order.ClosedRelation // <o, transitively closed throughout
	cc       *order.ClosedRelation // closure of obs ∪ weakIn: CC sentinel
	con      *order.IndexRelation  // CON, symmetric and irreflexive
	weakIn   *order.IndexRelation
	strongIn *order.IndexRelation
	e        *order.IndexRelation  // constraint relation E (levels ≥ 1)
	q        *order.ClosedRelation // closed quotient of E (levels ≥ 1)
}

// incEngine holds the interned-index reduction state for a fixed level
// assignment. It mirrors sysIndex (indexed.go) with two differences:
// node indices are assigned in arrival order (the stream fixes them, not
// lexicographic interning — determinism is restored by sorting at verdict
// materialization), and every per-level structure is maintained
// incrementally under pair insertion instead of being rebuilt per check.
type incEngine struct {
	inc    *Incremental
	failed bool

	orderN   int // N, the highest schedule level
	schedIDs []model.ScheduleID
	schedNum map[model.ScheduleID]int
	slevel   []int
	schedsAt [][]int

	capN      int
	ids       []model.NodeID
	idx       map[model.NodeID]int32
	parent    []int32
	sched     []int32 // schedule the node is a transaction of; -1 for leaves
	opSched   []int32 // schedule the node is an operation of; -1 for roots
	entry     []int32 // level the node enters the front
	exitL     []int32 // level the node is reduced at (orderN+1 for roots)
	isLeaf    order.Bitset
	children  [][]int32
	rootCount int

	conf *order.IndexRelation // global conflict predicate (Definition 11 case 1)

	// Per schedule: declared conflict pairs, closed weak output order (≪
	// folded in), conflicting pairs directed by it, closed input orders
	// (⇒ folded into →), and the union of the txs' closed intra orders.
	ops       []order.Bitset
	txs       [][]int32
	confDecl  []*order.IndexRelation
	confOut   []*order.IndexRelation
	weakOutC  []*order.ClosedRelation
	weakInC   []*order.ClosedRelation
	strongInC []*order.ClosedRelation
	intraC    []*order.ClosedRelation

	lv []*incLevel

	// Pending frontier queues of the in-flight apply, indexed by level.
	pObs, pWeakIn, pStrongIn, pE [][]ipair
}

func newIncEngine(inc *Incremental, levels map[model.ScheduleID]int) *incEngine {
	eng := &incEngine{
		inc:      inc,
		schedNum: map[model.ScheduleID]int{},
		idx:      map[model.NodeID]int32{},
		capN:     64,
	}
	// Carry the previous engine's capacity high-water mark across
	// rebuilds (level changes and checkpoint folds). Bitset rows are
	// allocated lazily, so the wide capacity costs only the live rows'
	// width — but it spares every rebuilt engine the doubling ladder of
	// full-row re-widenings as the next fold window refills.
	if inc.eng != nil && inc.eng.capN > eng.capN {
		eng.capN = inc.eng.capN
	}
	for _, l := range levels {
		if l > eng.orderN {
			eng.orderN = l
		}
	}
	// sys.Schedules() is sorted by ID, so schedule numbers ascend with
	// ScheduleID exactly as in sysIndex — schedsAt iteration order and
	// Reduced concatenation match the reference without extra sorting.
	for _, sc := range inc.sys.Schedules() {
		eng.schedNum[sc.ID] = len(eng.schedIDs)
		eng.schedIDs = append(eng.schedIDs, sc.ID)
		eng.slevel = append(eng.slevel, levels[sc.ID])
		eng.ops = append(eng.ops, order.NewBitset(eng.capN))
		eng.txs = append(eng.txs, nil)
		eng.confDecl = append(eng.confDecl, order.NewIndexRelation(eng.capN))
		eng.confOut = append(eng.confOut, order.NewIndexRelation(eng.capN))
		eng.weakOutC = append(eng.weakOutC, order.NewClosedRelation(eng.capN))
		eng.weakInC = append(eng.weakInC, order.NewClosedRelation(eng.capN))
		eng.strongInC = append(eng.strongInC, order.NewClosedRelation(eng.capN))
		eng.intraC = append(eng.intraC, order.NewClosedRelation(eng.capN))
	}
	eng.schedsAt = make([][]int, eng.orderN+1)
	for s := range eng.schedIDs {
		if l := eng.slevel[s]; l >= 1 && l <= eng.orderN {
			eng.schedsAt[l] = append(eng.schedsAt[l], s)
		}
	}
	eng.isLeaf = order.NewBitset(eng.capN)
	eng.conf = order.NewIndexRelation(eng.capN)
	eng.lv = make([]*incLevel, eng.orderN+1)
	for l := range eng.lv {
		st := &incLevel{
			nodes:    order.NewBitset(eng.capN),
			obs:      order.NewClosedRelation(eng.capN),
			cc:       order.NewClosedRelation(eng.capN),
			con:      order.NewIndexRelation(eng.capN),
			weakIn:   order.NewIndexRelation(eng.capN),
			strongIn: order.NewIndexRelation(eng.capN),
		}
		if l >= 1 {
			st.e = order.NewIndexRelation(eng.capN)
			st.q = order.NewClosedRelation(eng.capN)
		}
		eng.lv[l] = st
	}
	return eng
}

// reset returns the engine to its empty state in place, keeping every
// allocated structure — the interning map's buckets, the row tables and
// the grown bitset rows — for the replay that follows a checkpoint
// fold. Valid only while the level assignment is unchanged: the
// per-schedule and per-level skeletons (and capN, so row widths stay
// consistent) are retained, which spares the fold both the ~dozens of
// fresh relation allocations and the doubling ladder of row
// re-widenings as the next window refills.
func (eng *incEngine) reset() {
	used := len(eng.ids)
	eng.failed = false
	eng.ids = eng.ids[:0]
	clear(eng.idx)
	eng.parent = eng.parent[:0]
	eng.sched = eng.sched[:0]
	eng.opSched = eng.opSched[:0]
	eng.entry = eng.entry[:0]
	eng.exitL = eng.exitL[:0]
	clear(eng.isLeaf)
	eng.children = eng.children[:0]
	eng.rootCount = 0
	eng.conf.Reset(used)
	for s := range eng.schedIDs {
		clear(eng.ops[s])
		eng.txs[s] = eng.txs[s][:0]
		eng.confDecl[s].Reset(used)
		eng.confOut[s].Reset(used)
		eng.weakOutC[s].Reset(used)
		eng.weakInC[s].Reset(used)
		eng.strongInC[s].Reset(used)
		eng.intraC[s].Reset(used)
	}
	for _, st := range eng.lv {
		clear(st.nodes)
		st.obs.Reset(used)
		st.cc.Reset(used)
		st.con.Reset(used)
		st.weakIn.Reset(used)
		st.strongIn.Reset(used)
		if st.e != nil {
			st.e.Reset(used)
			st.q.Reset(used)
		}
	}
}

// ensureCap widens every index-space structure to hold n nodes. All
// bitsets sharing the space must be regrown together (word-parallel ops
// assume equal widths), so growth is eager and geometric.
func (eng *incEngine) ensureCap(n int) {
	if n <= eng.capN {
		return
	}
	c := eng.capN
	for c < n {
		c *= 2
	}
	eng.capN = c
	eng.isLeaf = eng.isLeaf.Grow(c)
	eng.conf.Grow(c)
	for s := range eng.schedIDs {
		eng.ops[s] = eng.ops[s].Grow(c)
		eng.confDecl[s].Grow(c)
		eng.confOut[s].Grow(c)
		eng.weakOutC[s].Grow(c)
		eng.weakInC[s].Grow(c)
		eng.strongInC[s].Grow(c)
		eng.intraC[s].Grow(c)
	}
	for _, st := range eng.lv {
		st.nodes = st.nodes.Grow(c)
		st.obs.Grow(c)
		st.cc.Grow(c)
		st.con.Grow(c)
		st.weakIn.Grow(c)
		st.strongIn.Grow(c)
		if st.e != nil {
			st.e.Grow(c)
			st.q.Grow(c)
		}
	}
}

// apply runs one delta through the engine: phase A routes every new node
// and generating pair into per-level pending queues; phase B drains the
// queues level by level (all pushes go strictly upward, so one pass
// suffices). On any reduction failure the engine poisons itself.
func (eng *incEngine) apply(d *Delta) {
	if eng.failed {
		return
	}
	eng.ensureCap(len(eng.ids) + len(d.Nodes))
	eng.pObs = resetQueues(eng.pObs, eng.orderN+1)
	eng.pWeakIn = resetQueues(eng.pWeakIn, eng.orderN+1)
	eng.pStrongIn = resetQueues(eng.pStrongIn, eng.orderN+1)
	eng.pE = resetQueues(eng.pE, eng.orderN+1)

	for _, dn := range d.Nodes {
		eng.addNode(dn)
	}
	for _, p := range d.Conflicts {
		eng.addConflict(eng.schedNum[p.Sched], int(eng.idx[p.A]), int(eng.idx[p.B]))
	}
	for _, p := range d.WeakOut {
		eng.addWeakOut(eng.schedNum[p.Sched], int(eng.idx[p.A]), int(eng.idx[p.B]))
	}
	for _, p := range d.StrongOut {
		eng.addWeakOut(eng.schedNum[p.Sched], int(eng.idx[p.A]), int(eng.idx[p.B])) // ≪ ⊆ ≺
	}
	for _, p := range d.WeakIn {
		eng.addWeakIn(eng.schedNum[p.Sched], int(eng.idx[p.A]), int(eng.idx[p.B]), false)
	}
	for _, p := range d.StrongIn {
		eng.addWeakIn(eng.schedNum[p.Sched], int(eng.idx[p.A]), int(eng.idx[p.B]), true)
	}
	for _, ip := range d.Intra {
		eng.addIntra(int(eng.idx[ip.Tx]), int(eng.idx[ip.A]), int(eng.idx[ip.B]))
	}

	for l := 0; l <= eng.orderN && !eng.failed; l++ {
		eng.processLevel(l)
	}
}

func resetQueues(q [][]ipair, n int) [][]ipair {
	if len(q) != n {
		return make([][]ipair, n)
	}
	for i := range q {
		q[i] = q[i][:0]
	}
	return q
}

func (eng *incEngine) pushObs(l int, a, b int32) { eng.pObs[l] = append(eng.pObs[l], ipair{a, b}) }
func (eng *incEngine) pushWeakIn(l int, a, b int32) {
	eng.pWeakIn[l] = append(eng.pWeakIn[l], ipair{a, b})
}
func (eng *incEngine) pushStrongIn(l int, a, b int32) {
	eng.pStrongIn[l] = append(eng.pStrongIn[l], ipair{a, b})
}
func (eng *incEngine) pushE(l int, a, b int32) { eng.pE[l] = append(eng.pE[l], ipair{a, b}) }

// addNode interns one forest node and fixes its static membership
// interval: a node is in the level-l front for entry ≤ l < exit, where
// leaves enter at 0, transactions at their schedule's level, and every
// non-root is reduced at its operation schedule's level (roots never are).
func (eng *incEngine) addNode(dn DeltaNode) {
	i := int32(len(eng.ids))
	eng.ids = append(eng.ids, dn.ID)
	eng.idx[dn.ID] = i
	eng.children = append(eng.children, nil)

	pi := int32(-1)
	if dn.Parent != "" {
		pi = eng.idx[dn.Parent]
		eng.children[pi] = append(eng.children[pi], i)
	}
	eng.parent = append(eng.parent, pi)

	si := int32(-1)
	if dn.Sched != "" {
		si = int32(eng.schedNum[dn.Sched])
		eng.txs[si] = append(eng.txs[si], i)
	} else {
		eng.isLeaf.Set(int(i))
	}
	eng.sched = append(eng.sched, si)

	osi := int32(-1)
	if pi >= 0 {
		osi = eng.sched[pi]
		eng.ops[osi].Set(int(i))
	} else {
		eng.rootCount++
	}
	eng.opSched = append(eng.opSched, osi)

	var en int32
	if si >= 0 {
		en = int32(eng.slevel[si])
	}
	ex := int32(eng.orderN + 1)
	if pi >= 0 {
		ex = int32(eng.slevel[osi])
	}
	eng.entry = append(eng.entry, en)
	eng.exitL = append(eng.exitL, ex)
	for l := int(en); l < int(ex) && l <= eng.orderN; l++ {
		eng.lv[l].nodes.Set(int(i))
	}
}

// group maps a node to its level-l reduction group: its parent when the
// step to level l reduces it, itself otherwise.
func (eng *incEngine) group(i, l int) int {
	if eng.exitL[i] == int32(l) {
		return int(eng.parent[i])
	}
	return i
}

func (eng *incEngine) isNewTxAt(g, l int) bool {
	return eng.sched[g] >= 0 && eng.slevel[eng.sched[g]] == l
}

// addConflict registers a declared conflict pair of schedule s: the
// global predicate, the generalized conflict at every level where both
// endpoints coexist, conflicting-output direction, and the un-forget
// rule — an observed pair previously dropped at the lift into level(s)
// by the forgotten-pair rule must be lifted now that the conflict exists.
func (eng *incEngine) addConflict(s, a, b int) {
	if eng.confDecl[s].Has(a, b) {
		return
	}
	eng.confDecl[s].AddSym(a, b)
	eng.conf.AddSym(a, b)

	lo := int(eng.entry[a])
	if int(eng.entry[b]) > lo {
		lo = int(eng.entry[b])
	}
	hi := int(eng.exitL[a])
	if int(eng.exitL[b]) < hi {
		hi = int(eng.exitL[b])
	}
	hi--
	if hi > eng.orderN {
		hi = eng.orderN
	}
	for l := lo; l <= hi; l++ {
		eng.addConDir(l, a, b)
		eng.addConDir(l, b, a)
	}

	if eng.weakOutC[s].Has(a, b) {
		eng.addConfOut(s, a, b)
	}
	if eng.weakOutC[s].Has(b, a) {
		eng.addConfOut(s, b, a)
	}

	e := eng.slevel[s]
	if eng.lv[e-1].obs.Has(a, b) {
		eng.liftInto(e, a, b)
	}
	if eng.lv[e-1].obs.Has(b, a) {
		eng.liftInto(e, b, a)
	}
}

// addConDir adds one direction of the level-l generalized conflict; a
// pair both observed and conflicting is a constraint pair of the next
// step (Definition 16 step 1).
func (eng *incEngine) addConDir(l, u, v int) {
	if eng.lv[l].con.Has(u, v) {
		return
	}
	eng.lv[l].con.Add(u, v)
	if l < eng.orderN && eng.lv[l].obs.Has(u, v) {
		eng.pushE(l+1, int32(u), int32(v))
	}
}

// addConfOut records a conflicting pair directed by the closed output
// order of schedule s: a constraint pair of the step reducing s, and an
// observed pair between the owning transactions (Definition 10 rule 2).
func (eng *incEngine) addConfOut(s, a, b int) {
	if eng.confOut[s].Has(a, b) {
		return
	}
	eng.confOut[s].Add(a, b)
	l := eng.slevel[s]
	eng.pushE(l, int32(a), int32(b))
	if pa, pb := eng.parent[a], eng.parent[b]; pa != pb {
		eng.pushObs(l, pa, pb)
	}
}

// addWeakOut inserts a weak (or folded strong) output-order pair of
// schedule s and routes every newly closed pair.
func (eng *incEngine) addWeakOut(s, a, b int) {
	eng.weakOutC[s].InsertFunc(a, b, func(x, y int) {
		eng.weakOutPair(s, x, y)
	})
}

// weakOutPair routes one newly closed output-order pair of schedule s:
// leaf pairs seed the level-0 observed order (Definition 10 rule 1),
// transaction–leaf pairs enter the observed order with the transaction,
// and transaction pairs of one callee propagate to its input order
// (Definition 4 item 7) when the engine records runtime executions.
func (eng *incEngine) weakOutPair(s, x, y int) {
	xLeaf, yLeaf := eng.isLeaf.Has(x), eng.isLeaf.Has(y)
	switch {
	case xLeaf && yLeaf:
		eng.pushObs(0, int32(x), int32(y))
	case xLeaf != yLeaf:
		t := x
		if xLeaf {
			t = y
		}
		eng.pushObs(int(eng.entry[t]), int32(x), int32(y))
	default:
		if eng.inc.opts.PropagateInputs && eng.sched[x] == eng.sched[y] && eng.sched[x] >= 0 {
			c := int(eng.sched[x])
			eng.addWeakIn(c, x, y, false)
			eng.inc.sys.Schedule(eng.schedIDs[c]).WeakIn.Add(eng.ids[x], eng.ids[y])
		}
	}
	if eng.confDecl[s].Has(x, y) {
		eng.addConfOut(s, x, y)
	}
}

// addWeakIn inserts an input-order pair of schedule s (strong pairs fold
// into the weak order, Definition 3) and queues every newly closed pair
// at the level where s's transactions enter the front.
func (eng *incEngine) addWeakIn(s, a, b int, strong bool) {
	l := eng.slevel[s]
	eng.weakInC[s].InsertFunc(a, b, func(x, y int) {
		eng.pushWeakIn(l, int32(x), int32(y))
	})
	if strong {
		eng.strongInC[s].InsertFunc(a, b, func(x, y int) {
			eng.pushStrongIn(l, int32(x), int32(y))
		})
	}
}

// addIntra inserts an intra-transaction order pair of transaction t;
// closed pairs are constraint pairs of the step reducing t's schedule.
// Distinct transactions have disjoint operation sets, so the shared
// per-schedule closure equals the union of per-transaction closures.
func (eng *incEngine) addIntra(t, a, b int) {
	s := int(eng.sched[t])
	l := eng.slevel[s]
	eng.intraC[s].InsertFunc(a, b, func(x, y int) {
		eng.pushE(l, int32(x), int32(y))
	})
}

// liftInto pushes a level-(l-1) observed pair into the level-l observed
// order, mapped through the level-l grouping, unless it is forgotten:
// both endpoints reduced, operations of one common schedule, no declared
// conflict (Definition 10 rule 2).
func (eng *incEngine) liftInto(l, x, y int) {
	gx, gy := eng.group(x, l), eng.group(y, l)
	if gx == gy {
		return
	}
	if eng.exitL[x] == int32(l) && eng.exitL[y] == int32(l) {
		if sx := eng.opSched[x]; sx >= 0 && sx == eng.opSched[y] && !eng.conf.Has(x, y) {
			return
		}
	}
	eng.pushObs(l, int32(gx), int32(gy))
}

// obsPair handles one newly closed observed pair of level l: generalized
// conflict between cross-schedule nodes (Definition 11 case 2),
// constraint membership when the pair also conflicts, and the lift to
// the next front.
func (eng *incEngine) obsPair(l, x, y int) {
	if l >= 1 {
		sx, sy := eng.opSched[x], eng.opSched[y]
		if sx != sy || sx < 0 {
			eng.addConDir(l, x, y)
			eng.addConDir(l, y, x)
		}
	}
	if l < eng.orderN {
		if eng.lv[l].con.Has(x, y) {
			eng.pushE(l+1, int32(x), int32(y))
		}
		eng.liftInto(l+1, x, y)
	}
}

// processLevel drains the level-l queues: constraint pairs first (the
// two existence checks of Definition 16 step 1 — per-group acyclicity
// and quotient acyclicity), then observed pairs (closed, CC-checked,
// lifted), then input orders (CC-checked, survival-propagated). Every
// push from here goes to level l+1 or higher, so the caller's single
// ascending pass over levels drains everything.
func (eng *incEngine) processLevel(l int) {
	st := eng.lv[l]

	if l >= 1 {
		var dirty []int32
		for k := 0; k < len(eng.pE[l]) && !eng.failed; k++ {
			p := eng.pE[l][k]
			a, b := int(p.a), int(p.b)
			if st.e.Has(a, b) {
				continue
			}
			st.e.Add(a, b)
			ga, gb := eng.group(a, l), eng.group(b, l)
			if ga == gb {
				if eng.isNewTxAt(ga, l) {
					dirty = append(dirty, int32(ga))
				} else {
					eng.failed = true // cyclic singleton group: no calculation
				}
				continue
			}
			if st.q.Has(gb, ga) {
				eng.failed = true // quotient cycle: transactions cannot be isolated
				continue
			}
			st.q.Insert(ga, gb)
		}
		for _, g := range dirty {
			if eng.failed {
				break
			}
			if subgraphCyclic(st.e, eng.children[g]) {
				eng.failed = true // cyclic group: no calculation for the transaction
			}
		}
		if eng.failed {
			return
		}
	}

	for k := 0; k < len(eng.pObs[l]) && !eng.failed; k++ {
		p := eng.pObs[l][k]
		a, b := int(p.a), int(p.b)
		if st.obs.Has(a, b) {
			continue
		}
		if a == b || st.cc.Has(b, a) {
			eng.failed = true // conflict-consistency cycle
			break
		}
		st.cc.Insert(a, b)
		var closed []ipair
		st.obs.InsertFunc(a, b, func(x, y int) {
			closed = append(closed, ipair{int32(x), int32(y)})
		})
		for _, c := range closed {
			eng.obsPair(l, int(c.a), int(c.b))
		}
	}
	if eng.failed {
		return
	}

	for k := 0; k < len(eng.pWeakIn[l]) && !eng.failed; k++ {
		p := eng.pWeakIn[l][k]
		a, b := int(p.a), int(p.b)
		if st.weakIn.Has(a, b) {
			continue
		}
		if a == b || st.cc.Has(b, a) {
			eng.failed = true // conflict-consistency cycle
			break
		}
		st.cc.Insert(a, b)
		st.weakIn.Add(a, b)
		if l < eng.orderN && eng.lv[l+1].nodes.Has(a) && eng.lv[l+1].nodes.Has(b) {
			eng.pushWeakIn(l+1, p.a, p.b)
		}
	}
	if eng.failed {
		return
	}

	for k := 0; k < len(eng.pStrongIn[l]); k++ {
		p := eng.pStrongIn[l][k]
		a, b := int(p.a), int(p.b)
		if st.strongIn.Has(a, b) {
			continue
		}
		st.strongIn.Add(a, b)
		if l < eng.orderN {
			eng.pushE(l+1, p.a, p.b)
			if eng.lv[l+1].nodes.Has(a) && eng.lv[l+1].nodes.Has(b) {
				eng.pushStrongIn(l+1, p.a, p.b)
			}
		}
	}
}

// verdict assembles the success verdict, identical to Check's: the same
// step reports (schedule-ascending, NodeID-sorted Reduced lists), the
// same materialized final front, and the same serial witness.
func (eng *incEngine) verdict() (*Verdict, error) {
	v := &Verdict{Order: eng.orderN, FailedLevel: -1}
	v.Steps = append(v.Steps, &StepReport{Level: 0})
	for l := 1; l <= eng.orderN; l++ {
		v.Steps = append(v.Steps, &StepReport{Level: l, Reduced: eng.reducedAt(l)})
	}
	final := eng.materializeFinal()
	v.Fronts = []*Front{final}

	if final.Len() != eng.rootCount {
		return nil, fmt.Errorf("front: level %d front has %d nodes, want %d roots", eng.orderN, final.Len(), eng.rootCount)
	}
	serial, ok := final.SerialWitness()
	if !ok {
		// Cannot happen: every insert passed the CC sentinel.
		return nil, fmt.Errorf("front: CC level-%d front has no topological order", eng.orderN)
	}
	v.Correct = true
	v.SerialOrder = serial
	return v, nil
}

// reducedAt lists the transactions entering the front at level l, per
// ascending schedule, NodeIDs sorted — the arrival-order indices need an
// explicit sort to reproduce the reference's lexicographic interning.
func (eng *incEngine) reducedAt(l int) []model.NodeID {
	var out []model.NodeID
	for _, s := range eng.schedsAt[l] {
		ids := make([]model.NodeID, 0, len(eng.txs[s]))
		for _, t := range eng.txs[s] {
			ids = append(ids, eng.ids[t])
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out = append(out, ids...)
	}
	return out
}

// materializeFinal converts the level-N state to the string-keyed Front
// of the public API, exactly as sysIndex.materialize does.
func (eng *incEngine) materializeFinal() *Front {
	st := eng.lv[eng.orderN]
	out := &Front{
		Level:    eng.orderN,
		nodes:    make(map[model.NodeID]struct{}, st.nodes.Count()),
		Obs:      order.New[model.NodeID](),
		Con:      model.NewPairSet(),
		WeakIn:   order.New[model.NodeID](),
		StrongIn: order.New[model.NodeID](),
	}
	st.nodes.Each(func(i int) {
		id := eng.ids[i]
		out.nodes[id] = struct{}{}
		out.Obs.AddNode(id)
	})
	st.obs.Each(func(i, j int) { out.Obs.Add(eng.ids[i], eng.ids[j]) })
	st.con.Each(func(i, j int) {
		if i < j {
			out.Con.Add(eng.ids[i], eng.ids[j])
		}
	})
	st.weakIn.Each(func(i, j int) { out.WeakIn.Add(eng.ids[i], eng.ids[j]) })
	st.strongIn.Each(func(i, j int) { out.StrongIn.Add(eng.ids[i], eng.ids[j]) })
	return out
}
