package front_test

import (
	"testing"

	"compositetx/internal/front"
	"compositetx/internal/model"
	"compositetx/internal/workload"
)

// TestTheorem1BothDirections: the reduction form of correctness (Check,
// "CS has a level N front") agrees with the original containment form of
// Definition 20 ("CS is level-N-contained in a serial front") on random
// executions of every configuration shape — Theorem 1, machine-checked
// with two independent implementations of the right-hand side.
func TestTheorem1BothDirections(t *testing.T) {
	gens := map[string]func(seed int64) *model.System{
		"stack": func(seed int64) *model.System {
			return workload.Stack(workload.StackParams{
				Levels: 2 + int(seed%2), Roots: 2, Fanout: 2,
				ConflictRate: 0.3, Seed: seed}).Sys
		},
		"fork": func(seed int64) *model.System {
			return workload.Fork(workload.ForkParams{
				Branches: 2, Roots: 2, Fanout: 2, LeavesPerSub: 2,
				ConflictRate: 0.3, Seed: seed}).Sys
		},
		"general": func(seed int64) *model.System {
			return workload.General(workload.GeneralParams{
				Depth: 3, SchedsPerLevel: 2, Roots: 3, Fanout: 2,
				LeafRate: 0.3, ConflictRate: 0.3, Seed: seed}).Sys
		},
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			correct, incorrect := 0, 0
			for seed := int64(0); seed < 60; seed++ {
				sys := gen(seed)
				byReduction, err := front.IsCompC(sys)
				if err != nil {
					t.Fatal(err)
				}
				byContainment, err := front.IsCompCByContainment(sys)
				if err != nil {
					t.Fatal(err)
				}
				if byReduction != byContainment {
					t.Fatalf("seed %d: reduction=%v containment=%v (Theorem 1 violated)",
						seed, byReduction, byContainment)
				}
				if byReduction {
					correct++
				} else {
					incorrect++
				}
			}
			if correct == 0 || incorrect == 0 {
				t.Fatalf("degenerate coverage: %d correct, %d incorrect", correct, incorrect)
			}
		})
	}
}

func TestFrontAtLevel(t *testing.T) {
	sys := front.Figure4System()
	for level := 0; level <= 3; level++ {
		f, ok := front.FrontAtLevel(sys, level)
		if !ok {
			t.Fatalf("level %d front must exist for Figure 4", level)
		}
		if f.Level != level {
			t.Fatalf("front level = %d, want %d", f.Level, level)
		}
	}
	// Figure 3 has fronts up to level 2 but no level 3 front.
	bad := front.Figure3System()
	if _, ok := front.FrontAtLevel(bad, 2); !ok {
		t.Fatal("Figure 3 has a level 2 front")
	}
	if _, ok := front.FrontAtLevel(bad, 3); ok {
		t.Fatal("Figure 3 must have no level 3 front")
	}
}

func TestLevelEquivalenceReflexive(t *testing.T) {
	sys := front.Figure4System()
	f, ok := front.FrontAtLevel(sys, 2)
	if !ok {
		t.Fatal("level 2 front must exist")
	}
	if !front.LevelEquivalent(sys, 2, f) {
		t.Fatal("a system must be level-equivalent to its own front")
	}
	other, _ := front.FrontAtLevel(sys, 1)
	if front.LevelEquivalent(sys, 2, other) {
		t.Fatal("fronts of different levels of the same system differ here")
	}
}

// TestLevelEquivalenceAcrossSystems: Definition 18's point — two systems
// with different lower-level structure can be equivalent at the top.
// Figure 4's system and a flat one-schedule system with the same two
// (unordered, non-conflicting) roots have identical top fronts.
func TestLevelEquivalenceAcrossSystems(t *testing.T) {
	fig4 := front.Figure4System()
	f3, ok := front.FrontAtLevel(fig4, 3)
	if !ok {
		t.Fatal("Figure 4 reaches level 3")
	}

	flat := model.NewSystem()
	flat.AddSchedule("S")
	flat.AddRoot("T1", "S")
	flat.AddRoot("T2", "S")
	flat.AddLeaf("a", "T1")
	flat.AddLeaf("b", "T2")
	// No conflicts: the level 1 front is {T1, T2} with empty relations —
	// identical to Figure 4's level 3 front.
	if !front.LevelEquivalent(flat, 1, f3) {
		t.Fatal("flat system's level 1 front should equal Figure 4's level 3 front")
	}
}

func TestSerialFrontIsSerial(t *testing.T) {
	f := front.SerialFront([]model.NodeID{"A", "B", "C"}, model.NewPairSet())
	if !f.IsSerial() {
		t.Fatal("SerialFront must satisfy Definition 17")
	}
	if !f.StrongIn.Has("A", "C") {
		t.Fatal("serial front strong order must be total (transitive pairs included)")
	}
}
