package front_test

import (
	"fmt"
	"strings"
	"testing"

	"compositetx/internal/front"
	"compositetx/internal/model"
	"compositetx/internal/order"
	"compositetx/internal/workload"
)

// TestCheckRejectsBrokenStructure: Check must return an error (never
// panic, never a bogus verdict) on structurally broken systems.
func TestCheckRejectsBrokenStructure(t *testing.T) {
	build := map[string]func() *model.System{
		"dangling parent": func() *model.System {
			s := model.NewSystem()
			s.AddSchedule("S")
			s.AddLeaf("a", "ghost")
			return s
		},
		"leaf with child": func() *model.System {
			s := model.NewSystem()
			s.AddSchedule("S")
			s.AddRoot("T", "S")
			s.AddLeaf("a", "T")
			s.AddLeaf("b", "a")
			return s
		},
		"missing schedule": func() *model.System {
			s := model.NewSystem()
			s.AddRoot("T", "S")
			return s
		},
		"self-invocation": func() *model.System {
			s := model.NewSystem()
			s.AddSchedule("S")
			s.AddRoot("T", "S")
			s.AddTx("t", "T", "S")
			return s
		},
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			if _, err := front.Check(mk(), front.Options{}); err == nil {
				t.Fatal("Check must reject a broken structure")
			}
		})
	}
}

// TestPruningPreservesCorrectness: removing an entire composite
// transaction only removes constraints, so a correct execution stays
// correct (sub-execution closure).
func TestPruningPreservesCorrectness(t *testing.T) {
	pruned := 0
	for seed := int64(0); seed < 120 && pruned < 40; seed++ {
		exec := workload.General(workload.GeneralParams{
			Depth: 3, SchedsPerLevel: 2, Roots: 4, Fanout: 2,
			LeafRate: 0.3, ConflictRate: 0.35, Seed: seed,
		})
		ok, err := front.IsCompC(exec.Sys)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		for _, root := range exec.Sys.Roots() {
			clone := exec.Sys.Clone()
			clone.RemoveTree(root)
			if err := clone.Validate(); err != nil {
				t.Fatalf("seed %d: pruned execution must stay well-formed: %v", seed, err)
			}
			stillOK, err := front.IsCompC(clone)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !stillOK {
				t.Fatalf("seed %d: pruning root %s turned a correct execution incorrect", seed, root)
			}
			pruned++
		}
	}
	if pruned == 0 {
		t.Fatal("no correct executions found to prune")
	}
}

// TestRelabelingInvariance: Comp-C must not depend on node or schedule
// names; renaming everything consistently preserves the verdict.
func TestRelabelingInvariance(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		exec := workload.General(workload.GeneralParams{
			Depth: 2, SchedsPerLevel: 2, Roots: 3, Fanout: 2,
			LeafRate: 0.4, ConflictRate: 0.4, Seed: seed,
		})
		orig, err := front.IsCompC(exec.Sys)
		if err != nil {
			t.Fatal(err)
		}
		relabeled := relabel(exec.Sys)
		if err := relabeled.Validate(); err != nil {
			t.Fatalf("seed %d: relabeled system must validate: %v", seed, err)
		}
		got, err := front.IsCompC(relabeled)
		if err != nil {
			t.Fatal(err)
		}
		if got != orig {
			t.Fatalf("seed %d: relabeling changed the verdict %v -> %v", seed, orig, got)
		}
	}
}

// relabel rewrites every node and schedule ID through a reversible mangle
// that also reverses lexicographic order (prefix + inverted runes), to
// shake out any accidental dependence on ID ordering.
func relabel(sys *model.System) *model.System {
	mangle := func(s string) string {
		var b strings.Builder
		b.WriteString("zz_")
		for _, r := range s {
			b.WriteRune('~' - (r-' ')%('~'-' '))
		}
		// Keep IDs unique even if the inversion collides by appending the
		// original length marker.
		fmt.Fprintf(&b, "_%d", len(s))
		return b.String() + "_" + s // uniqueness guaranteed by the suffix
	}
	mn := func(id model.NodeID) model.NodeID { return model.NodeID(mangle(string(id))) }
	ms := func(id model.ScheduleID) model.ScheduleID { return model.ScheduleID(mangle(string(id))) }

	out := model.NewSystem()
	for _, sc := range sys.Schedules() {
		out.AddSchedule(ms(sc.ID))
	}
	// Add nodes top-down so parents exist first (not required, but tidy).
	var addSubtree func(id model.NodeID)
	addSubtree = func(id model.NodeID) {
		n := sys.Node(id)
		switch {
		case n.Parent == "":
			out.AddRoot(mn(id), ms(n.Sched))
		case n.Sched != "":
			out.AddTx(mn(id), mn(n.Parent), ms(n.Sched))
		default:
			out.AddLeaf(mn(id), mn(n.Parent))
		}
		if n.WeakIntra != nil {
			r := order.New[model.NodeID]()
			n.WeakIntra.Each(func(a, b model.NodeID) { r.Add(mn(a), mn(b)) })
			out.Node(mn(id)).WeakIntra = r
		}
		if n.StrongIntra != nil {
			r := order.New[model.NodeID]()
			n.StrongIntra.Each(func(a, b model.NodeID) { r.Add(mn(a), mn(b)) })
			out.Node(mn(id)).StrongIntra = r
		}
		for _, k := range sys.Children(id) {
			addSubtree(k)
		}
	}
	for _, r := range sys.Roots() {
		addSubtree(r)
	}
	for _, sc := range sys.Schedules() {
		nsc := out.Schedule(ms(sc.ID))
		sc.Conflicts.Each(func(a, b model.NodeID) { nsc.AddConflict(mn(a), mn(b)) })
		sc.WeakIn.Each(func(a, b model.NodeID) { nsc.WeakIn.Add(mn(a), mn(b)) })
		sc.StrongIn.Each(func(a, b model.NodeID) { nsc.StrongIn.Add(mn(a), mn(b)) })
		sc.WeakOut.Each(func(a, b model.NodeID) { nsc.WeakOut.Add(mn(a), mn(b)) })
		sc.StrongOut.Each(func(a, b model.NodeID) { nsc.StrongOut.Add(mn(a), mn(b)) })
	}
	return out
}

// TestSerialWitnessIsConsistent: for correct executions, replaying the
// serial witness as strong input orders at the root level must again be
// correct (the witness is a genuine equivalent serial front).
func TestSerialWitnessIsConsistent(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < 80 && checked < 25; seed++ {
		exec := workload.Stack(workload.StackParams{
			Levels: 2, Roots: 3, Fanout: 2, ConflictRate: 0.3, Seed: seed,
		})
		v, err := front.Check(exec.Sys, front.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !v.Correct {
			continue
		}
		checked++
		// The witness must order any two roots whose subtrees conflict in
		// the direction the execution serialized them.
		pos := map[model.NodeID]int{}
		for i, n := range v.SerialOrder {
			pos[n] = i
		}
		sys := exec.Sys
		for _, sc := range sys.Schedules() {
			sc.Conflicts.Each(func(a, b model.NodeID) {
				ra, rb := rootOf(sys, a), rootOf(sys, b)
				if ra == rb {
					return
				}
				if sc.WeakOut.Has(a, b) && pos[ra] > pos[rb] {
					// Only a hard violation if the pair's order survived
					// to the top (no common vouching schedule). A stack
					// has a single schedule per level, so any conflict is
					// between ops of one schedule; if that schedule's
					// parents coincide this is fine. For the property we
					// check the leaf level only, where Definition 10
					// rule 1 makes the order observed.
					if sys.Node(a).IsLeaf() && sys.Node(b).IsLeaf() && !vouchedAbove(sys, a, b) {
						t.Errorf("seed %d: witness orders %s after %s against conflict (%s,%s)",
							seed, ra, rb, a, b)
					}
				}
			})
		}
	}
	if checked == 0 {
		t.Fatal("no correct executions to check")
	}
}

func rootOf(sys *model.System, id model.NodeID) model.NodeID {
	cur := id
	for {
		p := sys.Parent(cur)
		if p == cur || p == "" {
			return cur
		}
		cur = p
	}
}

// vouchedAbove reports whether some common ancestor schedule of a and b
// declares the corresponding ancestor operations non-conflicting (then the
// order was legitimately forgotten on the way up).
func vouchedAbove(sys *model.System, a, b model.NodeID) bool {
	pa, pb := sys.Parent(a), sys.Parent(b)
	for pa != pb {
		sa, sb := sys.OpSchedule(pa), sys.OpSchedule(pb)
		if sa != "" && sa == sb {
			if !sys.Schedule(sa).Conflict(pa, pb) {
				return true
			}
		}
		// Lift the deeper side (or both when balanced).
		pa2, pb2 := sys.Parent(pa), sys.Parent(pb)
		if pa2 == pa && pb2 == pb {
			return false
		}
		pa, pb = pa2, pb2
	}
	return false
}
