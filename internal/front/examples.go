package front

import "compositetx/internal/model"

// This file reconstructs the paper's worked examples. The figure artwork is
// not part of the available text (interpretation D6 in DESIGN.md), so each
// system below is built to exhibit exactly the properties the prose
// narrates; the tests in examples_test.go assert those properties.

// Figure2System builds the configuration illustrating conflict and observed
// order (paper Figure 2): conflicting leaves on a shared schedule relate
// their parents, and the relation propagates up trees that share no
// schedule, incrementally relating the roots (T1,T2) and (T3,T1).
//
//	STop1 schedules T1 with ops t1 (S4) and t1b (S5)
//	STop2 schedules T2 with op  t2 (S4)
//	STop3 schedules T3 with op  t3 (S5)
//	S4: leaves o13 (of t1), o25 (of t2), conflicting, o13 ≺ o25
//	S5: leaves p1 (of t1b), p2 (of t3), conflicting, p2 ≺ p1
//
// The execution is Comp-C with serial witness T3, T1, T2.
func Figure2System() *model.System {
	s := model.NewSystem()
	s.AddSchedule("STop1")
	s.AddSchedule("STop2")
	s.AddSchedule("STop3")
	s4 := s.AddSchedule("S4")
	s5 := s.AddSchedule("S5")

	s.AddRoot("T1", "STop1")
	s.AddRoot("T2", "STop2")
	s.AddRoot("T3", "STop3")
	s.AddTx("t1", "T1", "S4")
	s.AddTx("t1b", "T1", "S5")
	s.AddTx("t2", "T2", "S4")
	s.AddTx("t3", "T3", "S5")
	s.AddLeaf("o13", "t1")
	s.AddLeaf("o25", "t2")
	s.AddLeaf("p1", "t1b")
	s.AddLeaf("p2", "t3")

	s4.AddConflict("o13", "o25")
	s4.WeakOut.Add("o13", "o25")
	s5.AddConflict("p1", "p2")
	s5.WeakOut.Add("p2", "p1")
	return s
}

// Figure3System builds the incorrect execution of paper Figure 3 (§3.6).
//
// Two roots in different top schedules interfere only through transitive
// dependencies on a shared bottom schedule SD; the two conflicts pulled up
// into the level 1 front relate transaction pairs originating on different
// schedules, so they persist pessimistically all the way up, and at the
// final step no isolated execution (calculation) for T1 can be constructed:
//
//	STop1 (level 3) schedules T1: ops p1 (SA), q1 (SB)
//	STop2 (level 3) schedules T2: ops p2 (SA), q2 (SB)
//	SA (level 2): ops up1 (of p1), up2 (of p2), transactions of SD
//	SB (level 2): ops uq1 (of q1), uq2 (of q2), transactions of SD
//	SD (level 1): leaves a1 (of up1), a2 (of uq2): CON, a1 ≺ a2
//	              leaves b1 (of uq1), b2 (of up2): CON, b2 ≺ b1
//
// The reduction reaches the level 2 front with observed order
// p1 <o q2 and p2 <o q1 and then fails: isolating T1 = {p1, q1} and
// T2 = {p2, q2} requires T1 before T2 (p1 <o q2) and T2 before T1
// (p2 <o q1) simultaneously.
func Figure3System() *model.System {
	s := model.NewSystem()
	s.AddSchedule("STop1")
	s.AddSchedule("STop2")
	s.AddSchedule("SA")
	s.AddSchedule("SB")
	sd := s.AddSchedule("SD")

	s.AddRoot("T1", "STop1")
	s.AddRoot("T2", "STop2")
	s.AddTx("p1", "T1", "SA")
	s.AddTx("q1", "T1", "SB")
	s.AddTx("p2", "T2", "SA")
	s.AddTx("q2", "T2", "SB")
	s.AddTx("up1", "p1", "SD")
	s.AddTx("up2", "p2", "SD")
	s.AddTx("uq1", "q1", "SD")
	s.AddTx("uq2", "q2", "SD")
	s.AddLeaf("a1", "up1")
	s.AddLeaf("a2", "uq2")
	s.AddLeaf("b1", "uq1")
	s.AddLeaf("b2", "up2")

	sd.AddConflict("a1", "a2")
	sd.WeakOut.Add("a1", "a2")
	sd.AddConflict("b1", "b2")
	sd.WeakOut.Add("b2", "b1")
	return s
}

// Figure4System builds the correct execution of paper Figure 4 (§3.7).
//
// The configuration has the same interference pattern as Figure 3, but the
// two roots are transactions of one common top schedule STop, and STop
// declares no conflict between its operations. When the final reduction
// step absorbs those operations, the observed orders obtained in the
// previous step are between operations of a common schedule that vouches
// for commutativity — so they are forgotten, the roots can be isolated,
// and the reduction reaches a level 3 front containing only T1 and T2.
func Figure4System() *model.System {
	s := model.NewSystem()
	s.AddSchedule("STop")
	s.AddSchedule("SA")
	s.AddSchedule("SB")
	sd := s.AddSchedule("SD")

	s.AddRoot("T1", "STop")
	s.AddRoot("T2", "STop")
	s.AddTx("p1", "T1", "SA")
	s.AddTx("q1", "T1", "SB")
	s.AddTx("p2", "T2", "SA")
	s.AddTx("q2", "T2", "SB")
	s.AddTx("up1", "p1", "SD")
	s.AddTx("up2", "p2", "SD")
	s.AddTx("uq1", "q1", "SD")
	s.AddTx("uq2", "q2", "SD")
	s.AddLeaf("a1", "up1")
	s.AddLeaf("a2", "uq2")
	s.AddLeaf("b1", "uq1")
	s.AddLeaf("b2", "up2")

	sd.AddConflict("a1", "a2")
	sd.WeakOut.Add("a1", "a2")
	sd.AddConflict("b1", "b2")
	sd.WeakOut.Add("b2", "b1")
	// STop declares no conflicts between p1, q1, p2, q2: it knows its
	// operations commute, which is what makes the execution correct.
	return s
}

// Figure1System builds a general configuration in the spirit of paper
// Figure 1: transactions of different heights, schedules with both leaf and
// transaction operations, and two roots (like T4, T5 in the figure) that
// share no schedule. The recorded execution is Comp-C.
func Figure1System() *model.System {
	s := model.NewSystem()
	s.AddSchedule("S1")       // level 3
	s.AddSchedule("S2")       // level 2
	s.AddSchedule("S3")       // level 2
	s4 := s.AddSchedule("S4") // level 1
	s5 := s.AddSchedule("S5") // level 1

	// T4 is tall: root in S1, descending through S2 to S4.
	s.AddRoot("T4", "S1")
	s.AddTx("t41", "T4", "S2")
	s.AddLeaf("o42", "T4") // S1 also has a leaf operation
	s.AddTx("t411", "t41", "S4")
	s.AddLeaf("o4111", "t411")

	// T5 is short: root in S3, straight to S4 and S5.
	s.AddRoot("T5", "S3")
	s.AddTx("t51", "T5", "S4")
	s.AddTx("t52", "T5", "S5")
	s.AddLeaf("o511", "t51")
	s.AddLeaf("o521", "t52")

	// T6 shares S5 with T5.
	s.AddRoot("T6", "S3")
	s.AddTx("t61", "T6", "S5")
	s.AddLeaf("o611", "t61")

	// Interference: T4 and T5 meet at S4; T5 and T6 meet at S5.
	s4.AddConflict("o4111", "o511")
	s4.WeakOut.Add("o4111", "o511")
	s5.AddConflict("o521", "o611")
	s5.WeakOut.Add("o521", "o611")

	// S3 schedules both T5 and T6 and knows its operations' orders; S3's
	// operations t51, t52, t61 carry no declared conflicts.
	return s
}
