// Package front implements the paper's correctness machinery: the observed
// order (Definition 10), the generalized conflict relation (Definition 11),
// computational fronts (Definition 12), conflict consistency of a front
// (Definition 13), calculations (Definition 14), the level-by-level
// reduction of a composite execution (Definitions 15 and 16), and the
// Comp-C decision procedure of Theorem 1: a composite schedule is correct
// iff the reduction reaches a level-N front.
//
// The under-specified corners of the definitions are resolved per DESIGN.md
// §3 (interpretations D1–D7); the relevant decision is cited at each site.
package front

import (
	"fmt"
	"sort"

	"compositetx/internal/model"
	"compositetx/internal/order"
)

// Front is a computational front (Definition 12): a maximal set of
// independent nodes of the computational forest together with the observed
// order, the generalized conflict relation, and the input orders between
// its elements.
type Front struct {
	// Level is the reduction level this front belongs to (Definition 16);
	// 0 is the all-leaves front of Definition 15.
	Level int

	nodes map[model.NodeID]struct{}

	// Obs is the observed order <o between front nodes (Definition 10),
	// kept transitively closed (rule 4).
	Obs *order.Relation[model.NodeID]

	// Con is the generalized conflict relation CON between front nodes
	// (Definition 11).
	Con *model.PairSet

	// WeakIn (→) and StrongIn (⇒) are the input orders between front
	// elements: the union over all schedules of their input orders,
	// restricted to the front. Definition 12 carries → explicitly; ⇒ is
	// retained because Definition 16 step 1 forbids switching pairs
	// ordered strongly.
	WeakIn   *order.Relation[model.NodeID]
	StrongIn *order.Relation[model.NodeID]
}

// Nodes returns the front's nodes, sorted.
func (f *Front) Nodes() []model.NodeID {
	out := make([]model.NodeID, 0, len(f.nodes))
	for n := range f.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Has reports whether n is a front node.
func (f *Front) Has(n model.NodeID) bool {
	_, ok := f.nodes[n]
	return ok
}

// Len returns the number of front nodes.
func (f *Front) Len() int { return len(f.nodes) }

// IsCC reports conflict consistency (Definition 13): the union of the
// observed order and the weak input orders is acyclic.
func (f *Front) IsCC() bool {
	return order.UnionOf(f.Obs, f.WeakIn).IsAcyclic()
}

// ccCycle returns a cycle witnessing the CC violation, or nil.
func (f *Front) ccCycle() []model.NodeID {
	return order.UnionOf(f.Obs, f.WeakIn).FindCycle()
}

// IsSerial reports whether the front is serial (Definition 17): its
// elements are totally ordered by the strong input order. A topologically
// sorted acyclic level-N front is equivalent to a serial one (Theorem 1
// proof), which SerialWitness produces.
func (f *Front) IsSerial() bool {
	nodes := f.Nodes()
	closed := f.StrongIn.TransitiveClosure()
	for i, a := range nodes {
		for _, b := range nodes[i+1:] {
			if !closed.Has(a, b) && !closed.Has(b, a) {
				return false
			}
		}
	}
	return true
}

// SerialWitness returns a total order over the front's nodes consistent
// with <o and →, i.e. the serial front the composite schedule is
// level-N-contained in (Definition 20, via topological sorting as in the
// proof of Theorem 1). It fails iff the front is not CC.
func (f *Front) SerialWitness() ([]model.NodeID, bool) {
	return order.UnionOf(f.Obs, f.WeakIn).TopoSort()
}

// Level0 builds the level 0 front of a composite system (Definition 15):
// its nodes are all leaves; the observed order comes from Definition 10
// rule 1 (pairs of same-schedule operations involving a leaf, ordered as
// the schedule's weak output order); conflicts are the schedules' own
// predicates (Definition 11 case 1); input orders are empty because leaves
// are transactions of no schedule.
//
// The system must already be normalized (transitively closed orders); Check
// normalizes a clone before calling this.
func Level0(sys *model.System) *Front {
	f := &Front{
		Level:    0,
		nodes:    make(map[model.NodeID]struct{}),
		Obs:      order.New[model.NodeID](),
		Con:      model.NewPairSet(),
		WeakIn:   order.New[model.NodeID](),
		StrongIn: order.New[model.NodeID](),
	}
	for _, l := range sys.Leaves() {
		f.nodes[l] = struct{}{}
		f.Obs.AddNode(l)
	}
	for _, sc := range sys.Schedules() {
		ops := sys.Ops(sc.ID)
		for _, a := range ops {
			if !f.Has(a) {
				continue
			}
			for _, b := range ops {
				if a == b || !f.Has(b) {
					continue
				}
				// Both leaves of the same schedule: Definition 10 rule 1.
				if sc.WeakOut.Has(a, b) {
					f.Obs.Add(a, b)
				}
				if sc.Conflict(a, b) {
					f.Con.Add(a, b)
				}
			}
		}
	}
	f.Obs = f.Obs.TransitiveClosure()
	return f
}

func (f *Front) String() string {
	return fmt.Sprintf("level %d front: %d nodes, %d observed pairs, %d conflicts",
		f.Level, f.Len(), f.Obs.Len(), f.Con.Len())
}
