package front

import (
	"fmt"

	"compositetx/internal/model"
	"compositetx/internal/order"
)

// Delta is an append-only increment to a composite system: new schedules,
// new forest nodes, and new relation pairs. It is the unit of work of
// Incremental.Append — the recorded execution grows monotonically (commits
// only add nodes and pairs, never remove them), which is exactly what
// makes the incremental reduction sound.
//
// A delta is self-ordered: a node's parent must appear in the target
// system already or earlier in Nodes, and every pair endpoint must exist
// once the delta's nodes are applied.
type Delta struct {
	Schedules []model.ScheduleID
	Nodes     []DeltaNode

	// Per-schedule relation pairs. Conflicts are unordered operation
	// pairs of the schedule's conflict predicate; the four order slices
	// carry generating pairs of ≺, ≪, → and ⇒ respectively (closure is
	// the engine's job, exactly as Normalize closes stored systems).
	Conflicts []DeltaPair
	WeakOut   []DeltaPair
	StrongOut []DeltaPair
	WeakIn    []DeltaPair
	StrongIn  []DeltaPair

	// Intra carries intra-transaction order pairs (≺t / ≪t).
	Intra []DeltaIntra
}

// DeltaNode declares one forest node. Parent == "" makes it a root
// transaction (Sched required); Sched == "" makes it a leaf operation
// (Parent required); both set makes it a subtransaction.
type DeltaNode struct {
	ID     model.NodeID
	Parent model.NodeID
	Sched  model.ScheduleID
}

// DeltaPair is one relation pair of schedule Sched.
type DeltaPair struct {
	Sched model.ScheduleID
	A, B  model.NodeID
}

// DeltaIntra is one intra-transaction order pair of transaction Tx.
type DeltaIntra struct {
	Tx     model.NodeID
	A, B   model.NodeID
	Strong bool
}

// Empty reports whether the delta carries nothing.
func (d *Delta) Empty() bool {
	return len(d.Schedules) == 0 && len(d.Nodes) == 0 &&
		len(d.Conflicts) == 0 && len(d.WeakOut) == 0 && len(d.StrongOut) == 0 &&
		len(d.WeakIn) == 0 && len(d.StrongIn) == 0 && len(d.Intra) == 0
}

// Apply adds the delta to a model.System. The delta must be valid for the
// system (Incremental validates before applying; direct callers get the
// System builder's panics on misuse).
func (d *Delta) Apply(sys *model.System) {
	for _, id := range d.Schedules {
		sys.AddSchedule(id)
	}
	for _, n := range d.Nodes {
		switch {
		case n.Parent == "":
			sys.AddRoot(n.ID, n.Sched)
		case n.Sched == "":
			sys.AddLeaf(n.ID, n.Parent)
		default:
			sys.AddTx(n.ID, n.Parent, n.Sched)
		}
	}
	for _, p := range d.Conflicts {
		sys.Schedule(p.Sched).AddConflict(p.A, p.B)
	}
	for _, p := range d.WeakOut {
		sys.Schedule(p.Sched).WeakOut.Add(p.A, p.B)
	}
	for _, p := range d.StrongOut {
		sys.Schedule(p.Sched).StrongOut.Add(p.A, p.B)
	}
	for _, p := range d.WeakIn {
		sys.Schedule(p.Sched).WeakIn.Add(p.A, p.B)
	}
	for _, p := range d.StrongIn {
		sys.Schedule(p.Sched).StrongIn.Add(p.A, p.B)
	}
	for _, ip := range d.Intra {
		nd := sys.Node(ip.Tx)
		if ip.Strong {
			if nd.StrongIntra == nil {
				nd.StrongIntra = order.New[model.NodeID]()
			}
			nd.StrongIntra.Add(ip.A, ip.B)
		}
		if nd.WeakIntra == nil {
			nd.WeakIntra = order.New[model.NodeID]()
		}
		nd.WeakIntra.Add(ip.A, ip.B)
	}
}

// validateDelta checks a delta against the accumulated system,
// all-or-nothing: on error nothing may be applied. It enforces the same
// structural rules the System builders panic on, plus pair well-formedness
// (endpoints exist, belong to the named schedule, and are distinct).
func validateDelta(sys *model.System, d *Delta) error {
	newScheds := make(map[model.ScheduleID]bool, len(d.Schedules))
	for _, id := range d.Schedules {
		if id == "" {
			return fmt.Errorf("front: delta declares an empty schedule ID")
		}
		if sys.Schedule(id) != nil || newScheds[id] {
			return fmt.Errorf("front: delta re-declares schedule %q", id)
		}
		newScheds[id] = true
	}
	hasSched := func(id model.ScheduleID) bool {
		return newScheds[id] || sys.Schedule(id) != nil
	}

	newNodes := make(map[model.NodeID]*DeltaNode, len(d.Nodes))
	// node returns (sched, known) for a node of sys or an earlier delta entry.
	node := func(id model.NodeID) (model.ScheduleID, bool) {
		if dn := newNodes[id]; dn != nil {
			return dn.Sched, true
		}
		if nd := sys.Node(id); nd != nil {
			return nd.Sched, true
		}
		return "", false
	}
	for i := range d.Nodes {
		dn := &d.Nodes[i]
		if dn.ID == "" {
			return fmt.Errorf("front: delta declares an empty node ID")
		}
		if _, dup := newNodes[dn.ID]; dup || sys.Node(dn.ID) != nil {
			return fmt.Errorf("front: delta re-declares node %q", dn.ID)
		}
		if dn.Parent == "" && dn.Sched == "" {
			return fmt.Errorf("front: delta node %q has neither parent nor schedule", dn.ID)
		}
		if dn.Parent != "" {
			psched, ok := node(dn.Parent)
			if !ok {
				return fmt.Errorf("front: delta node %q has unknown parent %q (parents must precede children)", dn.ID, dn.Parent)
			}
			if psched == "" {
				return fmt.Errorf("front: delta node %q has leaf parent %q", dn.ID, dn.Parent)
			}
		}
		if dn.Sched != "" && !hasSched(dn.Sched) {
			return fmt.Errorf("front: delta node %q references unknown schedule %q", dn.ID, dn.Sched)
		}
		newNodes[dn.ID] = dn
	}

	// opSchedule of a node once the delta is applied: its parent's Sched.
	opSched := func(id model.NodeID) (model.ScheduleID, bool) {
		if dn := newNodes[id]; dn != nil {
			if dn.Parent == "" {
				return "", true
			}
			ps, _ := node(dn.Parent)
			return ps, true
		}
		if nd := sys.Node(id); nd != nil {
			if nd.Parent == "" {
				return "", true
			}
			ps, _ := node(nd.Parent)
			return ps, true
		}
		return "", false
	}

	checkOpPair := func(kind string, p DeltaPair) error {
		if !hasSched(p.Sched) {
			return fmt.Errorf("front: delta %s pair references unknown schedule %q", kind, p.Sched)
		}
		if p.A == p.B {
			return fmt.Errorf("front: delta %s pair (%s, %s) of %s is reflexive", kind, p.A, p.B, p.Sched)
		}
		for _, id := range []model.NodeID{p.A, p.B} {
			os, ok := opSched(id)
			if !ok {
				return fmt.Errorf("front: delta %s pair references unknown node %q", kind, id)
			}
			if os != p.Sched {
				return fmt.Errorf("front: delta %s pair endpoint %q is not an operation of %s", kind, id, p.Sched)
			}
		}
		return nil
	}
	for _, p := range d.Conflicts {
		if err := checkOpPair("conflict", p); err != nil {
			return err
		}
	}
	for _, p := range d.WeakOut {
		if err := checkOpPair("weak-output", p); err != nil {
			return err
		}
	}
	for _, p := range d.StrongOut {
		if err := checkOpPair("strong-output", p); err != nil {
			return err
		}
	}

	checkTxPair := func(kind string, p DeltaPair) error {
		if !hasSched(p.Sched) {
			return fmt.Errorf("front: delta %s pair references unknown schedule %q", kind, p.Sched)
		}
		if p.A == p.B {
			return fmt.Errorf("front: delta %s pair (%s, %s) of %s is reflexive", kind, p.A, p.B, p.Sched)
		}
		for _, id := range []model.NodeID{p.A, p.B} {
			sched, ok := node(id)
			if !ok {
				return fmt.Errorf("front: delta %s pair references unknown node %q", kind, id)
			}
			if sched != p.Sched {
				return fmt.Errorf("front: delta %s pair endpoint %q is not a transaction of %s", kind, id, p.Sched)
			}
		}
		return nil
	}
	for _, p := range d.WeakIn {
		if err := checkTxPair("weak-input", p); err != nil {
			return err
		}
	}
	for _, p := range d.StrongIn {
		if err := checkTxPair("strong-input", p); err != nil {
			return err
		}
	}

	parentOf := func(id model.NodeID) (model.NodeID, bool) {
		if dn := newNodes[id]; dn != nil {
			return dn.Parent, true
		}
		if nd := sys.Node(id); nd != nil {
			return nd.Parent, true
		}
		return "", false
	}
	for _, ip := range d.Intra {
		tsched, ok := node(ip.Tx)
		if !ok {
			return fmt.Errorf("front: delta intra pair references unknown transaction %q", ip.Tx)
		}
		if tsched == "" {
			return fmt.Errorf("front: delta intra pair on leaf %q", ip.Tx)
		}
		if ip.A == ip.B {
			return fmt.Errorf("front: delta intra pair (%s, %s) of %s is reflexive", ip.A, ip.B, ip.Tx)
		}
		for _, id := range []model.NodeID{ip.A, ip.B} {
			par, ok := parentOf(id)
			if !ok {
				return fmt.Errorf("front: delta intra pair references unknown node %q", id)
			}
			if par != ip.Tx {
				return fmt.Errorf("front: delta intra pair endpoint %q is not an operation of %s", id, ip.Tx)
			}
		}
	}
	return nil
}

// SystemDelta expresses an entire system as one delta: applying it to an
// empty system reproduces sys (up to order closure, which the engine
// performs anyway). Nodes are emitted parents-first.
func SystemDelta(sys *model.System) *Delta {
	d := &Delta{}
	for _, sc := range sys.Schedules() {
		d.Schedules = append(d.Schedules, sc.ID)
	}
	var walk func(id model.NodeID)
	walk = func(id model.NodeID) {
		nd := sys.Node(id)
		d.Nodes = append(d.Nodes, DeltaNode{ID: id, Parent: nd.Parent, Sched: nd.Sched})
		for _, k := range sys.Children(id) {
			walk(k)
		}
	}
	for _, r := range sys.Roots() {
		walk(r)
	}
	appendSchedulePairs(sys, d, nil)
	return d
}

// DecomposeByRoot splits a system into one delta per root transaction, in
// sorted root order — the commit-at-a-time stream a live certifier sees.
// The first delta additionally carries every schedule; each relation pair
// rides with the later of its two roots, so every prefix of the stream is
// itself a well-formed system.
func DecomposeByRoot(sys *model.System) []*Delta {
	roots := sys.Roots()
	if len(roots) == 0 {
		return []*Delta{SystemDelta(sys)}
	}
	deltas := make([]*Delta, len(roots))
	rootOf := make(map[model.NodeID]int, sys.NumNodes())
	for k, r := range roots {
		deltas[k] = &Delta{}
		for _, id := range sys.CompositeTransaction(r) {
			rootOf[id] = k
		}
		var walk func(id model.NodeID)
		walk = func(id model.NodeID) {
			nd := sys.Node(id)
			deltas[k].Nodes = append(deltas[k].Nodes, DeltaNode{ID: id, Parent: nd.Parent, Sched: nd.Sched})
			for _, c := range sys.Children(id) {
				walk(c)
			}
		}
		walk(r)
	}
	for _, sc := range sys.Schedules() {
		deltas[0].Schedules = append(deltas[0].Schedules, sc.ID)
	}
	appendSchedulePairs(sys, nil, func(a, b model.NodeID) *Delta {
		ka, kb := rootOf[a], rootOf[b]
		if kb > ka {
			ka = kb
		}
		return deltas[ka]
	})
	return deltas
}

// DecomposeSteps splits a system into the finest append stream: one delta
// per forest node (parents before children, roots in sorted order), each
// relation pair riding with the later of its two endpoints. The first
// delta carries the schedules. Every prefix is a well-formed system —
// this is the op-by-op stream the prefix-exactness property tests replay.
func DecomposeSteps(sys *model.System) []*Delta {
	pos := make(map[model.NodeID]int, sys.NumNodes())
	var deltas []*Delta
	var walk func(id model.NodeID)
	walk = func(id model.NodeID) {
		nd := sys.Node(id)
		pos[id] = len(deltas)
		deltas = append(deltas, &Delta{Nodes: []DeltaNode{{ID: id, Parent: nd.Parent, Sched: nd.Sched}}})
		for _, k := range sys.Children(id) {
			walk(k)
		}
	}
	for _, r := range sys.Roots() {
		walk(r)
	}
	if len(deltas) == 0 {
		return []*Delta{SystemDelta(sys)}
	}
	for _, sc := range sys.Schedules() {
		deltas[0].Schedules = append(deltas[0].Schedules, sc.ID)
	}
	appendSchedulePairs(sys, nil, func(a, b model.NodeID) *Delta {
		k := pos[a]
		if pos[b] > k {
			k = pos[b]
		}
		return deltas[k]
	})
	return deltas
}

// appendSchedulePairs routes every relation pair of sys either into the
// single delta d (when pick is nil) or into pick(a, b).
func appendSchedulePairs(sys *model.System, d *Delta, pick func(a, b model.NodeID) *Delta) {
	target := func(a, b model.NodeID) *Delta {
		if pick == nil {
			return d
		}
		return pick(a, b)
	}
	for _, sc := range sys.Schedules() {
		sc.Conflicts.Each(func(a, b model.NodeID) {
			t := target(a, b)
			t.Conflicts = append(t.Conflicts, DeltaPair{Sched: sc.ID, A: a, B: b})
		})
		sc.WeakOut.Each(func(a, b model.NodeID) {
			t := target(a, b)
			t.WeakOut = append(t.WeakOut, DeltaPair{Sched: sc.ID, A: a, B: b})
		})
		sc.StrongOut.Each(func(a, b model.NodeID) {
			t := target(a, b)
			t.StrongOut = append(t.StrongOut, DeltaPair{Sched: sc.ID, A: a, B: b})
		})
		sc.WeakIn.Each(func(a, b model.NodeID) {
			t := target(a, b)
			t.WeakIn = append(t.WeakIn, DeltaPair{Sched: sc.ID, A: a, B: b})
		})
		sc.StrongIn.Each(func(a, b model.NodeID) {
			t := target(a, b)
			t.StrongIn = append(t.StrongIn, DeltaPair{Sched: sc.ID, A: a, B: b})
		})
	}
	for _, id := range sys.NodeIDs() {
		nd := sys.Node(id)
		if nd.Sched == "" {
			continue
		}
		strong := map[[2]model.NodeID]bool{}
		if nd.StrongIntra != nil {
			nd.StrongIntra.Each(func(a, b model.NodeID) {
				strong[[2]model.NodeID{a, b}] = true
				t := target(a, b)
				t.Intra = append(t.Intra, DeltaIntra{Tx: id, A: a, B: b, Strong: true})
			})
		}
		if nd.WeakIntra != nil {
			nd.WeakIntra.Each(func(a, b model.NodeID) {
				if strong[[2]model.NodeID{a, b}] {
					return
				}
				t := target(a, b)
				t.Intra = append(t.Intra, DeltaIntra{Tx: id, A: a, B: b})
			})
		}
	}
}
