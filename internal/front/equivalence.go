package front

import (
	"compositetx/internal/model"
	"compositetx/internal/order"
)

// This file implements the comparison machinery of Definitions 17–20
// directly: serial fronts, level-i-equivalence, level-i-containment, and
// composite correctness in its original containment form. Theorem 1
// states that the containment definition coincides with reachability of a
// level-N front; TestTheorem1BothDirections verifies the equivalence of
// the two implementations.

// Equal reports whether two fronts are identical: same nodes, observed
// order, generalized conflicts, and input orders (levels are not
// compared; Definition 18 explicitly allows comparing fronts of different
// levels from different systems).
func (f *Front) Equal(other *Front) bool {
	if f.Len() != other.Len() {
		return false
	}
	for n := range f.nodes {
		if !other.Has(n) {
			return false
		}
	}
	return f.Obs.Equal(other.Obs) &&
		f.WeakIn.Equal(other.WeakIn) &&
		f.StrongIn.Equal(other.StrongIn) &&
		conflictsEqual(f.Con, other.Con)
}

func conflictsEqual(a, b *model.PairSet) bool {
	if a.Len() != b.Len() {
		return false
	}
	eq := true
	a.Each(func(x, y model.NodeID) {
		if !b.Has(x, y) {
			eq = false
		}
	})
	return eq
}

// FrontAtLevel runs the reduction up to the given level and returns that
// front, or ok=false when the reduction fails earlier. Level 0 returns
// the all-leaves front.
func FrontAtLevel(sys *model.System, level int) (*Front, bool) {
	ns := sys.Clone()
	ns.Normalize()
	levels, err := ns.Levels()
	if err != nil {
		return nil, false
	}
	f := Level0(ns)
	if !f.IsCC() {
		return nil, false
	}
	for f.Level < level {
		nf, _ := Step(ns, f, levels)
		if nf == nil {
			return nil, false
		}
		f = nf
	}
	return f, true
}

// LevelEquivalent reports whether the composite system is
// level-i-equivalent to the front (Definition 18): the system has a level
// i front identical to it.
func LevelEquivalent(sys *model.System, i int, f *Front) bool {
	own, ok := FrontAtLevel(sys, i)
	return ok && own.Equal(f)
}

// SerialFront builds the serial front (Definition 17) over the given
// nodes in the given total order: the strong (and weak) input order is
// the total order, with the conflict relation supplied by the caller.
func SerialFront(nodes []model.NodeID, con *model.PairSet) *Front {
	f := &Front{
		Level:    0,
		nodes:    make(map[model.NodeID]struct{}, len(nodes)),
		Obs:      order.New[model.NodeID](),
		Con:      con.Clone(),
		WeakIn:   order.New[model.NodeID](),
		StrongIn: order.New[model.NodeID](),
	}
	for i, n := range nodes {
		f.nodes[n] = struct{}{}
		f.Obs.AddNode(n)
		for _, m := range nodes[i+1:] {
			f.StrongIn.Add(n, m)
			f.WeakIn.Add(n, m)
		}
	}
	return f
}

// LevelContained reports whether the composite system is
// level-i-contained in the front (Definition 19): the system is
// level-i-equivalent to some front F* whose nodes and conflicts match F
// and whose combined orders (→ ∪ <o) are contained in F's input order.
func LevelContained(sys *model.System, i int, f *Front) bool {
	own, ok := FrontAtLevel(sys, i)
	if !ok {
		return false
	}
	if own.Len() != f.Len() {
		return false
	}
	for n := range own.nodes {
		if !f.Has(n) {
			return false
		}
	}
	if !conflictsEqual(own.Con, f.Con) {
		return false
	}
	combined := order.UnionOf(own.WeakIn, own.Obs)
	return f.WeakIn.TransitiveClosure().Contains(combined)
}

// IsCompCByContainment decides composite correctness in the original form
// of Definition 20: the system is correct iff it is level-N-contained in
// some serial front. The serial front is constructed by topologically
// sorting the level-N front (exactly the proof of Theorem 1); if no
// level-N front exists the system is incorrect.
func IsCompCByContainment(sys *model.System) (bool, error) {
	if err := sys.ValidateStructure(); err != nil {
		return false, err
	}
	n, err := sys.Order()
	if err != nil {
		return false, err
	}
	top, ok := FrontAtLevel(sys, n)
	if !ok {
		return false, nil
	}
	serialOrder, ok := top.SerialWitness()
	if !ok {
		return false, nil
	}
	serial := SerialFront(serialOrder, top.Con)
	return LevelContained(sys, n, serial), nil
}
