package front_test

import (
	"fmt"
	"testing"

	"compositetx/internal/criteria"
	"compositetx/internal/front"
	"compositetx/internal/model"
)

// The paper's §4: "in [AFPS99] it is shown how the stack, fork and join
// can be used to model a variety of transaction models like federated
// transactions, the ticket method for federated transaction management,
// sagas and distributed transactions. The results in this paper show that
// Comp-C is a framework where all these models can be understood and
// compared." This file builds those models and checks the claims.

// sagaExecution models two sagas whose steps interleave at the database.
// A saga is a sequence of steps, each a transaction of its own; saga
// semantics explicitly allows steps of different sagas to interleave. In
// the composite model that is a two-level system whose top scheduler (the
// saga manager) declares *no* conflicts between steps of different sagas —
// it vouches for their commutativity at the saga level (compensation
// handles the rest). The same recorded execution under ACID semantics
// (conflicts declared at the top) is not serializable.
func sagaExecution(sagaSemantics bool) *model.System {
	s := model.NewSystem()
	mgr := s.AddSchedule("SagaMgr")
	db := s.AddSchedule("DB")

	s.AddRoot("Saga1", "SagaMgr")
	s.AddRoot("Saga2", "SagaMgr")
	// Steps: Saga1 = (book, pay), Saga2 = (book, pay); both touch the same
	// records at the DB, interleaved: s1.book, s2.book, s2.pay, s1.pay.
	s.AddTx("s1.book", "Saga1", "DB")
	s.AddTx("s1.pay", "Saga1", "DB")
	s.AddTx("s2.book", "Saga2", "DB")
	s.AddTx("s2.pay", "Saga2", "DB")
	s.AddLeaf("w1b", "s1.book")
	s.AddLeaf("w1p", "s1.pay")
	s.AddLeaf("w2b", "s2.book")
	s.AddLeaf("w2p", "s2.pay")

	// The DB serializes the conflicting step pairs: bookings one way,
	// payments the other (the classic interleaving sagas tolerate).
	db.AddConflict("w1b", "w2b")
	db.WeakOut.Add("w1b", "w2b")
	db.AddConflict("w1p", "w2p")
	db.WeakOut.Add("w2p", "w1p")

	if !sagaSemantics {
		// ACID composite transactions: the manager knows its steps
		// conflict and records its execution order.
		mgr.AddConflict("s1.book", "s2.book")
		mgr.WeakOut.Add("s1.book", "s2.book")
		mgr.AddConflict("s1.pay", "s2.pay")
		mgr.WeakOut.Add("s2.pay", "s1.pay")
		// Definition 4 item 7: pass the orders down as input orders.
		db.WeakIn.Add("s1.book", "s2.book")
		db.WeakIn.Add("s2.pay", "s1.pay")
	}
	return s
}

func TestSagaModel(t *testing.T) {
	saga := sagaExecution(true)
	if err := saga.Validate(); err != nil {
		t.Fatalf("saga execution must validate: %v", err)
	}
	ok, err := front.IsCompC(saga)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("interleaved sagas must be Comp-C under saga semantics (the manager vouches)")
	}

	acid := sagaExecution(false)
	if err := acid.Validate(); err != nil {
		t.Fatalf("ACID execution must validate: %v", err)
	}
	ok, err = front.IsCompC(acid)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("the same interleaving must NOT be Comp-C under ACID semantics")
	}
}

// ticketedJoin models the ticket method for federated transaction
// management: independent managers (U1, U2) run transactions against a
// shared database; every subtransaction increments a ticket at the shared
// database, making otherwise-invisible cross-manager dependencies explicit
// as conflicts on the ticket. ticketOrder gives the order in which the
// four subtransactions took their ticket; dataCrossed selects whether the
// actual data accesses agree with it.
func ticketedJoin(ticketOrder []string, dataCrossed bool) *model.System {
	s := model.NewSystem()
	db := s.AddSchedule("DB")
	s.AddSchedule("U1")
	s.AddSchedule("U2")
	s.AddRoot("TA", "U1")
	s.AddRoot("TB", "U2")
	s.AddTx("ta1", "TA", "DB")
	s.AddTx("ta2", "TA", "DB")
	s.AddTx("tb1", "TB", "DB")
	s.AddTx("tb2", "TB", "DB")
	for _, sub := range []string{"ta1", "ta2", "tb1", "tb2"} {
		s.AddLeaf(model.NodeID(sub+".tkt"), model.NodeID(sub)) // the ticket access
		s.AddLeaf(model.NodeID(sub+".w"), model.NodeID(sub))   // the real work
	}
	// Tickets conflict pairwise and are ordered by ticketOrder.
	for i, a := range ticketOrder {
		for _, b := range ticketOrder[i+1:] {
			db.AddConflict(model.NodeID(a+".tkt"), model.NodeID(b+".tkt"))
			db.WeakOut.Add(model.NodeID(a+".tkt"), model.NodeID(b+".tkt"))
		}
	}
	// The real work: ta1 and tb1 touch record r1; ta2 and tb2 touch r2.
	db.AddConflict("ta1.w", "tb1.w")
	db.AddConflict("ta2.w", "tb2.w")
	db.WeakOut.Add("ta1.w", "tb1.w") // TA before TB on r1
	if dataCrossed {
		db.WeakOut.Add("tb2.w", "ta2.w") // TB before TA on r2: crossed
	} else {
		db.WeakOut.Add("ta2.w", "tb2.w")
	}
	return s
}

func TestTicketMethodModel(t *testing.T) {
	// Consistent: tickets taken TA-first, data accesses agree.
	good := ticketedJoin([]string{"ta1", "ta2", "tb1", "tb2"}, false)
	if err := good.Validate(); err != nil {
		t.Fatalf("ticketed execution must validate: %v", err)
	}
	ok, err := front.IsCompC(good)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("ticket-consistent execution must be Comp-C")
	}
	jcc, err := criteria.IsJCC(good)
	if err != nil || !jcc {
		t.Fatalf("ticket-consistent execution must be JCC: %v, %v", jcc, err)
	}

	// Crossed data accesses: without tickets this is the undetectable
	// ghost cycle; with tickets the crossed pair contradicts the total
	// ticket order and the execution is rejected.
	bad := ticketedJoin([]string{"ta1", "ta2", "tb1", "tb2"}, true)
	if err := bad.Validate(); err != nil {
		t.Fatalf("crossed ticketed execution must validate: %v", err)
	}
	ok, err = front.IsCompC(bad)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("ticket-inconsistent execution must not be Comp-C")
	}
	jcc, err = criteria.IsJCC(bad)
	if err != nil || jcc {
		t.Fatalf("ticket-inconsistent execution must fail JCC: %v, %v", jcc, err)
	}
}

// TestTicketMethodMakesOrderTotal: the point of tickets is that *any* two
// federated transactions become ghost-graph comparable, so local managers
// can be validated without global knowledge. Without tickets two
// transactions touching disjoint records are unrelated; with tickets they
// are ordered.
func TestTicketMethodMakesOrderTotal(t *testing.T) {
	sys := ticketedJoin([]string{"ta1", "tb1", "ta2", "tb2"}, false)
	shape, okShape := criteria.AsJoin(sys)
	if !okShape {
		t.Fatal("ticketed system is a join")
	}
	g := criteria.GhostGraph(sys, shape)
	if !(g.Has("TA", "TB") || g.Has("TB", "TA")) {
		t.Fatalf("tickets must relate the roots in the ghost graph: %v", g.Pairs())
	}
}

// TestDistributedTransactionAsFork models distributed transactions as a
// fork: a coordinator splits work across independent resource managers.
//
// Two readings, with instructively different outcomes:
//
//  1. Autonomous semantics (the fork of Definition 23): the coordinator
//     declares no conflicts across its operations — it vouches for their
//     commutativity. Then even *disagreeing* branch serializations (RM1
//     puts T1 first, RM2 puts T2 first) are correct: each branch is
//     locally serializable and the vouched commutativity makes the
//     orders irrelevant. FCC and Comp-C agree (Theorem 3).
//
//  2. Strict ACID semantics: the coordinator declares its branch
//     operations conflicting. Definition 3 then *obliges* it to order
//     them and Definition 4 item 7 pushes that order into the managers as
//     input orders — so a branch serializing against the coordinator is
//     not an expressible well-formed execution at all: Validate rejects
//     it. Strictness is enforced by the model's obligations, not by the
//     reduction.
func TestDistributedTransactionAsFork(t *testing.T) {
	build := func(crossed, acid bool) *model.System {
		s := model.NewSystem()
		coord := s.AddSchedule("Coord")
		r1 := s.AddSchedule("RM1")
		r2 := s.AddSchedule("RM2")
		s.AddRoot("T1", "Coord")
		s.AddRoot("T2", "Coord")
		s.AddTx("t1a", "T1", "RM1")
		s.AddTx("t1b", "T1", "RM2")
		s.AddTx("t2a", "T2", "RM1")
		s.AddTx("t2b", "T2", "RM2")
		s.AddLeaf("x1", "t1a")
		s.AddLeaf("x2", "t2a")
		s.AddLeaf("y1", "t1b")
		s.AddLeaf("y2", "t2b")
		r1.AddConflict("x1", "x2")
		r1.WeakOut.Add("x1", "x2") // RM1 serializes T1 before T2
		r2.AddConflict("y1", "y2")
		if crossed {
			r2.WeakOut.Add("y2", "y1") // RM2 disagrees
		} else {
			r2.WeakOut.Add("y1", "y2")
		}
		if acid {
			// The coordinator knows same-branch operations conflict and
			// records T1-first; Definition 4 item 7 propagation included.
			coord.AddConflict("t1a", "t2a")
			coord.WeakOut.Add("t1a", "t2a")
			r1.WeakIn.Add("t1a", "t2a")
			coord.AddConflict("t1b", "t2b")
			coord.WeakOut.Add("t1b", "t2b")
			r2.WeakIn.Add("t1b", "t2b")
		}
		return s
	}

	// Autonomous: both variants are well-formed and correct.
	for _, crossed := range []bool{false, true} {
		sys := build(crossed, false)
		if err := sys.Validate(); err != nil {
			t.Fatalf("autonomous crossed=%v must validate: %v", crossed, err)
		}
		fcc, err := criteria.IsFCC(sys)
		if err != nil {
			t.Fatal(err)
		}
		compC, err := front.IsCompC(sys)
		if err != nil {
			t.Fatal(err)
		}
		if !fcc || !compC {
			t.Fatalf("autonomous crossed=%v: fcc=%v compC=%v, want both true (the coordinator vouches)", crossed, fcc, compC)
		}
	}

	// ACID: the aligned execution is correct; the crossed one is not even
	// a well-formed recording (RM2 violated its input order).
	aligned := build(false, true)
	if err := aligned.Validate(); err != nil {
		t.Fatalf("ACID aligned must validate: %v", err)
	}
	if ok, err := front.IsCompC(aligned); err != nil || !ok {
		t.Fatalf("ACID aligned must be Comp-C: %v, %v", ok, err)
	}
	crossed := build(true, true)
	if err := crossed.Validate(); err == nil {
		t.Fatal("ACID crossed must be rejected by Validate (Def 3.1a violated at RM2)")
	}
}

// TestModelsAreDisjointCriteria documents that the saga and ACID readings
// of one interleaving differ exactly in the top schedule's conflict
// declaration — nothing else.
func TestModelsAreDisjointCriteria(t *testing.T) {
	saga, acid := sagaExecution(true), sagaExecution(false)
	if fmt.Sprint(saga.Schedule("DB").WeakOut.Pairs()) != fmt.Sprint(acid.Schedule("DB").WeakOut.Pairs()) {
		t.Fatal("DB behaviour must be identical in both readings")
	}
	if saga.Schedule("SagaMgr").Conflicts.Len() != 0 {
		t.Fatal("saga manager must declare no conflicts")
	}
	if acid.Schedule("SagaMgr").Conflicts.Len() == 0 {
		t.Fatal("ACID manager must declare conflicts")
	}
}
