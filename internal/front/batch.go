package front

import (
	"errors"
	"runtime"
	"sync"

	"compositetx/internal/model"
)

// errNilSystem is returned for nil entries in a CheckBatch input slice.
var errNilSystem = errors.New("front: nil system")

// BatchResult is the outcome of checking one system of a batch: exactly
// one of Verdict and Err is non-nil.
type BatchResult struct {
	Verdict *Verdict
	Err     error
}

// CheckBatch checks many systems concurrently on a worker pool and
// returns one result per system, in input order. parallelism is the
// number of workers; values < 1 select runtime.GOMAXPROCS(0). Nil systems
// and duplicate pointers to the same system are allowed: every interner
// is built sequentially up front, after which the per-check state is
// private to each worker and the systems are only read.
//
// CheckBatch is how the experiment drivers (internal/sim) and cmd/compcheck
// -parallel amortize checking across cores; single checks should call
// Check directly.
func CheckBatch(systems []*model.System, parallelism int, opts Options) []BatchResult {
	results := make([]BatchResult, len(systems))
	if len(systems) == 0 {
		return results
	}
	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(systems) {
		parallelism = len(systems)
	}

	// Check mutates a system only by caching its interner; building them
	// all before fanning out makes the concurrent phase read-only even
	// when one *System appears at several indices.
	for _, sys := range systems {
		if sys != nil {
			sys.Intern()
		}
	}

	if parallelism == 1 {
		for i, sys := range systems {
			results[i] = checkOne(sys, opts)
		}
		return results
	}

	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = checkOne(systems[i], opts)
			}
		}()
	}
	for i := range systems {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

func checkOne(sys *model.System, opts Options) BatchResult {
	if sys == nil {
		return BatchResult{Err: errNilSystem}
	}
	v, err := Check(sys, opts)
	return BatchResult{Verdict: v, Err: err}
}
