package front

import (
	"fmt"

	"compositetx/internal/model"
	"compositetx/internal/order"
)

// FailureKind classifies why a reduction step could not be completed.
type FailureKind int

const (
	// FailNone means the step succeeded.
	FailNone FailureKind = iota
	// FailCalculation means some transaction has contradictory internal
	// constraints: no isolated execution sequence involving all of its
	// operations exists (Definition 14).
	FailCalculation
	// FailIsolation means the transactions being reduced cannot all be
	// made contiguous: the quotient constraint graph is cyclic, i.e. the
	// rearranged front F** of Definition 16 step 1 does not exist.
	FailIsolation
	// FailCC means the new front violates conflict consistency
	// (Definition 13, checked by Definition 16 step 6).
	FailCC
)

func (k FailureKind) String() string {
	switch k {
	case FailNone:
		return "ok"
	case FailCalculation:
		return "no calculation (cyclic constraints inside a transaction)"
	case FailIsolation:
		return "no isolated rearrangement (cycle between transactions)"
	case FailCC:
		return "front not conflict consistent"
	default:
		return fmt.Sprintf("FailureKind(%d)", int(k))
	}
}

// Step performs one reduction step (Definition 16): it builds the level
// f.Level+1 front from f by replacing the operations of every schedule of
// that level with the schedule's transactions. It reports failure when the
// rearranged front F** does not exist or the new front is not conflict
// consistent; on failure the returned front is nil.
//
// levels must come from sys.Levels(); sys must be normalized.
func Step(sys *model.System, f *Front, levels map[model.ScheduleID]int) (*Front, *StepReport) {
	level := f.Level + 1
	rep := &StepReport{Level: level}

	// Schedules reduced at this level, in deterministic order.
	var scheds []*model.Schedule
	for _, sc := range sys.Schedules() {
		if levels[sc.ID] == level {
			scheds = append(scheds, sc)
		}
	}

	// groupOf maps every operation being reduced to its parent transaction;
	// every other front node is its own singleton group.
	groupOf := make(map[model.NodeID]model.NodeID)
	var newTx []model.NodeID
	for _, sc := range scheds {
		for _, t := range sys.Transactions(sc.ID) {
			newTx = append(newTx, t)
			for _, op := range sys.Children(t) {
				if !f.Has(op) {
					// Cannot happen in a well-formed system: operations of a
					// level-i schedule are leaves or transactions of lower
					// levels, all present in the level i-1 front.
					panic(fmt.Sprintf("front: op %s of %s not in level %d front", op, t, f.Level))
				}
				groupOf[op] = t
			}
		}
	}
	rep.Reduced = append([]model.NodeID(nil), newTx...)

	group := func(n model.NodeID) model.NodeID {
		if g, ok := groupOf[n]; ok {
			return g
		}
		return n
	}

	// --- Definition 16 step 1: does the rearranged front F** exist? --------
	//
	// Constraint relation E (interpretation D3): observed-order pairs
	// between generalized-conflicting nodes, strong input orders between
	// front elements, each reduced schedule's weak output order restricted
	// to conflicting pairs, and each reduced transaction's weak
	// intra-transaction order. Pairs outside E commute and may be
	// reordered freely: Definition 16 step 1 permits "changing the order
	// of commuting pairs", and an observed-order pair between operations
	// of one common schedule that declares no conflict is exactly such a
	// commuting pair — the schedule vouches for commutativity (the
	// "forgotten" orders of the paper's Figure 4 walkthrough).
	e := order.New[model.NodeID]()
	f.Obs.Each(func(a, b model.NodeID) {
		if f.Con.Has(a, b) {
			e.Add(a, b)
		}
	})
	e.Union(f.StrongIn)
	for _, sc := range scheds {
		sc.Conflicts.Each(func(a, b model.NodeID) {
			if sc.WeakOut.Has(a, b) {
				e.Add(a, b)
			}
			if sc.WeakOut.Has(b, a) {
				e.Add(b, a)
			}
		})
	}
	for _, t := range newTx {
		n := sys.Node(t)
		if n.WeakIntra != nil {
			e.Union(n.WeakIntra)
		}
	}
	for n := range f.nodes {
		e.AddNode(n)
	}

	ok, badGroup, qCycle := e.GroupableBy(group)
	if !ok {
		if badGroup != "" {
			rep.Failure = FailCalculation
			rep.BadTransaction = badGroup
			inner := e.Restrict(func(n model.NodeID) bool { return group(n) == badGroup })
			rep.Cycle = inner.FindCycle()
		} else {
			rep.Failure = FailIsolation
			rep.Cycle = qCycle
		}
		return nil, rep
	}

	// --- Definition 16 steps 2–5: build the new front. ----------------------
	nf := &Front{
		Level:    level,
		nodes:    make(map[model.NodeID]struct{}),
		Obs:      order.New[model.NodeID](),
		Con:      model.NewPairSet(),
		WeakIn:   order.New[model.NodeID](),
		StrongIn: order.New[model.NodeID](),
	}
	for n := range f.nodes {
		if _, reduced := groupOf[n]; !reduced {
			nf.nodes[n] = struct{}{} // survivors, including roots (step 5)
		}
	}
	for _, t := range newTx {
		nf.nodes[t] = struct{}{}
	}
	for n := range nf.nodes {
		nf.Obs.AddNode(n)
	}

	// Observed order, step 3/4 (interpretation D2):
	//
	// (a) Definition 10 rule 2 at each reduced schedule: conflicting
	// operations ordered by the schedule induce observed order between
	// their parents.
	for _, sc := range scheds {
		sc.Conflicts.Each(func(a, b model.NodeID) {
			pa, pb := group(a), group(b)
			if pa == pb {
				return
			}
			if sc.WeakOut.Has(a, b) {
				nf.Obs.Add(pa, pb)
			}
			if sc.WeakOut.Has(b, a) {
				nf.Obs.Add(pb, pa)
			}
		})
	}

	// (b) Lift existing observed-order pairs. A pair whose endpoints are
	// both operations of one common schedule is kept only if that schedule
	// declares a conflict — otherwise the schedule vouches for
	// commutativity and the order is forgotten (Definition 10 rules 2–3,
	// the paper's Figure 4 walkthrough). All other pairs propagate
	// (rule 3), lifted on the reduced side(s).
	f.Obs.Each(func(a, b model.NodeID) {
		la, lb := group(a), group(b)
		if la == lb {
			return
		}
		_, ra := groupOf[a]
		_, rb := groupOf[b]
		if ra && rb {
			sa, sb := sys.OpSchedule(a), sys.OpSchedule(b)
			if sa == sb && sa != "" {
				if !sys.Schedule(sa).Conflict(a, b) {
					return // forgotten: common schedule, no conflict
				}
			}
		}
		nf.Obs.Add(la, lb)
	})

	// (c) Definition 10 rule 1 for pairs involving the new nodes: a new
	// node that shares its operation-schedule with a leaf front node is
	// observed-ordered as that schedule's weak output order.
	for _, t := range newTx {
		st := sys.OpSchedule(t)
		if st == "" {
			continue // root transaction
		}
		sc := sys.Schedule(st)
		for other := range nf.nodes {
			if other == t || sys.OpSchedule(other) != st {
				continue
			}
			if !sys.Node(other).IsLeaf() && !sys.Node(t).IsLeaf() {
				continue // rule 1 needs at least one leaf in the pair
			}
			if sc.WeakOut.Has(t, other) {
				nf.Obs.Add(t, other)
			}
			if sc.WeakOut.Has(other, t) {
				nf.Obs.Add(other, t)
			}
		}
	}

	nf.Obs = nf.Obs.TransitiveClosure() // rule 4

	// Input orders, step 6: keep surviving pairs, add the reduced
	// schedules' input orders over their transactions.
	f.WeakIn.Each(func(a, b model.NodeID) {
		if nf.Has(a) && nf.Has(b) {
			nf.WeakIn.Add(a, b)
		}
	})
	f.StrongIn.Each(func(a, b model.NodeID) {
		if nf.Has(a) && nf.Has(b) {
			nf.StrongIn.Add(a, b)
		}
	})
	for _, sc := range scheds {
		sc.WeakIn.Each(func(a, b model.NodeID) { nf.WeakIn.Add(a, b) })
		sc.StrongIn.Each(func(a, b model.NodeID) { nf.StrongIn.Add(a, b) })
	}

	// Generalized conflicts (Definition 11), recomputed over the new front:
	// same-schedule pairs use the schedule's predicate; cross-schedule
	// pairs conflict iff observed-ordered.
	recomputeCon(sys, nf)

	// Definition 16 step 6: the new front must be conflict consistent.
	if !nf.IsCC() {
		rep.Failure = FailCC
		rep.Cycle = nf.ccCycle()
		return nil, rep
	}
	return nf, rep
}

// recomputeCon rebuilds the generalized conflict relation of a front per
// Definition 11.
func recomputeCon(sys *model.System, f *Front) {
	f.Con = model.NewPairSet()
	nodes := f.Nodes()
	for i, a := range nodes {
		sa := sys.OpSchedule(a)
		for _, b := range nodes[i+1:] {
			sb := sys.OpSchedule(b)
			if sa != "" && sa == sb {
				if sys.Schedule(sa).Conflict(a, b) {
					f.Con.Add(a, b)
				}
			} else if f.Obs.Has(a, b) || f.Obs.Has(b, a) {
				f.Con.Add(a, b)
			}
		}
	}
}
