package front

import (
	"encoding/json"
	"fmt"
	"strings"

	"compositetx/internal/model"
)

// StepReport describes one reduction step for tracing and diagnostics.
type StepReport struct {
	Level          int
	Reduced        []model.NodeID // transactions that entered the front
	Failure        FailureKind
	BadTransaction model.NodeID   // set for FailCalculation
	Cycle          []model.NodeID // witness cycle for any failure
}

func (r *StepReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "step to level %d: reduce %v", r.Level, r.Reduced)
	if r.Failure != FailNone {
		fmt.Fprintf(&b, " — FAILED: %s", r.Failure)
		if r.BadTransaction != "" {
			fmt.Fprintf(&b, " for %s", r.BadTransaction)
		}
		if len(r.Cycle) > 0 {
			fmt.Fprintf(&b, ", cycle %v", r.Cycle)
		}
	}
	return b.String()
}

// Verdict is the result of checking a composite execution for composite
// correctness (Comp-C, Definition 20 / Theorem 1).
type Verdict struct {
	// Correct reports whether the execution is Comp-C: the reduction
	// reached a level-N front containing exactly the root transactions.
	Correct bool

	// Order is N, the highest schedule level (Definition 9).
	Order int

	// FailedLevel is the front level whose construction failed, or -1.
	FailedLevel int

	// Reason is a one-line human-readable explanation for incorrectness.
	Reason string

	// Steps holds one report per attempted reduction step (including the
	// failed one). Step 0 is synthesized for the level 0 front.
	Steps []*StepReport

	// Fronts holds every successfully constructed front, index = level,
	// when tracing was requested; otherwise only the final front.
	Fronts []*Front

	// SerialOrder is a total order over the root transactions witnessing
	// equivalence to a serial front (Theorem 1 proof), set when Correct.
	SerialOrder []model.NodeID
}

func (v *Verdict) String() string {
	if v.Correct {
		w := v.SerialOrder
		if len(w) > 12 {
			head := make([]string, 0, 13)
			for _, n := range w[:12] {
				head = append(head, string(n))
			}
			return fmt.Sprintf("Comp-C: correct (order %d, serial witness [%s ...] over %d roots)",
				v.Order, strings.Join(head, " "), len(w))
		}
		return fmt.Sprintf("Comp-C: correct (order %d, serial witness %v)", v.Order, w)
	}
	return fmt.Sprintf("Comp-C: INCORRECT at level %d: %s", v.FailedLevel, v.Reason)
}

// Trace renders a multi-line reduction trace.
func (v *Verdict) Trace() string {
	var b strings.Builder
	fmt.Fprintf(&b, "composite system of order %d\n", v.Order)
	for i, st := range v.Steps {
		if i == 0 {
			if len(v.Fronts) > 0 && v.Fronts[0] != nil {
				fmt.Fprintf(&b, "%s\n", v.Fronts[0])
			}
			continue
		}
		fmt.Fprintf(&b, "%s\n", st)
		if st.Failure == FailNone && st.Level < len(v.Fronts) && v.Fronts[st.Level] != nil {
			fmt.Fprintf(&b, "%s\n", v.Fronts[st.Level])
		}
	}
	fmt.Fprintf(&b, "%s\n", v)
	return b.String()
}

// MarshalJSON encodes the verdict for tooling (cmd/compcheck -json).
func (v *Verdict) MarshalJSON() ([]byte, error) {
	type stepJSON struct {
		Level          int            `json:"level"`
		Reduced        []model.NodeID `json:"reduced,omitempty"`
		Failure        string         `json:"failure,omitempty"`
		BadTransaction model.NodeID   `json:"badTransaction,omitempty"`
		Cycle          []model.NodeID `json:"cycle,omitempty"`
	}
	doc := struct {
		Correct     bool           `json:"correct"`
		Order       int            `json:"order"`
		FailedLevel int            `json:"failedLevel"`
		Reason      string         `json:"reason,omitempty"`
		SerialOrder []model.NodeID `json:"serialOrder,omitempty"`
		Steps       []stepJSON     `json:"steps"`
	}{
		Correct:     v.Correct,
		Order:       v.Order,
		FailedLevel: v.FailedLevel,
		Reason:      v.Reason,
		SerialOrder: v.SerialOrder,
	}
	for _, st := range v.Steps {
		sj := stepJSON{Level: st.Level, Reduced: st.Reduced, BadTransaction: st.BadTransaction, Cycle: st.Cycle}
		if st.Failure != FailNone {
			sj.Failure = st.Failure.String()
		}
		doc.Steps = append(doc.Steps, sj)
	}
	return json.Marshal(doc)
}

// Options configures Check.
type Options struct {
	// KeepFronts retains every intermediate front in the verdict for
	// tracing; otherwise only the final front is kept.
	KeepFronts bool
}

// Check decides composite correctness of a recorded execution by running
// the level-by-level reduction (Theorem 1). It returns an error only when
// the system itself is malformed (recursive configuration); a well-formed
// but incorrect execution yields Correct == false.
//
// Check runs the reduction on the interned-index engine (indexed.go): it
// neither clones nor normalizes sys — schedule orders are closed on the
// index side while building the per-check sysIndex. The only mutation of
// sys is the cached node interner (model.System.Intern); for concurrent
// checks of one shared System use CheckBatch, or call sys.Intern (or
// Normalize) once beforehand. Verdicts are identical to the string-keyed
// reference reduction, which CheckReference retains and the property
// tests in indexed_test.go compare against; failure diagnostics use the
// same lexicographic cycle search, so traces match byte for byte.
func Check(sys *model.System, opts Options) (*Verdict, error) {
	if err := sys.ValidateStructure(); err != nil {
		return nil, err
	}
	levels, err := sys.Levels()
	if err != nil {
		return nil, err
	}
	si := buildSysIndex(sys, levels)
	n := si.order

	v := &Verdict{Order: n, FailedLevel: -1}
	f := si.level0()
	v.Steps = append(v.Steps, &StepReport{Level: 0})
	if opts.KeepFronts {
		v.Fronts = append(v.Fronts, si.materialize(f))
	}
	if c := si.ccCycle(f); c != nil {
		v.FailedLevel = 0
		v.Reason = fmt.Sprintf("level 0 front not conflict consistent: cycle %v", si.nodeIDs(c))
		return v, nil
	}

	for f.level < n {
		nf, rep := si.step(f)
		v.Steps = append(v.Steps, rep)
		if nf == nil {
			v.FailedLevel = rep.Level
			switch rep.Failure {
			case FailCalculation:
				v.Reason = fmt.Sprintf("no calculation for transaction %s: cycle %v", rep.BadTransaction, rep.Cycle)
			case FailIsolation:
				v.Reason = fmt.Sprintf("transactions cannot be isolated: cycle %v", rep.Cycle)
			case FailCC:
				v.Reason = fmt.Sprintf("level %d front not conflict consistent: cycle %v", rep.Level, rep.Cycle)
			}
			return v, nil
		}
		f = nf
		if opts.KeepFronts {
			v.Fronts = append(v.Fronts, si.materialize(f))
		}
	}

	var final *Front
	if opts.KeepFronts {
		final = v.Fronts[len(v.Fronts)-1]
	} else {
		final = si.materialize(f)
		v.Fronts = []*Front{final}
	}

	// The level-N front must consist of exactly the root transactions.
	roots := sys.Roots()
	if final.Len() != len(roots) {
		return nil, fmt.Errorf("front: level %d front has %d nodes, want %d roots", n, final.Len(), len(roots))
	}
	for _, r := range roots {
		if !final.Has(r) {
			return nil, fmt.Errorf("front: root %s missing from level %d front", r, n)
		}
	}

	serial, ok := final.SerialWitness()
	if !ok {
		// Cannot happen: the final front passed the CC check.
		return nil, fmt.Errorf("front: CC level-%d front has no topological order", n)
	}
	v.Correct = true
	v.SerialOrder = serial
	return v, nil
}

// CheckReference is the string-keyed reduction Check ran before the
// interned-index engine existed, kept verbatim as the reference oracle:
// the property tests in indexed_test.go assert Check ≡ CheckReference on
// random workloads, and the sim benchmarks time it so BENCH_checker.json
// carries the engine speedup. It works on a normalized clone and does not
// mutate sys. Use Check; this exists for testing and benchmarking only.
func CheckReference(sys *model.System, opts Options) (*Verdict, error) {
	if err := sys.ValidateStructure(); err != nil {
		return nil, err
	}
	ns := sys.Clone()
	ns.Normalize()
	levels, err := ns.Levels()
	if err != nil {
		return nil, err
	}
	n := 0
	for _, l := range levels {
		if l > n {
			n = l
		}
	}

	v := &Verdict{Order: n, FailedLevel: -1}
	f := Level0(ns)
	v.Steps = append(v.Steps, &StepReport{Level: 0})
	if opts.KeepFronts {
		v.Fronts = append(v.Fronts, f)
	}
	if !f.IsCC() {
		v.FailedLevel = 0
		v.Reason = fmt.Sprintf("level 0 front not conflict consistent: cycle %v", f.ccCycle())
		return v, nil
	}

	for f.Level < n {
		nf, rep := Step(ns, f, levels)
		v.Steps = append(v.Steps, rep)
		if nf == nil {
			v.FailedLevel = rep.Level
			switch rep.Failure {
			case FailCalculation:
				v.Reason = fmt.Sprintf("no calculation for transaction %s: cycle %v", rep.BadTransaction, rep.Cycle)
			case FailIsolation:
				v.Reason = fmt.Sprintf("transactions cannot be isolated: cycle %v", rep.Cycle)
			case FailCC:
				v.Reason = fmt.Sprintf("level %d front not conflict consistent: cycle %v", rep.Level, rep.Cycle)
			}
			return v, nil
		}
		f = nf
		if opts.KeepFronts {
			v.Fronts = append(v.Fronts, f)
		}
	}

	if !opts.KeepFronts {
		v.Fronts = []*Front{f}
	}

	// The level-N front must consist of exactly the root transactions.
	roots := ns.Roots()
	if f.Len() != len(roots) {
		return nil, fmt.Errorf("front: level %d front has %d nodes, want %d roots", n, f.Len(), len(roots))
	}
	for _, r := range roots {
		if !f.Has(r) {
			return nil, fmt.Errorf("front: root %s missing from level %d front", r, n)
		}
	}

	serial, ok := f.SerialWitness()
	if !ok {
		// Cannot happen: the final front passed the CC check.
		return nil, fmt.Errorf("front: CC level-%d front has no topological order", n)
	}
	v.Correct = true
	v.SerialOrder = serial
	return v, nil
}

// IsCompC is a convenience wrapper returning just the boolean verdict.
func IsCompC(sys *model.System) (bool, error) {
	v, err := Check(sys, Options{})
	if err != nil {
		return false, err
	}
	return v.Correct, nil
}
