package front

import (
	"fmt"

	"compositetx/internal/model"
)

// Checkpointing: once a prefix of roots is fully committed and certified
// correct, the engine no longer needs its nodes to decide the correctness
// of what follows — provided nothing that arrives later references them.
// Checkpoint folds such a prefix into a compact CheckpointSummary (the
// prefix's serial witness plus the boundary state of every front level)
// and drops the folded nodes from the accumulated system and from every
// per-level closure, so the engine's memory tracks the live suffix
// instead of the whole history.
//
// Soundness is the multi-level serial-witness argument (Börger/Schewe/
// Wang; Biswas & Enea for the flat case): a fully committed, certified
// prefix is equivalent to a serial execution, and in a runtime stream
// every event of a committed root carries a smaller clock stamp than
// every future event, so every cross-boundary order or conflict pair is
// directed prefix → suffix. A correctness violation is a cycle, a cycle
// needs an edge pointing back into the prefix, and no such edge can ever
// be generated — hence folding the prefix cannot change any later
// verdict. The engine enforces the "nothing references them" contract
// mechanically: a later delta naming a folded node fails validateDelta
// with an unknown-node error, exactly like a reference to a truncated
// LSN. (The runtime certifier guarantees the contract by pruning its
// event index at the same cadence, so conflict pairs against folded
// events are never generated in the first place.)
//
// After the fold the engine state is byte-for-byte the state of a fresh
// engine fed the pruned system: Append/Admit verdicts over any later
// stream are byte-identical to CheckReference over the accumulated
// (pruned) system — the checkpoint property tests assert this prefix by
// prefix across fold boundaries, on the same random stack/fork/join/
// general streams the incremental engine is tested on.

// CheckpointSummary describes one fold: what was dropped and the compact
// facts retained about it.
type CheckpointSummary struct {
	// Roots and Nodes count the composite transactions and forest nodes
	// folded by this checkpoint.
	Roots int
	Nodes int
	// Witness is the folded prefix's serial witness: the folded roots in
	// an order consistent with the final front's observed order at fold
	// time. For runtime streams — where every cross-boundary pair is
	// directed prefix → suffix by the shared clock — concatenating
	// successive checkpoint witnesses with a final verdict's SerialOrder
	// yields a serial order of the entire history.
	Witness []model.NodeID
	// Boundary records, per front level, the state left behind: how many
	// nodes remain live and how many were dropped at that level.
	Boundary []LevelBoundary
}

// LevelBoundary is the per-level boundary conflict state of a fold.
type LevelBoundary struct {
	Level   int
	Live    int // nodes still in the level-l front after the fold
	Dropped int // nodes removed from the level-l front by the fold
}

// Checkpoints counts completed folds.
func (inc *Incremental) Checkpoints() int { return inc.checkpoints }

// LiveNodes returns the number of forest nodes currently accumulated —
// the engine's memory watermark gauge.
func (inc *Incremental) LiveNodes() int { return inc.sys.NumNodes() }

// Checkpoint folds the given committed roots — each with its entire
// subtree — out of the engine. The engine must not be degraded (only a
// certified-correct prefix may be folded), and every id must be a root
// of the accumulated system. After the call, later deltas must not
// reference any folded node: such a delta is rejected by validation.
// On error nothing is changed.
func (inc *Incremental) Checkpoint(roots []model.NodeID) (*CheckpointSummary, error) {
	if inc.failed {
		return nil, fmt.Errorf("front: cannot checkpoint a degraded engine (the history is not Comp-C)")
	}
	if len(roots) == 0 {
		return &CheckpointSummary{}, nil
	}
	seen := make(map[model.NodeID]struct{}, len(roots))
	for _, id := range roots {
		nd := inc.sys.Node(id)
		if nd == nil {
			return nil, fmt.Errorf("front: checkpoint of unknown root %q", id)
		}
		if nd.Parent != "" {
			return nil, fmt.Errorf("front: checkpoint target %q is not a root (parent %q)", id, nd.Parent)
		}
		if _, dup := seen[id]; dup {
			return nil, fmt.Errorf("front: checkpoint names root %q twice", id)
		}
		seen[id] = struct{}{}
	}

	sum := &CheckpointSummary{Roots: len(roots)}
	doomed := make(map[model.NodeID]struct{}, len(roots)*4)
	for id := range seen {
		doomed[id] = struct{}{}
		for _, d := range inc.sys.Descendants(id) {
			doomed[d] = struct{}{}
		}
	}
	sum.Nodes = len(doomed)

	if inc.eng != nil {
		sum.Witness = inc.foldWitness(seen)
		sum.Boundary = inc.foldBoundary(doomed)
	}

	inc.sys.RemoveTrees(roots)
	// Rebuild over the pruned system. The level assignment is untouched
	// (schedules persist through a fold), so the engine's skeleton is
	// still valid: reset it in place (keeping the interning map, row
	// tables and grown rows) and replay the live suffix — a fold on a
	// steady-state window then allocates almost nothing.
	if inc.eng != nil {
		if inc.eng.failed {
			inc.eng = newIncEngine(inc, inc.levels)
		} else {
			inc.eng.reset()
		}
		inc.eng.apply(SystemDelta(inc.sys))
		if inc.eng.failed {
			// Cannot happen: removing whole composite transactions from a
			// correct execution only removes constraints (monotonicity),
			// so the suffix stays correct. Poison the engine rather than
			// certify over broken state.
			inc.failed = true
			return nil, fmt.Errorf("front: checkpoint rebuild found the pruned suffix incorrect (engine bug)")
		}
	}
	inc.checkpoints++
	return sum, nil
}

// foldWitness extracts the folded prefix's serial witness: the final
// front's serial order restricted to the folded roots.
func (inc *Incremental) foldWitness(folded map[model.NodeID]struct{}) []model.NodeID {
	final := inc.eng.materializeFinal()
	serial, ok := final.SerialWitness()
	if !ok {
		return nil // unreachable for a non-degraded engine (CC sentinel)
	}
	out := make([]model.NodeID, 0, len(folded))
	for _, id := range serial {
		if _, is := folded[id]; is {
			out = append(out, id)
		}
	}
	return out
}

// foldBoundary snapshots the per-level boundary state of a fold: for
// every front level, how many nodes survive and how many are dropped.
func (inc *Incremental) foldBoundary(doomed map[model.NodeID]struct{}) []LevelBoundary {
	eng := inc.eng
	out := make([]LevelBoundary, 0, len(eng.lv))
	for l, st := range eng.lv {
		b := LevelBoundary{Level: l}
		st.nodes.Each(func(i int) {
			if _, dropped := doomed[eng.ids[i]]; dropped {
				b.Dropped++
			} else {
				b.Live++
			}
		})
		out = append(out, b)
	}
	return out
}
