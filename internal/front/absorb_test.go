package front_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"compositetx/internal/front"
	"compositetx/internal/model"
	"compositetx/internal/workload"
)

// encodeSys renders a system to its canonical byte encoding (sorted
// nodes, schedules and relation pairs), the equality the fast-path
// contract is stated in.
func encodeSys(t *testing.T, sys *model.System) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sys.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// TestAbsorbNodesMatchesAdmit replays commit-by-commit streams through
// two engines — one taking the AbsorbNodes fast path whenever a delta is
// nodes-only, one always running full Admit — and asserts the two stay
// byte-identical after every delta and return identical verdicts. This
// is the engine-level half of the certifier's fast-path soundness
// argument (the sched package property-tests the runtime half).
func TestAbsorbNodesMatchesAdmit(t *testing.T) {
	absorbed, admitted := 0, 0
	for _, cr := range []float64{0, 0.2, 0.6} {
		for seed := int64(1); seed <= 4; seed++ {
			sys := workload.Stack(workload.StackParams{
				Levels: 2, Roots: 4, Fanout: 2, ConflictRate: cr, Seed: seed,
			}).Sys
			fast := front.NewIncremental(front.IncrementalOptions{})
			oracle := front.NewIncremental(front.IncrementalOptions{})
			for i, d := range front.DecomposeByRoot(sys) {
				tag := fmt.Sprintf("cr%.1f/seed%d/delta%d", cr, seed, i)
				// Deltas are applied destructively to the engine's system, so
				// each engine gets its own copy.
				dCopy := *d
				var fastV *front.Verdict
				err := fast.AbsorbNodes(&dCopy)
				switch {
				case err == nil:
					absorbed++
				case errors.Is(err, front.ErrNotNodesOnly):
					v, aerr := fast.Admit(&dCopy)
					if aerr != nil {
						t.Fatalf("%s: fast Admit: %v", tag, aerr)
					}
					fastV = v
					admitted++
				default:
					t.Fatalf("%s: AbsorbNodes: %v", tag, err)
				}
				oracleV, aerr := oracle.Admit(d)
				if aerr != nil {
					t.Fatalf("%s: oracle Admit: %v", tag, aerr)
				}
				if (fastV == nil) != (oracleV == nil) {
					t.Fatalf("%s: verdicts diverged: fast=%v oracle=%v", tag, fastV, oracleV)
				}
				if fastV != nil && fastV.Reason != oracleV.Reason {
					t.Fatalf("%s: violation reasons diverged: fast=%q oracle=%q", tag, fastV.Reason, oracleV.Reason)
				}
				got, want := encodeSys(t, fast.System()), encodeSys(t, oracle.System())
				if !bytes.Equal(got, want) {
					t.Fatalf("%s: fast-path system diverged from always-admit oracle:\nfast:   %s\noracle: %s", tag, got, want)
				}
				if fast.LiveNodes() != oracle.LiveNodes() {
					t.Fatalf("%s: live nodes diverged: fast %d, oracle %d", tag, fast.LiveNodes(), oracle.LiveNodes())
				}
			}
		}
	}
	if absorbed == 0 || admitted == 0 {
		t.Fatalf("sweep must exercise both paths: %d absorbed, %d admitted", absorbed, admitted)
	}
}

// TestAbsorbNodesIneligibility pins the ErrNotNodesOnly sentinel cases:
// engine not yet admitted to, a delta carrying schedules or pairs, and a
// nodes-only delta introducing an invocation edge the accumulated IG has
// not seen. None of them may mutate the engine.
func TestAbsorbNodesIneligibility(t *testing.T) {
	inc := front.NewIncremental(front.IncrementalOptions{})
	nodesOnly := &front.Delta{Nodes: []front.DeltaNode{{ID: "t1", Sched: "S"}}}
	if err := inc.AbsorbNodes(nodesOnly); !errors.Is(err, front.ErrNotNodesOnly) {
		t.Fatalf("engine with no admission yet: got %v, want ErrNotNodesOnly", err)
	}

	seed := &front.Delta{
		Schedules: []model.ScheduleID{"S", "T"},
		Nodes: []front.DeltaNode{
			{ID: "t1", Sched: "S"},
			{ID: "t1.a", Parent: "t1", Sched: "T"},
		},
	}
	if v, err := inc.Admit(seed); err != nil || v != nil {
		t.Fatalf("seed admit: verdict=%v err=%v", v, err)
	}

	withSched := &front.Delta{
		Schedules: []model.ScheduleID{"U"},
		Nodes:     []front.DeltaNode{{ID: "t2", Sched: "U"}},
	}
	if err := inc.AbsorbNodes(withSched); !errors.Is(err, front.ErrNotNodesOnly) {
		t.Fatalf("delta with schedules: got %v, want ErrNotNodesOnly", err)
	}
	withPair := &front.Delta{
		Nodes:     []front.DeltaNode{{ID: "t2", Sched: "S"}, {ID: "t2.x", Parent: "t2"}},
		Conflicts: []front.DeltaPair{{Sched: "S", A: "t1.a", B: "t2.x"}},
	}
	if err := inc.AbsorbNodes(withPair); !errors.Is(err, front.ErrNotNodesOnly) {
		t.Fatalf("delta with pairs: got %v, want ErrNotNodesOnly", err)
	}
	// S invoking S is an edge the IG has not seen (only S→T so far).
	newEdge := &front.Delta{
		Nodes: []front.DeltaNode{
			{ID: "t3", Sched: "S"},
			{ID: "t3.a", Parent: "t3", Sched: "S"},
		},
	}
	if err := inc.AbsorbNodes(newEdge); !errors.Is(err, front.ErrNotNodesOnly) {
		t.Fatalf("delta with new invocation edge: got %v, want ErrNotNodesOnly", err)
	}
	if n := inc.LiveNodes(); n != 2 {
		t.Fatalf("rejected absorptions mutated the engine: %d live nodes, want 2", n)
	}

	// The eligible shape still works after the rejections, and a
	// structurally invalid delta surfaces the validation error, not the
	// sentinel.
	ok := &front.Delta{Nodes: []front.DeltaNode{
		{ID: "t4", Sched: "S"},
		{ID: "t4.a", Parent: "t4", Sched: "T"},
	}}
	if err := inc.AbsorbNodes(ok); err != nil {
		t.Fatalf("eligible delta: %v", err)
	}
	bad := &front.Delta{Nodes: []front.DeltaNode{{ID: "t4", Sched: "S"}}}
	if err := inc.AbsorbNodes(bad); err == nil || errors.Is(err, front.ErrNotNodesOnly) {
		t.Fatalf("re-declared node: got %v, want a validation error", err)
	}
}
