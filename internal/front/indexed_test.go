package front_test

import (
	"fmt"
	"reflect"
	"testing"

	"compositetx/internal/front"
	"compositetx/internal/model"
	"compositetx/internal/workload"
)

// assertVerdictsEqual fails unless the two front.Check outcomes are identical in
// every observable field, including failure diagnostics and (when kept)
// the full front sequence. It is the oracle of the indexed-engine tests:
// front.Check (interned-index path) must be indistinguishable from
// front.CheckReference (string-keyed path).
func assertVerdictsEqual(t *testing.T, tag string, gotV *front.Verdict, gotErr error, wantV *front.Verdict, wantErr error) {
	t.Helper()
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: err = %v, reference err = %v", tag, gotErr, wantErr)
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s: err = %q, reference err = %q", tag, gotErr, wantErr)
		}
		return
	}
	if gotV.Correct != wantV.Correct || gotV.Order != wantV.Order || gotV.FailedLevel != wantV.FailedLevel {
		t.Fatalf("%s: verdict (correct=%v order=%d failed=%d), reference (correct=%v order=%d failed=%d)",
			tag, gotV.Correct, gotV.Order, gotV.FailedLevel, wantV.Correct, wantV.Order, wantV.FailedLevel)
	}
	if gotV.Reason != wantV.Reason {
		t.Fatalf("%s: reason %q, reference %q", tag, gotV.Reason, wantV.Reason)
	}
	if !reflect.DeepEqual(gotV.SerialOrder, wantV.SerialOrder) {
		t.Fatalf("%s: serial order %v, reference %v", tag, gotV.SerialOrder, wantV.SerialOrder)
	}
	if len(gotV.Steps) != len(wantV.Steps) {
		t.Fatalf("%s: %d steps, reference %d", tag, len(gotV.Steps), len(wantV.Steps))
	}
	for i, st := range gotV.Steps {
		ref := wantV.Steps[i]
		if st.Level != ref.Level || st.Failure != ref.Failure || st.BadTransaction != ref.BadTransaction ||
			!reflect.DeepEqual(st.Reduced, ref.Reduced) || !reflect.DeepEqual(st.Cycle, ref.Cycle) {
			t.Fatalf("%s: step %d = %v, reference %v", tag, i, st, ref)
		}
	}
	if len(gotV.Fronts) != len(wantV.Fronts) {
		t.Fatalf("%s: %d fronts, reference %d", tag, len(gotV.Fronts), len(wantV.Fronts))
	}
	for i, fr := range gotV.Fronts {
		ref := wantV.Fronts[i]
		if fr.Level != ref.Level || !reflect.DeepEqual(fr.Nodes(), ref.Nodes()) {
			t.Fatalf("%s: front %d nodes %v, reference %v", tag, i, fr.Nodes(), ref.Nodes())
		}
		if !fr.Obs.Equal(ref.Obs) || !ref.Obs.Equal(fr.Obs) {
			t.Fatalf("%s: front %d observed order differs: %v vs %v", tag, i, fr.Obs.Pairs(), ref.Obs.Pairs())
		}
		if !reflect.DeepEqual(fr.Con.Pairs(), ref.Con.Pairs()) {
			t.Fatalf("%s: front %d conflicts differ: %v vs %v", tag, i, fr.Con.Pairs(), ref.Con.Pairs())
		}
		if !fr.WeakIn.Equal(ref.WeakIn) || !fr.StrongIn.Equal(ref.StrongIn) {
			t.Fatalf("%s: front %d input orders differ", tag, i)
		}
	}
}

// checkBothWays runs the indexed front.Check and the reference reduction on sys
// and asserts identical outcomes, with and without KeepFronts. It returns
// whether the execution was correct (for coverage accounting).
func checkBothWays(t *testing.T, tag string, sys *model.System) bool {
	t.Helper()
	for _, keep := range []bool{false, true} {
		opts := front.Options{KeepFronts: keep}
		gotV, gotErr := front.Check(sys, opts)
		wantV, wantErr := front.CheckReference(sys, opts)
		assertVerdictsEqual(t, fmt.Sprintf("%s/keep=%v", tag, keep), gotV, gotErr, wantV, wantErr)
	}
	v, err := front.Check(sys, front.Options{})
	return err == nil && v.Correct
}

// TestCheckMatchesReferenceStack sweeps random stack executions across
// depth, width, conflict density and strong-order density.
func TestCheckMatchesReferenceStack(t *testing.T) {
	correct, incorrect := 0, 0
	for _, levels := range []int{1, 2, 3} {
		for _, roots := range []int{1, 3} {
			for _, cr := range []float64{0, 0.3, 0.9} {
				for _, sr := range []float64{0, 0.4} {
					for seed := int64(1); seed <= 3; seed++ {
						exec := workload.Stack(workload.StackParams{
							Levels: levels, Roots: roots, Fanout: 2,
							ConflictRate: cr, StrongRate: sr, Seed: seed,
						})
						tag := fmt.Sprintf("stack/l%d/r%d/c%.1f/s%.1f/seed%d", levels, roots, cr, sr, seed)
						if checkBothWays(t, tag, exec.Sys) {
							correct++
						} else {
							incorrect++
						}
					}
				}
			}
		}
	}
	if correct == 0 || incorrect == 0 {
		t.Fatalf("sweep must cover both outcomes: %d correct, %d incorrect", correct, incorrect)
	}
}

// TestCheckMatchesReferenceFork sweeps random fork executions.
func TestCheckMatchesReferenceFork(t *testing.T) {
	for _, branches := range []int{1, 3} {
		for _, cr := range []float64{0.3, 0.8} {
			for seed := int64(1); seed <= 3; seed++ {
				exec := workload.Fork(workload.ForkParams{
					Branches: branches, Roots: 2, Fanout: 2, LeavesPerSub: 2,
					ConflictRate: cr, Seed: seed,
				})
				checkBothWays(t, fmt.Sprintf("fork/b%d/c%.1f/seed%d", branches, cr, seed), exec.Sys)
			}
		}
	}
}

// TestCheckMatchesReferenceJoin sweeps random join executions.
func TestCheckMatchesReferenceJoin(t *testing.T) {
	for _, tcr := range []float64{0.2, 0.6} {
		for seed := int64(1); seed <= 3; seed++ {
			exec := workload.Join(workload.JoinParams{
				Tops: 2, RootsPerTop: 2, Fanout: 2, LeavesPerSub: 2,
				ConflictRate: 0.3, TopConflictRate: tcr, Seed: seed,
			})
			checkBothWays(t, fmt.Sprintf("join/t%.1f/seed%d", tcr, seed), exec.Sys)
		}
	}
}

// TestCheckMatchesReferenceGeneral sweeps general configurations: mixed
// leaf and transaction operations exercise the rule-1 lifting for new
// nodes and fronts spanning several levels.
func TestCheckMatchesReferenceGeneral(t *testing.T) {
	for _, depth := range []int{2, 3} {
		for _, cr := range []float64{0.3, 0.7} {
			for seed := int64(1); seed <= 5; seed++ {
				exec := workload.General(workload.GeneralParams{
					Depth: depth, SchedsPerLevel: 2, Roots: 2, Fanout: 2,
					LeafRate: 0.4, ConflictRate: cr, Seed: seed,
				})
				checkBothWays(t, fmt.Sprintf("general/d%d/c%.1f/seed%d", depth, cr, seed), exec.Sys)
			}
		}
	}
}

// TestCheckMatchesReferenceFigures pins the paper's two worked examples.
func TestCheckMatchesReferenceFigures(t *testing.T) {
	checkBothWays(t, "figure3", front.Figure3System())
	checkBothWays(t, "figure4", front.Figure4System())
}

// TestCheckBatchMatchesCheck verifies that the pooled batch checker
// returns exactly the sequential per-system verdicts, in input order.
func TestCheckBatchMatchesCheck(t *testing.T) {
	var systems []*model.System
	for seed := int64(1); seed <= 8; seed++ {
		systems = append(systems,
			workload.Stack(workload.StackParams{Levels: 3, Roots: 2, Fanout: 2, ConflictRate: 0.3, Seed: seed}).Sys,
			workload.Fork(workload.ForkParams{Branches: 2, Roots: 2, Fanout: 2, LeavesPerSub: 2, ConflictRate: 0.5, Seed: seed}).Sys,
		)
	}
	for _, parallelism := range []int{0, 1, 4} {
		results := front.CheckBatch(systems, parallelism, front.Options{})
		if len(results) != len(systems) {
			t.Fatalf("parallelism %d: %d results for %d systems", parallelism, len(results), len(systems))
		}
		for i, sys := range systems {
			wantV, wantErr := front.Check(sys, front.Options{})
			assertVerdictsEqual(t, fmt.Sprintf("batch/p%d/sys%d", parallelism, i),
				results[i].Verdict, results[i].Err, wantV, wantErr)
		}
	}
}

// TestCheckBatchSharedSystem checks many aliases of one *System
// concurrently: the sequential pre-interning must make the fan-out phase
// read-only (the race detector guards this via make verify).
func TestCheckBatchSharedSystem(t *testing.T) {
	sys := workload.Stack(workload.StackParams{Levels: 3, Roots: 4, Fanout: 2, ConflictRate: 0.2, Seed: 7}).Sys
	systems := make([]*model.System, 16)
	for i := range systems {
		systems[i] = sys
	}
	results := front.CheckBatch(systems, 8, front.Options{})
	want, wantErr := front.Check(sys, front.Options{})
	for i, r := range results {
		assertVerdictsEqual(t, fmt.Sprintf("shared/%d", i), r.Verdict, r.Err, want, wantErr)
	}
}

// TestCheckBatchEdgeCases covers empty input and nil entries.
func TestCheckBatchEdgeCases(t *testing.T) {
	if got := front.CheckBatch(nil, 4, front.Options{}); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
	sys := workload.Stack(workload.StackParams{Levels: 2, Roots: 2, Fanout: 2, ConflictRate: 0.1, Seed: 1}).Sys
	results := front.CheckBatch([]*model.System{nil, sys}, 2, front.Options{})
	if results[0].Err == nil || results[0].Verdict != nil {
		t.Fatalf("nil system: want error result, got %+v", results[0])
	}
	if results[1].Err != nil || results[1].Verdict == nil {
		t.Fatalf("real system after nil: got %+v", results[1])
	}
}

// BenchmarkStepIndexed measures one full indexed reduction (all levels) on
// a mid-size stack, isolating the engine from verdict assembly.
func BenchmarkStepIndexed(b *testing.B) {
	sys := workload.Stack(workload.StackParams{Levels: 3, Roots: 16, Fanout: 2, ConflictRate: 0.05, Seed: 1}).Sys
	sys.Intern()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := front.RunIndexedReduction(sys); err != nil {
			b.Fatal(err)
		}
	}
}
