package front

import "compositetx/internal/model"

// Hook for the equivalence tests in indexed_test.go, which live in the
// external package front_test because they generate inputs with
// internal/workload (which imports this package via internal/criteria).

// RunIndexedReduction drives the interned-index engine alone — sysIndex
// build, level 0, every step — without verdict assembly, for benchmarks.
// It reports whether the reduction reached the level-N front.
func RunIndexedReduction(sys *model.System) (bool, error) {
	levels, err := sys.Levels()
	if err != nil {
		return false, err
	}
	si := buildSysIndex(sys, levels)
	f := si.level0()
	if si.ccCycle(f) != nil {
		return false, nil
	}
	for f.level < si.order {
		nf, _ := si.step(f)
		if nf == nil {
			return false, nil
		}
		f = nf
	}
	return true, nil
}
