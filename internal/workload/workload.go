// Package workload generates random composite-system executions for tests,
// property checks and experiments: stack, fork, join and general DAG
// configurations, with controllable conflict rate, fanout and strong-order
// rate.
//
// Generation works top-down. Every schedule receives its weak (and strong)
// input orders from its callers' outputs (Definition 4 item 7), then picks
// a random linear extension of its operations that respects the forced
// directions (Definition 3 item 1a/b for conflicting operations of
// input-ordered transactions, item 3 for strongly ordered ones, item 2 for
// intra-transaction orders). The recorded weak output order is the minimal
// commitment: conflicting pairs plus required intra-transaction pairs, in
// execution order. Executions generated this way always satisfy the model
// axioms (Validate passes) but are otherwise unconstrained — both correct
// and incorrect executions arise, which is what acceptance-rate experiments
// and the Theorem 2–4 equivalence tests need.
package workload

import (
	"fmt"
	"math/rand"

	"compositetx/internal/criteria"
	"compositetx/internal/model"
	"compositetx/internal/order"
)

// Execution bundles a generated system with the temporal operation
// sequence of every schedule (needed by the OPSR baseline).
type Execution struct {
	Sys  *model.System
	Seqs criteria.Sequences
}

// StackParams configures Stack.
type StackParams struct {
	Levels       int     // number of schedules in the chain (the order N)
	Roots        int     // transactions of the top schedule
	Fanout       int     // operations per transaction
	ConflictRate float64 // probability that a cross-transaction operation pair conflicts
	StrongRate   float64 // probability that a root pair is strongly ordered
	Seed         int64
}

// Stack generates a random stack execution (Definition 21): schedules
// L<Levels> .. L1, where the operations of each schedule are exactly the
// transactions of the one below and the bottom schedule's operations are
// leaves.
func Stack(p StackParams) *Execution {
	if p.Levels < 1 || p.Roots < 1 || p.Fanout < 1 {
		panic("workload: StackParams must be positive")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	sys := model.NewSystem()
	scheds := make([]model.ScheduleID, p.Levels) // index 0 = bottom (level 1)
	for l := p.Levels; l >= 1; l-- {
		id := model.ScheduleID(fmt.Sprintf("L%d", l))
		sys.AddSchedule(id)
		scheds[l-1] = id
	}

	// Build the forest level by level.
	cur := make([]model.NodeID, 0, p.Roots)
	for r := 0; r < p.Roots; r++ {
		id := model.NodeID(fmt.Sprintf("T%d", r+1))
		sys.AddRoot(id, scheds[p.Levels-1])
		cur = append(cur, id)
	}
	for l := p.Levels; l >= 1; l-- {
		var next []model.NodeID
		for _, t := range cur {
			for k := 0; k < p.Fanout; k++ {
				id := model.NodeID(fmt.Sprintf("%s.%d", t, k+1))
				if l > 1 {
					sys.AddTx(id, t, scheds[l-2])
					next = append(next, id)
				} else {
					sys.AddLeaf(id, t)
				}
			}
		}
		cur = next
	}

	g := &generator{sys: sys, rng: rng, conflictRate: p.ConflictRate}
	g.strongTopPairs(scheds[p.Levels-1], p.StrongRate)
	g.run()
	return &Execution{Sys: sys, Seqs: g.seqs}
}

// ForkParams configures Fork.
type ForkParams struct {
	Branches     int // number of level-1 branch schedules
	Roots        int // transactions of the fork schedule
	Fanout       int // subtransactions per root
	LeavesPerSub int // leaves per subtransaction
	ConflictRate float64
	StrongRate   float64
	Seed         int64
}

// Fork generates a random fork execution (Definition 23): one top schedule
// SF whose operations are distributed over independent branch schedules;
// operations sent to different branches never conflict.
func Fork(p ForkParams) *Execution {
	if p.Branches < 1 || p.Roots < 1 || p.Fanout < 1 || p.LeavesPerSub < 1 {
		panic("workload: ForkParams must be positive")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	sys := model.NewSystem()
	sys.AddSchedule("SF")
	branches := make([]model.ScheduleID, p.Branches)
	for i := range branches {
		branches[i] = model.ScheduleID(fmt.Sprintf("B%d", i+1))
		sys.AddSchedule(branches[i])
	}
	for r := 0; r < p.Roots; r++ {
		root := model.NodeID(fmt.Sprintf("T%d", r+1))
		sys.AddRoot(root, "SF")
		for k := 0; k < p.Fanout; k++ {
			sub := model.NodeID(fmt.Sprintf("%s.%d", root, k+1))
			branch := branches[rng.Intn(len(branches))]
			sys.AddTx(sub, root, branch)
			for j := 0; j < p.LeavesPerSub; j++ {
				sys.AddLeaf(model.NodeID(fmt.Sprintf("%s.%d", sub, j+1)), sub)
			}
		}
	}
	g := &generator{sys: sys, rng: rng, conflictRate: p.ConflictRate,
		// Definition 23 item 3: cross-branch operations commute.
		conflictOK: func(a, b model.NodeID) bool {
			na, nb := sys.Node(a), sys.Node(b)
			if na.IsLeaf() || nb.IsLeaf() {
				return true
			}
			return na.Sched == nb.Sched
		},
	}
	g.strongTopPairs("SF", p.StrongRate)
	g.run()
	return &Execution{Sys: sys, Seqs: g.seqs}
}

// JoinParams configures Join.
type JoinParams struct {
	Tops            int // number of level-2 top schedules
	RootsPerTop     int
	Fanout          int // subtransactions per root, all funnelled into SJ
	LeavesPerSub    int
	ConflictRate    float64
	TopConflictRate float64 // conflict rate among a top schedule's operations
	Seed            int64
}

// Join generates a random join execution (Definition 25): independent top
// schedules whose transactions' operations are all transactions of one
// shared bottom schedule SJ.
func Join(p JoinParams) *Execution {
	if p.Tops < 2 || p.RootsPerTop < 1 || p.Fanout < 1 || p.LeavesPerSub < 1 {
		panic("workload: JoinParams must have at least two tops and positive sizes")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	sys := model.NewSystem()
	sys.AddSchedule("SJ")
	tops := make([]model.ScheduleID, p.Tops)
	for i := range tops {
		tops[i] = model.ScheduleID(fmt.Sprintf("U%d", i+1))
		sys.AddSchedule(tops[i])
	}
	for i, top := range tops {
		for r := 0; r < p.RootsPerTop; r++ {
			root := model.NodeID(fmt.Sprintf("T%d_%d", i+1, r+1))
			sys.AddRoot(root, top)
			for k := 0; k < p.Fanout; k++ {
				sub := model.NodeID(fmt.Sprintf("%s.%d", root, k+1))
				sys.AddTx(sub, root, "SJ")
				for j := 0; j < p.LeavesPerSub; j++ {
					sys.AddLeaf(model.NodeID(fmt.Sprintf("%s.%d", sub, j+1)), sub)
				}
			}
		}
	}
	g := &generator{sys: sys, rng: rng, conflictRate: p.ConflictRate,
		rateFor: func(sched model.ScheduleID) float64 {
			if sched == "SJ" {
				return p.ConflictRate
			}
			return p.TopConflictRate
		},
	}
	g.run()
	return &Execution{Sys: sys, Seqs: g.seqs}
}

// GeneralParams configures General.
type GeneralParams struct {
	Depth          int // nominal schedule levels
	SchedsPerLevel int
	Roots          int
	Fanout         int
	LeafRate       float64 // probability a child operation is a leaf
	ConflictRate   float64
	StrongRate     float64
	Seed           int64
}

// General generates a random general configuration: schedules arranged in
// nominal levels with transactions descending into arbitrary lower-level
// schedules, mixing leaf and transaction operations (the computational
// forests of Figure 1).
func General(p GeneralParams) *Execution {
	if p.Depth < 1 || p.SchedsPerLevel < 1 || p.Roots < 1 || p.Fanout < 1 {
		panic("workload: GeneralParams must be positive")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	sys := model.NewSystem()
	byLevel := make([][]model.ScheduleID, p.Depth+1) // 1-based
	for l := p.Depth; l >= 1; l-- {
		for k := 0; k < p.SchedsPerLevel; k++ {
			id := model.ScheduleID(fmt.Sprintf("S%d_%d", l, k+1))
			sys.AddSchedule(id)
			byLevel[l] = append(byLevel[l], id)
		}
	}

	// Roots live at the top nominal level; each transaction's children are
	// leaves or transactions of schedules at strictly lower nominal levels.
	type pending struct {
		id    model.NodeID
		level int
	}
	var queue []pending
	tops := byLevel[p.Depth]
	for r := 0; r < p.Roots; r++ {
		id := model.NodeID(fmt.Sprintf("T%d", r+1))
		sys.AddRoot(id, tops[rng.Intn(len(tops))])
		queue = append(queue, pending{id, p.Depth})
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for k := 0; k < p.Fanout; k++ {
			id := model.NodeID(fmt.Sprintf("%s.%d", cur.id, k+1))
			if cur.level == 1 || rng.Float64() < p.LeafRate {
				sys.AddLeaf(id, cur.id)
				continue
			}
			childLevel := 1 + rng.Intn(cur.level-1)
			sched := byLevel[childLevel][rng.Intn(len(byLevel[childLevel]))]
			sys.AddTx(id, cur.id, sched)
			queue = append(queue, pending{id, childLevel})
		}
	}

	g := &generator{sys: sys, rng: rng, conflictRate: p.ConflictRate}
	for _, top := range tops {
		g.strongTopPairs(top, p.StrongRate)
	}
	g.run()
	return &Execution{Sys: sys, Seqs: g.seqs}
}

// generator fills in conflicts and orders for a structurally complete
// system, caller-before-callee.
type generator struct {
	sys          *model.System
	rng          *rand.Rand
	conflictRate float64
	rateFor      func(model.ScheduleID) float64 // optional per-schedule rate
	conflictOK   func(a, b model.NodeID) bool   // optional conflict filter
	seqs         criteria.Sequences
}

// strongTopPairs imposes strong input orders between some pairs of a top
// schedule's transactions (simulating callers that demand sequential
// execution). Pairs follow a random permutation, so the strong input order
// is acyclic by construction.
func (g *generator) strongTopPairs(sched model.ScheduleID, rate float64) {
	if rate <= 0 {
		return
	}
	sc := g.sys.Schedule(sched)
	txs := g.sys.Transactions(sched)
	perm := g.rng.Perm(len(txs))
	for i := 0; i < len(perm); i++ {
		for j := i + 1; j < len(perm); j++ {
			if g.rng.Float64() < rate {
				sc.StrongIn.Add(txs[perm[i]], txs[perm[j]])
				sc.WeakIn.Add(txs[perm[i]], txs[perm[j]])
			}
		}
	}
}

// run processes every schedule caller-before-callee, in invocation-graph
// topological order.
func (g *generator) run() {
	g.seqs = make(criteria.Sequences)
	sorted, ok := g.sys.InvocationGraph().TopoSort()
	if !ok {
		panic("workload: generated a recursive configuration")
	}
	for _, sched := range sorted {
		g.fill(g.sys.Schedule(sched))
	}
}

// fill generates conflicts, a temporal sequence and output orders for one
// schedule, then propagates orders to callee schedules (Definition 4.7).
func (g *generator) fill(sc *model.Schedule) {
	sys := g.sys
	ops := sys.Ops(sc.ID)

	rate := g.conflictRate
	if g.rateFor != nil {
		rate = g.rateFor(sc.ID)
	}
	for i, a := range ops {
		for _, b := range ops[i+1:] {
			if sys.Parent(a) == sys.Parent(b) {
				continue
			}
			if g.conflictOK != nil && !g.conflictOK(a, b) {
				continue
			}
			if g.rng.Float64() < rate {
				sc.AddConflict(a, b)
			}
		}
	}

	weakIn := sc.WeakIn.TransitiveClosure()
	strongIn := sc.StrongIn.TransitiveClosure()

	// Forced temporal edges.
	forced := order.New[model.NodeID]()
	for _, op := range ops {
		forced.AddNode(op)
	}
	sc.Conflicts.Each(func(a, b model.NodeID) {
		ta, tb := sys.Parent(a), sys.Parent(b)
		if weakIn.Has(ta, tb) {
			forced.Add(a, b) // Definition 3 item 1a
		}
		if weakIn.Has(tb, ta) {
			forced.Add(b, a) // item 1b
		}
	})
	strongIn.Each(func(ta, tb model.NodeID) {
		for _, a := range sys.Children(ta) {
			for _, b := range sys.Children(tb) {
				forced.Add(a, b) // item 3
				sc.StrongOut.Add(a, b)
				sc.WeakOut.Add(a, b)
			}
		}
	})
	for _, t := range sys.Transactions(sc.ID) {
		n := sys.Node(t)
		if n.WeakIntra != nil {
			n.WeakIntra.Each(func(a, b model.NodeID) {
				forced.Add(a, b) // item 2
				sc.WeakOut.Add(a, b)
			})
		}
	}

	seq := g.randomLinearExtension(forced)
	g.seqs[sc.ID] = seq

	pos := make(map[model.NodeID]int, len(seq))
	for i, op := range seq {
		pos[op] = i
	}
	sc.Conflicts.Each(func(a, b model.NodeID) {
		if pos[a] < pos[b] {
			sc.WeakOut.Add(a, b)
		} else {
			sc.WeakOut.Add(b, a)
		}
	})

	// Definition 4 item 7: pass output orders down as input orders. The
	// model's orders are transitively closed (Definition 1), so propagate
	// from the closures — closure can relate two operations of one callee
	// through an operation of another.
	weakOut := sc.WeakOut.TransitiveClosure()
	strongOut := sc.StrongOut.TransitiveClosure()
	weakOut.Each(func(a, b model.NodeID) {
		na, nb := sys.Node(a), sys.Node(b)
		if na.IsLeaf() || nb.IsLeaf() || na.Sched != nb.Sched {
			return
		}
		callee := sys.Schedule(na.Sched)
		callee.WeakIn.Add(a, b)
		if strongOut.Has(a, b) {
			callee.StrongIn.Add(a, b)
		}
	})
}

// randomLinearExtension returns a uniformly random-ish topological order of
// the forced graph (randomized Kahn's algorithm).
func (g *generator) randomLinearExtension(forced *order.Relation[model.NodeID]) []model.NodeID {
	nodes := forced.Nodes()
	indeg := make(map[model.NodeID]int, len(nodes))
	for _, n := range nodes {
		indeg[n] = 0
	}
	forced.Each(func(a, b model.NodeID) { indeg[b]++ })
	var ready []model.NodeID
	for _, n := range nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	seq := make([]model.NodeID, 0, len(nodes))
	for len(ready) > 0 {
		i := g.rng.Intn(len(ready))
		n := ready[i]
		ready[i] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		seq = append(seq, n)
		for _, m := range forced.Successors(n) {
			indeg[m]--
			if indeg[m] == 0 {
				ready = append(ready, m)
			}
		}
	}
	if len(seq) != len(nodes) {
		panic("workload: forced edges are cyclic")
	}
	return seq
}
