package workload

import (
	"reflect"
	"testing"

	"compositetx/internal/model"
)

func TestStackShapeAndValidity(t *testing.T) {
	exec := Stack(StackParams{Levels: 3, Roots: 2, Fanout: 2, ConflictRate: 0.3, Seed: 7})
	if err := exec.Sys.Validate(); err != nil {
		t.Fatalf("stack execution must validate: %v", err)
	}
	n, err := exec.Sys.Order()
	if err != nil || n != 3 {
		t.Fatalf("Order = %d, %v; want 3", n, err)
	}
	if got := len(exec.Sys.Roots()); got != 2 {
		t.Fatalf("roots = %d, want 2", got)
	}
	// 2 roots * 2 * 2 * 2 = 16 leaves.
	if got := len(exec.Sys.Leaves()); got != 16 {
		t.Fatalf("leaves = %d, want 16", got)
	}
	// Every schedule has a recorded temporal sequence covering its ops.
	for _, sc := range exec.Sys.Schedules() {
		seq := exec.Seqs[sc.ID]
		if len(seq) != len(exec.Sys.Ops(sc.ID)) {
			t.Fatalf("schedule %s: sequence has %d ops, want %d", sc.ID, len(seq), len(exec.Sys.Ops(sc.ID)))
		}
	}
}

func TestStackDeterministic(t *testing.T) {
	p := StackParams{Levels: 3, Roots: 2, Fanout: 2, ConflictRate: 0.4, StrongRate: 0.2, Seed: 42}
	a, b := Stack(p), Stack(p)
	da, err := a.Sys.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Sys.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Fatal("same seed must generate identical systems")
	}
	if !reflect.DeepEqual(a.Seqs, b.Seqs) {
		t.Fatal("same seed must generate identical sequences")
	}
}

func TestStackSeedsDiffer(t *testing.T) {
	p := StackParams{Levels: 2, Roots: 3, Fanout: 2, ConflictRate: 0.5}
	p2 := p
	p2.Seed = 1
	a, b := Stack(p), Stack(p2)
	da, _ := a.Sys.MarshalJSON()
	db, _ := b.Sys.MarshalJSON()
	if string(da) == string(db) {
		t.Fatal("different seeds should generate different executions (overwhelmingly likely)")
	}
}

func TestForkShapeAndValidity(t *testing.T) {
	exec := Fork(ForkParams{Branches: 3, Roots: 3, Fanout: 2, LeavesPerSub: 2, ConflictRate: 0.3, Seed: 11})
	if err := exec.Sys.Validate(); err != nil {
		t.Fatalf("fork execution must validate: %v", err)
	}
	// No cross-branch conflicts at the fork schedule (Def 23 item 3).
	sf := exec.Sys.Schedule("SF")
	sf.Conflicts.Each(func(a, b model.NodeID) {
		if exec.Sys.Node(a).Sched != exec.Sys.Node(b).Sched {
			t.Errorf("fork schedule declares a cross-branch conflict (%s,%s)", a, b)
		}
	})
}

func TestJoinShapeAndValidity(t *testing.T) {
	exec := Join(JoinParams{Tops: 3, RootsPerTop: 2, Fanout: 2, LeavesPerSub: 2,
		ConflictRate: 0.3, TopConflictRate: 0.2, Seed: 13})
	if err := exec.Sys.Validate(); err != nil {
		t.Fatalf("join execution must validate: %v", err)
	}
	// Every non-bottom schedule's op is a transaction of SJ.
	for _, sc := range exec.Sys.Schedules() {
		if sc.ID == "SJ" {
			continue
		}
		for _, op := range exec.Sys.Ops(sc.ID) {
			if exec.Sys.Node(op).Sched != "SJ" {
				t.Fatalf("op %s of %s is not a transaction of SJ", op, sc.ID)
			}
		}
	}
}

func TestGeneralValidityAcrossSeeds(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		exec := General(GeneralParams{
			Depth: 3, SchedsPerLevel: 2, Roots: 3, Fanout: 3,
			LeafRate: 0.4, ConflictRate: 0.5, StrongRate: 0.1, Seed: seed,
		})
		if err := exec.Sys.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestSequencesRespectWeakOut(t *testing.T) {
	// The recorded temporal sequence must be consistent with the recorded
	// weak output order (the weak output order is derived from it).
	exec := Stack(StackParams{Levels: 3, Roots: 3, Fanout: 2, ConflictRate: 0.6, StrongRate: 0.3, Seed: 3})
	for _, sc := range exec.Sys.Schedules() {
		pos := map[model.NodeID]int{}
		for i, op := range exec.Seqs[sc.ID] {
			pos[op] = i
		}
		sc.WeakOut.Each(func(a, b model.NodeID) {
			if pos[a] >= pos[b] {
				t.Errorf("schedule %s: weak output %s≺%s contradicts sequence", sc.ID, a, b)
			}
		})
	}
}

func TestStrongRateProducesStrongOrders(t *testing.T) {
	exec := Stack(StackParams{Levels: 2, Roots: 4, Fanout: 2, ConflictRate: 0.2, StrongRate: 0.9, Seed: 5})
	total := 0
	for _, sc := range exec.Sys.Schedules() {
		total += sc.StrongIn.Len()
	}
	if total == 0 {
		t.Fatal("StrongRate 0.9 should produce strong input orders")
	}
}

func TestBadParamsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"stack":   func() { Stack(StackParams{}) },
		"fork":    func() { Fork(ForkParams{}) },
		"join":    func() { Join(JoinParams{Tops: 1, RootsPerTop: 1, Fanout: 1, LeavesPerSub: 1}) },
		"general": func() { General(GeneralParams{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on zero params", name)
				}
			}()
			fn()
		}()
	}
}
