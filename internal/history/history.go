// Package history implements classical flat transaction histories —
// read/write operations over named items, serialization graphs, conflict
// serializability (CSR) and a brute-force view-serializability oracle.
//
// It serves two purposes in the reproduction: it is the single-scheduler
// baseline the paper's model generalizes (an order-1 composite system is
// exactly a flat history, which TestFlatCompCEqualsCSR verifies), and it is
// the "no semantic knowledge" comparison point for the commutativity
// experiments: a flat scheduler must treat every read/write overlap as a
// conflict, while a composite system's higher schedules can declare
// commutativity.
package history

import (
	"fmt"
	"sort"

	"compositetx/internal/model"
	"compositetx/internal/order"
)

// TxID identifies a flat transaction.
type TxID string

// Kind is the operation kind.
type Kind int

const (
	// Read reads an item; reads of the same item commute.
	Read Kind = iota
	// Write writes an item; conflicts with reads and writes of the item.
	Write
	// Increment adds a delta to a numeric item; increments of the same
	// item commute with each other but conflict with reads and writes.
	// Flat CSR schedulers typically implement increments as read-modify-
	// write and lose that commutativity; Commutes keeps it, which is the
	// semantic-knowledge lever the composite experiments measure.
	Increment
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "r"
	case Write:
		return "w"
	case Increment:
		return "i"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Op is one operation of a history.
type Op struct {
	Tx   TxID
	Kind Kind
	Item string
}

func (o Op) String() string { return fmt.Sprintf("%s%s(%s)", o.Kind, o.Tx, o.Item) }

// Commutes reports whether two operations commute under full semantic
// knowledge: different items always commute; reads commute with reads;
// increments commute with increments.
func Commutes(a, b Op) bool {
	if a.Item != b.Item {
		return true
	}
	if a.Kind == Read && b.Kind == Read {
		return true
	}
	if a.Kind == Increment && b.Kind == Increment {
		return true
	}
	return false
}

// ConflictsRW reports the classical read/write conflict relation, with
// increments treated as writes (read-modify-write): this is what a flat
// scheduler without semantic knowledge must assume.
func ConflictsRW(a, b Op) bool {
	if a.Item != b.Item {
		return false
	}
	ka, kb := a.Kind, b.Kind
	if ka == Increment {
		ka = Write
	}
	if kb == Increment {
		kb = Write
	}
	return ka == Write || kb == Write
}

// History is a totally ordered sequence of operations (a flat schedule).
type History struct {
	Ops []Op
}

// Transactions returns the distinct transaction IDs in first-occurrence
// order.
func (h *History) Transactions() []TxID {
	seen := map[TxID]bool{}
	var out []TxID
	for _, o := range h.Ops {
		if !seen[o.Tx] {
			seen[o.Tx] = true
			out = append(out, o.Tx)
		}
	}
	return out
}

// SerializationGraph builds the conflict-serialization graph under the
// given conflict predicate: an edge t -> t' whenever an operation of t
// conflicts with a later operation of t'.
func (h *History) SerializationGraph(conflicts func(a, b Op) bool) *order.Relation[TxID] {
	g := order.New[TxID]()
	for _, t := range h.Transactions() {
		g.AddNode(t)
	}
	for i, a := range h.Ops {
		for _, b := range h.Ops[i+1:] {
			if a.Tx != b.Tx && conflicts(a, b) {
				g.Add(a.Tx, b.Tx)
			}
		}
	}
	return g
}

// IsCSR reports conflict serializability under the classical read/write
// conflict relation.
func (h *History) IsCSR() bool {
	return h.SerializationGraph(ConflictsRW).IsAcyclic()
}

// IsSemanticSR reports conflict serializability under the full semantic
// commutativity relation (increments commute).
func (h *History) IsSemanticSR() bool {
	return h.SerializationGraph(func(a, b Op) bool { return !Commutes(a, b) }).IsAcyclic()
}

// SerialWitness returns a serialization order of the transactions, or
// ok=false if the history is not serializable under the predicate.
func (h *History) SerialWitness(conflicts func(a, b Op) bool) ([]TxID, bool) {
	return h.SerializationGraph(conflicts).TopoSort()
}

// String renders the history in the usual compact notation.
func (h *History) String() string {
	out := ""
	for i, o := range h.Ops {
		if i > 0 {
			out += " "
		}
		out += o.String()
	}
	return out
}

// ToSystem converts the flat history into an order-1 composite system: one
// schedule, one root transaction per flat transaction, one leaf per
// operation, with the schedule's conflict predicate and weak output order
// derived from the history under the given conflict relation. The paper's
// Comp-C on this system coincides with conflict serializability under the
// same relation.
func (h *History) ToSystem(conflicts func(a, b Op) bool) *model.System {
	sys := model.NewSystem()
	sc := sys.AddSchedule("S")
	for _, t := range h.Transactions() {
		sys.AddRoot(model.NodeID(t), "S")
	}
	ids := make([]model.NodeID, len(h.Ops))
	for i, o := range h.Ops {
		ids[i] = model.NodeID(fmt.Sprintf("%s#%d:%s%s", o.Tx, i, o.Kind, o.Item))
		sys.AddLeaf(ids[i], model.NodeID(o.Tx))
	}
	for i, a := range h.Ops {
		for j := i + 1; j < len(h.Ops); j++ {
			b := h.Ops[j]
			if a.Tx != b.Tx && conflicts(a, b) {
				sc.AddConflict(ids[i], ids[j])
				sc.WeakOut.Add(ids[i], ids[j])
			}
		}
	}
	return sys
}

// readsFrom computes, for every read (and increment, which reads), the
// writer transaction it observes ("" for the initial state), plus the
// final writer per item — the view of the history.
func (h *History) view() (reads []string, finals map[string]TxID) {
	lastWriter := map[string]TxID{}
	for _, o := range h.Ops {
		switch o.Kind {
		case Read:
			reads = append(reads, fmt.Sprintf("%s<-%s@%s", o.Tx, lastWriter[o.Item], o.Item))
		case Write, Increment:
			if o.Kind == Increment {
				reads = append(reads, fmt.Sprintf("%s<-%s@%s", o.Tx, lastWriter[o.Item], o.Item))
			}
			lastWriter[o.Item] = o.Tx
		}
	}
	finals = lastWriter
	return reads, finals
}

// IsVSR reports view serializability by brute force: some permutation of
// the transactions, executed serially, has the same reads-from relation
// and final writes. Exponential in the number of transactions; intended as
// a test oracle for small histories (≤ 8 transactions).
func (h *History) IsVSR() bool {
	reads, finals := h.view()
	txs := h.Transactions()
	if len(txs) > 8 {
		panic("history: IsVSR is a brute-force oracle; use ≤ 8 transactions")
	}
	byTx := map[TxID][]Op{}
	for _, o := range h.Ops {
		byTx[o.Tx] = append(byTx[o.Tx], o)
	}
	sortedReads := append([]string(nil), reads...)
	sort.Strings(sortedReads)

	var try func(rest []TxID, acc []Op) bool
	try = func(rest []TxID, acc []Op) bool {
		if len(rest) == 0 {
			serial := History{Ops: acc}
			sReads, sFinals := serial.view()
			sort.Strings(sReads)
			if len(sReads) != len(sortedReads) {
				return false
			}
			for i := range sReads {
				if sReads[i] != sortedReads[i] {
					return false
				}
			}
			if len(sFinals) != len(finals) {
				return false
			}
			for item, w := range finals {
				if sFinals[item] != w {
					return false
				}
			}
			return true
		}
		for i := range rest {
			next := append([]TxID(nil), rest[:i]...)
			next = append(next, rest[i+1:]...)
			cand := append(append([]Op(nil), acc...), byTx[rest[i]]...)
			if try(next, cand) {
				return true
			}
		}
		return false
	}
	return try(txs, nil)
}
