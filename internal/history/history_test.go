package history

import (
	"strings"
	"testing"
)

// parse builds a history from compact notation: "r1(x) w2(x) i1(y)".
func parse(t *testing.T, s string) *History {
	t.Helper()
	h := &History{}
	for _, tok := range strings.Fields(s) {
		if len(tok) < 4 {
			t.Fatalf("bad token %q", tok)
		}
		var kind Kind
		switch tok[0] {
		case 'r':
			kind = Read
		case 'w':
			kind = Write
		case 'i':
			kind = Increment
		default:
			t.Fatalf("bad kind in %q", tok)
		}
		open := strings.IndexByte(tok, '(')
		h.Ops = append(h.Ops, Op{
			Tx:   TxID("t" + tok[1:open]),
			Kind: kind,
			Item: strings.TrimSuffix(tok[open+1:], ")"),
		})
	}
	return h
}

func TestCommutes(t *testing.T) {
	tests := []struct {
		a, b Op
		want bool
	}{
		{Op{"t1", Read, "x"}, Op{"t2", Read, "x"}, true},
		{Op{"t1", Read, "x"}, Op{"t2", Write, "x"}, false},
		{Op{"t1", Write, "x"}, Op{"t2", Write, "x"}, false},
		{Op{"t1", Write, "x"}, Op{"t2", Write, "y"}, true},
		{Op{"t1", Increment, "x"}, Op{"t2", Increment, "x"}, true},
		{Op{"t1", Increment, "x"}, Op{"t2", Read, "x"}, false},
		{Op{"t1", Increment, "x"}, Op{"t2", Write, "x"}, false},
	}
	for _, tc := range tests {
		if got := Commutes(tc.a, tc.b); got != tc.want {
			t.Errorf("Commutes(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := Commutes(tc.b, tc.a); got != tc.want {
			t.Errorf("Commutes must be symmetric for (%v, %v)", tc.a, tc.b)
		}
	}
}

func TestConflictsRWTreatsIncrementAsWrite(t *testing.T) {
	a := Op{"t1", Increment, "x"}
	b := Op{"t2", Increment, "x"}
	if !ConflictsRW(a, b) {
		t.Fatal("flat scheduler must treat increment/increment as conflicting")
	}
	if Commutes(a, b) != true {
		t.Fatal("semantic relation must let increments commute")
	}
}

func TestIsCSR(t *testing.T) {
	tests := []struct {
		h    string
		want bool
	}{
		{"r1(x) w1(x) r2(x) w2(x)", true},  // serial
		{"r1(x) r2(x) w1(x) w2(x)", false}, // classic lost update
		{"r1(x) r2(y) w1(x) w2(y)", true},  // disjoint items
		{"w1(x) r2(x) w2(y) r1(y)", false}, // cycle t1->t2->t1
		{"r1(x) r2(x)", true},              // reads only
	}
	for _, tc := range tests {
		h := parse(t, tc.h)
		if got := h.IsCSR(); got != tc.want {
			t.Errorf("IsCSR(%s) = %v, want %v", tc.h, got, tc.want)
		}
	}
}

func TestSemanticSRBeatsCSROnIncrements(t *testing.T) {
	// Crossed increments: t1 hits x first but y second — a serialization
	// cycle under read-modify-write, yet semantically serializable because
	// increments commute.
	h := parse(t, "i1(x) i2(x) i2(y) i1(y)")
	if h.IsCSR() {
		t.Fatal("flat CSR must reject interleaved read-modify-writes")
	}
	if !h.IsSemanticSR() {
		t.Fatal("semantic serializability must accept commuting increments")
	}
}

func TestSerialWitness(t *testing.T) {
	h := parse(t, "w1(x) r2(x) w2(y) r3(y)")
	w, ok := h.SerialWitness(ConflictsRW)
	if !ok {
		t.Fatal("history is serializable")
	}
	pos := map[TxID]int{}
	for i, tx := range w {
		pos[tx] = i
	}
	if !(pos["t1"] < pos["t2"] && pos["t2"] < pos["t3"]) {
		t.Fatalf("witness %v should order t1 < t2 < t3", w)
	}
}

func TestIsVSR(t *testing.T) {
	// CSR implies VSR.
	if !parse(t, "r1(x) w1(x) r2(x) w2(x)").IsVSR() {
		t.Error("serial history must be VSR")
	}
	// The classical VSR-but-not-CSR history with blind writes:
	// w1(x) w2(x) w2(y) w1(y) w3(x) w3(y) — t3 overwrites everything.
	h := parse(t, "w1(x) w2(x) w2(y) w1(y) w3(x) w3(y)")
	if h.IsCSR() {
		t.Error("blind-write history should not be CSR")
	}
	if !h.IsVSR() {
		t.Error("blind-write history is view serializable (t2,t1,t3 or t1,t2,t3? final writer t3 dominates)")
	}
	// Lost update is not even VSR.
	if parse(t, "r1(x) r2(x) w1(x) w2(x)").IsVSR() {
		t.Error("lost update must not be VSR")
	}
}

func TestCSRImpliesVSRProperty(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		h := Random(GenParams{Txs: 3, OpsPerTx: 3, Items: 2, WriteRatio: 0.5, Seed: seed})
		if h.IsCSR() && !h.IsVSR() {
			t.Fatalf("seed %d: CSR history not VSR: %s", seed, h)
		}
	}
}

func TestRandomShape(t *testing.T) {
	h := Random(GenParams{Txs: 4, OpsPerTx: 5, Items: 3, WriteRatio: 0.3, IncRatio: 0.2, Seed: 1})
	if len(h.Ops) != 20 {
		t.Fatalf("ops = %d, want 20", len(h.Ops))
	}
	if len(h.Transactions()) != 4 {
		t.Fatalf("txs = %d, want 4", len(h.Transactions()))
	}
	counts := map[TxID]int{}
	for _, o := range h.Ops {
		counts[o.Tx]++
	}
	for tx, c := range counts {
		if c != 5 {
			t.Fatalf("tx %s has %d ops, want 5", tx, c)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	p := GenParams{Txs: 3, OpsPerTx: 4, Items: 2, WriteRatio: 0.4, IncRatio: 0.1, Seed: 9}
	if Random(p).String() != Random(p).String() {
		t.Fatal("same seed must generate the same history")
	}
}

func TestHistoryString(t *testing.T) {
	h := parse(t, "r1(x) w2(y) i3(z)")
	if got, want := h.String(), "rt1(x) wt2(y) it3(z)"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
