package history

import (
	"testing"

	"compositetx/internal/front"
)

// TestFlatCompCEqualsCSR: an order-1 composite system is a flat history,
// and Comp-C degenerates to conflict serializability — the sanity anchor
// tying the paper's criterion to classical theory.
func TestFlatCompCEqualsCSR(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		h := Random(GenParams{
			Txs: 2 + int(seed%3), OpsPerTx: 3, Items: 1 + int(seed%3),
			WriteRatio: 0.2 + 0.5*float64(seed%3)/3,
			Seed:       seed,
		})
		sys := h.ToSystem(ConflictsRW)
		if err := sys.Validate(); err != nil {
			t.Fatalf("seed %d: converted system must validate: %v", seed, err)
		}
		compC, err := front.IsCompC(sys)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if csr := h.IsCSR(); compC != csr {
			t.Fatalf("seed %d: Comp-C=%v but CSR=%v for %s", seed, compC, csr, h)
		}
	}
}

// TestFlatCompCEqualsSemanticSR: the same equivalence under the semantic
// commutativity relation.
func TestFlatCompCEqualsSemanticSR(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		h := Random(GenParams{
			Txs: 3, OpsPerTx: 3, Items: 2,
			WriteRatio: 0.3, IncRatio: 0.4,
			Seed: seed,
		})
		sem := func(a, b Op) bool { return !Commutes(a, b) }
		sys := h.ToSystem(sem)
		compC, err := front.IsCompC(sys)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ssr := h.IsSemanticSR(); compC != ssr {
			t.Fatalf("seed %d: Comp-C=%v but semantic SR=%v for %s", seed, compC, ssr, h)
		}
	}
}
