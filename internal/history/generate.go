package history

import (
	"fmt"
	"math/rand"
)

// GenParams configures Random.
type GenParams struct {
	Txs        int // number of transactions
	OpsPerTx   int
	Items      int     // size of the item universe
	WriteRatio float64 // probability an op is a write
	IncRatio   float64 // probability an op is an increment (checked before WriteRatio)
	Seed       int64
}

// Random generates a random interleaved history: each transaction issues
// OpsPerTx operations over a shared item universe, and the per-transaction
// streams are interleaved uniformly at random.
func Random(p GenParams) *History {
	if p.Txs < 1 || p.OpsPerTx < 1 || p.Items < 1 {
		panic("history: GenParams must be positive")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	remaining := make([]int, p.Txs)
	for i := range remaining {
		remaining[i] = p.OpsPerTx
	}
	total := p.Txs * p.OpsPerTx
	h := &History{Ops: make([]Op, 0, total)}
	for len(h.Ops) < total {
		// Pick a transaction with remaining operations, weighted equally.
		i := rng.Intn(p.Txs)
		for remaining[i] == 0 {
			i = (i + 1) % p.Txs
		}
		remaining[i]--
		kind := Read
		switch r := rng.Float64(); {
		case r < p.IncRatio:
			kind = Increment
		case r < p.IncRatio+p.WriteRatio:
			kind = Write
		}
		h.Ops = append(h.Ops, Op{
			Tx:   TxID(fmt.Sprintf("t%d", i+1)),
			Kind: kind,
			Item: fmt.Sprintf("x%d", rng.Intn(p.Items)+1),
		})
	}
	return h
}
