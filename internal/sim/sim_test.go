package sim

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"compositetx/internal/sched"
)

func TestE1Figure3Fails(t *testing.T) {
	tab := E1Figure3()
	last := tab.Rows[len(tab.Rows)-1]
	if !strings.Contains(last[len(last)-1], "FAILED") {
		t.Fatalf("E1 must end in a reduction failure: %v", last)
	}
}

func TestE2Figure4Succeeds(t *testing.T) {
	tab := E2Figure4()
	last := tab.Rows[len(tab.Rows)-1]
	if !strings.Contains(last[len(last)-1], "CORRECT") {
		t.Fatalf("E2 must end correct: %v", last)
	}
	// The level 3 row must show zero observed pairs (forgotten orders).
	l3 := tab.Rows[len(tab.Rows)-2]
	if l3[2] != "0" {
		t.Fatalf("E2 level 3 observed pairs = %s, want 0 (forgotten)", l3[2])
	}
}

func TestE3NoDisagreements(t *testing.T) {
	tab := E3Theorems(40)
	for _, row := range tab.Rows {
		if row[len(row)-1] != "0" {
			t.Fatalf("theorem disagreement in row %v", row)
		}
		acc, _ := strconv.Atoi(row[3])
		rej, _ := strconv.Atoi(row[4])
		if acc == 0 || rej == 0 {
			t.Fatalf("degenerate coverage in row %v", row)
		}
	}
}

func TestE4ContainmentHolds(t *testing.T) {
	tab := E4Containment(60)
	for _, row := range tab.Rows {
		if row[5] != "true" || row[6] != "true" {
			t.Fatalf("containment violated in row %v", row)
		}
		llsr, _ := strconv.ParseFloat(row[2], 64)
		scc, _ := strconv.ParseFloat(row[4], 64)
		if llsr > scc {
			t.Fatalf("LLSR acceptance %v exceeds SCC %v", llsr, scc)
		}
	}
}

func TestE5SemanticBeatsCSR(t *testing.T) {
	tab := E5Commutativity(60)
	// At increment ratio 1.0, semantic acceptance must exceed CSR.
	last := tab.Rows[len(tab.Rows)-1]
	csr, _ := strconv.ParseFloat(last[2], 64)
	sem, _ := strconv.ParseFloat(last[3], 64)
	comp, _ := strconv.ParseFloat(last[4], 64)
	if sem <= csr {
		t.Fatalf("semantic SR (%v) should beat CSR (%v) at full commutativity", sem, csr)
	}
	if sem != comp {
		t.Fatalf("Comp-C (%v) must agree with semantic SR (%v) on flat systems", comp, sem)
	}
}

func TestE6ProtocolsAllSound(t *testing.T) {
	cfg := RunConfig{Roots: 60, StepsPerTx: 3, Items: 4, Clients: 8,
		ReadRatio: 0.3, WriteRatio: 0.2, Seed: 3}
	tab := E6Protocols(cfg)
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		topo, proto, verdict := row[0], row[1], row[len(row)-1]
		if proto == "open-nested" && topo == "diamond" {
			continue // may legitimately violate; E8 covers it
		}
		if verdict != "Comp-C" {
			t.Fatalf("protocol %s on %s recorded %s", proto, topo, verdict)
		}
	}
}

func TestE7ProducesRows(t *testing.T) {
	tab := E7CheckerScaling()
	if len(tab.Rows) < 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestE8SoundProtocolsNeverViolate(t *testing.T) {
	tab := E8Coverage(3)
	noccViolations := 0
	for _, row := range tab.Rows {
		proto, violations := row[1], row[4]
		v, _ := strconv.Atoi(violations)
		switch proto {
		case "global-2pl", "closed-nested", "hybrid":
			if v != 0 {
				t.Fatalf("sound protocol violated: %v", row)
			}
		case "nocc":
			noccViolations += v
		}
	}
	if noccViolations == 0 {
		t.Fatal("NoCC never violated under write contention; detection experiment is vacuous")
	}
}

func TestE9BothPoliciesSound(t *testing.T) {
	cfg := RunConfig{Roots: 60, StepsPerTx: 3, Items: 8, Clients: 8,
		ReadRatio: 0.2, WriteRatio: 0.3, Seed: 5}
	tab := E9Deadlock(cfg)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "Comp-C" {
			t.Fatalf("deadlock policy recorded an incorrect execution: %v", row)
		}
	}
}

func TestE10ChaosRecoversEverywhere(t *testing.T) {
	cfg := RunConfig{Roots: 25, StepsPerTx: 3, Items: 3, Clients: 6,
		ReadRatio: 0.25, WriteRatio: 0.3, Seed: 7}
	tab := E10Chaos(cfg)
	if len(tab.Rows) != 27 {
		t.Fatalf("rows = %d, want 27 (3 topologies x 3 protocols x 3 mixes)", len(tab.Rows))
	}
	faults := 0
	for _, row := range tab.Rows {
		if v := row[len(row)-1]; v != "Comp-C" {
			t.Fatalf("chaos cell recorded %q: %v", v, row)
		}
		n, err := strconv.Atoi(row[4])
		if err != nil {
			t.Fatalf("bad fault count in row %v", row)
		}
		faults += n
	}
	if faults == 0 {
		t.Fatal("no faults injected; the chaos experiment is vacuous")
	}
}

func TestE11CrashMatrixRecoversEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix fsyncs a WAL per cell; skipped in -short")
	}
	cfg := RunConfig{Roots: 24, Clients: 4, Seed: 19}
	tab := E11CrashMatrix(cfg)
	if len(tab.Rows) != 36 {
		t.Fatalf("rows = %d, want 36 (4 sites x 3 topologies x 3 protocols)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if v := row[len(row)-1]; v != "Comp-C" {
			t.Fatalf("crash cell did not recover to a correct execution: %v", row)
		}
		if c := row[len(row)-2]; c != "conserved" {
			t.Fatalf("crash cell broke escrow conservation: %v", row)
		}
	}
}

func TestE15NetChaosStaysAtomic(t *testing.T) {
	if testing.Short() {
		t.Skip("network-chaos matrix runs a WAL-backed cluster per cell; skipped in -short")
	}
	cfg := RunConfig{Roots: 8, Clients: 1, Seed: 7}
	tab := E15NetChaos(cfg)
	if len(tab.Rows) != 40 {
		t.Fatalf("rows = %d, want 40 (2 protocols x 4 fault mixes x 5 crash sites)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if v := row[len(row)-1]; v != "Comp-C" {
			t.Fatalf("chaos cell's merged history is not Comp-C: %v", row)
		}
		if a := row[len(row)-2]; a != "atomic" {
			t.Fatalf("chaos cell broke distributed atomicity: %v", row)
		}
	}
}

func TestE16GroupCommitBeatsPerTxnFsync(t *testing.T) {
	if testing.Short() {
		t.Skip("E16 runs WAL-backed clusters at 64-way concurrency; skipped in -short")
	}
	const conc, perClient, reps = 64, 15, 3
	base, err := measureE16("chan", false, conc, perClient, reps)
	if err != nil {
		t.Fatalf("per-txn cell: %v", err)
	}
	grouped, err := measureE16("chan", true, conc, perClient, reps)
	if err != nil {
		t.Fatalf("group cell: %v", err)
	}
	for _, pt := range []e16Point{base, grouped} {
		if !pt.conserved {
			t.Fatalf("E16 %s cell broke conservation or lost commits: %+v", pt.mode(), pt)
		}
	}
	if grouped.windows == 0 || grouped.windows >= grouped.forces {
		t.Fatalf("group cell did not coalesce: %d windows for %d forces", grouped.windows, grouped.forces)
	}
	// The committed headline (BENCH_checker.json) is >=2x at 64 concurrent
	// roots; the test gate is looser so slow CI machines don't flake.
	if speedup := grouped.tps / base.tps; speedup < 1.4 {
		t.Fatalf("group %.0f tx/s vs per-txn %.0f tx/s (%.2fx); want clearly faster (>=1.4x)",
			grouped.tps, base.tps, speedup)
	}
}

func TestE17PipelineBeatsSerialCertify(t *testing.T) {
	if testing.Short() {
		t.Skip("E17 measures wall-clock certified throughput at 8-way concurrency; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates the fixed per-commit cost and compresses the speedup ratio; `make certperf` gates the threshold uninstrumented and the byte-identity suite covers correctness under -race")
	}
	const conflict, clients, perClient, legs, reps = 10, 8, 60, 12, 3
	serial, err := measureE17(certMode{name: "serial", on: true, opts: sched.CertifyOptions{Serial: true}},
		conflict, clients, perClient, legs, reps)
	if err != nil {
		t.Fatalf("serial cell: %v", err)
	}
	pipeline, err := measureE17(certMode{name: "pipeline", on: true},
		conflict, clients, perClient, legs, reps)
	if err != nil {
		t.Fatalf("pipeline cell: %v", err)
	}
	for _, pt := range []e17Point{serial, pipeline} {
		if !pt.ok {
			t.Fatalf("E17 %s cell lost commits or rejected: %+v", pt.mode, pt)
		}
	}
	if pipeline.fastPath == 0 {
		t.Fatal("pipeline cell never took the footprint fast path on the low-conflict workload")
	}
	// The committed headline (BENCH_checker.json, `make certperf`) is ≥2x
	// at 8 clients on the ≤10%-conflict mix; the CI gate asserts the full
	// claim since the pipeline's margin is wide there.
	if speedup := pipeline.tps / serial.tps; speedup < 2.0 {
		t.Fatalf("pipeline %.0f tx/s vs serial %.0f tx/s (%.2fx); want >=2x at %d clients / %d%% conflict",
			pipeline.tps, serial.tps, speedup, clients, conflict)
	}
}

func TestE12IncrementalBeatsFullRecheck(t *testing.T) {
	if testing.Short() {
		t.Skip("E12 times two full certification sweeps per stream; skipped in -short")
	}
	streams := e12Streams()
	last := streams[len(streams)-1]
	if n := last.NumNodes(); n < 256 {
		t.Fatalf("largest E12 stream has %d nodes, want >= 256 for the scaling claim", n)
	}
	c := measureIncremental(last, 50*time.Millisecond)
	// The committed claim is >=10x at 256+ nodes (BENCH_checker.json);
	// the test gate is looser so slow CI machines don't flake.
	if c.speedup() < 5 {
		t.Fatalf("incremental speedup %.1fx at %d nodes; want clearly amortized (>=5x)", c.speedup(), c.nodes)
	}
}

func TestE12CertifiedRuntimeStaysSound(t *testing.T) {
	cfg := RunConfig{Roots: 40, StepsPerTx: 3, Items: 4, Clients: 8,
		ReadRatio: 0.3, WriteRatio: 0.2, Seed: 3}
	c := measureCertify("diamond", func() *sched.Topology { return sched.DiamondTopology() }, cfg)
	if c.plainTps == 0 || c.certTps == 0 {
		t.Fatalf("certify measurement did not complete: %+v", c)
	}
	if !c.certified {
		t.Fatalf("certified hybrid run must stay Comp-C: %+v", c)
	}
	if c.rejects != 0 {
		t.Fatalf("hybrid is sound; certifier rejected %d commits", c.rejects)
	}
	if c.commits != int64(cfg.Roots) {
		t.Fatalf("commits = %d, want %d", c.commits, cfg.Roots)
	}
}

func TestE13MVCCBeatsLockOnlyAtHighReadRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("E13 runs six contended workloads; skipped in -short")
	}
	// The committed curve's shape (DefaultMVCCConfig) at the 90% cell
	// only: shared pool, per-step think time, best-of-N reps per cell to
	// ride out scheduler noise. The committed headline is >=2x; the test
	// gate is looser so slow CI machines don't flake.
	cfg := DefaultMVCCConfig()
	cfg.ReadRatios = []float64{0.9}
	cfg.Reps = 4
	points := mvccCurves(cfg)
	var lock, mvcc, certified *mvccPoint
	for i := range points {
		switch points[i].mode {
		case "lock":
			lock = &points[i]
		case "mvcc":
			mvcc = &points[i]
		case "mvcc+certify":
			certified = &points[i]
		}
	}
	if lock == nil || mvcc == nil || certified == nil || lock.tps == 0 || mvcc.tps == 0 {
		t.Fatalf("E13 cells incomplete: %+v", points)
	}
	for _, pt := range points {
		if !pt.correct {
			t.Fatalf("E13 cell %s/%.2f recorded an incorrect execution", pt.mode, pt.readRatio)
		}
	}
	if certified.rejects != 0 {
		t.Fatalf("certifier rejected %d validated optimistic commits", certified.rejects)
	}
	if speedup := mvcc.tps / lock.tps; speedup < 1.3 {
		t.Fatalf("mvcc %.0f tx/s vs lock %.0f tx/s (%.2fx); want clearly faster (>=1.3x)",
			mvcc.tps, lock.tps, speedup)
	}
}

func TestE14CheckpointBoundsRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("E14 runs four certified WAL soaks; skipped in -short")
	}
	// A 5x spread keeps the unbounded cells affordable in CI (the whole
	// point of E14 is that they get expensive fast). The gate is
	// structural (records replayed at recovery), which is deterministic
	// modulo client interleaving, unlike wall-clock or heap gauges. The
	// checkpointed tail is gated by an absolute, cadence-derived bound
	// rather than a growth ratio: when the cadence happens to fire on the
	// final commit the short-horizon tail is legitimately zero.
	cfg := CheckpointSoakConfig{
		Horizons: []int{120, 600}, Every: 30, Clients: 6, SyncEvery: 32, Seed: 23,
	}
	points, err := checkpointCells(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cells := map[string]ckPoint{}
	for _, pt := range points {
		if !pt.recovered {
			t.Fatalf("E14 cell %s/%d did not recover to a conserved Comp-C state", pt.mode, pt.horizon)
		}
		cells[fmt.Sprintf("%s/%d", pt.mode, pt.horizon)] = pt
	}
	ck5 := cells["checkpoint/600"]
	un1, un5 := cells["unbounded/120"], cells["unbounded/600"]
	if ck5.checkpoints == 0 {
		t.Fatal("the checkpointed soak took no checkpoints")
	}
	// Unbounded recovery replays the whole history: ~5x growth.
	if g := float64(un5.tailRecords) / float64(un1.tailRecords); g < 3 {
		t.Fatalf("unbounded tail grew only %.1fx across a 5x horizon (%d -> %d records): the baseline premise failed",
			g, un1.tailRecords, un5.tailRecords)
	}
	// Checkpointed recovery replays only the tail since the last marker:
	// at most ~Every commits' worth of records (plus a little slop for
	// in-flight clients), independent of the horizon.
	if limit := cfg.Every * 20; ck5.tailRecords > limit {
		t.Fatalf("checkpointed recovery replayed %d records, over the cadence bound %d: recovery is not bounded by the cadence",
			ck5.tailRecords, limit)
	}
	// And at the long horizon, the checkpointed log replays far less than
	// the unbounded one.
	if ck5.tailRecords*4 > un5.tailRecords {
		t.Fatalf("checkpointed recovery replayed %d of the unbounded %d records: truncation is not paying off",
			ck5.tailRecords, un5.tailRecords)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}, Note: "n"}
	tab.AddRow(1, "x")
	tab.AddRow(2.5, "longer")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"X — demo", "a", "bb", "2.500", "longer", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
