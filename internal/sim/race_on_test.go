//go:build race

package sim

// raceEnabled reports whether the race detector is compiled in. Wall-clock
// performance gates skip themselves under the detector: instrumentation
// inflates the fixed per-commit cost and compresses measured speedup
// ratios, so thresholds calibrated for uninstrumented builds would flake.
const raceEnabled = true
