package sim

import (
	"fmt"
	"time"

	"compositetx/internal/front"
	"compositetx/internal/sched"
)

// RunConfig parameterizes the runtime experiments.
type RunConfig struct {
	Roots      int
	StepsPerTx int
	Items      int // hot-item universe (lower = more contention)
	Clients    int
	ReadRatio  float64
	WriteRatio float64
	// StepDelay models per-operation service time (components do real
	// work); it is what makes lock hold times — and therefore the
	// protocols' concurrency differences — visible.
	StepDelay time.Duration
	Seed      int64
}

// DefaultRunConfig is the configuration used by compbench.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Roots: 200, StepsPerTx: 4, Items: 4, Clients: 16,
		ReadRatio: 0.25, WriteRatio: 0.05, StepDelay: 150 * time.Microsecond,
		Seed: 7,
	}
}

// runOnce drives one workload through one protocol on one topology and
// reports throughput plus the checker verdict on the recorded execution.
func runOnce(topo *sched.Topology, p sched.Protocol, cfg RunConfig) (row []string, correct bool) {
	rt := topo.NewRuntime(p)
	progs := sched.GenPrograms(topo, sched.WorkloadParams{
		Roots: cfg.Roots, StepsPerTx: cfg.StepsPerTx, Items: cfg.Items,
		ReadRatio: cfg.ReadRatio, WriteRatio: cfg.WriteRatio, Seed: cfg.Seed,
	})
	if cfg.StepDelay > 0 {
		progs = sched.Jitter(progs, cfg.StepDelay, cfg.Seed)
	}
	start := time.Now()
	err := sched.Run(rt, progs, cfg.Clients)
	elapsed := time.Since(start)
	if err != nil {
		return []string{p.String(), "error: " + err.Error(), "-", "-", "-", "-"}, false
	}
	m := rt.Metrics()
	tps := float64(m.Commits) / elapsed.Seconds()

	sys := rt.RecordedSystem()
	verdict := "Comp-C"
	correct = true
	if err := sys.Validate(); err != nil {
		verdict = "VIOLATION (model)"
		correct = false
	} else if ok, err := front.IsCompC(sys); err != nil || !ok {
		verdict = "VIOLATION (Comp-C)"
		correct = false
	}
	return []string{
		p.String(),
		fmt.Sprintf("%.0f", tps),
		fmt.Sprint(m.Aborts),
		fmt.Sprint(m.LockWaits),
		elapsed.Round(time.Millisecond).String(),
		verdict,
	}, correct
}

// E6Protocols compares the concurrency-control protocols across the three
// reference topologies: throughput, aborts, lock waits, and whether the
// recorded execution is correct.
func E6Protocols(cfg RunConfig) *Table {
	t := &Table{
		ID:     "E6",
		Title:  fmt.Sprintf("Runtime protocols (%d txs, %d clients, %d hot items)", cfg.Roots, cfg.Clients, cfg.Items),
		Header: []string{"topology", "protocol", "tx/s", "aborts", "lock waits", "wall", "verdict"},
	}
	topos := []struct {
		name string
		topo *sched.Topology
	}{
		{"stack(3)", sched.StackTopology(3)},
		{"bank", sched.BankTopology()},
		{"diamond", sched.DiamondTopology()},
	}
	protos := []sched.Protocol{sched.Global2PL, sched.ClosedNested, sched.OpenNested, sched.Hybrid}
	for _, tc := range topos {
		for _, p := range protos {
			row, _ := runOnce(tc.topo, p, cfg)
			cells := make([]any, 0, len(row)+1)
			cells = append(cells, tc.name)
			for _, c := range row {
				cells = append(cells, c)
			}
			t.AddRow(cells...)
		}
	}
	t.Note = "expected: semantic protocols (open-nested, hybrid) sustain higher throughput than " +
		"global-2pl under contention because commuting operations (increments) proceed concurrently; " +
		"open-nested on the diamond may record a VIOLATION — the Figure 3 phenomenon — while hybrid stays Comp-C"
	return t
}

// E9Deadlock compares the two deadlock-handling policies under a
// write-heavy contended workload: wait-die prevention sacrifices eagerly
// (younger requesters die even when no cycle exists), waits-for-graph
// detection aborts only on real cycles at the cost of maintaining the
// graph. Both must stay live and correct.
func E9Deadlock(cfg RunConfig) *Table {
	t := &Table{
		ID:     "E9",
		Title:  fmt.Sprintf("Deadlock policies (%d txs, %d clients, hybrid protocol)", cfg.Roots, cfg.Clients),
		Header: []string{"contention", "policy", "tx/s", "aborts", "lock waits", "verdict"},
	}
	workloads := []struct {
		name       string
		items      int
		writeRatio float64
	}{
		{"moderate (16 items, 20% writes)", 16, 0.2},
		{"hotspot  (4 items, 60% writes)", 4, 0.6},
	}
	for _, w := range workloads {
		for _, pol := range []sched.DeadlockPolicy{sched.WaitDie, sched.DetectWFG} {
			rt := sched.BankTopology().NewRuntime(sched.Hybrid)
			rt.Deadlock = pol
			progs := sched.GenPrograms(sched.BankTopology(), sched.WorkloadParams{
				Roots: cfg.Roots, StepsPerTx: cfg.StepsPerTx, Items: w.items,
				ReadRatio: 0.1, WriteRatio: w.writeRatio, Seed: cfg.Seed,
			})
			if cfg.StepDelay > 0 {
				progs = sched.Jitter(progs, cfg.StepDelay, cfg.Seed)
			}
			start := time.Now()
			err := sched.Run(rt, progs, cfg.Clients)
			elapsed := time.Since(start)
			if err != nil {
				t.AddRow(w.name, pol.String(), "error", "-", "-", err.Error())
				continue
			}
			m := rt.Metrics()
			sys := rt.RecordedSystem()
			verdict := "Comp-C"
			if err := sys.Validate(); err != nil {
				verdict = "VIOLATION (model)"
			} else if ok, err := front.IsCompC(sys); err != nil || !ok {
				verdict = "VIOLATION (Comp-C)"
			}
			t.AddRow(w.name, pol.String(),
				fmt.Sprintf("%.0f", float64(m.Commits)/elapsed.Seconds()),
				m.Aborts, m.LockWaits, verdict)
		}
	}
	t.Note = "expected: at moderate contention detection aborts only on real cycles (far fewer than " +
		"wait-die's precautionary sacrifices); under extreme hot-spot contention detection thrashes " +
		"(victims re-deadlock on retry) while wait-die's timestamp ordering converges — the classical " +
		"prevention-vs-detection trade-off. Both policies always record correct executions."
	return t
}

// E8Coverage stresses every topology × protocol combination across many
// seeds and counts correct recorded executions; NoCC demonstrates that the
// checker detects real violations.
func E8Coverage(runsPerCell int) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "Configuration coverage: recorded executions checked per protocol",
		Header: []string{"topology", "protocol", "runs", "correct", "violations"},
	}
	topos := []struct {
		name string
		mk   func() *sched.Topology
	}{
		{"stack(2)", func() *sched.Topology { return sched.StackTopology(2) }},
		{"stack(4)", func() *sched.Topology { return sched.StackTopology(4) }},
		{"bank", sched.BankTopology},
		{"diamond", sched.DiamondTopology},
	}
	protos := []sched.Protocol{sched.Global2PL, sched.ClosedNested, sched.OpenNested, sched.Hybrid, sched.NoCC}
	for _, tc := range topos {
		for _, p := range protos {
			good, bad := 0, 0
			for run := 0; run < runsPerCell; run++ {
				topo := tc.mk()
				rt := topo.NewRuntime(p)
				progs := sched.GenPrograms(topo, sched.WorkloadParams{
					Roots: 40, StepsPerTx: 3, Items: 2,
					ReadRatio: 0.2, WriteRatio: 0.5, Seed: int64(run),
				})
				progs = sched.Jitter(progs, 200*time.Microsecond, int64(run))
				if err := sched.Run(rt, progs, 8); err != nil {
					bad++
					continue
				}
				sys := rt.RecordedSystem()
				if err := sys.Validate(); err != nil {
					bad++
					continue
				}
				if ok, err := front.IsCompC(sys); err == nil && ok {
					good++
				} else {
					bad++
				}
			}
			t.AddRow(tc.name, p.String(), runsPerCell, good, bad)
		}
	}
	t.Note = "expected: global-2pl, closed-nested and hybrid record only correct executions everywhere; " +
		"open-nested is correct on single-entry configurations but can violate on the diamond; " +
		"nocc violates frequently under write contention — and every violation is caught by the checker"
	return t
}
