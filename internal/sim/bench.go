package sim

import (
	"fmt"
	"runtime"
	"time"

	"compositetx/internal/front"
	"compositetx/internal/model"
	"compositetx/internal/workload"
)

// BenchResult is one named checker measurement, the machine-readable
// counterpart of the `go test -bench` output that cmd/compbench -json
// persists into BENCH_checker.json so the perf trajectory of the checker
// is comparable across PRs.
type BenchResult struct {
	Name    string             `json:"name"`
	NsPerOp float64            `json:"nsPerOp"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// timeOp measures fn by repetition until minDur elapses, returning ns/op.
func timeOp(minDur time.Duration, fn func()) float64 {
	start := time.Now()
	reps := 0
	for time.Since(start) < minDur {
		fn()
		reps++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps)
}

// CheckerBenchmarks times the checker engine on the workloads the
// acceptance gates track: the paper's two worked examples (the E1/E2
// units), the E7 stack-scaling configurations, and CheckBatch throughput
// at 1 versus 8 workers. The worker comparison is bounded by the CPUs
// actually available, recorded in the "cpus" metric: on a single-core
// machine the pool cannot speed up CPU-bound checks, so read the speedup
// relative to that ceiling.
func CheckerBenchmarks() []BenchResult {
	const minDur = 100 * time.Millisecond
	var out []BenchResult

	fig3, fig4 := front.Figure3System(), front.Figure4System()
	out = append(out,
		BenchResult{Name: "E1Figure3/Check", NsPerOp: timeOp(minDur, func() {
			if _, err := front.Check(fig3, front.Options{}); err != nil {
				panic(err)
			}
		})},
		BenchResult{Name: "E2Figure4/Check", NsPerOp: timeOp(minDur, func() {
			if _, err := front.Check(fig4, front.Options{}); err != nil {
				panic(err)
			}
		})},
	)

	for _, cfg := range []struct{ levels, roots int }{
		{3, 8}, {3, 16}, {3, 32}, {4, 4}, {5, 4},
	} {
		sys := workload.Stack(workload.StackParams{
			Levels: cfg.levels, Roots: cfg.roots, Fanout: 2,
			ConflictRate: 0.05, Seed: 1,
		}).Sys
		indexed := timeOp(minDur, func() {
			if _, err := front.Check(sys, front.Options{}); err != nil {
				panic(err)
			}
		})
		// The retired string-keyed engine on the same workload: the ratio
		// is the interned-index speedup this file tracks across PRs.
		reference := timeOp(minDur, func() {
			if _, err := front.CheckReference(sys, front.Options{}); err != nil {
				panic(err)
			}
		})
		out = append(out, BenchResult{
			Name:    fmt.Sprintf("E7CheckerScaling/levels=%d/roots=%d", cfg.levels, cfg.roots),
			NsPerOp: indexed,
			Metrics: map[string]float64{
				"nodes":            float64(sys.NumNodes()),
				"referenceNsPerOp": reference,
				"speedup":          reference / indexed,
			},
		})
	}

	// CheckBatch: a slab of distinct mid-size systems, 1 worker vs 8.
	systems := make([]*model.System, 64)
	for i := range systems {
		systems[i] = workload.Stack(workload.StackParams{
			Levels: 3, Roots: 8, Fanout: 2,
			ConflictRate: 0.05, Seed: int64(i + 1),
		}).Sys
		systems[i].Intern()
	}
	perWorkers := map[int]float64{}
	for _, workers := range []int{1, 8} {
		w := workers
		ns := timeOp(minDur, func() {
			for _, r := range front.CheckBatch(systems, w, front.Options{}) {
				if r.Err != nil {
					panic(r.Err)
				}
			}
		})
		perWorkers[w] = ns / float64(len(systems)) // per system
		out = append(out, BenchResult{
			Name:    fmt.Sprintf("CheckBatch/workers=%d", w),
			NsPerOp: perWorkers[w],
			Metrics: map[string]float64{
				"systems": float64(len(systems)),
				"cpus":    float64(runtime.NumCPU()),
			},
		})
	}
	out = append(out, BenchResult{
		Name:    "CheckBatch/speedup-8v1",
		NsPerOp: perWorkers[8],
		Metrics: map[string]float64{
			"speedup": perWorkers[1] / perWorkers[8],
			"cpus":    float64(runtime.NumCPU()),
		},
	})
	return out
}
