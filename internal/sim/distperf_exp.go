package sim

import (
	"fmt"
	"os"
	"sync"
	"time"

	"compositetx/internal/sched"
)

// E16 — sustained distributed commit throughput: concurrency × force mode
// × transport. Every cell drives a WAL-backed two-branch cluster with N
// concurrent clients, each transferring on its own account pair (disjoint
// items, so lock contention cannot mask the fsync cost the experiment
// isolates). The per-txn-fsync column forces every 2PC force point with
// its own fsync; the group column routes the same force points through
// the WAL flush daemon, so concurrent commits share O(1) fsyncs per
// window. The measurement is commits/s plus client-observed p50/p99
// latency, and every cell must conserve value across its account pairs
// with every submitted transfer committed.

// e16Seed is the per-account seed; transfers move 1 per leg, so a cell
// never exhausts the escrow quota.
const e16Seed = int64(1 << 20)

// DistPerfConfig sizes the E16 matrix.
type DistPerfConfig struct {
	Conc       []int    // concurrent clients per cell
	PerClient  int      // transfers each client submits
	Transports []string // "chan", "tcp"
	Reps       int      // best-of-N reps per cell (0 = 2), rides out scheduler noise
}

// DefaultDistPerfConfig sizes E16 for compbench: enough concurrency to
// saturate the per-txn fsync path, on both transports.
func DefaultDistPerfConfig() DistPerfConfig {
	return DistPerfConfig{
		Conc:       []int{8, 32, 64},
		PerClient:  25,
		Transports: []string{"chan", "tcp"},
		Reps:       2,
	}
}

// e16Point is one measured cell.
type e16Point struct {
	transport string
	group     bool
	conc      int
	committed int
	tps       float64
	p50, p99  time.Duration
	windows   uint64 // shared fsync windows (group mode only)
	forces    uint64
	conserved bool
}

func (pt e16Point) mode() string {
	if pt.group {
		return "group"
	}
	return "per-txn-fsync"
}

// runE16Cell measures one cell: conc clients × perClient transfers, each
// client on its own disjoint east/west account pair.
func runE16Cell(transport string, group bool, conc, perClient int) (e16Point, error) {
	pt := e16Point{transport: transport, group: group, conc: conc}

	dir, err := os.MkdirTemp("", "compositetx-e16-*")
	if err != nil {
		return pt, err
	}
	defer os.RemoveAll(dir)

	seeds := map[string]int64{}
	for c := 0; c < conc; c++ {
		seeds[fmt.Sprintf("a%d", c)] = e16Seed
	}
	cl, err := sched.StartCluster(sched.DistConfig{
		Protocol:  sched.Hybrid,
		Topo:      sched.BankTopology(),
		Transport: transport,
		WALRoot:   dir,
		SyncEvery: 64,
		// Under 64 concurrent per-txn fsyncs a participant's force queue can
		// back an RPC up past the dist_test defaults; the timeout covers the
		// worst serialized fsync wave so both modes run timeout-free, and
		// the liveness timers sit far above the p99 commit latency so the
		// sweeper and re-delivery loop don't inject extra traffic into the
		// measurement.
		RPCTimeout: 250 * time.Millisecond, RPCRetries: 3,
		LockWait:     500 * time.Millisecond,
		MaxRetries:   30,
		AbandonAfter: 10 * time.Second, QueryAfter: 2 * time.Second,
		SweepEvery: time.Second,
		Seeds:      map[string]map[string]int64{"east": seeds},

		GroupCommit: group,
	})
	if err != nil {
		return pt, err
	}
	defer cl.Close()

	var (
		mu   sync.Mutex
		lat  = make([]time.Duration, 0, conc*perClient)
		errc = make(chan error, conc)
		wg   sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			item := fmt.Sprintf("a%d", c)
			mine := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				prog := sched.Invocation{Component: "bank", Steps: []sched.Step{
					transferLeg("east", item, -1),
					transferLeg("west", item, 1),
				}}
				t0 := time.Now()
				if _, err := cl.Submit(fmt.Sprintf("C%d-%d", c, i), prog); err != nil {
					errc <- fmt.Errorf("client %d txn %d: %w", c, i, err)
					return
				}
				mine = append(mine, time.Since(t0))
			}
			mu.Lock()
			lat = append(lat, mine...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return pt, err
	default:
	}
	if err := cl.Settle(10 * time.Second); err != nil {
		return pt, err
	}

	m := cl.Metrics()
	pt.committed = int(m.Commits)
	pt.tps = float64(m.Commits) / elapsed.Seconds()
	pt.p50 = percentile(lat, 0.50)
	pt.p99 = percentile(lat, 0.99)
	pt.forces = m.GroupForces
	pt.windows = m.GroupWindows

	east, west := cl.StoreSnapshot("east"), cl.StoreSnapshot("west")
	pt.conserved = pt.committed == conc*perClient
	for c := 0; c < conc; c++ {
		item := fmt.Sprintf("a%d", c)
		if east[item]+west[item] != e16Seed || west[item] != int64(perClient) {
			pt.conserved = false
		}
	}
	return pt, nil
}

// measureE16 runs one cell reps times and keeps the best-throughput rep
// (the E13 methodology: best-of-N rides out scheduler noise on loaded CI
// machines). Both force modes get the same treatment, and the cell is
// conserved only if EVERY rep conserved.
func measureE16(transport string, group bool, conc, perClient, reps int) (e16Point, error) {
	if reps < 1 {
		reps = 1
	}
	var best e16Point
	conserved := true
	for i := 0; i < reps; i++ {
		pt, err := runE16Cell(transport, group, conc, perClient)
		if err != nil {
			return pt, err
		}
		conserved = conserved && pt.conserved
		if i == 0 || pt.tps > best.tps {
			best = pt
		}
	}
	best.conserved = conserved
	return best, nil
}

// E16DistThroughput runs the matrix and renders one row per cell.
func E16DistThroughput(cfg DistPerfConfig) *Table {
	t := &Table{
		ID: "E16",
		Title: fmt.Sprintf("Sustained distributed commit throughput: concurrency × force mode × transport (%d transfers per client)",
			cfg.PerClient),
		Header: []string{"transport", "mode", "conc", "committed", "tx/s", "p50", "p99", "fsync windows", "verdict"},
	}
	// speedup[transport][conc] = grouped tps / per-txn tps, noted below.
	base := map[string]float64{}
	var notes []string
	reps := cfg.Reps
	if reps <= 0 {
		reps = 2
	}
	for _, transport := range cfg.Transports {
		for _, conc := range cfg.Conc {
			for _, group := range []bool{false, true} {
				pt, err := measureE16(transport, group, conc, cfg.PerClient, reps)
				if err != nil {
					t.AddRow(transport, pt.mode(), conc, "error", "-", "-", "-", "-", err.Error())
					continue
				}
				verdict := "conserved"
				if !pt.conserved {
					verdict = "VIOLATED"
				}
				windows := "-"
				if pt.group {
					windows = fmt.Sprintf("%d (%d forces)", pt.windows, pt.forces)
				}
				t.AddRow(transport, pt.mode(), conc, pt.committed,
					fmt.Sprintf("%.0f", pt.tps),
					pt.p50.Round(time.Microsecond).String(),
					pt.p99.Round(time.Microsecond).String(),
					windows, verdict)
				key := fmt.Sprintf("%s/%d", transport, conc)
				if !group {
					base[key] = pt.tps
				} else if b := base[key]; b > 0 {
					notes = append(notes, fmt.Sprintf("%s@%d %.1fx", transport, conc, pt.tps/b))
				}
			}
		}
	}
	t.Note = "expected: grouped throughput pulls ahead of per-txn fsync as concurrency grows (the flush " +
		"daemon serves a whole window of concurrent force points with one fsync per WAL, so fsync cost is " +
		"O(windows) instead of O(transactions)); every cell conserved with all transfers committed. " +
		"group-vs-per-txn speedup: " + fmt.Sprint(notes)
	return t
}

// DistPerfBenchmarks measures the E16 headline cells for
// BENCH_checker.json: 64 concurrent clients, both force modes, both
// transports — the grouped/per-txn tps ratio at conc=64 is the committed
// ≥2x claim.
func DistPerfBenchmarks() []BenchResult {
	const conc, perClient, reps = 64, 25, 2
	var out []BenchResult
	base := map[string]float64{}
	for _, transport := range []string{"chan", "tcp"} {
		for _, group := range []bool{false, true} {
			pt, err := measureE16(transport, group, conc, perClient, reps)
			if err != nil {
				panic(err)
			}
			if !pt.conserved {
				panic(fmt.Sprintf("E16 bench cell %s/%s not conserved", transport, pt.mode()))
			}
			metrics := map[string]float64{
				"tps":   pt.tps,
				"p50Ns": float64(pt.p50.Nanoseconds()),
				"p99Ns": float64(pt.p99.Nanoseconds()),
			}
			if group {
				metrics["fsyncWindows"] = float64(pt.windows)
				metrics["groupForces"] = float64(pt.forces)
				if b := base[transport]; b > 0 {
					metrics["speedupVsPerTxn"] = pt.tps / b
				}
			} else {
				base[transport] = pt.tps
			}
			out = append(out, BenchResult{
				Name:    fmt.Sprintf("E16DistThroughput/%s/%s/conc=%d", transport, pt.mode(), conc),
				NsPerOp: float64(pt.p50.Nanoseconds()),
				Metrics: metrics,
			})
		}
	}
	return out
}
