package sim

import (
	"fmt"
	"time"

	"compositetx/internal/front"
	"compositetx/internal/sched"
)

// chaosMix is one fault cocktail of the E10 sweep.
type chaosMix struct {
	name      string
	plan      sched.FaultPlan
	opTimeout time.Duration
}

func chaosMixes() []chaosMix {
	return []chaosMix{
		{"apply+lock", sched.FaultPlan{Seed: 11, ApplyProb: 0.04, LockFailProb: 0.02}, 0},
		{"latency+down", sched.FaultPlan{Seed: 13, LockDelayProb: 0.06,
			LockDelay: 2 * time.Millisecond, DownProb: 0.01, DownWindow: 2 * time.Millisecond},
			25 * time.Millisecond},
		{"heavy", sched.FaultPlan{Seed: 17, ApplyProb: 0.05, LockFailProb: 0.02,
			DownProb: 0.01, DownWindow: time.Millisecond, CompensationProb: 0.25}, 0},
	}
}

// E10Chaos is the chaos experiment: protocol × topology × fault mix,
// reporting how much injected failure the recovery machinery absorbed
// (faults, timeouts, local subtransaction retries, quarantined
// compensations) and whether the recorded execution still passes the
// Comp-C reduction. The paper's correctness stance survives faults by
// construction — aborted and re-run work never enters the record — and
// this table measures that claim instead of assuming it.
func E10Chaos(cfg RunConfig) *Table {
	t := &Table{
		ID:     "E10",
		Title:  fmt.Sprintf("Chaos: fault injection and recovery (%d txs, %d clients per cell)", cfg.Roots, cfg.Clients),
		Header: []string{"topology", "protocol", "fault mix", "tx/s", "faults", "timeouts", "sub-retries", "quarantined", "verdict"},
	}
	topos := []struct {
		name string
		mk   func() *sched.Topology
	}{
		{"stack(3)", func() *sched.Topology { return sched.StackTopology(3) }},
		{"bank", sched.BankTopology},
		{"diamond", sched.DiamondTopology},
	}
	protos := []sched.Protocol{sched.Hybrid, sched.ClosedNested, sched.Global2PL}
	for _, tc := range topos {
		for _, p := range protos {
			for _, mix := range chaosMixes() {
				topo := tc.mk()
				rt := topo.NewRuntime(p)
				rt.SetFaults(mix.plan)
				rt.OpTimeout = mix.opTimeout
				progs := sched.GenPrograms(topo, sched.WorkloadParams{
					Roots: cfg.Roots, StepsPerTx: cfg.StepsPerTx, Items: cfg.Items,
					ReadRatio: cfg.ReadRatio, WriteRatio: cfg.WriteRatio, Seed: mix.plan.Seed,
				})
				if cfg.StepDelay > 0 {
					progs = sched.Jitter(progs, cfg.StepDelay, mix.plan.Seed)
				}
				start := time.Now()
				err := sched.Run(rt, progs, cfg.Clients)
				elapsed := time.Since(start)
				if err != nil {
					t.AddRow(tc.name, p.String(), mix.name, "error", "-", "-", "-", "-", err.Error())
					continue
				}
				m := rt.Metrics()
				sys := rt.RecordedSystem()
				verdict := "Comp-C"
				if err := sys.Validate(); err != nil {
					verdict = "VIOLATION (model)"
				} else if ok, err := front.IsCompC(sys); err != nil || !ok {
					verdict = "VIOLATION (Comp-C)"
				}
				t.AddRow(tc.name, p.String(), mix.name,
					fmt.Sprintf("%.0f", float64(m.Commits)/elapsed.Seconds()),
					m.InjectedFaults, m.Timeouts, m.SubRetries,
					m.CompensationFailures, verdict)
			}
		}
	}
	t.Note = "expected: every cell commits its full workload and records a Comp-C execution — injected " +
		"faults are absorbed by local subtransaction retries (open nesting), root retries, and " +
		"compensation quarantine, never by corrupting the recorded history; throughput degrades " +
		"with the fault mix instead of correctness"
	return t
}

// DefaultChaosConfig sizes E10 for compbench: smaller than E6 per cell
// (27 cells) but enough concurrency for faults to interleave with real
// contention.
func DefaultChaosConfig() RunConfig {
	return RunConfig{
		Roots: 80, StepsPerTx: 3, Items: 3, Clients: 8,
		ReadRatio: 0.25, WriteRatio: 0.3, StepDelay: 80 * time.Microsecond,
		Seed: 7,
	}
}
