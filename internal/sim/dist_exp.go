package sim

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"compositetx/internal/comm"
	"compositetx/internal/sched"
)

// E15 — distributed commit under network chaos: protocol × network-fault
// mix × crash site. Every cell runs a balanced-transfer workload through
// a WAL-backed distributed cluster (coordinator + one participant per
// component, presumed-abort 2PC over the channel transport), with the
// seeded network fault injector perturbing every message and one armed
// crash killing the coordinator or a participant at the worst possible
// window. The cell then recovers the dead side from its log, settles the
// in-doubt set via the termination protocol, and checks what distributed
// atomicity owes the paper's model: every transfer commits everywhere or
// aborts everywhere (escrow conservation plus an exact per-cell balance),
// and the merged committed history passes the Comp-C reduction.

// e15Initial seeds the east account; transfers move value east → west,
// so east+west must equal it at every quiescent point.
const e15Initial = 10000

// e15CrashTxn is the root the armed crash fires on; cells need at least
// that many transfers.
const e15CrashTxn = "T5"

// e15Mix is one network-fault column: a fixed-seed injector plan, so a
// cell replays the same drops and partitions on every run.
type e15Mix struct {
	name string
	plan comm.NetFaultPlan
}

func e15Mixes() []e15Mix {
	return []e15Mix{
		{"none", comm.NetFaultPlan{}},
		{"drop+dup", comm.NetFaultPlan{Seed: 7, DropProb: 0.03, DupProb: 0.08}},
		{"delay+reorder", comm.NetFaultPlan{Seed: 11, DelayProb: 0.12, ReorderProb: 0.08, Delay: 300 * time.Microsecond}},
		{"partition", comm.NetFaultPlan{Seed: 13, PartitionProb: 0.01, PartitionWindow: 5 * time.Millisecond}},
	}
}

// e15Site is one crash column: a distributed crash site plus the
// participant it targets (coordinator sites leave part empty).
type e15Site struct {
	name string
	site string
	part string
}

func e15Sites() []e15Site {
	return []e15Site{
		{"none", "", ""},
		{"coord-pre", sched.DistCrashCoordPre, ""},
		{"coord-post", sched.DistCrashCoordPost, ""},
		{"part-prepare", sched.DistCrashPartPrepare, "east"},
		{"part-decide", sched.DistCrashPartDecide, "east"},
	}
}

func e15Transfer(i int) (sched.Invocation, int64) {
	amt := int64(i%7 + 1)
	return sched.Invocation{Component: "bank", Steps: []sched.Step{
		transferLeg("east", "acct", -amt),
		transferLeg("west", "acct", amt),
	}}, amt
}

// E15NetChaos runs the network-chaos matrix and renders one row per cell.
func E15NetChaos(cfg RunConfig) *Table {
	t := &Table{
		ID:    "E15",
		Title: fmt.Sprintf("Distributed 2PC under network chaos: protocol × fault mix × crash site (%d transfers per cell)", cfg.Roots),
		Header: []string{"protocol", "faults", "crash", "committed", "retries", "recovered",
			"lost msgs", "dup msgs", "atomicity", "verdict"},
	}
	for _, p := range []sched.Protocol{sched.Hybrid, sched.Global2PL} {
		for _, mix := range e15Mixes() {
			for _, site := range e15Sites() {
				row, err := runE15Cell(p, mix, site, cfg.Roots)
				if err != nil {
					t.AddRow(p.String(), mix.name, site.name, "error", "-", "-", "-", "-", "-", err.Error())
					continue
				}
				t.AddRow(row...)
			}
		}
	}
	t.Note = "expected: every cell atomic (transfer sum conserved and the west balance exactly the sum of " +
		"decided transfers — a coordinator crash before the decision force presumes abort, after it the " +
		"recovered coordinator re-delivers the commit; participant crashes recover their in-doubt " +
		"transactions from the prepare/decision records) and every merged history Comp-C; lost messages " +
		"are absorbed by RPC retry, duplicates by participant dedup"
	return t
}

// runE15Cell runs one cell: transfers submitted sequentially so the
// armed crash lands deterministically on e15CrashTxn, a watcher
// recovering any crashed participant (a dead participant surfaces to
// the coordinator only as RPC timeouts), and inline coordinator
// recovery when Submit reports ErrCrashed.
func runE15Cell(p sched.Protocol, mix e15Mix, site e15Site, roots int) ([]any, error) {
	dir, err := os.MkdirTemp("", "compositetx-e15-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	cl, err := sched.StartCluster(sched.DistConfig{
		Protocol:  p,
		Topo:      sched.BankTopology(),
		NetFaults: mix.plan,
		WALRoot:   dir,
		SyncEvery: 8,
		// E15 runs with the coalesced force path on: the whole chaos matrix
		// re-proves atomicity and Comp-C with group commit + message
		// coalescing enabled, not just the per-txn-fsync configuration.
		GroupCommit: true,
		RPCTimeout:  15 * time.Millisecond, RPCRetries: 3,
		LockWait:     100 * time.Millisecond,
		MaxRetries:   60,
		AbandonAfter: 200 * time.Millisecond, QueryAfter: 40 * time.Millisecond,
		SweepEvery: 10 * time.Millisecond,
		Seeds:      map[string]map[string]int64{"east": {"acct": e15Initial}},
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	if site.site != "" {
		cl.SetCrash(sched.DistCrash{Txn: e15CrashTxn, Site: site.site, Part: site.part})
	}

	var recovered atomic.Int64
	var watchErr atomic.Value
	stop := make(chan struct{})
	var stopOnce sync.Once
	defer stopOnce.Do(func() { close(stop) })
	if site.part != "" {
		go func() {
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					for _, name := range cl.CrashedParticipants() {
						if err := cl.RecoverParticipant(name); err != nil {
							watchErr.CompareAndSwap(nil, err)
							return
						}
						recovered.Add(1)
					}
				}
			}
		}()
	}

	committed := 0
	var expectWest int64
	for i := 1; i <= roots; i++ {
		name := fmt.Sprintf("T%d", i)
		prog, amt := e15Transfer(i)
		_, err := cl.Submit(name, prog)
		switch {
		case err == nil:
			committed++
			expectWest += amt
		case errors.Is(err, sched.ErrCrashed):
			if err := cl.RecoverCoordinator(); err != nil {
				return nil, fmt.Errorf("%s: recover coordinator: %w", name, err)
			}
			recovered.Add(1)
			if site.site == sched.DistCrashCoordPost {
				// The decision was forced before the crash: the recovered
				// coordinator re-delivers the commit, so the transfer lands.
				expectWest += amt
			}
		default:
			return nil, fmt.Errorf("%s: %w", name, err)
		}
	}

	if err := cl.Settle(10 * time.Second); err != nil {
		return nil, err
	}
	if e, _ := watchErr.Load().(error); e != nil {
		return nil, e
	}

	east, west := cl.StoreSnapshot("east")["acct"], cl.StoreSnapshot("west")["acct"]
	atomicity := "atomic"
	if east+west != e15Initial || west != expectWest {
		atomicity = fmt.Sprintf("VIOLATED (east=%d west=%d want-west=%d)", east, west, expectWest)
	}
	v, err := cl.Audit()
	if err != nil {
		return nil, err
	}
	verdict := "Comp-C"
	if !v.Correct {
		verdict = "VIOLATION (Comp-C)"
	}
	m := cl.Metrics()
	return []any{
		p.String(), mix.name, site.name,
		committed, int(m.Retries), int(recovered.Load()),
		int64(m.Net.Dropped + m.Net.PartDrops), int64(m.Net.Duplicated),
		atomicity, verdict,
	}, nil
}

// DefaultNetChaosConfig sizes E15 for compbench: enough transfers per
// cell to put real 2PC traffic through the injector, across 40 cells.
func DefaultNetChaosConfig() RunConfig {
	return RunConfig{Roots: 12, Clients: 1, Seed: 7}
}

// DistBenchmarks times the distributed commit path for
// BENCH_checker.json: end-to-end 2PC latency per committed transfer on
// each transport, against a durable two-branch cluster.
func DistBenchmarks() []BenchResult {
	const minDur = 100 * time.Millisecond
	var out []BenchResult
	for _, transport := range []string{"chan", "tcp"} {
		dir, err := os.MkdirTemp("", "compositetx-distbench-*")
		if err != nil {
			panic(err)
		}
		cl, err := sched.StartCluster(sched.DistConfig{
			Protocol:  sched.Hybrid,
			Topo:      sched.BankTopology(),
			Transport: transport,
			WALRoot:   dir,
			SyncEvery: 64,
			Seeds:     map[string]map[string]int64{"east": {"acct": e15Initial}},
		})
		if err != nil {
			panic(err)
		}
		i := 0
		ns := timeOp(minDur, func() {
			i++
			prog, _ := e15Transfer(i)
			if _, err := cl.Submit(fmt.Sprintf("B%d", i), prog); err != nil {
				panic(err)
			}
		})
		if err := cl.Settle(5 * time.Second); err != nil {
			panic(err)
		}
		commits := float64(cl.Metrics().Commits)
		cl.Close()
		os.RemoveAll(dir)
		out = append(out, BenchResult{
			Name:    "BenchmarkDistCommit/" + transport,
			NsPerOp: ns,
			Metrics: map[string]float64{"commits": commits},
		})
	}
	return out
}
