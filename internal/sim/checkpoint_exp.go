package sim

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"compositetx/internal/data"
	"compositetx/internal/sched"
)

// E14 — bounded-memory streaming certification. A long-running certified
// runtime accumulates three unbounded structures: the certifier's forest,
// the stores' MVCC version chains, and the WAL. The checkpoint machinery
// (sched.EnableCheckpoints) folds, compacts and truncates all three at a
// fixed cadence, so the soak compares two modes over growing commit
// horizons: "unbounded" (no checkpoints — memory and recovery grow with
// the horizon) and "checkpoint" (both stay flat, bounded by the cadence).
// Each cell also recovers from its WAL at the end and reports how much of
// the log the recovery actually replayed — with checkpoints, the tail
// since the last marker rather than the whole history.

// CheckpointSoakConfig parameterizes the E14 soak.
type CheckpointSoakConfig struct {
	// Horizons are the commit counts per cell; the headline claim is that
	// the checkpointed columns stay flat as the horizon grows 10x.
	Horizons []int
	// Every is the checkpoint cadence (commits per checkpoint).
	Every     int
	Clients   int
	SyncEvery int
	Seed      int64
	CPUs      int
}

// DefaultCheckpointConfig is the configuration used by compbench: a 10x
// horizon spread at a fixed cadence. The long unbounded cell is the
// budget ceiling — its certifier cost grows super-linearly with the
// horizon (the pathology E14 exists to show), so the spread is sized to
// keep the whole grid to a few minutes.
func DefaultCheckpointConfig() CheckpointSoakConfig {
	return CheckpointSoakConfig{
		Horizons:  []int{100, 1000},
		Every:     25,
		Clients:   8,
		SyncEvery: 64,
		Seed:      23,
		CPUs:      8,
	}
}

// ckPoint is one measured cell of the soak.
type ckPoint struct {
	horizon     int
	mode        string // "unbounded", "checkpoint"
	tps         float64
	p95         time.Duration
	liveHeap    uint64 // HeapAlloc after a forced GC at end of run (bytes)
	checkpoints int64
	walRecords  int    // records on disk at the end of the run
	tailRecords int    // records recovery actually replayed
	recoverTime time.Duration
	recovered   bool // recovery verdict Comp-C and commit count exact
}

// bankSoakPrograms is the E11 bank transfer mix (4 transfers : 1 audit
// read) sized to the horizon.
func bankSoakPrograms(n int) []sched.Invocation {
	progs := make([]sched.Invocation, n)
	for i := range progs {
		amt := int64(i%7 + 1)
		if i%5 == 4 {
			progs[i] = sched.Invocation{Component: "bank", Steps: []sched.Step{
				{Invoke: &sched.Invocation{Component: "east", Item: "acct", Mode: data.ModeRead,
					Steps: []sched.Step{{Op: &data.Op{Mode: data.ModeRead, Item: "acct"}}}}},
			}}
			continue
		}
		progs[i] = sched.Invocation{Component: "bank", Steps: []sched.Step{
			transferLeg("east", "acct", -amt),
			transferLeg("west", "acct", amt),
		}}
	}
	return progs
}

// measureCheckpointCell runs one (horizon, mode) cell: a certified,
// WAL-backed bank-transfer soak, then a recovery from the resulting log.
func measureCheckpointCell(cfg CheckpointSoakConfig, horizon int, mode string) (ckPoint, error) {
	pt := ckPoint{horizon: horizon, mode: mode}
	dir, err := os.MkdirTemp("", "compositetx-e14-*")
	if err != nil {
		return pt, err
	}
	defer os.RemoveAll(dir)

	const initial = 1 << 20
	topo := sched.BankTopology()
	rt := topo.NewRuntime(sched.Hybrid)
	rt.Store("east").Set("acct", initial)
	if err := rt.EnableCertify(); err != nil {
		return pt, err
	}
	if err := rt.EnableWAL(sched.WALConfig{Dir: dir, SyncEvery: cfg.SyncEvery, SegmentBytes: 1 << 16}); err != nil {
		return pt, err
	}
	if mode == "checkpoint" {
		rt.EnableCheckpoints(sched.CheckpointConfig{Every: cfg.Every})
	}

	progs := bankSoakPrograms(horizon)
	lat, elapsed, err := runTimed(rt, progs, cfg.Clients)
	if err != nil {
		return pt, err
	}
	m := rt.Metrics()
	pt.tps = float64(m.Commits) / elapsed.Seconds()
	pt.p95 = percentile(lat, 0.95)
	// Heap gauge: the live set the runtime retains at end of run, after a
	// forced GC. (Peak HeapAlloc sampled during the run tracks allocation
	// rate, not retained state — the fast checkpointed cells would read
	// *higher* than the slow unbounded ones.)
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	pt.liveHeap = ms.HeapAlloc
	pt.checkpoints = m.CheckpointsTaken
	if err := rt.CloseWAL(); err != nil {
		return pt, err
	}

	t0 := time.Now()
	rec, err := sched.Recover(sched.WALConfig{Dir: dir})
	if err != nil {
		return pt, err
	}
	pt.recoverTime = time.Since(t0)
	rec.Runtime.CloseWAL()
	pt.walRecords = rec.Stats.Records
	pt.tailRecords = rec.Stats.Records - rec.Stats.Skipped
	total := rec.Runtime.Store("east").Get("acct") + rec.Runtime.Store("west").Get("acct")
	pt.recovered = rec.Verdict.Correct && rec.Stats.Committed == horizon && total == initial
	return pt, nil
}

// checkpointCells measures the full (horizon × mode) grid.
func checkpointCells(cfg CheckpointSoakConfig) ([]ckPoint, error) {
	if cfg.CPUs > 0 {
		prev := runtime.GOMAXPROCS(cfg.CPUs)
		defer runtime.GOMAXPROCS(prev)
	}
	var out []ckPoint
	for _, horizon := range cfg.Horizons {
		for _, mode := range []string{"unbounded", "checkpoint"} {
			pt, err := measureCheckpointCell(cfg, horizon, mode)
			if err != nil {
				return nil, fmt.Errorf("E14 %s/%d: %w", mode, horizon, err)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// E14Checkpoint renders the bounded-memory soak table.
func E14Checkpoint(cfg CheckpointSoakConfig) *Table {
	t := &Table{
		ID: "E14",
		Title: fmt.Sprintf("Bounded-memory streaming certification (cadence %d, %d clients, certified bank transfers)",
			cfg.Every, cfg.Clients),
		Header: []string{"horizon", "mode", "tx/s", "p95", "live heap", "checkpoints", "log records", "replayed at recovery", "recovery", "verdict"},
	}
	points, err := checkpointCells(cfg)
	if err != nil {
		t.AddRow("error", err.Error(), "-", "-", "-", "-", "-", "-", "-", "-")
		return t
	}
	for _, pt := range points {
		verdict := "Comp-C, conserved"
		if !pt.recovered {
			verdict = "VIOLATION"
		}
		t.AddRow(
			pt.horizon,
			pt.mode,
			fmt.Sprintf("%.0f", pt.tps),
			pt.p95.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f MB", float64(pt.liveHeap)/(1<<20)),
			pt.checkpoints,
			pt.walRecords,
			pt.tailRecords,
			pt.recoverTime.Round(time.Millisecond).String(),
			verdict,
		)
	}
	t.Note = "expected: in the unbounded rows the retained heap, on-disk log, records replayed at " +
		"recovery, and recovery time all grow ~10x with the horizon — and throughput collapses, because " +
		"the certifier's per-commit cost grows with the unfolded forest; in the checkpointed rows all of " +
		"them stay flat — bounded by the cadence, not the horizon — recovery replays only the tail since " +
		"the last marker, and every cell still recovers to a Comp-C-correct, conserved state"
	return t
}

// CheckpointBenchmarks is the machine-readable face of E14 for
// BENCH_checker.json: per-cell throughput plus the boundedness ratios the
// CI gate tracks (tail-records and recovery-time growth across the 10x
// horizon spread).
func CheckpointBenchmarks() []BenchResult {
	cfg := DefaultCheckpointConfig()
	points, err := checkpointCells(cfg)
	if err != nil {
		panic(err)
	}
	// Growth across the horizon spread, per mode.
	small := map[string]ckPoint{}
	var out []BenchResult
	for _, pt := range points {
		metrics := map[string]float64{
			"txPerSec":     pt.tps,
			"p95Ns":        float64(pt.p95.Nanoseconds()),
			"liveHeapMB":   float64(pt.liveHeap) / (1 << 20),
			"checkpoints":  float64(pt.checkpoints),
			"walRecords":   float64(pt.walRecords),
			"tailRecords":  float64(pt.tailRecords),
			"recoverNs":    float64(pt.recoverTime.Nanoseconds()),
			"horizon":      float64(pt.horizon),
			"correct":      b2f(pt.recovered),
			"cadenceEvery": float64(cfg.Every),
		}
		if base, ok := small[pt.mode]; ok && base.tailRecords > 0 {
			metrics["tailGrowth"] = float64(pt.tailRecords) / float64(base.tailRecords)
			metrics["recoverGrowth"] = float64(pt.recoverTime) / float64(base.recoverTime)
			metrics["heapGrowth"] = float64(pt.liveHeap) / float64(base.liveHeap)
		} else {
			small[pt.mode] = pt
		}
		out = append(out, BenchResult{
			Name:    fmt.Sprintf("E14Checkpoint/horizon=%d/mode=%s", pt.horizon, pt.mode),
			NsPerOp: 1e9 / pt.tps,
			Metrics: metrics,
		})
	}
	return out
}
