// Package sim is the experiment harness: it regenerates every artifact in
// the reproduction's experiment index (DESIGN.md §7, EXPERIMENTS.md) as a
// formatted table (E1–E15). The cmd/compbench tool and the top-level benchmarks are
// thin wrappers around this package.
package sim

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table is one experiment artifact: a titled grid of rows. The JSON shape
// is what cmd/compbench -json writes into BENCH_checker.json.
type Table struct {
	ID     string     `json:"id"` // experiment id, e.g. "E4"
	Title  string     `json:"title"`
	Note   string     `json:"note,omitempty"` // one-paragraph interpretation of the result
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if w := utf8.RuneCountInString(c); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "  note: %s\n", t.Note)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// RenderAll runs every experiment and renders the tables in order.
func RenderAll(w io.Writer) {
	for _, t := range All() {
		t.Render(w)
	}
}

// All runs every experiment with its default parameters.
func All() []*Table {
	return []*Table{
		E1Figure3(),
		E2Figure4(),
		E3Theorems(150),
		E4Containment(400),
		E5Commutativity(300),
		E6Protocols(DefaultRunConfig()),
		E7CheckerScaling(),
		E8Coverage(12),
		E9Deadlock(DefaultRunConfig()),
		E12Incremental(DefaultRunConfig()),
	}
}
