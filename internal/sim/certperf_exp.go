package sim

import (
	"fmt"
	"sync"
	"time"

	"compositetx/internal/data"
	"compositetx/internal/sched"
)

// E17 — certified commit throughput: conflict ratio × concurrency ×
// certifier mode. Every cell drives the bank topology with N concurrent
// clients, each committing multi-leg transactions on its own private
// account items (ModeIncr legs — commuting, so disjoint by the mode
// table) plus, on a deterministic fraction of its transactions, one
// ModeWrite op on a single shared hot item (a genuine cross-transaction
// conflict every certifier mode must order). The modes compared:
//
//	uncertified    — EnableCertify off: the cost ceiling.
//	serial         — CertifyOptions.Serial: the PR-4 path, delta build +
//	                 full admission inline under the global runtime mutex.
//	pipeline       — the default three-stage pipeline: out-of-lock delta
//	                 build, ticketed admission, footprint fast path.
//	pipeline-nofast— the pipeline with the fast path disabled, isolating
//	                 how much of the win is the pipeline vs the skip.
//
// The measurement is commits/s; every certified cell must commit all its
// transactions with zero certify-rejects (the workload is generated
// conflict-serializable — clients conflict, but never violate Comp-C
// under a sound protocol). The headline (BENCH_checker.json, gated by
// `make certperf`) is pipeline ≥2x serial at 8 clients on the
// ≤10%-conflict mix.

// CertPerfConfig sizes the E17 matrix.
type CertPerfConfig struct {
	ConflictPct []int // percent of each client's txns touching the hot item
	Clients     []int // concurrent clients per cell
	PerClient   int   // transactions each client submits
	Legs        int   // private ModeIncr legs per transaction
	Reps        int   // best-of-N reps per cell (0 = 2)
}

// DefaultCertPerfConfig sizes E17 for compbench.
func DefaultCertPerfConfig() CertPerfConfig {
	return CertPerfConfig{
		ConflictPct: []int{0, 10, 50},
		Clients:     []int{1, 4, 8},
		PerClient:   60,
		Legs:        12,
		Reps:        2,
	}
}

// certMode names one E17 certifier configuration.
type certMode struct {
	name string
	on   bool // EnableCertify
	opts sched.CertifyOptions
}

func certModes() []certMode {
	return []certMode{
		{name: "uncertified"},
		{name: "serial", on: true, opts: sched.CertifyOptions{Serial: true}},
		{name: "pipeline", on: true},
		{name: "pipeline-nofast", on: true, opts: sched.CertifyOptions{NoFastPath: true}},
	}
}

// e17Point is one measured cell.
type e17Point struct {
	mode      string
	conflict  int
	clients   int
	committed int
	tps       float64
	p50, p99  time.Duration
	fastPath  int64
	rejects   int64
	ok        bool // all txns committed, zero rejects
}

// e17Program builds client c's transaction i: legs commuting increments
// on the client's private east/west items, plus — when the deterministic
// conflict schedule says so — one write on the shared hot item.
func e17Program(c, i, legs, conflictPct int) sched.Invocation {
	// Evenly spread: true for exactly conflictPct% of each client's txns.
	hot := conflictPct > 0 && (i*conflictPct)%100 < conflictPct
	steps := make([]sched.Step, 0, legs+1)
	for l := 0; l < legs; l++ {
		comp := "east"
		if l%2 == 1 {
			comp = "west"
		}
		steps = append(steps, transferLeg(comp, fmt.Sprintf("acct%d-%d", c, l%4), 1))
	}
	if hot {
		steps = append(steps, sched.Step{Invoke: &sched.Invocation{
			Component: "east", Item: "hot", Mode: data.ModeWrite,
			Steps: []sched.Step{{Op: &data.Op{Mode: data.ModeWrite, Item: "hot", Arg: int64(i)}}},
		}})
	}
	return sched.Invocation{Component: "bank", Steps: steps}
}

// runE17Cell measures one cell: clients × perClient transactions under
// one certifier mode.
func runE17Cell(m certMode, conflictPct, clients, perClient, legs int) (e17Point, error) {
	pt := e17Point{mode: m.name, conflict: conflictPct, clients: clients}
	rt := sched.BankTopology().NewRuntime(sched.Hybrid)
	if m.on {
		rt.CertOpts = m.opts
		if err := rt.EnableCertify(); err != nil {
			return pt, err
		}
	}
	// Sustained load runs checkpointed (the PR-6 bounded-memory cadence):
	// periodic folds keep the certifier engine and the recorder at the
	// live tail, so every mode — uncertified included — is measured at
	// its steady state instead of against an unboundedly growing history.
	rt.EnableCheckpoints(sched.CheckpointConfig{Every: 64})

	// Programs and transaction names are built before the clock starts:
	// the cell measures the runtime's commit path, not the workload
	// generator's string formatting.
	type e17Txn struct {
		name string
		prog sched.Invocation
	}
	txns := make([][]e17Txn, clients)
	for c := 0; c < clients; c++ {
		txns[c] = make([]e17Txn, perClient)
		for i := 0; i < perClient; i++ {
			txns[c][i] = e17Txn{
				name: fmt.Sprintf("C%d-%d", c, i),
				prog: e17Program(c, i, legs, conflictPct),
			}
		}
	}

	var (
		mu   sync.Mutex
		lat  = make([]time.Duration, 0, clients*perClient)
		errc = make(chan error, clients)
		wg   sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mine := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				if _, err := rt.Submit(txns[c][i].name, txns[c][i].prog); err != nil {
					errc <- fmt.Errorf("client %d txn %d: %w", c, i, err)
					return
				}
				mine = append(mine, time.Since(t0))
			}
			mu.Lock()
			lat = append(lat, mine...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return pt, err
	default:
	}

	met := rt.Metrics()
	pt.committed = int(met.Commits)
	pt.tps = float64(met.Commits) / elapsed.Seconds()
	pt.p50 = percentile(lat, 0.50)
	pt.p99 = percentile(lat, 0.99)
	pt.fastPath = met.CertifyFastPath
	pt.rejects = met.CertifyRejects
	pt.ok = pt.committed == clients*perClient && pt.rejects == 0
	return pt, nil
}

// measureE17 runs one cell reps times and keeps the best-throughput rep
// (the E13/E16 methodology); the cell is ok only if EVERY rep was.
func measureE17(m certMode, conflictPct, clients, perClient, legs, reps int) (e17Point, error) {
	if reps < 1 {
		reps = 1
	}
	var best e17Point
	ok := true
	for i := 0; i < reps; i++ {
		pt, err := runE17Cell(m, conflictPct, clients, perClient, legs)
		if err != nil {
			return pt, err
		}
		ok = ok && pt.ok
		if i == 0 || pt.tps > best.tps {
			best = pt
		}
	}
	best.ok = ok
	return best, nil
}

// E17CertThroughput runs the matrix and renders one row per cell.
func E17CertThroughput(cfg CertPerfConfig) *Table {
	t := &Table{
		ID: "E17",
		Title: fmt.Sprintf("Certified commit throughput: conflict ratio × clients × certifier mode (%d txns × %d legs per client)",
			cfg.PerClient, cfg.Legs),
		Header: []string{"conflict%", "clients", "mode", "committed", "tx/s", "p50", "p99", "fast-path", "verdict"},
	}
	reps := cfg.Reps
	if reps <= 0 {
		reps = 2
	}
	// serial[conflict/clients] and uncert[...] anchor the speedup and
	// overhead notes.
	serial := map[string]float64{}
	uncert := map[string]float64{}
	var speedups, overheads []string
	for _, conflict := range cfg.ConflictPct {
		for _, clients := range cfg.Clients {
			for _, m := range certModes() {
				pt, err := measureE17(m, conflict, clients, cfg.PerClient, cfg.Legs, reps)
				if err != nil {
					t.AddRow(conflict, clients, m.name, "error", "-", "-", "-", "-", err.Error())
					continue
				}
				verdict := "ok"
				if !pt.ok {
					verdict = fmt.Sprintf("LOST COMMITS (%d committed, %d rejects)", pt.committed, pt.rejects)
				}
				fast := "-"
				if m.on {
					fast = fmt.Sprintf("%d", pt.fastPath)
				}
				t.AddRow(conflict, clients, m.name, pt.committed,
					fmt.Sprintf("%.0f", pt.tps),
					pt.p50.Round(time.Microsecond).String(),
					pt.p99.Round(time.Microsecond).String(),
					fast, verdict)
				key := fmt.Sprintf("%d%%/%d", conflict, clients)
				switch m.name {
				case "uncertified":
					uncert[key] = pt.tps
				case "serial":
					serial[key] = pt.tps
				case "pipeline":
					if b := serial[key]; b > 0 {
						speedups = append(speedups, fmt.Sprintf("%s %.1fx", key, pt.tps/b))
					}
					if u := uncert[key]; u > 0 {
						overheads = append(overheads, fmt.Sprintf("%s %.2fx", key, u/pt.tps))
					}
				}
			}
		}
	}
	t.Note = "expected: the pipeline pulls ahead of the serial path as clients grow (delta construction " +
		"runs out of lock and disjoint commits take the fast path past the engine entirely), converging " +
		"toward the uncertified ceiling on low-conflict mixes; every certified cell commits everything with " +
		"zero rejects. pipeline-vs-serial speedup: " + fmt.Sprint(speedups) +
		"; uncertified-vs-pipeline overhead: " + fmt.Sprint(overheads)
	return t
}

// CertPerfBenchmarks measures the E17 headline cells for
// BENCH_checker.json: 8 clients across the conflict spread, all four
// modes — the pipeline/serial tps ratio at ≤10% conflict is the
// committed ≥2x claim, and the uncertified cells pin the certification
// overhead ratio in the perf trajectory.
func CertPerfBenchmarks() []BenchResult {
	const clients, perClient, legs, reps = 8, 60, 12, 2
	var out []BenchResult
	for _, conflict := range []int{0, 10, 50} {
		serialTps, uncertTps := 0.0, 0.0
		for _, m := range certModes() {
			pt, err := measureE17(m, conflict, clients, perClient, legs, reps)
			if err != nil {
				panic(err)
			}
			if !pt.ok {
				panic(fmt.Sprintf("E17 bench cell %s/%d%% lost commits or rejected", m.name, conflict))
			}
			metrics := map[string]float64{
				"tps":   pt.tps,
				"p50Ns": float64(pt.p50.Nanoseconds()),
				"p99Ns": float64(pt.p99.Nanoseconds()),
			}
			switch m.name {
			case "uncertified":
				uncertTps = pt.tps
			case "serial":
				serialTps = pt.tps
			default:
				metrics["fastPathPct"] = 100 * float64(pt.fastPath) / float64(pt.committed)
				if serialTps > 0 {
					metrics["speedupVsSerial"] = pt.tps / serialTps
				}
				if uncertTps > 0 {
					metrics["overheadVsUncertified"] = uncertTps / pt.tps
				}
			}
			out = append(out, BenchResult{
				Name:    fmt.Sprintf("E17CertThroughput/%s/conflict=%d/clients=%d", m.name, conflict, clients),
				NsPerOp: float64(pt.p50.Nanoseconds()),
				Metrics: metrics,
			})
		}
	}
	return out
}
