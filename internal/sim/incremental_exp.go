package sim

import (
	"fmt"
	"time"

	"compositetx/internal/front"
	"compositetx/internal/model"
	"compositetx/internal/sched"
)

// E12 — online certification cost. Two questions, one per half of the
// table:
//
//  1. Checker side: a certifier must re-decide Comp-C after every root
//     commit. The naive way re-runs the full reduction on the whole
//     grown prefix each time (O(N) work per commit, O(N·R) per run); the
//     incremental engine (front.Incremental) appends the commit's delta
//     and touches only the affected reduction state. The table reports
//     amortized per-commit cost of both on the same commit streams and
//     the speedup — the tentpole's ≥10x-at-256-nodes acceptance gate.
//
//  2. Runtime side: what live certification costs end-to-end. The same
//     workload runs on the prototype runtime with certification off and
//     on (Runtime.EnableCertify); the ratio of throughputs is the price
//     of rejecting violations at commit time instead of detecting them
//     post-hoc.

// incrementalCost measures one commit stream both ways: streaming the
// per-root deltas of sys through a fresh incremental engine (Admit, the
// certification hot path — on success it decides without materializing a
// verdict), and the naive apply-then-full-recheck loop a certifier would
// otherwise run. Costs are amortized ns per commit.
type incrementalCost struct {
	nodes   int
	commits int
	incNs   float64
	fullNs  float64
}

func (c incrementalCost) speedup() float64 { return c.fullNs / c.incNs }

func measureIncremental(sys *model.System, minDur time.Duration) incrementalCost {
	deltas := front.DecomposeByRoot(sys)
	cost := incrementalCost{nodes: sys.NumNodes(), commits: len(deltas)}

	cost.incNs = timeOp(minDur, func() {
		inc := front.NewIncremental(front.IncrementalOptions{})
		for _, d := range deltas {
			if v, err := inc.Admit(d); err != nil {
				panic(err)
			} else if v != nil {
				panic("E12 stream must be violation-free: " + v.Reason)
			}
		}
	}) / float64(len(deltas))

	cost.fullNs = timeOp(minDur, func() {
		prefix := model.NewSystem()
		for _, d := range deltas {
			d.Apply(prefix)
			if _, err := front.Check(prefix, front.Options{}); err != nil {
				panic(err)
			}
		}
	}) / float64(len(deltas))
	return cost
}

// e12Streams are the commit streams of the checker half: recorded
// executions of the prototype runtime on the diamond under the hybrid
// protocol — exactly what a live certifier sees, and correct by
// construction (random order-generated workloads are essentially never
// Comp-C, and a violating prefix would poison the engine into
// full-recheck delegation, measuring nothing). Short OLTP-style
// transactions (two steps) keep commits fine-grained, the regime online
// certification is for.
func e12Streams() []*model.System {
	var out []*model.System
	for _, roots := range []int{32, 64, 128, 256} {
		topo := sched.DiamondTopology()
		rt := topo.NewRuntime(sched.Hybrid)
		progs := sched.GenPrograms(topo, sched.WorkloadParams{
			Roots: roots, StepsPerTx: 2, Items: 4,
			ReadRatio: 0.25, WriteRatio: 0.05, Seed: 7,
		})
		if err := sched.Run(rt, progs, 16); err != nil {
			panic(err)
		}
		out = append(out, rt.RecordedSystem())
	}
	return out
}

// certifyCost is one runtime workload timed with certification off/on.
type certifyCost struct {
	topo      string
	commits   int64
	plainTps  float64
	certTps   float64
	rejects   int64
	certified bool // the certified run finished and stayed correct
}

func (c certifyCost) overhead() float64 {
	if c.certTps == 0 {
		return 0
	}
	return c.plainTps / c.certTps
}

func measureCertify(name string, mk func() *sched.Topology, cfg RunConfig) certifyCost {
	out := certifyCost{topo: name}
	for _, certify := range []bool{false, true} {
		topo := mk()
		rt := topo.NewRuntime(sched.Hybrid)
		if certify {
			if err := rt.EnableCertify(); err != nil {
				panic(err)
			}
		}
		progs := sched.GenPrograms(topo, sched.WorkloadParams{
			Roots: cfg.Roots, StepsPerTx: cfg.StepsPerTx, Items: cfg.Items,
			ReadRatio: cfg.ReadRatio, WriteRatio: cfg.WriteRatio, Seed: cfg.Seed,
		})
		if cfg.StepDelay > 0 {
			progs = sched.Jitter(progs, cfg.StepDelay, cfg.Seed)
		}
		start := time.Now()
		err := sched.Run(rt, progs, cfg.Clients)
		elapsed := time.Since(start)
		if err != nil {
			return out
		}
		m := rt.Metrics()
		tps := float64(m.Commits) / elapsed.Seconds()
		if certify {
			out.certTps = tps
			out.rejects = m.CertifyRejects
			out.commits = m.Commits
			sys := rt.RecordedSystem()
			if verr := sys.Validate(); verr == nil {
				if ok, cerr := front.IsCompC(sys); cerr == nil && ok {
					out.certified = true
				}
			}
		} else {
			out.plainTps = tps
		}
	}
	return out
}

// E12Incremental renders the online-certification cost table.
func E12Incremental(cfg RunConfig) *Table {
	const minDur = 100 * time.Millisecond
	t := &Table{
		ID:     "E12",
		Title:  "Online certification: incremental engine vs full recheck, and runtime overhead",
		Header: []string{"scenario", "size", "baseline", "incremental/certified", "ratio"},
	}
	for _, sys := range e12Streams() {
		c := measureIncremental(sys, minDur)
		t.AddRow(
			"per-commit Comp-C recheck (diamond)",
			fmt.Sprintf("%d nodes / %d commits", c.nodes, c.commits),
			fmt.Sprintf("full %s/commit", time.Duration(c.fullNs).Round(time.Microsecond)),
			fmt.Sprintf("inc %s/commit", time.Duration(c.incNs).Round(time.Microsecond)),
			fmt.Sprintf("%.1fx faster", c.speedup()),
		)
	}
	topos := []struct {
		name string
		mk   func() *sched.Topology
	}{
		{"stack(3)", func() *sched.Topology { return sched.StackTopology(3) }},
		{"bank", sched.BankTopology},
		{"diamond", sched.DiamondTopology},
	}
	for _, tc := range topos {
		c := measureCertify(tc.name, tc.mk, cfg)
		verdict := "Comp-C"
		if !c.certified {
			verdict = "VIOLATION"
		}
		t.AddRow(
			fmt.Sprintf("certified runtime (%s, hybrid)", c.topo),
			fmt.Sprintf("%d commits / %d rejects", c.commits, c.rejects),
			fmt.Sprintf("plain %.0f tx/s", c.plainTps),
			fmt.Sprintf("certified %.0f tx/s, %s", c.certTps, verdict),
			fmt.Sprintf("%.2fx overhead", c.overhead()),
		)
	}
	t.Note = "expected: the incremental engine turns per-commit certification from O(history) to " +
		"amortized O(delta) — ≥10x per commit by ~256 nodes and growing with history length — " +
		"while end-to-end certified throughput pays roughly 1.5-2x: the certifier serializes every " +
		"commit through one engine, so commits that used to overlap now queue at the admission point; " +
		"that is the measured price of rejecting violations at commit time instead of detecting them post-hoc"
	return t
}

// IncrementalBenchmarks is the machine-readable face of E12's checker half
// for BENCH_checker.json: amortized per-commit cost of incremental
// certification vs full recheck on the same commit streams.
func IncrementalBenchmarks() []BenchResult {
	const minDur = 100 * time.Millisecond
	var out []BenchResult
	for _, sys := range e12Streams() {
		c := measureIncremental(sys, minDur)
		out = append(out, BenchResult{
			Name:    fmt.Sprintf("E12Incremental/nodes=%d", c.nodes),
			NsPerOp: c.incNs,
			Metrics: map[string]float64{
				"commits":     float64(c.commits),
				"fullNsPerOp": c.fullNs,
				"speedup":     c.speedup(),
				"nodes":       float64(c.nodes),
			},
		})
	}
	return out
}
