package sim

import (
	"fmt"
	"time"

	"compositetx/internal/criteria"
	"compositetx/internal/front"
	"compositetx/internal/history"
	"compositetx/internal/model"
	"compositetx/internal/workload"
)

// E1Figure3 replays the paper's incorrect execution (§3.6): the reduction
// reaches the level 2 front and then fails to construct an isolated
// execution for T1.
func E1Figure3() *Table {
	t := &Table{
		ID:     "E1",
		Title:  "Paper Figure 3: incorrect execution, reduction trace",
		Header: []string{"level", "front nodes", "observed pairs", "conflicts", "outcome"},
	}
	v, err := front.Check(front.Figure3System(), front.Options{KeepFronts: true})
	if err != nil {
		panic(err)
	}
	for i, f := range v.Fronts {
		t.AddRow(i, f.Len(), f.Obs.Len(), f.Con.Len(), "ok")
	}
	last := v.Steps[len(v.Steps)-1]
	t.AddRow(v.FailedLevel, "-", "-", "-", fmt.Sprintf("FAILED: %s (cycle %v)", last.Failure, last.Cycle))
	t.Note = "expected: failure constructing the level 3 front — \"no isolated execution for T1\"; " + v.Reason
	return t
}

// E2Figure4 replays the paper's correct execution (§3.7): the same
// leaf-level interference, but the common top schedule vouches for
// commutativity, the orders are forgotten, and the reduction reaches the
// level 3 front of root transactions.
func E2Figure4() *Table {
	t := &Table{
		ID:     "E2",
		Title:  "Paper Figure 4: correct execution, reduction trace",
		Header: []string{"level", "front nodes", "observed pairs", "conflicts", "outcome"},
	}
	v, err := front.Check(front.Figure4System(), front.Options{KeepFronts: true})
	if err != nil {
		panic(err)
	}
	for i, f := range v.Fronts {
		t.AddRow(i, f.Len(), f.Obs.Len(), f.Con.Len(), "ok")
	}
	t.AddRow("-", "-", "-", "-", fmt.Sprintf("CORRECT, serial witness %v", v.SerialOrder))
	t.Note = "expected: the level-2 orders between operations of the common schedule are forgotten " +
		"(observed pairs drop to 0 at level 3) and the execution is Comp-C"
	return t
}

// E3Theorems machine-checks Theorems 2–4 on random configurations:
// agreement between the special-case criteria and the general reduction.
// The general reduction side of every shape is evaluated in one
// front.CheckBatch call, so the sweep fans out across the available CPUs.
func E3Theorems(samples int) *Table {
	t := &Table{
		ID:     "E3",
		Title:  "Theorems 2-4: special-case criteria vs general reduction",
		Header: []string{"configuration", "criterion", "samples", "accepted", "rejected", "disagreements"},
	}
	shapes := []struct {
		name, criterion string
		gen             func(seed int64) *model.System
		crit            func(sys *model.System) (bool, error)
	}{
		{"stack", "SCC",
			func(seed int64) *model.System {
				return workload.Stack(workload.StackParams{
					Levels: 2 + int(seed%3), Roots: 2 + int(seed%2), Fanout: 2,
					ConflictRate: 0.15 + 0.5*float64(seed%4)/4, Seed: seed,
				}).Sys
			},
			criteria.IsSCC},
		{"fork", "FCC",
			func(seed int64) *model.System {
				return workload.Fork(workload.ForkParams{
					Branches: 2 + int(seed%3), Roots: 2 + int(seed%3), Fanout: 2, LeavesPerSub: 2,
					ConflictRate: 0.1 + 0.5*float64(seed%5)/5, Seed: seed,
				}).Sys
			},
			criteria.IsFCC},
		{"join", "JCC",
			func(seed int64) *model.System {
				return workload.Join(workload.JoinParams{
					Tops: 2 + int(seed%2), RootsPerTop: 1 + int(seed%2), Fanout: 2, LeavesPerSub: 2,
					ConflictRate: 0.1 + 0.5*float64(seed%5)/5, TopConflictRate: 0.15 * float64(seed%3),
					Seed: seed,
				}).Sys
			},
			criteria.IsJCC},
	}
	for _, sh := range shapes {
		systems := make([]*model.System, samples)
		for seed := int64(0); seed < int64(samples); seed++ {
			systems[seed] = sh.gen(seed)
		}
		verdicts := front.CheckBatch(systems, 0, front.Options{})
		acc, rej, dis := 0, 0, 0
		for i, sys := range systems {
			special, _ := sh.crit(sys)
			compC := verdicts[i].Err == nil && verdicts[i].Verdict.Correct
			switch {
			case special != compC:
				dis++
			case special:
				acc++
			default:
				rej++
			}
		}
		t.AddRow(sh.name, sh.criterion, samples, acc, rej, dis)
	}
	t.Note = "expected: zero disagreements in every configuration (Theorems 2, 3, 4)"
	return t
}

// E4Containment measures acceptance rates of LLSR, OPSR and SCC (= Comp-C
// on stacks) over random stack executions per conflict rate: the strict
// containment LLSR, OPSR ⊊ SCC the introduction claims.
func E4Containment(samples int) *Table {
	t := &Table{
		ID:     "E4",
		Title:  "Correctness-class containment on stacks: acceptance rates",
		Header: []string{"conflict rate", "samples", "LLSR %", "OPSR %", "SCC=Comp-C %", "LLSR⊆SCC", "OPSR⊆SCC", "Comp-C agrees"},
	}
	for _, rate := range []float64{0.1, 0.2, 0.4, 0.6, 0.8} {
		llsr, opsr, scc := 0, 0, 0
		llsrOK, opsrOK := true, true
		systems := make([]*model.System, samples)
		sccRes := make([]bool, samples)
		for seed := int64(0); seed < int64(samples); seed++ {
			exec := workload.Stack(workload.StackParams{
				Levels: 2 + int(seed%2), Roots: 2 + int(seed%2), Fanout: 2,
				ConflictRate: rate, Seed: seed + int64(rate*1e6),
			})
			systems[seed] = exec.Sys
			l, _ := criteria.IsLLSR(exec.Sys)
			o, _ := criteria.IsOPSR(exec.Sys, exec.Seqs)
			s, _ := criteria.IsSCC(exec.Sys)
			sccRes[seed] = s
			if l {
				llsr++
			}
			if o {
				opsr++
			}
			if s {
				scc++
			}
			if l && !s {
				llsrOK = false
			}
			if o && !s {
				opsrOK = false
			}
		}
		// Theorem 2 says SCC = Comp-C on stacks: re-derive the column with
		// the general reduction, batched across CPUs, and record agreement.
		agree := true
		for i, r := range front.CheckBatch(systems, 0, front.Options{}) {
			if r.Err != nil || r.Verdict.Correct != sccRes[i] {
				agree = false
			}
		}
		pct := func(n int) string { return fmt.Sprintf("%.1f", 100*float64(n)/float64(samples)) }
		t.AddRow(rate, samples, pct(llsr), pct(opsr), pct(scc), llsrOK, opsrOK, agree)
	}
	t.Note = "expected: SCC accepts the most executions at every conflict rate, the containment " +
		"columns stay true — the composite class is strictly larger than LLSR and OPSR (paper §1, §4) — " +
		"and the batched general reduction agrees with SCC on every sample (Theorem 2)"
	return t
}

// E5Commutativity measures how semantic knowledge buys acceptance: flat
// histories with a growing fraction of commuting increments, checked under
// (a) classical CSR, (b) semantic serializability, and (c) Comp-C over the
// equivalent one-schedule composite system with semantic conflicts.
func E5Commutativity(samples int) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "Semantic commutativity vs acceptance (flat histories)",
		Header: []string{"increment ratio", "samples", "CSR %", "semantic SR %", "Comp-C(semantic) %"},
	}
	for _, inc := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		csr, sem, comp := 0, 0, 0
		for seed := int64(0); seed < int64(samples); seed++ {
			h := history.Random(history.GenParams{
				Txs: 3, OpsPerTx: 3, Items: 2,
				WriteRatio: (1 - inc) * 0.7, IncRatio: inc,
				Seed: seed + int64(inc*1e6),
			})
			if h.IsCSR() {
				csr++
			}
			if h.IsSemanticSR() {
				sem++
			}
			semRel := func(a, b history.Op) bool { return !history.Commutes(a, b) }
			if ok, err := front.IsCompC(h.ToSystem(semRel)); err == nil && ok {
				comp++
			}
		}
		pct := func(n int) string { return fmt.Sprintf("%.1f", 100*float64(n)/float64(samples)) }
		t.AddRow(inc, samples, pct(csr), pct(sem), pct(comp))
	}
	t.Note = "expected: CSR acceptance stays flat or falls (increments are read-modify-writes to a " +
		"flat scheduler) while semantic SR and Comp-C acceptance grow with the increment ratio and agree exactly"
	return t
}

// E7CheckerScaling measures the reduction cost against system size.
func E7CheckerScaling() *Table {
	t := &Table{
		ID:     "E7",
		Title:  "Checker scalability: reduction cost vs system size",
		Header: []string{"shape", "levels", "roots", "fanout", "nodes", "check time", "batch/sys (8 workers)"},
	}
	for _, cfg := range []struct{ levels, roots, fanout int }{
		{2, 4, 2}, {3, 4, 2}, {4, 4, 2}, {5, 4, 2},
		{3, 8, 2}, {3, 16, 2}, {3, 32, 2},
		{3, 4, 3}, {3, 4, 4},
	} {
		exec := workload.Stack(workload.StackParams{
			Levels: cfg.levels, Roots: cfg.roots, Fanout: cfg.fanout,
			ConflictRate: 0.05, Seed: 1,
		})
		start := time.Now()
		reps := 0
		for time.Since(start) < 20*time.Millisecond {
			if _, err := front.Check(exec.Sys, front.Options{}); err != nil {
				panic(err)
			}
			reps++
		}
		per := time.Since(start) / time.Duration(reps)

		// Batch throughput: the same system checked as a shared batch by
		// the 8-worker pool; per-system wall time falls with core count.
		batch := make([]*model.System, 32)
		for i := range batch {
			batch[i] = exec.Sys
		}
		start = time.Now()
		for _, r := range front.CheckBatch(batch, 8, front.Options{}) {
			if r.Err != nil {
				panic(r.Err)
			}
		}
		perBatch := time.Since(start) / time.Duration(len(batch))

		t.AddRow("stack", cfg.levels, cfg.roots, cfg.fanout, exec.Sys.NumNodes(),
			per.Round(time.Microsecond).String(), perBatch.Round(time.Microsecond).String())
	}
	t.Note = "expected: polynomial growth — the reduction is quadratic-ish in front size per level; " +
		"the batch column divides wall time by the worker pool's effective parallelism (CPU-bound)"
	return t
}
