package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"compositetx/internal/front"
	"compositetx/internal/sched"
)

// E13 — MVCC snapshot reads vs lock-only execution. The data layer keeps
// per-item version chains, so an optimistic root (sched.ExecOptimistic)
// serves its reads from a committed snapshot without taking semantic
// locks and validates them at commit; the pessimistic baseline serializes
// every read through the semantic lock manager against conflicting
// writers. The experiment sweeps read ratios over the contended
// shared-pool workload (one component, few hot items, per-step service
// time) and reports the throughput/latency curves, plus a certified
// optimistic run proving validated commits pass the live Comp-C
// certifier unchanged.

// MVCCConfig parameterizes the E13 curves.
type MVCCConfig struct {
	Roots      int
	StepsPerTx int
	Items      int // hot-item pool (lower = more contention)
	Clients    int
	ReadRatios []float64
	// StepDelay models per-operation service time; it is what makes lock
	// hold times — and therefore blocking vs non-blocking reads — visible.
	StepDelay time.Duration
	Seed      int64
	// CPUs pins GOMAXPROCS for the measurement (the -cpu knob of the
	// headline number); 0 keeps the ambient value.
	CPUs int
	// Reps repeats each cell and keeps the best-throughput run (external
	// load only ever slows a run down, so best-of-N approximates the
	// unloaded machine); 0 means 1. Correctness must hold in every rep.
	Reps int
}

// DefaultMVCCConfig is the configuration used by compbench: the E10-style
// shared-pool workload at -cpu 8.
func DefaultMVCCConfig() MVCCConfig {
	return MVCCConfig{
		Roots: 240, StepsPerTx: 4, Items: 16, Clients: 16,
		ReadRatios: []float64{0.5, 0.9, 0.99},
		StepDelay:  time.Millisecond,
		Seed:       11,
		CPUs:       8,
		Reps:       3,
	}
}

// mvccPoint is one measured cell of the curve.
type mvccPoint struct {
	readRatio float64
	mode      string // "lock", "mvcc", "mvcc+certify"
	tps       float64
	p50, p95  time.Duration
	valAborts int64
	lockWaits int64
	rejects   int64
	correct   bool
}

// runTimed drives the programs through a client pool, recording per-tx
// commit latency.
func runTimed(rt *sched.Runtime, progs []sched.Invocation, clients int) ([]time.Duration, time.Duration, error) {
	lat := make([]time.Duration, len(progs))
	idx := make(chan int, len(progs))
	for i := range progs {
		idx <- i
	}
	close(idx)
	errc := make(chan error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				t0 := time.Now()
				if _, err := rt.Submit(fmt.Sprintf("T%d", i+1), progs[i]); err != nil {
					errc <- err
					return
				}
				lat[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return nil, 0, err
	default:
	}
	return lat, elapsed, nil
}

func percentile(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// measureMVCC runs one cell cfg.Reps times and keeps the best-throughput
// rep; the cell is correct only if every rep's record passed the checker.
func measureMVCC(cfg MVCCConfig, ratio float64, mode string) mvccPoint {
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	var best mvccPoint
	allCorrect := true
	for i := 0; i < reps; i++ {
		pt := measureMVCCOnce(cfg, ratio, mode)
		allCorrect = allCorrect && pt.correct
		if i == 0 || pt.tps > best.tps {
			best = pt
		}
	}
	best.correct = allCorrect
	return best
}

// measureMVCCOnce runs one rep of one cell: the shared-pool workload on a
// single store-owning component, reads at the given ratio, the remainder
// writes (the conflicts that matter are read vs write in both directions —
// the semantic table already lets incr/incr overlap in both modes).
func measureMVCCOnce(cfg MVCCConfig, ratio float64, mode string) mvccPoint {
	pt := mvccPoint{readRatio: ratio, mode: mode}
	topo := sched.StackTopology(1)
	rt := topo.NewRuntime(sched.OpenNested)
	switch mode {
	case "mvcc":
		rt.Exec = sched.ExecOptimistic
	case "mvcc+certify":
		rt.Exec = sched.ExecOptimistic
		if err := rt.EnableCertify(); err != nil {
			panic(err)
		}
	}
	progs := sched.GenPrograms(topo, sched.WorkloadParams{
		Roots: cfg.Roots, StepsPerTx: cfg.StepsPerTx, Items: cfg.Items,
		ReadRatio: ratio, WriteRatio: 1 - ratio, Seed: cfg.Seed,
	})
	if cfg.StepDelay > 0 {
		progs = sched.Jitter(progs, cfg.StepDelay, cfg.Seed)
	}
	lat, elapsed, err := runTimed(rt, progs, cfg.Clients)
	if err != nil {
		return pt
	}
	m := rt.Metrics()
	pt.tps = float64(m.Commits) / elapsed.Seconds()
	pt.p50 = percentile(lat, 0.50)
	pt.p95 = percentile(lat, 0.95)
	pt.valAborts = m.ValidationAborts
	pt.lockWaits = m.LockWaits
	pt.rejects = m.CertifyRejects
	sys := rt.RecordedSystem()
	if verr := sys.Validate(); verr == nil {
		if ok, cerr := front.IsCompC(sys); cerr == nil && ok {
			pt.correct = true
		}
	}
	return pt
}

// mvccCurves measures the full grid under cfg.CPUs.
func mvccCurves(cfg MVCCConfig) []mvccPoint {
	if cfg.CPUs > 0 {
		prev := runtime.GOMAXPROCS(cfg.CPUs)
		defer runtime.GOMAXPROCS(prev)
	}
	var out []mvccPoint
	for _, ratio := range cfg.ReadRatios {
		for _, mode := range []string{"lock", "mvcc", "mvcc+certify"} {
			out = append(out, measureMVCC(cfg, ratio, mode))
		}
	}
	return out
}

// E13MVCC renders the MVCC-vs-lock-only curve table.
func E13MVCC(cfg MVCCConfig) *Table {
	t := &Table{
		ID: "E13",
		Title: fmt.Sprintf("MVCC snapshot reads vs lock-only (shared pool: %d txs, %d clients, %d hot items, -cpu %d)",
			cfg.Roots, cfg.Clients, cfg.Items, cfg.CPUs),
		Header: []string{"read ratio", "mode", "tx/s", "p50", "p95", "val aborts", "lock waits", "vs lock", "verdict"},
	}
	points := mvccCurves(cfg)
	baseline := make(map[float64]float64)
	for _, pt := range points {
		if pt.mode == "lock" {
			baseline[pt.readRatio] = pt.tps
		}
	}
	for _, pt := range points {
		speedup := "-"
		if pt.mode != "lock" && baseline[pt.readRatio] > 0 {
			speedup = fmt.Sprintf("%.2fx", pt.tps/baseline[pt.readRatio])
		}
		verdict := "Comp-C"
		if !pt.correct {
			verdict = "VIOLATION"
		}
		if pt.mode == "mvcc+certify" {
			verdict += fmt.Sprintf(" (%d rejects)", pt.rejects)
		}
		t.AddRow(
			fmt.Sprintf("%.2f", pt.readRatio),
			pt.mode,
			fmt.Sprintf("%.0f", pt.tps),
			pt.p50.Round(time.Microsecond).String(),
			pt.p95.Round(time.Microsecond).String(),
			pt.valAborts,
			pt.lockWaits,
			speedup,
			verdict,
		)
	}
	t.Note = "expected: snapshot reads never queue behind writers holding semantic locks across their " +
		"service time, so optimistic throughput pulls away as the read ratio grows — the CI gate " +
		"(TestE13MVCCBeatsLockOnlyAtHighReadRatio) requires ≥1.3x at 90% reads, typical best-of-rep " +
		"runs land 1.4–1.8x — at the price of validation aborts where a write lands inside a read's " +
		"snapshot window (write-heavy 0.5 cells favor locking); the certified column shows validated " +
		"optimistic commits pass the live Comp-C certifier with zero rejects, i.e. validate-at-commit " +
		"and certification agree"
	return t
}

// MVCCBenchmarks is the machine-readable face of E13 for
// BENCH_checker.json: per-cell throughput, latency percentiles and the
// speedup of mvcc over the lock-only baseline at the same read ratio.
func MVCCBenchmarks() []BenchResult {
	cfg := DefaultMVCCConfig()
	points := mvccCurves(cfg)
	baseline := make(map[float64]float64)
	for _, pt := range points {
		if pt.mode == "lock" {
			baseline[pt.readRatio] = pt.tps
		}
	}
	var out []BenchResult
	for _, pt := range points {
		if pt.tps == 0 {
			continue
		}
		metrics := map[string]float64{
			"txPerSec":         pt.tps,
			"p50Ns":            float64(pt.p50.Nanoseconds()),
			"p95Ns":            float64(pt.p95.Nanoseconds()),
			"validationAborts": float64(pt.valAborts),
			"lockWaits":        float64(pt.lockWaits),
			"readRatio":        pt.readRatio,
			"cpus":             float64(cfg.CPUs),
			"correct":          b2f(pt.correct),
		}
		if pt.mode != "lock" && baseline[pt.readRatio] > 0 {
			metrics["speedupVsLock"] = pt.tps / baseline[pt.readRatio]
		}
		if pt.mode == "mvcc+certify" {
			metrics["certifyRejects"] = float64(pt.rejects)
		}
		out = append(out, BenchResult{
			Name:    fmt.Sprintf("E13MVCC/reads=%.2f/mode=%s", pt.readRatio, pt.mode),
			NsPerOp: 1e9 / pt.tps,
			Metrics: metrics,
		})
	}
	return out
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
