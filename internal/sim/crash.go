package sim

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"compositetx/internal/data"
	"compositetx/internal/sched"
	"compositetx/internal/wal"
)

// E11 — the crash matrix: crash site × topology × protocol. Every cell
// runs a balanced-transfer workload against a WAL-backed runtime, kills
// the process at the site (FaultCrash, including the mid-WAL-append torn
// variant), recovers from the log directory alone, and checks the two
// things durability owes the paper's model: the recovered committed
// execution passes the Comp-C reduction, and escrow conservation holds —
// transfers are atomic across the crash (undone or redone, never half).

// crashSiteSpec is one column of the crash matrix.
type crashSiteSpec struct {
	name string
	step string // Trigger.Step: a leaf node ID, "commit", or "post-commit"
	tear bool   // abandon the WAL mid-append (torn record at the tail)
}

// crashTopo bundles a topology with its transfer workload and the leaf
// node ID of the crash transaction's second transfer leg (the point where
// the transfer is half-journaled).
type crashTopo struct {
	name     string
	mk       func() *sched.Topology
	programs func(n int) []sched.Invocation
	seed     func(rt *sched.Runtime, initial int64)
	leafStep string
}

// crashTxn is the transaction the deterministic triggers target; the
// workload must be large enough to reach it.
const crashTxn = "T13"

func transferLeg(comp, item string, amt int64) sched.Step {
	return sched.Step{Invoke: &sched.Invocation{Component: comp, Item: item, Mode: data.ModeIncr,
		Steps: []sched.Step{{Op: &data.Op{Mode: data.ModeIncr, Item: item, Arg: amt}}}}}
}

func crashTopos() []crashTopo {
	return []crashTopo{
		{
			name: "stack(3)",
			mk:   func() *sched.Topology { return sched.StackTopology(3) },
			seed: func(rt *sched.Runtime, initial int64) { rt.Store("C3").Set("src", initial) },
			programs: func(n int) []sched.Invocation {
				progs := make([]sched.Invocation, n)
				for i := range progs {
					amt := int64(i%7 + 1)
					mode, body := data.ModeIncr, []sched.Step{
						{Op: &data.Op{Mode: data.ModeIncr, Item: "src", Arg: -amt}},
						{Op: &data.Op{Mode: data.ModeIncr, Item: "dst", Arg: amt}},
					}
					if i%5 == 4 { // audit: reads conflict with increments
						mode, body = data.ModeRead, []sched.Step{
							{Op: &data.Op{Mode: data.ModeRead, Item: "src"}},
							{Op: &data.Op{Mode: data.ModeRead, Item: "dst"}},
						}
					}
					progs[i] = sched.Invocation{Component: "C1", Steps: []sched.Step{
						{Invoke: &sched.Invocation{Component: "C2", Item: "acct", Mode: mode,
							Steps: []sched.Step{{Invoke: &sched.Invocation{
								Component: "C3", Item: "acct", Mode: mode, Steps: body,
							}}}}},
					}}
				}
				return progs
			},
			// T13: root -> C2 (T13/1) -> C3 (T13/1/1) -> second leaf.
			leafStep: "T13/1/1/2",
		},
		{
			name: "bank",
			mk:   sched.BankTopology,
			seed: func(rt *sched.Runtime, initial int64) { rt.Store("east").Set("acct", initial) },
			programs: func(n int) []sched.Invocation {
				progs := make([]sched.Invocation, n)
				for i := range progs {
					amt := int64(i%7 + 1)
					if i%5 == 4 {
						progs[i] = sched.Invocation{Component: "bank", Steps: []sched.Step{
							{Invoke: &sched.Invocation{Component: "east", Item: "acct", Mode: data.ModeRead,
								Steps: []sched.Step{{Op: &data.Op{Mode: data.ModeRead, Item: "acct"}}}}},
						}}
						continue
					}
					progs[i] = sched.Invocation{Component: "bank", Steps: []sched.Step{
						transferLeg("east", "acct", -amt),
						transferLeg("west", "acct", amt),
					}}
				}
				return progs
			},
			leafStep: "T13/2/1",
		},
		{
			name: "diamond",
			mk:   sched.DiamondTopology,
			seed: func(rt *sched.Runtime, initial int64) { rt.Store("ledger").Set("pool", initial) },
			programs: func(n int) []sched.Invocation {
				progs := make([]sched.Invocation, n)
				for i := range progs {
					amt := int64(i%7 + 1)
					entry, from, to := "agencyA", "pool", "pool2"
					if i%2 == 1 {
						entry, from, to = "agencyB", "pool2", "pool"
					}
					if i%5 == 4 {
						progs[i] = sched.Invocation{Component: entry, Steps: []sched.Step{
							{Invoke: &sched.Invocation{Component: "ledger", Item: from, Mode: data.ModeRead,
								Steps: []sched.Step{{Op: &data.Op{Mode: data.ModeRead, Item: from}}}}},
						}}
						continue
					}
					progs[i] = sched.Invocation{Component: entry, Steps: []sched.Step{
						transferLeg("ledger", from, -amt),
						transferLeg("ledger", to, amt),
					}}
				}
				return progs
			},
			// T13 = programs[12]: agencyA -> ledger second leg's leaf.
			leafStep: "T13/2/1",
		},
	}
}

// runCrashCell drains the workload through a crash-tolerant client pool.
func runCrashCell(rt *sched.Runtime, progs []sched.Invocation, clients int) (commits int, runErr error) {
	var ok atomic.Int64
	var firstErr atomic.Value
	work := make(chan int)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				_, err := rt.Submit(fmt.Sprintf("T%d", i+1), progs[i])
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, sched.ErrCrashed):
				default:
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}()
	}
	for i := range progs {
		work <- i
	}
	close(work)
	wg.Wait()
	if e, _ := firstErr.Load().(error); e != nil {
		return int(ok.Load()), e
	}
	return int(ok.Load()), nil
}

// storeTotal sums every item of every component store.
func storeTotal(rt *sched.Runtime, topo *sched.Topology) int64 {
	var total int64
	for _, spec := range topo.Specs {
		s := rt.Store(spec.Name)
		if s == nil {
			continue
		}
		for _, v := range s.Snapshot() {
			total += v
		}
	}
	return total
}

// E11CrashMatrix runs the crash matrix and renders one row per cell.
func E11CrashMatrix(cfg RunConfig) *Table {
	t := &Table{
		ID:     "E11",
		Title:  fmt.Sprintf("Crash matrix: WAL recovery at every crash site (%d txs, %d clients per cell)", cfg.Roots, cfg.Clients),
		Header: []string{"site", "topology", "protocol", "committed", "redone", "undone", "torn B", "conservation", "verdict"},
	}
	protos := []sched.Protocol{sched.Hybrid, sched.ClosedNested, sched.Global2PL}
	const initial = 100000
	for _, tc := range crashTopos() {
		sites := []crashSiteSpec{
			{"leaf", tc.leafStep, false},
			{"leaf-torn", tc.leafStep, true},
			{"commit", "commit", false},
			{"post-commit", "post-commit", false},
		}
		for _, site := range sites {
			for _, p := range protos {
				row, err := runE11Cell(tc, site, p, cfg, initial)
				if err != nil {
					t.AddRow(site.name, tc.name, p.String(), "error", "-", "-", "-", "-", err.Error())
					continue
				}
				t.AddRow(row...)
			}
		}
	}
	t.Note = "expected: every cell recovers to a Comp-C-correct committed execution with the transfer " +
		"sum conserved — a crash before the commit record undoes the transaction, after it redoes it, " +
		"and a torn mid-append record is truncated at recovery, never replayed"
	return t
}

func runE11Cell(tc crashTopo, site crashSiteSpec, p sched.Protocol, cfg RunConfig, initial int64) ([]any, error) {
	dir, err := os.MkdirTemp("", "compositetx-e11-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	topo := tc.mk()
	rt := topo.NewRuntime(p)
	tc.seed(rt, initial)
	if err := rt.EnableWAL(sched.WALConfig{Dir: dir}); err != nil {
		return nil, err
	}
	rt.SetFaults(sched.FaultPlan{
		Triggers:  []sched.Trigger{{Site: sched.FaultCrash, Txn: crashTxn, Step: site.step}},
		CrashTear: site.tear,
	})
	progs := tc.programs(cfg.Roots)
	if cfg.StepDelay > 0 {
		progs = sched.Jitter(progs, cfg.StepDelay, cfg.Seed)
	}
	if _, err := runCrashCell(rt, progs, cfg.Clients); err != nil {
		return nil, err
	}
	if !rt.Crashed() {
		return nil, fmt.Errorf("crash trigger at %q never fired", site.step)
	}
	rec, err := sched.Recover(sched.WALConfig{Dir: dir})
	if err != nil {
		return nil, err
	}
	defer rec.Runtime.CloseWAL()
	if site.tear && rec.Stats.TornBytes == 0 {
		return nil, fmt.Errorf("torn-record cell recovered without torn bytes")
	}
	conservation := "conserved"
	if got := storeTotal(rec.Runtime, topo); got != initial {
		conservation = fmt.Sprintf("VIOLATED (%+d)", got-initial)
	}
	verdict := "Comp-C"
	if !rec.Verdict.Correct {
		verdict = "VIOLATION (Comp-C)"
	}
	return []any{
		site.name, tc.name, p.String(),
		rec.Stats.Committed, rec.Stats.Redone, rec.Stats.Undone, rec.Stats.TornBytes,
		conservation, verdict,
	}, nil
}

// DefaultCrashConfig sizes E11 for compbench: enough transactions to put
// real concurrent work in flight at the crash, across 36 cells.
func DefaultCrashConfig() RunConfig {
	return RunConfig{
		Roots: 40, StepsPerTx: 2, Items: 2, Clients: 6,
		ReadRatio: 0.2, WriteRatio: 0, StepDelay: 60 * time.Microsecond,
		Seed: 19,
	}
}

// WALBenchmarks times the durability path for BENCH_checker.json: append
// throughput across the group-commit settings, and full crash recovery
// (read + redo/undo + Comp-C re-check) at two log sizes.
func WALBenchmarks() []BenchResult {
	const minDur = 100 * time.Millisecond
	var out []BenchResult

	rec := wal.Record{
		Type: wal.TypeApply, Txn: "T42", Node: "T42/1/1", Comp: "east",
		Item: "acct", Mode: "incr", Impl: "incr", Arg: -25, Prev: 975,
	}
	for _, bc := range []struct {
		name string
		sync int
	}{
		{"sync=1", 1},
		{"sync=64", 64},
		{"sync=none", -1},
	} {
		dir, err := os.MkdirTemp("", "compositetx-walbench-*")
		if err != nil {
			panic(err)
		}
		l, _, err := wal.Open(dir, wal.Options{SyncEvery: bc.sync})
		if err != nil {
			panic(err)
		}
		ns := timeOp(minDur, func() {
			if _, err := l.Append(rec); err != nil {
				panic(err)
			}
		})
		records := float64(l.Records())
		l.Close()
		os.RemoveAll(dir)
		out = append(out, BenchResult{
			Name:    "BenchmarkWALAppend/" + bc.name,
			NsPerOp: ns,
			Metrics: map[string]float64{"records": records},
		})
	}

	for _, roots := range []int{32, 128} {
		dir, err := os.MkdirTemp("", "compositetx-recbench-*")
		if err != nil {
			panic(err)
		}
		topo := sched.BankTopology()
		rt := topo.NewRuntime(sched.Hybrid)
		rt.Store("east").Set("acct", 100000)
		if err := rt.EnableWAL(sched.WALConfig{Dir: dir, SyncEvery: 64}); err != nil {
			panic(err)
		}
		for i := 0; i < roots; i++ {
			amt := int64(i%7 + 1)
			prog := sched.Invocation{Component: "bank", Steps: []sched.Step{
				transferLeg("east", "acct", -amt),
				transferLeg("west", "acct", amt),
			}}
			if _, err := rt.Submit(fmt.Sprintf("T%d", i+1), prog); err != nil {
				panic(err)
			}
		}
		if err := rt.CloseWAL(); err != nil {
			panic(err)
		}
		var records float64
		ns := timeOp(minDur, func() {
			r, err := sched.Recover(sched.WALConfig{Dir: dir})
			if err != nil {
				panic(err)
			}
			records = float64(r.Stats.Records)
			r.Runtime.CloseWAL()
		})
		os.RemoveAll(dir)
		out = append(out, BenchResult{
			Name:    fmt.Sprintf("BenchmarkRecovery/roots=%d", roots),
			NsPerOp: ns,
			Metrics: map[string]float64{"records": records},
		})
	}
	return out
}
