package order

import "slices"

// Reachable reports whether b is reachable from a via one or more pairs.
func (r *Relation[T]) Reachable(a, b T) bool {
	seen := make(map[T]struct{})
	stack := []T{}
	for n := range r.succ[a] {
		stack = append(stack, n)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == b {
			return true
		}
		if _, ok := seen[n]; ok {
			continue
		}
		seen[n] = struct{}{}
		for m := range r.succ[n] {
			stack = append(stack, m)
		}
	}
	return false
}

// HasCycle reports whether the relation, viewed as a directed graph,
// contains a cycle (including self-pairs).
func (r *Relation[T]) HasCycle() bool {
	return r.FindCycle() != nil
}

// IsAcyclic is the negation of HasCycle; it matches the paper's phrasing
// for conflict consistency (Definition 13).
func (r *Relation[T]) IsAcyclic() bool { return !r.HasCycle() }

// FindCycle returns the nodes of some cycle in order (the last node links
// back to the first), or nil if the relation is acyclic. Node exploration is
// lexicographic, so the reported cycle is deterministic. The cycle is used
// for the human-readable incorrectness traces produced by internal/front.
func (r *Relation[T]) FindCycle() []T {
	const (
		white = 0 // unvisited
		grey  = 1 // on the current DFS path
		black = 2 // finished
	)
	color := make(map[T]int, len(r.nodes))
	parent := make(map[T]T)

	var cycle []T
	var dfs func(n T) bool
	dfs = func(n T) bool {
		color[n] = grey
		for _, m := range r.Successors(n) {
			switch color[m] {
			case white:
				parent[m] = n
				if dfs(m) {
					return true
				}
			case grey:
				// Found a back edge n -> m: reconstruct the path m ... n.
				cycle = []T{m}
				for x := n; x != m; x = parent[x] {
					cycle = append(cycle, x)
				}
				// Reverse everything after the first element so the cycle
				// reads in pair direction m -> ... -> n (-> m).
				for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[n] = black
		return false
	}

	for _, n := range r.Nodes() {
		if color[n] == white {
			if dfs(n) {
				return cycle
			}
		}
	}
	return nil
}

// TopoSort returns the registered nodes in a topological order of the
// relation, or ok=false if it is cyclic. Ties are broken lexicographically
// (smallest available node first), so the order is deterministic; this is
// the "topological sorting" step used in the proof of Theorem 1 to convert
// an acyclic level-N front into a serial front.
func (r *Relation[T]) TopoSort() (sorted []T, ok bool) {
	indeg := make(map[T]int, len(r.nodes))
	for n := range r.nodes {
		indeg[n] = 0
	}
	r.Each(func(a, b T) {
		if a != b {
			indeg[b]++
		} else {
			indeg[b] = -1 << 30 // self-pair: poison, never becomes ready
		}
	})

	ready := make([]T, 0, len(indeg))
	for n, d := range indeg {
		if d == 0 {
			ready = append(ready, n)
		}
	}
	sortSlice(ready)

	sorted = make([]T, 0, len(indeg))
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		sorted = append(sorted, n)
		newly := []T{}
		for m := range r.succ[n] {
			if m == n {
				continue
			}
			indeg[m]--
			if indeg[m] == 0 {
				newly = append(newly, m)
			}
		}
		if len(newly) > 0 {
			sortSlice(newly)
			ready = mergeSorted(ready, newly)
		}
	}
	if len(sorted) != len(indeg) {
		return nil, false
	}
	return sorted, true
}

// mergeSorted merges two lexicographically sorted slices.
func mergeSorted[T ~string](a, b []T) []T {
	out := make([]T, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// SCCs returns the strongly connected components of the relation with at
// least one internal pair (i.e. real cycles, including self-pairs), each
// component sorted lexicographically, components ordered by their smallest
// member. Used to report every independent inconsistency at once.
func (r *Relation[T]) SCCs() [][]T {
	// Tarjan's algorithm, iterative to avoid deep recursion on long chains.
	index := make(map[T]int, len(r.nodes))
	low := make(map[T]int, len(r.nodes))
	onStack := make(map[T]bool, len(r.nodes))
	var stack []T
	next := 0
	var comps [][]T

	type frame struct {
		n    T
		succ []T
		i    int
	}

	for _, start := range r.Nodes() {
		if _, ok := index[start]; ok {
			continue
		}
		frames := []frame{{n: start, succ: r.Successors(start)}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succ) {
				m := f.succ[f.i]
				f.i++
				if _, ok := index[m]; !ok {
					index[m] = next
					low[m] = next
					next++
					stack = append(stack, m)
					onStack[m] = true
					frames = append(frames, frame{n: m, succ: r.Successors(m)})
				} else if onStack[m] {
					if index[m] < low[f.n] {
						low[f.n] = index[m]
					}
				}
				continue
			}
			// Finished f.n.
			if low[f.n] == index[f.n] {
				var comp []T
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					comp = append(comp, m)
					if m == f.n {
						break
					}
				}
				if len(comp) > 1 || r.Has(comp[0], comp[0]) {
					sortSlice(comp)
					comps = append(comps, comp)
				}
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[f.n] < low[p.n] {
					low[p.n] = low[f.n]
				}
			}
		}
	}
	slices.SortFunc(comps, func(a, b []T) int { return cmpString(a[0], b[0]) })
	return comps
}
