// Package order provides the partial-order machinery underlying the
// composite-transaction model: binary relations over node identifiers,
// transitive closure, cycle detection and reporting, topological sorting,
// restriction, union, and quotient construction.
//
// Every structure in the paper — weak and strong input/output orders
// (Definition 1 and 3), the observed order (Definition 10), and the
// constraint graphs used during reduction (Definition 16) — is a binary
// relation over identifiers, so this package is the substrate for
// internal/model, internal/front and internal/criteria.
//
// Identifiers are any string-kinded type. All operations that enumerate
// nodes or pairs do so in lexicographic order, so results are
// deterministic across runs.
package order

import "slices"

// Relation is a mutable binary relation (a directed graph) over string-kinded
// identifiers. The zero value is not usable; construct with New.
type Relation[T ~string] struct {
	succ map[T]map[T]struct{}
	// nodes tracks identifiers mentioned explicitly via AddNode as well as
	// endpoints of pairs, so isolated nodes participate in sorts.
	nodes map[T]struct{}
}

// New returns an empty relation.
func New[T ~string]() *Relation[T] {
	return &Relation[T]{
		succ:  make(map[T]map[T]struct{}),
		nodes: make(map[T]struct{}),
	}
}

// FromPairs builds a relation from explicit pairs.
func FromPairs[T ~string](pairs ...[2]T) *Relation[T] {
	r := New[T]()
	for _, p := range pairs {
		r.Add(p[0], p[1])
	}
	return r
}

// AddNode registers an identifier without relating it to anything.
func (r *Relation[T]) AddNode(n T) {
	r.nodes[n] = struct{}{}
}

// Add inserts the pair (a, b), meaning "a before b". Self-pairs are legal at
// this layer (they represent a trivial cycle and are reported by HasCycle).
func (r *Relation[T]) Add(a, b T) {
	r.nodes[a] = struct{}{}
	r.nodes[b] = struct{}{}
	s, ok := r.succ[a]
	if !ok {
		s = make(map[T]struct{})
		r.succ[a] = s
	}
	s[b] = struct{}{}
}

// Remove deletes the pair (a, b) if present.
func (r *Relation[T]) Remove(a, b T) {
	if s, ok := r.succ[a]; ok {
		delete(s, b)
		if len(s) == 0 {
			delete(r.succ, a)
		}
	}
}

// RemoveNode deletes an identifier and every pair involving it.
func (r *Relation[T]) RemoveNode(n T) {
	delete(r.nodes, n)
	delete(r.succ, n)
	for a, s := range r.succ {
		delete(s, n)
		if len(s) == 0 {
			delete(r.succ, a)
		}
	}
}

// RemoveNodes deletes every identifier in set and every pair involving
// one — a single sweep over the successor rows regardless of the set's
// size (RemoveNode per node would sweep once per node).
func (r *Relation[T]) RemoveNodes(set map[T]struct{}) {
	for n := range set {
		delete(r.nodes, n)
		delete(r.succ, n)
	}
	for a, s := range r.succ {
		for b := range s {
			if _, doomed := set[b]; doomed {
				delete(s, b)
			}
		}
		if len(s) == 0 {
			delete(r.succ, a)
		}
	}
}

// Has reports whether the pair (a, b) is in the relation.
func (r *Relation[T]) Has(a, b T) bool {
	s, ok := r.succ[a]
	if !ok {
		return false
	}
	_, ok = s[b]
	return ok
}

// HasNode reports whether n has been registered (as a node or pair endpoint).
func (r *Relation[T]) HasNode(n T) bool {
	_, ok := r.nodes[n]
	return ok
}

// Len returns the number of pairs.
func (r *Relation[T]) Len() int {
	n := 0
	for _, s := range r.succ {
		n += len(s)
	}
	return n
}

// NumNodes returns the number of registered identifiers.
func (r *Relation[T]) NumNodes() int { return len(r.nodes) }

// Nodes returns all registered identifiers in lexicographic order.
func (r *Relation[T]) Nodes() []T {
	out := make([]T, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sortSlice(out)
	return out
}

// Successors returns the direct successors of n in lexicographic order.
func (r *Relation[T]) Successors(n T) []T {
	s, ok := r.succ[n]
	if !ok {
		return nil
	}
	out := make([]T, 0, len(s))
	for m := range s {
		out = append(out, m)
	}
	sortSlice(out)
	return out
}

// Pairs returns every pair in lexicographic order.
func (r *Relation[T]) Pairs() [][2]T {
	out := make([][2]T, 0, r.Len())
	for a, s := range r.succ {
		for b := range s {
			out = append(out, [2]T{a, b})
		}
	}
	slices.SortFunc(out, func(a, b [2]T) int {
		if a[0] != b[0] {
			return cmpString(a[0], b[0])
		}
		return cmpString(a[1], b[1])
	})
	return out
}

// Each calls fn for every pair, in unspecified order. Mutating r during
// iteration is not allowed.
func (r *Relation[T]) Each(fn func(a, b T)) {
	for a, s := range r.succ {
		for b := range s {
			fn(a, b)
		}
	}
}

// Clone returns a deep copy.
func (r *Relation[T]) Clone() *Relation[T] {
	c := New[T]()
	for n := range r.nodes {
		c.nodes[n] = struct{}{}
	}
	for a, s := range r.succ {
		cs := make(map[T]struct{}, len(s))
		for b := range s {
			cs[b] = struct{}{}
		}
		c.succ[a] = cs
	}
	return c
}

// Union adds every pair (and node) of other into r and returns r.
func (r *Relation[T]) Union(other *Relation[T]) *Relation[T] {
	if other == nil {
		return r
	}
	for n := range other.nodes {
		r.nodes[n] = struct{}{}
	}
	other.Each(func(a, b T) { r.Add(a, b) })
	return r
}

// UnionOf returns a fresh relation containing all pairs of the arguments.
func UnionOf[T ~string](rs ...*Relation[T]) *Relation[T] {
	out := New[T]()
	for _, r := range rs {
		out.Union(r)
	}
	return out
}

// Restrict returns a fresh relation containing only the pairs whose
// endpoints both satisfy keep, with node registration restricted likewise.
func (r *Relation[T]) Restrict(keep func(T) bool) *Relation[T] {
	out := New[T]()
	for n := range r.nodes {
		if keep(n) {
			out.AddNode(n)
		}
	}
	r.Each(func(a, b T) {
		if keep(a) && keep(b) {
			out.Add(a, b)
		}
	})
	return out
}

// RestrictTo is Restrict with an explicit node set.
func (r *Relation[T]) RestrictTo(set map[T]struct{}) *Relation[T] {
	return r.Restrict(func(n T) bool {
		_, ok := set[n]
		return ok
	})
}

// Map returns a fresh relation with every node n replaced by f(n).
// Pairs whose endpoints map to the same identifier are dropped (they would be
// self-pairs introduced by contraction, which the quotient construction of
// Definition 16 discards).
func (r *Relation[T]) Map(f func(T) T) *Relation[T] {
	out := New[T]()
	for n := range r.nodes {
		out.AddNode(f(n))
	}
	r.Each(func(a, b T) {
		fa, fb := f(a), f(b)
		if fa != fb {
			out.Add(fa, fb)
		}
	})
	return out
}

// Equal reports whether r and other contain exactly the same pairs.
//
// The implementation compares Len() and then checks r ⊆ other only. That
// asymmetry is sound, not a shortcut: pairs live in nested maps, so each
// relation is duplicate-free, and two finite duplicate-free sets of equal
// cardinality with one contained in the other are equal. TestEqualIsSymmetric
// exercises the differing-pair-sets-of-equal-size case in both directions.
//
// Node registration is deliberately ignored: Equal compares the relations
// as pair sets (what the paper's definitions quantify over), so relations
// that differ only in isolated registered nodes — e.g. one side was built
// with AddNode for every front node, the other only via Add — still
// compare equal. Use NumNodes/Nodes to compare registration.
func (r *Relation[T]) Equal(other *Relation[T]) bool {
	if r.Len() != other.Len() {
		return false
	}
	eq := true
	r.Each(func(a, b T) {
		if !other.Has(a, b) {
			eq = false
		}
	})
	return eq
}

// Contains reports whether every pair of other is in r.
func (r *Relation[T]) Contains(other *Relation[T]) bool {
	ok := true
	other.Each(func(a, b T) {
		if !r.Has(a, b) {
			ok = false
		}
	})
	return ok
}

func sortSlice[T ~string](s []T) {
	slices.Sort(s)
}

func cmpString[T ~string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
