package order

// Transitive closure via SCC condensation and bitset reachability.
//
// The closure is the hot path of the reduction (the observed order is
// re-closed at every level, Definition 10 rule 4), so it is implemented
// with dense bitsets over an index of the relation's nodes: Tarjan's
// algorithm finds the strongly connected components, the condensation is
// processed in reverse topological order OR-ing successor reachability
// words, and members of a cyclic component reach everything the component
// reaches, including itself. Complexity O(V·E/64) for the propagation
// plus the unavoidable O(|closure|) output inserts.

// TransitiveClosure returns a fresh relation containing the transitive
// closure of r. The paper requires all order relations to be "in all
// cases, transitively closed" (Definition 1) and the observed order has an
// explicit transitivity rule (Definition 10 rule 4).
func (r *Relation[T]) TransitiveClosure() *Relation[T] {
	nodes := r.Nodes()
	n := len(nodes)
	out := New[T]()
	for _, v := range nodes {
		out.AddNode(v)
	}
	if n == 0 || r.Len() == 0 {
		return out
	}
	idx := make(map[T]int, n)
	for i, v := range nodes {
		idx[v] = i
	}
	succ := make([][]int32, n)
	r.Each(func(a, b T) {
		i := idx[a]
		succ[i] = append(succ[i], int32(idx[b]))
	})

	comp, order := sccCondensation(n, succ)

	// reach[c] is the set of nodes reachable from component c (excluding
	// the component's own members unless it is cyclic; members are added
	// when expanding per-node below).
	nComp := len(order)
	reach := make([]Bitset, nComp)
	members := make([][]int32, nComp)
	cyclic := make([]bool, nComp)
	for i := 0; i < n; i++ {
		members[comp[i]] = append(members[comp[i]], int32(i))
	}
	for i := 0; i < n; i++ {
		for _, j := range succ[i] {
			if int(j) == i {
				cyclic[comp[i]] = true
			}
		}
	}
	for c := range members {
		if len(members[c]) > 1 {
			cyclic[c] = true
		}
	}

	// order is reverse-topological (Tarjan emits components after all
	// their successors), so one pass suffices.
	for _, c := range order {
		rs := NewBitset(n)
		for _, i := range members[c] {
			for _, j := range succ[i] {
				cj := comp[j]
				if cj == c {
					continue
				}
				rs.Set(int(j))
				rs.Or(reach[cj])
			}
		}
		if cyclic[c] {
			for _, i := range members[c] {
				rs.Set(int(i))
			}
		}
		reach[c] = rs
	}

	for i := 0; i < n; i++ {
		a := nodes[i]
		reach[comp[i]].Each(func(j int) {
			out.Add(a, nodes[j])
		})
	}
	return out
}

// sccCondensation runs iterative Tarjan over the index graph and returns
// the component id of every node plus the component ids in emission
// (reverse topological) order.
func sccCondensation(n int, succ [][]int32) (comp []int, emitted []int) {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp = make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int32
	next := 0
	nComp := 0

	type frame struct {
		v int32
		i int
	}
	var frames []frame

	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		frames = frames[:0]
		frames = append(frames, frame{v: int32(start)})
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, int32(start))
		onStack[start] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.i < len(succ[v]) {
				w := succ[v][f.i]
				f.i++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				emitted = append(emitted, nComp)
				nComp++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
		}
	}
	return comp, emitted
}
