package order

import (
	"fmt"
	"math/rand"
	"testing"
)

// collectPairs snapshots a closed relation as a set of "i,j" keys.
func collectPairs(c *ClosedRelation) map[string]bool {
	out := map[string]bool{}
	c.Each(func(i, j int) { out[fmt.Sprintf("%d,%d", i, j)] = true })
	return out
}

func TestInsertFuncReportsExactDelta(t *testing.T) {
	// Random insertion streams: after every InsertFunc the reported
	// delta must be exactly (closure after) − (closure before), and the
	// relation must match a from-scratch CloseRelation of the raw pairs.
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		c := NewClosedRelation(n)
		raw := NewIndexRelation(n)
		for k := 0; k < 3*n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			before := collectPairs(c)
			reported := map[string]bool{}
			c.InsertFunc(a, b, func(x, y int) {
				key := fmt.Sprintf("%d,%d", x, y)
				if reported[key] {
					t.Fatalf("seed %d: pair (%d,%d) reported twice", seed, x, y)
				}
				if before[key] {
					t.Fatalf("seed %d: pair (%d,%d) reported but already present", seed, x, y)
				}
				reported[key] = true
			})
			raw.Add(a, b)
			after := collectPairs(c)
			for key := range after {
				if !before[key] && !reported[key] {
					t.Fatalf("seed %d: new pair %s not reported", seed, key)
				}
			}
			if len(after) != len(before)+len(reported) {
				t.Fatalf("seed %d: |after|=%d, |before|=%d, |reported|=%d",
					seed, len(after), len(before), len(reported))
			}
		}
		// Final state must equal the batch closure of the same raw pairs.
		want := collectPairs(CloseRelation(raw))
		if got := collectPairs(c); len(got) != len(want) {
			t.Fatalf("seed %d: incremental closure has %d pairs, batch has %d", seed, len(got), len(want))
		} else {
			for key := range want {
				if !got[key] {
					t.Fatalf("seed %d: missing closure pair %s", seed, key)
				}
			}
		}
	}
}

func TestInsertFuncMaintainsTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 16
	c := NewClosedRelation(n)
	for k := 0; k < 40; k++ {
		c.InsertFunc(rng.Intn(n), rng.Intn(n), func(x, y int) {})
	}
	c.Each(func(i, j int) {
		if !c.PredRow(j).Has(i) {
			t.Fatalf("pred transpose missing (%d,%d)", i, j)
		}
	})
	for i := 0; i < n; i++ {
		c.PredRow(i).Each(func(j int) {
			if !c.Has(j, i) {
				t.Fatalf("stale pred pair (%d,%d)", j, i)
			}
		})
	}
}

func TestGrowPreservesPairsAndClosure(t *testing.T) {
	c := NewClosedRelation(4)
	c.Insert(0, 1)
	c.Insert(1, 2)
	c.Grow(130) // force extra words
	if !c.Has(0, 2) {
		t.Fatal("closure lost by Grow")
	}
	// New indices must be usable and compose with the old rows.
	c.Insert(2, 129)
	if !c.Has(0, 129) {
		t.Fatal("insert after Grow did not propagate through old sources")
	}
	c.InsertFunc(129, 3, func(x, y int) {})
	if !c.Has(1, 3) {
		t.Fatal("InsertFunc after Grow did not propagate")
	}

	r := NewIndexRelation(2)
	r.Add(0, 1)
	r.Grow(70)
	r.Add(69, 0)
	if !r.Has(0, 1) || !r.Has(69, 0) || r.Has(1, 0) {
		t.Fatal("IndexRelation.Grow corrupted pairs")
	}

	var b Bitset
	b = b.Grow(5)
	b.Set(3)
	b = b.Grow(200)
	if !b.Has(3) || b.Has(199) {
		t.Fatal("Bitset.Grow corrupted bits")
	}
	b.Set(199)
	if !b.Has(199) {
		t.Fatal("Bitset.Grow: new range not usable")
	}
}
