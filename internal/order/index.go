package order

import "math/bits"

// This file is the interned-index relation core: dense bitset-backed
// relations over integer node indices. internal/front runs the whole
// reduction of Definition 16 on these after interning every NodeID to an
// int32 (see model.Interner); the string-keyed Relation remains the
// construction and API surface and is converted at the Check boundary.
//
// Indices are expected to be assigned in lexicographic NodeID order, so
// ascending index iteration reproduces the deterministic lexicographic
// iteration order of Relation.

// Bitset is a fixed-capacity dense bit vector. It is the row type of
// IndexRelation, exported so the reduction hot path can compose rows with
// word-parallel boolean operations instead of per-element map lookups.
type Bitset []uint64

// NewBitset returns a bitset able to hold indices [0, n).
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (b Bitset) Clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether bit i is set. A nil bitset has no bits.
func (b Bitset) Has(i int) bool {
	w := i / 64
	return w < len(b) && b[w]&(1<<(uint(i)%64)) != 0
}

// Or sets b |= o. A nil o is a no-op.
func (b Bitset) Or(o Bitset) {
	for i := range o {
		b[i] |= o[i]
	}
}

// And sets b &= o; a nil o clears b.
func (b Bitset) And(o Bitset) {
	for i := range b {
		if i < len(o) {
			b[i] &= o[i]
		} else {
			b[i] = 0
		}
	}
}

// AndNot sets b &^= o.
func (b Bitset) AndNot(o Bitset) {
	for i := range o {
		if i < len(b) {
			b[i] &^= o[i]
		}
	}
}

// OrAnd sets b |= x & y. Either operand may be nil (treated as empty).
func (b Bitset) OrAnd(x, y Bitset) {
	if x == nil || y == nil {
		return
	}
	for i := range b {
		b[i] |= x[i] & y[i]
	}
}

// OrAndNot sets b |= x &^ y. A nil x is a no-op; a nil y is empty.
func (b Bitset) OrAndNot(x, y Bitset) {
	if x == nil {
		return
	}
	if y == nil {
		b.Or(x)
		return
	}
	for i := range b {
		b[i] |= x[i] &^ y[i]
	}
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether any bit is set.
func (b Bitset) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// Each calls fn for every set bit in ascending index order.
func (b Bitset) Each(fn func(i int)) {
	for w, word := range b {
		for word != 0 {
			fn(w*64 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// Clone returns a copy; a nil receiver clones to nil.
func (b Bitset) Clone() Bitset {
	if b == nil {
		return nil
	}
	c := make(Bitset, len(b))
	copy(c, b)
	return c
}

// IndexRelation is a mutable binary relation over the integer indices
// [0, n): bit j of row i is set iff the pair (i, j) is present. Rows are
// allocated lazily, so a relation over a large index space whose pairs
// touch few sources stays small.
type IndexRelation struct {
	n     int
	words int
	rows  []Bitset
}

// NewIndexRelation returns an empty relation over [0, n).
func NewIndexRelation(n int) *IndexRelation {
	return &IndexRelation{n: n, words: (n + 63) / 64, rows: make([]Bitset, n)}
}

// N returns the size of the index space.
func (r *IndexRelation) N() int { return r.n }

// Add inserts the pair (i, j).
func (r *IndexRelation) Add(i, j int) { r.MutRow(i).Set(j) }

// AddSym inserts both (i, j) and (j, i).
func (r *IndexRelation) AddSym(i, j int) {
	r.Add(i, j)
	r.Add(j, i)
}

// Has reports whether the pair (i, j) is present.
func (r *IndexRelation) Has(i, j int) bool { return r.rows[i].Has(j) }

// Row returns the successor bitset of i, or nil when empty. Callers must
// not mutate it; use MutRow for that.
func (r *IndexRelation) Row(i int) Bitset { return r.rows[i] }

// MutRow returns the successor bitset of i, allocating it if needed. The
// caller may mutate it in place.
func (r *IndexRelation) MutRow(i int) Bitset {
	if r.rows[i] == nil {
		r.rows[i] = make(Bitset, r.words)
	}
	return r.rows[i]
}

// Reset removes every pair in place, keeping the row table and every
// allocated row for reuse. Only rows [0, used) are cleared — the
// caller's node high-water mark; rows past it were never touched.
func (r *IndexRelation) Reset(used int) {
	if used > len(r.rows) {
		used = len(r.rows)
	}
	for _, row := range r.rows[:used] {
		clear(row)
	}
}

// Len returns the number of pairs.
func (r *IndexRelation) Len() int {
	n := 0
	for _, row := range r.rows {
		n += row.Count()
	}
	return n
}

// Each calls fn for every pair in ascending (i, j) order.
func (r *IndexRelation) Each(fn func(i, j int)) {
	for i, row := range r.rows {
		row.Each(func(j int) { fn(i, j) })
	}
}

// Or adds every pair of other into r.
func (r *IndexRelation) Or(other *IndexRelation) {
	for i, row := range other.rows {
		if row != nil && row.Any() {
			r.MutRow(i).Or(row)
		}
	}
}

// Clone returns a deep copy.
func (r *IndexRelation) Clone() *IndexRelation {
	c := NewIndexRelation(r.n)
	for i, row := range r.rows {
		if row != nil {
			c.rows[i] = row.Clone()
		}
	}
	return c
}

// succLists converts the rows to adjacency lists for the SCC machinery.
func (r *IndexRelation) succLists() [][]int32 {
	succ := make([][]int32, r.n)
	for i, row := range r.rows {
		if row == nil {
			continue
		}
		s := make([]int32, 0, row.Count())
		row.Each(func(j int) { s = append(s, int32(j)) })
		succ[i] = s
	}
	return succ
}

// TransitiveClosure returns a fresh transitively closed copy, via the same
// SCC-condensation algorithm Relation.TransitiveClosure uses, but staying
// entirely on dense rows (no map inserts on the output side).
func (r *IndexRelation) TransitiveClosure() *IndexRelation {
	n := r.n
	out := NewIndexRelation(n)
	if n == 0 {
		return out
	}
	succ := r.succLists()
	comp, order := sccCondensation(n, succ)

	nComp := len(order)
	reach := make([]Bitset, nComp)
	members := make([][]int32, nComp)
	cyclic := make([]bool, nComp)
	for i := 0; i < n; i++ {
		members[comp[i]] = append(members[comp[i]], int32(i))
	}
	for i := 0; i < n; i++ {
		for _, j := range succ[i] {
			if int(j) == i {
				cyclic[comp[i]] = true
			}
		}
	}
	for c := range members {
		if len(members[c]) > 1 {
			cyclic[c] = true
		}
	}
	for _, c := range order {
		rs := NewBitset(n)
		for _, i := range members[c] {
			for _, j := range succ[i] {
				cj := comp[j]
				if cj == c {
					continue
				}
				rs.Set(int(j))
				rs.Or(reach[cj])
			}
		}
		if cyclic[c] {
			for _, i := range members[c] {
				rs.Set(int(i))
			}
		}
		reach[c] = rs
	}
	for i := 0; i < n; i++ {
		if reach[comp[i]].Any() {
			out.rows[i] = reach[comp[i]].Clone()
		}
	}
	return out
}

// HasCycle reports whether the relation, viewed as a directed graph,
// contains a cycle (including self-pairs), via SCC condensation: a cycle
// exists iff some component has more than one member or a self-loop.
func (r *IndexRelation) HasCycle() bool {
	succ := r.succLists()
	for i, s := range succ {
		for _, j := range s {
			if int(j) == i {
				return true
			}
		}
	}
	comp, order := sccCondensation(r.n, succ)
	size := make([]int, len(order))
	for i := 0; i < r.n; i++ {
		size[comp[i]]++
		if size[comp[i]] > 1 {
			return true
		}
	}
	return false
}

// ClosedRelation maintains a transitively closed IndexRelation under
// incremental pair insertion (Italiano-style): alongside the successor
// rows it keeps the transposed predecessor rows, so inserting (a, b) into
// a closed relation only propagates from the nodes that reach a to the
// nodes reached from b — the "incremental closure update" that replaces
// the per-level full TransitiveClosure() of the reduction.
//
// Invariant: after every Insert, succ is its own transitive closure and
// pred is its exact transpose. Cyclic inputs are legal; members of a cycle
// end up reaching themselves (self-pairs), exactly as TransitiveClosure
// reports them.
type ClosedRelation struct {
	succ *IndexRelation
	pred *IndexRelation
}

// NewClosedRelation returns an empty closed relation over [0, n).
func NewClosedRelation(n int) *ClosedRelation {
	return &ClosedRelation{succ: NewIndexRelation(n), pred: NewIndexRelation(n)}
}

// CloseRelation fully closes r and returns it as a ClosedRelation ready
// for incremental updates.
func CloseRelation(r *IndexRelation) *ClosedRelation {
	succ := r.TransitiveClosure()
	pred := NewIndexRelation(r.n)
	succ.Each(func(i, j int) { pred.Add(j, i) })
	return &ClosedRelation{succ: succ, pred: pred}
}

// Insert adds the pair (a, b) and restores transitive closure. For a pair
// already implied it is O(1); otherwise it ORs the reach set of b into
// every node that reaches a (and maintains the transpose), O((|pred*(a)| +
// |succ*(b)|) · n/64) in the worst case and much less in practice.
func (c *ClosedRelation) Insert(a, b int) {
	if c.succ.Has(a, b) {
		return
	}
	// Snapshot before mutation: the loops below modify the very rows the
	// source/target sets are derived from.
	targets := c.succ.Row(b).Clone()
	if targets == nil {
		targets = NewBitset(c.succ.n)
	}
	targets.Set(b)
	sources := c.pred.Row(a).Clone()
	if sources == nil {
		sources = NewBitset(c.succ.n)
	}
	sources.Set(a)
	sources.Each(func(x int) { c.succ.MutRow(x).Or(targets) })
	targets.Each(func(y int) { c.pred.MutRow(y).Or(sources) })
}

// Reset removes every pair in place; see IndexRelation.Reset.
func (c *ClosedRelation) Reset(used int) {
	c.succ.Reset(used)
	c.pred.Reset(used)
}

// Has reports whether (a, b) is in the closure.
func (c *ClosedRelation) Has(a, b int) bool { return c.succ.Has(a, b) }

// Row returns the (closed) successor set of a. Callers must not mutate it.
func (c *ClosedRelation) Row(a int) Bitset { return c.succ.Row(a) }

// PredRow returns the (closed) predecessor set of a. Callers must not
// mutate it.
func (c *ClosedRelation) PredRow(a int) Bitset { return c.pred.Row(a) }

// Rel returns the underlying closed successor relation. Callers must not
// mutate it; Clone first.
func (c *ClosedRelation) Rel() *IndexRelation { return c.succ }

// Len returns the number of pairs in the closure.
func (c *ClosedRelation) Len() int { return c.succ.Len() }

// Each calls fn for every pair of the closure in ascending order.
func (c *ClosedRelation) Each(fn func(i, j int)) { c.succ.Each(fn) }

// ToRelation materializes an index relation as a string-keyed Relation,
// mapping index i to ids[i]. Only pair endpoints are registered as nodes;
// register extra nodes on the result as needed.
func ToRelation[T ~string](r *IndexRelation, ids []T) *Relation[T] {
	out := New[T]()
	r.Each(func(i, j int) { out.Add(ids[i], ids[j]) })
	return out
}
