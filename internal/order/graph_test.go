package order

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestHasCycle(t *testing.T) {
	tests := []struct {
		name  string
		pairs [][2]string
		want  bool
	}{
		{"empty", nil, false},
		{"chain", [][2]string{{"a", "b"}, {"b", "c"}}, false},
		{"self", [][2]string{{"a", "a"}}, true},
		{"two-cycle", [][2]string{{"a", "b"}, {"b", "a"}}, true},
		{"long-cycle", [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "a"}}, true},
		{"diamond-acyclic", [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			r := FromPairs(tc.pairs...)
			if got := r.HasCycle(); got != tc.want {
				t.Fatalf("HasCycle = %v, want %v", got, tc.want)
			}
			if got := r.IsAcyclic(); got == tc.want {
				t.Fatalf("IsAcyclic must be the negation of HasCycle")
			}
		})
	}
}

func TestFindCycleReturnsRealCycle(t *testing.T) {
	r := FromPairs(
		[2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "a"},
		[2]string{"x", "y"},
	)
	c := r.FindCycle()
	if len(c) != 3 {
		t.Fatalf("cycle length = %d, want 3 (%v)", len(c), c)
	}
	for i := range c {
		if !r.Has(c[i], c[(i+1)%len(c)]) {
			t.Fatalf("reported cycle %v uses pair (%s,%s) not in relation", c, c[i], c[(i+1)%len(c)])
		}
	}
}

func TestFindCycleSelfPair(t *testing.T) {
	r := FromPairs([2]string{"a", "a"})
	c := r.FindCycle()
	if len(c) != 1 || c[0] != "a" {
		t.Fatalf("self-pair cycle = %v, want [a]", c)
	}
}

// Property: FindCycle returns a valid cycle whenever it returns non-nil, and
// returns nil exactly when TopoSort succeeds.
func TestCycleVsTopoSortConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := randomRelation(rand.New(rand.NewSource(seed)), 9, 12)
		c := r.FindCycle()
		_, sortOK := r.TopoSort()
		if (c == nil) != sortOK {
			return false
		}
		if c != nil {
			for i := range c {
				if !r.Has(c[i], c[(i+1)%len(c)]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTopoSortRespectsPairsAndIsDeterministic(t *testing.T) {
	r := FromPairs(
		[2]string{"c", "a"},
		[2]string{"c", "b"},
		[2]string{"a", "d"},
		[2]string{"b", "d"},
	)
	got, ok := r.TopoSort()
	if !ok {
		t.Fatal("TopoSort failed on a DAG")
	}
	want := []string{"c", "a", "b", "d"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopoSort = %v, want %v (lexicographic tie-break)", got, want)
	}
}

func TestTopoSortIncludesIsolatedNodes(t *testing.T) {
	r := New[string]()
	r.AddNode("solo")
	r.Add("a", "b")
	got, ok := r.TopoSort()
	if !ok || len(got) != 3 {
		t.Fatalf("TopoSort = %v ok=%v, want 3 nodes", got, ok)
	}
}

func TestTopoSortFailsOnSelfPair(t *testing.T) {
	r := FromPairs([2]string{"a", "a"}, [2]string{"a", "b"})
	if _, ok := r.TopoSort(); ok {
		t.Fatal("TopoSort succeeded despite a self-pair")
	}
}

// Property: every topological order respects every pair.
func TestTopoSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build a random DAG by only adding forward pairs over a random
		// permutation, so TopoSort must succeed.
		n := 8
		perm := rng.Perm(n)
		names := make([]string, n)
		for i, p := range perm {
			names[i] = string(rune('a' + p))
		}
		r := New[string]()
		for i := 0; i < n; i++ {
			r.AddNode(names[i])
		}
		for k := 0; k < 12; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i < j {
				r.Add(names[i], names[j])
			}
		}
		sorted, ok := r.TopoSort()
		if !ok {
			return false
		}
		pos := map[string]int{}
		for i, s := range sorted {
			pos[s] = i
		}
		good := true
		r.Each(func(a, b string) {
			if pos[a] >= pos[b] {
				good = false
			}
		})
		return good
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSCCs(t *testing.T) {
	r := FromPairs(
		[2]string{"a", "b"}, [2]string{"b", "a"}, // component {a,b}
		[2]string{"c", "c"}, // self-pair component {c}
		[2]string{"d", "e"}, // acyclic, no component
		[2]string{"b", "c"},
	)
	got := r.SCCs()
	want := [][]string{{"a", "b"}, {"c"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SCCs = %v, want %v", got, want)
	}
}

func TestSCCsEmptyOnDAG(t *testing.T) {
	r := FromPairs([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"a", "c"})
	if got := r.SCCs(); len(got) != 0 {
		t.Fatalf("SCCs on DAG = %v, want none", got)
	}
}

// Property: relation has a cycle iff it has at least one SCC with a pair.
func TestSCCsAgreeWithHasCycle(t *testing.T) {
	f := func(seed int64) bool {
		r := randomRelation(rand.New(rand.NewSource(seed)), 10, 15)
		return (len(r.SCCs()) > 0) == r.HasCycle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
