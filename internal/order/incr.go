package order

import "math/bits"

// This file adds the two primitives the incremental Comp-C engine
// (internal/front.Incremental) needs on top of the interned-index core:
// growing the index space of a live relation without invalidating its
// rows, and closure insertion that reports exactly the pairs it newly
// derived (the frontier the engine propagates to the next reduction
// level).

// Grow returns a bitset able to hold indices [0, n), preserving the set
// bits. The receiver is returned unchanged when it is already wide
// enough; otherwise a widened copy is returned (the word-parallel
// operators panic on mismatched lengths, so every bitset sharing an
// index space must be regrown together).
func (b Bitset) Grow(n int) Bitset {
	words := (n + 63) / 64
	if words <= len(b) {
		return b
	}
	nb := make(Bitset, words)
	copy(nb, b)
	return nb
}

// Grow widens the index space to [0, n), keeping every pair. Allocated
// rows are re-widened eagerly so they stay composable with fresh rows.
func (r *IndexRelation) Grow(n int) {
	if n <= r.n {
		return
	}
	words := (n + 63) / 64
	if words > r.words {
		for i, row := range r.rows {
			if row != nil {
				r.rows[i] = row.Grow(n)
			}
		}
	}
	if n > len(r.rows) {
		r.rows = append(r.rows, make([]Bitset, n-len(r.rows))...)
	}
	r.n, r.words = n, words
}

// Grow widens the index space of the closed relation (and its transpose)
// to [0, n).
func (c *ClosedRelation) Grow(n int) {
	c.succ.Grow(n)
	c.pred.Grow(n)
}

// InsertFunc is Insert with a delta callback: it adds (a, b), restores
// transitive closure, and calls fn once for every pair (x, y) that was
// NOT in the closure before this call and is now — including (a, b)
// itself when it was new. Callback order is per-source ascending. The
// callback must not mutate the relation.
func (c *ClosedRelation) InsertFunc(a, b int, fn func(x, y int)) {
	if c.succ.Has(a, b) {
		return
	}
	// Snapshot before mutation, exactly as Insert does: the loops below
	// modify the very rows the source/target sets are derived from.
	targets := c.succ.Row(b).Clone()
	if targets == nil {
		targets = NewBitset(c.succ.n)
	}
	targets.Set(b)
	sources := c.pred.Row(a).Clone()
	if sources == nil {
		sources = NewBitset(c.succ.n)
	}
	sources.Set(a)
	sources.Each(func(x int) {
		row := c.succ.MutRow(x)
		for w, tw := range targets {
			added := tw &^ row[w]
			if added == 0 {
				continue
			}
			row[w] |= added
			for added != 0 {
				y := w*64 + bits.TrailingZeros64(added)
				added &= added - 1
				fn(x, y)
			}
		}
	})
	targets.Each(func(y int) { c.pred.MutRow(y).Or(sources) })
}
