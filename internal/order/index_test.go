package order

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// ids returns the node names "n00".."n<n-1>" used to cross-check index
// relations against the string-keyed Relation: two-digit names make
// lexicographic order coincide with index order.
func idNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("n%02d", i)
	}
	return out
}

// TestIncrementalClosureProperty is the core property of the incremental
// engine: inserting random edges one at a time into a ClosedRelation
// yields, after every single insertion, exactly the transitive closure
// that IndexRelation.TransitiveClosure and the string-keyed
// Relation.TransitiveClosure compute from scratch — including cyclic
// graphs (self-pairs for every member of a cycle) and the predecessor
// index (the transpose of the closure).
func TestIncrementalClosureProperty(t *testing.T) {
	const seeds = 250
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		edges := rng.Intn(3 * n)
		names := idNames(n)

		inc := NewClosedRelation(n)
		raw := NewIndexRelation(n)
		sref := New[string]()
		for k := 0; k < edges; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			inc.Insert(a, b)
			raw.Add(a, b)
			sref.Add(names[a], names[b])

			full := raw.TransitiveClosure()
			if !indexRelationsEqual(inc.Rel(), full) {
				t.Fatalf("seed %d, edge %d (%d,%d): incremental closure diverged from full closure",
					seed, k, a, b)
			}
			// Predecessor rows must be the exact transpose.
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if inc.Has(i, j) != inc.PredRow(j).Has(i) {
						t.Fatalf("seed %d: pred index out of sync at (%d,%d)", seed, i, j)
					}
				}
			}
			// And both must match the string-keyed reference closure.
			sclosed := sref.TransitiveClosure()
			got := ToRelation(inc.Rel(), names)
			if !got.Equal(sclosed) || !sclosed.Equal(got) {
				t.Fatalf("seed %d, edge %d: index closure %v != string closure %v",
					seed, k, got.Pairs(), sclosed.Pairs())
			}
		}
	}
}

// TestIndexHasCycleMatchesReference cross-checks IndexRelation.HasCycle
// against the string-keyed HasCycle on random graphs.
func TestIndexHasCycleMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 250; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		names := idNames(n)
		r := NewIndexRelation(n)
		sref := New[string]()
		for k := rng.Intn(3 * n); k > 0; k-- {
			a, b := rng.Intn(n), rng.Intn(n)
			r.Add(a, b)
			sref.Add(names[a], names[b])
		}
		if got, want := r.HasCycle(), sref.HasCycle(); got != want {
			t.Fatalf("seed %d: index HasCycle=%v, reference=%v over %v", seed, got, want, sref.Pairs())
		}
	}
}

// TestClosedRelationInsertIdempotent checks the early-exit path: inserting
// a pair already implied by the closure must change nothing.
func TestClosedRelationInsertIdempotent(t *testing.T) {
	c := NewClosedRelation(4)
	c.Insert(0, 1)
	c.Insert(1, 2)
	before := c.Rel().Clone()
	c.Insert(0, 2) // already implied by transitivity
	c.Insert(0, 1) // already present
	if !indexRelationsEqual(c.Rel(), before) {
		t.Fatal("inserting implied pairs must be a no-op")
	}
	if c.Len() != 3 {
		t.Fatalf("closure of 0->1->2 has %d pairs, want 3", c.Len())
	}
}

// TestCloseRelationMatchesTransitiveClosure checks the bulk constructor
// against the from-scratch closure and its transpose.
func TestCloseRelationMatchesTransitiveClosure(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		raw := NewIndexRelation(n)
		for k := rng.Intn(3 * n); k > 0; k-- {
			raw.Add(rng.Intn(n), rng.Intn(n))
		}
		c := CloseRelation(raw.Clone())
		full := raw.TransitiveClosure()
		if !indexRelationsEqual(c.Rel(), full) {
			t.Fatalf("seed %d: CloseRelation != TransitiveClosure", seed)
		}
		c.Each(func(i, j int) {
			if !c.PredRow(j).Has(i) {
				t.Fatalf("seed %d: missing pred bit (%d,%d)", seed, i, j)
			}
		})
	}
}

// TestBitsetOps pins the word-parallel composite operations the front
// engine builds on.
func TestBitsetOps(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
		if !b.Has(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("count = %d, want 4", b.Count())
	}
	b.Clear(64)
	if b.Has(64) || b.Count() != 3 {
		t.Fatal("clear failed")
	}
	x, y := NewBitset(130), NewBitset(130)
	x.Set(5)
	x.Set(99)
	y.Set(99)
	z := NewBitset(130)
	z.OrAnd(x, y) // {99}
	if !z.Has(99) || z.Count() != 1 {
		t.Fatalf("OrAnd = %v bits", z.Count())
	}
	z.OrAndNot(x, y) // |= {5}
	if !z.Has(5) || z.Count() != 2 {
		t.Fatal("OrAndNot failed")
	}
	z.OrAnd(nil, y) // no-op
	if z.Count() != 2 {
		t.Fatal("nil OrAnd must be a no-op")
	}
	var got []int
	z.Each(func(i int) { got = append(got, i) })
	if !reflect.DeepEqual(got, []int{5, 99}) {
		t.Fatalf("Each order = %v, want ascending", got)
	}
	if Bitset(nil).Has(3) || Bitset(nil).Any() || Bitset(nil).Clone() != nil {
		t.Fatal("nil bitset must behave as empty")
	}
}

// TestToRelation checks materialization back to the string layer.
func TestToRelation(t *testing.T) {
	r := NewIndexRelation(3)
	r.Add(0, 2)
	r.Add(2, 1)
	got := ToRelation(r, []string{"a", "b", "c"})
	want := FromPairs([2]string{"a", "c"}, [2]string{"c", "b"})
	if !got.Equal(want) || !want.Equal(got) {
		t.Fatalf("ToRelation = %v", got.Pairs())
	}
}

// indexRelationsEqual compares two relations over the same index space.
func indexRelationsEqual(a, b *IndexRelation) bool {
	if a.Len() != b.Len() {
		return false
	}
	eq := true
	a.Each(func(i, j int) {
		if !b.Has(i, j) {
			eq = false
		}
	})
	return eq
}

// TestEqualIsSymmetric backs the documented soundness argument of
// Relation.Equal: with duplicate-free pair sets, Len-plus-one-sided-subset
// is a full equality test, so Equal must agree in both directions even for
// relations with equal sizes but different pairs.
func TestEqualIsSymmetric(t *testing.T) {
	r := FromPairs([2]string{"a", "b"}, [2]string{"b", "c"})
	s := FromPairs([2]string{"a", "b"}, [2]string{"c", "b"}) // same size, one pair flipped
	if r.Equal(s) || s.Equal(r) {
		t.Fatal("differing pair sets of equal size must be unequal both ways")
	}
	u := FromPairs([2]string{"b", "c"}, [2]string{"a", "b"}) // same pairs, different build order
	if !r.Equal(u) || !u.Equal(r) {
		t.Fatal("identical pair sets must be equal both ways")
	}
	// Node registration is ignored by design.
	v := u.Clone()
	v.AddNode("isolated")
	if !r.Equal(v) || !v.Equal(r) {
		t.Fatal("isolated registered nodes must not affect Equal")
	}
	// Random cross-check: Equal(a,b) == Equal(b,a) == pair-set equality.
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		names := idNames(5)
		a, b := New[string](), New[string]()
		for k := 0; k < 6; k++ {
			a.Add(names[rng.Intn(5)], names[rng.Intn(5)])
			b.Add(names[rng.Intn(5)], names[rng.Intn(5)])
		}
		want := a.Contains(b) && b.Contains(a)
		if a.Equal(b) != want || b.Equal(a) != want {
			t.Fatalf("seed %d: Equal asymmetric or wrong: %v vs %v", seed, a.Pairs(), b.Pairs())
		}
	}
}

// BenchmarkNodesSorted quantifies the cost of deterministic (sorted)
// node enumeration after the sort.Slice -> slices.Sort migration.
func BenchmarkNodesSorted(b *testing.B) {
	r := New[string]()
	names := idNames(64)
	for i, a := range names {
		for _, c := range names[i+1:] {
			if (i+len(c))%3 == 0 {
				r.Add(a, c)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.Nodes()) != 64 {
			b.Fatal("unexpected node count")
		}
	}
}

// BenchmarkIncrementalInsert measures one incremental closure update on a
// mid-size sparse order, the per-pair cost Step pays during obs lifting.
func BenchmarkIncrementalInsert(b *testing.B) {
	const n = 256
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewClosedRelation(n)
		for k := 0; k < n-1; k++ {
			c.Insert(k, k+1)
		}
	}
}
