package order

// Quotient contracts the relation by the grouping function: every node n is
// replaced by groupOf(n), and pairs internal to one group are dropped.
// This is the constraint-graph contraction used to decide whether the
// rearranged front F** of Definition 16 step 1 exists: each transaction
// being reduced forms one group, every surviving front node is its own
// singleton group, and F** exists iff the quotient is acyclic and every
// group is internally acyclic (see GroupableBy).
func (r *Relation[T]) Quotient(groupOf func(T) T) *Relation[T] {
	return r.Map(groupOf)
}

// GroupableBy reports whether the nodes of r can be arranged in a total
// order that (a) respects every pair of r and (b) keeps each group
// contiguous. On failure it reports which stage failed:
//
//   - a group that is internally cyclic (no internal sequence exists), or
//   - a cycle between groups in the quotient graph (no isolated placement
//     of the groups exists).
//
// This is the classical reducibility argument: given an acyclic quotient,
// topologically sort the groups, then each group internally; conversely any
// contiguous arrangement induces a total group order consistent with all
// cross-group pairs, so the quotient must be acyclic.
func (r *Relation[T]) GroupableBy(groupOf func(T) T) (ok bool, badGroup T, quotientCycle []T) {
	// Internal acyclicity per group.
	byGroup := make(map[T]*Relation[T])
	for n := range r.nodes {
		g := groupOf(n)
		gr, ok := byGroup[g]
		if !ok {
			gr = New[T]()
			byGroup[g] = gr
		}
		gr.AddNode(n)
	}
	r.Each(func(a, b T) {
		ga, gb := groupOf(a), groupOf(b)
		if ga == gb {
			byGroup[ga].Add(a, b)
		}
	})
	// Deterministic group iteration.
	groups := make([]T, 0, len(byGroup))
	for g := range byGroup {
		groups = append(groups, g)
	}
	sortSlice(groups)
	for _, g := range groups {
		if byGroup[g].HasCycle() {
			return false, g, nil
		}
	}

	q := r.Quotient(groupOf)
	if c := q.FindCycle(); c != nil {
		return false, badGroup, c
	}
	return true, badGroup, nil
}

// GroupedTopoSort returns a total order of all nodes in which every group is
// contiguous and every pair of r is respected, or ok=false when impossible.
// Within the result, groups appear in quotient topological order and nodes
// within a group in the group's internal topological order.
func (r *Relation[T]) GroupedTopoSort(groupOf func(T) T) (sorted []T, ok bool) {
	okG, _, _ := r.GroupableBy(groupOf)
	if !okG {
		return nil, false
	}
	q := r.Quotient(groupOf)
	groupOrder, ok := q.TopoSort()
	if !ok {
		return nil, false
	}
	for _, g := range groupOrder {
		inner := r.Restrict(func(n T) bool { return groupOf(n) == g })
		innerSorted, ok := inner.TopoSort()
		if !ok {
			return nil, false
		}
		sorted = append(sorted, innerSorted...)
	}
	if len(sorted) != len(r.nodes) {
		return nil, false
	}
	return sorted, true
}
