package order

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// groupByPrefix groups node names by their first rune ("a1" -> "a").
func groupByPrefix(n string) string { return n[:1] }

func TestGroupableBySimple(t *testing.T) {
	// Two groups a{a1,a2} and b{b1}: a1 -> b1 -> is fine, groups contiguous.
	r := FromPairs([2]string{"a1", "a2"}, [2]string{"a2", "b1"})
	ok, _, _ := r.GroupableBy(groupByPrefix)
	if !ok {
		t.Fatal("straight-line grouping should be possible")
	}
}

func TestGroupableByInterleavingForced(t *testing.T) {
	// a1 -> b1 -> a2 forces b1 in between a's operations: quotient cycle a<->b.
	r := FromPairs([2]string{"a1", "b1"}, [2]string{"b1", "a2"})
	ok, _, cyc := r.GroupableBy(groupByPrefix)
	if ok {
		t.Fatal("interleaving a1->b1->a2 must not be groupable")
	}
	if len(cyc) == 0 {
		t.Fatal("expected a quotient cycle to be reported")
	}
	joined := strings.Join(cyc, "")
	if !strings.Contains(joined, "a") || !strings.Contains(joined, "b") {
		t.Fatalf("quotient cycle %v should involve groups a and b", cyc)
	}
}

func TestGroupableByInternalCycle(t *testing.T) {
	r := FromPairs([2]string{"a1", "a2"}, [2]string{"a2", "a1"})
	ok, bad, _ := r.GroupableBy(groupByPrefix)
	if ok {
		t.Fatal("internally cyclic group must fail")
	}
	if bad != "a" {
		t.Fatalf("bad group = %q, want a", bad)
	}
}

func TestGroupedTopoSortContiguity(t *testing.T) {
	r := FromPairs(
		[2]string{"a1", "a2"},
		[2]string{"a2", "b1"},
		[2]string{"b1", "b2"},
		[2]string{"c1", "b2"},
	)
	r.AddNode("c2")
	sorted, ok := r.GroupedTopoSort(groupByPrefix)
	if !ok {
		t.Fatal("GroupedTopoSort failed on a groupable relation")
	}
	if len(sorted) != 6 {
		t.Fatalf("sorted has %d nodes, want 6: %v", len(sorted), sorted)
	}
	assertContiguousGroups(t, sorted, groupByPrefix)
	pos := map[string]int{}
	for i, n := range sorted {
		pos[n] = i
	}
	r.Each(func(a, b string) {
		if pos[a] >= pos[b] {
			t.Errorf("order violates pair (%s,%s): %v", a, b, sorted)
		}
	})
}

func TestGroupedTopoSortFailure(t *testing.T) {
	r := FromPairs([2]string{"a1", "b1"}, [2]string{"b1", "a2"})
	if _, ok := r.GroupedTopoSort(groupByPrefix); ok {
		t.Fatal("GroupedTopoSort should fail when grouping is impossible")
	}
}

func assertContiguousGroups(t *testing.T, sorted []string, groupOf func(string) string) {
	t.Helper()
	seen := map[string]bool{}
	var cur string
	for _, n := range sorted {
		g := groupOf(n)
		if g != cur {
			if seen[g] {
				t.Fatalf("group %q is not contiguous in %v", g, sorted)
			}
			seen[g] = true
			cur = g
		}
	}
}

// Property: whenever GroupableBy says yes, GroupedTopoSort produces a valid
// witness (contiguous groups, all pairs respected); whenever it says no,
// GroupedTopoSort fails too.
func TestGroupableByWitnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New[string]()
		nodes := []string{}
		for g := 0; g < 3; g++ {
			for i := 0; i < 3; i++ {
				n := fmt.Sprintf("%c%d", 'a'+g, i)
				nodes = append(nodes, n)
				r.AddNode(n)
			}
		}
		for k := 0; k < 7; k++ {
			a := nodes[rng.Intn(len(nodes))]
			b := nodes[rng.Intn(len(nodes))]
			if a != b {
				r.Add(a, b)
			}
		}
		ok, _, _ := r.GroupableBy(groupByPrefix)
		sorted, sortOK := r.GroupedTopoSort(groupByPrefix)
		if ok != sortOK {
			return false
		}
		if !ok {
			return true
		}
		pos := map[string]int{}
		for i, n := range sorted {
			pos[n] = i
		}
		good := true
		r.Each(func(a, b string) {
			if pos[a] >= pos[b] {
				good = false
			}
		})
		// Contiguity.
		cur, seen := "", map[string]bool{}
		for _, n := range sorted {
			g := groupByPrefix(n)
			if g != cur {
				if seen[g] {
					good = false
				}
				seen[g] = true
				cur = g
			}
		}
		return good
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
