package order

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddHasRemove(t *testing.T) {
	r := New[string]()
	if r.Has("a", "b") {
		t.Fatal("empty relation should not contain (a,b)")
	}
	r.Add("a", "b")
	if !r.Has("a", "b") {
		t.Fatal("missing (a,b) after Add")
	}
	if r.Has("b", "a") {
		t.Fatal("relation must be directed")
	}
	if got := r.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	r.Add("a", "b") // duplicate insert is idempotent
	if got := r.Len(); got != 1 {
		t.Fatalf("Len after duplicate Add = %d, want 1", got)
	}
	r.Remove("a", "b")
	if r.Has("a", "b") {
		t.Fatal("(a,b) survived Remove")
	}
	if !r.HasNode("a") || !r.HasNode("b") {
		t.Fatal("Remove must not unregister nodes")
	}
}

func TestRemoveNode(t *testing.T) {
	r := FromPairs([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "a"})
	r.RemoveNode("b")
	if r.Has("a", "b") || r.Has("b", "c") {
		t.Fatal("pairs involving removed node survived")
	}
	if !r.Has("c", "a") {
		t.Fatal("unrelated pair was dropped")
	}
	if r.HasNode("b") {
		t.Fatal("node b still registered")
	}
}

func TestNodesSortedAndIsolated(t *testing.T) {
	r := New[string]()
	r.Add("b", "c")
	r.AddNode("a")
	want := []string{"a", "b", "c"}
	if got := r.Nodes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Nodes = %v, want %v", got, want)
	}
}

func TestPairsDeterministic(t *testing.T) {
	r := FromPairs(
		[2]string{"x", "y"},
		[2]string{"a", "b"},
		[2]string{"a", "a"},
		[2]string{"x", "a"},
	)
	want := [][2]string{{"a", "a"}, {"a", "b"}, {"x", "a"}, {"x", "y"}}
	if got := r.Pairs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Pairs = %v, want %v", got, want)
	}
}

func TestUnionRestrictClone(t *testing.T) {
	a := FromPairs([2]string{"1", "2"})
	b := FromPairs([2]string{"2", "3"})
	u := UnionOf(a, b)
	if !u.Has("1", "2") || !u.Has("2", "3") {
		t.Fatal("union is missing pairs")
	}
	if a.Has("2", "3") {
		t.Fatal("UnionOf must not mutate its arguments")
	}

	c := u.Clone()
	c.Add("3", "1")
	if u.Has("3", "1") {
		t.Fatal("Clone is not independent")
	}

	res := u.Restrict(func(n string) bool { return n != "2" })
	if res.Len() != 0 {
		t.Fatalf("Restrict kept %d pairs, want 0", res.Len())
	}
	if res.HasNode("2") {
		t.Fatal("Restrict kept an excluded node")
	}
	if !res.HasNode("1") || !res.HasNode("3") {
		t.Fatal("Restrict dropped included nodes")
	}
}

func TestMapDropsContractedSelfPairs(t *testing.T) {
	r := FromPairs([2]string{"a1", "a2"}, [2]string{"a2", "b1"})
	m := r.Map(func(n string) string { return n[:1] })
	if m.Has("a", "a") {
		t.Fatal("Map must drop contracted self-pairs")
	}
	if !m.Has("a", "b") {
		t.Fatal("Map lost a cross-group pair")
	}
}

func TestEqualContains(t *testing.T) {
	a := FromPairs([2]string{"x", "y"}, [2]string{"y", "z"})
	b := FromPairs([2]string{"y", "z"}, [2]string{"x", "y"})
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("Equal should hold irrespective of insertion order")
	}
	b.Add("z", "x")
	if a.Equal(b) {
		t.Fatal("Equal must detect extra pairs")
	}
	if !b.Contains(a) {
		t.Fatal("b should contain a")
	}
	if a.Contains(b) {
		t.Fatal("a should not contain b")
	}
}

func TestTransitiveClosureChain(t *testing.T) {
	r := FromPairs([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"})
	tc := r.TransitiveClosure()
	for _, p := range [][2]string{{"a", "c"}, {"a", "d"}, {"b", "d"}} {
		if !tc.Has(p[0], p[1]) {
			t.Errorf("closure missing (%s,%s)", p[0], p[1])
		}
	}
	if tc.Has("d", "a") {
		t.Error("closure invented a reverse pair")
	}
	if tc.Has("a", "a") {
		t.Error("closure of an acyclic chain must not contain self-pairs")
	}
}

func TestTransitiveClosureCycleYieldsSelfPairs(t *testing.T) {
	r := FromPairs([2]string{"a", "b"}, [2]string{"b", "a"})
	tc := r.TransitiveClosure()
	if !tc.Has("a", "a") || !tc.Has("b", "b") {
		t.Fatal("closure of a 2-cycle must contain self-pairs")
	}
}

// Property: transitive closure is idempotent and monotone.
func TestTransitiveClosureProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := randomRelation(rand.New(rand.NewSource(seed)), 8, 12)
		tc := r.TransitiveClosure()
		if !tc.Contains(r) {
			return false
		}
		return tc.TransitiveClosure().Equal(tc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: closure is actually transitively closed.
func TestClosureIsClosed(t *testing.T) {
	f := func(seed int64) bool {
		r := randomRelation(rand.New(rand.NewSource(seed)), 7, 14)
		tc := r.TransitiveClosure()
		ok := true
		tc.Each(func(a, b string) {
			tc.Each(func(c, d string) {
				if b == c && !tc.Has(a, d) {
					ok = false
				}
			})
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReachable(t *testing.T) {
	r := FromPairs([2]string{"a", "b"}, [2]string{"b", "c"})
	if !r.Reachable("a", "c") {
		t.Fatal("c should be reachable from a")
	}
	if r.Reachable("c", "a") {
		t.Fatal("a should not be reachable from c")
	}
	if r.Reachable("a", "a") {
		t.Fatal("a is not on a cycle; Reachable(a,a) should be false")
	}
	r.Add("c", "a")
	if !r.Reachable("a", "a") {
		t.Fatal("a is on a cycle now")
	}
}

func randomRelation(rng *rand.Rand, nodes, pairs int) *Relation[string] {
	r := New[string]()
	for i := 0; i < nodes; i++ {
		r.AddNode(fmt.Sprintf("n%02d", i))
	}
	for i := 0; i < pairs; i++ {
		a := fmt.Sprintf("n%02d", rng.Intn(nodes))
		b := fmt.Sprintf("n%02d", rng.Intn(nodes))
		r.Add(a, b)
	}
	return r
}
