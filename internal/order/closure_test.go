package order

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestClosureSCCEdgeCases(t *testing.T) {
	// Two-node cycle feeding a chain: every cycle member reaches itself,
	// the other member, and the whole chain.
	r := FromPairs(
		[2]string{"a", "b"}, [2]string{"b", "a"},
		[2]string{"b", "c"}, [2]string{"c", "d"},
	)
	tc := r.TransitiveClosure()
	for _, p := range [][2]string{
		{"a", "a"}, {"a", "b"}, {"b", "b"}, {"b", "a"},
		{"a", "c"}, {"a", "d"}, {"b", "d"}, {"c", "d"},
	} {
		if !tc.Has(p[0], p[1]) {
			t.Errorf("closure missing (%s,%s)", p[0], p[1])
		}
	}
	for _, p := range [][2]string{{"c", "a"}, {"d", "a"}, {"c", "c"}, {"d", "d"}} {
		if tc.Has(p[0], p[1]) {
			t.Errorf("closure has spurious (%s,%s)", p[0], p[1])
		}
	}
}

func TestClosureSelfLoopOnly(t *testing.T) {
	r := FromPairs([2]string{"x", "x"})
	r.AddNode("y")
	tc := r.TransitiveClosure()
	if !tc.Has("x", "x") {
		t.Fatal("self-loop must survive closure")
	}
	if tc.Has("y", "y") || tc.Len() != 1 {
		t.Fatalf("closure = %v", tc.Pairs())
	}
}

func TestClosureDisconnectedComponents(t *testing.T) {
	r := FromPairs(
		[2]string{"a", "b"},
		[2]string{"x", "y"}, [2]string{"y", "z"},
	)
	tc := r.TransitiveClosure()
	if tc.Has("a", "x") || tc.Has("b", "z") {
		t.Fatal("closure crossed disconnected components")
	}
	if !tc.Has("x", "z") {
		t.Fatal("closure missing within-component pair")
	}
}

// TestClosureMatchesNaive cross-checks the bitset/SCC implementation
// against a straightforward per-node DFS on random graphs.
func TestClosureMatchesNaive(t *testing.T) {
	naive := func(r *Relation[string]) *Relation[string] {
		out := New[string]()
		for _, n := range r.Nodes() {
			out.AddNode(n)
		}
		for _, a := range r.Nodes() {
			seen := map[string]bool{}
			stack := append([]string(nil), r.Successors(a)...)
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if seen[n] {
					continue
				}
				seen[n] = true
				out.Add(a, n)
				stack = append(stack, r.Successors(n)...)
			}
		}
		return out
	}
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, 3+rng.Intn(10), rng.Intn(25))
		got := r.TransitiveClosure()
		want := naive(r)
		if !got.Equal(want) {
			t.Fatalf("seed %d: closure mismatch\ngot  %v\nwant %v", seed, got.Pairs(), want.Pairs())
		}
	}
}

func BenchmarkTransitiveClosure(b *testing.B) {
	for _, size := range []struct{ nodes, pairs int }{
		{50, 100}, {200, 400}, {500, 1000},
	} {
		b.Run(fmt.Sprintf("n=%d_e=%d", size.nodes, size.pairs), func(b *testing.B) {
			r := randomRelation(rand.New(rand.NewSource(1)), size.nodes, size.pairs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.TransitiveClosure()
			}
		})
	}
}
