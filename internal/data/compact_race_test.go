package data

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCompactConcurrentStableReads is the compaction safety property test
// (run with -race): while writers append and retire versions and a
// compactor repeatedly prunes chains at the registered-snapshot frontier,
// every value a reader pinned with StableRead must keep reading back
// identically at its stamp — compaction may only drop history nobody can
// still address.
//
// The test mirrors the runtime's discipline (sched's checkpoint cut): a
// reader takes its snapshot and registers its stamp under the read side
// of a gate; the compactor computes the frontier and compacts under the
// write side, so it never misses an in-flight registration.
func TestCompactConcurrentStableReads(t *testing.T) {
	const (
		writers = 4
		readers = 4
		rounds  = 200
		rereads = 25
	)
	s := NewStore()
	s.Set("a", 1000)

	var (
		gate     sync.RWMutex
		regMu    sync.Mutex
		regs     = map[int]uint64{}
		regSeq   int
		dropped  atomic.Int64
		done     atomic.Bool
		wg       sync.WaitGroup
		failures atomic.Int64
	)
	register := func(ts uint64) int {
		regMu.Lock()
		defer regMu.Unlock()
		regSeq++
		regs[regSeq] = ts
		return regSeq
	}
	deregister := func(id int) {
		regMu.Lock()
		delete(regs, id)
		regMu.Unlock()
	}
	frontier := func() uint64 {
		f := s.Clock() + 1
		regMu.Lock()
		for _, ts := range regs {
			if ts < f {
				f = ts
			}
		}
		regMu.Unlock()
		return f
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				owner := fmt.Sprintf("W%d-%d", w, i)
				if _, err := s.ApplyAs(Op{Mode: ModeIncr, Item: "a", Arg: 1}, owner); err != nil {
					t.Error(err)
					return
				}
				s.Retire(owner)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				gate.RLock()
				val, ts := s.StableRead("a", fmt.Sprintf("R%d", r))
				id := register(ts)
				gate.RUnlock()
				for k := 0; k < rereads; k++ {
					if got := s.ReadAt("a", ts); got != val {
						failures.Add(1)
						t.Errorf("pinned read at stamp %d moved: %d -> %d", ts, val, got)
						deregister(id)
						return
					}
				}
				deregister(id)
			}
		}(r)
	}
	// The compactor races the workers for their whole lifetime, then makes
	// one final pass after they are done — by then every writer round has
	// retired a version, so a zero total means compaction is broken, not
	// that the loop lost the scheduling race.
	compDone := make(chan struct{})
	go func() {
		defer close(compDone)
		for !done.Load() {
			gate.Lock()
			dropped.Add(int64(s.Compact(frontier())))
			gate.Unlock()
		}
		gate.Lock()
		dropped.Add(int64(s.Compact(frontier())))
		gate.Unlock()
	}()

	wg.Wait()
	done.Store(true)
	<-compDone

	if failures.Load() > 0 {
		t.Fatalf("%d pinned reads changed under compaction", failures.Load())
	}
	if got, want := s.Get("a"), int64(1000+writers*rounds); got != want {
		t.Fatalf("final value = %d, want %d", got, want)
	}
	if dropped.Load() == 0 {
		t.Fatal("the compactor never dropped a version — the race was not exercised")
	}
	// One final compaction with nothing registered collapses the chain.
	if s.Compact(s.Clock() + 1); s.VersionCount("a") > 2 {
		t.Fatalf("quiescent compaction left %d versions", s.VersionCount("a"))
	}
}
