// Package data provides the semantic data stores the runtime components
// operate on: an in-memory map of named 64-bit integers supporting read,
// write, increment and decrement, together with commutativity
// specifications (mode tables) and inverse operations for compensation.
//
// Semantic commutativity is the lever the composite model exploits: a
// schedule that knows two of its operations commute (e.g. two increments)
// may interleave them freely and vouches for that commutativity upward
// (Definition 10). The mode tables here define exactly which operations a
// component declares as conflicting.
package data

import (
	"fmt"
	"sync"
)

// Mode names the semantic class of an operation; components use modes for
// conflict declaration and locking.
type Mode string

// The built-in modes of the integer store.
const (
	ModeRead  Mode = "read"
	ModeWrite Mode = "write"
	ModeIncr  Mode = "incr" // increment/decrement by a delta
)

// Op is one operation against a store.
//
// Mode is the operation's *semantic* class — what the component's conflict
// table and lock manager see. Impl, when set, is the physical
// implementation the store executes (one of the built-in modes); this is
// how domain-specific modes work: a "deposit" and a "withdraw" can both be
// implemented as increments while carrying different conflict semantics
// (see EscrowTable).
type Op struct {
	Mode Mode
	Item string
	Arg  int64 // write value or increment delta
	Impl Mode  // physical implementation; empty means Mode itself
}

// Physical returns the mode the store executes: Impl when set, otherwise
// Mode itself.
func (o Op) Physical() Mode {
	if o.Impl != "" {
		return o.Impl
	}
	return o.Mode
}

func (o Op) String() string {
	switch o.Mode {
	case ModeRead:
		return fmt.Sprintf("read(%s)", o.Item)
	case ModeWrite:
		return fmt.Sprintf("write(%s,%d)", o.Item, o.Arg)
	case ModeIncr:
		return fmt.Sprintf("incr(%s,%+d)", o.Item, o.Arg)
	default:
		return fmt.Sprintf("%s(%s,%d)", o.Mode, o.Item, o.Arg)
	}
}

// Result is the outcome of applying an operation.
type Result struct {
	Value int64 // value read, written, or the post-increment value
	Prev  int64 // value before the operation (for compensation)
}

// Store is a concurrency-safe map of named integers. The store itself only
// guarantees per-operation atomicity; transactional isolation is the
// scheduler's job (internal/sched).
type Store struct {
	mu   sync.Mutex
	vals map[string]int64

	// applied counts operations, for tests and metrics.
	applied int64

	// hook, when set, runs before every Apply and may veto it with an
	// error (the fault-injection seam; see SetApplyHook).
	hook func(Op) error
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{vals: make(map[string]int64)}
}

// SetApplyHook installs h to run before every Apply; a non-nil error
// from h fails the Apply without touching the store. This is the
// fault-injection seam: the scheduler's chaos layer (and tests) use it
// to make the store behave like a backend that can fail any call.
// Pass nil to remove the hook. h runs under the store mutex and must
// not call back into the store.
func (s *Store) SetApplyHook(h func(Op) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = h
}

// Apply executes the operation atomically and returns its result.
func (s *Store) Apply(op Op) (Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hook != nil {
		if err := s.hook(op); err != nil {
			return Result{}, err
		}
	}
	prev := s.vals[op.Item]
	res := Result{Prev: prev}
	switch op.Physical() {
	case ModeRead:
		res.Value = prev
	case ModeWrite:
		s.vals[op.Item] = op.Arg
		res.Value = op.Arg
	case ModeIncr:
		s.vals[op.Item] = prev + op.Arg
		res.Value = prev + op.Arg
	default:
		return Result{}, fmt.Errorf("data: unknown mode %q", op.Physical())
	}
	s.applied++
	return res, nil
}

// Get reads an item without counting as an operation (for tests/metrics).
func (s *Store) Get(item string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vals[item]
}

// Set overwrites an item without counting as an operation (for setup).
func (s *Store) Set(item string, v int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals[item] = v
}

// Snapshot copies the store's current contents (for WAL baselines and
// conservation assertions).
func (s *Store) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.vals))
	for k, v := range s.vals {
		out[k] = v
	}
	return out
}

// Applied returns the number of operations applied.
func (s *Store) Applied() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Inverse returns the compensating operation that undoes op given its
// result, or ok=false when no compensation is needed (reads).
//
// Increments are compensated by the opposite increment — the open-nested
// commutative undo — while writes are compensated by restoring the
// previous value, which is only correct if no later write intervened;
// write modes therefore must be declared conflicting in every mode table.
func Inverse(op Op, res Result) (Op, bool) {
	switch op.Physical() {
	case ModeRead:
		return Op{}, false
	case ModeWrite:
		return Op{Mode: ModeWrite, Item: op.Item, Arg: res.Prev}, true
	case ModeIncr:
		return Op{Mode: ModeIncr, Item: op.Item, Arg: -op.Arg}, true
	default:
		return Op{}, false
	}
}
