// Package data provides the semantic data stores the runtime components
// operate on: an in-memory multi-version map of named 64-bit integers
// supporting read, write, increment and bounded escrow reserve/release,
// together with commutativity specifications (mode tables) and inverse
// operations for compensation.
//
// Semantic commutativity is the lever the composite model exploits: a
// schedule that knows two of its operations commute (e.g. two increments)
// may interleave them freely and vouches for that commutativity upward
// (Definition 10). The mode tables here define exactly which operations a
// component declares as conflicting.
//
// Each item keeps a chain of committed versions stamped with a store-wide
// commit timestamp (O(1) append, binary-search read-at-timestamp), so a
// snapshot reader can observe a consistent committed prefix without ever
// blocking a writer; the optimistic scheduler (internal/sched) validates
// such reads at commit time with ConflictSince.
package data

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Mode names the semantic class of an operation; components use modes for
// conflict declaration and locking.
type Mode string

// The built-in modes of the integer store.
const (
	ModeRead  Mode = "read"
	ModeWrite Mode = "write"
	ModeIncr  Mode = "incr" // increment/decrement by a delta
	// ModeReserve is the escrow-counter decrement: it subtracts Arg from
	// the item but fails with ErrInsufficient (mutating nothing) if the
	// result would go negative. Successful reserves commute with each
	// other — see EscrowCounterTable for the derived conflict table.
	ModeReserve Mode = "reserve"
	// ModeRelease returns Arg units to an escrow counter (the inverse of
	// a successful reserve). Releases commute with each other.
	ModeRelease Mode = "release"
)

// ErrInsufficient rejects a reserve that would drive an escrow counter
// below zero. The store state is untouched; the scheduler surfaces it to
// the client as an application-level failure, not a retryable fault.
var ErrInsufficient = errors.New("data: insufficient escrow balance")

// Op is one operation against a store.
//
// Mode is the operation's *semantic* class — what the component's conflict
// table and lock manager see. Impl, when set, is the physical
// implementation the store executes (one of the built-in modes); this is
// how domain-specific modes work: a "deposit" and a "withdraw" can both be
// implemented as increments while carrying different conflict semantics
// (see EscrowTable).
type Op struct {
	Mode Mode
	Item string
	Arg  int64 // write value, increment delta, or escrow amount
	Impl Mode  // physical implementation; empty means Mode itself
}

// Physical returns the mode the store executes: Impl when set, otherwise
// Mode itself.
func (o Op) Physical() Mode {
	if o.Impl != "" {
		return o.Impl
	}
	return o.Mode
}

func (o Op) String() string {
	switch o.Mode {
	case ModeRead:
		return fmt.Sprintf("read(%s)", o.Item)
	case ModeWrite:
		return fmt.Sprintf("write(%s,%d)", o.Item, o.Arg)
	case ModeIncr:
		return fmt.Sprintf("incr(%s,%+d)", o.Item, o.Arg)
	case ModeReserve:
		return fmt.Sprintf("reserve(%s,%d)", o.Item, o.Arg)
	case ModeRelease:
		return fmt.Sprintf("release(%s,%d)", o.Item, o.Arg)
	default:
		return fmt.Sprintf("%s(%s,%d)", o.Mode, o.Item, o.Arg)
	}
}

// Result is the outcome of applying an operation.
type Result struct {
	Value int64  // value read, written, or the post-mutation value
	Prev  int64  // value before the operation (for compensation)
	TS    uint64 // version stamp of the installed version (0 for reads)
}

// version is one value of an item, stamped with the store-wide timestamp
// allocated when it was installed. Mode is the semantic class of the
// creating operation — what validation checks a snapshot read against —
// and owner tags it with the root transaction that installed it until the
// owner's attempt resolves (Retire); "" = final, e.g. setup, recovery, or
// a resolved attempt. Versions are installed eagerly at apply time, so a
// snapshot is only a *committed* prefix once validation confirms no
// conflicting version in it is still tagged.
type version struct {
	ts    uint64
	val   int64
	mode  Mode
	owner string

	// retired is the stamp at which the installing attempt resolved:
	// allocated by Retire from the same counter as version stamps, or
	// equal to ts for versions installed with no owner (immediately
	// final). 0 means the attempt is still unresolved. Because an attempt
	// installs nothing after it retires, retired upper-bounds every stamp
	// the owner ever allocated — the fact CheckRead's validation-point
	// rule is built on.
	retired uint64

	// pair and undone link a compensation to the version it undoes (set
	// by ApplyUndo): on the compensation, pair is the undone version's
	// stamp; on the undone version, undone is the compensation's stamp.
	// A netted pair has no recorded events and no net effect, so it only
	// invalidates a snapshot it straddles.
	pair   uint64
	undone uint64
}

// Store is a concurrency-safe multi-version map of named integers. Every
// mutation appends a version stamped from the store's clock; readers can
// either read the latest value (Apply with a read op, Get) or a consistent
// committed prefix as of an earlier stamp (Clock + ReadAt). The store
// itself only guarantees per-operation atomicity; transactional isolation
// is the scheduler's job (internal/sched).
type Store struct {
	mu     sync.RWMutex
	chains map[string][]version

	// tagged indexes, per owner, the versions still tagged as in-flight
	// (installed by ApplyAs, not yet Retired) so Retire need not scan
	// every chain.
	tagged map[string][]chainRef

	// clock is the stamp of the newest installed version. It is updated
	// under mu *after* the version is in its chain, so a reader that
	// loads clock=T without the mutex is guaranteed every version with
	// stamp <= T is visible under RLock — the consistent-prefix
	// invariant snapshot reads rely on.
	clock atomic.Uint64

	// stamps allocates version stamps, always inside the write critical
	// section so per-store stamp order equals install order. It defaults
	// to the private counter below; UseClock points it at a shared
	// counter (the runtime's global event sequence) so version stamps
	// and recorded conflict order are measured on one clock.
	stamps *atomic.Uint64
	local  atomic.Uint64

	// applied counts operations, for tests and metrics.
	applied atomic.Int64

	// hook, when set, runs before every Apply and may veto it with an
	// error (the fault-injection seam; see SetApplyHook).
	hook atomic.Pointer[func(Op) error]

	// resolve is closed and replaced on every Retire, so a validator
	// blocked on an in-flight writer can park on a channel instead of
	// polling (ResolveWait).
	resolve chan struct{}
}

// chainRef locates a tagged version by item and stamp (stamps are stable
// across Compact; indexes are not).
type chainRef struct {
	item string
	ts   uint64
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{
		chains:  make(map[string][]version),
		tagged:  make(map[string][]chainRef),
		resolve: make(chan struct{}),
	}
	s.stamps = &s.local
	return s
}

// UseClock makes the store allocate version stamps from c instead of its
// private counter. The runtime points every component store at its global
// event-sequence counter, so a version's stamp doubles as the conflict
// sequence number of the event that installed it — validation (version
// order) and certification (event order) then agree by construction.
// Must be called before the store's first Apply.
func (s *Store) UseClock(c *atomic.Uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stamps = c
}

// SetApplyHook installs h to run before every Apply; a non-nil error
// from h fails the Apply without touching the store. This is the
// fault-injection seam: the scheduler's chaos layer (and tests) use it
// to make the store behave like a backend that can fail any call.
// Pass nil to remove the hook.
//
// h runs *outside* the store mutex (before it is taken), so a hook may
// call back into the store — and, crucially, a slow or wedged hook never
// blocks concurrent snapshot reads or other appliers.
func (s *Store) SetApplyHook(h func(Op) error) {
	if h == nil {
		s.hook.Store(nil)
		return
	}
	s.hook.Store(&h)
}

// Apply executes the operation atomically and returns its result. For
// mutations the result carries the stamp of the version installed. The
// version is owned by nobody — it is immediately final to snapshot
// readers; transactional appliers use ApplyAs.
func (s *Store) Apply(op Op) (Result, error) { return s.ApplyAs(op, "") }

// ApplyAs is Apply with the installed version tagged by the root
// transaction executing it. Validation (CheckRead) treats a conflicting
// version whose tag has not been Retired as a dirty read — the tag is
// what lets a snapshot be certified as a committed prefix.
func (s *Store) ApplyAs(op Op, owner string) (Result, error) {
	return s.applyVersion(op, owner, 0)
}

// ApplyUndo applies a compensating operation and links the installed
// version to the version (stamp `undoes`) it compensates. CheckRead uses
// the link to recognize netted pairs: a rolled-back operation and its
// compensation cancel out and contribute no recorded events, so together
// they only invalidate a snapshot taken strictly between them.
func (s *Store) ApplyUndo(op Op, owner string, undoes uint64) (Result, error) {
	res, err := s.applyVersion(op, owner, undoes)
	if err != nil || undoes == 0 {
		return res, err
	}
	s.mu.Lock()
	chain := s.chains[op.Item]
	i := sort.Search(len(chain), func(i int) bool { return chain[i].ts >= undoes })
	if i < len(chain) && chain[i].ts == undoes {
		chain[i].undone = res.TS
	}
	s.mu.Unlock()
	return res, err
}

func (s *Store) applyVersion(op Op, owner string, pair uint64) (Result, error) {
	if h := s.hook.Load(); h != nil {
		if err := (*h)(op); err != nil {
			return Result{}, err
		}
	}
	if op.Physical() == ModeRead {
		s.mu.RLock()
		prev := tailVal(s.chains[op.Item])
		s.mu.RUnlock()
		s.applied.Add(1)
		return Result{Value: prev, Prev: prev}, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	chain := s.chains[op.Item]
	prev := tailVal(chain)
	next := prev
	switch op.Physical() {
	case ModeWrite:
		next = op.Arg
	case ModeIncr:
		next = prev + op.Arg
	case ModeReserve:
		if op.Arg < 0 {
			return Result{}, fmt.Errorf("data: negative reserve amount %d", op.Arg)
		}
		if prev-op.Arg < 0 {
			return Result{}, fmt.Errorf("data: reserve(%s,%d) over balance %d: %w",
				op.Item, op.Arg, prev, ErrInsufficient)
		}
		next = prev - op.Arg
	case ModeRelease:
		if op.Arg < 0 {
			return Result{}, fmt.Errorf("data: negative release amount %d", op.Arg)
		}
		next = prev + op.Arg
	default:
		return Result{}, fmt.Errorf("data: unknown mode %q", op.Physical())
	}
	ts := s.stamps.Add(1)
	v := version{ts: ts, val: next, mode: op.Mode, owner: owner, pair: pair}
	if owner == "" {
		v.retired = ts // no attempt to wait for: final on arrival
	} else {
		s.tagged[owner] = append(s.tagged[owner], chainRef{item: op.Item, ts: ts})
	}
	s.chains[op.Item] = append(chain, v)
	s.clock.Store(ts)
	s.applied.Add(1)
	return Result{Value: next, Prev: prev, TS: ts}, nil
}

// Retire finalizes every version owner installed since its last Retire:
// the owner's attempt has committed, or has fully rolled back (in which
// case its versions and their compensations net out and none of its
// events will be recorded) — either way the owner issues no further
// operations under that attempt, so its versions stop counting as dirty
// to snapshot validation. The scheduler calls this at root commit and
// after root-level compensation.
//
// Retirement is *stamped* from the same counter as version stamps, so
// "did this writer resolve before my validation point" is a pure stamp
// comparison — a fact that cannot change between one chain scan and the
// next. That is what makes a per-read validation pass sound without
// freezing the store: the pass's verdicts reference stamps, not wall
// clocks, so a writer resolving mid-pass cannot slip one operation
// before an already-checked read and another after it.
func (s *Store) Retire(owner string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	refs := s.tagged[owner]
	if len(refs) == 0 {
		delete(s.tagged, owner)
		return
	}
	rts := s.stamps.Add(1)
	for _, ref := range refs {
		chain := s.chains[ref.item]
		i := sort.Search(len(chain), func(i int) bool { return chain[i].ts >= ref.ts })
		if i < len(chain) && chain[i].ts == ref.ts {
			chain[i].owner = ""
			chain[i].retired = rts
		}
	}
	delete(s.tagged, owner)
	close(s.resolve)
	s.resolve = make(chan struct{})
}

// ResolveWait returns a channel closed at the next Retire. A validator
// that found a dirty read re-checks after obtaining the channel (so a
// resolution between check and wait is not lost) and then parks on it
// instead of polling.
func (s *Store) ResolveWait() <-chan struct{} {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.resolve
}

// Clock returns the stamp of the newest installed version. Lock-free.
func (s *Store) Clock() uint64 { return s.clock.Load() }

// StableRead returns item's value at its *stable frontier* — the largest
// stamp S such that every version of item with stamp <= S is resolved
// (retired, or installed ownerless) — together with S itself, ignoring
// versions tagged by exclude. This is the snapshot an optimistic reader
// takes. Versions install eagerly at apply time, so the raw Clock may sit
// above uncommitted effects; reading at the per-item frontier instead
// means a snapshot never contains an unresolved version, so
// validate-at-commit only ever waits on writers of *this* item — at
// worst the snapshot is stale (a commit landed above the frontier),
// which a refresh repairs for the cost of a re-read. The frontier is
// per-item, not store-wide: a writer parked on one item must not freeze
// readers of every other item below commits they could otherwise absorb.
// Excluding the reader's own tag keeps a mixed read/write transaction's
// own in-flight installs from dragging its read frontier backwards.
func (s *Store) StableRead(item, exclude string) (int64, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain := s.chains[item]
	for i := range chain {
		v := chain[i]
		if v.retired == 0 && v.owner != exclude {
			// First unresolved foreign version: the frontier sits just
			// below it. Everything before it in the chain is resolved (or
			// the reader's own), so chain[i-1] is the frontier value.
			if i == 0 {
				return 0, v.ts - 1
			}
			return chain[i-1].val, v.ts - 1
		}
	}
	// Fully resolved chain: the store clock is a valid frontier for this
	// item (every version of it is <= clock and resolved).
	return tailVal(chain), s.clock.Load()
}

// ReadAt returns the value of item as of stamp ts: the newest version
// with stamp <= ts, or 0 if the item had no version yet. It takes only
// the read lock and never blocks on (or is blocked by) version installs
// beyond the append itself.
func (s *Store) ReadAt(item string, ts uint64) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain := s.chains[item]
	i := sort.Search(len(chain), func(i int) bool { return chain[i].ts > ts })
	if i == 0 {
		return 0
	}
	return chain[i-1].val
}

// Validity classifies a snapshot read at validate-at-commit time.
type Validity int

const (
	// ReadValid: the snapshot read is indistinguishable from a locked
	// read — no conflicting version after the snapshot, nothing dirty
	// inside it.
	ReadValid Validity = iota
	// ReadStale: a resolved conflicting version exists after the
	// snapshot (or a netted pair straddles it); the read can never
	// become valid again — abort and retry with a fresh snapshot.
	ReadStale
	// ReadDirty: the only problem is a conflicting version still tagged
	// by an unresolved attempt. Its owner will shortly commit (turning
	// the read stale or leaving it valid, depending on where the version
	// sits) or roll back (netting the version out); the caller may wait
	// briefly and re-check instead of burning a full re-execution.
	ReadDirty
)

// ConflictSince reports whether any version of item with stamp > since
// was created by an operation whose semantic mode conflicts with mode
// under t, skipping stamps in skip (the validating transaction's own
// installs). This is the classic validate-at-commit primitive; CheckRead
// is the full verdict the optimistic scheduler uses (ConflictSince checks
// at an unbounded validation point, so every installed version counts).
func (s *Store) ConflictSince(item string, since uint64, mode Mode, t *ModeTable, skip map[uint64]bool) bool {
	v, _ := s.CheckRead(item, since, ^uint64(0), 0, mode, t, skip, "", nil)
	return v != ReadValid
}

// CheckRead is the validate-at-commit check for a snapshot read of item
// at stamp since in semantic mode under table t, on behalf of root self,
// against validation point vpoint (a stamp the validator allocated from
// the shared counter before the pass; every stamp the validating
// transaction's recorded read events carry is below it). The read is
// ReadValid exactly when, considering only versions conflicting with mode
// (per t) and stamped <= vpoint, every one of them either
//
//   - sits inside the snapshot (stamp <= since) with retired <= vpoint:
//     the read saw it and its writer fully resolved before the validation
//     point, so no later operation of that writer can land behind this
//     reader; or
//   - belongs to a netted pair (a rolled-back operation and its linked
//     compensation, see ApplyUndo) that does not straddle the snapshot: no
//     net effect, no recorded events, invisible to the read.
//
// Otherwise the read is
//
//   - ReadDirty if the offending version is still unresolved (retired ==
//     0): its owner may yet commit or roll back, so the verdict can still
//     improve — the caller may briefly wait it out; or
//   - ReadStale: a resolved conflicting version landed after the snapshot,
//     a netted pair straddles it (the read saw an effect that was rolled
//     back out from under it), or a version the read *did* see retired
//     after vpoint — the snapshot cannot be serialized at this validation
//     point, and the caller must take a fresh snapshot (and a fresh
//     vpoint) or abort. Stale takes precedence over dirty.
//
// Versions stamped above vpoint are ignored entirely: they are ordered
// after the validation point on the shared clock, hence after every read
// event of the validating transaction — an order consistent with the read
// not having seen them.
//
// The retired-<=-vpoint rule on *seen* versions is what closes the
// spanning-writer hole that per-read checks are classically blind to: a
// writer with one conflicting operation inside the snapshot and another
// on a different item after it would serialize the reader strictly
// between two operations of one transaction. Because retirement is
// stamped after a writer's every install, such a writer either retired
// <= vpoint (then its other operation is also < vpoint and the rule for
// that item's read catches it) or retired after vpoint — caught here.
// All verdict-relevant facts (stamps, retirement stamps, pair links) are
// immutable once set, so a ReadValid verdict cannot be invalidated by
// anything that happens after the scan — per-read passes compose into a
// sound whole without freezing the store.
//
// readSeq, when non-zero, is the recorded sequence number of the read
// event and enables the *serialize-before claim*: the validator may
// commit past an unresolved conflicting version stamped above readSeq —
// the recorded order (read before write) already matches the read not
// having seen it, and the claimed-past writer's every later operation
// gets a larger stamp still. Whether a particular claim is sound depends
// on state the store cannot see (the scheduler's commit seal order, see
// sched.Runtime.validate), so the caller supplies it as the claim
// callback: a claim is taken only when claim(owner) allows it. claim is
// invoked under the store's read lock — it must not call back into the
// store. A nil claim disables claiming entirely.
//
// Stamps in skip and versions owned by self (the validating transaction's
// own installs) never invalidate. The scan covers the whole chain because
// commuting writers (e.g. two increments) are not serialized against each
// other, so a tagged conflicting version can sit beneath resolved ones.
//
// On ReadDirty the second return value names the unresolved owner the
// verdict is waiting on (callers use it to orient bounded waits); it is
// "" otherwise.
func (s *Store) CheckRead(item string, since, vpoint, readSeq uint64, mode Mode, t *ModeTable, skip map[uint64]bool, self string, claim func(owner string) bool) (Validity, string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	verdict := ReadValid
	blocker := ""
	chain := s.chains[item]
	for i := len(chain) - 1; i >= 0; i-- {
		v := chain[i]
		if v.ts > vpoint {
			continue // ordered after the validation point
		}
		if skip[v.ts] || (self != "" && v.owner == self) || !t.ModeConflicts(v.mode, mode) {
			continue
		}
		if v.pair != 0 {
			// A compensation: stale only if the netted pair straddles the
			// snapshot (the read saw the undone effect but not the undo).
			if v.pair <= since && v.ts > since {
				return ReadStale, ""
			}
			continue
		}
		if v.undone != 0 {
			// The rolled-back half of a netted pair. The straddle check
			// repeats here because the compensation itself may be stamped
			// above vpoint and skipped by the first rule.
			if v.ts <= since && v.undone > since {
				return ReadStale, ""
			}
			continue
		}
		if v.retired == 0 {
			if readSeq != 0 && v.ts > readSeq && claim != nil && claim(v.owner) {
				// Serialize-before claim: the version (and every later
				// operation of its owner) is recorded after the read.
				continue
			}
			// In flight: may yet commit (stale) or roll back (netted).
			verdict, blocker = ReadDirty, v.owner
			continue
		}
		if v.ts > since {
			return ReadStale, "" // resolved conflicting effect the snapshot missed
		}
		if v.retired > vpoint {
			return ReadStale, "" // seen, but its writer resolved after the validation point
		}
	}
	return verdict, blocker
}

// VersionCount returns the number of versions item currently retains.
func (s *Store) VersionCount(item string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chains[item])
}

// Compact garbage-collects version chains below keepFrom, returning the
// number of versions dropped. Safe to run concurrently with readers and
// writers; callers must not hold snapshots older than keepFrom (the
// runtime derives keepFrom from its active-snapshot frontier).
//
// Only a *prefix* of each chain is dropped, and a version is droppable
// only when both its install stamp and its retirement stamp sit strictly
// below keepFrom. That preserves every fact a concurrent validation pass
// can still reach: an unresolved version (retired == 0) survives, as
// does one whose writer resolved late (CheckRead's retired-after-vpoint
// staleness rule needs it — every active validator's vpoint is at least
// its snapshot stamp, hence at least keepFrom), and everything above the
// first such version survives with it because dropping stops there. The
// newest droppable version is retained as the chain base: it carries the
// value StableRead reports just below an unresolved version and the
// value ReadAt falls back to at the frontier.
func (s *Store) Compact(keepFrom uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for item, chain := range s.chains {
		cut := 0
		for cut < len(chain) {
			v := chain[cut]
			if v.ts >= keepFrom || v.retired == 0 || v.retired >= keepFrom {
				break
			}
			cut++
		}
		// Keep the newest droppable version as the chain base.
		cut--
		if cut <= 0 {
			continue
		}
		s.chains[item] = append([]version(nil), chain[cut:]...)
		dropped += cut
	}
	return dropped
}

// Get reads an item without counting as an operation (for tests/metrics).
func (s *Store) Get(item string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return tailVal(s.chains[item])
}

// Set overwrites an item without counting as an operation (for setup).
// The new value is installed as a regular stamped version.
func (s *Store) Set(item string, v int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.stamps.Add(1)
	s.chains[item] = append(s.chains[item], version{ts: ts, val: v, mode: ModeWrite, retired: ts})
	s.clock.Store(ts)
}

// Snapshot copies the store's current contents (for WAL baselines and
// conservation assertions).
func (s *Store) Snapshot() map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int64, len(s.chains))
	for k, chain := range s.chains {
		out[k] = tailVal(chain)
	}
	return out
}

// Applied returns the number of operations applied.
func (s *Store) Applied() int64 { return s.applied.Load() }

func tailVal(chain []version) int64 {
	if n := len(chain); n > 0 {
		return chain[n-1].val
	}
	return 0
}

// Inverse returns the compensating operation that undoes op given its
// result, or ok=false when no compensation is needed (reads).
//
// The inverse preserves the original operation's semantic Mode (and its
// Impl, adjusted where the physical action itself must flip): a
// compensated deposit is still a deposit to the lock manager, the
// certifier and the version chain — not a bare increment — so conflict
// classification of the compensation matches the operation it undoes.
//
// Increments are compensated by the opposite increment — the open-nested
// commutative undo — while writes are compensated by restoring the
// previous value, which is only correct if no later write intervened;
// write modes therefore must be declared conflicting in every mode table.
// A reserve is undone by releasing the same amount; a release is undone
// by re-reserving it, which can fail with ErrInsufficient if the funds
// were consumed in between — the compensation ladder's quarantine path
// handles that leak.
func Inverse(op Op, res Result) (Op, bool) {
	inv := Op{Mode: op.Mode, Item: op.Item, Impl: op.Impl}
	switch op.Physical() {
	case ModeRead:
		return Op{}, false
	case ModeWrite:
		inv.Arg = res.Prev
	case ModeIncr:
		inv.Arg = -op.Arg
	case ModeReserve:
		inv.Arg = op.Arg
		inv.Impl = ModeRelease
	case ModeRelease:
		inv.Arg = op.Arg
		inv.Impl = ModeReserve
	default:
		return Op{}, false
	}
	return inv, true
}
