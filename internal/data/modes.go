package data

import "sort"

// ModeTable is a symmetric conflict specification over operation modes: it
// answers whether two operations on the same item conflict (do not
// commute). Operations on different items never conflict.
type ModeTable struct {
	conflicts map[[2]Mode]bool

	// Interned read-path mirror of the map: mode i conflicts with mode j
	// iff bit j of bits[i] is set. Tables hold a handful of modes and are
	// static after construction, so the hot ModeConflicts path is a short
	// linear intern scan plus a bit test — no string-pair hashing.
	modes []Mode
	bits  []uint64
}

// NewModeTable returns an empty table (everything commutes). Use Declare
// to add conflicts.
func NewModeTable() *ModeTable {
	return &ModeTable{conflicts: make(map[[2]Mode]bool)}
}

func canonicalModes(a, b Mode) [2]Mode {
	if a > b {
		a, b = b, a
	}
	return [2]Mode{a, b}
}

func (t *ModeTable) intern(m Mode) int {
	for i, x := range t.modes {
		if x == m {
			return i
		}
	}
	if len(t.modes) == 64 {
		panic("data: ModeTable supports at most 64 distinct modes")
	}
	t.modes = append(t.modes, m)
	t.bits = append(t.bits, 0)
	return len(t.modes) - 1
}

func (t *ModeTable) lookup(m Mode) int {
	for i, x := range t.modes {
		if x == m {
			return i
		}
	}
	return -1
}

// Declare marks two modes as conflicting (in both orders).
func (t *ModeTable) Declare(a, b Mode) *ModeTable {
	t.conflicts[canonicalModes(a, b)] = true
	ia, ib := t.intern(a), t.intern(b)
	t.bits[ia] |= 1 << uint(ib)
	t.bits[ib] |= 1 << uint(ia)
	return t
}

// Conflicts reports whether two operations conflict: same item and a
// declared mode conflict.
func (t *ModeTable) Conflicts(a, b Op) bool {
	if a.Item != b.Item {
		return false
	}
	return t.ModeConflicts(a.Mode, b.Mode)
}

// ModeConflicts reports whether two modes are declared conflicting.
// Undeclared modes conflict with nothing.
func (t *ModeTable) ModeConflicts(a, b Mode) bool {
	ia := t.lookup(a)
	if ia < 0 {
		return false
	}
	ib := t.lookup(b)
	return ib >= 0 && t.bits[ia]&(1<<uint(ib)) != 0
}

// SemanticTable is the full-knowledge specification for the integer store:
// reads commute with reads, increments commute with increments, and every
// combination involving a write conflicts, as does read/increment.
func SemanticTable() *ModeTable {
	return NewModeTable().
		Declare(ModeRead, ModeWrite).
		Declare(ModeRead, ModeIncr).
		Declare(ModeWrite, ModeWrite).
		Declare(ModeWrite, ModeIncr)
}

// RWTable is the classical no-knowledge specification: increments are
// read-modify-writes, so everything but read/read conflicts. This is what
// a flat scheduler without semantic knowledge must assume.
func RWTable() *ModeTable {
	return NewModeTable().
		Declare(ModeRead, ModeWrite).
		Declare(ModeRead, ModeIncr).
		Declare(ModeWrite, ModeWrite).
		Declare(ModeWrite, ModeIncr).
		Declare(ModeIncr, ModeIncr)
}

// Escrow modes: domain-specific semantic classes implemented as
// increments. Deposits always commute (the balance only grows); a
// withdrawal must be certain the balance suffices, so withdrawals conflict
// with each other and with deposits' absence — here, conservatively, with
// withdrawals and audits.
const (
	// ModeDeposit adds funds; commutes with every other deposit.
	ModeDeposit Mode = "deposit"
	// ModeWithdraw removes funds; conflicts with other withdrawals.
	ModeWithdraw Mode = "withdraw"
	// ModeAudit reads a balance; conflicts with everything that changes it.
	ModeAudit Mode = "audit"
)

// EscrowTable is an escrow-style conflict specification over the banking
// modes: deposit/deposit commute, withdraw/withdraw conflict, audit
// conflicts with both. It demonstrates domain-specific mode tables built
// on the same store (all three modes are implemented as increments or
// reads; see Op.Impl).
func EscrowTable() *ModeTable {
	return NewModeTable().
		Declare(ModeWithdraw, ModeWithdraw).
		Declare(ModeAudit, ModeDeposit).
		Declare(ModeAudit, ModeWithdraw).
		Declare(ModeAudit, ModeAudit)
}

// EscrowCounterTable is the derived conflict specification for the
// bounded escrow counter (ModeReserve / ModeRelease), following Malta &
// Martinez's recipe of deriving commutativity from outcome preservation
// on the bounded ADT:
//
//   - reserve/reserve commute: in the committed projection both succeeded,
//     and two successful subtractions commute (a reserve that would break
//     the bound fails physically at apply time — ErrInsufficient — and
//     never commits, so commit-time order does not change outcomes);
//   - release/release commute: additions always commute;
//   - reserve/release conflict: moving a release across a reserve can flip
//     the reserve between success and ErrInsufficient — the bound is
//     exactly where commutativity of the unbounded counter breaks down;
//   - read conflicts with both, as it observes the balance.
func EscrowCounterTable() *ModeTable {
	return NewModeTable().
		Declare(ModeReserve, ModeRelease).
		Declare(ModeRead, ModeReserve).
		Declare(ModeRead, ModeRelease).
		Declare(ModeRead, ModeWrite).
		Declare(ModeRead, ModeIncr).
		Declare(ModeWrite, ModeWrite).
		Declare(ModeWrite, ModeIncr).
		Declare(ModeWrite, ModeReserve).
		Declare(ModeWrite, ModeRelease).
		Declare(ModeIncr, ModeReserve).
		Declare(ModeIncr, ModeRelease)
}

// Pairs returns the declared conflicts as canonical (sorted) mode pairs,
// in lexicographic order — the serialization the topology codec persists.
func (t *ModeTable) Pairs() [][2]Mode {
	out := make([][2]Mode, 0, len(t.conflicts))
	for p, ok := range t.conflicts {
		if ok {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// IsShared reports whether a mode is compatible with itself under the
// table (a "shared" lock mode).
func (t *ModeTable) IsShared(m Mode) bool {
	return !t.ModeConflicts(m, m)
}
