package data

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestStoreApply(t *testing.T) {
	s := NewStore()
	if r, err := s.Apply(Op{Mode: ModeRead, Item: "x"}); err != nil || r.Value != 0 {
		t.Fatalf("read empty = %+v, %v", r, err)
	}
	if r, err := s.Apply(Op{Mode: ModeWrite, Item: "x", Arg: 7}); err != nil || r.Value != 7 || r.Prev != 0 {
		t.Fatalf("write = %+v, %v", r, err)
	}
	if r, err := s.Apply(Op{Mode: ModeIncr, Item: "x", Arg: 5}); err != nil || r.Value != 12 || r.Prev != 7 {
		t.Fatalf("incr = %+v, %v", r, err)
	}
	if r, err := s.Apply(Op{Mode: ModeIncr, Item: "x", Arg: -2}); err != nil || r.Value != 10 {
		t.Fatalf("decr = %+v, %v", r, err)
	}
	if got := s.Get("x"); got != 10 {
		t.Fatalf("Get = %d, want 10", got)
	}
	if got := s.Applied(); got != 4 {
		t.Fatalf("Applied = %d, want 4", got)
	}
}

func TestStoreUnknownMode(t *testing.T) {
	s := NewStore()
	if _, err := s.Apply(Op{Mode: "mystery", Item: "x"}); err == nil {
		t.Fatal("unknown mode should error")
	}
}

func TestStoreConcurrentIncrements(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := s.Apply(Op{Mode: ModeIncr, Item: "ctr", Arg: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := s.Get("ctr"); got != 1000 {
		t.Fatalf("ctr = %d, want 1000", got)
	}
}

func TestInverse(t *testing.T) {
	s := NewStore()
	s.Set("x", 3)

	wres, _ := s.Apply(Op{Mode: ModeWrite, Item: "x", Arg: 9})
	inv, ok := Inverse(Op{Mode: ModeWrite, Item: "x", Arg: 9}, wres)
	if !ok {
		t.Fatal("write must have an inverse")
	}
	if _, err := s.Apply(inv); err != nil {
		t.Fatal(err)
	}
	if got := s.Get("x"); got != 3 {
		t.Fatalf("write undo: x = %d, want 3", got)
	}

	ires, _ := s.Apply(Op{Mode: ModeIncr, Item: "x", Arg: 4})
	inv, ok = Inverse(Op{Mode: ModeIncr, Item: "x", Arg: 4}, ires)
	if !ok {
		t.Fatal("incr must have an inverse")
	}
	if _, err := s.Apply(inv); err != nil {
		t.Fatal(err)
	}
	if got := s.Get("x"); got != 3 {
		t.Fatalf("incr undo: x = %d, want 3", got)
	}

	if _, ok := Inverse(Op{Mode: ModeRead, Item: "x"}, Result{}); ok {
		t.Fatal("reads need no compensation")
	}
}

// Property: an increment followed by its inverse is the identity, from any
// starting value.
func TestInverseIncrementProperty(t *testing.T) {
	f := func(start, delta int64) bool {
		s := NewStore()
		s.Set("x", start)
		op := Op{Mode: ModeIncr, Item: "x", Arg: delta}
		res, err := s.Apply(op)
		if err != nil {
			return false
		}
		inv, ok := Inverse(op, res)
		if !ok {
			return false
		}
		if _, err := s.Apply(inv); err != nil {
			return false
		}
		return s.Get("x") == start
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModeTables(t *testing.T) {
	sem := SemanticTable()
	rw := RWTable()

	cases := []struct {
		a, b            Mode
		semConf, rwConf bool
	}{
		{ModeRead, ModeRead, false, false},
		{ModeRead, ModeWrite, true, true},
		{ModeWrite, ModeWrite, true, true},
		{ModeIncr, ModeIncr, false, true}, // the semantic-knowledge lever
		{ModeIncr, ModeRead, true, true},
		{ModeIncr, ModeWrite, true, true},
	}
	for _, c := range cases {
		if got := sem.ModeConflicts(c.a, c.b); got != c.semConf {
			t.Errorf("semantic %s/%s = %v, want %v", c.a, c.b, got, c.semConf)
		}
		if got := rw.ModeConflicts(c.a, c.b); got != c.rwConf {
			t.Errorf("rw %s/%s = %v, want %v", c.a, c.b, got, c.rwConf)
		}
		// Symmetry.
		if sem.ModeConflicts(c.a, c.b) != sem.ModeConflicts(c.b, c.a) {
			t.Errorf("mode table must be symmetric for %s/%s", c.a, c.b)
		}
	}
}

func TestModeTableDifferentItemsCommute(t *testing.T) {
	sem := SemanticTable()
	if sem.Conflicts(Op{Mode: ModeWrite, Item: "x"}, Op{Mode: ModeWrite, Item: "y"}) {
		t.Fatal("operations on different items must not conflict")
	}
	if !sem.Conflicts(Op{Mode: ModeWrite, Item: "x"}, Op{Mode: ModeWrite, Item: "x"}) {
		t.Fatal("writes on one item must conflict")
	}
}

func TestIsShared(t *testing.T) {
	sem := SemanticTable()
	if !sem.IsShared(ModeRead) || !sem.IsShared(ModeIncr) {
		t.Error("read and incr are shared under the semantic table")
	}
	if sem.IsShared(ModeWrite) {
		t.Error("write is exclusive")
	}
	if RWTable().IsShared(ModeIncr) {
		t.Error("incr is exclusive under the rw table")
	}
}

func TestStoreApplyHook(t *testing.T) {
	s := NewStore()
	s.Set("x", 3)
	veto := errHook{}
	s.SetApplyHook(func(op Op) error {
		if op.Mode == ModeWrite {
			return veto
		}
		return nil
	})
	// Vetoed: the store is untouched and does not count the operation.
	if _, err := s.Apply(Op{Mode: ModeWrite, Item: "x", Arg: 9}); err != veto {
		t.Fatalf("err = %v, want the hook error", err)
	}
	if s.Get("x") != 3 || s.Applied() != 0 {
		t.Fatalf("vetoed apply mutated the store: x=%d applied=%d", s.Get("x"), s.Applied())
	}
	// Allowed modes pass through.
	if r, err := s.Apply(Op{Mode: ModeIncr, Item: "x", Arg: 2}); err != nil || r.Value != 5 {
		t.Fatalf("incr = %+v, %v", r, err)
	}
	// Removing the hook restores normal behaviour.
	s.SetApplyHook(nil)
	if _, err := s.Apply(Op{Mode: ModeWrite, Item: "x", Arg: 9}); err != nil {
		t.Fatal(err)
	}
	if s.Get("x") != 9 {
		t.Fatalf("x = %d, want 9", s.Get("x"))
	}
}

type errHook struct{}

func (errHook) Error() string { return "hook veto" }
