package data

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestVersionChainReadAt: mutations install stamped versions; ReadAt
// returns the newest version at or below a stamp, 0 before the first.
func TestVersionChainReadAt(t *testing.T) {
	s := NewStore()
	stamps := make([]uint64, 0, 3)
	for _, arg := range []int64{10, 20, 30} {
		res, err := s.Apply(Op{Mode: ModeWrite, Item: "x", Arg: arg})
		if err != nil {
			t.Fatal(err)
		}
		if res.TS == 0 {
			t.Fatal("mutation result must carry a version stamp")
		}
		stamps = append(stamps, res.TS)
	}
	if s.VersionCount("x") != 3 {
		t.Fatalf("versions = %d, want 3", s.VersionCount("x"))
	}
	if got := s.ReadAt("x", stamps[0]-1); got != 0 {
		t.Fatalf("ReadAt before first version = %d, want 0", got)
	}
	for i, want := range []int64{10, 20, 30} {
		if got := s.ReadAt("x", stamps[i]); got != want {
			t.Fatalf("ReadAt(%d) = %d, want %d", stamps[i], got, want)
		}
	}
	if got := s.ReadAt("x", s.Clock()+100); got != 30 {
		t.Fatalf("ReadAt(future) = %d, want 30", got)
	}
	if s.Clock() != stamps[2] {
		t.Fatalf("Clock = %d, want %d", s.Clock(), stamps[2])
	}
}

// TestClockMonotoneUnderConcurrency: the clock never runs ahead of
// installed versions — a reader that loads Clock()=T sees every version
// with stamp <= T (the consistent-prefix invariant), checked here by
// hammering ReadAt against concurrent writers. Run with -race.
func TestClockMonotoneUnderConcurrency(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	// Each writer bumps one of two items; readers check that a snapshot
	// at Clock() is repeatable (two ReadAts at the same stamp agree even
	// as writers append).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				item := "a"
				if (i+w)%2 == 0 {
					item = "b"
				}
				if _, err := s.Apply(Op{Mode: ModeIncr, Item: item, Arg: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				ts := s.Clock()
				a1, b1 := s.ReadAt("a", ts), s.ReadAt("b", ts)
				a2, b2 := s.ReadAt("a", ts), s.ReadAt("b", ts)
				if a1 != a2 || b1 != b2 {
					t.Errorf("snapshot at %d not repeatable: (%d,%d) vs (%d,%d)", ts, a1, b1, a2, b2)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestConflictSince: only versions after the stamp whose mode conflicts
// under the table invalidate; own stamps are skipped.
func TestConflictSince(t *testing.T) {
	s := NewStore()
	table := SemanticTable()
	r1, _ := s.Apply(Op{Mode: ModeIncr, Item: "x", Arg: 1})
	since := r1.TS
	// Commuting traffic after the snapshot: incr does not conflict with incr.
	s.Apply(Op{Mode: ModeIncr, Item: "x", Arg: 1})
	if s.ConflictSince("x", since, ModeIncr, table, nil) {
		t.Fatal("incr/incr must not invalidate")
	}
	// But it does conflict with a read snapshot.
	if !s.ConflictSince("x", since, ModeRead, table, nil) {
		t.Fatal("read must be invalidated by a later incr")
	}
	// Own writes are excluded via the skip set.
	r3, _ := s.Apply(Op{Mode: ModeWrite, Item: "x", Arg: 9})
	skip := map[uint64]bool{r3.TS: true}
	if s.ConflictSince("x", r3.TS, ModeRead, table, skip) {
		t.Fatal("nothing after own write: must not invalidate")
	}
	if !s.ConflictSince("x", since, ModeIncr, table, nil) {
		t.Fatal("without the skip set, the intervening write must invalidate an incr")
	}
}

// TestReserveRelease: the bounded escrow counter — reserve enforces the
// bound atomically without mutating on failure, release restores it.
func TestReserveRelease(t *testing.T) {
	s := NewStore()
	s.Set("tickets", 10)
	if _, err := s.Apply(Op{Mode: ModeReserve, Item: "tickets", Arg: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(Op{Mode: ModeReserve, Item: "tickets", Arg: 7}); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("over-reserve = %v, want ErrInsufficient", err)
	}
	if got := s.Get("tickets"); got != 6 {
		t.Fatalf("failed reserve mutated the store: %d, want 6", got)
	}
	if _, err := s.Apply(Op{Mode: ModeRelease, Item: "tickets", Arg: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(Op{Mode: ModeReserve, Item: "tickets", Arg: 8}); err != nil {
		t.Fatal(err)
	}
	if got := s.Get("tickets"); got != 0 {
		t.Fatalf("tickets = %d, want 0", got)
	}
	if _, err := s.Apply(Op{Mode: ModeReserve, Item: "tickets", Arg: -1}); err == nil {
		t.Fatal("negative reserve must be rejected")
	}
	if _, err := s.Apply(Op{Mode: ModeRelease, Item: "tickets", Arg: -1}); err == nil {
		t.Fatal("negative release must be rejected")
	}
}

// TestInverseKeepsSemanticMode is the regression for Inverse dropping the
// domain-specific Mode/Impl: the compensation of an escrow deposit must
// still be classified as a deposit, not a bare incr.
func TestInverseKeepsSemanticMode(t *testing.T) {
	s := NewStore()
	op := Op{Mode: ModeDeposit, Impl: ModeIncr, Item: "acct", Arg: 10}
	res, err := s.Apply(op)
	if err != nil {
		t.Fatal(err)
	}
	inv, ok := Inverse(op, res)
	if !ok {
		t.Fatal("deposit must have an inverse")
	}
	if inv.Mode != ModeDeposit || inv.Impl != ModeIncr || inv.Arg != -10 {
		t.Fatalf("inverse = %+v, want Mode=deposit Impl=incr Arg=-10", inv)
	}
	// The escrow table must classify the compensation like the original:
	// conflicting with audits, commuting with other deposits.
	table := EscrowTable()
	if !table.ModeConflicts(inv.Mode, ModeAudit) {
		t.Fatal("compensated deposit must conflict with audit")
	}
	if table.ModeConflicts(inv.Mode, ModeDeposit) {
		t.Fatal("compensated deposit must commute with deposits")
	}

	// Writes and increments preserve Mode/Impl too.
	wop := Op{Mode: ModeWithdraw, Impl: ModeWrite, Item: "acct", Arg: 3}
	wres := Result{Prev: 10}
	winv, _ := Inverse(wop, wres)
	if winv.Mode != ModeWithdraw || winv.Impl != ModeWrite || winv.Arg != 10 {
		t.Fatalf("write inverse = %+v, want Mode=withdraw Impl=write Arg=10", winv)
	}

	// Reserve flips physically to release (and vice versa) while keeping
	// the semantic mode.
	rop := Op{Mode: ModeReserve, Item: "tickets", Arg: 5}
	rinv, _ := Inverse(rop, Result{})
	if rinv.Mode != ModeReserve || rinv.Impl != ModeRelease || rinv.Arg != 5 {
		t.Fatalf("reserve inverse = %+v, want Mode=reserve Impl=release Arg=5", rinv)
	}
	lop := Op{Mode: ModeRelease, Item: "tickets", Arg: 5}
	linv, _ := Inverse(lop, Result{})
	if linv.Mode != ModeRelease || linv.Impl != ModeReserve || linv.Arg != 5 {
		t.Fatalf("release inverse = %+v, want Mode=release Impl=reserve Arg=5", linv)
	}
}

// TestApplyHookOutsideMutex: the fault hook runs outside the store's
// critical section — a hook that calls back into the store must not
// deadlock, and a slow hook must not block concurrent snapshot reads.
func TestApplyHookOutsideMutex(t *testing.T) {
	s := NewStore()
	s.Set("x", 1)

	// Re-entrant hook: deadlocks under a hook-inside-mutex implementation.
	s.SetApplyHook(func(op Op) error {
		_ = s.Get("x")
		_ = s.ReadAt("x", s.Clock())
		return nil
	})
	if _, err := s.Apply(Op{Mode: ModeIncr, Item: "x", Arg: 1}); err != nil {
		t.Fatal(err)
	}

	// Wedged hook: holds an Apply indefinitely; snapshot reads must keep
	// flowing (they never pass through the hook's critical path).
	wedged := make(chan struct{})
	release := make(chan struct{})
	s.SetApplyHook(func(op Op) error {
		close(wedged)
		<-release
		return nil
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Apply(Op{Mode: ModeIncr, Item: "x", Arg: 1})
	}()
	<-wedged
	if got := s.ReadAt("x", s.Clock()); got != 2 {
		t.Fatalf("snapshot read under wedged hook = %d, want 2", got)
	}
	if got := s.Get("x"); got != 2 {
		t.Fatalf("Get under wedged hook = %d, want 2", got)
	}
	close(release)
	<-done

	// Veto semantics are unchanged: a failing hook leaves the store
	// untouched and uncounted.
	s.SetApplyHook(func(op Op) error { return errors.New("vetoed") })
	before := s.Applied()
	if _, err := s.Apply(Op{Mode: ModeIncr, Item: "x", Arg: 1}); err == nil {
		t.Fatal("vetoed apply must fail")
	}
	if s.Get("x") != 3 || s.Applied() != before {
		t.Fatal("vetoed apply must not touch the store")
	}
	s.SetApplyHook(nil)
	if _, err := s.Apply(Op{Mode: ModeIncr, Item: "x", Arg: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestUseClockSharedCounter: stores sharing one stamp counter allocate
// globally unique, per-store monotone stamps.
func TestUseClockSharedCounter(t *testing.T) {
	var clk atomic.Uint64
	s1, s2 := NewStore(), NewStore()
	s1.UseClock(&clk)
	s2.UseClock(&clk)
	seen := make(map[uint64]bool)
	var last1, last2 uint64
	for i := 0; i < 10; i++ {
		r1, _ := s1.Apply(Op{Mode: ModeIncr, Item: "x", Arg: 1})
		r2, _ := s2.Apply(Op{Mode: ModeIncr, Item: "y", Arg: 1})
		for _, ts := range []uint64{r1.TS, r2.TS} {
			if seen[ts] {
				t.Fatalf("duplicate stamp %d", ts)
			}
			seen[ts] = true
		}
		if r1.TS <= last1 || r2.TS <= last2 {
			t.Fatal("per-store stamps must be monotone")
		}
		last1, last2 = r1.TS, r2.TS
	}
}

// TestCompact drops old versions but keeps every item readable at and
// above the compaction horizon.
func TestCompact(t *testing.T) {
	s := NewStore()
	var stamps []uint64
	for i := int64(1); i <= 5; i++ {
		res, _ := s.Apply(Op{Mode: ModeWrite, Item: "x", Arg: i * 10})
		stamps = append(stamps, res.TS)
	}
	if dropped := s.Compact(stamps[3]); dropped != 2 {
		t.Fatalf("Compact dropped %d versions, want 2", dropped)
	}
	// The newest dropped-range version survives as the chain base.
	if n := s.VersionCount("x"); n != 3 {
		t.Fatalf("versions after compact = %d, want 3", n)
	}
	if got := s.ReadAt("x", stamps[4]); got != 50 {
		t.Fatalf("ReadAt(latest) = %d, want 50", got)
	}
	if got := s.ReadAt("x", stamps[3]); got != 40 {
		t.Fatalf("ReadAt(horizon) = %d, want 40", got)
	}
	if got := s.ReadAt("x", stamps[2]); got != 30 {
		t.Fatalf("ReadAt(base) = %d, want 30", got)
	}
	// Compacting everything keeps the newest version per item.
	s.Compact(s.Clock() + 1)
	if n := s.VersionCount("x"); n != 1 {
		t.Fatalf("versions after full compact = %d, want 1", n)
	}
	if got := s.Get("x"); got != 50 {
		t.Fatalf("Get after compact = %d, want 50", got)
	}
}

func BenchmarkSnapshotReadVsApply(b *testing.B) {
	s := NewStore()
	for i := 0; i < 64; i++ {
		s.Set(fmt.Sprintf("k%d", i), int64(i))
	}
	b.Run("ReadAt", func(b *testing.B) {
		ts := s.Clock()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				s.ReadAt(fmt.Sprintf("k%d", i%64), ts)
				i++
			}
		})
	})
	b.Run("ApplyRead", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				s.Apply(Op{Mode: ModeRead, Item: fmt.Sprintf("k%d", i%64)})
				i++
			}
		})
	})
}
