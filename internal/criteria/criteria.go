// Package criteria implements the correctness criteria the paper compares
// Comp-C against: conflict consistency of a single schedule (CC, from
// [ABFS97], restated as Definition 13), stack conflict consistency (SCC,
// Definitions 21–22), fork conflict consistency (FCC, Definitions 23–24),
// join conflict consistency (JCC, Definitions 25–27 with the ghost graph),
// and the classical baselines level-by-level serializability (LLSR, the
// multilevel criterion of [We91] the introduction criticizes) and
// order-preserving serializability (OPSR, [BBG89]).
//
// These are independent implementations working directly on the local
// schedule structure; the property tests verify Theorems 2–4 by comparing
// them with the general reduction of internal/front on randomly generated
// configurations.
package criteria

import (
	"fmt"

	"compositetx/internal/model"
	"compositetx/internal/order"
)

// SerOrder returns the transaction-level serialization order a schedule's
// execution induces: t before t' whenever the schedule executed a
// conflicting operation of t before one of t' (the classical serialization
// graph, restricted to the schedule). Pairs within one transaction are
// omitted.
func SerOrder(sys *model.System, sc *model.Schedule) *order.Relation[model.NodeID] {
	ser := order.New[model.NodeID]()
	for _, t := range sys.Transactions(sc.ID) {
		ser.AddNode(t)
	}
	sc.Conflicts.Each(func(a, b model.NodeID) {
		ta, tb := sys.Parent(a), sys.Parent(b)
		if ta == tb {
			return
		}
		if sc.WeakOut.Has(a, b) {
			ser.Add(ta, tb)
		}
		if sc.WeakOut.Has(b, a) {
			ser.Add(tb, ta)
		}
	})
	return ser
}

// IsCC reports conflict consistency of a single schedule (interpretation
// D5): the union of its weak input order with its serialization order is
// acyclic, i.e. the schedule serialized its transactions compatibly with
// the order requirements it was given.
func IsCC(sys *model.System, sc *model.Schedule) bool {
	return order.UnionOf(sc.WeakIn, SerOrder(sys, sc)).IsAcyclic()
}

// --- Stack (Definitions 21–22, Theorem 2) ---------------------------------

// IsStack reports whether the system is a stack configuration
// (Definition 21): the schedules form a single chain in the invocation
// graph and each non-bottom schedule's operations are exactly the next
// schedule's transactions.
func IsStack(sys *model.System) bool {
	levels, err := sys.Levels()
	if err != nil {
		return false
	}
	byLevel := make(map[int][]model.ScheduleID)
	maxLevel := 0
	for id, l := range levels {
		byLevel[l] = append(byLevel[l], id)
		if l > maxLevel {
			maxLevel = l
		}
	}
	if maxLevel == 0 {
		return false
	}
	for l := 1; l <= maxLevel; l++ {
		if len(byLevel[l]) != 1 {
			return false
		}
	}
	// Every operation of schedule level l>1 is a transaction of level l-1;
	// bottom operations are leaves.
	for l := 2; l <= maxLevel; l++ {
		upper, lower := byLevel[l][0], byLevel[l-1][0]
		for _, op := range sys.Ops(upper) {
			n := sys.Node(op)
			if n.IsLeaf() || n.Sched != lower {
				return false
			}
		}
	}
	for _, op := range sys.Ops(byLevel[1][0]) {
		if !sys.Node(op).IsLeaf() {
			return false
		}
	}
	return true
}

// IsSCC reports stack conflict consistency (Definition 22): every schedule
// of the stack is conflict consistent. It returns an error if the system
// is not a stack.
func IsSCC(sys *model.System) (bool, error) {
	if !IsStack(sys) {
		return false, fmt.Errorf("criteria: system is not a stack configuration")
	}
	for _, sc := range sys.Schedules() {
		if !IsCC(sys, sc) {
			return false, nil
		}
	}
	return true, nil
}

// --- Fork (Definitions 23–24, Theorem 3) ----------------------------------

// ForkShape describes a fork configuration: one top schedule whose
// operations are distributed over independent branch schedules.
type ForkShape struct {
	Top      model.ScheduleID
	Branches []model.ScheduleID
}

// AsFork recognizes a fork configuration (Definition 23): a two-level
// system with a single top schedule whose operations are all transactions
// of the branch schedules, and branches whose operations are leaves.
func AsFork(sys *model.System) (*ForkShape, bool) {
	levels, err := sys.Levels()
	if err != nil {
		return nil, false
	}
	shape := &ForkShape{}
	for id, l := range levels {
		switch l {
		case 2:
			if shape.Top != "" {
				return nil, false
			}
			shape.Top = id
		case 1:
			shape.Branches = append(shape.Branches, id)
		default:
			return nil, false
		}
	}
	if shape.Top == "" || len(shape.Branches) == 0 {
		return nil, false
	}
	for _, op := range sys.Ops(shape.Top) {
		if sys.Node(op).IsLeaf() {
			return nil, false
		}
	}
	// Definition 23 item 3: operations sent to different branches commute;
	// a fork schedule must not declare conflicts across branches.
	bad := false
	sys.Schedule(shape.Top).Conflicts.Each(func(a, b model.NodeID) {
		if sys.Node(a).Sched != sys.Node(b).Sched {
			bad = true
		}
	})
	if bad {
		return nil, false
	}
	// Deterministic branch order.
	sortScheduleIDs(shape.Branches)
	return shape, true
}

// IsFCC reports fork conflict consistency (Definition 24): the top schedule
// is conflict consistent and the union of the branches' input orders and
// serialization orders is acyclic.
func IsFCC(sys *model.System) (bool, error) {
	shape, ok := AsFork(sys)
	if !ok {
		return false, fmt.Errorf("criteria: system is not a fork configuration")
	}
	if !IsCC(sys, sys.Schedule(shape.Top)) {
		return false, nil
	}
	u := order.New[model.NodeID]()
	for _, b := range shape.Branches {
		sc := sys.Schedule(b)
		u.Union(sc.WeakIn)
		u.Union(SerOrder(sys, sc))
	}
	return u.IsAcyclic(), nil
}

// --- Join (Definitions 25–27, Theorem 4) -----------------------------------

// JoinShape describes a join configuration: independent top schedules whose
// transactions' operations all funnel into one shared bottom schedule.
type JoinShape struct {
	Tops   []model.ScheduleID
	Bottom model.ScheduleID
}

// AsJoin recognizes a join configuration (Definition 25): a two-level
// system with one bottom schedule (level 1) and at least two top schedules
// whose operations are all transactions of the bottom schedule.
func AsJoin(sys *model.System) (*JoinShape, bool) {
	levels, err := sys.Levels()
	if err != nil {
		return nil, false
	}
	shape := &JoinShape{}
	for id, l := range levels {
		switch l {
		case 1:
			if shape.Bottom != "" {
				return nil, false
			}
			shape.Bottom = id
		case 2:
			shape.Tops = append(shape.Tops, id)
		default:
			return nil, false
		}
	}
	if shape.Bottom == "" || len(shape.Tops) < 2 {
		return nil, false
	}
	for _, top := range shape.Tops {
		for _, op := range sys.Ops(top) {
			n := sys.Node(op)
			if n.IsLeaf() || n.Sched != shape.Bottom {
				return nil, false
			}
		}
	}
	sortScheduleIDs(shape.Tops)
	return shape, true
}

// GhostGraph builds the ghost graph of a join schedule (Definition 26): an
// edge T -> T' between transactions of different top schedules whenever the
// bottom schedule serialized a child of T before a child of T'.
func GhostGraph(sys *model.System, shape *JoinShape) *order.Relation[model.NodeID] {
	g := order.New[model.NodeID]()
	bottom := sys.Schedule(shape.Bottom)
	ser := SerOrder(sys, bottom)
	ser.Each(func(t, t2 model.NodeID) {
		p, p2 := sys.Parent(t), sys.Parent(t2)
		if p == p2 {
			return
		}
		if sys.Node(p).Sched != sys.Node(p2).Sched {
			g.Add(p, p2)
		}
	})
	return g
}

// IsJCC reports join conflict consistency (Definition 27): the bottom
// schedule is conflict consistent and the union of the ghost graph with
// every top schedule's input and serialization orders is acyclic.
func IsJCC(sys *model.System) (bool, error) {
	shape, ok := AsJoin(sys)
	if !ok {
		return false, fmt.Errorf("criteria: system is not a join configuration")
	}
	if !IsCC(sys, sys.Schedule(shape.Bottom)) {
		return false, nil
	}
	u := GhostGraph(sys, shape)
	for _, top := range shape.Tops {
		sc := sys.Schedule(top)
		u.Union(sc.WeakIn)
		u.Union(SerOrder(sys, sc))
	}
	return u.IsAcyclic(), nil
}

func sortScheduleIDs(ids []model.ScheduleID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
