package criteria_test

import (
	"strings"
	"testing"

	"compositetx/internal/criteria"
	"compositetx/internal/front"
	"compositetx/internal/workload"
)

func TestClassifyStack(t *testing.T) {
	exec := workload.Stack(workload.StackParams{
		Levels: 3, Roots: 2, Fanout: 2, ConflictRate: 0.3, Seed: 2,
	})
	rep, err := criteria.Classify(exec.Sys, exec.Seqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shape != "stack" || rep.Order != 3 {
		t.Fatalf("shape=%s order=%d", rep.Shape, rep.Order)
	}
	for _, name := range []string{"Comp-C", "SCC", "LLSR", "OPSR"} {
		if _, ok := rep.Criteria[name]; !ok {
			t.Errorf("criterion %s missing from stack report", name)
		}
	}
	if rep.Criteria["SCC"] != rep.Criteria["Comp-C"] {
		t.Error("Theorem 2 must hold inside the report")
	}
	if len(rep.ScheduleCC) != 3 {
		t.Errorf("ScheduleCC entries = %d, want 3", len(rep.ScheduleCC))
	}
	if s := rep.String(); !strings.Contains(s, "stack") || !strings.Contains(s, "Comp-C") {
		t.Errorf("report rendering incomplete:\n%s", s)
	}
}

func TestClassifyStackWithoutSequences(t *testing.T) {
	exec := workload.Stack(workload.StackParams{
		Levels: 2, Roots: 2, Fanout: 2, ConflictRate: 0.3, Seed: 2,
	})
	rep, err := criteria.Classify(exec.Sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Criteria["OPSR"]; ok {
		t.Fatal("OPSR must be omitted without sequences")
	}
}

func TestClassifyFork(t *testing.T) {
	exec := workload.Fork(workload.ForkParams{
		Branches: 3, Roots: 2, Fanout: 2, LeavesPerSub: 2, ConflictRate: 0.3, Seed: 2,
	})
	rep, err := criteria.Classify(exec.Sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shape != "fork" {
		t.Fatalf("shape = %s, want fork", rep.Shape)
	}
	if rep.Criteria["FCC"] != rep.Criteria["Comp-C"] {
		t.Error("Theorem 3 must hold inside the report")
	}
}

func TestClassifyJoin(t *testing.T) {
	exec := workload.Join(workload.JoinParams{
		Tops: 2, RootsPerTop: 2, Fanout: 2, LeavesPerSub: 2,
		ConflictRate: 0.3, TopConflictRate: 0.2, Seed: 2,
	})
	rep, err := criteria.Classify(exec.Sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shape != "join" {
		t.Fatalf("shape = %s, want join", rep.Shape)
	}
	if rep.Criteria["JCC"] != rep.Criteria["Comp-C"] {
		t.Error("Theorem 4 must hold inside the report")
	}
}

func TestClassifyGeneral(t *testing.T) {
	rep, err := criteria.Classify(front.Figure3System(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shape != "general" {
		t.Fatalf("shape = %s, want general", rep.Shape)
	}
	if rep.CompC {
		t.Fatal("Figure 3 must classify as incorrect")
	}
	// Every schedule is locally CC — the paper's central point: local
	// consistency does not imply global correctness.
	for id, cc := range rep.ScheduleCC {
		if !cc {
			t.Errorf("schedule %s should be locally CC", id)
		}
	}
	for _, absent := range []string{"SCC", "FCC", "JCC", "LLSR", "OPSR"} {
		if _, ok := rep.Criteria[absent]; ok {
			t.Errorf("criterion %s should not apply to a general configuration", absent)
		}
	}
}

func TestClassifyRejectsBrokenStructure(t *testing.T) {
	exec := workload.Stack(workload.StackParams{Levels: 2, Roots: 1, Fanout: 1, ConflictRate: 0, Seed: 1})
	exec.Sys.AddLeaf("orphan", "ghost")
	if _, err := criteria.Classify(exec.Sys, nil); err == nil {
		t.Fatal("Classify must reject broken structures")
	}
}
