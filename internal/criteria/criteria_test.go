package criteria

import (
	"testing"

	"compositetx/internal/model"
)

// twoLevelStack builds a 2-level stack: L2 schedules roots T1, T2; L1
// schedules t11 (of T1) and t21 (of T2) whose leaves conflict in the given
// order.
func twoLevelStack(t *testing.T, leafOrder [2]model.NodeID, inOrder *[2]model.NodeID) *model.System {
	t.Helper()
	s := model.NewSystem()
	l2 := s.AddSchedule("L2")
	l1 := s.AddSchedule("L1")
	s.AddRoot("T1", "L2")
	s.AddRoot("T2", "L2")
	s.AddTx("t11", "T1", "L1")
	s.AddTx("t21", "T2", "L1")
	s.AddLeaf("a", "t11")
	s.AddLeaf("b", "t21")
	l1.AddConflict("a", "b")
	l1.WeakOut.Add(leafOrder[0], leafOrder[1])
	if inOrder != nil {
		l2.WeakOut.Add(inOrder[0], inOrder[1]) // order the subtransactions
		l2.AddConflict(inOrder[0], inOrder[1])
		l1.WeakIn.Add(inOrder[0], inOrder[1]) // Def 4.7
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("fixture should validate: %v", err)
	}
	return s
}

func TestSerOrder(t *testing.T) {
	s := twoLevelStack(t, [2]model.NodeID{"a", "b"}, nil)
	ser := SerOrder(s, s.Schedule("L1"))
	if !ser.Has("t11", "t21") {
		t.Error("serialization order missing t11 -> t21")
	}
	if ser.Has("t21", "t11") {
		t.Error("serialization order has a spurious reverse pair")
	}
}

func TestIsCCRespectsInputOrders(t *testing.T) {
	s := twoLevelStack(t, [2]model.NodeID{"a", "b"}, nil)
	l1 := s.Schedule("L1")
	if !IsCC(s, l1) {
		t.Fatal("schedule with consistent serialization should be CC")
	}
	// Now claim the input order was the other way round: t21 → t11 while
	// the serialization order is t11 before t21.
	l1.WeakIn.Add("t21", "t11")
	if IsCC(s, l1) {
		t.Fatal("schedule serializing against its input order must not be CC")
	}
}

func TestIsStack(t *testing.T) {
	s := twoLevelStack(t, [2]model.NodeID{"a", "b"}, nil)
	if !IsStack(s) {
		t.Fatal("fixture is a stack")
	}
	// A fork is not a stack.
	f := model.NewSystem()
	f.AddSchedule("SF")
	f.AddSchedule("B1")
	f.AddSchedule("B2")
	f.AddRoot("T", "SF")
	f.AddTx("t1", "T", "B1")
	f.AddTx("t2", "T", "B2")
	f.AddLeaf("x", "t1")
	f.AddLeaf("y", "t2")
	if IsStack(f) {
		t.Fatal("fork misrecognized as stack")
	}
	// A stack schedule with a stray leaf op at the top is not a pure stack.
	s2 := twoLevelStack(t, [2]model.NodeID{"a", "b"}, nil)
	s2.AddLeaf("stray", "T1")
	if IsStack(s2) {
		t.Fatal("top-level leaf op violates Definition 21")
	}
}

func TestIsSCC(t *testing.T) {
	ok, err := IsSCC(twoLevelStack(t, [2]model.NodeID{"a", "b"}, nil))
	if err != nil || !ok {
		t.Fatalf("IsSCC = %v, %v; want true", ok, err)
	}
	// Leaf order against the declared upper-level order: L1 not CC.
	bad := twoLevelStack(t, [2]model.NodeID{"a", "b"}, nil)
	bad.Schedule("L1").WeakIn.Add("t21", "t11")
	ok, err = IsSCC(bad)
	if err != nil || ok {
		t.Fatalf("IsSCC = %v, %v; want false", ok, err)
	}
	if _, err := IsSCC(model.NewSystem()); err == nil {
		t.Fatal("IsSCC on an empty system should fail the stack check")
	}
}

// forkFixture builds a fork: SF schedules T1, T2; T1 sends t1a to B1 and
// t1b to B2; T2 sends t2a to B1.
func forkFixture(t *testing.T) *model.System {
	t.Helper()
	s := model.NewSystem()
	b1 := s.AddSchedule("B1")
	s.AddSchedule("B2")
	s.AddSchedule("SF")
	s.AddRoot("T1", "SF")
	s.AddRoot("T2", "SF")
	s.AddTx("t1a", "T1", "B1")
	s.AddTx("t1b", "T1", "B2")
	s.AddTx("t2a", "T2", "B1")
	s.AddLeaf("x1", "t1a")
	s.AddLeaf("x2", "t2a")
	s.AddLeaf("y1", "t1b")
	b1.AddConflict("x1", "x2")
	b1.WeakOut.Add("x1", "x2")
	if err := s.Validate(); err != nil {
		t.Fatalf("fixture should validate: %v", err)
	}
	return s
}

func TestAsFork(t *testing.T) {
	shape, ok := AsFork(forkFixture(t))
	if !ok {
		t.Fatal("fixture is a fork")
	}
	if shape.Top != "SF" || len(shape.Branches) != 2 {
		t.Fatalf("shape = %+v", shape)
	}
	// A 3-level stack is not a fork.
	stack := twoLevelStack(t, [2]model.NodeID{"a", "b"}, nil)
	if _, ok := AsFork(stack); ok {
		// two-level stack is structurally a single-branch fork; that is
		// acceptable per Definition 23, so only check the branch count.
		if len(shapeOf(t, stack).Branches) != 1 {
			t.Fatal("stack misrecognized")
		}
	}
}

func shapeOf(t *testing.T, sys *model.System) *ForkShape {
	t.Helper()
	shape, ok := AsFork(sys)
	if !ok {
		t.Fatal("expected a fork shape")
	}
	return shape
}

func TestIsFCC(t *testing.T) {
	ok, err := IsFCC(forkFixture(t))
	if err != nil || !ok {
		t.Fatalf("IsFCC = %v, %v; want true", ok, err)
	}
	// Make branch B1 serialize against its input order.
	bad := forkFixture(t)
	bad.Schedule("B1").WeakIn.Add("t2a", "t1a")
	ok, err = IsFCC(bad)
	if err != nil || ok {
		t.Fatalf("IsFCC = %v, %v; want false", ok, err)
	}
}

// joinFixture builds a join: U1 schedules TA, U2 schedules TB; both send
// two subtransactions each into SJ. The leaf orders create the ghost-graph
// pattern ta1 < tb1 and tb2 < ta2 when crossed is true.
func joinFixture(t *testing.T, crossed bool) *model.System {
	t.Helper()
	s := model.NewSystem()
	sj := s.AddSchedule("SJ")
	s.AddSchedule("U1")
	s.AddSchedule("U2")
	s.AddRoot("TA", "U1")
	s.AddRoot("TB", "U2")
	s.AddTx("ta1", "TA", "SJ")
	s.AddTx("ta2", "TA", "SJ")
	s.AddTx("tb1", "TB", "SJ")
	s.AddTx("tb2", "TB", "SJ")
	s.AddLeaf("a1", "ta1")
	s.AddLeaf("a2", "ta2")
	s.AddLeaf("b1", "tb1")
	s.AddLeaf("b2", "tb2")
	sj.AddConflict("a1", "b1")
	sj.WeakOut.Add("a1", "b1") // TA's work before TB's here
	sj.AddConflict("a2", "b2")
	if crossed {
		sj.WeakOut.Add("b2", "a2") // ...and TB's before TA's there
	} else {
		sj.WeakOut.Add("a2", "b2")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("fixture should validate: %v", err)
	}
	return s
}

func TestAsJoinAndGhostGraph(t *testing.T) {
	sys := joinFixture(t, true)
	shape, ok := AsJoin(sys)
	if !ok {
		t.Fatal("fixture is a join")
	}
	if shape.Bottom != "SJ" || len(shape.Tops) != 2 {
		t.Fatalf("shape = %+v", shape)
	}
	g := GhostGraph(sys, shape)
	if !g.Has("TA", "TB") || !g.Has("TB", "TA") {
		t.Fatalf("ghost graph should relate TA and TB both ways: %v", g.Pairs())
	}
}

func TestIsJCC(t *testing.T) {
	ok, err := IsJCC(joinFixture(t, false))
	if err != nil || !ok {
		t.Fatalf("IsJCC(straight) = %v, %v; want true", ok, err)
	}
	ok, err = IsJCC(joinFixture(t, true))
	if err != nil || ok {
		t.Fatalf("IsJCC(crossed) = %v, %v; want false (ghost-graph cycle)", ok, err)
	}
}

// llsrShowcase builds the paper's introduction argument as a fixture: two
// roots whose subtransactions are serialized in opposite directions at the
// bottom level through *different* subtransaction pairs. Every schedule is
// locally CC (SCC and Comp-C accept — the upper schedule declares no
// conflict between the subtransactions, so the orders are forgotten), but
// LLSR's pessimistic lifting turns the two bottom-level orders into
// T1 < T2 and T2 < T1 and rejects.
func llsrShowcase(t *testing.T) *model.System {
	t.Helper()
	s := model.NewSystem()
	s.AddSchedule("L2")
	l1 := s.AddSchedule("L1")
	s.AddRoot("T1", "L2")
	s.AddRoot("T2", "L2")
	s.AddTx("t11", "T1", "L1")
	s.AddTx("t12", "T1", "L1")
	s.AddTx("t21", "T2", "L1")
	s.AddTx("t22", "T2", "L1")
	s.AddLeaf("a", "t11")
	s.AddLeaf("b", "t21")
	s.AddLeaf("a2", "t12")
	s.AddLeaf("b2", "t22")
	l1.AddConflict("a", "b")
	l1.WeakOut.Add("a", "b") // t11 serialized before t21
	l1.AddConflict("a2", "b2")
	l1.WeakOut.Add("b2", "a2") // t22 serialized before t12
	if err := s.Validate(); err != nil {
		t.Fatalf("fixture should validate: %v", err)
	}
	return s
}

func TestLLSRStricterThanSCC(t *testing.T) {
	s := llsrShowcase(t)
	scc, err := IsSCC(s)
	if err != nil {
		t.Fatal(err)
	}
	if !scc {
		t.Fatal("SCC should accept: every schedule is locally CC")
	}
	llsr, err := IsLLSR(s)
	if err != nil {
		t.Fatal(err)
	}
	if llsr {
		t.Fatal("LLSR must reject: lifted orders T1<T2 and T2<T1 contradict")
	}
}

func TestLLSRAcceptsConsistentStack(t *testing.T) {
	s := twoLevelStack(t, [2]model.NodeID{"a", "b"}, nil)
	ok, err := IsLLSR(s)
	if err != nil || !ok {
		t.Fatalf("IsLLSR = %v, %v; want true", ok, err)
	}
}

func TestWhollyBefore(t *testing.T) {
	s := twoLevelStack(t, [2]model.NodeID{"a", "b"}, nil)
	wb := WhollyBefore(s, "L1", []model.NodeID{"a", "b"})
	if !wb.Has("t11", "t21") || wb.Has("t21", "t11") {
		t.Fatalf("WhollyBefore = %v", wb.Pairs())
	}
}

func TestIsOPSRNeedsSequences(t *testing.T) {
	s := twoLevelStack(t, [2]model.NodeID{"a", "b"}, nil)
	if _, err := IsOPSR(s, Sequences{}); err == nil {
		t.Fatal("IsOPSR without sequences should error")
	}
	seqs := Sequences{
		"L1": {"a", "b"},
		"L2": {"t11", "t21"},
	}
	ok, err := IsOPSR(s, seqs)
	if err != nil || !ok {
		t.Fatalf("IsOPSR = %v, %v; want true", ok, err)
	}
}

func TestIsOPSRRejectsOrderReversal(t *testing.T) {
	// The classical OPSR counterexample: t2 runs wholly before t1, but the
	// conflicts serialize t1 < t3 < t2 through the overlapping t3. The
	// serialization graph is acyclic (CC holds), yet no serial order can
	// preserve the real-time order t2 before t1.
	s := model.NewSystem()
	s.AddSchedule("L2")
	l1 := s.AddSchedule("L1")
	s.AddRoot("T1", "L2")
	s.AddRoot("T2", "L2")
	s.AddRoot("T3", "L2")
	s.AddTx("t1", "T1", "L1")
	s.AddTx("t2", "T2", "L1")
	s.AddTx("t3", "T3", "L1")
	s.AddLeaf("a", "t1")
	s.AddLeaf("b1", "t2")
	s.AddLeaf("b2", "t2")
	s.AddLeaf("c1", "t3")
	s.AddLeaf("c2", "t3")
	l1.AddConflict("a", "c2")
	l1.WeakOut.Add("a", "c2") // t1 < t3
	l1.AddConflict("c1", "b1")
	l1.WeakOut.Add("c1", "b1") // t3 < t2
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !IsCC(s, l1) {
		t.Fatal("the counterexample must be conflict consistent")
	}
	seqs := Sequences{
		"L1": {"c1", "b1", "b2", "a", "c2"}, // t2 wholly before t1
		"L2": {"t1", "t2", "t3"},
	}
	ok, err := IsOPSR(s, seqs)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("OPSR must reject serialization against the real-time order")
	}
}
