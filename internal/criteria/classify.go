package criteria

import (
	"fmt"
	"sort"
	"strings"

	"compositetx/internal/front"
	"compositetx/internal/model"
)

// Report is the one-stop analysis of a recorded composite execution: the
// verdict of every applicable criterion plus the shape of the
// configuration. Criteria that do not apply to the configuration (SCC on
// a non-stack, JCC on a non-join, OPSR without sequences) are omitted.
type Report struct {
	// Shape is "stack", "fork", "join" or "general".
	Shape string
	// Order is the number of schedule levels.
	Order int
	// ScheduleCC maps every schedule to its local conflict consistency.
	ScheduleCC map[model.ScheduleID]bool
	// Criteria maps criterion name ("Comp-C", "SCC", "FCC", "JCC",
	// "LLSR", "OPSR") to its verdict, for the applicable ones.
	Criteria map[string]bool
	// CompC is the general verdict (also in Criteria).
	CompC bool
}

// Classify runs every applicable correctness criterion on the execution.
// seqs may be nil; OPSR is then omitted.
func Classify(sys *model.System, seqs Sequences) (*Report, error) {
	if err := sys.ValidateStructure(); err != nil {
		return nil, err
	}
	order, err := sys.Order()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Order:      order,
		Shape:      "general",
		ScheduleCC: map[model.ScheduleID]bool{},
		Criteria:   map[string]bool{},
	}
	for _, sc := range sys.Schedules() {
		rep.ScheduleCC[sc.ID] = IsCC(sys, sc)
	}
	compC, err := front.IsCompC(sys)
	if err != nil {
		return nil, err
	}
	rep.CompC = compC
	rep.Criteria["Comp-C"] = compC

	if IsStack(sys) {
		rep.Shape = "stack"
		if v, err := IsSCC(sys); err == nil {
			rep.Criteria["SCC"] = v
		}
		if v, err := IsLLSR(sys); err == nil {
			rep.Criteria["LLSR"] = v
		}
		if seqs != nil {
			if v, err := IsOPSR(sys, seqs); err == nil {
				rep.Criteria["OPSR"] = v
			}
		}
	}
	if _, ok := AsFork(sys); ok {
		if rep.Shape == "general" {
			rep.Shape = "fork"
		}
		if v, err := IsFCC(sys); err == nil {
			rep.Criteria["FCC"] = v
		}
	}
	if _, ok := AsJoin(sys); ok {
		rep.Shape = "join"
		if v, err := IsJCC(sys); err == nil {
			rep.Criteria["JCC"] = v
		}
	}
	return rep, nil
}

// String renders the report as a small table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "configuration: %s, order %d\n", r.Shape, r.Order)
	ids := make([]model.ScheduleID, 0, len(r.ScheduleCC))
	for id := range r.ScheduleCC {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Fprintf(&b, "  schedule %-12s CC=%v\n", id, r.ScheduleCC[id])
	}
	names := make([]string, 0, len(r.Criteria))
	for n := range r.Criteria {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %-8s %v\n", n, r.Criteria[n])
	}
	return b.String()
}
