// Theorems 2–4 of the paper, machine-checked: on stack, fork and join
// configurations the special-case criteria SCC, FCC and JCC coincide with
// composite correctness (Comp-C) as decided by the general reduction.
//
// This file is an external test package because workload (the generator)
// depends on the criteria package for the Sequences type.
package criteria_test

import (
	"testing"

	"compositetx/internal/criteria"
	"compositetx/internal/front"
	"compositetx/internal/workload"
)

// checkAgreement runs one generated execution through a special-case
// criterion and through the general reduction and requires identical
// verdicts.
func checkAgreement(t *testing.T, name string, exec *workload.Execution,
	special func() (bool, error)) (special1, compC bool) {
	t.Helper()
	if err := exec.Sys.Validate(); err != nil {
		t.Fatalf("%s: generated execution must validate: %v", name, err)
	}
	s, err := special()
	if err != nil {
		t.Fatalf("%s: criterion error: %v", name, err)
	}
	c, err := front.IsCompC(exec.Sys)
	if err != nil {
		t.Fatalf("%s: Check error: %v", name, err)
	}
	if s != c {
		v, _ := front.Check(exec.Sys, front.Options{KeepFronts: true})
		t.Fatalf("%s: criterion=%v but Comp-C=%v\nverdict: %s\ntrace:\n%s",
			name, s, c, v, v.Trace())
	}
	return s, c
}

func TestTheorem2StackSCCEquivalence(t *testing.T) {
	accepted, rejected := 0, 0
	for seed := int64(0); seed < 120; seed++ {
		p := workload.StackParams{
			Levels:       2 + int(seed%3), // 2..4 levels
			Roots:        2 + int(seed%2),
			Fanout:       2,
			ConflictRate: 0.15 + 0.5*float64(seed%4)/4,
			StrongRate:   0.1 * float64(seed%2),
			Seed:         seed,
		}
		exec := workload.Stack(p)
		scc, _ := checkAgreement(t, "stack", exec, func() (bool, error) {
			return criteria.IsSCC(exec.Sys)
		})
		if scc {
			accepted++
		} else {
			rejected++
		}
	}
	// The generator must exercise both sides of the equivalence.
	if accepted == 0 || rejected == 0 {
		t.Fatalf("degenerate coverage: %d accepted, %d rejected", accepted, rejected)
	}
}

func TestTheorem3ForkFCCEquivalence(t *testing.T) {
	accepted, rejected := 0, 0
	for seed := int64(0); seed < 120; seed++ {
		p := workload.ForkParams{
			Branches:     2 + int(seed%3),
			Roots:        2 + int(seed%3),
			Fanout:       2,
			LeavesPerSub: 2,
			ConflictRate: 0.1 + 0.5*float64(seed%5)/5,
			StrongRate:   0.1 * float64(seed%2),
			Seed:         seed,
		}
		exec := workload.Fork(p)
		fcc, _ := checkAgreement(t, "fork", exec, func() (bool, error) {
			return criteria.IsFCC(exec.Sys)
		})
		if fcc {
			accepted++
		} else {
			rejected++
		}
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("degenerate coverage: %d accepted, %d rejected", accepted, rejected)
	}
}

func TestTheorem4JoinJCCEquivalence(t *testing.T) {
	accepted, rejected := 0, 0
	for seed := int64(0); seed < 120; seed++ {
		p := workload.JoinParams{
			Tops:            2 + int(seed%2),
			RootsPerTop:     1 + int(seed%2),
			Fanout:          2,
			LeavesPerSub:    2,
			ConflictRate:    0.1 + 0.5*float64(seed%5)/5,
			TopConflictRate: 0.15 * float64(seed%3),
			Seed:            seed,
		}
		exec := workload.Join(p)
		jcc, _ := checkAgreement(t, "join", exec, func() (bool, error) {
			return criteria.IsJCC(exec.Sys)
		})
		if jcc {
			accepted++
		} else {
			rejected++
		}
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("degenerate coverage: %d accepted, %d rejected", accepted, rejected)
	}
}

// TestContainmentLLSRInSCC: every LLSR execution is SCC (= Comp-C on
// stacks), and across the sweep some executions are SCC but not LLSR —
// the paper's claim that the composite classes are strictly larger.
func TestContainmentLLSRInSCC(t *testing.T) {
	sccNotLLSR := 0
	for seed := int64(0); seed < 150; seed++ {
		exec := workload.Stack(workload.StackParams{
			Levels: 2 + int(seed%2), Roots: 2, Fanout: 2,
			ConflictRate: 0.2 + 0.4*float64(seed%3)/3,
			Seed:         seed,
		})
		llsr, err := criteria.IsLLSR(exec.Sys)
		if err != nil {
			t.Fatal(err)
		}
		scc, err := criteria.IsSCC(exec.Sys)
		if err != nil {
			t.Fatal(err)
		}
		if llsr && !scc {
			t.Fatalf("seed %d: LLSR accepted an execution SCC rejects (containment violated)", seed)
		}
		if scc && !llsr {
			sccNotLLSR++
		}
	}
	if sccNotLLSR == 0 {
		t.Fatal("sweep never separated SCC from LLSR; expected strict containment")
	}
}

// TestContainmentOPSRInSCC: every OPSR execution is SCC, with strictness
// across the sweep.
func TestContainmentOPSRInSCC(t *testing.T) {
	sccNotOPSR := 0
	for seed := int64(0); seed < 150; seed++ {
		exec := workload.Stack(workload.StackParams{
			Levels: 2, Roots: 3, Fanout: 2,
			ConflictRate: 0.2 + 0.4*float64(seed%3)/3,
			Seed:         seed,
		})
		opsr, err := criteria.IsOPSR(exec.Sys, exec.Seqs)
		if err != nil {
			t.Fatal(err)
		}
		scc, err := criteria.IsSCC(exec.Sys)
		if err != nil {
			t.Fatal(err)
		}
		if opsr && !scc {
			t.Fatalf("seed %d: OPSR accepted an execution SCC rejects (containment violated)", seed)
		}
		if scc && !opsr {
			sccNotOPSR++
		}
	}
	if sccNotOPSR == 0 {
		t.Fatal("sweep never separated SCC from OPSR; expected strict containment")
	}
}

// TestGeneralExecutionsValidateAndDecide: the general generator produces
// model-conformant executions of arbitrary shape, and the checker decides
// all of them without error, in both directions.
func TestGeneralExecutionsValidateAndDecide(t *testing.T) {
	correct, incorrect := 0, 0
	for seed := int64(0); seed < 80; seed++ {
		exec := workload.General(workload.GeneralParams{
			Depth: 2 + int(seed%3), SchedsPerLevel: 2, Roots: 3, Fanout: 2,
			LeafRate:     0.3,
			ConflictRate: 0.1 + 0.6*float64(seed%4)/4,
			StrongRate:   0.05 * float64(seed%2),
			Seed:         seed,
		})
		if err := exec.Sys.Validate(); err != nil {
			t.Fatalf("seed %d: generated general execution must validate: %v", seed, err)
		}
		ok, err := front.IsCompC(exec.Sys)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ok {
			correct++
		} else {
			incorrect++
		}
	}
	if correct == 0 || incorrect == 0 {
		t.Fatalf("degenerate coverage: %d correct, %d incorrect", correct, incorrect)
	}
}
