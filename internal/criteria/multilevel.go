package criteria

import (
	"fmt"
	"sort"

	"compositetx/internal/model"
	"compositetx/internal/order"
)

// This file implements the two classical multilevel criteria the paper's
// introduction positions Comp-C against, both restricted to stack
// configurations:
//
//   - LLSR, level-by-level serializability [We91]: to allow independent
//     schedulers per level it assumes that operations conflicting at one
//     level conflict at all lower levels — equivalently, every ordering a
//     level establishes constrains the level above, whether or not the
//     upper schedule declares a conflict. This destroys modularity and
//     accepts strictly fewer executions than SCC (= Comp-C on stacks).
//     The implementation here is the pessimistic propagate-everything
//     discipline and stands in for the whole LLSR/MLSR family the paper's
//     §4 cites [We91, Wei91]: multilevel variants differ in how much of
//     the lower-level order they lift, and all of them lift at least the
//     conflicting pairs, so all are contained in SCC.
//
//   - OPSR, order-preserving (conflict) serializability [BBG89]: each
//     level must be serializable in an order consistent with the real-time
//     order of non-overlapping transactions, which requires the temporal
//     execution sequence of each schedule.

// IsLLSR reports level-by-level serializability of a stack execution: at
// every level, the union of the schedule's input order, its serialization
// order, and the orders lifted from the level below must be acyclic; all
// established orders are lifted to the next level regardless of declared
// conflicts (the pessimistic conflict-propagation assumption).
func IsLLSR(sys *model.System) (bool, error) {
	stack, err := stackByLevel(sys)
	if err != nil {
		return false, err
	}
	lifted := order.New[model.NodeID]()
	for _, sc := range stack {
		local := order.UnionOf(sc.WeakIn, SerOrder(sys, sc), lifted)
		if local.HasCycle() {
			return false, nil
		}
		next := order.New[model.NodeID]()
		local.TransitiveClosure().Each(func(a, b model.NodeID) {
			pa, pb := sys.Parent(a), sys.Parent(b)
			if pa != pb && pa != a { // stop lifting at the roots
				next.Add(pa, pb)
			}
		})
		lifted = next
	}
	return true, nil
}

// Sequences records, per schedule, the temporal order in which the
// schedule executed its operations. It is extra information beyond the
// model (which only keeps the required weak/strong orders); generators and
// the runtime recorder supply it for the OPSR baseline.
type Sequences map[model.ScheduleID][]model.NodeID

// WhollyBefore derives the "transaction t finished before t' started"
// relation of a schedule from its temporal operation sequence.
func WhollyBefore(sys *model.System, sched model.ScheduleID, seq []model.NodeID) *order.Relation[model.NodeID] {
	first := map[model.NodeID]int{}
	last := map[model.NodeID]int{}
	for i, op := range seq {
		t := sys.Parent(op)
		if _, ok := first[t]; !ok {
			first[t] = i
		}
		last[t] = i
	}
	wb := order.New[model.NodeID]()
	txs := make([]model.NodeID, 0, len(first))
	for t := range first {
		txs = append(txs, t)
	}
	sort.Slice(txs, func(i, j int) bool { return txs[i] < txs[j] })
	for _, t := range txs {
		for _, t2 := range txs {
			if t != t2 && last[t] < first[t2] {
				wb.Add(t, t2)
			}
		}
	}
	return wb
}

// IsOPSR reports order-preserving serializability of a stack execution:
// every level must be serializable consistently with its input orders and
// with the real-time order of non-overlapping transactions. seqs must
// contain the temporal operation sequence of every schedule.
func IsOPSR(sys *model.System, seqs Sequences) (bool, error) {
	stack, err := stackByLevel(sys)
	if err != nil {
		return false, err
	}
	for _, sc := range stack {
		seq, ok := seqs[sc.ID]
		if !ok {
			return false, fmt.Errorf("criteria: no temporal sequence recorded for schedule %s", sc.ID)
		}
		u := order.UnionOf(sc.WeakIn, SerOrder(sys, sc), WhollyBefore(sys, sc.ID, seq))
		if u.HasCycle() {
			return false, nil
		}
	}
	return true, nil
}

// stackByLevel returns the stack's schedules ordered bottom-up, or an
// error if the system is not a stack.
func stackByLevel(sys *model.System) ([]*model.Schedule, error) {
	if !IsStack(sys) {
		return nil, fmt.Errorf("criteria: system is not a stack configuration")
	}
	levels, err := sys.Levels()
	if err != nil {
		return nil, err
	}
	out := make([]*model.Schedule, len(levels))
	for id, l := range levels {
		out[l-1] = sys.Schedule(id)
	}
	return out, nil
}
