package model

import (
	"encoding/json"
	"fmt"
	"io"

	"compositetx/internal/order"
)

// systemJSON is the on-disk representation read and written by the cmd
// tools. Pairs are two-element arrays; empty relations may be omitted.
type systemJSON struct {
	Nodes     []nodeJSON     `json:"nodes"`
	Schedules []scheduleJSON `json:"schedules"`
}

type nodeJSON struct {
	ID          string      `json:"id"`
	Parent      string      `json:"parent,omitempty"`
	Schedule    string      `json:"schedule,omitempty"`
	WeakIntra   [][2]string `json:"weakIntra,omitempty"`
	StrongIntra [][2]string `json:"strongIntra,omitempty"`
}

type scheduleJSON struct {
	ID        string      `json:"id"`
	Conflicts [][2]string `json:"conflicts,omitempty"`
	WeakIn    [][2]string `json:"weakIn,omitempty"`
	StrongIn  [][2]string `json:"strongIn,omitempty"`
	WeakOut   [][2]string `json:"weakOut,omitempty"`
	StrongOut [][2]string `json:"strongOut,omitempty"`
}

func relToPairs(r *order.Relation[NodeID]) [][2]string {
	if r == nil || r.Len() == 0 {
		return nil
	}
	ps := r.Pairs()
	out := make([][2]string, len(ps))
	for i, p := range ps {
		out[i] = [2]string{string(p[0]), string(p[1])}
	}
	return out
}

func pairsToRel(ps [][2]string) *order.Relation[NodeID] {
	r := order.New[NodeID]()
	for _, p := range ps {
		r.Add(NodeID(p[0]), NodeID(p[1]))
	}
	return r
}

// MarshalJSON encodes the system in the cmd tools' file format.
func (s *System) MarshalJSON() ([]byte, error) {
	var doc systemJSON
	for _, id := range s.NodeIDs() {
		n := s.nodes[id]
		doc.Nodes = append(doc.Nodes, nodeJSON{
			ID:          string(n.ID),
			Parent:      string(n.Parent),
			Schedule:    string(n.Sched),
			WeakIntra:   relToPairs(n.WeakIntra),
			StrongIntra: relToPairs(n.StrongIntra),
		})
	}
	for _, sc := range s.Schedules() {
		sj := scheduleJSON{
			ID:        string(sc.ID),
			WeakIn:    relToPairs(sc.WeakIn),
			StrongIn:  relToPairs(sc.StrongIn),
			WeakOut:   relToPairs(sc.WeakOut),
			StrongOut: relToPairs(sc.StrongOut),
		}
		for _, p := range sc.Conflicts.Pairs() {
			sj.Conflicts = append(sj.Conflicts, [2]string{string(p[0]), string(p[1])})
		}
		doc.Schedules = append(doc.Schedules, sj)
	}
	return json.Marshal(doc)
}

// UnmarshalJSON decodes the cmd tools' file format. The decoded system is
// not validated; call Validate afterwards.
func (s *System) UnmarshalJSON(data []byte) error {
	var doc systemJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	fresh := NewSystem()
	for _, sj := range doc.Schedules {
		if sj.ID == "" {
			return fmt.Errorf("model: schedule with empty id")
		}
		if fresh.Schedule(ScheduleID(sj.ID)) != nil {
			return fmt.Errorf("model: duplicate schedule %q", sj.ID)
		}
		sc := fresh.AddSchedule(ScheduleID(sj.ID))
		for _, p := range sj.Conflicts {
			sc.AddConflict(NodeID(p[0]), NodeID(p[1]))
		}
		sc.WeakIn = pairsToRel(sj.WeakIn)
		sc.StrongIn = pairsToRel(sj.StrongIn)
		sc.WeakOut = pairsToRel(sj.WeakOut)
		sc.StrongOut = pairsToRel(sj.StrongOut)
	}
	for _, nj := range doc.Nodes {
		if nj.ID == "" {
			return fmt.Errorf("model: node with empty id")
		}
		if fresh.Node(NodeID(nj.ID)) != nil {
			return fmt.Errorf("model: duplicate node %q", nj.ID)
		}
		var n *Node
		switch {
		case nj.Schedule == "" && nj.Parent == "":
			return fmt.Errorf("model: node %s is neither a transaction (no schedule) nor an operation (no parent)", nj.ID)
		case nj.Schedule == "":
			n = fresh.AddLeaf(NodeID(nj.ID), NodeID(nj.Parent))
		case nj.Parent == "":
			n = fresh.AddRoot(NodeID(nj.ID), ScheduleID(nj.Schedule))
		default:
			n = fresh.AddTx(NodeID(nj.ID), NodeID(nj.Parent), ScheduleID(nj.Schedule))
		}
		if len(nj.WeakIntra) > 0 {
			n.WeakIntra = pairsToRel(nj.WeakIntra)
		}
		if len(nj.StrongIntra) > 0 {
			n.StrongIntra = pairsToRel(nj.StrongIntra)
		}
	}
	*s = *fresh
	return nil
}

// Encode writes the system as indented JSON.
func (s *System) Encode(w io.Writer) error {
	data, err := s.MarshalJSON()
	if err != nil {
		return err
	}
	var buf json.RawMessage = data
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(buf)
}

// Decode reads a system from JSON.
func Decode(r io.Reader) (*System, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	s := NewSystem()
	if err := s.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return s, nil
}
