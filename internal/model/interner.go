package model

import "slices"

// Interner assigns every node of a System a stable dense int32 index, the
// bridge between the string-keyed construction surface and the
// interned-index relation core (order.IndexRelation) the checker runs on.
//
// Indices are assigned in lexicographic NodeID order, so ascending index
// iteration over dense rows reproduces the deterministic lexicographic
// iteration order the string-keyed code paths use — interned and
// string-keyed computations therefore make identical tie-breaking
// decisions.
//
// An Interner is immutable once built. The System caches one lazily and
// invalidates the cache whenever its node set changes, so repeated checks
// of the same system intern only once.
type Interner struct {
	ids []NodeID
	idx map[NodeID]int32
}

// Intern returns the interner for the system's current node set, building
// and caching it on first use. Any mutation of the node set (AddRoot,
// AddTx, AddLeaf, RemoveTree, Decode) invalidates the cache.
//
// The cached build is NOT safe for concurrent first use; CheckBatch
// pre-interns every system sequentially before fanning out, after which
// concurrent reads are safe.
func (s *System) Intern() *Interner {
	if s.interner == nil {
		ids := make([]NodeID, 0, len(s.nodes))
		for id := range s.nodes {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		idx := make(map[NodeID]int32, len(ids))
		for i, id := range ids {
			idx[id] = int32(i)
		}
		s.interner = &Interner{ids: ids, idx: idx}
	}
	return s.interner
}

// Len returns the number of interned nodes.
func (in *Interner) Len() int { return len(in.ids) }

// Index returns the index of id, or -1 when id is not a node of the
// system the interner was built from.
func (in *Interner) Index(id NodeID) int32 {
	if i, ok := in.idx[id]; ok {
		return i
	}
	return -1
}

// ID returns the NodeID at index i.
func (in *Interner) ID(i int32) NodeID { return in.ids[i] }

// IDs returns the interned NodeIDs in index (= lexicographic) order. The
// slice is shared; callers must not modify it.
func (in *Interner) IDs() []NodeID { return in.ids }
